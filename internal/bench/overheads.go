package bench

import (
	"fmt"
	"io"
	"math/big"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// OverheadResult reproduces the Sec. 5.2.2 measurements.
type OverheadResult struct {
	// Dispatch latency per transaction.
	BaselineDispatch time.Duration
	CoSplitDispatch  time.Duration
	// State-delta merge cost per changed field.
	OverwriteMergePerField time.Duration
	IntMergePerField       time.Duration
	// Execute-vs-merge: how long executing N transfers takes vs
	// merging the resulting delta (the paper's 50s-vs-0.5s point).
	ExecuteTime time.Duration
	MergeTime   time.Duration
	ExecutedTxs int
}

// MeasureOverheads measures dispatch and merge costs. Any extra
// options (e.g. shard.WithRegistry) are applied to the networks it
// provisions.
func MeasureOverheads(txs int, netOpts ...shard.Option) (*OverheadResult, error) {
	out := &OverheadResult{}

	// --- Dispatch latency, baseline vs CoSplit signature. ---
	for _, sharded := range []bool{false, true} {
		w := workload.FTTransfer()
		w.Setup = nil // dispatch measurement needs no token balances
		env, err := workload.Provision(w, sharded,
			append([]shard.Option{shard.WithShards(3)}, netOpts...)...)
		if err != nil {
			return nil, err
		}
		batch := make([]*chain.Tx, txs)
		for i := range batch {
			tx := w.Next(env)
			tx.ID = uint64(i + 1)
			batch[i] = tx
		}
		t0 := time.Now()
		for _, tx := range batch {
			env.Net.Disp.Dispatch(tx)
		}
		per := time.Since(t0) / time.Duration(txs)
		if sharded {
			out.CoSplitDispatch = per
		} else {
			out.BaselineDispatch = per
		}
	}

	// --- Merge cost per changed field. ---
	fieldTypes := map[string]ast.Type{
		"balances": ast.MapType{Key: ast.TyByStr20, Val: ast.TyUint128},
	}
	mkState := func(entries int) *eval.MemState {
		st := eval.NewMemState(fieldTypes)
		m := value.NewMap(ast.TyByStr20, ast.TyUint128)
		for i := 0; i < entries; i++ {
			m.Set(chain.AddrFromUint(uint64(i)).Value(), value.Uint128(1000))
		}
		st.Fields["balances"] = m
		return st
	}
	mkDelta := func(base *eval.MemState, entries int, join signature.Join) (*chain.StateDelta, error) {
		ov := chain.NewOverlay(base, fieldTypes)
		for i := 0; i < entries; i++ {
			k := chain.AddrFromUint(uint64(i)).Value()
			if err := ov.MapSet("balances", []value.Value{k}, value.Uint128(uint64(1000+i))); err != nil {
				return nil, err
			}
		}
		return ov.ExtractDelta(chain.Address{}, 0, map[string]signature.Join{"balances": join})
	}
	const entries = 5000
	for _, join := range []signature.Join{signature.OwnOverwrite, signature.IntMerge} {
		base := mkState(entries)
		d, err := mkDelta(base, entries, join)
		if err != nil {
			return nil, err
		}
		target := base.Copy()
		t0 := time.Now()
		if err := chain.MergeDeltas(target, []*chain.StateDelta{d}); err != nil {
			return nil, err
		}
		per := time.Since(t0) / entries
		if join == signature.IntMerge {
			out.IntMergePerField = per
		} else {
			out.OverwriteMergePerField = per
		}
	}

	// --- Execute vs merge (applying a delta is much cheaper than
	// executing the transactions that produced it). ---
	w := workload.FTTransfer()
	env, err := workload.Provision(w, true,
		append([]shard.Option{
			shard.WithShards(1),
			shard.WithGasLimits(1<<60, 1<<60),
			shard.WithSplitGasAccounting(false),
			shard.WithConsensusModel(false),
		}, netOpts...)...)
	if err != nil {
		return nil, err
	}
	c := env.Net.Contracts.Get(env.Contract)
	ov := chain.NewOverlay(c.Snapshot(), c.Checked.FieldTypes)
	t0 := time.Now()
	executed := 0
	for i := 0; i < txs; i++ {
		tx := w.Next(env)
		ctx := &eval.Context{
			Sender:      tx.From.Value(),
			Origin:      tx.From.Value(),
			Amount:      value.Uint128(0),
			BlockNumber: big.NewInt(1),
			State:       ov,
		}
		if _, err := c.Interp.Run(ctx, tx.Transition, tx.Args); err == nil {
			executed++
		}
	}
	out.ExecuteTime = time.Since(t0)
	out.ExecutedTxs = executed
	d, err := ov.ExtractDelta(env.Contract, 0, c.Sig.Joins)
	if err != nil {
		return nil, err
	}
	target := c.Snapshot().Copy()
	t1 := time.Now()
	if err := chain.MergeDeltas(target, []*chain.StateDelta{d}); err != nil {
		return nil, err
	}
	out.MergeTime = time.Since(t1)
	return out, nil
}

// PrintOverheads renders the Sec. 5.2.2 numbers.
func PrintOverheads(out io.Writer, r *OverheadResult) {
	fmt.Fprintf(out, "dispatch latency:   baseline %v/tx, CoSplit %v/tx (%.1fx)\n",
		r.BaselineDispatch, r.CoSplitDispatch,
		float64(r.CoSplitDispatch)/float64(max64(1, int64(r.BaselineDispatch))))
	fmt.Fprintf(out, "delta merge:        overwrite %v/field, IntMerge %v/field\n",
		r.OverwriteMergePerField, r.IntMergePerField)
	ratio := float64(r.ExecuteTime) / float64(max64(1, int64(r.MergeTime)))
	fmt.Fprintf(out, "execute vs merge:   %d txs executed in %v; their delta merged in %v (%.0fx faster)\n",
		r.ExecutedTxs, r.ExecuteTime, r.MergeTime, ratio)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// StrategyResult is one row of the Sec. 5.2.3 ownership-vs-
// commutativity comparison, extended with the DESIGN.md pseudo-field
// ablation (whole-map ownership).
type StrategyResult struct {
	Workload      string
	CoarseTPS     float64 // whole-field ownership (no pseudo-fields)
	OwnershipTPS  float64 // strategy 1 only (fine-grained ownership)
	FullTPS       float64 // ownership + commutativity
	BaselineTPS   float64
	Commutativity float64 // Full/Ownership
}

// RunStrategies compares ownership-only sharding against the full
// analysis on a fungible (FT transfer) and a non-fungible (NFT
// transfer) workload, reproducing the Sec. 5.2.3 observation.
func RunStrategies(cfg ThroughputConfig) ([]*StrategyResult, error) {
	var out []*StrategyResult
	for _, name := range []string{"FT transfer", "NFT transfer", "CF donate"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		full, err := MeasureThroughput(w, 5, true, cfg)
		if err != nil {
			return nil, err
		}
		w2, _ := workload.ByName(name)
		w2.Query.DisableCommutativity = true
		owner, err := MeasureThroughput(w2, 5, true, cfg)
		if err != nil {
			return nil, err
		}
		w3, _ := workload.ByName(name)
		base, err := MeasureThroughput(w3, 5, false, cfg)
		if err != nil {
			return nil, err
		}
		w4, _ := workload.ByName(name)
		w4.Query.DisableCommutativity = true
		w4.Query.CoarseOwnership = true
		coarse, err := MeasureThroughput(w4, 5, true, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, &StrategyResult{
			Workload:      name,
			CoarseTPS:     coarse.TPS,
			OwnershipTPS:  owner.TPS,
			FullTPS:       full.TPS,
			BaselineTPS:   base.TPS,
			Commutativity: full.TPS / maxf(1, owner.TPS),
		})
	}
	return out, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// PrintStrategies renders the Sec. 5.2.3 comparison plus the
// pseudo-field ablation.
func PrintStrategies(out io.Writer, rows []*StrategyResult) {
	fmt.Fprintf(out, "%-16s %12s %12s %14s %12s %14s\n",
		"workload", "baseline", "coarse-own", "ownership-only", "full", "commut. gain")
	for _, r := range rows {
		fmt.Fprintf(out, "%-16s %12.0f %12.0f %14.0f %12.0f %13.1fx\n",
			r.Workload, r.BaselineTPS, r.CoarseTPS, r.OwnershipTPS, r.FullTPS, r.Commutativity)
	}
}
