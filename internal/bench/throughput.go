// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts: Fig. 12 (pipeline timings), Fig. 13 (GE
// signature statistics), the Sec. 5.2 contract table, Fig. 14
// (throughput), the Sec. 5.2.2 overhead measurements and the
// Sec. 5.2.3 strategy ablation. The cmd/ binaries and bench_test.go
// are thin wrappers over this package.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// ThroughputConfig parameterises a Fig. 14 run.
type ThroughputConfig struct {
	Epochs        int
	TxsPerEpoch   int
	NodesPerShard int
	// ShardGasLimit/DSGasLimit are per-epoch capacities; the defaults
	// are scaled down from mainnet so the offered load saturates them.
	ShardGasLimit uint64
	DSGasLimit    uint64
	// Parallel executes shard queues on the worker pool (the epoch
	// results are bit-identical to the sequential pipeline).
	Parallel bool
	// NetOptions are appended to every network the run builds (e.g.
	// shard.WithRegistry to aggregate metrics across configurations).
	NetOptions []shard.Option
}

// DefaultThroughputConfig mirrors the paper's setup (10 epochs, 5
// nodes per shard) at simulator scale.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{
		Epochs:        10,
		TxsPerEpoch:   4000,
		NodesPerShard: 5,
		ShardGasLimit: 60_000,
		DSGasLimit:    60_000,
	}
}

// ThroughputResult is one bar of Fig. 14.
type ThroughputResult struct {
	Workload  string
	Sharded   bool
	NumShards int
	// TPS is committed transactions per modelled second.
	TPS float64
	// Committed/Failed/DSShare summarise the run.
	Committed int
	Failed    int
	// DSShare is the fraction of committed transactions the DS
	// committee processed.
	DSShare float64
	// WallTime is the total modelled duration.
	WallTime time.Duration
}

// MeasureThroughput runs one workload in one configuration and
// reports the achieved TPS.
func MeasureThroughput(w *workload.Workload, numShards int, sharded bool, cfg ThroughputConfig) (*ThroughputResult, error) {
	opts := append([]shard.Option{
		shard.WithShards(numShards),
		shard.WithNodesPerShard(cfg.NodesPerShard),
		shard.WithGasLimits(cfg.ShardGasLimit, cfg.DSGasLimit),
		shard.WithParallelism(cfg.Parallel),
	}, cfg.NetOptions...)
	env, err := workload.Provision(w, sharded, opts...)
	if err != nil {
		return nil, err
	}
	// Level the playing field across successive runs in one process.
	runtime.GC()
	res := &ThroughputResult{Workload: w.Name, Sharded: sharded, NumShards: numShards}
	var total time.Duration
	dsCommitted := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Sustain a fixed offered load: top the mempool back up to
		// TxsPerEpoch, so the deferred backlog stays bounded and every
		// configuration dispatches the same packet size.
		for i := env.Net.MempoolSize(); i < cfg.TxsPerEpoch; i++ {
			env.Net.Submit(w.Next(env))
		}
		stats, err := env.Net.RunEpoch()
		if err != nil {
			return nil, err
		}
		res.Committed += stats.Committed
		res.Failed += stats.Failed
		dsCommitted += stats.DSCount
		total += stats.WallTime
	}
	res.WallTime = total
	if total > 0 {
		res.TPS = float64(res.Committed) / total.Seconds()
	}
	if res.Committed > 0 {
		res.DSShare = float64(dsCommitted) / float64(res.Committed)
	}
	return res, nil
}

// Fig14Row is the set of bars for one workload.
type Fig14Row struct {
	Workload string
	Baseline *ThroughputResult   // baseline, 3 shards
	CoSplit  []*ThroughputResult // CoSplit, 3/4/5 shards
}

// RunFig14 regenerates Fig. 14: every workload under baseline (3
// shards) and CoSplit (3, 4, 5 shards).
func RunFig14(cfg ThroughputConfig, names []string) ([]*Fig14Row, error) {
	var rows []*Fig14Row
	for _, name := range names {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		row := &Fig14Row{Workload: name}
		row.Baseline, err = MeasureThroughput(w, 3, false, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", name, err)
		}
		for _, n := range []int{3, 4, 5} {
			r, err := MeasureThroughput(w, n, true, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s cosplit %d: %w", name, n, err)
			}
			row.CoSplit = append(row.CoSplit, r)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig14 renders the Fig. 14 series as a table.
func PrintFig14(out io.Writer, rows []*Fig14Row) {
	fmt.Fprintf(out, "%-20s %12s %12s %12s %12s %8s\n",
		"workload", "base-3sh", "cosplit-3sh", "cosplit-4sh", "cosplit-5sh", "DS%-5sh")
	for _, row := range rows {
		fmt.Fprintf(out, "%-20s %12.0f %12.0f %12.0f %12.0f %7.0f%%\n",
			row.Workload,
			row.Baseline.TPS,
			row.CoSplit[0].TPS,
			row.CoSplit[1].TPS,
			row.CoSplit[2].TPS,
			row.CoSplit[2].DSShare*100)
	}
}
