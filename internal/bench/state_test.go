package bench

import (
	"bytes"
	"testing"

	"cosplit/internal/obs"
)

// TestStateBenchSmall runs a miniature accounts × budget grid and
// checks the report's shape: every cell commits the full load, paged
// cells at a starved budget actually fault and evict, and the paged
// rows commit exactly what the resident baseline commits (the
// bit-identical-execution claim, at committed-count granularity).
func TestStateBenchSmall(t *testing.T) {
	cfg := StateBenchConfig{
		Accounts:     []int{2000},
		Budgets:      []int64{0, 16 << 10},
		Epochs:       2,
		TxsPerEpoch:  200,
		PageAccounts: 64,
		NumShards:    4,
	}
	rep, err := RunStateBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rep.Rows))
	}
	resident, paged := rep.Rows[0], rep.Rows[1]
	if resident.Paged || !paged.Paged {
		t.Fatalf("row order: resident=%+v paged=%+v", resident.Paged, paged.Paged)
	}
	if resident.Committed == 0 {
		t.Fatal("resident baseline committed nothing")
	}
	if paged.Committed != resident.Committed {
		t.Fatalf("paged committed %d, resident %d — paged execution diverged",
			paged.Committed, resident.Committed)
	}
	if paged.Faults == 0 || paged.Evictions == 0 {
		t.Fatalf("16 KiB budget over 2000 accounts should fault and evict, got faults=%d evictions=%d",
			paged.Faults, paged.Evictions)
	}
	if resident.Faults != 0 {
		t.Fatalf("resident baseline reported %d page faults", resident.Faults)
	}
	if paged.P99FaultMicros <= 0 {
		t.Fatalf("p99 fault latency %v, want > 0", paged.P99FaultMicros)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	PrintStateBench(&buf, rep)
}

// TestHistQuantileMicros pins the quantile estimator against a
// hand-built histogram.
func TestHistQuantileMicros(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.TimeHistogram("q")
	for i := 0; i < 99; i++ {
		h.Observe(1500) // 1.5µs -> 2µs bucket
	}
	h.Observe(4_000_000) // 4ms -> 5ms bucket
	snap := reg.Snapshot().Histograms["q"]
	if got := histQuantileMicros(snap, 0.5); got != 2 {
		t.Errorf("p50 = %v µs, want 2", got)
	}
	if got := histQuantileMicros(snap, 0.999); got != 5000 {
		t.Errorf("p99.9 = %v µs, want 5000", got)
	}
	if got := histQuantileMicros(obs.HistogramSnapshot{}, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
}
