package bench_test

import (
	"strings"
	"testing"

	"cosplit/internal/bench"
	"cosplit/internal/workload"
)

func TestMeasurePipeline(t *testing.T) {
	row, err := bench.MeasurePipeline("FungibleToken", 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.Parse <= 0 || row.Typecheck <= 0 || row.Analysis <= 0 {
		t.Errorf("zero-valued stage timing: %+v", row)
	}
	if row.Total() != row.Parse+row.Typecheck+row.Analysis {
		t.Error("Total() inconsistent")
	}
}

func TestRunGETable52(t *testing.T) {
	stats, err := bench.RunGE([]string{"Crowdfunding", "NonfungibleToken"})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d rows", len(stats))
	}
	for _, s := range stats {
		if s.LOC == 0 || s.NumTransitions == 0 {
			t.Errorf("degenerate row: %+v", s)
		}
	}
	var sb strings.Builder
	bench.PrintTable52(&sb, stats)
	if !strings.Contains(sb.String(), "Crowdfunding") {
		t.Error("table missing contract")
	}
}

func TestTransitionHistogram(t *testing.T) {
	hist, err := bench.TransitionHistogram()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range hist {
		total += n
	}
	if total < 20 {
		t.Errorf("histogram covers %d contracts, want the full corpus", total)
	}
}

func TestMeasureThroughputSmoke(t *testing.T) {
	w, err := workload.ByName("FT transfer")
	if err != nil {
		t.Fatal(err)
	}
	w.Users = 30
	cfg := bench.ThroughputConfig{
		Epochs: 2, TxsPerEpoch: 200, NodesPerShard: 5,
		ShardGasLimit: 1 << 30, DSGasLimit: 1 << 30,
	}
	r, err := bench.MeasureThroughput(w, 2, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 || r.TPS <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
}

func TestMeasureOverheadsSmoke(t *testing.T) {
	r, err := bench.MeasureOverheads(200)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoSplitDispatch <= r.BaselineDispatch {
		t.Logf("note: CoSplit dispatch (%v) not slower than baseline (%v) at this sample size",
			r.CoSplitDispatch, r.BaselineDispatch)
	}
	if r.ExecuteTime <= r.MergeTime {
		t.Errorf("executing %d txs (%v) should dominate merging their delta (%v)",
			r.ExecutedTxs, r.ExecuteTime, r.MergeTime)
	}
	var sb strings.Builder
	bench.PrintOverheads(&sb, r)
	if !strings.Contains(sb.String(), "dispatch latency") {
		t.Error("overheads rendering broken")
	}
}

func TestSummariesHelper(t *testing.T) {
	sums, err := bench.Summaries("FungibleToken")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sums["Transfer"]; !ok {
		t.Error("Transfer summary missing")
	}
}
