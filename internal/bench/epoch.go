package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/obs"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/compile"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// EpochBenchConfig parameterises the epoch-throughput benchmark that
// produces BENCH_epoch.json: one workload, sequential vs parallel
// pipelines across a range of shard counts, with per-stage timings.
type EpochBenchConfig struct {
	Workload      string `json:"workload"`
	ShardCounts   []int  `json:"shard_counts"`
	Epochs        int    `json:"epochs"`
	TxsPerEpoch   int    `json:"txs_per_epoch"`
	NodesPerShard int    `json:"nodes_per_shard"`
	ShardGasLimit uint64 `json:"shard_gas_limit"`
	DSGasLimit    uint64 `json:"ds_gas_limit"`
	// IntraWorkers sizes the intra-shard worker pool for the third
	// (parallel + intra-shard) row of each shard count. Zero disables
	// the intra rows entirely.
	IntraWorkers int `json:"intra_workers"`
	// NetOptions are appended to every network the benchmark builds,
	// letting callers attach shared observability (WithRegistry,
	// WithRecorder) to the measured runs.
	NetOptions []shard.Option `json:"-"`
}

// DefaultEpochBenchConfig is the configuration the committed
// BENCH_epoch.json is generated with.
func DefaultEpochBenchConfig() EpochBenchConfig {
	return EpochBenchConfig{
		Workload:      "FT transfer disjoint",
		ShardCounts:   []int{1, 2, 4, 8},
		Epochs:        8,
		TxsPerEpoch:   4000,
		NodesPerShard: 5,
		ShardGasLimit: 2_000_000,
		DSGasLimit:    2_000_000,
		IntraWorkers:  4,
	}
}

// StageMillis reports cumulative per-stage host timings for a run.
type StageMillis struct {
	Dispatch   float64 `json:"dispatch"`
	ExecuteMax float64 `json:"execute_max"`
	ExecuteSum float64 `json:"execute_sum"`
	Merge      float64 `json:"merge"`
	DS         float64 `json:"ds"`
}

// EpochBenchRow is one (shard count, pipeline mode) measurement.
//
// ModeledMS charges shard execution the way the simulated network
// incurs it: the parallel pipeline pays the slowest shard (shards are
// distinct machines), the sequential pipeline pays the sum (queues
// executed back-to-back). MeasuredMS is the host wall-clock actually
// spent, reported side by side; on a single-core host the two modes
// measure alike even though the modelled pipelines differ.
type EpochBenchRow struct {
	Shards   int  `json:"shards"`
	Parallel bool `json:"parallel"`
	// IntraWorkers is the intra-shard worker-pool size the row ran
	// with (0 = sequential shard queues).
	IntraWorkers int `json:"intra_workers"`
	// HostCPUs and GoMaxProcs pin the host conditions the row was
	// measured under: on a GOMAXPROCS=1 host the intra-shard rows
	// still report the modelled (makespan) execute stage, but the
	// measured wall-clock cannot show the speedup.
	HostCPUs    int         `json:"host_cpus"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	Committed   int         `json:"committed"`
	Failed      int         `json:"failed"`
	DSCommitted int         `json:"ds_committed"`
	ModeledMS   float64     `json:"modeled_ms"`
	MeasuredMS  float64     `json:"measured_ms"`
	TPSModeled  float64     `json:"tps_modeled"`
	TPSMeasured float64     `json:"tps_measured"`
	Stages      StageMillis `json:"stages_ms"`
}

// Microbench is one testing.B data point.
type Microbench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// EpochBenchReport is the serialised form of BENCH_epoch.json.
type EpochBenchReport struct {
	Schema     string           `json:"schema"`
	Config     EpochBenchConfig `json:"config"`
	HostCPUs   int              `json:"host_cpus"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Rows       []EpochBenchRow  `json:"rows"`
	// SpeedupModeled maps shard count -> parallel/sequential modeled
	// throughput ratio.
	SpeedupModeled map[string]float64 `json:"speedup_modeled"`
	// ExecSpeedupIntra maps shard count -> the factor by which
	// intra-shard parallelism shrinks the modelled execute_max stage
	// relative to the plain parallel pipeline at the same shard count
	// (parallel ExecuteMax / intra ExecuteMax).
	ExecSpeedupIntra map[string]float64 `json:"exec_speedup_intra,omitempty"`
	// Microbench holds testing.B numbers measured at generation time;
	// MicrobenchBaseline pins the numbers measured at the seed commit
	// (before plan caching and the overlay keypath work) so future PRs
	// have a fixed reference for regressions.
	Microbench         []Microbench `json:"microbench"`
	MicrobenchBaseline []Microbench `json:"microbench_baseline"`
	GeneratedBy        string       `json:"generated_by"`
}

// seedMicrobench are the microbenchmark numbers recorded at the seed
// commit of this PR (sequential dispatcher with per-transaction
// signature interpretation, per-op Keypath string joins), on the same
// class of host the committed BENCH_epoch.json is generated on.
// The seed dispatcher had no pure Decide entry point; its
// "dispatch.Decide" row is the seed's Dispatch (routing evaluation plus
// replay/load bookkeeping), the closest equivalent operation.
var seedMicrobench = []Microbench{
	{Name: "dispatch.Decide", NsPerOp: 4843, BytesPerOp: 1149, AllocsPerOp: 26},
	{Name: "chain.Keypath/1key", NsPerOp: 1627, BytesPerOp: 216, AllocsPerOp: 7},
	{Name: "chain.Keypath/2keys", NsPerOp: 3037, BytesPerOp: 528, AllocsPerOp: 14},
	{Name: "chain.Overlay.MapSet", NsPerOp: 1729, BytesPerOp: 288, AllocsPerOp: 11},
	{Name: "chain.Overlay.ReadModifyWrite", NsPerOp: 3407, BytesPerOp: 504, AllocsPerOp: 18},
}

// measureEpochRun drives one workload through Epochs epochs in one
// pipeline mode. Per-stage timings come from the network's own
// instrumentation: a StageCollector recorder receives each epoch's
// EpochFinalized summary and the row accumulates its breakdown.
func measureEpochRun(w *workload.Workload, shards int, parallel bool, intraWorkers int, cfg EpochBenchConfig) (*EpochBenchRow, error) {
	col := obs.NewStageCollector()
	opts := append([]shard.Option{
		shard.WithShards(shards),
		shard.WithNodesPerShard(cfg.NodesPerShard),
		shard.WithGasLimits(cfg.ShardGasLimit, cfg.DSGasLimit),
		// Consensus is excluded: this benchmark isolates the execution
		// pipeline (dispatch, execute, merge, DS) the PR optimises.
		shard.WithConsensusModel(false),
		shard.WithParallelism(parallel),
		shard.WithIntraShardParallelism(intraWorkers),
		shard.WithRecorder(col),
	}, cfg.NetOptions...)
	env, err := workload.Provision(w, true, opts...)
	if err != nil {
		return nil, err
	}
	runtime.GC()
	row := &EpochBenchRow{
		Shards:       shards,
		Parallel:     parallel,
		IntraWorkers: intraWorkers,
		HostCPUs:     runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
	}
	// Collections are forced between epochs (below); a high GC target
	// keeps background cycles from landing inside a timed stage span,
	// where a single pause would skew the per-worker maxima that the
	// modeled times are built from. All modes benefit identically.
	defer debug.SetGCPercent(debug.SetGCPercent(800))
	var modeled, measured time.Duration
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i := env.Net.MempoolSize(); i < cfg.TxsPerEpoch; i++ {
			env.Net.Submit(w.Next(env))
		}
		// Collect outside the timed epoch so GC pauses from the untimed
		// submission phase don't land inside a stage span.
		runtime.GC()
		stats, err := env.Net.RunEpoch()
		if err != nil {
			return nil, err
		}
		row.Committed += stats.Committed
		row.Failed += stats.Failed
		row.DSCommitted += stats.DSCount
		sum := col.Last()
		if parallel {
			modeled += sum.Wall
		} else {
			modeled += sum.SequentialWall()
		}
		measured += sum.Measured
		row.Stages.Dispatch += ms(sum.Dispatch)
		row.Stages.ExecuteMax += ms(sum.ExecMax)
		row.Stages.ExecuteSum += ms(sum.ExecSum)
		row.Stages.Merge += ms(sum.Merge)
		row.Stages.DS += ms(sum.DSExec)
	}
	row.ModeledMS = ms(modeled)
	row.MeasuredMS = ms(measured)
	if modeled > 0 {
		row.TPSModeled = float64(row.Committed) / modeled.Seconds()
	}
	if measured > 0 {
		row.TPSMeasured = float64(row.Committed) / measured.Seconds()
	}
	return row, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// RunEpochBench runs the full sequential-vs-parallel epoch benchmark
// and collects the microbenchmark numbers.
func RunEpochBench(cfg EpochBenchConfig) (*EpochBenchReport, error) {
	w, err := workload.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	rep := &EpochBenchReport{
		Schema:             "cosplit-epoch-bench/v1",
		Config:             cfg,
		HostCPUs:           runtime.NumCPU(),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		SpeedupModeled:     make(map[string]float64),
		MicrobenchBaseline: seedMicrobench,
		GeneratedBy:        "go run ./cmd/shardsim -epoch-bench -bench-out BENCH_epoch.json",
	}
	if cfg.IntraWorkers > 1 {
		rep.ExecSpeedupIntra = make(map[string]float64)
	}
	for _, shards := range cfg.ShardCounts {
		seq, err := measureEpochRun(w, shards, false, 0, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s sequential %d shards: %w", cfg.Workload, shards, err)
		}
		par, err := measureEpochRun(w, shards, true, 0, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s parallel %d shards: %w", cfg.Workload, shards, err)
		}
		rep.Rows = append(rep.Rows, *seq, *par)
		if seq.TPSModeled > 0 {
			rep.SpeedupModeled[fmt.Sprint(shards)] = par.TPSModeled / seq.TPSModeled
		}
		if cfg.IntraWorkers > 1 {
			intra, err := measureEpochRun(w, shards, true, cfg.IntraWorkers, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s parallel+intra %d shards: %w", cfg.Workload, shards, err)
			}
			rep.Rows = append(rep.Rows, *intra)
			if intra.Stages.ExecuteMax > 0 {
				rep.ExecSpeedupIntra[fmt.Sprint(shards)] = par.Stages.ExecuteMax / intra.Stages.ExecuteMax
			}
		}
	}
	rep.Microbench, err = RunEpochMicrobench()
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// RunEpochMicrobench measures the dispatch.Decide, chain.Keypath, and
// Overlay.MapSet microbenchmarks via testing.Benchmark, mirroring the
// testing.B benchmarks in the dispatch and chain packages.
func RunEpochMicrobench() ([]Microbench, error) {
	w := workload.FTTransfer()
	w.Setup = nil // routing needs no token balances
	env, err := workload.Provision(w, true, shard.WithShards(8))
	if err != nil {
		return nil, err
	}
	tx := w.Next(env)
	tx.ID = 1

	types := map[string]ast.Type{
		"balances": ast.MapType{Key: ast.TyByStr20, Val: ast.TyUint128},
	}
	base := eval.NewMemState(types)
	base.Fields["balances"] = value.NewMap(ast.TyByStr20, ast.TyUint128)
	key1 := []value.Value{chain.AddrFromUint(42).Value()}
	key2 := []value.Value{chain.AddrFromUint(7).Value(), chain.AddrFromUint(9).Value()}
	amount := value.Uint128(1)

	runs := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"dispatch.Decide", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if r := env.Net.Disp.Decide(tx); r.Rejected {
					b.Fatal(r.Reason)
				}
			}
		}},
		{"chain.Keypath/1key", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if chain.Keypath(key1) == "" {
					b.Fatal("empty keypath")
				}
			}
		}},
		{"chain.Keypath/2keys", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if chain.Keypath(key2) == "" {
					b.Fatal("empty keypath")
				}
			}
		}},
		{"chain.Overlay.MapSet", func(b *testing.B) {
			ov := chain.NewOverlay(base, types)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ov.MapSet("balances", key1, amount); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"eval.TransferExec", func(b *testing.B) {
			// The interpreter hot path: one full FungibleToken Transfer,
			// Context and args reused as the shard executor reuses them.
			chk := contracts.MustParse("FungibleToken")
			owner := chain.AddrFromUint(42).Value()
			in, err := eval.New(chk, map[string]value.Value{
				"contract_owner": owner,
				"token_name":     value.Str{S: "BenchToken"},
				"token_symbol":   value.Str{S: "BT"},
				"decimals":       value.Uint32V(6),
				"init_supply":    value.Uint128(1 << 62),
			})
			if err != nil {
				b.Fatal(err)
			}
			st := eval.NewMemState(chk.FieldTypes)
			if err := st.InitFrom(in); err != nil {
				b.Fatal(err)
			}
			ctx := &eval.Context{
				Sender:      owner,
				Origin:      owner,
				Amount:      value.Uint128(0),
				BlockNumber: big.NewInt(100),
				State:       st,
			}
			args := map[string]value.Value{
				"to":     chain.AddrFromUint(7).Value(),
				"amount": value.Uint128(1),
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Run(ctx, "Transfer", args); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"eval.CompiledTransferExec", func(b *testing.B) {
			// The compiled hot path: the same Transfer served by the
			// closure-chain executor with pooled machines — the engine
			// the shard pipeline runs by default.
			chk := contracts.MustParse("FungibleToken")
			owner := chain.AddrFromUint(42).Value()
			in, err := eval.New(chk, map[string]value.Value{
				"contract_owner": owner,
				"token_name":     value.Str{S: "BenchToken"},
				"token_symbol":   value.Str{S: "BT"},
				"decimals":       value.Uint32V(6),
				"init_supply":    value.Uint128(1 << 62),
			})
			if err != nil {
				b.Fatal(err)
			}
			prog := compile.New(in)
			st := eval.NewMemState(chk.FieldTypes)
			if err := st.InitFrom(in); err != nil {
				b.Fatal(err)
			}
			ctx := &eval.Context{
				Sender:      owner,
				Origin:      owner,
				Amount:      value.Uint128(0),
				BlockNumber: big.NewInt(100),
				State:       st,
			}
			args := map[string]value.Value{
				"to":     chain.AddrFromUint(7).Value(),
				"amount": value.Uint128(1),
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Run(ctx, "Transfer", args); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"chain.Overlay.ReadModifyWrite", func(b *testing.B) {
			ov := chain.NewOverlay(base, types)
			if err := ov.MapSet("balances", key1, amount); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ov.MapGet("balances", key1); err != nil {
					b.Fatal(err)
				}
				if err := ov.MapSet("balances", key1, amount); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	out := make([]Microbench, 0, len(runs))
	for _, r := range runs {
		res := testing.Benchmark(r.fn)
		out = append(out, Microbench{
			Name:        r.name,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return out, nil
}

// WriteJSON serialises the report.
func (r *EpochBenchReport) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintEpochBench renders the report as a table.
func PrintEpochBench(out io.Writer, r *EpochBenchReport) {
	fmt.Fprintf(out, "epoch benchmark: %s (epochs=%d, txs/epoch=%d, host CPUs=%d, gomaxprocs=%d)\n",
		r.Config.Workload, r.Config.Epochs, r.Config.TxsPerEpoch, r.HostCPUs, r.GoMaxProcs)
	fmt.Fprintf(out, "%7s %10s %10s %12s %12s %12s %12s %10s\n",
		"shards", "mode", "committed", "modeled-ms", "measured-ms", "tps-modeled", "exec-max-ms", "speedup")
	for _, row := range r.Rows {
		mode := "seq"
		switch {
		case row.IntraWorkers > 1:
			mode = fmt.Sprintf("par+intra%d", row.IntraWorkers)
		case row.Parallel:
			mode = "parallel"
		}
		speedup := ""
		switch {
		case row.IntraWorkers > 1:
			// The intra rows report the execute-stage shrink factor
			// relative to the plain parallel row at this shard count.
			if s, ok := r.ExecSpeedupIntra[fmt.Sprint(row.Shards)]; ok {
				speedup = fmt.Sprintf("%.2fx exec", s)
			}
		case row.Parallel:
			if s, ok := r.SpeedupModeled[fmt.Sprint(row.Shards)]; ok {
				speedup = fmt.Sprintf("%.2fx", s)
			}
		}
		fmt.Fprintf(out, "%7d %10s %10d %12.1f %12.1f %12.0f %12.1f %10s\n",
			row.Shards, mode, row.Committed, row.ModeledMS, row.MeasuredMS, row.TPSModeled, row.Stages.ExecuteMax, speedup)
	}
	fmt.Fprintln(out, "\nmicrobenchmarks (current vs seed baseline):")
	base := map[string]Microbench{}
	for _, m := range r.MicrobenchBaseline {
		base[m.Name] = m
	}
	fmt.Fprintf(out, "%-32s %12s %12s %14s\n", "benchmark", "ns/op", "allocs/op", "seed allocs/op")
	for _, m := range r.Microbench {
		b, ok := base[m.Name]
		seed := "-"
		if ok {
			seed = fmt.Sprint(b.AllocsPerOp)
		}
		fmt.Fprintf(out, "%-32s %12.0f %12d %14s\n", m.Name, m.NsPerOp, m.AllocsPerOp, seed)
	}
}
