package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/big"
	"os"
	"runtime"
	"sort"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/obs"
	"cosplit/internal/pager"
	"cosplit/internal/shard"
)

// StateBenchConfig parameterises the paged-state benchmark that
// produces BENCH_state.json: a grid of account populations times page
// cache budgets, each cell driving the same deterministic transfer
// load and reporting committed throughput alongside the pager's fault
// behaviour. Budget 0 rows run fully resident (no pager) and are the
// regression baseline scripts/benchdiff.sh compares paged rows
// against.
type StateBenchConfig struct {
	Accounts    []int   `json:"accounts"`
	Budgets     []int64 `json:"budgets"`
	Epochs      int     `json:"epochs"`
	TxsPerEpoch int     `json:"txs_per_epoch"`
	// PageAccounts is the target number of accounts per page; each
	// paged cell sizes its page table as accounts/PageAccounts (rounded
	// up to a power of two by the pager).
	PageAccounts int `json:"page_accounts"`
	NumShards    int `json:"num_shards"`
}

// DefaultStateBenchConfig is the configuration the committed
// BENCH_state.json is generated with: populations around and past the
// point where the smallest budget forces steady-state eviction.
func DefaultStateBenchConfig() StateBenchConfig {
	return StateBenchConfig{
		Accounts:     []int{50_000, 200_000},
		Budgets:      []int64{0, 4 << 20, pager.DefaultBudget},
		Epochs:       5,
		TxsPerEpoch:  2000,
		PageAccounts: 512,
		NumShards:    4,
	}
}

// StateBenchRow is one (accounts, budget) cell.
type StateBenchRow struct {
	Accounts int   `json:"accounts"`
	Budget   int64 `json:"budget"`
	// Paged distinguishes a pager-backed run from the fully resident
	// baseline (Budget 0).
	Paged     bool `json:"paged"`
	Committed int  `json:"committed"`
	Failed    int  `json:"failed"`
	// ProvisionMS is the host time to create the account population
	// (sorted address order — sequential page fill); WallMS the host
	// time inside RunEpoch across all measured epochs. TPS is committed
	// transactions per host second: paging cost is real I/O, so the
	// modelled epoch clock would miss exactly the effect under test.
	ProvisionMS float64 `json:"provision_ms"`
	WallMS      float64 `json:"wall_ms"`
	TPS         float64 `json:"tps"`
	// Fault behaviour over the measured epochs (provisioning faults are
	// excluded by snapshotting counters after setup).
	Hits           int64   `json:"hits"`
	Faults         int64   `json:"faults"`
	FaultsPerEpoch float64 `json:"faults_per_epoch"`
	Evictions      int64   `json:"evictions"`
	Writebacks     int64   `json:"writebacks"`
	// P99FaultMicros is the 99th-percentile page fault latency in
	// microseconds, read from the pager.fault_time histogram (bucket
	// upper bound, so an overestimate by at most one 1-2-5 step).
	P99FaultMicros float64 `json:"p99_fault_micros"`
	ResidentBytes  int64   `json:"resident_bytes"`
	HeapMB         uint64  `json:"heap_mb"`
}

// StateBenchReport is the serialised form of BENCH_state.json.
type StateBenchReport struct {
	Schema      string           `json:"schema"`
	Config      StateBenchConfig `json:"config"`
	HostCPUs    int              `json:"host_cpus"`
	Rows        []StateBenchRow  `json:"rows"`
	GeneratedBy string           `json:"generated_by"`
}

// measureStateCell provisions one population at one budget and drives
// the measured epochs. The population is created in sorted address
// order: sha256-derived addresses are uniform, so sorted insertion
// fills one page at a time instead of faulting the whole page table
// per batch — the difference between O(accounts) and O(accounts ×
// pages/budget) provisioning I/O at small budgets.
func measureStateCell(accounts int, budget int64, cfg StateBenchConfig) (*StateBenchRow, error) {
	reg := obs.NewRegistry()
	opts := []shard.Option{
		shard.WithShards(cfg.NumShards),
		shard.WithConsensusModel(false),
		shard.WithRegistry(reg),
	}
	row := &StateBenchRow{Accounts: accounts, Budget: budget, Paged: budget > 0}
	var p *pager.Pager
	if budget > 0 {
		dir, err := os.MkdirTemp("", "statebench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		pages := accounts / cfg.PageAccounts
		if pages < 1 {
			pages = 1
		}
		p, err = pager.Open(dir,
			pager.WithBudget(budget),
			pager.WithPageCount(pages),
			pager.WithRegistry(reg))
		if err != nil {
			return nil, err
		}
		opts = append(opts, shard.WithStateBackends(p.Backend(), p))
	}
	n := shard.NewNetwork(opts...)

	addrs := make([]chain.Address, accounts)
	for i := range addrs {
		addrs[i] = chain.AddrFromUint(uint64(1000 + i))
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	start := time.Now()
	for _, a := range addrs {
		n.CreateUser(a, 1<<40)
	}
	row.ProvisionMS = ms(time.Since(start))
	runtime.GC()

	// Counter baseline after provisioning: the measured rows report the
	// steady-state fault rate of the transfer load, not setup cost.
	before := reg.Snapshot()
	var wall time.Duration
	for k := uint64(1); k <= uint64(cfg.Epochs); k++ {
		for i := uint64(0); i < uint64(cfg.TxsPerEpoch); i++ {
			from := chain.AddrFromUint(1000 + (i*2099)%uint64(accounts))
			to := chain.AddrFromUint(1000 + (i*2099+1)%uint64(accounts))
			n.Submit(&chain.Tx{
				Kind: chain.TxTransfer, From: from, To: to, Nonce: k,
				Amount: big.NewInt(3), GasLimit: 1, GasPrice: 1,
			})
		}
		t0 := time.Now()
		stats, err := n.RunEpoch()
		if err != nil {
			return nil, fmt.Errorf("epoch %d: %w", k, err)
		}
		wall += time.Since(t0)
		row.Committed += stats.Committed
		row.Failed += stats.Failed
	}
	row.WallMS = ms(wall)
	if wall > 0 {
		row.TPS = float64(row.Committed) / wall.Seconds()
	}

	after := reg.Snapshot()
	delta := func(name string) int64 {
		return after.Counters[name] - before.Counters[name]
	}
	row.Hits = delta("pager.hits")
	row.Faults = delta("pager.faults")
	row.Evictions = delta("pager.evictions")
	row.Writebacks = delta("pager.writebacks")
	if cfg.Epochs > 0 {
		row.FaultsPerEpoch = float64(row.Faults) / float64(cfg.Epochs)
	}
	row.P99FaultMicros = histQuantileMicros(after.Histograms["pager.fault_time"], 0.99)
	if p != nil {
		row.ResidentBytes = p.ResidentBytes()
	}
	var mem runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&mem)
	row.HeapMB = mem.HeapAlloc >> 20
	runtime.KeepAlive(n)
	return row, nil
}

// histQuantileMicros returns the q-quantile of a time histogram in
// microseconds, as the upper bound of the bucket the quantile lands
// in. The overflow bucket (Le = -1) reports the largest finite bound;
// an empty histogram reports 0.
func histQuantileMicros(h obs.HistogramSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	var cum, lastFinite int64
	for _, b := range h.Buckets {
		cum += b.Count
		if b.Le >= 0 {
			lastFinite = b.Le
		}
		if cum >= target {
			le := b.Le
			if le < 0 {
				le = lastFinite
			}
			return float64(le) / float64(time.Microsecond)
		}
	}
	return float64(lastFinite) / float64(time.Microsecond)
}

// RunStateBench runs the full accounts × budgets grid.
func RunStateBench(cfg StateBenchConfig) (*StateBenchReport, error) {
	rep := &StateBenchReport{
		Schema:      "cosplit-state-bench/v1",
		Config:      cfg,
		HostCPUs:    runtime.NumCPU(),
		GeneratedBy: "go run ./cmd/shardsim -state-bench -bench-out BENCH_state.json",
	}
	for _, accounts := range cfg.Accounts {
		for _, budget := range cfg.Budgets {
			row, err := measureStateCell(accounts, budget, cfg)
			if err != nil {
				return nil, fmt.Errorf("state bench %d accounts budget %d: %w", accounts, budget, err)
			}
			rep.Rows = append(rep.Rows, *row)
		}
	}
	return rep, nil
}

// WriteJSON serialises the report.
func (r *StateBenchReport) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintStateBench renders the report as a table.
func PrintStateBench(out io.Writer, r *StateBenchReport) {
	fmt.Fprintf(out, "paged-state benchmark: epochs=%d txs/epoch=%d shards=%d page=%d accounts\n",
		r.Config.Epochs, r.Config.TxsPerEpoch, r.Config.NumShards, r.Config.PageAccounts)
	fmt.Fprintf(out, "%10s %10s %10s %10s %12s %10s %14s %8s\n",
		"accounts", "budget-MB", "committed", "tps", "faults/ep", "evictions", "p99-fault-us", "heap-MB")
	for _, row := range r.Rows {
		budget := "resident"
		if row.Paged {
			budget = fmt.Sprintf("%d", row.Budget>>20)
		}
		fmt.Fprintf(out, "%10d %10s %10d %10.0f %12.1f %10d %14.0f %8d\n",
			row.Accounts, budget, row.Committed, row.TPS,
			row.FaultsPerEpoch, row.Evictions, row.P99FaultMicros, row.HeapMB)
	}
}
