package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/domain"
	"cosplit/internal/core/ge"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
)

// PipelineTiming is one row of Fig. 12: the time spent in each
// contract-deployment stage.
type PipelineTiming struct {
	Contract  string
	Parse     time.Duration
	Typecheck time.Duration
	Analysis  time.Duration
}

// Total returns the full deployment-pipeline time.
func (p PipelineTiming) Total() time.Duration {
	return p.Parse + p.Typecheck + p.Analysis
}

// MeasurePipeline runs the deployment pipeline `rounds` times for one
// contract and returns per-stage averages (the paper averages over
// 1000 runs).
func MeasurePipeline(name string, rounds int) (*PipelineTiming, error) {
	e, err := contracts.Get(name)
	if err != nil {
		return nil, err
	}
	out := &PipelineTiming{Contract: name}
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		m, err := parser.ParseModule(e.Source)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		chk, err := typecheck.Check(m)
		if err != nil {
			return nil, err
		}
		t2 := time.Now()
		a, err := analysis.New(chk)
		if err != nil {
			return nil, err
		}
		if _, err := a.AnalyzeAll(); err != nil {
			return nil, err
		}
		t3 := time.Now()
		out.Parse += t1.Sub(t0)
		out.Typecheck += t2.Sub(t1)
		out.Analysis += t3.Sub(t2)
	}
	out.Parse /= time.Duration(rounds)
	out.Typecheck /= time.Duration(rounds)
	out.Analysis /= time.Duration(rounds)
	return out, nil
}

// RunFig12 measures the pipeline for every corpus contract.
func RunFig12(rounds int) ([]*PipelineTiming, error) {
	var out []*PipelineTiming
	for _, e := range contracts.All() {
		t, err := MeasurePipeline(e.Name, rounds)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		out = append(out, t)
	}
	// The paper's figure is sorted by total time, descending.
	sort.Slice(out, func(i, j int) bool { return out[i].Total() > out[j].Total() })
	return out, nil
}

// PrintFig12 renders the per-stage timings (µs) plus the Sec. 5.1.1
// aggregate: the analysis overhead relative to parse+typecheck.
func PrintFig12(out io.Writer, rows []*PipelineTiming) {
	fmt.Fprintf(out, "%-24s %10s %12s %12s %9s\n", "contract", "parse(µs)", "typecheck(µs)", "analysis(µs)", "overhead")
	var base, ana time.Duration
	for _, r := range rows {
		overhead := float64(r.Analysis) / float64(r.Parse+r.Typecheck) * 100
		fmt.Fprintf(out, "%-24s %10.1f %12.1f %12.1f %8.1f%%\n",
			r.Contract,
			float64(r.Parse.Nanoseconds())/1e3,
			float64(r.Typecheck.Nanoseconds())/1e3,
			float64(r.Analysis.Nanoseconds())/1e3,
			overhead)
		base += r.Parse + r.Typecheck
		ana += r.Analysis
	}
	fmt.Fprintf(out, "\nSec 5.1.1: analysis adds %.0f%% to total deployment time (paper: ~46%%)\n",
		float64(ana)/float64(base+ana)*100)
}

// GEStats computes the Fig. 13 statistics and the Sec. 5.2 table rows
// for a set of contracts.
type GEStats struct {
	Contract       string
	LOC            int
	NumTransitions int
	LargestGE      int
	MaximalGE      int
}

// RunGE computes GE statistics for the named contracts (all corpus
// contracts if names is empty).
func RunGE(names []string) ([]*GEStats, error) {
	if len(names) == 0 {
		for _, e := range contracts.All() {
			names = append(names, e.Name)
		}
	}
	var out []*GEStats
	for _, name := range names {
		e, err := contracts.Get(name)
		if err != nil {
			return nil, err
		}
		chk := contracts.MustParse(name)
		a, err := analysis.New(chk)
		if err != nil {
			return nil, err
		}
		sums, err := a.AnalyzeAll()
		if err != nil {
			return nil, err
		}
		var fields []string
		for f := range chk.FieldTypes {
			fields = append(fields, f)
		}
		fields = append(fields, "_balance")
		res, err := ge.Analyze(name, sums, fields)
		if err != nil {
			return nil, err
		}
		out = append(out, &GEStats{
			Contract:       name,
			LOC:            contracts.LinesOfCode(e.Source),
			NumTransitions: res.NumTransitions,
			LargestGE:      res.LargestGE,
			MaximalGE:      res.MaximalGE,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Contract < out[j].Contract })
	return out, nil
}

// PrintFig13 renders the Fig. 13a/13b series: (#transitions, largest
// GE size) and (#transitions, #maximal GE signatures) per contract.
func PrintFig13(out io.Writer, stats []*GEStats) {
	fmt.Fprintf(out, "%-24s %12s %12s %12s\n", "contract", "#transitions", "largest-GE", "#maximal-GE")
	for _, s := range stats {
		fmt.Fprintf(out, "%-24s %12d %12d %12d\n", s.Contract, s.NumTransitions, s.LargestGE, s.MaximalGE)
	}
}

// PrintTable52 renders the Sec. 5.2 contract table for the five
// evaluation contracts.
func PrintTable52(out io.Writer, stats []*GEStats) {
	fmt.Fprintf(out, "%-20s %6s %8s %10s %10s\n", "Contract", "LOC", "#Trans", "Larg.GES", "#Max.GES")
	for _, s := range stats {
		fmt.Fprintf(out, "%-20s %6d %8d %10d %10d\n",
			s.Contract, s.LOC, s.NumTransitions, s.LargestGE, s.MaximalGE)
	}
}

// TransitionHistogram returns the Sec. 5.1.2 bar chart data: how many
// corpus contracts have n transitions.
func TransitionHistogram() (map[int]int, error) {
	all, err := contracts.ParseAll()
	if err != nil {
		return nil, err
	}
	hist := make(map[int]int)
	for _, chk := range all {
		hist[len(chk.Module.Contract.Transitions)]++
	}
	return hist, nil
}

// PrintHistogram renders the transition histogram.
func PrintHistogram(out io.Writer, hist map[int]int) {
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintf(out, "%-13s %s\n", "#transitions", "#contracts")
	for _, k := range keys {
		fmt.Fprintf(out, "%-13d ", k)
		for i := 0; i < hist[k]; i++ {
			fmt.Fprint(out, "█")
		}
		fmt.Fprintf(out, " %d\n", hist[k])
	}
}

// Summaries returns the rendered Fig. 8-style effect summaries of a
// contract, keyed by transition.
func Summaries(name string) (map[string]*domain.Summary, error) {
	chk := contracts.MustParse(name)
	a, err := analysis.New(chk)
	if err != nil {
		return nil, err
	}
	return a.AnalyzeAll()
}
