package obs

import "sync"

// StageCollector is a Recorder that keeps the per-stage timings of the
// most recent epoch and a running total across epochs. The benchmark
// harness attaches one via shard.WithRecorder and reads stage timings
// from it instead of threading fields through EpochStats.
type StageCollector struct {
	Nop // all events except EpochFinalized are ignored

	mu     sync.Mutex
	last   EpochSummary
	total  EpochSummary
	epochs int
}

// NewStageCollector creates an empty collector.
func NewStageCollector() *StageCollector { return &StageCollector{} }

// EpochFinalized implements Recorder.
func (c *StageCollector) EpochFinalized(s EpochSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last = s
	c.total.add(s)
	c.epochs++
}

// Last returns the most recently finalized epoch's summary.
func (c *StageCollector) Last() EpochSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Total returns the sum over every finalized epoch (counts and
// durations accumulate; Epoch holds the latest epoch number).
func (c *StageCollector) Total() EpochSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Epochs returns how many epochs have been finalized.
func (c *StageCollector) Epochs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs
}
