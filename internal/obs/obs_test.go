package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tx.committed")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("tx.committed") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("mempool.size")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	snap := r.Snapshot()
	if snap.Counters["tx.committed"] != 5 || snap.Gauges["mempool.size"] != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
	// The snapshot is immutable: later updates don't change it.
	c.Inc()
	if snap.Counters["tx.committed"] != 5 {
		t.Error("snapshot mutated by a later counter update")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.TimeHistogram("epoch.wall_time")
	h.ObserveDuration(500 * time.Nanosecond) // below first bound -> bucket 0
	h.ObserveDuration(time.Microsecond)      // == first bound (inclusive)
	h.ObserveDuration(3 * time.Millisecond)  // 2ms < v <= 5ms
	h.ObserveDuration(time.Minute)           // overflow
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	hs := r.Snapshot().Histograms["epoch.wall_time"]
	got := map[int64]int64{}
	for _, b := range hs.Buckets {
		got[b.Le] = b.Count
	}
	if got[int64(time.Microsecond)] != 2 {
		t.Errorf("1µs bucket = %d, want 2 (below-first and at-bound)", got[int64(time.Microsecond)])
	}
	if got[int64(5*time.Millisecond)] != 1 {
		t.Errorf("5ms bucket = %d, want 1", got[int64(5*time.Millisecond)])
	}
	if got[-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", got[-1])
	}
	if hs.Mean() <= 0 {
		t.Error("mean not positive")
	}
}

func TestSizeHistogramLayout(t *testing.T) {
	h := NewRegistry().SizeHistogram("shard.queue_depth")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1025)
	if h.Count() != 3 || h.Sum() != 1026 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.SizeHistogram("h").Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["a"] != 1 || round.Histograms["h"].Count != 1 {
		t.Errorf("round-tripped snapshot = %+v", round)
	}
}

func TestJournalEmitsOneLinePerEvent(t *testing.T) {
	var buf bytes.Buffer
	var tick int64
	j := NewJournal(&buf, WithClock(func() time.Duration {
		tick++
		return time.Duration(tick)
	}))
	j.TxDispatched(1, 42, 3, "constraints satisfied")
	j.ShardExecStart(1, 3, 10)
	j.ShardExecEnd(1, 3, 5*time.Millisecond)
	j.MicroBlockSealed(1, 3, 10, 1, 0, 123)
	j.DeltaMerged(1, 1, 1, 7, 0, time.Millisecond)
	j.TxRequeued(1, -1, 2)
	j.OverflowGuardTripped(1, 0, 9)
	j.EpochFinalized(EpochSummary{Epoch: 1, Committed: 10})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8:\n%s", len(lines), buf.String())
	}
	wantEvents := []string{
		"tx_dispatched", "shard_exec_start", "shard_exec_end",
		"micro_block_sealed", "delta_merged", "tx_requeued",
		"overflow_guard_tripped", "epoch_finalized",
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if m["event"] != wantEvents[i] {
			t.Errorf("line %d event = %v, want %s", i, m["event"], wantEvents[i])
		}
		if m["seq"] != float64(i+1) {
			t.Errorf("line %d seq = %v, want %d", i, m["seq"], i+1)
		}
		if m["t_ns"] != float64(i+1) {
			t.Errorf("line %d t_ns = %v, want %d (injected clock)", i, m["t_ns"], i+1)
		}
		if m["epoch"] != float64(1) {
			t.Errorf("line %d epoch = %v, want 1", i, m["epoch"])
		}
	}
}

func TestJournalEscapesReasonStrings(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.TxDispatched(1, 1, -1, `unshardable transition (⊥) with "quotes"`)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("escaped reason broke the line: %v\n%s", err, buf.String())
	}
	if !strings.Contains(m["reason"].(string), "⊥") {
		t.Errorf("reason mangled: %q", m["reason"])
	}
}

func TestMultiFansOutAndDropsNops(t *testing.T) {
	if _, isNop := Multi().(Nop); !isNop {
		t.Error("Multi() should collapse to Nop")
	}
	if _, isNop := Multi(Nop{}, nil, Nop{}).(Nop); !isNop {
		t.Error("Multi of nops should collapse to Nop")
	}
	c1, c2 := NewStageCollector(), NewStageCollector()
	if Multi(Nop{}, c1) != Recorder(c1) {
		t.Error("Multi with one real recorder should return it unwrapped")
	}
	m := Multi(c1, c2)
	m.EpochFinalized(EpochSummary{Epoch: 3, Committed: 2})
	for i, c := range []*StageCollector{c1, c2} {
		if c.Last().Committed != 2 || c.Epochs() != 1 {
			t.Errorf("collector %d did not receive the fanned-out event: %+v", i, c.Last())
		}
	}
}

func TestStageCollectorTotals(t *testing.T) {
	c := NewStageCollector()
	c.EpochFinalized(EpochSummary{Epoch: 1, Committed: 3, Dispatch: time.Millisecond, ExecSum: 2 * time.Millisecond})
	c.EpochFinalized(EpochSummary{Epoch: 2, Committed: 4, Dispatch: time.Millisecond, Merge: time.Millisecond})
	tot := c.Total()
	if tot.Committed != 7 || tot.Dispatch != 2*time.Millisecond || tot.Epoch != 2 {
		t.Errorf("total = %+v", tot)
	}
	if c.Last().Committed != 4 {
		t.Errorf("last = %+v", c.Last())
	}
	want := tot.Dispatch + tot.ExecSum + tot.Merge + tot.DSExec + tot.Consensus
	if tot.SequentialWall() != want {
		t.Errorf("SequentialWall = %v, want %v", tot.SequentialWall(), want)
	}
}

// TestNopRecorderZeroAllocs pins the observability contract the hot
// path relies on: with tracing off (the default Nop recorder) an event
// call through the Recorder interface performs zero allocations.
func TestNopRecorderZeroAllocs(t *testing.T) {
	var rec Recorder = Nop{}
	summary := EpochSummary{Epoch: 1, Committed: 10}
	allocs := testing.AllocsPerRun(1000, func() {
		rec.TxDispatched(1, 2, 3, "constraints satisfied")
		rec.ShardExecStart(1, 0, 100)
		rec.ShardExecEnd(1, 0, time.Millisecond)
		rec.MicroBlockSealed(1, 0, 10, 2, 0, 999)
		rec.DeltaMerged(1, 1, 2, 3, 0, time.Millisecond)
		rec.TxRequeued(1, -1, 4)
		rec.OverflowGuardTripped(1, 0, 7)
		rec.TxAdmitted(1, 8, false, false)
		rec.TxPoolRejected(1, 9, "pool full")
		rec.TxEvicted(1, 10, "age")
		rec.MempoolDrained(1, 100, 5, 1, time.Millisecond)
		rec.FrameSent("shard-0", "ds", "micro_block", 512)
		rec.FrameDropped("shard-0", "ds", "micro_block", 512)
		rec.FrameCorrupted("ds", "shard-1", "tx_batch", 128)
		rec.EpochFinalized(summary)
	})
	if allocs != 0 {
		t.Errorf("Nop recorder allocates %.1f/op, want 0", allocs)
	}
}

// TestJournalFrameEvents covers the transport-layer events: they carry
// node names and frame sizes instead of an epoch.
func TestJournalFrameEvents(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.FrameSent("ds", "shard-0", "tx_batch", 128)
	j.FrameDropped("shard-0", "ds", "micro_block", 512)
	j.FrameCorrupted("ds", "lookup", "final_block", 2048)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	wantEvents := []string{"frame_sent", "frame_dropped", "frame_corrupted"}
	wantBytes := []float64{128, 512, 2048}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if m["event"] != wantEvents[i] {
			t.Errorf("line %d event = %v, want %s", i, m["event"], wantEvents[i])
		}
		if m["bytes"] != wantBytes[i] {
			t.Errorf("line %d bytes = %v, want %v", i, m["bytes"], wantBytes[i])
		}
		if _, hasEpoch := m["epoch"]; hasEpoch {
			t.Errorf("line %d carries an epoch field; frame events must not", i)
		}
		if m["from"] == "" || m["to"] == "" || m["msg"] == "" {
			t.Errorf("line %d missing from/to/msg: %s", i, line)
		}
	}
}

// Counter updates must also stay allocation-free: metrics are always
// on, so the dispatcher hot path increments them per transaction.
func TestCounterZeroAllocs(t *testing.T) {
	c := NewRegistry().Counter("x")
	h := NewRegistry().TimeHistogram("y")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.ObserveDuration(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("counter/histogram update allocates %.1f/op, want 0", allocs)
	}
}
