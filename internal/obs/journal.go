package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// Journal is a Recorder that streams every event as one JSON line
// (JSONL). Each line carries a monotonically increasing sequence
// number, the sim-time stamp produced by the journal's clock, the event
// name, and the event's fields in a fixed order.
//
// The journal is safe for concurrent use; lines are written atomically
// under an internal mutex. Event interleaving across shards follows
// goroutine scheduling in the parallel pipeline — use the sequential
// pipeline when a deterministic journal is required (the golden-file
// test in internal/shard does).
type Journal struct {
	mu    sync.Mutex
	w     *bufio.Writer
	clock func() time.Duration
	seq   uint64
	buf   []byte
	err   error
}

// JournalOption configures a Journal.
type JournalOption func(*Journal)

// WithClock replaces the journal's sim-time source. The default clock
// is monotonic host time since the journal was created; tests inject a
// deterministic counter.
func WithClock(clock func() time.Duration) JournalOption {
	return func(j *Journal) { j.clock = clock }
}

// NewJournal creates a journal writing JSONL to w. Call Close (or
// Flush) when done — events are buffered.
func NewJournal(w io.Writer, opts ...JournalOption) *Journal {
	start := time.Now()
	j := &Journal{
		w:     bufio.NewWriter(w),
		clock: func() time.Duration { return time.Since(start) },
		buf:   make([]byte, 0, 256),
	}
	for _, o := range opts {
		o(j)
	}
	return j
}

// Flush writes buffered events through to the underlying writer and
// returns the first write error encountered so far.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes the journal. The underlying writer is not closed (the
// journal does not own it).
func (j *Journal) Close() error { return j.Flush() }

// begin starts a line: {"seq":N,"t_ns":T,"event":"...","epoch":E
// and returns with j.mu held.
func (j *Journal) begin(event string, epoch uint64) []byte {
	j.mu.Lock()
	j.seq++
	b := j.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, j.seq, 10)
	b = append(b, `,"t_ns":`...)
	b = strconv.AppendInt(b, int64(j.clock()), 10)
	b = append(b, `,"event":"`...)
	b = append(b, event...)
	b = append(b, `","epoch":`...)
	b = strconv.AppendUint(b, epoch, 10)
	return b
}

// end closes the line, writes it, and releases j.mu.
func (j *Journal) end(b []byte) {
	b = append(b, "}\n"...)
	j.buf = b[:0]
	if _, err := j.w.Write(b); err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

func appendInt(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func appendStr(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendQuote(b, v)
}

func appendBool(b []byte, key string, v bool) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendBool(b, v)
}

// TxDispatched implements Recorder.
func (j *Journal) TxDispatched(epoch, tx uint64, shard int, reason string) {
	b := j.begin("tx_dispatched", epoch)
	b = appendInt(b, "tx", int64(tx))
	b = appendInt(b, "shard", int64(shard))
	b = appendStr(b, "reason", reason)
	j.end(b)
}

// ShardExecStart implements Recorder.
func (j *Journal) ShardExecStart(epoch uint64, shard, queued int) {
	b := j.begin("shard_exec_start", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "queued", int64(queued))
	j.end(b)
}

// ShardExecEnd implements Recorder.
func (j *Journal) ShardExecEnd(epoch uint64, shard int, took time.Duration) {
	b := j.begin("shard_exec_end", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "took_ns", int64(took))
	j.end(b)
}

// MicroBlockSealed implements Recorder.
func (j *Journal) MicroBlockSealed(epoch uint64, shard, receipts, deltas, deferred int, gasUsed uint64) {
	b := j.begin("micro_block_sealed", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "receipts", int64(receipts))
	b = appendInt(b, "deltas", int64(deltas))
	b = appendInt(b, "deferred", int64(deferred))
	b = appendInt(b, "gas_used", int64(gasUsed))
	j.end(b)
}

// ShardGroupsFormed implements Recorder.
func (j *Journal) ShardGroupsFormed(epoch uint64, shard, groups, largest, residue int) {
	b := j.begin("shard_groups_formed", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "groups", int64(groups))
	b = appendInt(b, "largest", int64(largest))
	b = appendInt(b, "residue", int64(residue))
	j.end(b)
}

// GroupFoldDone implements Recorder.
func (j *Journal) GroupFoldDone(epoch uint64, shard, contracts int, took time.Duration) {
	b := j.begin("group_fold", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "contracts", int64(contracts))
	b = appendInt(b, "took_ns", int64(took))
	j.end(b)
}

// DeltaMerged implements Recorder.
func (j *Journal) DeltaMerged(epoch uint64, contracts, deltas, entries, conflicts int, took time.Duration) {
	b := j.begin("delta_merged", epoch)
	b = appendInt(b, "contracts", int64(contracts))
	b = appendInt(b, "deltas", int64(deltas))
	b = appendInt(b, "entries", int64(entries))
	b = appendInt(b, "conflicts", int64(conflicts))
	b = appendInt(b, "took_ns", int64(took))
	j.end(b)
}

// TxRequeued implements Recorder.
func (j *Journal) TxRequeued(epoch uint64, shard, count int) {
	b := j.begin("tx_requeued", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "count", int64(count))
	j.end(b)
}

// ShardFault implements Recorder.
func (j *Journal) ShardFault(epoch uint64, shard int, kind string, lost int) {
	b := j.begin("shard_fault", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendStr(b, "kind", kind)
	b = appendInt(b, "lost", int64(lost))
	j.end(b)
}

// ViewChange implements Recorder.
func (j *Journal) ViewChange(epoch uint64, shard int, took time.Duration) {
	b := j.begin("view_change", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "took_ns", int64(took))
	j.end(b)
}

// ShardEscalated implements Recorder.
func (j *Journal) ShardEscalated(epoch uint64, shard, txs int) {
	b := j.begin("shard_escalated", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "txs", int64(txs))
	j.end(b)
}

// OverflowGuardTripped implements Recorder.
func (j *Journal) OverflowGuardTripped(epoch uint64, shard int, tx uint64) {
	b := j.begin("overflow_guard_tripped", epoch)
	b = appendInt(b, "shard", int64(shard))
	b = appendInt(b, "tx", int64(tx))
	j.end(b)
}

// TxAdmitted implements Recorder.
func (j *Journal) TxAdmitted(epoch, tx uint64, parked, replaced bool) {
	b := j.begin("tx_admitted", epoch)
	b = appendInt(b, "tx", int64(tx))
	b = appendBool(b, "parked", parked)
	b = appendBool(b, "replaced", replaced)
	j.end(b)
}

// TxPoolRejected implements Recorder.
func (j *Journal) TxPoolRejected(epoch, tx uint64, reason string) {
	b := j.begin("tx_pool_rejected", epoch)
	b = appendInt(b, "tx", int64(tx))
	b = appendStr(b, "reason", reason)
	j.end(b)
}

// TxEvicted implements Recorder.
func (j *Journal) TxEvicted(epoch, tx uint64, reason string) {
	b := j.begin("tx_evicted", epoch)
	b = appendInt(b, "tx", int64(tx))
	b = appendStr(b, "reason", reason)
	j.end(b)
}

// MempoolDrained implements Recorder.
func (j *Journal) MempoolDrained(epoch uint64, batch, remaining, parked int, took time.Duration) {
	b := j.begin("mempool_drained", epoch)
	b = appendInt(b, "batch", int64(batch))
	b = appendInt(b, "remaining", int64(remaining))
	b = appendInt(b, "parked", int64(parked))
	b = appendInt(b, "took_ns", int64(took))
	j.end(b)
}

// TransitionCompiled implements Recorder.
func (j *Journal) TransitionCompiled(epoch uint64, contract, transition string, compiled, fastPath bool) {
	b := j.begin("transition_compiled", epoch)
	b = appendStr(b, "contract", contract)
	b = appendStr(b, "transition", transition)
	b = appendBool(b, "compiled", compiled)
	b = appendBool(b, "fast_path", fastPath)
	j.end(b)
}

// frame starts a transport-event line. Frame events carry node names
// instead of an epoch: links outlive epochs and the transport layer
// does not parse payloads.
func (j *Journal) frame(event, from, to, msg string, bytes int) {
	j.mu.Lock()
	j.seq++
	b := j.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, j.seq, 10)
	b = append(b, `,"t_ns":`...)
	b = strconv.AppendInt(b, int64(j.clock()), 10)
	b = append(b, `,"event":"`...)
	b = append(b, event...)
	b = append(b, '"')
	b = appendStr(b, "from", from)
	b = appendStr(b, "to", to)
	b = appendStr(b, "msg", msg)
	b = appendInt(b, "bytes", int64(bytes))
	j.end(b)
}

// FrameSent implements Recorder.
func (j *Journal) FrameSent(from, to, msg string, bytes int) {
	j.frame("frame_sent", from, to, msg, bytes)
}

// FrameDropped implements Recorder.
func (j *Journal) FrameDropped(from, to, msg string, bytes int) {
	j.frame("frame_dropped", from, to, msg, bytes)
}

// FrameCorrupted implements Recorder.
func (j *Journal) FrameCorrupted(from, to, msg string, bytes int) {
	j.frame("frame_corrupted", from, to, msg, bytes)
}

// EpochFinalized implements Recorder.
func (j *Journal) EpochFinalized(s EpochSummary) {
	b := j.begin("epoch_finalized", s.Epoch)
	b = appendInt(b, "committed", int64(s.Committed))
	b = appendInt(b, "failed", int64(s.Failed))
	b = appendInt(b, "rejected", int64(s.Rejected))
	b = appendInt(b, "deferred", int64(s.Deferred))
	b = appendInt(b, "ds_committed", int64(s.DSCommitted))
	b = appendInt(b, "delta_entries", int64(s.DeltaEntries))
	b = appendInt(b, "dispatch_ns", int64(s.Dispatch))
	b = appendInt(b, "exec_max_ns", int64(s.ExecMax))
	b = appendInt(b, "exec_sum_ns", int64(s.ExecSum))
	b = appendInt(b, "merge_ns", int64(s.Merge))
	b = appendInt(b, "ds_ns", int64(s.DSExec))
	b = appendInt(b, "consensus_ns", int64(s.Consensus))
	b = appendInt(b, "wall_ns", int64(s.Wall))
	b = appendInt(b, "measured_ns", int64(s.Measured))
	j.end(b)
}
