package obs

import "time"

// EpochSummary is the per-epoch roll-up carried by the EpochFinalized
// event: transaction counts plus the per-stage timings of the Fig. 10
// pipeline. All durations are host-measured except Consensus and Wall,
// which are modelled (see internal/consensus).
type EpochSummary struct {
	Epoch       uint64
	Committed   int
	Failed      int
	Rejected    int
	Deferred    int
	DSCommitted int
	// DeltaEntries is the total number of merged state components.
	DeltaEntries int

	// Per-stage timings. ExecMax is the slowest shard (what the modelled
	// pipeline charges, shards being distinct machines); ExecSum totals
	// every shard (what a non-pipelined executor would pay).
	Dispatch  time.Duration
	ExecMax   time.Duration
	ExecSum   time.Duration
	Merge     time.Duration
	DSExec    time.Duration
	Consensus time.Duration
	// Wall is the modelled epoch duration (Dispatch + ExecMax + Merge +
	// DSExec + Consensus); Measured is the host wall-clock actually
	// spent.
	Wall     time.Duration
	Measured time.Duration
}

// SequentialWall is the modelled duration of the same epoch on a
// non-pipelined executor: shard queues charged back-to-back instead of
// in parallel.
func (s EpochSummary) SequentialWall() time.Duration {
	return s.Dispatch + s.ExecSum + s.Merge + s.DSExec + s.Consensus
}

// add accumulates another epoch into s (durations and counts sum;
// Epoch tracks the latest).
func (s *EpochSummary) add(o EpochSummary) {
	s.Epoch = o.Epoch
	s.Committed += o.Committed
	s.Failed += o.Failed
	s.Rejected += o.Rejected
	s.Deferred += o.Deferred
	s.DSCommitted += o.DSCommitted
	s.DeltaEntries += o.DeltaEntries
	s.Dispatch += o.Dispatch
	s.ExecMax += o.ExecMax
	s.ExecSum += o.ExecSum
	s.Merge += o.Merge
	s.DSExec += o.DSExec
	s.Consensus += o.Consensus
	s.Wall += o.Wall
	s.Measured += o.Measured
}

// Recorder receives the typed trace events the pipeline emits. Event
// methods take only scalar arguments (and the by-value EpochSummary),
// so a call into the no-op implementation allocates nothing.
//
// Implementations must be safe for concurrent use: shard-scoped events
// (ShardExecStart/End, MicroBlockSealed, OverflowGuardTripped) are
// emitted from worker goroutines when the parallel pipeline is enabled.
// Event order across different shards is deterministic only in the
// sequential pipeline.
type Recorder interface {
	// TxDispatched reports the routing verdict for one transaction:
	// shard >= 0 is an in-shard placement, -1 the DS committee, -2 a
	// rejection. Reason is the dispatcher's precompiled reason string.
	TxDispatched(epoch, tx uint64, shard int, reason string)
	// ShardExecStart marks a shard starting its queue of queued
	// transactions.
	ShardExecStart(epoch uint64, shard, queued int)
	// ShardExecEnd marks a shard finishing execution after took.
	ShardExecEnd(epoch uint64, shard int, took time.Duration)
	// MicroBlockSealed reports a shard's per-epoch output: receipts
	// produced, state deltas extracted, transactions deferred past the
	// gas limit, and gas committed.
	MicroBlockSealed(epoch uint64, shard, receipts, deltas, deferred int, gasUsed uint64)
	// ShardGroupsFormed reports an intra-shard conflict-group partition:
	// groups formed over the batch, the largest group's size, and the
	// sequential residue (transactions sharing a group with at least one
	// other). Emitted only when the grouped path proceeds to execution.
	ShardGroupsFormed(epoch uint64, shard, groups, largest, residue int)
	// GroupFoldDone reports the deterministic fold of the group results
	// back into one MicroBlock: contracts whose per-group deltas were
	// join-merged, and the fold duration.
	GroupFoldDone(epoch uint64, shard, contracts int, took time.Duration)
	// DeltaMerged reports the DS committee's three-way merge: contracts
	// touched, deltas folded, total merged components, join conflicts
	// (non-zero only when the merge aborts), and its duration.
	DeltaMerged(epoch uint64, contracts, deltas, entries, conflicts int, took time.Duration)
	// TxRequeued reports count transactions deferred back into the
	// mempool (shard -1 = the DS committee's deferrals).
	TxRequeued(epoch uint64, shard, count int)
	// ShardFault reports an injected fault taking effect on a shard:
	// kind is the directive label ("crash", "drop", "corrupt",
	// "straggle") and lost the number of batch transactions requeued by
	// the recovery path (0 for straggle — the MicroBlock still seals).
	ShardFault(epoch uint64, shard int, kind string, lost int)
	// ViewChange reports a PBFT view change charged to a shard's
	// committee after its MicroBlock went missing or failed validation.
	ViewChange(epoch uint64, shard int, took time.Duration)
	// ShardEscalated reports the dispatcher's unavailability backoff
	// escalating a repeatedly faulting shard: txs transactions the
	// routing placed on the shard were executed by the DS committee
	// instead this epoch.
	ShardEscalated(epoch uint64, shard, txs int)
	// OverflowGuardTripped reports a transaction rejected by the Sec. 6
	// conservative integer-overflow guard.
	OverflowGuardTripped(epoch uint64, shard int, tx uint64)
	// TxAdmitted reports a transaction accepted into the mempool.
	// parked marks an out-of-order nonce held in the sender's future
	// queue until its gap fills; replaced marks a replacement-by-fee of
	// a pending transaction with the same (sender, nonce).
	TxAdmitted(epoch, tx uint64, parked, replaced bool)
	// TxPoolRejected reports a transaction refused at mempool admission.
	// Reason is a precompiled constant (pool full, underpriced, nonce
	// gap, stale nonce, replayed nonce, unknown sender).
	TxPoolRejected(epoch, tx uint64, reason string)
	// TxEvicted reports a previously admitted transaction dropped from
	// the mempool (reason "capacity" or "age").
	TxEvicted(epoch, tx uint64, reason string)
	// MempoolDrained reports one epoch's pull from the mempool: batch
	// transactions handed to the dispatcher, remaining pool depth,
	// how many of the remaining are parked behind nonce gaps, and the
	// drain duration.
	MempoolDrained(epoch uint64, batch, remaining, parked int, took time.Duration)
	// TransitionCompiled reports the deploy-time compilation outcome of
	// one transition: whether it lowered to the closure-chain executor
	// (compiled=false means it will run on the interpreter fallback)
	// and whether the compiled form engaged the fused Option fast path.
	TransitionCompiled(epoch uint64, contract, transition string, compiled, fastPath bool)
	// FrameSent reports one encoded frame leaving a node over a
	// transport link. msg is the wire message type label and bytes the
	// full frame size. Transport events carry node names, not epochs —
	// links outlive epochs and the transport layer does not parse
	// payloads.
	FrameSent(from, to, msg string, bytes int)
	// FrameDropped reports a frame discarded in flight by the
	// fault-injecting link layer; the receiver never sees it.
	FrameDropped(from, to, msg string, bytes int)
	// FrameCorrupted reports a frame whose payload bytes were flipped in
	// flight; the receiver sees the damaged frame and its decoder is
	// expected to reject it.
	FrameCorrupted(from, to, msg string, bytes int)
	// EpochFinalized is the last event of an epoch and carries the full
	// per-stage summary.
	EpochFinalized(s EpochSummary)
}

// Nop is the default Recorder: every method is an empty body, so the
// instrumented hot path stays allocation-free when tracing is off.
type Nop struct{}

// TxDispatched implements Recorder.
func (Nop) TxDispatched(epoch, tx uint64, shard int, reason string) {}

// ShardExecStart implements Recorder.
func (Nop) ShardExecStart(epoch uint64, shard, queued int) {}

// ShardExecEnd implements Recorder.
func (Nop) ShardExecEnd(epoch uint64, shard int, took time.Duration) {}

// MicroBlockSealed implements Recorder.
func (Nop) MicroBlockSealed(epoch uint64, shard, receipts, deltas, deferred int, gasUsed uint64) {}

// ShardGroupsFormed implements Recorder.
func (Nop) ShardGroupsFormed(epoch uint64, shard, groups, largest, residue int) {}

// GroupFoldDone implements Recorder.
func (Nop) GroupFoldDone(epoch uint64, shard, contracts int, took time.Duration) {}

// DeltaMerged implements Recorder.
func (Nop) DeltaMerged(epoch uint64, contracts, deltas, entries, conflicts int, took time.Duration) {
}

// TxRequeued implements Recorder.
func (Nop) TxRequeued(epoch uint64, shard, count int) {}

// ShardFault implements Recorder.
func (Nop) ShardFault(epoch uint64, shard int, kind string, lost int) {}

// ViewChange implements Recorder.
func (Nop) ViewChange(epoch uint64, shard int, took time.Duration) {}

// ShardEscalated implements Recorder.
func (Nop) ShardEscalated(epoch uint64, shard, txs int) {}

// OverflowGuardTripped implements Recorder.
func (Nop) OverflowGuardTripped(epoch uint64, shard int, tx uint64) {}

// TxAdmitted implements Recorder.
func (Nop) TxAdmitted(epoch, tx uint64, parked, replaced bool) {}

// TxPoolRejected implements Recorder.
func (Nop) TxPoolRejected(epoch, tx uint64, reason string) {}

// TxEvicted implements Recorder.
func (Nop) TxEvicted(epoch, tx uint64, reason string) {}

// MempoolDrained implements Recorder.
func (Nop) MempoolDrained(epoch uint64, batch, remaining, parked int, took time.Duration) {}

// TransitionCompiled implements Recorder.
func (Nop) TransitionCompiled(epoch uint64, contract, transition string, compiled, fastPath bool) {}

// FrameSent implements Recorder.
func (Nop) FrameSent(from, to, msg string, bytes int) {}

// FrameDropped implements Recorder.
func (Nop) FrameDropped(from, to, msg string, bytes int) {}

// FrameCorrupted implements Recorder.
func (Nop) FrameCorrupted(from, to, msg string, bytes int) {}

// EpochFinalized implements Recorder.
func (Nop) EpochFinalized(s EpochSummary) {}

// multi fans every event out to several recorders in order.
type multi []Recorder

// Multi combines recorders: Nop members are dropped, zero remaining
// recorders collapse to Nop, and a single recorder is returned as-is.
func Multi(recs ...Recorder) Recorder {
	kept := make(multi, 0, len(recs))
	for _, r := range recs {
		if r == nil {
			continue
		}
		if _, isNop := r.(Nop); isNop {
			continue
		}
		kept = append(kept, r)
	}
	switch len(kept) {
	case 0:
		return Nop{}
	case 1:
		return kept[0]
	}
	return kept
}

// TxDispatched implements Recorder.
func (m multi) TxDispatched(epoch, tx uint64, shard int, reason string) {
	for _, r := range m {
		r.TxDispatched(epoch, tx, shard, reason)
	}
}

// ShardExecStart implements Recorder.
func (m multi) ShardExecStart(epoch uint64, shard, queued int) {
	for _, r := range m {
		r.ShardExecStart(epoch, shard, queued)
	}
}

// ShardExecEnd implements Recorder.
func (m multi) ShardExecEnd(epoch uint64, shard int, took time.Duration) {
	for _, r := range m {
		r.ShardExecEnd(epoch, shard, took)
	}
}

// MicroBlockSealed implements Recorder.
func (m multi) MicroBlockSealed(epoch uint64, shard, receipts, deltas, deferred int, gasUsed uint64) {
	for _, r := range m {
		r.MicroBlockSealed(epoch, shard, receipts, deltas, deferred, gasUsed)
	}
}

// ShardGroupsFormed implements Recorder.
func (m multi) ShardGroupsFormed(epoch uint64, shard, groups, largest, residue int) {
	for _, r := range m {
		r.ShardGroupsFormed(epoch, shard, groups, largest, residue)
	}
}

// GroupFoldDone implements Recorder.
func (m multi) GroupFoldDone(epoch uint64, shard, contracts int, took time.Duration) {
	for _, r := range m {
		r.GroupFoldDone(epoch, shard, contracts, took)
	}
}

// DeltaMerged implements Recorder.
func (m multi) DeltaMerged(epoch uint64, contracts, deltas, entries, conflicts int, took time.Duration) {
	for _, r := range m {
		r.DeltaMerged(epoch, contracts, deltas, entries, conflicts, took)
	}
}

// TxRequeued implements Recorder.
func (m multi) TxRequeued(epoch uint64, shard, count int) {
	for _, r := range m {
		r.TxRequeued(epoch, shard, count)
	}
}

// ShardFault implements Recorder.
func (m multi) ShardFault(epoch uint64, shard int, kind string, lost int) {
	for _, r := range m {
		r.ShardFault(epoch, shard, kind, lost)
	}
}

// ViewChange implements Recorder.
func (m multi) ViewChange(epoch uint64, shard int, took time.Duration) {
	for _, r := range m {
		r.ViewChange(epoch, shard, took)
	}
}

// ShardEscalated implements Recorder.
func (m multi) ShardEscalated(epoch uint64, shard, txs int) {
	for _, r := range m {
		r.ShardEscalated(epoch, shard, txs)
	}
}

// OverflowGuardTripped implements Recorder.
func (m multi) OverflowGuardTripped(epoch uint64, shard int, tx uint64) {
	for _, r := range m {
		r.OverflowGuardTripped(epoch, shard, tx)
	}
}

// TxAdmitted implements Recorder.
func (m multi) TxAdmitted(epoch, tx uint64, parked, replaced bool) {
	for _, r := range m {
		r.TxAdmitted(epoch, tx, parked, replaced)
	}
}

// TxPoolRejected implements Recorder.
func (m multi) TxPoolRejected(epoch, tx uint64, reason string) {
	for _, r := range m {
		r.TxPoolRejected(epoch, tx, reason)
	}
}

// TxEvicted implements Recorder.
func (m multi) TxEvicted(epoch, tx uint64, reason string) {
	for _, r := range m {
		r.TxEvicted(epoch, tx, reason)
	}
}

// MempoolDrained implements Recorder.
func (m multi) MempoolDrained(epoch uint64, batch, remaining, parked int, took time.Duration) {
	for _, r := range m {
		r.MempoolDrained(epoch, batch, remaining, parked, took)
	}
}

// TransitionCompiled implements Recorder.
func (m multi) TransitionCompiled(epoch uint64, contract, transition string, compiled, fastPath bool) {
	for _, r := range m {
		r.TransitionCompiled(epoch, contract, transition, compiled, fastPath)
	}
}

// FrameSent implements Recorder.
func (m multi) FrameSent(from, to, msg string, bytes int) {
	for _, r := range m {
		r.FrameSent(from, to, msg, bytes)
	}
}

// FrameDropped implements Recorder.
func (m multi) FrameDropped(from, to, msg string, bytes int) {
	for _, r := range m {
		r.FrameDropped(from, to, msg, bytes)
	}
}

// FrameCorrupted implements Recorder.
func (m multi) FrameCorrupted(from, to, msg string, bytes int) {
	for _, r := range m {
		r.FrameCorrupted(from, to, msg, bytes)
	}
}

// EpochFinalized implements Recorder.
func (m multi) EpochFinalized(s EpochSummary) {
	for _, r := range m {
		r.EpochFinalized(s)
	}
}
