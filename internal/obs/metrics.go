// Package obs is the simulator's observability layer: a
// zero-dependency metrics registry (counters, gauges, and fixed-bucket
// time/size histograms) plus a structured epoch-trace journal.
//
// The package is wired into the pipeline through two channels:
//
//   - Metrics are always on. Instruments are plain atomics registered
//     once (at network/dispatcher construction) and updated lock-free
//     on the hot path, so steady-state epochs pay a handful of atomic
//     adds and allocate nothing. An immutable view is taken with
//     Registry.Snapshot.
//
//   - Tracing is opt-in. The pipeline calls the Recorder interface for
//     every typed event; the default Nop recorder compiles to empty
//     method calls with scalar arguments (no boxing, 0 allocs/op —
//     asserted by TestNopRecorderZeroAllocs), and a Journal recorder
//     streams JSONL when enabled.
//
// obs deliberately depends only on the standard library so every layer
// of the simulator (chain, dispatch, shard, consensus, bench) can use
// it without import cycles.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic; Add does
// not enforce this).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// TimeBuckets is the fixed bucket layout (upper bounds, nanoseconds)
// used by every time histogram: 1µs…10s in a 1-2-5 progression. A fixed
// layout keeps histograms mergeable across runs and snapshots
// byte-comparable.
var TimeBuckets = []int64{
	int64(1 * time.Microsecond), int64(2 * time.Microsecond), int64(5 * time.Microsecond),
	int64(10 * time.Microsecond), int64(20 * time.Microsecond), int64(50 * time.Microsecond),
	int64(100 * time.Microsecond), int64(200 * time.Microsecond), int64(500 * time.Microsecond),
	int64(1 * time.Millisecond), int64(2 * time.Millisecond), int64(5 * time.Millisecond),
	int64(10 * time.Millisecond), int64(20 * time.Millisecond), int64(50 * time.Millisecond),
	int64(100 * time.Millisecond), int64(200 * time.Millisecond), int64(500 * time.Millisecond),
	int64(1 * time.Second), int64(2 * time.Second), int64(5 * time.Second), int64(10 * time.Second),
}

// SizeBuckets is the fixed bucket layout (upper bounds) used by every
// size/count histogram: powers of two from 1 to 2^20.
var SizeBuckets = func() []int64 {
	b := make([]int64, 21)
	for i := range b {
		b[i] = 1 << i
	}
	return b
}()

// Histogram is a fixed-bucket histogram with atomic counts. Values
// above the last bound land in an overflow bucket.
type Histogram struct {
	bounds []int64 // immutable after construction
	counts []atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	// Linear scan: the layouts are ≤23 buckets and most observations
	// land early; this avoids the bounds checks of sort.Search on the
	// hot path and stays allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry holds named instruments. Registration (Counter, Gauge,
// TimeHistogram, SizeHistogram) is idempotent — the same name returns
// the same instrument — and intended for construction time; updates on
// the returned instruments are lock-free.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// TimeHistogram returns the histogram registered under name with the
// TimeBuckets layout, creating it on first use.
func (r *Registry) TimeHistogram(name string) *Histogram {
	return r.histogram(name, TimeBuckets)
}

// SizeHistogram returns the histogram registered under name with the
// SizeBuckets layout, creating it on first use.
func (r *Registry) SizeHistogram(name string) *Histogram {
	return r.histogram(name, SizeBuckets)
}

func (r *Registry) histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of
// observations with value <= Le. The overflow bucket has Le = -1.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the immutable view of one histogram. Empty
// buckets are elided.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is an immutable point-in-time view of a Registry. It shares
// no state with the live instruments: mutating the registry after the
// snapshot does not change it.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue
			}
			le := int64(-1) // overflow
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: n})
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON serialises the snapshot as indented JSON (map keys are
// emitted in sorted order, so the output is deterministic for a given
// set of values).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
