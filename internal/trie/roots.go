package trie

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// StateRoots projects the chain's canonical state — accounts plus every
// contract's field store — onto one Trie and maintains it incrementally
// from the same granularity the epoch pipeline already produces:
// per-account applications and per-(field, keypath) delta entries.
//
// Key scheme (sep is the keypath separator, matching chain.Keypath):
//
//	"a" ‖ addr                       → account leaf
//	"c" ‖ addr ‖ sep ‖ field         → scalar field leaf / empty-map marker
//	"c" ‖ addr ‖ sep ‖ field ‖ sep ‖ keypath → map entry leaf (nested keys
//	                                   joined by sep, exactly chain.Keypath)
//
// A non-empty map contributes only its entry leaves; an empty map —
// including the empty intermediates MapDelete leaves behind — is an
// explicit marker leaf at its own key. That distinction makes the
// projection injective on observable state, so the root is a
// commitment: two states with equal roots render identically.
//
// Methods lock internally: Root mutates cached hashes, and replicas
// may verify roots from a different goroutine than the epoch driver.
type StateRoots struct {
	mu sync.Mutex
	t  Trie
}

// sep separates path components inside trie keys. It must equal the
// separator chain.Keypath joins canonical keys with, because entry
// keys embed chain.Keypath output verbatim.
const sep = "\x1f"

var emptyMapLeaf = sha256.Sum256([]byte("\x02empty-map"))

// leafHash commits to one scalar runtime value via its canonical
// rendering (type-tagged for ints, deterministic sorted order for
// nested structures).
func leafHash(v value.Value) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write([]byte(value.CanonicalKey(v)))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func accountLeaf(acc *chain.Account) [32]byte {
	var scratch [10]byte
	h := sha256.New()
	h.Write([]byte{0x03})
	h.Write([]byte(acc.Balance.String()))
	h.Write([]byte{0})
	h.Write(scratch[:binary.PutUvarint(scratch[:], acc.Nonce)])
	if acc.IsContract {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func accountKey(addr chain.Address) []byte {
	k := make([]byte, 0, 1+len(addr))
	k = append(k, 'a')
	return append(k, addr[:]...)
}

func fieldKey(addr chain.Address, field string) []byte {
	k := make([]byte, 0, 1+len(addr)+1+len(field))
	k = append(k, 'c')
	k = append(k, addr[:]...)
	k = append(k, sep...)
	return append(k, field...)
}

// Root returns the current state root as a hex string.
func (s *StateRoots) Root() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.t.Root()
	return hex.EncodeToString(h[:])
}

// Len returns the number of leaves (accounts + state components).
func (s *StateRoots) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Len()
}

// TouchAccount re-commits one account after a balance/nonce change;
// acc == nil removes it.
func (s *StateRoots) TouchAccount(addr chain.Address, acc *chain.Account) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if acc == nil {
		s.t.Delete(accountKey(addr))
		return
	}
	s.t.Put(accountKey(addr), accountLeaf(acc))
}

// TouchWholeField re-renders one field from st (the contract's
// post-merge canonical state). Used for whole-field overwrites.
func (s *StateRoots) TouchWholeField(addr chain.Address, field string, st *eval.MemState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fk := fieldKey(addr, field)
	s.clear(fk)
	v, err := st.LoadField(field)
	if err != nil {
		return // field absent: the cleared subtree is the whole story
	}
	s.expand(fk, v)
}

// TouchEntry re-commits the single map entry (field, keys) from st.
// It maintains the empty-map markers on the entry's ancestors: an
// insert removes markers the now-non-empty intermediates may have
// left, and a delete walks ancestors deepest-first to mark the first
// surviving (possibly now-empty) map.
func (s *StateRoots) TouchEntry(addr chain.Address, field string, keys []value.Value, st *eval.MemState) {
	if len(keys) == 0 {
		s.TouchWholeField(addr, field, st)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fk := fieldKey(addr, field)
	ek := entryKey(fk, keys)
	s.clear(ek)
	if v, ok := lookup(st, field, keys); ok {
		// Every proper ancestor is a non-empty map now; drop any stale
		// empty-map marker sitting at its key (no-op if none).
		s.t.Delete(fk)
		for i := 1; i < len(keys); i++ {
			s.t.Delete(entryKey(fk, keys[:i]))
		}
		s.expand(ek, v)
		return
	}
	// Entry gone. Find the deepest surviving ancestor; if the delete
	// emptied it, it needs an explicit marker (its last child leaf
	// just left the trie).
	for i := len(keys) - 1; i >= 0; i-- {
		av, ok := lookup(st, field, keys[:i])
		if !ok {
			continue
		}
		if m, isMap := av.(*value.Map); isMap && m.Len() == 0 {
			ak := fk
			if i > 0 {
				ak = entryKey(fk, keys[:i])
			}
			s.t.Put(ak, emptyMapLeaf)
		}
		break
	}
}

// PutContractState replaces a contract's entire committed rendering
// (deploy-time initialization, snapshot restore).
func (s *StateRoots) PutContractState(addr chain.Address, st *eval.MemState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck := make([]byte, 0, 1+len(addr))
	ck = append(ck, 'c')
	ck = append(ck, addr[:]...)
	s.t.DeletePrefix(ck)
	for name, v := range st.Fields {
		s.expand(fieldKey(addr, name), v)
	}
}

// clear removes the leaf at key and any subtree of deeper components.
// The sep guard keeps sibling keys that merely share a byte prefix
// ("field" vs "fieldX") intact.
func (s *StateRoots) clear(key []byte) {
	s.t.Delete(key)
	s.t.DeletePrefix(append(append([]byte(nil), key...), sep...))
}

// expand renders v below key: scalars and empty maps become leaves,
// non-empty maps recurse per canonical entry key.
func (s *StateRoots) expand(key []byte, v value.Value) {
	m, isMap := v.(*value.Map)
	if !isMap {
		s.t.Put(key, leafHash(v))
		return
	}
	if m.Len() == 0 {
		s.t.Put(key, emptyMapLeaf)
		return
	}
	for ck, child := range m.Entries {
		childKey := make([]byte, 0, len(key)+1+len(ck))
		childKey = append(childKey, key...)
		childKey = append(childKey, sep...)
		childKey = append(childKey, ck...)
		s.expand(childKey, child)
	}
}

func entryKey(fk []byte, keys []value.Value) []byte {
	kp := chain.Keypath(keys)
	ek := make([]byte, 0, len(fk)+1+len(kp))
	ek = append(ek, fk...)
	ek = append(ek, sep...)
	return append(ek, kp...)
}

// lookup reads the value at (field, keys) from canonical state,
// walking nested maps by canonical key.
func lookup(st *eval.MemState, field string, keys []value.Value) (value.Value, bool) {
	v, err := st.LoadField(field)
	if err != nil {
		return nil, false
	}
	for _, k := range keys {
		m, ok := v.(*value.Map)
		if !ok {
			return nil, false
		}
		if v, ok = m.Get(k); !ok {
			return nil, false
		}
	}
	return v, true
}
