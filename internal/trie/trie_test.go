package trie

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func leaf(s string) [32]byte { return sha256.Sum256([]byte(s)) }

// rebuild constructs a fresh trie from the model map. Comparing its
// root with the incrementally maintained trie's proves the structure
// is canonical: history (insertion order, deletions, splits,
// collapses) must leave no trace.
func rebuild(model map[string][32]byte) *Trie {
	t := &Trie{}
	for k, v := range model {
		t.Put([]byte(k), v)
	}
	return t
}

func checkAgainstModel(t *testing.T, tr *Trie, model map[string][32]byte) {
	t.Helper()
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d keys", tr.Len(), len(model))
	}
	for k, want := range model {
		got, ok := tr.Get([]byte(k))
		if !ok || got != want {
			t.Fatalf("Get(%q) = %x ok=%v, want %x", k, got, ok, want)
		}
	}
	if got, want := tr.Root(), rebuild(model).Root(); got != want {
		t.Fatalf("incremental root %x diverges from fresh rebuild %x", got, want)
	}
}

func TestEmptyTrie(t *testing.T) {
	a, b := &Trie{}, &Trie{}
	if a.Root() != b.Root() {
		t.Fatal("empty tries disagree on root")
	}
	if a.Len() != 0 {
		t.Fatalf("empty trie Len = %d", a.Len())
	}
	if a.Delete([]byte("x")) {
		t.Fatal("Delete on empty trie reported a removal")
	}
	b.Put([]byte("k"), leaf("v"))
	if a.Root() == b.Root() {
		t.Fatal("non-empty trie hashes like the empty trie")
	}
	b.Delete([]byte("k"))
	if a.Root() != b.Root() {
		t.Fatal("deleting the only key does not restore the empty root")
	}
}

func TestPrefixKeysCoexist(t *testing.T) {
	// "field" a strict prefix of "fieldX", plus an empty key on the
	// root node itself: all three must hold independent values.
	tr := &Trie{}
	model := map[string][32]byte{
		"":       leaf("root"),
		"field":  leaf("a"),
		"fieldX": leaf("b"),
		"fieldY": leaf("c"),
	}
	for k, v := range model {
		tr.Put([]byte(k), v)
	}
	checkAgainstModel(t, tr, model)

	tr.Delete([]byte("field"))
	delete(model, "field")
	checkAgainstModel(t, tr, model)
}

func TestOverwriteChangesRoot(t *testing.T) {
	tr := &Trie{}
	tr.Put([]byte("k"), leaf("v1"))
	r1 := tr.Root()
	tr.Put([]byte("k"), leaf("v2"))
	if tr.Root() == r1 {
		t.Fatal("overwriting a leaf left the root unchanged")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", tr.Len())
	}
	tr.Put([]byte("k"), leaf("v1"))
	if tr.Root() != r1 {
		t.Fatal("restoring the old leaf does not restore the old root")
	}
}

func TestDeletePrefix(t *testing.T) {
	tr := &Trie{}
	model := map[string][32]byte{}
	put := func(k string) { tr.Put([]byte(k), leaf(k)); model[k] = leaf(k) }
	for _, k := range []string{
		"c/alpha", "c/alpha\x1fx", "c/alpha\x1fy", "c/alpha\x1fy\x1fz",
		"c/alphabet", "c/beta", "a1", "a2",
	} {
		put(k)
	}
	// Cut the "c/alpha\x1f" subtree: the sibling "c/alphabet" (shares
	// the byte prefix but not the separated path) must survive.
	n := tr.DeletePrefix([]byte("c/alpha\x1f"))
	if n != 3 {
		t.Fatalf("DeletePrefix removed %d keys, want 3", n)
	}
	for k := range model {
		if strings.HasPrefix(k, "c/alpha\x1f") {
			delete(model, k)
		}
	}
	checkAgainstModel(t, tr, model)

	if n := tr.DeletePrefix([]byte("c/alpha\x1f")); n != 0 {
		t.Fatalf("second DeletePrefix removed %d keys, want 0", n)
	}
	if n := tr.DeletePrefix(nil); n != len(model) {
		t.Fatalf("DeletePrefix(nil) removed %d, want %d (clear all)", n, len(model))
	}
	if tr.Root() != (&Trie{}).Root() {
		t.Fatal("cleared trie does not hash as empty")
	}
}

// TestRandomizedModel drives long random op sequences against a map
// model under several seeds, checking contents and the
// canonical-structure property (incremental root == fresh rebuild) at
// intervals. Keys are drawn from a small alphabet with separators so
// splits, collapses, and shared prefixes happen constantly.
func TestRandomizedModel(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			randKey := func() string {
				var sb strings.Builder
				for n := rng.Intn(4) + 1; n > 0; n-- {
					if sb.Len() > 0 {
						sb.WriteString("\x1f")
					}
					sb.WriteByte('a' + byte(rng.Intn(3)))
					sb.WriteByte('a' + byte(rng.Intn(3)))
				}
				return sb.String()
			}
			tr := &Trie{}
			model := map[string][32]byte{}
			for i := 0; i < 3000; i++ {
				k := randKey()
				switch op := rng.Intn(10); {
				case op < 6: // put
					v := leaf(fmt.Sprintf("%s#%d", k, rng.Intn(4)))
					tr.Put([]byte(k), v)
					model[k] = v
				case op < 9: // delete
					got := tr.Delete([]byte(k))
					_, want := model[k]
					if got != want {
						t.Fatalf("op %d: Delete(%q) = %v, model says %v", i, k, got, want)
					}
					delete(model, k)
				default: // delete prefix
					p := k + "\x1f"
					want := 0
					for mk := range model {
						if strings.HasPrefix(mk, p) {
							delete(model, mk)
							want++
						}
					}
					if got := tr.DeletePrefix([]byte(p)); got != want {
						t.Fatalf("op %d: DeletePrefix(%q) = %d, model says %d", i, p, got, want)
					}
				}
				if i%250 == 0 {
					checkAgainstModel(t, tr, model)
				}
			}
			checkAgainstModel(t, tr, model)
		})
	}
}

// TestRootIsIncremental pins the performance contract: after a bulk
// load and one Root call, touching a handful of keys must not rehash
// the whole trie. We can't count hash invocations directly, so we
// assert dirtiness stays confined: a untouched subtree's cached hash
// object identity is observable via the root changing only when it
// must.
func TestRootIsIncremental(t *testing.T) {
	tr := &Trie{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("bucket%d\x1fitem%d", i%10, i)
		tr.Put([]byte(k), leaf(k))
	}
	r0 := tr.Root()
	if tr.root.dirty {
		t.Fatal("root still dirty after Root()")
	}
	tr.Put([]byte("bucket3\x1fitem33"), leaf("new"))
	// Only the path to bucket3/item33 may be dirty.
	dirty := countDirty(tr.root)
	if dirty == 0 || dirty > 20 {
		t.Fatalf("touching one key dirtied %d nodes (want a short path)", dirty)
	}
	if tr.Root() == r0 {
		t.Fatal("changed leaf did not change the root")
	}
}

func countDirty(n *node) int {
	if n == nil {
		return 0
	}
	c := 0
	if n.dirty {
		c++
	}
	for _, ch := range n.children {
		c += countDirty(ch)
	}
	return c
}
