// Package trie maintains the authenticated state root incrementally: a
// byte-level path-compressed radix trie whose leaves are 32-byte value
// hashes and whose root hash commits to the exact key→hash mapping.
//
// The structure is canonical: the same key set with the same leaf
// hashes produces the same root regardless of insertion and deletion
// order. The invariants that make it so:
//
//   - the root node always carries the empty prefix and is never
//     collapsed or removed;
//   - every other node with no value has at least two children (a
//     valueless single-child node is merged into its child on delete);
//   - child edges are keyed by their first byte, so sibling order is
//     fixed.
//
// Hashes are cached per node and recomputed lazily: mutations mark the
// touched path dirty, and Root walks only dirty nodes. An epoch that
// changes k entries therefore rehashes O(k · depth) nodes, not the
// whole state.
package trie

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Trie maps byte-string keys to 32-byte leaf hashes. The zero value is
// an empty trie ready for use. Not safe for concurrent use.
type Trie struct {
	root  *node
	count int
}

type node struct {
	prefix   []byte // compressed path below the parent edge
	val      *[32]byte
	children map[byte]*node
	hash     [32]byte
	dirty    bool
}

// Len returns the number of keys present.
func (t *Trie) Len() int { return t.count }

// Get returns the leaf hash stored for key.
func (t *Trie) Get(key []byte) ([32]byte, bool) {
	n := t.root
	for n != nil {
		if len(key) == 0 {
			if n.val == nil {
				return [32]byte{}, false
			}
			return *n.val, true
		}
		c := n.children[key[0]]
		if c == nil || commonPrefix(c.prefix, key) != len(c.prefix) {
			return [32]byte{}, false
		}
		key = key[len(c.prefix):]
		n = c
	}
	return [32]byte{}, false
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Put inserts or overwrites the leaf hash for key.
func (t *Trie) Put(key []byte, h [32]byte) {
	if t.root == nil {
		t.root = &node{dirty: true}
	}
	t.putAt(t.root, key, h)
}

// putAt inserts into n's subtree; key is the remainder after n's own
// prefix has been consumed.
func (t *Trie) putAt(n *node, key []byte, h [32]byte) {
	n.dirty = true
	if len(key) == 0 {
		if n.val == nil {
			t.count++
		}
		v := h
		n.val = &v
		return
	}
	c := n.children[key[0]]
	if c == nil {
		if n.children == nil {
			n.children = make(map[byte]*node)
		}
		v := h
		n.children[key[0]] = &node{
			prefix: append([]byte(nil), key...),
			val:    &v,
			dirty:  true,
		}
		t.count++
		return
	}
	m := commonPrefix(c.prefix, key)
	if m == len(c.prefix) {
		t.putAt(c, key[m:], h)
		return
	}
	// The edge diverges inside c's prefix: split it. c keeps its
	// subtree (its children's cached hashes stay valid) but its own
	// hash covers the now-shortened prefix, so it goes dirty.
	split := &node{
		prefix:   append([]byte(nil), c.prefix[:m]...),
		children: make(map[byte]*node, 2),
		dirty:    true,
	}
	c.prefix = append([]byte(nil), c.prefix[m:]...)
	c.dirty = true
	split.children[c.prefix[0]] = c
	n.children[split.prefix[0]] = split
	t.putAt(split, key[m:], h)
}

// Delete removes key; it reports whether the key was present.
func (t *Trie) Delete(key []byte) bool {
	if t.root == nil {
		return false
	}
	del, _ := t.deleteAt(t.root, key)
	return del
}

// deleteAt removes key from n's subtree and reports (deleted,
// removeSelf); removeSelf asks the caller to unlink n entirely. The
// root is never unlinked (the top-level caller ignores removeSelf).
func (t *Trie) deleteAt(n *node, key []byte) (deleted, removeSelf bool) {
	if len(key) == 0 {
		if n.val == nil {
			return false, false
		}
		n.val = nil
		n.dirty = true
		t.count--
		return true, len(n.children) == 0
	}
	c := n.children[key[0]]
	if c == nil {
		return false, false
	}
	m := commonPrefix(c.prefix, key)
	if m != len(c.prefix) {
		return false, false
	}
	del, rm := t.deleteAt(c, key[m:])
	if !del {
		return false, false
	}
	n.dirty = true
	if rm {
		delete(n.children, key[0])
	} else {
		collapse(c)
	}
	return true, n.val == nil && len(n.children) == 0
}

// DeletePrefix removes every key that starts with p (p itself
// included) and returns how many keys were removed. An empty p clears
// the trie.
func (t *Trie) DeletePrefix(p []byte) int {
	if t.root == nil {
		return 0
	}
	if len(p) == 0 {
		n := t.count
		t.root = &node{dirty: true}
		t.count = 0
		return n
	}
	removed, _ := t.deletePrefixAt(t.root, p)
	return removed
}

func (t *Trie) deletePrefixAt(n *node, p []byte) (removed int, removeSelf bool) {
	c := n.children[p[0]]
	if c == nil {
		return 0, false
	}
	m := commonPrefix(c.prefix, p)
	switch {
	case m == len(p):
		// All of p matched inside c's prefix: c's whole subtree is
		// under the prefix.
		sz := subtreeSize(c)
		delete(n.children, p[0])
		t.count -= sz
		removed = sz
	case m == len(c.prefix):
		rem, rm := t.deletePrefixAt(c, p[m:])
		if rem == 0 {
			return 0, false
		}
		if rm {
			delete(n.children, p[0])
		} else {
			collapse(c)
		}
		removed = rem
	default:
		return 0, false
	}
	n.dirty = true
	return removed, n.val == nil && len(n.children) == 0
}

// collapse merges a valueless single-child node into its child,
// restoring the canonical-structure invariant after a delete.
func collapse(c *node) {
	if c.val != nil || len(c.children) != 1 {
		return
	}
	var only *node
	for _, ch := range c.children {
		only = ch
	}
	c.prefix = append(c.prefix, only.prefix...)
	c.val = only.val
	c.children = only.children
	c.dirty = true
}

func subtreeSize(n *node) int {
	sz := 0
	if n.val != nil {
		sz = 1
	}
	for _, c := range n.children {
		sz += subtreeSize(c)
	}
	return sz
}

// Root returns the trie's root hash, recomputing only nodes dirtied
// since the last call.
func (t *Trie) Root() [32]byte {
	if t.root == nil {
		t.root = &node{dirty: true}
	}
	return t.root.rehash()
}

// rehash recomputes this node's hash if dirty, recursing only into
// dirty children (clean subtrees contribute their cached hashes).
//
// The preimage is a fixed-shape encoding — marker byte, length-prefixed
// node prefix, value flag (+hash), child count, then (edge byte, child
// hash) pairs in ascending edge order — so distinct tries can never
// collide by concatenation ambiguity.
func (n *node) rehash() [32]byte {
	if !n.dirty {
		return n.hash
	}
	var scratch [10]byte
	h := sha256.New()
	h.Write([]byte{0x10})
	h.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(n.prefix)))])
	h.Write(n.prefix)
	if n.val != nil {
		h.Write([]byte{1})
		h.Write(n.val[:])
	} else {
		h.Write([]byte{0})
	}
	h.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(n.children)))])
	if len(n.children) > 0 {
		edges := make([]int, 0, len(n.children))
		for b := range n.children {
			edges = append(edges, int(b))
		}
		sort.Ints(edges)
		for _, b := range edges {
			ch := n.children[byte(b)].rehash()
			h.Write([]byte{byte(b)})
			h.Write(ch[:])
		}
	}
	h.Sum(n.hash[:0])
	n.dirty = false
	return n.hash
}
