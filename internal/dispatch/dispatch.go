// Package dispatch implements the lookup-node transaction dispatcher of
// Sec. 4.3: it evaluates a contract's sharding signature against a
// concrete transaction's arguments (the dispatch_oc(T, x) procedure)
// and routes the transaction to a satisfying shard, or to the DS
// committee when no shard satisfies the constraints.
//
// Ownership of state components (Owns constraints) is static and
// key-directed, mirroring the deterministic assignment the paper's
// integration uses: a map component m[k1]...[kn] is owned by the shard
// of its first key k1 (an address key hashes like an account, so
// balances[_sender] lands in the sender's home shard and
// allowances[from][_sender] co-locates with balances[from]); a whole
// field is owned by the contract's home shard. A transaction whose
// Owns constraints resolve to different shards cannot be placed and
// goes to the DS committee — e.g. ProofIPFS registrations touching
// both ipfsInventory[hash] and registered_items[_sender] (Sec. 5.2.1).
package dispatch

import (
	"strings"
	"sync"

	"cosplit/internal/chain"
	"cosplit/internal/core/domain"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

// DS is the shard index denoting the DS committee.
const DS = -1

// Decision is the dispatcher's routing verdict for one transaction.
type Decision struct {
	Shard  int // DS for the DS committee
	Reason string
	// Rejected is true when the transaction is invalid (bad nonce,
	// replay, unknown contract) and must not be processed at all.
	Rejected bool
}

// Dispatcher routes transactions for one epoch.
type Dispatcher struct {
	NumShards int
	Accounts  *chain.Accounts
	Contracts *chain.Contracts
	// SplitGasAccounting enables the per-shard gas budget split of
	// Sec. 4.2.2 (half the balance to the home shard, the rest split
	// evenly).
	SplitGasAccounting bool

	mu sync.Mutex
	// load counts transactions routed per shard (index NumShards = DS).
	load []int
	// usedNonces guards against replays within the epoch.
	usedNonces map[nonceKey]bool
}

type nonceKey struct {
	from  chain.Address
	nonce uint64
}

// New creates a dispatcher for an epoch.
func New(numShards int, accounts *chain.Accounts, contracts *chain.Contracts) *Dispatcher {
	return &Dispatcher{
		NumShards:  numShards,
		Accounts:   accounts,
		Contracts:  contracts,
		load:       make([]int, numShards+1),
		usedNonces: make(map[nonceKey]bool),
	}
}

// ResetEpoch clears the per-epoch load counters and replay table.
func (d *Dispatcher) ResetEpoch() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.load = make([]int, d.NumShards+1)
	d.usedNonces = make(map[nonceKey]bool)
}

// Load returns a copy of the per-shard load counters (last entry = DS).
func (d *Dispatcher) Load() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int{}, d.load...)
}

// Dispatch routes a transaction. It is safe for concurrent use.
func (d *Dispatcher) Dispatch(tx *chain.Tx) Decision {
	d.mu.Lock()
	defer d.mu.Unlock()

	// Replay protection (relaxed nonces, Sec. 4.2.1): a nonce may be
	// used once, and must exceed the committed account nonce.
	acc := d.Accounts.Get(tx.From)
	if acc == nil {
		return Decision{Rejected: true, Reason: "unknown sender"}
	}
	if tx.Nonce <= acc.Nonce {
		return Decision{Rejected: true, Reason: "stale nonce"}
	}
	nk := nonceKey{from: tx.From, nonce: tx.Nonce}
	if d.usedNonces[nk] {
		return Decision{Rejected: true, Reason: "replayed nonce"}
	}
	d.usedNonces[nk] = true

	dec := d.route(tx)
	if !dec.Rejected {
		if dec.Shard == DS {
			d.load[d.NumShards]++
		} else {
			d.load[dec.Shard]++
		}
	}
	return dec
}

func (d *Dispatcher) route(tx *chain.Tx) Decision {
	switch tx.Kind {
	case chain.TxTransfer:
		// User-to-user payments go to the sender's home shard, where
		// double spends are detected locally (Sec. 4.1).
		return Decision{Shard: chain.ShardOf(tx.From, d.NumShards), Reason: "sender home shard"}
	case chain.TxDeploy:
		return Decision{Shard: DS, Reason: "contract deployment"}
	}

	c := d.Contracts.Get(tx.To)
	if c == nil {
		return Decision{Rejected: true, Reason: "unknown contract"}
	}
	if c.Sig == nil {
		// Baseline strategy: in-shard only when sender and contract
		// share a home shard; otherwise the DS committee.
		s, cs := chain.ShardOf(tx.From, d.NumShards), chain.ShardOf(tx.To, d.NumShards)
		if s == cs {
			return Decision{Shard: s, Reason: "baseline: sender and contract co-located"}
		}
		return Decision{Shard: DS, Reason: "baseline: cross-shard contract call"}
	}
	cs, ok := c.Sig.Constraints[tx.Transition]
	if !ok {
		return Decision{Shard: DS, Reason: "transition not in sharding signature"}
	}
	return d.solve(tx, c, cs)
}

// solve evaluates the constraint set against the transaction's concrete
// arguments, implementing dispatch_oc(T, x).
func (d *Dispatcher) solve(tx *chain.Tx, c *chain.Contract, cs []signature.Constraint) Decision {
	args := resolveArgs(tx)

	required := -2 // -2: unconstrained; >=0: forced shard; DS on conflict
	force := func(s int, why string) *Decision {
		if required == -2 || required == s {
			required = s
			return nil
		}
		return &Decision{Shard: DS, Reason: "conflicting shard requirements: " + why}
	}

	for _, con := range cs {
		switch con.Kind {
		case signature.CBottom:
			return Decision{Shard: DS, Reason: "unshardable transition (⊥)"}
		case signature.CSenderShard:
			if dec := force(chain.ShardOf(tx.From, d.NumShards), "SenderShard"); dec != nil {
				return *dec
			}
		case signature.CContractShard:
			if dec := force(chain.ShardOf(tx.To, d.NumShards), "ContractShard"); dec != nil {
				return *dec
			}
		case signature.CUserAddr:
			v, ok := args[con.Param]
			if !ok {
				return Decision{Shard: DS, Reason: "unresolvable UserAddr parameter " + con.Param}
			}
			addr, ok := chain.AddressFromValue(v)
			if !ok {
				return Decision{Shard: DS, Reason: "non-address UserAddr argument"}
			}
			if d.Accounts.IsContract(addr) {
				return Decision{Shard: DS, Reason: "message recipient is a contract"}
			}
		case signature.CNoAliases:
			av, aok := resolveVec(args, con.A)
			bv, bok := resolveVec(args, con.B)
			if !aok || !bok {
				return Decision{Shard: DS, Reason: "unresolvable NoAliases keys"}
			}
			if av == bv {
				return Decision{Shard: DS, Reason: "aliasing map keys"}
			}
		case signature.COwns:
			s, ok := d.ownerShard(c.Addr, con.Field, args)
			if !ok {
				return Decision{Shard: DS, Reason: "unresolvable ownership keys"}
			}
			if dec := force(s, "Owns("+con.Field.String()+")"); dec != nil {
				return *dec
			}
		}
	}

	shard := required
	if shard == -2 {
		// Fully unconstrained transactions (e.g. commutative-only
		// writers like FT Mint) may run anywhere; balance the load.
		shard = d.leastLoaded()
	}
	return Decision{Shard: shard, Reason: "constraints satisfied"}
}

// ownerShard statically resolves the shard owning a state component: a
// keyed component is owned by the shard of its first key (addresses
// hash like accounts), a whole field by the contract home shard.
func (d *Dispatcher) ownerShard(contract chain.Address, f domain.FieldRef, args map[string]value.Value) (int, bool) {
	if len(f.Keys) == 0 {
		return chain.ShardOf(contract, d.NumShards), true
	}
	v, ok := args[f.Keys[0]]
	if !ok {
		return 0, false
	}
	if addr, ok := chain.AddressFromValue(v); ok {
		return chain.ShardOf(addr, d.NumShards), true
	}
	return chain.ShardOfKey(value.CanonicalKey(v), d.NumShards), true
}

func (d *Dispatcher) leastLoaded() int {
	best, bestLoad := 0, d.load[0]
	for i := 1; i < d.NumShards; i++ {
		if d.load[i] < bestLoad {
			best, bestLoad = i, d.load[i]
		}
	}
	return best
}

// resolveArgs builds the parameter valuation for a transaction,
// including the implicit parameters.
func resolveArgs(tx *chain.Tx) map[string]value.Value {
	args := make(map[string]value.Value, len(tx.Args)+3)
	for k, v := range tx.Args {
		args[k] = v
	}
	args[ast.SenderParam] = tx.From.Value()
	args[ast.OriginParam] = tx.From.Value()
	args[ast.AmountParam] = value.Int{Ty: ast.TyUint128, V: tx.Amount}
	return args
}

func resolveVec(args map[string]value.Value, names []string) (string, bool) {
	parts := make([]string, len(names))
	for i, n := range names {
		v, ok := args[n]
		if !ok {
			return "", false
		}
		parts[i] = value.CanonicalKey(v)
	}
	return strings.Join(parts, "\x1f"), true
}
