// Package dispatch implements the lookup-node transaction dispatcher of
// Sec. 4.3: it evaluates a contract's sharding signature against a
// concrete transaction's arguments (the dispatch_oc(T, x) procedure)
// and routes the transaction to a satisfying shard, or to the DS
// committee when no shard satisfies the constraints.
//
// Ownership of state components (Owns constraints) is static and
// key-directed, mirroring the deterministic assignment the paper's
// integration uses: a map component m[k1]...[kn] is owned by the shard
// of its first key k1 (an address key hashes like an account, so
// balances[_sender] lands in the sender's home shard and
// allowances[from][_sender] co-locates with balances[from]); a whole
// field is owned by the contract's home shard. A transaction whose
// Owns constraints resolve to different shards cannot be placed and
// goes to the DS committee — e.g. ProofIPFS registrations touching
// both ipfsInventory[hash] and registered_items[_sender] (Sec. 5.2.1).
//
// The dispatcher is built for the parallel epoch pipeline: constraint
// sets are compiled once per (contract, transition) and cached, the
// routing decision (Decide) touches no mutable dispatcher state, and
// the per-epoch replay table and load counters are striped/atomic so
// concurrent dispatch never serialises on a single mutex. DispatchAll
// routes a whole mempool packet with worker-pool parallelism while
// keeping the resulting decisions bit-identical to a sequential pass.
//
// Observability: the dispatcher maintains a small set of always-on
// metrics (routing kind mix, plan-cache hit/miss, nonce-replay
// rejects) in an obs.Registry — pass one with WithMetrics to share it
// across components. Updates are lock-free atomic adds, so the Decide
// hot path stays at 0 allocs/op (asserted by TestDecideZeroAllocs).
package dispatch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cosplit/internal/chain"
	"cosplit/internal/obs"
)

// DS is the shard index denoting the DS committee.
const DS = -1

// ReasonShardUnavailable is the routing reason attached when the
// dispatcher reroutes a transaction to the DS committee because its
// target shard is marked unavailable (fault-recovery escalation).
const ReasonShardUnavailable = "shard unavailable: escalated to DS"

// Decision is the dispatcher's routing verdict for one transaction.
type Decision struct {
	// Shard is the placement: a shard index, or DS for the DS committee.
	Shard int
	// Reason is the human-readable routing explanation (a precompiled
	// constant — safe to retain and compare).
	Reason string
	// Rejected is true when the transaction is invalid (bad nonce,
	// replay, unknown contract) and must not be processed at all.
	Rejected bool
	// Err carries the typed rejection cause when Rejected is set (one
	// of the package's sentinel errors, testable with errors.Is); nil
	// for accepted transactions.
	Err error
}

// Routing is Decide's pure verdict: the Decision plus the placement
// notes the stateful commit step needs.
type Routing struct {
	Decision
	// Unconstrained marks a transaction any shard may execute; the
	// commit step places it on the least-loaded shard.
	Unconstrained bool
	// Invalid marks a rejection that precedes replay accounting
	// (unknown sender, stale nonce): the nonce is not consumed.
	Invalid bool
}

// nonceStripes must be a power of two.
const nonceStripes = 64

type nonceKey struct {
	from  chain.Address
	nonce uint64
}

type nonceStripe struct {
	mu sync.Mutex
	m  map[nonceKey]struct{}
}

// metrics are the dispatcher's always-on instruments. They live in an
// obs.Registry (shared or private) and are updated with lock-free
// atomic adds on the dispatch path.
type metrics struct {
	decisions     *obs.Counter // total commit verdicts
	routedShard   *obs.Counter // placed on a shard
	routedDS      *obs.Counter // placed on the DS committee
	unconstrained *obs.Counter // load-balanced placements
	rejected      *obs.Counter // invalid or replayed
	nonceReplay   *obs.Counter // rejected specifically as replays
	planHit       *obs.Counter // plan-cache hits in Decide
	planMiss      *obs.Counter // plan-cache compilations
	unavailable   *obs.Counter // rerouted to DS: target shard down
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		decisions:     reg.Counter("dispatch.decisions"),
		routedShard:   reg.Counter("dispatch.route.shard"),
		routedDS:      reg.Counter("dispatch.route.ds"),
		unconstrained: reg.Counter("dispatch.route.unconstrained"),
		rejected:      reg.Counter("dispatch.route.rejected"),
		nonceReplay:   reg.Counter("dispatch.nonce_replay"),
		planHit:       reg.Counter("dispatch.plan.hit"),
		planMiss:      reg.Counter("dispatch.plan.miss"),
		unavailable:   reg.Counter("dispatch.route.unavailable"),
	}
}

// Dispatcher routes transactions for one epoch.
type Dispatcher struct {
	// NumShards is the shard count routing resolves against.
	NumShards int
	// Accounts is the committed account table (nonce validation,
	// contract-address checks).
	Accounts *chain.Accounts
	// Contracts is the deployed-contract table (signature lookup).
	Contracts *chain.Contracts

	// load counts transactions routed per shard (index NumShards = DS),
	// updated atomically so concurrent dispatch does not serialise.
	load []atomic.Int64
	// nonces guards against replays within the epoch, striped by
	// (sender, nonce) to keep the hot path off a single mutex.
	nonces [nonceStripes]nonceStripe
	// plans caches the compiled per-(contract, transition) constraint
	// plan; signatures are immutable once a contract is deployed.
	plans sync.Map // planKey -> *plan
	// down marks shards the fault-recovery path has escalated: their
	// traffic is rerouted to the DS committee until they recover. nil
	// means every shard is available. Written only between epochs
	// (SetUnavailable), read concurrently during dispatch.
	down []bool

	m metrics
}

type planKey struct {
	contract   chain.Address
	transition string
}

// Option configures a Dispatcher at construction time.
type Option func(*config)

type config struct {
	reg *obs.Registry
}

// WithMetrics registers the dispatcher's instruments in reg instead of
// a private registry, so dispatch metrics appear in the same snapshot
// as the rest of the pipeline's.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) { c.reg = reg }
}

// New creates a dispatcher for an epoch.
func New(numShards int, accounts *chain.Accounts, contracts *chain.Contracts, opts ...Option) *Dispatcher {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	d := &Dispatcher{
		NumShards: numShards,
		Accounts:  accounts,
		Contracts: contracts,
		load:      make([]atomic.Int64, numShards+1),
		m:         newMetrics(c.reg),
	}
	for i := range d.nonces {
		d.nonces[i].m = make(map[nonceKey]struct{})
	}
	return d
}

// ResetEpoch clears the per-epoch load counters and replay table in
// place, reusing the allocated slice and stripe maps across epochs.
func (d *Dispatcher) ResetEpoch() {
	for i := range d.load {
		d.load[i].Store(0)
	}
	for i := range d.nonces {
		s := &d.nonces[i]
		s.mu.Lock()
		clear(s.m)
		s.mu.Unlock()
	}
}

// SetUnavailable replaces the shard-availability mask: down[s] marks
// shard s unavailable, rerouting its traffic to the DS committee with
// ReasonShardUnavailable. A nil (or all-false) mask restores full
// availability. Call it between epochs only — the mask is read without
// synchronisation while dispatching.
func (d *Dispatcher) SetUnavailable(down []bool) {
	d.down = down
}

// shardDown reports whether the availability mask reroutes shard s.
func (d *Dispatcher) shardDown(s int) bool {
	return s >= 0 && s < len(d.down) && d.down[s]
}

// Load returns a copy of the per-shard load counters (last entry = DS).
func (d *Dispatcher) Load() []int {
	out := make([]int, len(d.load))
	for i := range d.load {
		out[i] = int(d.load[i].Load())
	}
	return out
}

// markNonce records a (sender, nonce) use; it reports false on replay.
func (d *Dispatcher) markNonce(from chain.Address, nonce uint64) bool {
	s := &d.nonces[(uint64(from[0])^nonce)&(nonceStripes-1)]
	k := nonceKey{from: from, nonce: nonce}
	s.mu.Lock()
	_, dup := s.m[k]
	if !dup {
		s.m[k] = struct{}{}
	}
	s.mu.Unlock()
	return !dup
}

// Decide computes the routing verdict for a transaction without
// touching any per-epoch mutable state (no replay table, no load
// counters; the only side effects are atomic metric increments and the
// idempotent plan cache). It is the pure dispatch_oc(T, x) evaluation
// and is safe to run concurrently with itself and with Dispatch.
func (d *Dispatcher) Decide(tx *chain.Tx) Routing {
	// Validity (relaxed nonces, Sec. 4.2.1): the nonce must exceed the
	// committed account nonce.
	nonce, ok := d.Accounts.NonceOf(tx.From)
	if !ok {
		return Routing{Decision: rejection(ErrUnknownSender), Invalid: true}
	}
	if tx.Nonce <= nonce {
		return Routing{Decision: rejection(ErrStaleNonce), Invalid: true}
	}

	switch tx.Kind {
	case chain.TxTransfer:
		// User-to-user payments go to the sender's home shard, where
		// double spends are detected locally (Sec. 4.1).
		return Routing{Decision: Decision{Shard: chain.ShardOf(tx.From, d.NumShards), Reason: "sender home shard"}}
	case chain.TxDeploy:
		return Routing{Decision: Decision{Shard: DS, Reason: "contract deployment"}}
	}

	c := d.Contracts.Get(tx.To)
	if c == nil {
		return Routing{Decision: rejection(ErrUnknownContract)}
	}
	if c.Sig == nil {
		// Baseline strategy: in-shard only when sender and contract
		// share a home shard; otherwise the DS committee.
		s, cs := chain.ShardOf(tx.From, d.NumShards), chain.ShardOf(tx.To, d.NumShards)
		if s == cs {
			return Routing{Decision: Decision{Shard: s, Reason: "baseline: sender and contract co-located"}}
		}
		return Routing{Decision: Decision{Shard: DS, Reason: "baseline: cross-shard contract call"}}
	}
	p := d.planFor(c, tx.Transition)
	if p == nil {
		return dsRouting(reasonNotInSig)
	}
	return p.eval(d, tx)
}

// rejection builds a rejected Decision from a sentinel error.
func rejection(err error) Decision {
	return Decision{Rejected: true, Reason: err.Error(), Err: err}
}

// planFor returns the compiled constraint plan for (contract,
// transition), compiling and caching it on first use. A nil return
// means the transition is not in the sharding signature.
func (d *Dispatcher) planFor(c *chain.Contract, transition string) *plan {
	k := planKey{contract: c.Addr, transition: transition}
	if p, ok := d.plans.Load(k); ok {
		d.m.planHit.Inc()
		return p.(*plan)
	}
	d.m.planMiss.Inc()
	cs, ok := c.Sig.Constraints[transition]
	if !ok {
		d.plans.Store(k, (*plan)(nil))
		return nil
	}
	p := compilePlan(cs)
	p.fp = compileFootprint(c.Sig, transition)
	actual, _ := d.plans.LoadOrStore(k, p)
	return actual.(*plan)
}

// commit applies the stateful half of dispatch: replay accounting,
// load-balanced placement of unconstrained transactions, and the load
// counters. Callers that need deterministic results (DispatchAll) call
// it sequentially in submission order.
func (d *Dispatcher) commit(tx *chain.Tx, r Routing) Decision {
	d.m.decisions.Inc()
	if r.Invalid {
		d.m.rejected.Inc()
		return r.Decision
	}
	// Replay protection: a nonce may be used once per epoch. As in the
	// sequential dispatcher, the nonce is consumed even when routing
	// subsequently rejects the transaction (unknown contract). The
	// verdict carries ErrNonceReplay wrapped with the offending
	// (sender, nonce), so mempools and other callers can errors.Is it
	// and still see which chain link replayed.
	if !d.markNonce(tx.From, tx.Nonce) {
		d.m.rejected.Inc()
		d.m.nonceReplay.Inc()
		return Decision{
			Rejected: true,
			Reason:   ErrNonceReplay.Error(),
			Err:      fmt.Errorf("sender %s nonce %d: %w", tx.From, tx.Nonce, ErrNonceReplay),
		}
	}
	if r.Rejected {
		d.m.rejected.Inc()
		return r.Decision
	}
	shard, reason := r.Shard, r.Reason
	if r.Unconstrained {
		shard = d.leastLoaded()
		d.m.unconstrained.Inc()
		if shard == DS {
			// Every shard is down; the DS committee absorbs the load.
			reason = ReasonShardUnavailable
			d.m.unavailable.Inc()
		}
	}
	// Unavailability backoff: traffic for an escalated shard executes on
	// the DS committee until the shard recovers (leastLoaded already
	// avoids down shards; this catches constrained placements).
	if d.shardDown(shard) {
		shard, reason = DS, ReasonShardUnavailable
		d.m.unavailable.Inc()
	}
	if shard == DS {
		d.m.routedDS.Inc()
		d.load[d.NumShards].Add(1)
	} else {
		d.m.routedShard.Inc()
		d.load[shard].Add(1)
	}
	return Decision{Shard: shard, Reason: reason}
}

// Dispatch routes a transaction. It is safe for concurrent use; for
// whole-packet routing with deterministic placement, use DispatchAll.
func (d *Dispatcher) Dispatch(tx *chain.Tx) Decision {
	return d.commit(tx, d.Decide(tx))
}

// dispatchChunk is the unit of work the DispatchAll worker pool claims.
const dispatchChunk = 64

// DispatchAll routes a whole mempool packet, returning decisions
// indexed by position in txs. With workers > 1 the constraint
// evaluation (the expensive half) runs on a bounded worker pool;
// replay detection, load accounting and the load-balanced placement of
// unconstrained transactions are then applied sequentially in
// submission order, so the decisions are bit-identical regardless of
// worker count or goroutine scheduling.
func (d *Dispatcher) DispatchAll(txs []*chain.Tx, workers int) []Decision {
	routings := make([]Routing, len(txs))
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers <= 1 || len(txs) <= dispatchChunk {
		for i, tx := range txs {
			routings[i] = d.Decide(tx)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					lo := int(next.Add(dispatchChunk)) - dispatchChunk
					if lo >= len(txs) {
						return
					}
					hi := lo + dispatchChunk
					if hi > len(txs) {
						hi = len(txs)
					}
					for i := lo; i < hi; i++ {
						routings[i] = d.Decide(txs[i])
					}
				}
			}()
		}
		wg.Wait()
	}
	out := make([]Decision, len(txs))
	for i, tx := range txs {
		out[i] = d.commit(tx, routings[i])
	}
	return out
}

// leastLoaded returns the available shard with the lowest load,
// preferring the lowest index on ties; DS when every shard is down.
func (d *Dispatcher) leastLoaded() int {
	best, bestLoad := DS, int64(0)
	for i := 0; i < d.NumShards; i++ {
		if d.shardDown(i) {
			continue
		}
		if l := d.load[i].Load(); best == DS || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}
