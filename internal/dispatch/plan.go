package dispatch

import (
	"cosplit/internal/chain"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

// A plan is the compiled form of one transition's constraint set: the
// signature is interpreted once per (contract, transition) instead of
// once per transaction, every per-step reason string is built at
// compile time, and the common parameter shapes (whole-field ownership,
// _sender/_origin keys) are specialised so evaluating dispatch_oc(T, x)
// allocates nothing on the hot path.
type plan struct {
	steps []planStep
	// fp is the compiled conflict footprint of the transition (nil when
	// the transition is opaque to footprint analysis); resolved per
	// transaction by Dispatcher.Footprint for intra-shard grouping.
	fp *fpPlan
}

// ownsMode specialises how an Owns step resolves its owning shard.
type ownsMode uint8

const (
	// ownsContract: a whole field, owned by the contract's home shard.
	ownsContract ownsMode = iota
	// ownsSender: first key is _sender/_origin, owned by the sender's
	// home shard.
	ownsSender
	// ownsParam: first key is a transition parameter, owned by the
	// shard of the concrete key value.
	ownsParam
)

type planStep struct {
	kind signature.ConstraintKind

	// CUserAddr: parameter holding the address; paramIsSender is set
	// when it is the implicit _sender/_origin.
	param         string
	paramIsSender bool

	// CNoAliases: the two symbolic key vectors.
	a, b []string

	// COwns.
	owns   ownsMode
	ownKey string // ownsParam: the parameter naming the first key

	// Precomputed reasons (built once at compile time).
	conflictReason string // force() conflict for this step
	dsReason       string // unresolvable-argument fallback for this step
}

// Constant reasons shared across steps.
const (
	reasonSatisfied    = "constraints satisfied"
	reasonBottom       = "unshardable transition (⊥)"
	reasonNonAddrUser  = "non-address UserAddr argument"
	reasonContractRcpt = "message recipient is a contract"
	reasonAliasKeys    = "aliasing map keys"
	reasonNoAliasUnres = "unresolvable NoAliases keys"
	reasonOwnsUnres    = "unresolvable ownership keys"
	reasonNotInSig     = "transition not in sharding signature"
)

// compilePlan translates a constraint set into its evaluation plan.
func compilePlan(cs []signature.Constraint) *plan {
	p := &plan{steps: make([]planStep, 0, len(cs))}
	for _, con := range cs {
		st := planStep{kind: con.Kind}
		switch con.Kind {
		case signature.CSenderShard:
			st.conflictReason = "conflicting shard requirements: SenderShard"
		case signature.CContractShard:
			st.conflictReason = "conflicting shard requirements: ContractShard"
		case signature.CUserAddr:
			st.param = con.Param
			st.paramIsSender = con.Param == ast.SenderParam || con.Param == ast.OriginParam
			st.dsReason = "unresolvable UserAddr parameter " + con.Param
		case signature.CNoAliases:
			st.a, st.b = con.A, con.B
		case signature.COwns:
			st.conflictReason = "conflicting shard requirements: Owns(" + con.Field.String() + ")"
			switch {
			case len(con.Field.Keys) == 0:
				st.owns = ownsContract
			case con.Field.Keys[0] == ast.SenderParam || con.Field.Keys[0] == ast.OriginParam:
				st.owns = ownsSender
			default:
				st.owns = ownsParam
				st.ownKey = con.Field.Keys[0]
			}
		}
		p.steps = append(p.steps, st)
	}
	return p
}

// argOf resolves one named parameter against a transaction, including
// the implicit _sender/_origin/_amount (which take precedence over
// explicit arguments, as in the transition environment).
func argOf(tx *chain.Tx, name string) (value.Value, bool) {
	switch name {
	case ast.SenderParam, ast.OriginParam:
		return tx.From.Value(), true
	case ast.AmountParam:
		return value.Int{Ty: ast.TyUint128, V: tx.Amount}, true
	}
	v, ok := tx.Args[name]
	return v, ok
}

// eval runs the compiled plan against a concrete transaction,
// implementing dispatch_oc(T, x). It reads only immutable transaction
// data and the account table, so it is safe to run concurrently.
func (p *plan) eval(d *Dispatcher, tx *chain.Tx) Routing {
	const unset = -2
	required := unset
	force := func(s int) bool {
		if required == unset || required == s {
			required = s
			return true
		}
		return false
	}

	for i := range p.steps {
		st := &p.steps[i]
		switch st.kind {
		case signature.CBottom:
			return dsRouting(reasonBottom)
		case signature.CSenderShard:
			if !force(chain.ShardOf(tx.From, d.NumShards)) {
				return dsRouting(st.conflictReason)
			}
		case signature.CContractShard:
			if !force(chain.ShardOf(tx.To, d.NumShards)) {
				return dsRouting(st.conflictReason)
			}
		case signature.CUserAddr:
			var addr chain.Address
			if st.paramIsSender {
				addr = tx.From
			} else {
				v, ok := tx.Args[st.param]
				if !ok {
					return dsRouting(st.dsReason)
				}
				addr, ok = chain.AddressFromValue(v)
				if !ok {
					return dsRouting(reasonNonAddrUser)
				}
			}
			if d.Accounts.IsContract(addr) {
				return dsRouting(reasonContractRcpt)
			}
		case signature.CNoAliases:
			alias, ok := sameKeys(tx, st.a, st.b)
			if !ok {
				return dsRouting(reasonNoAliasUnres)
			}
			if alias {
				return dsRouting(reasonAliasKeys)
			}
		case signature.COwns:
			var s int
			switch st.owns {
			case ownsContract:
				s = chain.ShardOf(tx.To, d.NumShards)
			case ownsSender:
				s = chain.ShardOf(tx.From, d.NumShards)
			default:
				v, ok := argOf(tx, st.ownKey)
				if !ok {
					return dsRouting(reasonOwnsUnres)
				}
				if addr, ok := chain.AddressFromValue(v); ok {
					s = chain.ShardOf(addr, d.NumShards)
				} else {
					s = chain.ShardOfKey(value.CanonicalKey(v), d.NumShards)
				}
			}
			if !force(s) {
				return dsRouting(st.conflictReason)
			}
		}
	}

	if required == unset {
		// Fully unconstrained transactions (e.g. commutative-only
		// writers like FT Mint) may run anywhere; the commit step
		// places them on the least-loaded shard.
		return Routing{Decision: Decision{Reason: reasonSatisfied}, Unconstrained: true}
	}
	return Routing{Decision: Decision{Shard: required, Reason: reasonSatisfied}}
}

// resolveKeyComponent resolves one symbolic key component. Address
// values (including the implicit _sender/_origin) come back as a bare
// chain.Address so the common case compares without canonicalising.
func resolveKeyComponent(tx *chain.Tx, name string) (addr chain.Address, isAddr bool, v value.Value, ok bool) {
	switch name {
	case ast.SenderParam, ast.OriginParam:
		return tx.From, true, nil, true
	case ast.AmountParam:
		return chain.Address{}, false, value.Int{Ty: ast.TyUint128, V: tx.Amount}, true
	}
	v, found := tx.Args[name]
	if !found {
		return chain.Address{}, false, nil, false
	}
	if a, isA := chain.AddressFromValue(v); isA {
		return a, true, nil, true
	}
	return chain.Address{}, false, v, true
}

// sameKeys reports whether the two symbolic key vectors resolve to the
// same concrete key vector (canonical-key equality, component-wise;
// two 20-byte ByStr keys are canonical-key-equal iff their bytes are,
// so address components compare directly). ok is false when any
// component is unresolvable.
func sameKeys(tx *chain.Tx, a, b []string) (alias, ok bool) {
	if len(a) != len(b) {
		return false, true
	}
	for i := range a {
		aa, aIsAddr, av, ok1 := resolveKeyComponent(tx, a[i])
		ba, bIsAddr, bv, ok2 := resolveKeyComponent(tx, b[i])
		if !ok1 || !ok2 {
			return false, false
		}
		if aIsAddr != bIsAddr {
			// A canonical address key never collides with a
			// non-address canonical key (distinct type prefixes).
			return false, true
		}
		if aIsAddr {
			if aa != ba {
				return false, true
			}
			continue
		}
		if value.CanonicalKey(av) != value.CanonicalKey(bv) {
			return false, true
		}
	}
	return true, true
}

func dsRouting(reason string) Routing {
	return Routing{Decision: Decision{Shard: DS, Reason: reason}}
}
