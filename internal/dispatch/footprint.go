package dispatch

import (
	"cosplit/internal/chain"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

// This file turns a solved sharding signature into a per-transaction
// conflict footprint: the set of state components a transaction may
// touch, each classified as exclusive (observed, or written
// non-additively — order matters) or additive (a blind native-balance
// credit — commutes with other credits). The intra-shard executor
// groups an epoch batch by footprint overlap; see internal/shard/groups.go.

// FootprintKey identifies one conflict unit of state. Field == ""
// denotes the native account (balance + nonce + gas) of Account;
// otherwise the key is a contract-state component: a whole field when
// Entry == "", or one map entry identified by its canonical keypath.
type FootprintKey struct {
	Contract chain.Address
	Account  chain.Address
	Field    string
	Entry    string
}

// FootprintAccess is one resolved access of a transaction. Additive
// accesses never observe the component (pure native-balance credits);
// everything else is exclusive.
type FootprintAccess struct {
	Key      FootprintKey
	Additive bool
}

// fpRef is a compiled contract-state component reference with symbolic
// keys (transition parameter names, or the implicit _sender/_origin).
type fpRef struct {
	field string
	keys  []string
}

// fpPlan is the compiled footprint of one (contract, transition): the
// signature is interpreted once, resolution against a concrete
// transaction just substitutes arguments. A nil fpPlan marks the
// transition opaque to footprint analysis.
type fpPlan struct {
	// refs are the exclusive contract-state components: every Owns
	// component (reads and non-commutative writes) and every
	// commutative write. Commutative writes are exclusive here even
	// though cross-shard dispatch treats them as join-mergeable: the
	// written value is derived from the locally observed one (read-add-
	// write), so serialising same-component writers inside a group is
	// what keeps receipts and gas bit-identical to sequential order.
	refs []fpRef
	// recipients are parameters naming user accounts that may receive a
	// native credit (additive). The implicit _sender is excluded: the
	// sender account is always exclusive anyway.
	recipients []string
	// accepts: the transition may accept funds — additive credit to the
	// contract's native account.
	accepts bool
	// sendsFunds: the transition may pay out of the contract's native
	// balance, which it must observe (overdraft check) — exclusive.
	sendsFunds bool
	// readsBalance: the transition reads the _balance pseudo-field —
	// exclusive on the contract's native account.
	readsBalance bool
}

// compileFootprint builds the footprint plan for one transition, or nil
// when the transition is opaque (⊥ or absent from the signature).
func compileFootprint(sg *signature.Signature, transition string) *fpPlan {
	spec, ok := sg.Footprint(transition)
	if !ok {
		return nil
	}
	fp := &fpPlan{
		accepts:    spec.Accepts,
		sendsFunds: spec.SendsFunds,
	}
	addRef := func(c signature.Constraint) {
		if c.Field.Name == signature.BalanceField {
			fp.readsBalance = true
			return
		}
		r := fpRef{field: c.Field.Name, keys: c.Field.Keys}
		for _, have := range fp.refs {
			if have.field == r.field && sameSymbolicKeys(have.keys, r.keys) {
				return
			}
		}
		fp.refs = append(fp.refs, r)
	}
	for _, c := range spec.Owned {
		addRef(c)
	}
	for _, c := range spec.Comm {
		addRef(c)
	}
	for _, p := range spec.Recipients {
		if p == ast.SenderParam || p == ast.OriginParam {
			continue
		}
		fp.recipients = append(fp.recipients, p)
	}
	return fp
}

func sameSymbolicKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Footprint resolves the conflict footprint of tx, appending into buf
// (which may be reused across calls). ok is false when the footprint is
// not statically known — unknown contract, no sharding signature,
// unshardable transition, or an unresolvable key argument — in which
// case the caller must treat tx as conflicting with everything.
//
// It reads only immutable transaction data and the compiled plan, so it
// is safe to call concurrently with other Footprint/Decide calls.
func (d *Dispatcher) Footprint(tx *chain.Tx, buf []FootprintAccess) ([]FootprintAccess, bool) {
	buf = buf[:0]
	switch tx.Kind {
	case chain.TxTransfer:
		// Debit observes the sender's balance; the credit is blind.
		buf = append(buf,
			FootprintAccess{Key: FootprintKey{Account: tx.From}},
			FootprintAccess{Key: FootprintKey{Account: tx.To}, Additive: true},
		)
		return buf, true
	case chain.TxCall:
	default:
		return buf, false
	}

	c := d.Contracts.Get(tx.To)
	if c == nil || c.Sig == nil {
		return buf, false
	}
	p := d.planFor(c, tx.Transition)
	if p == nil || p.fp == nil {
		return buf, false
	}
	fp := p.fp

	// The sender account is always exclusive: nonce bump, gas debit, and
	// (when funds are attached) the amount debit all observe it.
	buf = append(buf, FootprintAccess{Key: FootprintKey{Account: tx.From}})

	var kbuf [4]value.Value
	for i := range fp.refs {
		r := &fp.refs[i]
		key := FootprintKey{Contract: tx.To, Field: r.field}
		if len(r.keys) > 0 {
			keys := kbuf[:0]
			for _, name := range r.keys {
				v, ok := argOf(tx, name)
				if !ok {
					return buf, false
				}
				keys = append(keys, v)
			}
			key.Entry = chain.Keypath(keys)
		}
		buf = append(buf, FootprintAccess{Key: key})
	}

	for _, param := range fp.recipients {
		v, ok := tx.Args[param]
		if !ok {
			return buf, false
		}
		addr, ok := chain.AddressFromValue(v)
		if !ok {
			return buf, false
		}
		buf = append(buf, FootprintAccess{Key: FootprintKey{Account: addr}, Additive: true})
	}

	if fp.accepts {
		buf = append(buf, FootprintAccess{Key: FootprintKey{Account: tx.To}, Additive: true})
	}
	if fp.sendsFunds || fp.readsBalance {
		buf = append(buf, FootprintAccess{Key: FootprintKey{Account: tx.To}})
	}
	return buf, true
}
