package dispatch_test

import (
	"math/big"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/dispatch"
	"cosplit/internal/scilla/value"
)

// newBenchDispatcher stands up an FT contract with the paper's sharding
// query and a small user population, mirroring newFixture but usable
// from benchmarks.
func newBenchDispatcher(b *testing.B, numShards int) (*dispatch.Dispatcher, *chain.Contract, []chain.Address) {
	b.Helper()
	accounts := chain.NewAccounts()
	cs := chain.NewContracts()
	owner := chain.AddrFromUint(1)
	accounts.Create(owner, 1<<40, false)
	users := []chain.Address{owner}
	for i := 2; i <= 64; i++ {
		a := chain.AddrFromUint(uint64(i))
		accounts.Create(a, 1<<40, false)
		users = append(users, a)
	}
	addr := chain.ContractAddress(owner, 1)
	entry, err := contracts.Get("FungibleToken")
	if err != nil {
		b.Fatal(err)
	}
	c, err := chain.Deploy(addr, entry.Source, map[string]value.Value{
		"contract_owner": owner.Value(),
		"token_name":     value.Str{S: "T"},
		"token_symbol":   value.Str{S: "T"},
		"decimals":       value.Uint32V(6),
		"init_supply":    value.Uint128(1000),
	}, &chain.Deployment{Query: ftQuery()})
	if err != nil {
		b.Fatal(err)
	}
	accounts.Create(addr, 0, true)
	cs.Add(c)
	return dispatch.New(numShards, accounts, cs), c, users
}

func benchTransferTx(c *chain.Contract, from, to chain.Address, nonce uint64) *chain.Tx {
	return &chain.Tx{
		ID: nonce, Kind: chain.TxCall, From: from, To: c.Addr,
		Nonce: nonce, Amount: big.NewInt(0), GasLimit: 1000, GasPrice: 1,
		Transition: "Transfer",
		Args: map[string]value.Value{
			"to": to.Value(), "amount": value.Uint128(1),
		},
	}
}

// BenchmarkDecide measures the pure routing decision (dispatch_oc
// evaluation) on the FT Transfer hot path.
func BenchmarkDecide(b *testing.B) {
	d, c, users := newBenchDispatcher(b, 8)
	tx := benchTransferTx(c, users[1], users[2], 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := d.Decide(tx)
		if r.Rejected || r.Shard == dispatch.DS {
			b.Fatalf("unexpected routing: %+v", r)
		}
	}
}

// BenchmarkDispatch measures the full stateful dispatch path (routing
// plus replay table and load accounting).
func BenchmarkDispatch(b *testing.B) {
	d, c, users := newBenchDispatcher(b, 8)
	tx := benchTransferTx(c, users[1], users[2], 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Nonce = uint64(i) + 1
		dec := d.Dispatch(tx)
		if dec.Rejected {
			b.Fatalf("rejected: %s", dec.Reason)
		}
	}
}
