package dispatch

import "errors"

// Sentinel errors for the dispatcher's rejection verdicts. A rejected
// Decision carries the matching sentinel in its Err field (possibly
// wrapped), so callers test with errors.Is instead of matching the
// Reason string.
var (
	// ErrUnknownSender rejects a transaction whose sender has no
	// account; the nonce is not consumed.
	ErrUnknownSender = errors.New("unknown sender")
	// ErrStaleNonce rejects a nonce at or below the sender's committed
	// account nonce (relaxed nonces, Sec. 4.2.1); not consumed.
	ErrStaleNonce = errors.New("stale nonce")
	// ErrNonceReplay rejects a (sender, nonce) pair already used within
	// the epoch.
	ErrNonceReplay = errors.New("replayed nonce")
	// ErrUnknownContract rejects a call to an address with no deployed
	// contract. As in the sequential dispatcher, the nonce is still
	// consumed.
	ErrUnknownContract = errors.New("unknown contract")
)
