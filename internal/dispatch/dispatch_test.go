package dispatch_test

import (
	"errors"
	"math/big"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/dispatch"
	"cosplit/internal/obs"
	"cosplit/internal/scilla/value"
)

type fixture struct {
	disp     *dispatch.Dispatcher
	accounts *chain.Accounts
	contract *chain.Contract
	users    []chain.Address
}

func newFixture(t *testing.T, numShards int, q *signature.Query) *fixture {
	t.Helper()
	accounts := chain.NewAccounts()
	cs := chain.NewContracts()
	owner := chain.AddrFromUint(1)
	accounts.Create(owner, 1<<40, false)
	users := []chain.Address{owner}
	for i := 2; i <= 10; i++ {
		a := chain.AddrFromUint(uint64(i))
		accounts.Create(a, 1<<40, false)
		users = append(users, a)
	}
	addr := chain.ContractAddress(owner, 1)
	entry, err := contracts.Get("FungibleToken")
	if err != nil {
		t.Fatal(err)
	}
	var dep *chain.Deployment
	if q != nil {
		dep = &chain.Deployment{Query: q}
	}
	c, err := chain.Deploy(addr, entry.Source, map[string]value.Value{
		"contract_owner": owner.Value(),
		"token_name":     value.Str{S: "T"},
		"token_symbol":   value.Str{S: "T"},
		"decimals":       value.Uint32V(6),
		"init_supply":    value.Uint128(1000),
	}, dep)
	if err != nil {
		t.Fatal(err)
	}
	accounts.Create(addr, 0, true)
	cs.Add(c)
	return &fixture{
		disp:     dispatch.New(numShards, accounts, cs),
		accounts: accounts,
		contract: c,
		users:    users,
	}
}

func ftQuery() *signature.Query {
	return &signature.Query{
		Transitions: []string{"Mint", "Transfer", "TransferFrom"},
		WeakReads:   []string{"balances", "allowances"},
	}
}

func transferTx(f *fixture, from, to chain.Address, nonce uint64) *chain.Tx {
	return &chain.Tx{
		ID: nonce, Kind: chain.TxCall, From: from, To: f.contract.Addr,
		Nonce: nonce, Amount: big.NewInt(0), GasLimit: 1000, GasPrice: 1,
		Transition: "Transfer",
		Args: map[string]value.Value{
			"to": to.Value(), "amount": value.Uint128(1),
		},
	}
}

func TestTransferRoutedBySender(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	// All transfers from one sender land in the sender's ownership
	// shard, regardless of recipient.
	var shard0 = -3
	for i, to := range f.users[1:] {
		dec := f.disp.Dispatch(transferTx(f, f.users[0], to, uint64(i+1)))
		if dec.Rejected || dec.Shard == dispatch.DS {
			t.Fatalf("transfer rejected or sent to DS: %+v", dec)
		}
		if shard0 == -3 {
			shard0 = dec.Shard
		} else if dec.Shard != shard0 {
			t.Errorf("same-sender transfers split across shards %d and %d", shard0, dec.Shard)
		}
	}
}

func TestTransfersFromDifferentSendersSpread(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	seen := map[int]bool{}
	for i, from := range f.users {
		dec := f.disp.Dispatch(transferTx(f, from, f.users[(i+1)%len(f.users)], 1))
		if dec.Rejected {
			t.Fatalf("rejected: %+v", dec)
		}
		if dec.Shard != dispatch.DS {
			seen[dec.Shard] = true
		}
	}
	if len(seen) < 2 {
		t.Errorf("10 senders only used %d shards", len(seen))
	}
}

func TestAliasingGoesToDS(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	dec := f.disp.Dispatch(transferTx(f, f.users[0], f.users[0], 1))
	if dec.Shard != dispatch.DS {
		t.Errorf("self-transfer routed to shard %d, want DS", dec.Shard)
	}
}

func TestTransferFromColocation(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	// TransferFrom owns balances[from] and allowances[from][_sender]:
	// both keyed by `from`, so they co-locate in from's shard.
	from, spender, to := f.users[1], f.users[2], f.users[3]
	tx := &chain.Tx{
		ID: 1, Kind: chain.TxCall, From: spender, To: f.contract.Addr,
		Nonce: 1, Amount: big.NewInt(0), GasLimit: 1000, GasPrice: 1,
		Transition: "TransferFrom",
		Args: map[string]value.Value{
			"from": from.Value(), "to": to.Value(), "amount": value.Uint128(1),
		},
	}
	dec := f.disp.Dispatch(tx)
	if dec.Rejected || dec.Shard == dispatch.DS {
		t.Fatalf("TransferFrom not sharded: %+v", dec)
	}
	if want := chain.ShardOf(from, 4); dec.Shard != want {
		t.Errorf("TransferFrom in shard %d, want from's shard %d", dec.Shard, want)
	}
}

func TestMintBalancesLoad(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	// Mint is unconstrained; the dispatcher load-balances it.
	counts := make([]int, 4)
	for i := 0; i < 40; i++ {
		tx := &chain.Tx{
			ID: uint64(i + 1), Kind: chain.TxCall, From: f.users[0], To: f.contract.Addr,
			Nonce: uint64(i + 1), Amount: big.NewInt(0), GasLimit: 1000, GasPrice: 1,
			Transition: "Mint",
			Args: map[string]value.Value{
				"recipient": chain.AddrFromUint(uint64(1000 + i)).Value(),
				"amount":    value.Uint128(1),
			},
		}
		dec := f.disp.Dispatch(tx)
		if dec.Rejected || dec.Shard == dispatch.DS {
			t.Fatalf("mint not sharded: %+v", dec)
		}
		counts[dec.Shard]++
	}
	for s, c := range counts {
		if c != 10 {
			t.Errorf("shard %d got %d mints, want 10 (least-loaded balancing): %v", s, c, counts)
		}
	}
}

func TestUnselectedTransitionToDS(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	tx := &chain.Tx{
		ID: 1, Kind: chain.TxCall, From: f.users[0], To: f.contract.Addr,
		Nonce: 1, Amount: big.NewInt(0), GasLimit: 1000, GasPrice: 1,
		Transition: "Burn",
		Args:       map[string]value.Value{"amount": value.Uint128(1)},
	}
	if dec := f.disp.Dispatch(tx); dec.Shard != dispatch.DS {
		t.Errorf("Burn routed to shard %d, want DS", dec.Shard)
	}
}

func TestBaselineRouting(t *testing.T) {
	f := newFixture(t, 4, nil) // no signature
	cshard := chain.ShardOf(f.contract.Addr, 4)
	sawIn, sawDS := false, false
	for i, u := range f.users {
		dec := f.disp.Dispatch(transferTx(f, u, f.users[(i+1)%len(f.users)], 1))
		if chain.ShardOf(u, 4) == cshard {
			if dec.Shard != cshard {
				t.Errorf("co-located call not in contract shard: %+v", dec)
			}
			sawIn = true
		} else {
			if dec.Shard != dispatch.DS {
				t.Errorf("cross-shard baseline call not in DS: %+v", dec)
			}
			sawDS = true
		}
	}
	if !sawDS {
		t.Error("test population never exercised the DS path")
	}
	_ = sawIn
}

func TestNonceValidation(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	tx1 := transferTx(f, f.users[0], f.users[1], 5)
	if dec := f.disp.Dispatch(tx1); dec.Rejected {
		t.Fatalf("fresh nonce rejected: %+v", dec)
	}
	// Same nonce again within the epoch: replay.
	tx2 := transferTx(f, f.users[0], f.users[2], 5)
	if dec := f.disp.Dispatch(tx2); !dec.Rejected {
		t.Error("nonce replay accepted")
	}
	// Nonce 0 is stale (accounts start at nonce 0).
	tx3 := transferTx(f, f.users[0], f.users[1], 0)
	if dec := f.disp.Dispatch(tx3); !dec.Rejected {
		t.Error("stale nonce accepted")
	}
	// Unknown sender.
	tx4 := transferTx(f, chain.AddrFromUint(999999), f.users[1], 1)
	if dec := f.disp.Dispatch(tx4); !dec.Rejected {
		t.Error("unknown sender accepted")
	}
	// After reset, the used nonce table clears (committed nonces are
	// enforced by the account table, which we did not advance).
	f.disp.ResetEpoch()
	tx5 := transferTx(f, f.users[0], f.users[1], 5)
	if dec := f.disp.Dispatch(tx5); dec.Rejected {
		t.Errorf("nonce rejected after epoch reset: %+v", dec)
	}
}

func TestPlainTransferToHomeShard(t *testing.T) {
	f := newFixture(t, 4, nil)
	tx := &chain.Tx{
		ID: 1, Kind: chain.TxTransfer, From: f.users[0], To: f.users[1],
		Nonce: 1, Amount: big.NewInt(5), GasLimit: 10, GasPrice: 1,
	}
	dec := f.disp.Dispatch(tx)
	if want := chain.ShardOf(f.users[0], 4); dec.Shard != want {
		t.Errorf("payment in shard %d, want sender home shard %d", dec.Shard, want)
	}
}

func TestLoadCounters(t *testing.T) {
	f := newFixture(t, 2, ftQuery())
	f.disp.Dispatch(transferTx(f, f.users[0], f.users[1], 1))
	f.disp.Dispatch(transferTx(f, f.users[0], f.users[0], 2)) // DS (alias)
	load := f.disp.Load()
	total := 0
	for _, n := range load {
		total += n
	}
	if total != 2 {
		t.Errorf("load counters = %v, want total 2", load)
	}
	if load[len(load)-1] != 1 {
		t.Errorf("DS load = %d, want 1", load[len(load)-1])
	}
}

func TestRejectionSentinelErrors(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	// Unknown sender: typed, nonce not consumed.
	dec := f.disp.Dispatch(transferTx(f, chain.AddrFromUint(424242), f.users[1], 1))
	if !errors.Is(dec.Err, dispatch.ErrUnknownSender) {
		t.Errorf("unknown sender err = %v, want ErrUnknownSender", dec.Err)
	}
	// Stale nonce.
	dec = f.disp.Dispatch(transferTx(f, f.users[0], f.users[1], 0))
	if !errors.Is(dec.Err, dispatch.ErrStaleNonce) {
		t.Errorf("stale nonce err = %v, want ErrStaleNonce", dec.Err)
	}
	// Replay: second use of the same (sender, nonce) in one epoch.
	if dec := f.disp.Dispatch(transferTx(f, f.users[0], f.users[1], 7)); dec.Err != nil {
		t.Fatalf("fresh nonce rejected: %v", dec.Err)
	}
	dec = f.disp.Dispatch(transferTx(f, f.users[0], f.users[2], 7))
	if !errors.Is(dec.Err, dispatch.ErrNonceReplay) {
		t.Errorf("replay err = %v, want ErrNonceReplay", dec.Err)
	}
	// Unknown contract.
	tx := transferTx(f, f.users[1], f.users[2], 1)
	tx.To = chain.AddrFromUint(55555)
	dec = f.disp.Dispatch(tx)
	if !errors.Is(dec.Err, dispatch.ErrUnknownContract) {
		t.Errorf("unknown contract err = %v, want ErrUnknownContract", dec.Err)
	}
	// Accepted decisions carry no error.
	if dec := f.disp.Dispatch(transferTx(f, f.users[3], f.users[4], 1)); dec.Err != nil {
		t.Errorf("accepted decision has err %v", dec.Err)
	}
}

// TestDecideZeroAllocs pins the recorder-off hot-path contract of the
// observability layer: the pure routing decision performs zero
// allocations per transaction, metrics included.
func TestDecideZeroAllocs(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	tx := transferTx(f, f.users[1], f.users[2], 1)
	// Warm the plan cache so steady-state behaviour is measured.
	if r := f.disp.Decide(tx); r.Rejected {
		t.Fatalf("warm-up rejected: %+v", r)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if r := f.disp.Decide(tx); r.Rejected {
			t.Fatal(r.Reason)
		}
	})
	if allocs != 0 {
		t.Errorf("Decide allocates %.1f/op, want 0", allocs)
	}
}

// TestDispatchMetrics checks the always-on dispatcher instruments:
// routing-kind mix, plan-cache hit/miss, and nonce-replay counts.
func TestDispatchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	accounts := chain.NewAccounts()
	cs := chain.NewContracts()
	for i := 1; i <= 4; i++ {
		accounts.Create(chain.AddrFromUint(uint64(i)), 1<<40, false)
	}
	d := dispatch.New(2, accounts, cs, dispatch.WithMetrics(reg))
	pay := func(from, to uint64, nonce uint64) *chain.Tx {
		return &chain.Tx{
			ID: nonce, Kind: chain.TxTransfer,
			From: chain.AddrFromUint(from), To: chain.AddrFromUint(to),
			Nonce: nonce, Amount: big.NewInt(1), GasLimit: 10, GasPrice: 1,
		}
	}
	d.Dispatch(pay(1, 2, 1))  // routed to a shard
	d.Dispatch(pay(1, 2, 1))  // replay
	d.Dispatch(pay(99, 2, 1)) // unknown sender
	snap := reg.Snapshot()
	if got := snap.Counters["dispatch.decisions"]; got != 3 {
		t.Errorf("decisions = %d, want 3", got)
	}
	if got := snap.Counters["dispatch.route.shard"]; got != 1 {
		t.Errorf("route.shard = %d, want 1", got)
	}
	if got := snap.Counters["dispatch.route.rejected"]; got != 2 {
		t.Errorf("route.rejected = %d, want 2", got)
	}
	if got := snap.Counters["dispatch.nonce_replay"]; got != 1 {
		t.Errorf("nonce_replay = %d, want 1", got)
	}
}

// TestUnavailableShardReroutesToDS: the fault-recovery availability
// mask sends a down shard's traffic to the DS committee, keeps
// load-balanced placements off the shard, and restores normal routing
// once cleared.
func TestUnavailableShardReroutesToDS(t *testing.T) {
	f := newFixture(t, 4, ftQuery())
	disp := f.disp
	from := f.users[0]
	home := chain.ShardOf(from, 4)
	down := make([]bool, 4)
	down[home] = true
	disp.SetUnavailable(down)

	dec := disp.Dispatch(transferTx(f, from, f.users[1], 1))
	if dec.Rejected || dec.Shard != dispatch.DS || dec.Reason != dispatch.ReasonShardUnavailable {
		t.Fatalf("constrained tx on a down shard: %+v, want DS with %q", dec, dispatch.ReasonShardUnavailable)
	}

	mint := func(nonce uint64) *chain.Tx {
		return &chain.Tx{
			ID: nonce, Kind: chain.TxCall, From: from, To: f.contract.Addr,
			Nonce: nonce, Amount: big.NewInt(0), GasLimit: 1000, GasPrice: 1,
			Transition: "Mint",
			Args: map[string]value.Value{
				"recipient": chain.AddrFromUint(1000 + nonce).Value(),
				"amount":    value.Uint128(1),
			},
		}
	}
	for n := uint64(2); n < 10; n++ {
		dec := disp.Dispatch(mint(n))
		if dec.Shard == home || dec.Shard == dispatch.DS {
			t.Fatalf("load-balanced mint landed on shard %d with shard %d down", dec.Shard, home)
		}
	}

	// Recovery: clearing the mask restores the home-shard placement.
	disp.SetUnavailable(nil)
	if dec := disp.Dispatch(transferTx(f, from, f.users[1], 10)); dec.Shard != home {
		t.Errorf("after recovery, transfer in shard %d, want home %d", dec.Shard, home)
	}

	// Full outage: with every shard down, even unconstrained
	// transactions execute on the DS committee.
	disp.SetUnavailable([]bool{true, true, true, true})
	if dec := disp.Dispatch(mint(11)); dec.Shard != dispatch.DS || dec.Reason != dispatch.ReasonShardUnavailable {
		t.Errorf("full outage mint: %+v, want DS with %q", dec, dispatch.ReasonShardUnavailable)
	}
}
