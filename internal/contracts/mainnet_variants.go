package contracts

// Mainnet-style variants of the NFT and UD contracts, before the
// compare-and-swap rewrites described in Sec. 6 of the paper. Their
// authorisation checks index maps with keys read from the contract
// state (e.g. approvals[token_owner] where token_owner comes from
// token_owners[token_id]), which CanSummarise cannot describe — the
// affected transitions get the uninformative ⊤ effect and cannot be
// sharded. These variants reproduce the paper's observation that "a
// small number of contracts ... can be made shardable by a simple
// refactoring".

// NonfungibleTokenMainnet mirrors the original ZRC-1 Transfer: the
// token owner is read from state and then used as a map key.
const NonfungibleTokenMainnet = `
scilla_version 0

library NonfungibleTokenMainnet

let zero = Uint128 0
let one = Uint128 1

contract NonfungibleTokenMainnet
(contract_owner : ByStr20,
 name : String,
 symbol : String)

field token_owners : Map Uint256 ByStr20 = Emp Uint256 ByStr20

field owned_count : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field operator_approvals : Map ByStr20 (Map ByStr20 Bool) =
  Emp ByStr20 (Map ByStr20 Bool)

transition Mint (to : ByStr20, token_id : Uint256)
  is_minter = builtin eq _sender contract_owner;
  match is_minter with
  | True =>
    taken <- exists token_owners[token_id];
    match taken with
    | True =>
      throw
    | False =>
      token_owners[token_id] := to;
      cnt_opt <- owned_count[to];
      new_cnt = match cnt_opt with
                | Some c => builtin add c one
                | None => one
                end;
      owned_count[to] := new_cnt;
      e = {_eventname : "MintSuccess"; token : token_id};
      event e
    end
  | False =>
    throw
  end
end

(* The pre-rewrite Transfer: token_owner is read from the contract
   state and then used to index operator_approvals — CanSummarise
   fails, the transition summary is ⊤, and it cannot be sharded. *)
transition Transfer (to : ByStr20, token_id : Uint256)
  owner_opt <- token_owners[token_id];
  match owner_opt with
  | Some token_owner =>
    is_owner = builtin eq _sender token_owner;
    approved_opt <- operator_approvals[token_owner][_sender];
    is_operator = match approved_opt with
                  | Some b => b
                  | None => False
                  end;
    can_do = builtin orb is_owner is_operator;
    match can_do with
    | True =>
      token_owners[token_id] := to;
      from_cnt_opt <- owned_count[token_owner];
      new_from = match from_cnt_opt with
                 | Some c => builtin sub c one
                 | None => zero
                 end;
      owned_count[token_owner] := new_from;
      to_cnt_opt <- owned_count[to];
      new_to = match to_cnt_opt with
               | Some c => builtin add c one
               | None => one
               end;
      owned_count[to] := new_to;
      e = {_eventname : "TransferSuccess"; token : token_id};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

transition SetApprovalForAll (operator : ByStr20, approved : Bool)
  operator_approvals[_sender][operator] := approved;
  e = {_eventname : "ApprovalForAll"; operator : operator};
  event e
end
`

// UDRegistryMainnet mirrors the original registry: Configure reads the
// domain owner from state to authorise the update, rather than taking
// the expected owner as a parameter.
const UDRegistryMainnet = `
scilla_version 0

library UDRegistryMainnet

contract UDRegistryMainnet
(registry_owner : ByStr20)

field records : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field record_data : Map ByStr32 (Map String String) =
  Emp ByStr32 (Map String String)

field operators : Map ByStr20 (Map ByStr20 Bool) =
  Emp ByStr20 (Map ByStr20 Bool)

transition Bestow (node : ByStr32, owner : ByStr20)
  is_admin = builtin eq _sender registry_owner;
  match is_admin with
  | True =>
    taken <- exists records[node];
    match taken with
    | True =>
      throw
    | False =>
      records[node] := owner;
      e = {_eventname : "Bestowed"; node : node};
      event e
    end
  | False =>
    throw
  end
end

(* Pre-rewrite Configure: the owner read from records[node] is used to
   index into operators, so the access cannot be summarised. *)
transition Configure (node : ByStr32, key : String, val : String)
  owner_opt <- records[node];
  match owner_opt with
  | Some owner =>
    is_owner = builtin eq _sender owner;
    op_opt <- operators[owner][_sender];
    is_operator = match op_opt with
                  | Some b => b
                  | None => False
                  end;
    ok = builtin orb is_owner is_operator;
    match ok with
    | True =>
      record_data[node][key] := val;
      e = {_eventname : "Configured"; node : node};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

transition SetOperator (operator : ByStr20, enabled : Bool)
  operators[_sender][operator] := enabled;
  e = {_eventname : "OperatorSet"; operator : operator};
  event e
end
`

func init() {
	register("NonfungibleTokenMainnet", NonfungibleTokenMainnet, false)
	register("UDRegistryMainnet", UDRegistryMainnet, false)
}
