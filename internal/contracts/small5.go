package contracts

// Fifth batch: brings the corpus to 49 contracts, the size of the
// paper's Fig. 12 population.

// Celebrity sells autographed collectible cards.
const Celebrity = `
scilla_version 0

library Celebrity

contract Celebrity
(celebrity : ByStr20,
 card_price : Uint128)

field cards : Map Uint32 ByStr20 = Emp Uint32 ByStr20

field next_card : Uint32 = Uint32 0

transition BuyCard ()
  enough = builtin le card_price _amount;
  match enough with
  | True =>
    accept;
    id <- next_card;
    one = Uint32 1;
    nid = builtin add id one;
    next_card := nid;
    cards[id] := _sender;
    e = {_eventname : "CardBought"; id : id; fan : _sender};
    event e
  | False =>
    throw
  end
end

transition GiftCard (card_id : Uint32, to : ByStr20)
  owner_opt <- cards[card_id];
  match owner_opt with
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | True =>
      cards[card_id] := to;
      e = {_eventname : "CardGifted"; id : card_id; recipient : to};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end
`

// SuperplayerToken is a game currency with batch-earn semantics.
const SuperplayerToken = `
scilla_version 0

library SuperplayerToken

let one = Uint128 1

contract SuperplayerToken
(game_server : ByStr20)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field season : Uint32 = Uint32 0

transition Award (player : ByStr20, amount : Uint128)
  is_server = builtin eq _sender game_server;
  match is_server with
  | True =>
    cur_opt <- balances[player];
    nb = match cur_opt with
         | Some b => builtin add b amount
         | None => amount
         end;
    balances[player] := nb;
    e = {_eventname : "Awarded"; player : player; amount : amount};
    event e
  | False =>
    throw
  end
end

transition Pay (to : ByStr20, amount : Uint128)
  bal_opt <- balances[_sender];
  match bal_opt with
  | Some bal =>
    can = builtin le amount bal;
    match can with
    | True =>
      nb = builtin sub bal amount;
      balances[_sender] := nb;
      to_opt <- balances[to];
      nt = match to_opt with
           | Some x => builtin add x amount
           | None => amount
           end;
      balances[to] := nt
    | False =>
      throw
    end
  | None =>
    throw
  end
end

transition NewSeason ()
  is_server = builtin eq _sender game_server;
  match is_server with
  | True =>
    s <- season;
    one32 = Uint32 1;
    ns = builtin add s one32;
    season := ns
  | False =>
    throw
  end
end
`

// DPSLeaderboard tracks damage-per-second high scores.
const DPSLeaderboard = `
scilla_version 0

library DPSLeaderboard

contract DPSLeaderboard
(game : ByStr20)

field scores : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition SubmitScore (player : ByStr20, dps : Uint128)
  is_game = builtin eq _sender game;
  match is_game with
  | True =>
    cur_opt <- scores[player];
    match cur_opt with
    | Some cur =>
      higher = builtin lt cur dps;
      match higher with
      | True =>
        scores[player] := dps;
        e = {_eventname : "NewHighScore"; player : player; dps : dps};
        event e
      | False =>
        throw
      end
    | None =>
      scores[player] := dps;
      e = {_eventname : "FirstScore"; player : player; dps : dps};
      event e
    end
  | False =>
    throw
  end
end

transition ResetPlayer (player : ByStr20)
  is_game = builtin eq _sender game;
  match is_game with
  | True =>
    delete scores[player]
  | False =>
    throw
  end
end
`

// OTS200 is an OpenTimestamps-style document timestamping service.
const OTS200 = `
scilla_version 0

library OTS200

contract OTS200
(notary : ByStr20)

field stamps : Map ByStr32 BNum = Emp ByStr32 BNum

field stamp_count : Uint128 = Uint128 0

transition Stamp (doc_hash : ByStr32)
  known <- exists stamps[doc_hash];
  match known with
  | True =>
    throw
  | False =>
    blk <- &BLOCKNUMBER;
    stamps[doc_hash] := blk;
    c <- stamp_count;
    one = Uint128 1;
    nc = builtin add c one;
    stamp_count := nc;
    e = {_eventname : "Stamped"; doc : doc_hash};
    event e
  end
end

transition Prove (doc_hash : ByStr32)
  at_opt <- stamps[doc_hash];
  match at_opt with
  | Some at =>
    e = {_eventname : "Proof"; doc : doc_hash};
    event e
  | None =>
    throw
  end
end
`

// HybridEuro is a compliance-gated stablecoin.
const HybridEuro = `
scilla_version 0

library HybridEuro

let bool_true = True

contract HybridEuro
(issuer : ByStr20)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field kyc : Map ByStr20 Bool = Emp ByStr20 Bool

field frozen : Map ByStr20 Bool = Emp ByStr20 Bool

transition Whitelist (account : ByStr20)
  is_issuer = builtin eq _sender issuer;
  match is_issuer with
  | True =>
    kyc[account] := bool_true
  | False =>
    throw
  end
end

transition Freeze (account : ByStr20)
  is_issuer = builtin eq _sender issuer;
  match is_issuer with
  | True =>
    frozen[account] := bool_true
  | False =>
    throw
  end
end

transition Issue (to : ByStr20, amount : Uint128)
  is_issuer = builtin eq _sender issuer;
  match is_issuer with
  | True =>
    cleared <- exists kyc[to];
    match cleared with
    | True =>
      cur_opt <- balances[to];
      nb = match cur_opt with
           | Some b => builtin add b amount
           | None => amount
           end;
      balances[to] := nb;
      e = {_eventname : "Issued"; holder : to; amount : amount};
      event e
    | False =>
      throw
    end
  | False =>
    throw
  end
end

transition TransferEuro (to : ByStr20, amount : Uint128)
  sender_frozen <- exists frozen[_sender];
  match sender_frozen with
  | True =>
    throw
  | False =>
    cleared <- exists kyc[to];
    match cleared with
    | True =>
      bal_opt <- balances[_sender];
      match bal_opt with
      | Some bal =>
        can = builtin le amount bal;
        match can with
        | True =>
          nb = builtin sub bal amount;
          balances[_sender] := nb;
          to_opt <- balances[to];
          nt = match to_opt with
               | Some x => builtin add x amount
               | None => amount
               end;
          balances[to] := nt
        | False =>
          throw
        end
      | None =>
        throw
      end
    | False =>
      throw
    end
  end
end
`

// OceanRumbleMinionToken is a game-asset registry with levelling.
const OceanRumbleMinionToken = `
scilla_version 0

library OceanRumbleMinionToken

let one = Uint128 1

contract OceanRumbleMinionToken
(game_master : ByStr20)

field minions : Map Uint256 ByStr20 = Emp Uint256 ByStr20

field levels : Map Uint256 Uint128 = Emp Uint256 Uint128

transition SpawnMinion (minion_id : Uint256, to : ByStr20)
  is_gm = builtin eq _sender game_master;
  match is_gm with
  | True =>
    taken <- exists minions[minion_id];
    match taken with
    | True =>
      throw
    | False =>
      minions[minion_id] := to;
      levels[minion_id] := one;
      e = {_eventname : "MinionSpawned"; id : minion_id};
      event e
    end
  | False =>
    throw
  end
end

transition LevelUp (minion_id : Uint256)
  owner_opt <- minions[minion_id];
  match owner_opt with
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | True =>
      lvl_opt <- levels[minion_id];
      nl = match lvl_opt with
           | Some l => builtin add l one
           | None => one
           end;
      levels[minion_id] := nl;
      e = {_eventname : "LeveledUp"; id : minion_id};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end
`

// AuctionRegistrar runs first-price name auctions.
const AuctionRegistrar = `
scilla_version 0

library AuctionRegistrar

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

type NameBid =
| NameBid of ByStr20 Uint128 BNum

contract AuctionRegistrar
(registrar : ByStr20,
 bidding_period : Uint128)

field live_bids : Map String NameBid = Emp String NameBid

field registrations : Map String ByStr20 = Emp String ByStr20

transition OpenBid (name : String)
  registered <- exists registrations[name];
  match registered with
  | True =>
    throw
  | False =>
    bid_opt <- live_bids[name];
    match bid_opt with
    | Some b =>
      match b with
      | NameBid cur_bidder cur_amount deadline =>
        higher = builtin lt cur_amount _amount;
        match higher with
        | True =>
          accept;
          blk <- &BLOCKNUMBER;
          nb = NameBid _sender _amount deadline;
          live_bids[name] := nb;
          m = {_tag : "BidRefund"; _recipient : cur_bidder; _amount : cur_amount};
          msgs = one_msg m;
          send msgs
        | False =>
          throw
        end
      end
    | None =>
      accept;
      blk <- &BLOCKNUMBER;
      expiry = builtin badd blk bidding_period;
      nb = NameBid _sender _amount expiry;
      live_bids[name] := nb;
      e = {_eventname : "BidOpened"; name : name};
      event e
    end
  end
end

transition Finalise (name : String)
  bid_opt <- live_bids[name];
  match bid_opt with
  | Some b =>
    match b with
    | NameBid bidder amount deadline =>
      blk <- &BLOCKNUMBER;
      ended = builtin blt deadline blk;
      match ended with
      | True =>
        delete live_bids[name];
        registrations[name] := bidder;
        e = {_eventname : "NameRegistered"; name : name};
        event e
      | False =>
        throw
      end
    end
  | None =>
    throw
  end
end
`

// LUYCambodia is a remittance token with fee collection.
const LUYCambodia = `
scilla_version 0

library LUYCambodia

let fee = Uint128 1

contract LUYCambodia
(operator : ByStr20)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field collected_fees : Uint128 = Uint128 0

transition Remit (to : ByStr20, amount : Uint128)
  bal_opt <- balances[_sender];
  match bal_opt with
  | Some bal =>
    total = builtin add amount fee;
    can = builtin le total bal;
    match can with
    | True =>
      nb = builtin sub bal total;
      balances[_sender] := nb;
      to_opt <- balances[to];
      nt = match to_opt with
           | Some x => builtin add x amount
           | None => amount
           end;
      balances[to] := nt;
      fees <- collected_fees;
      nf = builtin add fees fee;
      collected_fees := nf;
      e = {_eventname : "Remitted"; recipient : to; amount : amount};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

transition TopUp (account : ByStr20, amount : Uint128)
  is_op = builtin eq _sender operator;
  match is_op with
  | True =>
    cur_opt <- balances[account];
    nb = match cur_opt with
         | Some b => builtin add b amount
         | None => amount
         end;
    balances[account] := nb
  | False =>
    throw
  end
end
`

// SchnorrTest exercises the (modelled) signature-verification builtin.
const SchnorrTest = `
scilla_version 0

library SchnorrTest

contract SchnorrTest
(trusted_key : ByStr32)

field verified : Map ByStr32 Bool = Emp ByStr32 Bool

transition Verify (message_hash : ByStr32, sig : ByStr)
  ok = builtin schnorr_verify trusted_key message_hash sig;
  match ok with
  | True =>
    t = True;
    verified[message_hash] := t;
    e = {_eventname : "Verified"; message : message_hash};
    event e
  | False =>
    throw
  end
end
`

func init() {
	register("Celebrity", Celebrity, false)
	register("SuperplayerToken", SuperplayerToken, false)
	register("DPSLeaderboard", DPSLeaderboard, false)
	register("OTS200", OTS200, false)
	register("HybridEuro", HybridEuro, false)
	register("OceanRumbleMinionToken", OceanRumbleMinionToken, false)
	register("AuctionRegistrar", AuctionRegistrar, false)
	register("LUYCambodia", LUYCambodia, false)
	register("SchnorrTest", SchnorrTest, false)
}
