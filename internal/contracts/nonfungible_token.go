package contracts

// NonfungibleToken is the ZRC-1-style NFT contract (Zilliqa's ERC-721
// equivalent) from the paper's evaluation. Per Sec. 5.2, Mint and
// Transfer are sharded; Burn and Approve are not. Per Sec. 6, Transfer
// is written compare-and-swap style: the expected token owner is a
// transition parameter validated against the stored owner, which makes
// all owned components keyed by the token id.
const NonfungibleToken = `
scilla_version 0

library NonfungibleToken

let zero = Uint128 0
let one = Uint128 1

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract NonfungibleToken
(contract_owner : ByStr20,
 name : String,
 symbol : String)

field minter : ByStr20 = contract_owner

field token_owners : Map Uint256 ByStr20 = Emp Uint256 ByStr20

field owned_count : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field token_approvals : Map Uint256 ByStr20 = Emp Uint256 ByStr20

field operator_approvals : Map ByStr20 (Map ByStr20 Bool) =
  Emp ByStr20 (Map ByStr20 Bool)

field total_tokens : Uint128 = Uint128 0

(* Create a new token. Only the minter may mint; the state touched
   depends only on the token id and the recipient. *)
transition Mint (to : ByStr20, token_id : Uint256)
  m <- minter;
  is_minter = builtin eq _sender m;
  match is_minter with
  | True =>
    taken <- exists token_owners[token_id];
    match taken with
    | True =>
      throw
    | False =>
      token_owners[token_id] := to;
      cnt_opt <- owned_count[to];
      new_cnt = match cnt_opt with
                | Some c => builtin add c one
                | None => one
                end;
      owned_count[to] := new_cnt;
      tt <- total_tokens;
      new_tt = builtin add tt one;
      total_tokens := new_tt;
      e = {_eventname : "MintSuccess"; by : _sender; recipient : to; token : token_id};
      event e
    end
  | False =>
    throw
  end
end

(* Transfer a token. token_owner is the expected current owner
   (compare-and-swap, Sec. 6); the caller must be the owner or the
   approved spender of the token. *)
transition Transfer (to : ByStr20, token_id : Uint256, token_owner : ByStr20)
  owner_opt <- token_owners[token_id];
  match owner_opt with
  | Some actual_owner =>
    owner_matches = builtin eq actual_owner token_owner;
    match owner_matches with
    | True =>
      is_owner = builtin eq _sender token_owner;
      approved_opt <- token_approvals[token_id];
      is_approved = match approved_opt with
                    | Some spender => builtin eq spender _sender
                    | None => False
                    end;
      can_transfer = builtin orb is_owner is_approved;
      match can_transfer with
      | True =>
        delete token_approvals[token_id];
        token_owners[token_id] := to;
        from_cnt_opt <- owned_count[token_owner];
        new_from_cnt = match from_cnt_opt with
                       | Some c => builtin sub c one
                       | None => zero
                       end;
        owned_count[token_owner] := new_from_cnt;
        to_cnt_opt <- owned_count[to];
        new_to_cnt = match to_cnt_opt with
                     | Some c => builtin add c one
                     | None => one
                     end;
        owned_count[to] := new_to_cnt;
        e = {_eventname : "TransferSuccess"; from : token_owner; recipient : to; token : token_id};
        event e
      | False =>
        throw
      end
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Destroy a token; only its owner may burn it. *)
transition Burn (token_id : Uint256)
  owner_opt <- token_owners[token_id];
  match owner_opt with
  | Some actual_owner =>
    is_owner = builtin eq _sender actual_owner;
    match is_owner with
    | True =>
      delete token_owners[token_id];
      delete token_approvals[token_id];
      cnt_opt <- owned_count[_sender];
      new_cnt = match cnt_opt with
                | Some c => builtin sub c one
                | None => zero
                end;
      owned_count[_sender] := new_cnt;
      tt <- total_tokens;
      new_tt = builtin sub tt one;
      total_tokens := new_tt;
      e = {_eventname : "BurnSuccess"; by : _sender; token : token_id};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Approve a spender for one token; only the token owner may approve. *)
transition Approve (to : ByStr20, token_id : Uint256)
  owner_opt <- token_owners[token_id];
  match owner_opt with
  | Some actual_owner =>
    is_owner = builtin eq _sender actual_owner;
    match is_owner with
    | True =>
      token_approvals[token_id] := to;
      e = {_eventname : "ApproveSuccess"; from : _sender; approved : to; token : token_id};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Grant or revoke an operator for all of the sender's tokens. *)
transition SetApprovalForAll (operator : ByStr20, approved : Bool)
  self_op = builtin eq _sender operator;
  match self_op with
  | True =>
    throw
  | False =>
    operator_approvals[_sender][operator] := approved;
    e = {_eventname : "SetApprovalForAllSuccess"; by : _sender; operator : operator};
    event e
  end
end
`

func init() { register("NonfungibleToken", NonfungibleToken, true) }
