package contracts

// Fourth batch of corpus contracts, named after (and shaped like) more
// of the Fig. 12 population.

// DBond is a fixed-term bond: buy now, redeem with interest at
// maturity.
const DBond = `
scilla_version 0

library DBond

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

let hundred = Uint128 100

contract DBond
(issuer : ByStr20,
 maturity : BNum,
 interest_percent : Uint128)

field bonds : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition BuyBond ()
  blk <- &BLOCKNUMBER;
  open = builtin blt blk maturity;
  match open with
  | True =>
    already <- exists bonds[_sender];
    match already with
    | True =>
      throw
    | False =>
      accept;
      bonds[_sender] := _amount;
      e = {_eventname : "BondIssued"; holder : _sender; principal : _amount};
      event e
    end
  | False =>
    throw
  end
end

transition Redeem ()
  blk <- &BLOCKNUMBER;
  matured = builtin blt maturity blk;
  match matured with
  | True =>
    principal_opt <- bonds[_sender];
    match principal_opt with
    | Some principal =>
      delete bonds[_sender];
      rate = builtin add hundred interest_percent;
      gross = builtin mul principal rate;
      payout = builtin div gross hundred;
      m = {_tag : "Redemption"; _recipient : _sender; _amount : payout};
      msgs = one_msg m;
      send msgs;
      e = {_eventname : "BondRedeemed"; holder : _sender; payout : payout};
      event e
    | None =>
      throw
    end
  | False =>
    throw
  end
end

transition Fund ()
  is_issuer = builtin eq _sender issuer;
  match is_issuer with
  | True =>
    accept
  | False =>
    throw
  end
end
`

// TokenHub escrows deposits of a fungible token contract (exercises
// outgoing contract calls, which keep it DS-bound).
const TokenHub = `
scilla_version 0

library TokenHub

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

let zero = Uint128 0

contract TokenHub
(token : ByStr20)

field deposits : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition RecordDeposit (depositor : ByStr20, amount : Uint128)
  is_token = builtin eq _sender token;
  match is_token with
  | True =>
    cur_opt <- deposits[depositor];
    new_total = match cur_opt with
                | Some d => builtin add d amount
                | None => amount
                end;
    deposits[depositor] := new_total;
    e = {_eventname : "Deposited"; depositor : depositor; amount : amount};
    event e
  | False =>
    throw
  end
end

transition Withdraw (amount : Uint128)
  cur_opt <- deposits[_sender];
  match cur_opt with
  | Some d =>
    can = builtin le amount d;
    match can with
    | True =>
      new_total = builtin sub d amount;
      deposits[_sender] := new_total;
      m = {_tag : "Transfer"; _recipient : token; _amount : zero; to : _sender; amount : amount};
      msgs = one_msg m;
      send msgs
    | False =>
      throw
    end
  | None =>
    throw
  end
end
`

// Zeecash keeps note commitments and nullifiers (mixer-style sets).
const Zeecash = `
scilla_version 0

library Zeecash

let bool_true = True

contract Zeecash
(denomination : Uint128)

field commitments : Map ByStr32 Bool = Emp ByStr32 Bool

field nullifiers : Map ByStr32 Bool = Emp ByStr32 Bool

transition Deposit (commitment : ByStr32)
  exact = builtin eq _amount denomination;
  match exact with
  | True =>
    known <- exists commitments[commitment];
    match known with
    | True =>
      throw
    | False =>
      accept;
      commitments[commitment] := bool_true;
      e = {_eventname : "NoteDeposited"; commitment : commitment};
      event e
    end
  | False =>
    throw
  end
end

transition MarkSpent (nullifier : ByStr32)
  spent <- exists nullifiers[nullifier];
  match spent with
  | True =>
    throw
  | False =>
    nullifiers[nullifier] := bool_true;
    e = {_eventname : "NoteSpent"; nullifier : nullifier};
    event e
  end
end
`

// SwapContract is an atomic two-leg swap order book.
const SwapContract = `
scilla_version 0

library SwapContract

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

type Order =
| Order of ByStr20 Uint128 Uint128

contract SwapContract
(operator : ByStr20)

field orders : Map Uint32 Order = Emp Uint32 Order

field next_order : Uint32 = Uint32 0

transition PlaceOrder (ask : Uint128)
  accept;
  id <- next_order;
  one = Uint32 1;
  nid = builtin add id one;
  next_order := nid;
  o = Order _sender _amount ask;
  orders[id] := o;
  e = {_eventname : "OrderPlaced"; id : id; offer : _amount; ask : ask};
  event e
end

transition TakeOrder (order_id : Uint32)
  o_opt <- orders[order_id];
  match o_opt with
  | Some o =>
    match o with
    | Order maker offer ask =>
      enough = builtin le ask _amount;
      match enough with
      | True =>
        accept;
        delete orders[order_id];
        m1 = {_tag : "SwapLeg"; _recipient : maker; _amount : _amount};
        m2 = {_tag : "SwapLeg"; _recipient : _sender; _amount : offer};
        msgs1 = one_msg m1;
        send msgs1;
        msgs2 = one_msg m2;
        send msgs2;
        e = {_eventname : "OrderFilled"; id : order_id};
        event e
      | False =>
        throw
      end
    end
  | None =>
    throw
  end
end

transition CancelOrder (order_id : Uint32)
  o_opt <- orders[order_id];
  match o_opt with
  | Some o =>
    match o with
    | Order maker offer ask =>
      is_maker = builtin eq _sender maker;
      match is_maker with
      | True =>
        delete orders[order_id];
        m = {_tag : "Refund"; _recipient : maker; _amount : offer};
        msgs = one_msg m;
        send msgs
      | False =>
        throw
      end
    end
  | None =>
    throw
  end
end
`

// MyRewardsToken is a loyalty-points ledger with earn/spend.
const MyRewardsToken = `
scilla_version 0

library MyRewardsToken

contract MyRewardsToken
(merchant : ByStr20)

field points : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field issued : Uint128 = Uint128 0

transition Earn (customer : ByStr20, amount : Uint128)
  is_merchant = builtin eq _sender merchant;
  match is_merchant with
  | True =>
    cur_opt <- points[customer];
    new_pts = match cur_opt with
              | Some p => builtin add p amount
              | None => amount
              end;
    points[customer] := new_pts;
    total <- issued;
    new_total = builtin add total amount;
    issued := new_total;
    e = {_eventname : "PointsEarned"; customer : customer; amount : amount};
    event e
  | False =>
    throw
  end
end

transition Spend (amount : Uint128)
  cur_opt <- points[_sender];
  match cur_opt with
  | Some p =>
    can = builtin le amount p;
    match can with
    | True =>
      new_pts = builtin sub p amount;
      points[_sender] := new_pts;
      e = {_eventname : "PointsSpent"; customer : _sender; amount : amount};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end
`

// ProxyContract forwards calls to an upgradeable implementation.
const ProxyContract = `
scilla_version 0

library ProxyContract

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract ProxyContract
(proxy_admin : ByStr20,
 initial_impl : ByStr20)

field implementation : ByStr20 = initial_impl

transition UpgradeTo (new_impl : ByStr20)
  is_admin = builtin eq _sender proxy_admin;
  match is_admin with
  | True =>
    implementation := new_impl;
    e = {_eventname : "Upgraded"; implementation : new_impl};
    event e
  | False =>
    throw
  end
end

transition Forward (tag : String, arg : String)
  impl <- implementation;
  accept;
  m = {_tag : "Dispatch"; _recipient : impl; _amount : _amount; tag : tag; arg : arg};
  msgs = one_msg m;
  send msgs
end
`

// ZKToken gates transfers on a (modelled) zero-knowledge proof check.
const ZKToken = `
scilla_version 0

library ZKToken

contract ZKToken
(verifier_key : ByStr32)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field proof_seen : Map ByStr32 Bool = Emp ByStr32 Bool

transition PrivateTransfer (to : ByStr20, amount : Uint128, proof : ByStr32)
  used <- exists proof_seen[proof];
  match used with
  | True =>
    throw
  | False =>
    t = True;
    proof_seen[proof] := t;
    bal_opt <- balances[_sender];
    match bal_opt with
    | Some bal =>
      can = builtin le amount bal;
      match can with
      | True =>
        nb = builtin sub bal amount;
        balances[_sender] := nb;
        to_opt <- balances[to];
        nt = match to_opt with
             | Some x => builtin add x amount
             | None => amount
             end;
        balances[to] := nt;
        e = {_eventname : "PrivateTransfer"; proof : proof};
        event e
      | False =>
        throw
      end
    | None =>
      throw
    end
  end
end

transition Faucet (amount : Uint128)
  cur_opt <- balances[_sender];
  nb = match cur_opt with
       | Some x => builtin add x amount
       | None => amount
       end;
  balances[_sender] := nb
end
`

// LoveZilliqa records on-chain dedications.
const LoveZilliqa = `
scilla_version 0

library LoveZilliqa

contract LoveZilliqa
(curator : ByStr20)

field dedications : Map ByStr20 String = Emp ByStr20 String

field count : Uint128 = Uint128 0

transition Dedicate (text : String)
  already <- exists dedications[_sender];
  match already with
  | True =>
    dedications[_sender] := text
  | False =>
    dedications[_sender] := text;
    c <- count;
    one = Uint128 1;
    nc = builtin add c one;
    count := nc
  end;
  e = {_eventname : "Dedicated"; author : _sender};
  event e
end
`

// Blackjack is a commit-reveal betting game (simplified).
const Blackjack = `
scilla_version 0

library Blackjack

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

let two = Uint128 2

type Bet =
| Bet of Uint128 ByStr32

contract Blackjack
(house : ByStr20)

field bets : Map ByStr20 Bet = Emp ByStr20 Bet

field house_funds : Uint128 = Uint128 0

transition FundHouse ()
  is_house = builtin eq _sender house;
  match is_house with
  | True =>
    accept;
    hf <- house_funds;
    nf = builtin add hf _amount;
    house_funds := nf
  | False =>
    throw
  end
end

transition PlaceBet (commitment : ByStr32)
  open <- exists bets[_sender];
  match open with
  | True =>
    throw
  | False =>
    accept;
    b = Bet _amount commitment;
    bets[_sender] := b;
    e = {_eventname : "BetPlaced"; player : _sender; stake : _amount};
    event e
  end
end

transition Reveal (nonce : ByStr)
  bet_opt <- bets[_sender];
  match bet_opt with
  | Some b =>
    match b with
    | Bet stake commitment =>
      h = builtin sha256hash nonce;
      ok = builtin eq h commitment;
      match ok with
      | True =>
        delete bets[_sender];
        payout = builtin mul stake two;
        m = {_tag : "Winnings"; _recipient : _sender; _amount : payout};
        msgs = one_msg m;
        send msgs;
        e = {_eventname : "PlayerWon"; player : _sender; payout : payout};
        event e
      | False =>
        delete bets[_sender];
        hf <- house_funds;
        nf = builtin add hf stake;
        house_funds := nf;
        e = {_eventname : "HouseWon"; player : _sender};
        event e
      end
    end
  | None =>
    throw
  end
end
`

// MapCornercases stresses nested-map edge paths (matching the corpus
// contract of the same name in Fig. 12).
const MapCornercases = `
scilla_version 0

library MapCornercases

contract MapCornercases
(owner : ByStr20)

field deep : Map ByStr20 (Map String (Map String Uint128)) =
  Emp ByStr20 (Map String (Map String Uint128))

field shallow : Map String Uint128 = Emp String Uint128

transition PutDeep (k1 : ByStr20, k2 : String, k3 : String, v : Uint128)
  deep[k1][k2][k3] := v;
  e = {_eventname : "PutDeep"};
  event e
end

transition GetDeep (k1 : ByStr20, k2 : String, k3 : String)
  v_opt <- deep[k1][k2][k3];
  match v_opt with
  | Some v =>
    e = {_eventname : "GotDeep"; v : v};
    event e
  | None =>
    throw
  end
end

transition DeleteDeep (k1 : ByStr20, k2 : String, k3 : String)
  delete deep[k1][k2][k3]
end

transition CheckExists (k : String)
  present <- exists shallow[k];
  match present with
  | True =>
    delete shallow[k]
  | False =>
    one = Uint128 1;
    shallow[k] := one
  end
end

transition WholeMapOps ()
  m <- shallow;
  n = builtin size m;
  e = {_eventname : "Size"; n : n};
  event e
end
`

func init() {
	register("DBond", DBond, false)
	register("TokenHub", TokenHub, false)
	register("Zeecash", Zeecash, false)
	register("SwapContract", SwapContract, false)
	register("MyRewardsToken", MyRewardsToken, false)
	register("ProxyContract", ProxyContract, false)
	register("ZKToken", ZKToken, false)
	register("LoveZilliqa", LoveZilliqa, false)
	register("Blackjack", Blackjack, false)
	register("MapCornercases", MapCornercases, false)
}
