package contracts

// UDRegistry models the Unstoppable Domains registry, the most popular
// contract on the Zilliqa mainnet (Sec. 5.2.1: it accounts for over
// half of all smart contract executions). Per the paper, the sharded
// transitions are Bestow (granting a new domain) and the record-update
// transitions (Configure*), which together account for ~90% of usage;
// ownership transfers are not sharded.
const UDRegistry = `
scilla_version 0

library UDRegistry

let zero = Uint128 0
let bool_true = True

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract UDRegistry
(registry_owner : ByStr20)

field admins : Map ByStr20 Bool =
  let emp = Emp ByStr20 Bool in
  let t = True in
  builtin put emp registry_owner t

field records : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field resolvers : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field record_data : Map ByStr32 (Map String String) =
  Emp ByStr32 (Map String String)

field approvals : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field operators : Map ByStr20 (Map ByStr20 Bool) =
  Emp ByStr20 (Map ByStr20 Bool)

(* Grant a fresh domain node to an owner (admin only). *)
transition Bestow (node : ByStr32, owner : ByStr20)
  is_admin <- exists admins[_sender];
  match is_admin with
  | True =>
    taken <- exists records[node];
    match taken with
    | True =>
      throw
    | False =>
      records[node] := owner;
      e = {_eventname : "Bestowed"; node : node; owner : owner};
      event e
    end
  | False =>
    throw
  end
end

(* Set one key of a domain's record data. The expected owner is passed
   and validated compare-and-swap style (Sec. 6). *)
transition Configure (node : ByStr32, owner : ByStr20, key : String, val : String)
  owner_opt <- records[node];
  match owner_opt with
  | Some actual_owner =>
    owner_matches = builtin eq actual_owner owner;
    is_owner = builtin eq _sender owner;
    ok = builtin andb owner_matches is_owner;
    match ok with
    | True =>
      record_data[node][key] := val;
      e = {_eventname : "Configured"; node : node; key : key};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Point a domain at a resolver contract. *)
transition ConfigureResolver (node : ByStr32, owner : ByStr20, resolver : ByStr20)
  owner_opt <- records[node];
  match owner_opt with
  | Some actual_owner =>
    owner_matches = builtin eq actual_owner owner;
    is_owner = builtin eq _sender owner;
    ok = builtin andb owner_matches is_owner;
    match ok with
    | True =>
      resolvers[node] := resolver;
      e = {_eventname : "ResolverConfigured"; node : node; resolver : resolver};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Clear one key of a domain's record data. *)
transition Unconfigure (node : ByStr32, owner : ByStr20, key : String)
  owner_opt <- records[node];
  match owner_opt with
  | Some actual_owner =>
    owner_matches = builtin eq actual_owner owner;
    is_owner = builtin eq _sender owner;
    ok = builtin andb owner_matches is_owner;
    match ok with
    | True =>
      delete record_data[node][key];
      e = {_eventname : "Unconfigured"; node : node; key : key};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Transfer domain ownership (not sharded in the paper's selection). *)
transition TransferDomain (node : ByStr32, new_owner : ByStr20)
  owner_opt <- records[node];
  match owner_opt with
  | Some actual_owner =>
    is_owner = builtin eq _sender actual_owner;
    approved_opt <- approvals[node];
    is_approved = match approved_opt with
                  | Some spender => builtin eq spender _sender
                  | None => False
                  end;
    can_do = builtin orb is_owner is_approved;
    match can_do with
    | True =>
      records[node] := new_owner;
      delete approvals[node];
      e = {_eventname : "DomainTransferred"; node : node; owner : new_owner};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Approve a spender for one domain. *)
transition Approve (node : ByStr32, spender : ByStr20)
  owner_opt <- records[node];
  match owner_opt with
  | Some actual_owner =>
    is_owner = builtin eq _sender actual_owner;
    match is_owner with
    | True =>
      approvals[node] := spender;
      e = {_eventname : "Approved"; node : node; spender : spender};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Grant or revoke an operator over all the sender's domains. *)
transition SetOperator (operator : ByStr20, enabled : Bool)
  operators[_sender][operator] := enabled;
  e = {_eventname : "OperatorSet"; owner : _sender; operator : operator};
  event e
end

(* Give up a domain. *)
transition Resign (node : ByStr32)
  owner_opt <- records[node];
  match owner_opt with
  | Some actual_owner =>
    is_owner = builtin eq _sender actual_owner;
    match is_owner with
    | True =>
      delete records[node];
      delete resolvers[node];
      delete approvals[node];
      e = {_eventname : "Resigned"; node : node};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Add an admin (admin only). *)
transition AddAdmin (admin : ByStr20)
  is_admin <- exists admins[_sender];
  match is_admin with
  | True =>
    admins[admin] := bool_true;
    e = {_eventname : "AdminAdded"; admin : admin};
    event e
  | False =>
    throw
  end
end

(* Remove an admin (admin only). *)
transition RemoveAdmin (admin : ByStr20)
  is_admin <- exists admins[_sender];
  match is_admin with
  | True =>
    delete admins[admin];
    e = {_eventname : "AdminRemoved"; admin : admin};
    event e
  | False =>
    throw
  end
end

(* Report a domain's owner to the requester. *)
transition QueryOwner (node : ByStr32)
  owner_opt <- records[node];
  match owner_opt with
  | Some actual_owner =>
    msg = {_tag : "OwnerCallback"; _recipient : _sender; _amount : zero; node : node; owner : actual_owner};
    msgs = one_msg msg;
    send msgs
  | None =>
    throw
  end
end
`

func init() { register("UDRegistry", UDRegistry, true) }
