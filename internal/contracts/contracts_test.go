package contracts_test

import (
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
)

// TestCorpusPipeline runs every corpus contract through the full
// deployment pipeline: parse, typecheck, analyse every transition.
func TestCorpusPipeline(t *testing.T) {
	for _, e := range contracts.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			m, err := parser.ParseModule(e.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			chk, err := typecheck.Check(m)
			if err != nil {
				t.Fatalf("typecheck: %v", err)
			}
			a, err := analysis.New(chk)
			if err != nil {
				t.Fatalf("analysis: %v", err)
			}
			sums, err := a.AnalyzeAll()
			if err != nil {
				t.Fatalf("AnalyzeAll: %v", err)
			}
			if len(sums) != len(m.Contract.Transitions) {
				t.Errorf("got %d summaries for %d transitions", len(sums), len(m.Contract.Transitions))
			}
		})
	}
}

// TestEvaluationContractsPresent checks that the five Sec. 5.2
// contracts exist with the paper's transition counts.
func TestEvaluationContractsPresent(t *testing.T) {
	want := map[string]int{
		"FungibleToken":    10,
		"Crowdfunding":     3,
		"NonfungibleToken": 5,
		"ProofIPFS":        10,
		"UDRegistry":       11,
	}
	for name, transitions := range want {
		e, err := contracts.Get(name)
		if err != nil {
			t.Errorf("missing evaluation contract %s", name)
			continue
		}
		if !e.Evaluation {
			t.Errorf("%s not marked as an evaluation contract", name)
		}
		m, err := parser.ParseModule(e.Source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := len(m.Contract.Transitions); got != transitions {
			t.Errorf("%s has %d transitions, want %d (paper Sec. 5.2)", name, got, transitions)
		}
	}
}

// TestLinesOfCode sanity-checks the LOC counter.
func TestLinesOfCode(t *testing.T) {
	if n := contracts.LinesOfCode("a\n\n(* c *)\nb\n"); n != 2 {
		t.Errorf("LinesOfCode = %d, want 2", n)
	}
}

// TestParseAll exercises the bulk parsing helper.
func TestParseAll(t *testing.T) {
	all, err := contracts.ParseAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(contracts.All()) {
		t.Errorf("ParseAll returned %d modules, want %d", len(all), len(contracts.All()))
	}
	var _ *typecheck.Checked = all["FungibleToken"]
}
