package contracts

// ProofIPFS is the notarisation contract from the paper's evaluation
// (Sec. 5.2): users register ownership of IPFS content hashes. The
// "register" transition touches both the hash-keyed inventory and the
// user-keyed item list, so (per Sec. 5.2.1) its two ownership
// constraints typically resolve to different shards and many
// registrations fall back to the DS committee.
const ProofIPFS = `
scilla_version 0

library ProofIPFS

let zero = Uint128 0
let one = Uint128 1
let bool_true = True

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract ProofIPFS
(initial_admin : ByStr20)

field admin : ByStr20 = initial_admin

field registration_open : Bool = True

field price : Uint128 = Uint128 0

field collected : Uint128 = Uint128 0

field ipfsInventory : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field registered_items : Map ByStr20 (Map ByStr32 Bool) =
  Emp ByStr20 (Map ByStr32 Bool)

field item_count : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field attestations : Map ByStr32 Uint128 = Emp ByStr32 Uint128

(* Notarise a content hash for the sender. *)
transition RegisterOwnership (item_hash : ByStr32)
  open <- registration_open;
  match open with
  | True =>
    p <- price;
    enough = builtin le p _amount;
    match enough with
    | True =>
      taken <- exists ipfsInventory[item_hash];
      match taken with
      | True =>
        throw
      | False =>
        accept;
        ipfsInventory[item_hash] := _sender;
        registered_items[_sender][item_hash] := bool_true;
        cnt_opt <- item_count[_sender];
        new_cnt = match cnt_opt with
                  | Some c => builtin add c one
                  | None => one
                  end;
        item_count[_sender] := new_cnt;
        col <- collected;
        new_col = builtin add col _amount;
        collected := new_col;
        e = {_eventname : "RegisterSuccess"; registrant : _sender; hash : item_hash};
        event e
      end
    | False =>
      throw
    end
  | False =>
    throw
  end
end

(* Hand an owned hash to another user. *)
transition TransferOwnership (item_hash : ByStr32, new_owner : ByStr20)
  owner_opt <- ipfsInventory[item_hash];
  match owner_opt with
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | True =>
      ipfsInventory[item_hash] := new_owner;
      delete registered_items[_sender][item_hash];
      registered_items[new_owner][item_hash] := bool_true;
      e = {_eventname : "TransferOwnershipSuccess"; hash : item_hash; recipient : new_owner};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Remove a notarised hash (the transition the paper does not shard). *)
transition RemoveOwnership (item_hash : ByStr32)
  owner_opt <- ipfsInventory[item_hash];
  match owner_opt with
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | True =>
      delete ipfsInventory[item_hash];
      delete registered_items[_sender][item_hash];
      cnt_opt <- item_count[_sender];
      new_cnt = match cnt_opt with
                | Some c => builtin sub c one
                | None => zero
                end;
      item_count[_sender] := new_cnt;
      e = {_eventname : "RemoveSuccess"; hash : item_hash};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Publicly attest that a hash is valid (commutative counter). *)
transition Attest (item_hash : ByStr32)
  att_opt <- attestations[item_hash];
  new_att = match att_opt with
            | Some a => builtin add a one
            | None => one
            end;
  attestations[item_hash] := new_att;
  e = {_eventname : "Attested"; hash : item_hash; by : _sender};
  event e
end

(* Report who owns a hash. *)
transition VerifyOwnership (item_hash : ByStr32)
  owner_opt <- ipfsInventory[item_hash];
  match owner_opt with
  | Some owner =>
    msg = {_tag : "VerifyCallback"; _recipient : _sender; _amount : zero; hash : item_hash; owner : owner};
    msgs = one_msg msg;
    send msgs
  | None =>
    msg = {_tag : "VerifyCallback"; _recipient : _sender; _amount : zero; hash : item_hash; owner : initial_admin};
    msgs = one_msg msg;
    send msgs
  end
end

(* Report how many items a user registered. *)
transition CountItems (user : ByStr20)
  cnt_opt <- item_count[user];
  cnt = match cnt_opt with
        | Some c => c
        | None => zero
        end;
  msg = {_tag : "CountCallback"; _recipient : _sender; _amount : zero; user : user; count : cnt};
  msgs = one_msg msg;
  send msgs
end

(* Set the registration price (admin only). *)
transition SetPrice (new_price : Uint128)
  a <- admin;
  is_admin = builtin eq _sender a;
  match is_admin with
  | True =>
    price := new_price;
    e = {_eventname : "PriceSet"; price : new_price};
    event e
  | False =>
    throw
  end
end

(* Open or close registration (admin only). *)
transition SetRegistrationOpen (open : Bool)
  a <- admin;
  is_admin = builtin eq _sender a;
  match is_admin with
  | True =>
    registration_open := open;
    e = {_eventname : "RegistrationToggled"};
    event e
  | False =>
    throw
  end
end

(* Hand the admin role to another account (admin only). *)
transition ChangeAdmin (new_admin : ByStr20)
  a <- admin;
  is_admin = builtin eq _sender a;
  match is_admin with
  | True =>
    admin := new_admin;
    e = {_eventname : "AdminChanged"; admin : new_admin};
    event e
  | False =>
    throw
  end
end

(* Withdraw the collected fees (admin only). *)
transition WithdrawFunds ()
  a <- admin;
  is_admin = builtin eq _sender a;
  match is_admin with
  | True =>
    col <- collected;
    collected := zero;
    msg = {_tag : "Withdrawal"; _recipient : _sender; _amount : col};
    msgs = one_msg msg;
    send msgs;
    e = {_eventname : "Withdrawn"; amount : col};
    event e
  | False =>
    throw
  end
end
`

func init() { register("ProofIPFS", ProofIPFS, true) }
