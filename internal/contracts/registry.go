// Package contracts holds the Scilla contract corpus used throughout
// the evaluation: the five contracts from the paper's Sec. 5.2 table,
// plus a population of smaller contracts mirroring the shape of the
// Zilliqa mainnet corpus analysed in Sec. 5.1 (Fig. 12 and Fig. 13).
package contracts

import (
	"fmt"
	"sort"
	"strings"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
)

// Entry is one corpus contract: its name and source text.
type Entry struct {
	Name   string
	Source string
	// Evaluation marks the five contracts from the paper's Sec. 5.2
	// throughput evaluation.
	Evaluation bool
}

var registry []Entry

func register(name, source string, evaluation bool) {
	registry = append(registry, Entry{Name: name, Source: source, Evaluation: evaluation})
}

// All returns the corpus sorted by name.
func All() []Entry {
	out := append([]Entry{}, registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named contract's source.
func Get(name string) (Entry, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("unknown corpus contract %q", name)
}

// MustParse parses and typechecks a corpus contract, panicking on
// failure (the corpus is fixed and covered by tests).
func MustParse(name string) *typecheck.Checked {
	e, err := Get(name)
	if err != nil {
		panic(err)
	}
	m, err := parser.ParseModule(e.Source)
	if err != nil {
		panic(fmt.Sprintf("corpus contract %s: parse: %v", name, err))
	}
	chk, err := typecheck.Check(m)
	if err != nil {
		panic(fmt.Sprintf("corpus contract %s: typecheck: %v", name, err))
	}
	return chk
}

// LinesOfCode counts non-blank, non-comment source lines, mirroring the
// LOC column of the paper's Sec. 5.2 table.
func LinesOfCode(source string) int {
	n := 0
	for _, line := range strings.Split(source, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "(*") {
			continue
		}
		n++
	}
	return n
}

// Names returns all corpus contract names, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}

// ParseAll parses and typechecks every corpus contract, returning the
// checked modules keyed by name.
func ParseAll() (map[string]*typecheck.Checked, error) {
	out := make(map[string]*typecheck.Checked)
	for _, e := range All() {
		m, err := parser.ParseModule(e.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: parse: %w", e.Name, err)
		}
		chk, err := typecheck.Check(m)
		if err != nil {
			return nil, fmt.Errorf("%s: typecheck: %w", e.Name, err)
		}
		out[e.Name] = chk
	}
	return out, nil
}

// Module parses a corpus contract without typechecking.
func Module(name string) (*ast.Module, error) {
	e, err := Get(name)
	if err != nil {
		return nil, err
	}
	return parser.ParseModule(e.Source)
}
