package contracts

// This file holds the first batch of small corpus contracts mirroring
// the population of the paper's Fig. 12 study (49 unique mainnet and
// testnet contracts, most with 1-6 transitions).

// HelloWorld is the canonical two-transition starter contract.
const HelloWorld = `
scilla_version 0

library HelloWorld

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract HelloWorld
(owner : ByStr20)

field welcome_msg : String = ""

transition SetHello (msg : String)
  is_owner = builtin eq _sender owner;
  match is_owner with
  | True =>
    welcome_msg := msg;
    e = {_eventname : "SetHelloSuccess"; msg : msg};
    event e
  | False =>
    throw
  end
end

transition GetHello ()
  wm <- welcome_msg;
  zero = Uint128 0;
  m = {_tag : "HelloCallback"; _recipient : _sender; _amount : zero; msg : wm};
  msgs = one_msg m;
  send msgs
end
`

// FirstContract is a minimal single-transition contract.
const FirstContract = `
scilla_version 0

contract FirstContract
(owner : ByStr20)

field counter : Uint128 = Uint128 0

transition Increment ()
  c <- counter;
  one = Uint128 1;
  new_c = builtin add c one;
  counter := new_c;
  e = {_eventname : "Incremented"; value : new_c};
  event e
end
`

// TestSender exercises message construction and sends.
const TestSender = `
scilla_version 0

library TestSender

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

let two_msgs =
  fun (m1 : Message) =>
    fun (m2 : Message) =>
      let nil = Nil {Message} in
      let l1 = Cons {Message} m2 nil in
      Cons {Message} m1 l1

contract TestSender
(owner : ByStr20)

field last_recipient : ByStr20 = owner

transition SendOne (to : ByStr20)
  last_recipient := to;
  zero = Uint128 0;
  m = {_tag : "Ping"; _recipient : to; _amount : zero};
  msgs = one_msg m;
  send msgs
end

transition SendTwo (a : ByStr20, b : ByStr20)
  zero = Uint128 0;
  m1 = {_tag : "Ping"; _recipient : a; _amount : zero};
  m2 = {_tag : "Ping"; _recipient : b; _amount : zero};
  msgs = two_msgs m1 m2;
  send msgs
end
`

// Auction is a classic highest-bid auction over scalar fields: its
// transitions hog the whole contract state, so nothing shards.
const Auction = `
scilla_version 0

library Auction

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract Auction
(beneficiary : ByStr20,
 auction_end : BNum)

field highest_bid : Uint128 = Uint128 0

field highest_bidder : ByStr20 = beneficiary

field ended : Bool = False

field pending_returns : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition Bid ()
  blk <- &BLOCKNUMBER;
  in_time = builtin blt blk auction_end;
  match in_time with
  | True =>
    hb <- highest_bid;
    higher = builtin lt hb _amount;
    match higher with
    | True =>
      accept;
      prev_bidder <- highest_bidder;
      prev_return_opt <- pending_returns[prev_bidder];
      new_return = match prev_return_opt with
                   | Some pr => builtin add pr hb
                   | None => hb
                   end;
      pending_returns[prev_bidder] := new_return;
      highest_bid := _amount;
      highest_bidder := _sender;
      e = {_eventname : "BidAccepted"; bidder : _sender; amount : _amount};
      event e
    | False =>
      throw
    end
  | False =>
    throw
  end
end

transition Withdraw ()
  ret_opt <- pending_returns[_sender];
  match ret_opt with
  | Some ret =>
    delete pending_returns[_sender];
    m = {_tag : "Refund"; _recipient : _sender; _amount : ret};
    msgs = one_msg m;
    send msgs
  | None =>
    throw
  end
end

transition AuctionEnd ()
  blk <- &BLOCKNUMBER;
  past = builtin blt auction_end blk;
  match past with
  | True =>
    done <- ended;
    match done with
    | True =>
      throw
    | False =>
      t = True;
      ended := t;
      hb <- highest_bid;
      m = {_tag : "AuctionProceeds"; _recipient : beneficiary; _amount : hb};
      msgs = one_msg m;
      send msgs;
      e = {_eventname : "AuctionEnded"; amount : hb};
      event e
    end
  | False =>
    throw
  end
end
`

// Voting counts votes commutatively per option, with a one-vote-per-
// account guard.
const Voting = `
scilla_version 0

library Voting

let one = Uint128 1
let bool_true = True

contract Voting
(organiser : ByStr20)

field options : Map String Bool = Emp String Bool

field votes : Map String Uint128 = Emp String Uint128

field voted : Map ByStr20 Bool = Emp ByStr20 Bool

field open : Bool = True

transition AddOption (option : String)
  is_org = builtin eq _sender organiser;
  match is_org with
  | True =>
    options[option] := bool_true;
    e = {_eventname : "OptionAdded"; option : option};
    event e
  | False =>
    throw
  end
end

transition Vote (option : String)
  is_open <- open;
  match is_open with
  | True =>
    valid <- exists options[option];
    match valid with
    | True =>
      already <- exists voted[_sender];
      match already with
      | True =>
        throw
      | False =>
        voted[_sender] := bool_true;
        cnt_opt <- votes[option];
        new_cnt = match cnt_opt with
                  | Some c => builtin add c one
                  | None => one
                  end;
        votes[option] := new_cnt;
        e = {_eventname : "Voted"; option : option};
        event e
      end
    | False =>
      throw
    end
  | False =>
    throw
  end
end

transition CloseElection ()
  is_org = builtin eq _sender organiser;
  match is_org with
  | True =>
    f = False;
    open := f;
    e = {_eventname : "ElectionClosed"};
    event e
  | False =>
    throw
  end
end
`

// Oracle stores externally supplied data under string keys.
const Oracle = `
scilla_version 0

library Oracle

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract Oracle
(initial_oracle : ByStr20)

field oracle : ByStr20 = initial_oracle

field data : Map String String = Emp String String

field updated_at : Map String BNum = Emp String BNum

transition SetData (key : String, val : String)
  o <- oracle;
  is_oracle = builtin eq _sender o;
  match is_oracle with
  | True =>
    data[key] := val;
    blk <- &BLOCKNUMBER;
    updated_at[key] := blk;
    e = {_eventname : "DataSet"; key : key};
    event e
  | False =>
    throw
  end
end

transition RequestData (key : String)
  val_opt <- data[key];
  match val_opt with
  | Some val =>
    zero = Uint128 0;
    m = {_tag : "OracleCallback"; _recipient : _sender; _amount : zero; key : key; val : val};
    msgs = one_msg m;
    send msgs
  | None =>
    throw
  end
end

transition ChangeOracle (new_oracle : ByStr20)
  o <- oracle;
  is_oracle = builtin eq _sender o;
  match is_oracle with
  | True =>
    oracle := new_oracle;
    e = {_eventname : "OracleChanged"; oracle : new_oracle};
    event e
  | False =>
    throw
  end
end
`

// HTLC is a hash time-locked contract registry keyed by hash locks.
const HTLC = `
scilla_version 0

library HTLC

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

type Lock =
| Lock of ByStr20 ByStr20 Uint128 BNum

contract HTLC
(registry_owner : ByStr20)

field locks : Map ByStr32 Lock = Emp ByStr32 Lock

transition NewLock (hash_lock : ByStr32, recipient : ByStr20, expiry : BNum)
  taken <- exists locks[hash_lock];
  match taken with
  | True =>
    throw
  | False =>
    accept;
    l = Lock _sender recipient _amount expiry;
    locks[hash_lock] := l;
    e = {_eventname : "Locked"; hash : hash_lock; amount : _amount};
    event e
  end
end

transition Claim (hash_lock : ByStr32, preimage : ByStr)
  lock_opt <- locks[hash_lock];
  match lock_opt with
  | Some l =>
    match l with
    | Lock locker recipient amount expiry =>
      h = builtin sha256hash preimage;
      ok = builtin eq h hash_lock;
      match ok with
      | True =>
        delete locks[hash_lock];
        m = {_tag : "Claimed"; _recipient : recipient; _amount : amount};
        msgs = one_msg m;
        send msgs;
        e = {_eventname : "ClaimSuccess"; hash : hash_lock};
        event e
      | False =>
        throw
      end
    end
  | None =>
    throw
  end
end

transition Refund (hash_lock : ByStr32)
  lock_opt <- locks[hash_lock];
  match lock_opt with
  | Some l =>
    match l with
    | Lock locker recipient amount expiry =>
      blk <- &BLOCKNUMBER;
      expired = builtin blt expiry blk;
      match expired with
      | True =>
        delete locks[hash_lock];
        m = {_tag : "Refunded"; _recipient : locker; _amount : amount};
        msgs = one_msg m;
        send msgs
      | False =>
        throw
      end
    end
  | None =>
    throw
  end
end
`

// Multisig is an m-of-n wallet using a custom ADT for pending
// transactions.
const Multisig = `
scilla_version 0

library Multisig

let one = Uint32 1
let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

type Pending =
| Pending of ByStr20 Uint128

contract Multisig
(owner_a : ByStr20,
 owner_b : ByStr20,
 owner_c : ByStr20,
 required : Uint32)

field pending : Map Uint32 Pending = Emp Uint32 Pending

field signatures : Map Uint32 (Map ByStr20 Bool) =
  Emp Uint32 (Map ByStr20 Bool)

field sig_counts : Map Uint32 Uint32 = Emp Uint32 Uint32

field next_id : Uint32 = Uint32 0

transition Deposit ()
  accept;
  e = {_eventname : "Deposited"; amount : _amount};
  event e
end

transition Submit (recipient : ByStr20, amount : Uint128)
  is_a = builtin eq _sender owner_a;
  is_b = builtin eq _sender owner_b;
  is_c = builtin eq _sender owner_c;
  ab = builtin orb is_a is_b;
  is_owner = builtin orb ab is_c;
  match is_owner with
  | True =>
    id <- next_id;
    new_id = builtin add id one;
    next_id := new_id;
    p = Pending recipient amount;
    pending[id] := p;
    e = {_eventname : "Submitted"; id : id};
    event e
  | False =>
    throw
  end
end

transition Sign (id : Uint32)
  p_opt <- pending[id];
  match p_opt with
  | Some p =>
    already <- exists signatures[id][_sender];
    match already with
    | True =>
      throw
    | False =>
      t = True;
      signatures[id][_sender] := t;
      cnt_opt <- sig_counts[id];
      new_cnt = match cnt_opt with
                | Some c => builtin add c one
                | None => one
                end;
      sig_counts[id] := new_cnt;
      e = {_eventname : "Signed"; id : id};
      event e
    end
  | None =>
    throw
  end
end

transition Execute (id : Uint32)
  p_opt <- pending[id];
  match p_opt with
  | Some p =>
    cnt_opt <- sig_counts[id];
    cnt = match cnt_opt with
          | Some c => c
          | None => Uint32 0
          end;
    enough = builtin le required cnt;
    match enough with
    | True =>
      match p with
      | Pending recipient amount =>
        delete pending[id];
        delete sig_counts[id];
        m = {_tag : "Payout"; _recipient : recipient; _amount : amount};
        msgs = one_msg m;
        send msgs;
        e = {_eventname : "Executed"; id : id};
        event e
      end
    | False =>
      throw
    end
  | None =>
    throw
  end
end

transition Revoke (id : Uint32)
  signed <- exists signatures[id][_sender];
  match signed with
  | True =>
    delete signatures[id][_sender];
    cnt_opt <- sig_counts[id];
    match cnt_opt with
    | Some c =>
      new_cnt = builtin sub c one;
      sig_counts[id] := new_cnt
    | None =>
      throw
    end;
    e = {_eventname : "Revoked"; id : id};
    event e
  | False =>
    throw
  end
end
`

func init() {
	register("HelloWorld", HelloWorld, false)
	register("FirstContract", FirstContract, false)
	register("TestSender", TestSender, false)
	register("Auction", Auction, false)
	register("Voting", Voting, false)
	register("Oracle", Oracle, false)
	register("HTLC", HTLC, false)
	register("Multisig", Multisig, false)
}
