package contracts_test

import (
	"math/big"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// synthValue produces a dummy value of the given type.
func synthValue(t ast.Type) value.Value {
	switch tt := t.(type) {
	case ast.PrimType:
		switch {
		case tt.IsInt():
			return value.Int{Ty: tt, V: big.NewInt(1)}
		case tt.Kind == ast.StringKind:
			return value.Str{S: "x"}
		case tt.Kind == ast.ByStr20:
			return value.ByStr{Ty: tt, B: make([]byte, 20)}
		case tt.Kind == ast.ByStr32:
			return value.ByStr{Ty: tt, B: make([]byte, 32)}
		case tt.Kind == ast.ByStr:
			return value.ByStr{Ty: tt, B: []byte{1, 2}}
		case tt.Kind == ast.BNum:
			return value.BNum{V: big.NewInt(1)}
		}
	case ast.MapType:
		return value.NewMap(tt.Key, tt.Val)
	case ast.ADTType:
		switch tt.Name {
		case "Bool":
			return value.True()
		case "Option":
			return value.None(tt.Args[0])
		case "List":
			return value.NilList(tt.Args[0])
		case "Pair":
			return value.PairV(tt.Args[0], tt.Args[1],
				synthValue(tt.Args[0]), synthValue(tt.Args[1]))
		}
	}
	return value.Unit{}
}

// TestInvokeEveryTransition deploys every corpus contract with
// synthesized parameters and invokes every transition with synthesized
// arguments. Contract-level throws are fine; infrastructure errors
// (unknown identifiers, unhandled statements, type confusion inside the
// interpreter) are not.
func TestInvokeEveryTransition(t *testing.T) {
	for _, entry := range contracts.All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			chk := contracts.MustParse(entry.Name)
			params := make(map[string]value.Value)
			for _, p := range chk.Module.Contract.Params {
				params[p.Name] = synthValue(p.Type)
			}
			in, err := eval.New(chk, params)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			st := eval.NewMemState(chk.FieldTypes)
			if err := st.InitFrom(in); err != nil {
				t.Fatalf("InitFrom: %v", err)
			}
			sender := value.ByStr{Ty: ast.TyByStr20, B: make([]byte, 20)}
			for _, tr := range chk.Module.Contract.Transitions {
				args := make(map[string]value.Value, len(tr.Params))
				for _, p := range tr.Params {
					args[p.Name] = synthValue(p.Type)
				}
				ctx := &eval.Context{
					Sender:          sender,
					Origin:          sender,
					Amount:          value.Uint128(5),
					BlockNumber:     big.NewInt(10),
					Timestamp:       1,
					State:           st,
					ContractBalance: big.NewInt(100),
					GasLimit:        1_000_000,
				}
				_, err := in.Run(ctx, tr.Name, args)
				if err == nil {
					continue
				}
				switch err.(type) {
				case *eval.ThrowError, *eval.OutOfGasError:
					// Contract-level rejection: fine.
				default:
					t.Errorf("transition %s: infrastructure error: %v", tr.Name, err)
				}
			}
		})
	}
}
