package contracts

// Third batch of small corpus contracts, including ones exercising the
// polymorphic list natives and nested control flow.

// BunkeringLog is an append-only audit log of fuel deliveries.
const BunkeringLog = `
scilla_version 0

library BunkeringLog

let one = Uint32 1

type Entry =
| Entry of String Uint128 BNum

contract BunkeringLog
(operator : ByStr20)

field log_entries : Map Uint32 Entry = Emp Uint32 Entry

field entry_count : Uint32 = Uint32 0

field auditors : Map ByStr20 Bool = Emp ByStr20 Bool

transition LogDelivery (vessel : String, quantity : Uint128)
  is_op = builtin eq _sender operator;
  match is_op with
  | True =>
    n <- entry_count;
    blk <- &BLOCKNUMBER;
    entry = Entry vessel quantity blk;
    log_entries[n] := entry;
    new_n = builtin add n one;
    entry_count := new_n;
    e = {_eventname : "DeliveryLogged"; id : n};
    event e
  | False =>
    throw
  end
end

transition AddAuditor (auditor : ByStr20)
  is_op = builtin eq _sender operator;
  match is_op with
  | True =>
    t = True;
    auditors[auditor] := t;
    e = {_eventname : "AuditorAdded"; auditor : auditor};
    event e
  | False =>
    throw
  end
end

transition Attest (entry_id : Uint32)
  is_auditor <- exists auditors[_sender];
  match is_auditor with
  | True =>
    present <- exists log_entries[entry_id];
    match present with
    | True =>
      e = {_eventname : "Attested"; id : entry_id};
      event e
    | False =>
      throw
    end
  | False =>
    throw
  end
end
`

// RoadDamage crowdsources road-damage reports with validations.
const RoadDamage = `
scilla_version 0

library RoadDamage

let one = Uint128 1

contract RoadDamage
(authority : ByStr20)

field reports : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field confirmations : Map ByStr32 Uint128 = Emp ByStr32 Uint128

field resolved : Map ByStr32 Bool = Emp ByStr32 Bool

transition Report (location_hash : ByStr32)
  taken <- exists reports[location_hash];
  match taken with
  | True =>
    throw
  | False =>
    reports[location_hash] := _sender;
    e = {_eventname : "DamageReported"; location : location_hash};
    event e
  end
end

transition Confirm (location_hash : ByStr32)
  present <- exists reports[location_hash];
  match present with
  | True =>
    cnt_opt <- confirmations[location_hash];
    new_cnt = match cnt_opt with
              | Some c => builtin add c one
              | None => one
              end;
    confirmations[location_hash] := new_cnt;
    e = {_eventname : "DamageConfirmed"; location : location_hash};
    event e
  | False =>
    throw
  end
end

transition Resolve (location_hash : ByStr32)
  is_authority = builtin eq _sender authority;
  match is_authority with
  | True =>
    t = True;
    resolved[location_hash] := t;
    e = {_eventname : "DamageResolved"; location : location_hash};
    event e
  | False =>
    throw
  end
end
`

// GoFundMi is a lightweight per-campaign crowdfunding hub.
const GoFundMi = `
scilla_version 0

library GoFundMi

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract GoFundMi
(platform : ByStr20)

field campaigns : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field raised : Map ByStr32 Uint128 = Emp ByStr32 Uint128

transition CreateCampaign (campaign_id : ByStr32)
  taken <- exists campaigns[campaign_id];
  match taken with
  | True =>
    throw
  | False =>
    campaigns[campaign_id] := _sender;
    e = {_eventname : "CampaignCreated"; id : campaign_id};
    event e
  end
end

transition Fund (campaign_id : ByStr32)
  present <- exists campaigns[campaign_id];
  match present with
  | True =>
    accept;
    cur_opt <- raised[campaign_id];
    new_total = match cur_opt with
                | Some r => builtin add r _amount
                | None => _amount
                end;
    raised[campaign_id] := new_total;
    e = {_eventname : "Funded"; id : campaign_id; amount : _amount};
    event e
  | False =>
    throw
  end
end

transition Collect (campaign_id : ByStr32)
  owner_opt <- campaigns[campaign_id];
  match owner_opt with
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | True =>
      total_opt <- raised[campaign_id];
      match total_opt with
      | Some total =>
        delete raised[campaign_id];
        m = {_tag : "CampaignFunds"; _recipient : owner; _amount : total};
        msgs = one_msg m;
        send msgs;
        e = {_eventname : "Collected"; id : campaign_id; amount : total};
        event e
      | None =>
        throw
      end
    | False =>
      throw
    end
  | None =>
    throw
  end
end
`

// Airdrop exercises the polymorphic list natives: it pays a fixed
// reward to every address in a submitted batch.
const Airdrop = `
scilla_version 0

library Airdrop

let reward = Uint128 5

let mk_payout =
  fun (recipient : ByStr20) =>
    {_tag : "Airdrop"; _recipient : recipient; _amount : reward}

contract Airdrop
(admin : ByStr20)

field rounds : Uint32 = Uint32 0

transition Fund ()
  is_admin = builtin eq _sender admin;
  match is_admin with
  | True =>
    accept
  | False =>
    throw
  end
end

transition Drop (recipients : List ByStr20)
  is_admin = builtin eq _sender admin;
  match is_admin with
  | True =>
    mapper = @list_map ByStr20 Message;
    msgs = mapper mk_payout recipients;
    send msgs;
    r <- rounds;
    one = Uint32 1;
    new_r = builtin add r one;
    rounds := new_r;
    counter = @list_length ByStr20;
    n = counter recipients;
    e = {_eventname : "Dropped"; count : n};
    event e
  | False =>
    throw
  end
end
`

// Cryptoman is a collectible game with breeding-style derivation.
const Cryptoman = `
scilla_version 0

library Cryptoman

let one = Uint128 1

contract Cryptoman
(game_master : ByStr20,
 spawn_price : Uint128)

field creatures : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field power : Map ByStr32 Uint128 = Emp ByStr32 Uint128

field creature_count : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition Spawn (dna : ByStr32)
  enough = builtin le spawn_price _amount;
  match enough with
  | True =>
    taken <- exists creatures[dna];
    match taken with
    | True =>
      throw
    | False =>
      accept;
      creatures[dna] := _sender;
      power[dna] := one;
      cnt_opt <- creature_count[_sender];
      new_cnt = match cnt_opt with
                | Some c => builtin add c one
                | None => one
                end;
      creature_count[_sender] := new_cnt;
      e = {_eventname : "Spawned"; dna : dna};
      event e
    end
  | False =>
    throw
  end
end

transition Train (dna : ByStr32)
  owner_opt <- creatures[dna];
  match owner_opt with
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | True =>
      p_opt <- power[dna];
      new_p = match p_opt with
              | Some p => builtin add p one
              | None => one
              end;
      power[dna] := new_p;
      e = {_eventname : "Trained"; dna : dna};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

transition Gift (dna : ByStr32, to : ByStr20)
  owner_opt <- creatures[dna];
  match owner_opt with
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | True =>
      creatures[dna] := to;
      e = {_eventname : "Gifted"; dna : dna; recipient : to};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end
`

// XSGDLite is a pausable stablecoin with admin-gated mint/burn.
const XSGDLite = `
scilla_version 0

library XSGDLite

let zero = Uint128 0

contract XSGDLite
(admin : ByStr20)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field paused : Bool = False

field total : Uint128 = Uint128 0

transition Pause ()
  is_admin = builtin eq _sender admin;
  match is_admin with
  | True =>
    t = True;
    paused := t
  | False =>
    throw
  end
end

transition Unpause ()
  is_admin = builtin eq _sender admin;
  match is_admin with
  | True =>
    f = False;
    paused := f
  | False =>
    throw
  end
end

transition MintTo (recipient : ByStr20, amount : Uint128)
  is_admin = builtin eq _sender admin;
  match is_admin with
  | True =>
    p <- paused;
    match p with
    | True =>
      throw
    | False =>
      cur_opt <- balances[recipient];
      new_bal = match cur_opt with
                | Some b => builtin add b amount
                | None => amount
                end;
      balances[recipient] := new_bal;
      t <- total;
      new_t = builtin add t amount;
      total := new_t;
      e = {_eventname : "Minted"; recipient : recipient; amount : amount};
      event e
    end
  | False =>
    throw
  end
end

transition TransferTokens (to : ByStr20, amount : Uint128)
  p <- paused;
  match p with
  | True =>
    throw
  | False =>
    bal_opt <- balances[_sender];
    match bal_opt with
    | Some bal =>
      can = builtin le amount bal;
      match can with
      | True =>
        new_from = builtin sub bal amount;
        balances[_sender] := new_from;
        to_opt <- balances[to];
        new_to = match to_opt with
                 | Some b => builtin add b amount
                 | None => amount
                 end;
        balances[to] := new_to;
        e = {_eventname : "Transferred"; recipient : to; amount : amount};
        event e
      | False =>
        throw
      end
    | None =>
      throw
    end
  end
end
`

// Soundario pays royalties to track owners on each play.
const Soundario = `
scilla_version 0

library Soundario

let one = Uint128 1

contract Soundario
(platform : ByStr20,
 royalty : Uint128)

field tracks : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field plays : Map ByStr32 Uint128 = Emp ByStr32 Uint128

field royalties : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition PublishTrack (track_id : ByStr32)
  taken <- exists tracks[track_id];
  match taken with
  | True =>
    throw
  | False =>
    tracks[track_id] := _sender;
    e = {_eventname : "TrackPublished"; track : track_id};
    event e
  end
end

transition Play (track_id : ByStr32, artist : ByStr20)
  owner_opt <- tracks[track_id];
  match owner_opt with
  | Some owner =>
    matches = builtin eq owner artist;
    match matches with
    | True =>
      cnt_opt <- plays[track_id];
      new_cnt = match cnt_opt with
                | Some c => builtin add c one
                | None => one
                end;
      plays[track_id] := new_cnt;
      roy_opt <- royalties[artist];
      new_roy = match roy_opt with
                | Some r => builtin add r royalty
                | None => royalty
                end;
      royalties[artist] := new_roy;
      e = {_eventname : "Played"; track : track_id};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end
`

func init() {
	register("BunkeringLog", BunkeringLog, false)
	register("RoadDamage", RoadDamage, false)
	register("GoFundMi", GoFundMi, false)
	register("Airdrop", Airdrop, false)
	register("Cryptoman", Cryptoman, false)
	register("XSGDLite", XSGDLite, false)
	register("Soundario", Soundario, false)
}
