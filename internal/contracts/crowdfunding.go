package contracts

// Crowdfunding is the classic Scilla crowdfunding campaign from the
// paper's evaluation (Sec. 5.2): backers donate before a deadline; the
// owner collects if the goal was met, otherwise backers claim refunds.
// The only possible sharding choice (per the paper) is to shard Donate
// and ClaimBack.
const Crowdfunding = `
scilla_version 0

library Crowdfunding

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

let zero = Uint128 0

contract Crowdfunding
(owner : ByStr20,
 max_block : BNum,
 goal : Uint128)

field backers : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field funded : Bool = False

(* Donate native tokens to the campaign before the deadline. A backer
   may donate only once. *)
transition Donate ()
  blk <- &BLOCKNUMBER;
  in_time = builtin blt blk max_block;
  match in_time with
  | True =>
    already <- exists backers[_sender];
    match already with
    | True =>
      throw
    | False =>
      accept;
      backers[_sender] := _amount;
      e = {_eventname : "DonationSuccess"; donor : _sender; amount : _amount};
      event e
    end
  | False =>
    throw
  end
end

(* The owner collects the funds once the goal is reached. *)
transition GetFunds ()
  is_owner = builtin eq _sender owner;
  match is_owner with
  | True =>
    blk <- &BLOCKNUMBER;
    past_deadline = builtin blt max_block blk;
    match past_deadline with
    | True =>
      bal <- _balance;
      goal_met = builtin le goal bal;
      match goal_met with
      | True =>
        t = True;
        funded := t;
        msg = {_tag : "Funds"; _recipient : owner; _amount : bal};
        msgs = one_msg msg;
        send msgs;
        e = {_eventname : "GetFundsSuccess"; collected : bal};
        event e
      | False =>
        throw
      end
    | False =>
      throw
    end
  | False =>
    throw
  end
end

(* A backer reclaims their donation after an unsuccessful campaign. *)
transition ClaimBack ()
  blk <- &BLOCKNUMBER;
  past_deadline = builtin blt max_block blk;
  match past_deadline with
  | True =>
    f <- funded;
    match f with
    | True =>
      throw
    | False =>
      bal <- _balance;
      goal_met = builtin le goal bal;
      match goal_met with
      | True =>
        throw
      | False =>
        donated_opt <- backers[_sender];
        match donated_opt with
        | Some donated =>
          delete backers[_sender];
          msg = {_tag : "Refund"; _recipient : _sender; _amount : donated};
          msgs = one_msg msg;
          send msgs;
          e = {_eventname : "ClaimBackSuccess"; backer : _sender; amount : donated};
          event e
        | None =>
          throw
        end
      end
    end
  | False =>
    throw
  end
end
`

func init() { register("Crowdfunding", Crowdfunding, true) }
