package contracts

// FungibleToken is the ZRC-2-style fungible token contract (Zilliqa's
// ERC20 equivalent) from the paper's evaluation. Per Sec. 5.2, the
// sharded transitions are Mint, Transfer and TransferFrom.
const FungibleToken = `
scilla_version 0

library FungibleToken

let zero = Uint128 0
let one = Uint128 1
let true = True
let false = False

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

let two_msgs =
  fun (m1 : Message) =>
    fun (m2 : Message) =>
      let nil = Nil {Message} in
      let l1 = Cons {Message} m2 nil in
      Cons {Message} m1 l1

let get_val =
  fun (some_val : Option Uint128) =>
    match some_val with
    | Some val => val
    | None => zero
    end

contract FungibleToken
(contract_owner : ByStr20,
 token_name : String,
 token_symbol : String,
 decimals : Uint32,
 init_supply : Uint128)

field total_supply : Uint128 = init_supply

field balances : Map ByStr20 Uint128 =
  let emp_map = Emp ByStr20 Uint128 in
  builtin put emp_map contract_owner init_supply

field allowances : Map ByStr20 (Map ByStr20 Uint128) =
  Emp ByStr20 (Map ByStr20 Uint128)

field current_owner : ByStr20 = contract_owner

(* Mint new tokens to recipient. Only the owner may mint. *)
transition Mint (recipient : ByStr20, amount : Uint128)
  owner <- current_owner;
  is_owner = builtin eq _sender owner;
  match is_owner with
  | True =>
    get_to_bal <- balances[recipient];
    new_to_bal = match get_to_bal with
                 | Some bal => builtin add bal amount
                 | None => amount
                 end;
    balances[recipient] := new_to_bal;
    supply <- total_supply;
    new_supply = builtin add supply amount;
    total_supply := new_supply;
    e = {_eventname : "Minted"; minter : _sender; recipient : recipient; amount : amount};
    event e
  | False =>
    e = {_eventname : "NotOwner"; caller : _sender};
    event e;
    throw
  end
end

(* Burn tokens from the sender's own balance. *)
transition Burn (amount : Uint128)
  get_bal <- balances[_sender];
  match get_bal with
  | Some bal =>
    can_burn = builtin le amount bal;
    match can_burn with
    | True =>
      new_bal = builtin sub bal amount;
      balances[_sender] := new_bal;
      supply <- total_supply;
      new_supply = builtin sub supply amount;
      total_supply := new_supply;
      e = {_eventname : "Burnt"; burner : _sender; amount : amount};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Transfer tokens from the sender to a recipient; see Fig. 5. *)
transition Transfer (to : ByStr20, amount : Uint128)
  get_from_bal <- balances[_sender];
  match get_from_bal with
  | Some bal =>
    can_do = builtin le amount bal;
    match can_do with
    | True =>
      new_from_bal = builtin sub bal amount;
      balances[_sender] := new_from_bal;
      get_to_bal <- balances[to];
      new_to_bal = match get_to_bal with
                   | Some old_bal => builtin add old_bal amount
                   | None => amount
                   end;
      balances[to] := new_to_bal;
      e = {_eventname : "TransferSuccess"; sender : _sender; recipient : to; amount : amount};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Transfer on behalf of a token holder, consuming allowance. *)
transition TransferFrom (from : ByStr20, to : ByStr20, amount : Uint128)
  get_allowance <- allowances[from][_sender];
  match get_allowance with
  | Some allowance =>
    can_spend = builtin le amount allowance;
    match can_spend with
    | True =>
      get_from_bal <- balances[from];
      match get_from_bal with
      | Some bal =>
        can_do = builtin le amount bal;
        match can_do with
        | True =>
          new_from_bal = builtin sub bal amount;
          balances[from] := new_from_bal;
          get_to_bal <- balances[to];
          new_to_bal = match get_to_bal with
                       | Some old_bal => builtin add old_bal amount
                       | None => amount
                       end;
          balances[to] := new_to_bal;
          new_allowance = builtin sub allowance amount;
          allowances[from][_sender] := new_allowance;
          e = {_eventname : "TransferFromSuccess"; initiator : _sender; sender : from; recipient : to; amount : amount};
          event e
        | False =>
          throw
        end
      | None =>
        throw
      end
    | False =>
      throw
    end
  | None =>
    throw
  end
end

(* Set an exact allowance for a spender. *)
transition Approve (spender : ByStr20, amount : Uint128)
  allowances[_sender][spender] := amount;
  e = {_eventname : "Approved"; approver : _sender; spender : spender; amount : amount};
  event e
end

(* Increase a spender's allowance. *)
transition IncreaseAllowance (spender : ByStr20, amount : Uint128)
  get_allowance <- allowances[_sender][spender];
  old_allowance = get_val get_allowance;
  new_allowance = builtin add old_allowance amount;
  allowances[_sender][spender] := new_allowance;
  e = {_eventname : "IncreasedAllowance"; approver : _sender; spender : spender; allowance : new_allowance};
  event e
end

(* Decrease a spender's allowance, flooring at zero. *)
transition DecreaseAllowance (spender : ByStr20, amount : Uint128)
  get_allowance <- allowances[_sender][spender];
  old_allowance = get_val get_allowance;
  can_sub = builtin le amount old_allowance;
  new_allowance = match can_sub with
                  | True => builtin sub old_allowance amount
                  | False => zero
                  end;
  allowances[_sender][spender] := new_allowance;
  e = {_eventname : "DecreasedAllowance"; approver : _sender; spender : spender; allowance : new_allowance};
  event e
end

(* Report an account's balance back to the requester. *)
transition BalanceOf (address : ByStr20)
  get_bal <- balances[address];
  bal = get_val get_bal;
  msg = {_tag : "BalanceOfCallback"; _recipient : _sender; _amount : zero; address : address; balance : bal};
  msgs = one_msg msg;
  send msgs
end

(* Report an allowance back to the requester. *)
transition Allowance (token_owner : ByStr20, spender : ByStr20)
  get_allowance <- allowances[token_owner][spender];
  allowance = get_val get_allowance;
  msg = {_tag : "AllowanceCallback"; _recipient : _sender; _amount : zero; token_owner : token_owner; spender : spender; allowance : allowance};
  msgs = one_msg msg;
  send msgs
end

(* Hand contract ownership to a new owner. *)
transition ChangeOwner (new_owner : ByStr20)
  owner <- current_owner;
  is_owner = builtin eq _sender owner;
  match is_owner with
  | True =>
    current_owner := new_owner;
    e = {_eventname : "OwnerChanged"; old_owner : _sender; new_owner : new_owner};
    event e
  | False =>
    throw
  end
end
`

func init() { register("FungibleToken", FungibleToken, true) }
