package contracts

// Second batch of small corpus contracts (cf. Fig. 12's population).

// Bookstore is an inventory CRUD contract with member management.
const Bookstore = `
scilla_version 0

library Bookstore

let bool_true = True

type Book =
| Book of String String Uint128

contract Bookstore
(store_owner : ByStr20)

field members : Map ByStr20 Bool =
  let emp = Emp ByStr20 Bool in
  let t = True in
  builtin put emp store_owner t

field inventory : Map Uint32 Book = Emp Uint32 Book

transition AddMember (member : ByStr20)
  is_owner = builtin eq _sender store_owner;
  match is_owner with
  | True =>
    members[member] := bool_true;
    e = {_eventname : "MemberAdded"; member : member};
    event e
  | False =>
    throw
  end
end

transition AddBook (book_id : Uint32, title : String, author : String, price : Uint128)
  is_member <- exists members[_sender];
  match is_member with
  | True =>
    taken <- exists inventory[book_id];
    match taken with
    | True =>
      throw
    | False =>
      b = Book title author price;
      inventory[book_id] := b;
      e = {_eventname : "BookAdded"; id : book_id};
      event e
    end
  | False =>
    throw
  end
end

transition UpdateBook (book_id : Uint32, title : String, author : String, price : Uint128)
  is_member <- exists members[_sender];
  match is_member with
  | True =>
    present <- exists inventory[book_id];
    match present with
    | True =>
      b = Book title author price;
      inventory[book_id] := b;
      e = {_eventname : "BookUpdated"; id : book_id};
      event e
    | False =>
      throw
    end
  | False =>
    throw
  end
end

transition RemoveBook (book_id : Uint32)
  is_member <- exists members[_sender];
  match is_member with
  | True =>
    delete inventory[book_id];
    e = {_eventname : "BookRemoved"; id : book_id};
    event e
  | False =>
    throw
  end
end
`

// SocialPay pays out rewards for registered social-media handles.
const SocialPay = `
scilla_version 0

library SocialPay

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract SocialPay
(admin : ByStr20,
 reward : Uint128)

field handles : Map String ByStr20 = Emp String ByStr20

field paid : Map String Bool = Emp String Bool

transition Register (handle : String)
  taken <- exists handles[handle];
  match taken with
  | True =>
    throw
  | False =>
    handles[handle] := _sender;
    e = {_eventname : "Registered"; handle : handle};
    event e
  end
end

transition Deposit ()
  is_admin = builtin eq _sender admin;
  match is_admin with
  | True =>
    accept
  | False =>
    throw
  end
end

transition Payout (handle : String)
  is_admin = builtin eq _sender admin;
  match is_admin with
  | True =>
    owner_opt <- handles[handle];
    match owner_opt with
    | Some owner =>
      done <- exists paid[handle];
      match done with
      | True =>
        throw
      | False =>
        t = True;
        paid[handle] := t;
        m = {_tag : "Reward"; _recipient : owner; _amount : reward};
        msgs = one_msg m;
        send msgs;
        e = {_eventname : "Paid"; handle : handle};
        event e
      end
    | None =>
      throw
    end
  | False =>
    throw
  end
end
`

// IOU tracks pairwise debts with commutative increments.
const IOU = `
scilla_version 0

library IOU

contract IOU
(registrar : ByStr20)

field debts : Map ByStr20 (Map ByStr20 Uint128) =
  Emp ByStr20 (Map ByStr20 Uint128)

transition Owe (creditor : ByStr20, amount : Uint128)
  cur_opt <- debts[_sender][creditor];
  new_debt = match cur_opt with
             | Some d => builtin add d amount
             | None => amount
             end;
  debts[_sender][creditor] := new_debt;
  e = {_eventname : "DebtRecorded"; creditor : creditor; amount : amount};
  event e
end

transition Settle (creditor : ByStr20, amount : Uint128)
  cur_opt <- debts[_sender][creditor];
  match cur_opt with
  | Some d =>
    can = builtin le amount d;
    match can with
    | True =>
      new_debt = builtin sub d amount;
      debts[_sender][creditor] := new_debt;
      e = {_eventname : "DebtSettled"; creditor : creditor; amount : amount};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end

transition Forgive (debtor : ByStr20)
  delete debts[debtor][_sender];
  e = {_eventname : "DebtForgiven"; debtor : debtor};
  event e
end
`

// SimpleBondingCurve sells and buys back tokens at a linear price.
const SimpleBondingCurve = `
scilla_version 0

library SimpleBondingCurve

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract SimpleBondingCurve
(issuer : ByStr20,
 base_price : Uint128)

field holdings : Map ByStr20 Uint128 = Emp ByStr20 Uint128

field supply : Uint128 = Uint128 0

transition Buy ()
  accept;
  qty = builtin div _amount base_price;
  cur_opt <- holdings[_sender];
  new_q = match cur_opt with
          | Some q => builtin add q qty
          | None => qty
          end;
  holdings[_sender] := new_q;
  s <- supply;
  new_s = builtin add s qty;
  supply := new_s;
  e = {_eventname : "Bought"; qty : qty};
  event e
end

transition Sell (qty : Uint128)
  cur_opt <- holdings[_sender];
  match cur_opt with
  | Some q =>
    can = builtin le qty q;
    match can with
    | True =>
      new_q = builtin sub q qty;
      holdings[_sender] := new_q;
      s <- supply;
      new_s = builtin sub s qty;
      supply := new_s;
      payout = builtin mul qty base_price;
      m = {_tag : "Proceeds"; _recipient : _sender; _amount : payout};
      msgs = one_msg m;
      send msgs;
      e = {_eventname : "Sold"; qty : qty};
      event e
    | False =>
      throw
    end
  | None =>
    throw
  end
end
`

// Escrow is a three-party escrow with distinct lifecycle transitions.
const Escrow = `
scilla_version 0

library Escrow

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract Escrow
(buyer : ByStr20,
 seller : ByStr20,
 arbiter : ByStr20)

field deposited : Uint128 = Uint128 0

field released : Bool = False

transition Deposit ()
  is_buyer = builtin eq _sender buyer;
  match is_buyer with
  | True =>
    accept;
    d <- deposited;
    new_d = builtin add d _amount;
    deposited := new_d;
    e = {_eventname : "EscrowDeposited"; amount : _amount};
    event e
  | False =>
    throw
  end
end

transition Release ()
  is_arbiter = builtin eq _sender arbiter;
  match is_arbiter with
  | True =>
    done <- released;
    match done with
    | True =>
      throw
    | False =>
      t = True;
      released := t;
      d <- deposited;
      m = {_tag : "EscrowRelease"; _recipient : seller; _amount : d};
      msgs = one_msg m;
      send msgs
    end
  | False =>
    throw
  end
end

transition Refund ()
  is_arbiter = builtin eq _sender arbiter;
  match is_arbiter with
  | True =>
    done <- released;
    match done with
    | True =>
      throw
    | False =>
      t = True;
      released := t;
      d <- deposited;
      m = {_tag : "EscrowRefund"; _recipient : buyer; _amount : d};
      msgs = one_msg m;
      send msgs
    end
  | False =>
    throw
  end
end
`

// LikeMaster counts likes per post (commutative counters).
const LikeMaster = `
scilla_version 0

library LikeMaster

let one = Uint128 1
let bool_true = True

contract LikeMaster
(platform : ByStr20)

field posts : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20

field likes : Map ByStr32 Uint128 = Emp ByStr32 Uint128

transition CreatePost (post_id : ByStr32)
  taken <- exists posts[post_id];
  match taken with
  | True =>
    throw
  | False =>
    posts[post_id] := _sender;
    e = {_eventname : "PostCreated"; post : post_id};
    event e
  end
end

transition Like (post_id : ByStr32)
  cnt_opt <- likes[post_id];
  new_cnt = match cnt_opt with
            | Some c => builtin add c one
            | None => one
            end;
  likes[post_id] := new_cnt;
  e = {_eventname : "Liked"; post : post_id};
  event e
end
`

// PayRespect keeps a global respect counter anyone can bump.
const PayRespect = `
scilla_version 0

library PayRespect

let one = Uint128 1

contract PayRespect
(dedicated_to : String)

field respects : Uint128 = Uint128 0

field last_payer : String = ""

transition Press (name : String)
  r <- respects;
  new_r = builtin add r one;
  respects := new_r;
  last_payer := name;
  e = {_eventname : "RespectPaid"; by : name};
  event e
end

transition PressAnonymously ()
  r <- respects;
  new_r = builtin add r one;
  respects := new_r;
  e = {_eventname : "RespectPaid"};
  event e
end
`

// Quizbot rewards the first correct answer per question.
const Quizbot = `
scilla_version 0

library Quizbot

let one_msg =
  fun (m : Message) =>
    let nil = Nil {Message} in
    Cons {Message} m nil

contract Quizbot
(quizmaster : ByStr20,
 prize : Uint128)

field answers : Map Uint32 ByStr32 = Emp Uint32 ByStr32

field solved : Map Uint32 ByStr20 = Emp Uint32 ByStr20

transition PostQuestion (question_id : Uint32, answer_hash : ByStr32)
  is_qm = builtin eq _sender quizmaster;
  match is_qm with
  | True =>
    accept;
    answers[question_id] := answer_hash;
    e = {_eventname : "QuestionPosted"; id : question_id};
    event e
  | False =>
    throw
  end
end

transition SubmitAnswer (question_id : Uint32, answer : String)
  expected_opt <- answers[question_id];
  match expected_opt with
  | Some expected =>
    taken <- exists solved[question_id];
    match taken with
    | True =>
      throw
    | False =>
      h = builtin sha256hash answer;
      correct = builtin eq h expected;
      match correct with
      | True =>
        solved[question_id] := _sender;
        m = {_tag : "Prize"; _recipient : _sender; _amount : prize};
        msgs = one_msg m;
        send msgs;
        e = {_eventname : "Solved"; id : question_id};
        event e
      | False =>
        throw
      end
    end
  | None =>
    throw
  end
end
`

func init() {
	register("Bookstore", Bookstore, false)
	register("SocialPay", SocialPay, false)
	register("IOU", IOU, false)
	register("SimpleBondingCurve", SimpleBondingCurve, false)
	register("Escrow", Escrow, false)
	register("LikeMaster", LikeMaster, false)
	register("PayRespect", PayRespect, false)
	register("Quizbot", Quizbot, false)
}
