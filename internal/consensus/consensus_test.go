package consensus_test

import (
	"testing"
	"testing/quick"

	"cosplit/internal/consensus"
)

func TestRoundTimeMonotonicInTxs(t *testing.T) {
	m := consensus.DefaultModel(5)
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.RoundTime(x) <= m.RoundTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTimeMonotonicInCommittee(t *testing.T) {
	small := consensus.DefaultModel(5)
	big := consensus.DefaultModel(50)
	if small.RoundTime(100) >= big.RoundTime(100) {
		t.Error("larger committee must cost more")
	}
}

func TestEpochConsensusUsesMaxShard(t *testing.T) {
	sm := consensus.DefaultModel(5)
	dm := consensus.DefaultModel(10)
	// Shards run in parallel: only the largest MicroBlock matters for
	// the shard phase.
	a := consensus.EpochConsensus(sm, dm, []int{100, 100, 100}, 0)
	b := consensus.EpochConsensus(sm, dm, []int{100, 1, 1}, 0)
	// Shard-phase cost identical (max=100); FinalBlock differs by the
	// total transaction count only.
	shardPart := sm.RoundTime(100)
	if a-shardPart != dm.RoundTime(300) {
		t.Errorf("a: unexpected decomposition")
	}
	if b-shardPart != dm.RoundTime(102) {
		t.Errorf("b: unexpected decomposition")
	}
	if a <= b {
		t.Error("more total transactions must cost more at the DS round")
	}
}

func TestZeroModel(t *testing.T) {
	var m consensus.PBFTModel
	if m.RoundTime(0) != 0 {
		t.Error("zero model should cost nothing")
	}
	if m.ViewChangeTime() != 0 {
		t.Error("zero model's view change should cost nothing")
	}
}

// TestViewChangeTime: a view change costs two communication phases
// plus leader work — strictly positive, cheaper than a full block
// round over any non-empty block, and monotonic in committee size.
func TestViewChangeTime(t *testing.T) {
	m := consensus.DefaultModel(5)
	vc := m.ViewChangeTime()
	if vc <= 0 {
		t.Fatalf("view change cost = %v, want > 0", vc)
	}
	if vc >= m.RoundTime(0) {
		t.Errorf("view change (%v) should be cheaper than a 3-phase round over an empty block (%v)",
			vc, m.RoundTime(0))
	}
	if big := consensus.DefaultModel(50); big.ViewChangeTime() <= vc {
		t.Error("larger committee's view change must cost more")
	}
}

func TestEpochConsensusParts(t *testing.T) {
	sm := consensus.DefaultModel(5)
	dm := consensus.DefaultModel(10)
	perShard := []int{40, 100, 7}
	shardRound, dsRound := consensus.EpochConsensusParts(sm, dm, perShard, 13)
	if shardRound != sm.RoundTime(100) {
		t.Errorf("shard round = %v, want the largest MicroBlock's round %v",
			shardRound, sm.RoundTime(100))
	}
	if dsRound != dm.RoundTime(160) {
		t.Errorf("DS round = %v, want FinalBlock round over all txs %v",
			dsRound, dm.RoundTime(160))
	}
	if got := consensus.EpochConsensus(sm, dm, perShard, 13); got != shardRound+dsRound {
		t.Errorf("EpochConsensus = %v, want the sum of its parts %v", got, shardRound+dsRound)
	}
}
