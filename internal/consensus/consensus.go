// Package consensus models the cost of the PBFT-based agreement used
// by the Zilliqa-style protocol (Sec. 4.1). The simulator executes
// transactions for real but runs on one machine, so consensus and
// network costs are modelled analytically: a PBFT round is three
// communication phases, each costing one network latency plus per-node
// signature verification over the committee, plus payload
// serialisation proportional to the block size.
//
// The model's absolute constants are calibrated to small EC2-class
// nodes; only the *shape* of the resulting throughput curves matters
// for reproducing Fig. 14 (see DESIGN.md, substitution 1).
package consensus

import "time"

// PBFTModel parameterises the consensus cost model.
type PBFTModel struct {
	// CommitteeSize is the number of nodes in the committee (shard or
	// DS committee).
	CommitteeSize int
	// NetLatency is the one-way network latency between two nodes.
	NetLatency time.Duration
	// MsgVerify is the cost of verifying one signed protocol message.
	MsgVerify time.Duration
	// PerTxByteCost models serialisation/broadcast per transaction in
	// the proposed block.
	PerTxCost time.Duration
	// BaseProposal is the fixed leader-side cost of assembling a block.
	BaseProposal time.Duration
}

// DefaultModel returns constants loosely calibrated to t2.medium-class
// nodes in one AWS region (the paper's testbed). They are deliberately
// on the heavy side so the deterministic modelled time dominates the
// measured single-machine execution time: throughput comparisons then
// reflect committee capacity rather than host scheduling noise.
func DefaultModel(committee int) PBFTModel {
	return PBFTModel{
		CommitteeSize: committee,
		NetLatency:    20 * time.Millisecond,
		MsgVerify:     2 * time.Millisecond,
		PerTxCost:     50 * time.Microsecond,
		BaseProposal:  200 * time.Millisecond,
	}
}

// Phases in a PBFT round: pre-prepare, prepare, commit.
const pbftPhases = 3

// Phases in a PBFT view change: view-change broadcast and the new
// leader's new-view announcement.
const viewChangePhases = 2

// RoundTime returns the modelled duration of one PBFT consensus round
// over a block containing txCount transactions.
func (m PBFTModel) RoundTime(txCount int) time.Duration {
	perPhase := m.NetLatency + time.Duration(m.CommitteeSize)*m.MsgVerify
	return m.BaseProposal +
		time.Duration(pbftPhases)*perPhase +
		time.Duration(txCount)*m.PerTxCost
}

// ViewChangeTime returns the modelled cost of one PBFT view change:
// the committee times out on its leader, broadcasts view-change
// messages, and the next leader assembles and broadcasts the new-view
// certificate. The fault-recovery path charges this when a shard
// crashes, loses its MicroBlock, or ships a corrupt StateDelta — the
// surviving committee must re-elect before the next epoch can make
// progress. The leader-side certificate assembly is charged at
// BaseProposal, like a block proposal.
func (m PBFTModel) ViewChangeTime() time.Duration {
	perPhase := m.NetLatency + time.Duration(m.CommitteeSize)*m.MsgVerify
	return m.BaseProposal + time.Duration(viewChangePhases)*perPhase
}

// EpochConsensus returns the modelled consensus cost of one full epoch:
// each shard runs one MicroBlock round (in parallel, so the cost is one
// round), and the DS committee runs one FinalBlock round aggregating
// all MicroBlocks.
func EpochConsensus(shardModel, dsModel PBFTModel, perShardTxs []int, dsTxs int) time.Duration {
	shardRound, dsRound := EpochConsensusParts(shardModel, dsModel, perShardTxs, dsTxs)
	return shardRound + dsRound
}

// EpochConsensusParts breaks EpochConsensus into its two stages —
// the parallel MicroBlock round (charged once, at the largest shard's
// block size) and the DS committee's FinalBlock round over every
// transaction — so instrumentation can attribute them separately.
func EpochConsensusParts(shardModel, dsModel PBFTModel, perShardTxs []int, dsTxs int) (shardRound, dsRound time.Duration) {
	maxShard := 0
	total := 0
	for _, n := range perShardTxs {
		if n > maxShard {
			maxShard = n
		}
		total += n
	}
	// Shards agree on their MicroBlocks in parallel; the DS committee
	// then agrees on the FinalBlock covering every transaction.
	return shardModel.RoundTime(maxShard), dsModel.RoundTime(total + dsTxs)
}
