package compile

import (
	"math/big"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// --- special statement ops ---

func opLoadBalance(slot int) stmtOp {
	return func(m *mach) error {
		if err := m.burn(eval.GasStmt); err != nil {
			return err
		}
		if err := m.burn(eval.GasLoad); err != nil {
			return err
		}
		bal := big.NewInt(0)
		if m.ctx.ContractBalance != nil {
			bal = new(big.Int).Set(m.ctx.ContractBalance)
		}
		m.slots[slot] = value.Int{Ty: ast.TyUint128, V: bal}
		return nil
	}
}

func opReadBlockNumber(slot int) stmtOp {
	return func(m *mach) error {
		if err := m.burn(eval.GasStmt); err != nil {
			return err
		}
		m.slots[slot] = value.BNum{V: new(big.Int).Set(m.ctx.BlockNumber)}
		return nil
	}
}

func opReadTimestamp(slot int) stmtOp {
	return func(m *mach) error {
		if err := m.burn(eval.GasStmt); err != nil {
			return err
		}
		m.slots[slot] = value.Int{Ty: ast.TyUint64, V: new(big.Int).SetUint64(m.ctx.Timestamp)}
		return nil
	}
}

// --- Option fusion analysis ---

// fuseScan reports whether the binding x, produced by a map read, can
// be kept unwrapped (raw value + found flag) for the remainder of the
// block: every use of x must be as the scrutinee of a match whose arms
// are limited to Some(bind|_)/None/_ shapes. Any other use — passing x
// to a builtin or constructor, storing it, capturing it in a closure —
// needs the real Option value and defeats the fusion.
func fuseScan(stmts []ast.Stmt, x string) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.LoadStmt:
			if st.Lhs == x {
				return true // rebound; later uses are a new binding
			}
		case *ast.StoreStmt:
			if st.Rhs == x {
				return false
			}
		case *ast.BindStmt:
			if !scanExpr(st.Expr, x) {
				return false
			}
			if st.Lhs == x {
				return true
			}
		case *ast.MapUpdateStmt:
			if st.Rhs == x || containsName(st.Keys, x) {
				return false
			}
		case *ast.MapGetStmt:
			if containsName(st.Keys, x) {
				return false
			}
			if st.Lhs == x {
				return true
			}
		case *ast.MapDeleteStmt:
			if containsName(st.Keys, x) {
				return false
			}
		case *ast.ReadBlockchainStmt:
			if st.Lhs == x {
				return true
			}
		case *ast.MatchStmt:
			if st.Scrutinee == x {
				if !admissibleStmtArms(st.Arms) {
					return false
				}
			}
			for i := range st.Arms {
				if patternBinds(st.Arms[i].Pat, x) {
					continue // shadowed inside this arm
				}
				if !fuseScan(st.Arms[i].Body, x) {
					return false
				}
			}
		case *ast.SendStmt:
			if st.Arg == x {
				return false
			}
		case *ast.EventStmt:
			if st.Arg == x {
				return false
			}
		case *ast.ThrowStmt:
			if st.Arg == x {
				return false
			}
		case *ast.AcceptStmt:
			// no names
		default:
			return false
		}
	}
	return true
}

// scanExpr checks an expression under the same rules as fuseScan.
func scanExpr(e ast.Expr, x string) bool {
	switch ex := e.(type) {
	case *ast.LitExpr:
		return true
	case *ast.VarExpr:
		return ex.Name != x
	case *ast.MsgExpr:
		for i := range ex.Entries {
			if !ex.Entries[i].IsLit && ex.Entries[i].Var == x {
				return false
			}
		}
		return true
	case *ast.ConstrExpr:
		return !containsName(ex.Args, x)
	case *ast.BuiltinExpr:
		return !containsName(ex.Args, x)
	case *ast.LetExpr:
		if !scanExpr(ex.Bound, x) {
			return false
		}
		if ex.Name == x {
			return true // body sees the let-bound x
		}
		return scanExpr(ex.Body, x)
	case *ast.FunExpr:
		// A closure body runs later, against a materialised capture; a
		// fused binding cannot cross that boundary.
		if ex.Param == x {
			return true
		}
		return !exprUses(ex.Body, x)
	case *ast.TFunExpr:
		return !exprUses(ex.Body, x)
	case *ast.AppExpr:
		return ex.Func != x && !containsName(ex.Args, x)
	case *ast.TAppExpr:
		return ex.Name != x
	case *ast.MatchExpr:
		if ex.Scrutinee == x {
			if !admissibleExprArms(ex.Arms) {
				return false
			}
		}
		for i := range ex.Arms {
			if patternBinds(ex.Arms[i].Pat, x) {
				continue
			}
			if !scanExpr(ex.Arms[i].Body, x) {
				return false
			}
		}
		return true
	}
	return false
}

// exprUses reports whether e references the name x at all (ignoring
// shadowing — a conservative over-approximation is fine here).
func exprUses(e ast.Expr, x string) bool {
	switch ex := e.(type) {
	case *ast.LitExpr:
		return false
	case *ast.VarExpr:
		return ex.Name == x
	case *ast.MsgExpr:
		for i := range ex.Entries {
			if !ex.Entries[i].IsLit && ex.Entries[i].Var == x {
				return true
			}
		}
		return false
	case *ast.ConstrExpr:
		return containsName(ex.Args, x)
	case *ast.BuiltinExpr:
		return containsName(ex.Args, x)
	case *ast.LetExpr:
		return exprUses(ex.Bound, x) || exprUses(ex.Body, x)
	case *ast.FunExpr:
		return exprUses(ex.Body, x)
	case *ast.TFunExpr:
		return exprUses(ex.Body, x)
	case *ast.AppExpr:
		return ex.Func == x || containsName(ex.Args, x)
	case *ast.TAppExpr:
		return ex.Name == x
	case *ast.MatchExpr:
		if ex.Scrutinee == x {
			return true
		}
		for i := range ex.Arms {
			if exprUses(ex.Arms[i].Body, x) {
				return true
			}
		}
		return false
	}
	return true
}

func containsName(names []string, x string) bool {
	for _, n := range names {
		if n == x {
			return true
		}
	}
	return false
}

func patternBinds(p ast.Pattern, x string) bool {
	switch pt := p.(type) {
	case ast.BindPat:
		return pt.Name == x
	case ast.ConstrPat:
		for _, sp := range pt.Sub {
			if patternBinds(sp, x) {
				return true
			}
		}
	}
	return false
}

// admissiblePat reports whether one arm pattern fits the fused
// Some/None/_ dispatch shape.
func admissiblePat(p ast.Pattern) bool {
	switch pt := p.(type) {
	case ast.WildPat:
		return true
	case ast.ConstrPat:
		if pt.Name == "Some" && len(pt.Sub) == 1 {
			switch pt.Sub[0].(type) {
			case ast.BindPat, ast.WildPat:
				return true
			}
			return false
		}
		return pt.Name == "None" && len(pt.Sub) == 0
	}
	return false
}

func admissibleStmtArms(arms []ast.StmtMatchArm) bool {
	for i := range arms {
		if !admissiblePat(arms[i].Pat) {
			return false
		}
	}
	return true
}

func admissibleExprArms(arms []ast.MatchArm) bool {
	for i := range arms {
		if !admissiblePat(arms[i].Pat) {
			return false
		}
	}
	return true
}
