package compile_test

import (
	"fmt"
	"math/big"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/compile"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/typecheck"
	"cosplit/internal/scilla/value"
)

// synthV produces a deterministic value of the given type, varied by
// seed so different runs exercise different guard outcomes.
func synthV(t ast.Type, seed int64) value.Value {
	switch tt := t.(type) {
	case ast.PrimType:
		switch {
		case tt.IsInt():
			return value.Int{Ty: tt, V: big.NewInt(1 + seed%7)}
		case tt.Kind == ast.StringKind:
			return value.Str{S: fmt.Sprintf("x%d", seed)}
		case tt.Kind == ast.ByStr20:
			b := make([]byte, 20)
			b[19] = byte(seed % 3)
			return value.ByStr{Ty: tt, B: b}
		case tt.Kind == ast.ByStr32:
			b := make([]byte, 32)
			b[31] = byte(seed % 3)
			return value.ByStr{Ty: tt, B: b}
		case tt.Kind == ast.ByStr:
			return value.ByStr{Ty: tt, B: []byte{1, byte(seed)}}
		case tt.Kind == ast.BNum:
			return value.BNum{V: big.NewInt(1 + seed)}
		}
	case ast.MapType:
		return value.NewMap(tt.Key, tt.Val)
	case ast.ADTType:
		switch tt.Name {
		case "Bool":
			if seed%2 == 0 {
				return value.False()
			}
			return value.True()
		case "Option":
			return value.None(tt.Args[0])
		case "List":
			return value.NilList(tt.Args[0])
		case "Pair":
			return value.PairV(tt.Args[0], tt.Args[1],
				synthV(tt.Args[0], seed), synthV(tt.Args[1], seed+1))
		}
	}
	return value.Unit{}
}

func freshState(t *testing.T, in *eval.Interpreter, chk *typecheck.Checked) *eval.MemState {
	t.Helper()
	st := eval.NewMemState(chk.FieldTypes)
	if err := st.InitFrom(in); err != nil {
		t.Fatalf("InitFrom: %v", err)
	}
	return st
}

func diffCtx(st eval.StateAccess, seed int64, gasLimit uint64) *eval.Context {
	sender := make([]byte, 20)
	sender[19] = byte(seed % 3)
	return &eval.Context{
		Sender:          value.ByStr{Ty: ast.TyByStr20, B: sender},
		Origin:          value.ByStr{Ty: ast.TyByStr20, B: sender},
		Amount:          value.Uint128(uint64(5 + seed)),
		BlockNumber:     big.NewInt(10 + seed),
		Timestamp:       uint64(100 + seed),
		State:           st,
		ContractBalance: big.NewInt(1000),
		GasLimit:        gasLimit,
	}
}

func msgsEqual(a, b []value.Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !value.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// compareRuns executes one transition on both engines against
// independent but identical states and fails on any observable
// divergence: result fields, gas, error identity, and final state
// (including partial state left behind by aborts).
func compareRuns(t *testing.T, in *eval.Interpreter, prog *compile.Program,
	chk *typecheck.Checked, trName string, args map[string]value.Value,
	seed int64, gasLimit uint64) {
	t.Helper()
	stI := freshState(t, in, chk)
	stC := freshState(t, in, chk)
	ctxI := diffCtx(stI, seed, gasLimit)
	ctxC := diffCtx(stC, seed, gasLimit)

	argsI := make(map[string]value.Value, len(args))
	argsC := make(map[string]value.Value, len(args))
	for k, v := range args {
		argsI[k] = v
		argsC[k] = value.Copy(v)
	}

	resI, errI := in.Run(ctxI, trName, argsI)
	resC, errC := prog.Run(ctxC, trName, argsC)

	if (errI == nil) != (errC == nil) {
		t.Fatalf("%s seed=%d limit=%d: error divergence: interp=%v compiled=%v", trName, seed, gasLimit, errI, errC)
	}
	if errI != nil {
		if fmt.Sprintf("%T", errI) != fmt.Sprintf("%T", errC) || errI.Error() != errC.Error() {
			t.Fatalf("%s seed=%d limit=%d: error mismatch: interp=%T %q compiled=%T %q",
				trName, seed, gasLimit, errI, errI.Error(), errC, errC.Error())
		}
	}
	if ctxI.GasUsed != ctxC.GasUsed {
		t.Fatalf("%s seed=%d limit=%d: gas divergence: interp=%d compiled=%d (err=%v)",
			trName, seed, gasLimit, ctxI.GasUsed, ctxC.GasUsed, errI)
	}
	if errI == nil {
		if resI.Accepted != resC.Accepted {
			t.Fatalf("%s seed=%d: accepted divergence", trName, seed)
		}
		if resI.GasUsed != resC.GasUsed {
			t.Fatalf("%s seed=%d: result gas divergence: %d vs %d", trName, seed, resI.GasUsed, resC.GasUsed)
		}
		if !msgsEqual(resI.Messages, resC.Messages) {
			t.Fatalf("%s seed=%d: messages diverge:\ninterp=%v\ncompiled=%v", trName, seed, resI.Messages, resC.Messages)
		}
		if !msgsEqual(resI.Events, resC.Events) {
			t.Fatalf("%s seed=%d: events diverge:\ninterp=%v\ncompiled=%v", trName, seed, resI.Events, resC.Events)
		}
	}
	if !stI.Equal(stC) {
		t.Fatalf("%s seed=%d limit=%d: final state diverges (err=%v)", trName, seed, gasLimit, errI)
	}
}

// TestDifferentialAllContracts runs every transition of every corpus
// contract through both engines across three seeds and requires
// bit-identical results, gas, errors, and state.
func TestDifferentialAllContracts(t *testing.T) {
	seeds := []int64{1, 7, 42}
	for _, entry := range contracts.All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			chk := contracts.MustParse(entry.Name)
			params := make(map[string]value.Value)
			for _, p := range chk.Module.Contract.Params {
				params[p.Name] = synthV(p.Type, 0)
			}
			in, err := eval.New(chk, params)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			prog := compile.New(in)
			for _, seed := range seeds {
				for _, tr := range chk.Module.Contract.Transitions {
					args := make(map[string]value.Value, len(tr.Params))
					for _, p := range tr.Params {
						args[p.Name] = synthV(p.Type, seed)
					}
					compareRuns(t, in, prog, chk, tr.Name, args, seed, 1_000_000)
				}
			}
		})
	}
}

// ftFixture builds a FungibleToken interpreter+program whose contract
// owner is the seed-0 sender, so Transfer from that sender succeeds.
func ftFixture(t *testing.T) (*eval.Interpreter, *compile.Program, *typecheck.Checked) {
	t.Helper()
	chk := contracts.MustParse("FungibleToken")
	owner := make([]byte, 20) // matches diffCtx sender for seed%3==0
	params := map[string]value.Value{
		"contract_owner": value.ByStr{Ty: ast.TyByStr20, B: owner},
		"token_name":     value.Str{S: "Test"},
		"token_symbol":   value.Str{S: "TST"},
		"decimals":       value.Int{Ty: ast.TyUint32, V: big.NewInt(6)},
		"init_supply":    value.Uint128(1_000_000),
	}
	in, err := eval.New(chk, params)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in, compile.New(in), chk
}

func transferArgs(seed int64) map[string]value.Value {
	to := make([]byte, 20)
	to[0] = 0xaa
	to[19] = byte(seed)
	return map[string]value.Value{
		"to":     value.ByStr{Ty: ast.TyByStr20, B: to},
		"amount": value.Uint128(uint64(10 + seed)),
	}
}

// TestTransferFastPathCompiled pins the perf-critical property: the
// FungibleToken hot transitions compile, and Transfer engages the
// fused Option fast path.
func TestTransferFastPathCompiled(t *testing.T) {
	_, prog, _ := ftFixture(t)
	for _, tr := range []string{"Mint", "Burn", "Transfer", "TransferFrom"} {
		compiled, fast := prog.CompiledTransition(tr)
		if !compiled {
			t.Errorf("transition %s fell back to the interpreter", tr)
		}
		if !fast {
			t.Errorf("transition %s compiled without the fused fast path", tr)
		}
	}
	compiled, fallbacks, fastPaths := prog.CompileCounts()
	if fallbacks != 0 {
		t.Errorf("FungibleToken has %d fallback transitions, want 0 (compiled=%d)", fallbacks, compiled)
	}
	if fastPaths == 0 {
		t.Errorf("no fused fast paths in FungibleToken")
	}
}

// TestTransferSuccessDifferential drives many successful transfers
// through one pooled Program, comparing state after every run, so a
// machine leaking values across checkouts would diverge immediately.
func TestTransferSuccessDifferential(t *testing.T) {
	in, prog, chk := ftFixture(t)
	stI := freshState(t, in, chk)
	stC := freshState(t, in, chk)
	for i := int64(0); i < 100; i++ {
		ctxI := diffCtx(stI, 0, 1_000_000)
		ctxC := diffCtx(stC, 0, 1_000_000)
		args := transferArgs(i % 5)
		resI, errI := in.Run(ctxI, "Transfer", args)
		resC, errC := prog.Run(ctxC, "Transfer", args)
		if errI != nil || errC != nil {
			t.Fatalf("run %d: unexpected errors interp=%v compiled=%v", i, errI, errC)
		}
		if resI.GasUsed != resC.GasUsed {
			t.Fatalf("run %d: gas divergence %d vs %d", i, resI.GasUsed, resC.GasUsed)
		}
		if !msgsEqual(resI.Events, resC.Events) {
			t.Fatalf("run %d: event divergence", i)
		}
		if !stI.Equal(stC) {
			t.Fatalf("run %d: state divergence", i)
		}
	}
	stats := prog.DrainStats()
	if stats.FastRuns != 100 {
		t.Errorf("fast runs = %d, want 100", stats.FastRuns)
	}
	if stats.PoolRecycles == 0 {
		t.Errorf("expected pooled machine reuse across 100 runs")
	}
}

// TestOOGSweepDifferential aborts Transfer at every possible gas limit
// and requires both engines to agree on the error, the exact GasUsed
// at the abort point, and the partial state left behind. After each
// abort the same pooled Program must still produce a clean reference
// run, proving aborts cannot leak partial values through the pool.
func TestOOGSweepDifferential(t *testing.T) {
	in, prog, chk := ftFixture(t)

	// Reference run to learn the full gas cost.
	stRef := freshState(t, in, chk)
	ctxRef := diffCtx(stRef, 0, 1_000_000)
	resRef, err := in.Run(ctxRef, "Transfer", transferArgs(1))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	fullGas := resRef.GasUsed
	if fullGas == 0 || fullGas > 500 {
		t.Fatalf("implausible reference gas %d", fullGas)
	}

	for limit := uint64(1); limit <= fullGas; limit++ {
		compareRuns(t, in, prog, chk, "Transfer", transferArgs(1), 0, limit)

		// Pool-leak probe: a clean run right after the abort must match
		// the unconstrained reference exactly.
		stProbe := freshState(t, in, chk)
		ctxProbe := diffCtx(stProbe, 0, 1_000_000)
		resProbe, err := prog.Run(ctxProbe, "Transfer", transferArgs(1))
		if err != nil {
			t.Fatalf("limit %d: probe run failed: %v", limit, err)
		}
		if resProbe.GasUsed != fullGas {
			t.Fatalf("limit %d: probe gas %d, want %d", limit, resProbe.GasUsed, fullGas)
		}
		if !msgsEqual(resProbe.Events, resRef.Events) {
			t.Fatalf("limit %d: probe events diverge from reference", limit)
		}
		if !stProbe.Equal(stRef) {
			t.Fatalf("limit %d: probe state diverges from reference", limit)
		}
	}
}

// TestCompiledAllocCeiling pins the steady-state allocation budget of
// the fused Transfer fast path.
func TestCompiledAllocCeiling(t *testing.T) {
	in, prog, chk := ftFixture(t)
	st := freshState(t, in, chk)
	args := transferArgs(1)
	ctx := diffCtx(st, 0, 1_000_000)
	// Warm the pool, intern table, and implicit-param boxes.
	for i := 0; i < 50; i++ {
		if _, err := prog.Run(ctx, "Transfer", args); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	const ceiling = 5
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := prog.Run(ctx, "Transfer", args); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if allocs > ceiling {
		t.Errorf("compiled Transfer allocates %.1f per op, ceiling %d", allocs, ceiling)
	}
}
