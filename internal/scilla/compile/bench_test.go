package compile_test

import (
	"math/big"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/compile"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// BenchmarkCompiledTransfer measures the steady-state compiled
// fast path of FungibleToken.Transfer against a warm MemState.
func BenchmarkCompiledTransfer(b *testing.B) {
	chk := contracts.MustParse("FungibleToken")
	owner := make([]byte, 20)
	params := map[string]value.Value{
		"contract_owner": value.ByStr{Ty: ast.TyByStr20, B: owner},
		"token_name":     value.Str{S: "Test"},
		"token_symbol":   value.Str{S: "TST"},
		"decimals":       value.Int{Ty: ast.TyUint32, V: big.NewInt(6)},
		"init_supply":    value.Uint128(1_000_000_000),
	}
	in, err := eval.New(chk, params)
	if err != nil {
		b.Fatal(err)
	}
	prog := compile.New(in)
	st := eval.NewMemState(chk.FieldTypes)
	if err := st.InitFrom(in); err != nil {
		b.Fatal(err)
	}
	to := make([]byte, 20)
	to[0] = 0xaa
	args := map[string]value.Value{
		"to":     value.ByStr{Ty: ast.TyByStr20, B: to},
		"amount": value.Uint128(1),
	}
	ctx := &eval.Context{
		Sender:          value.ByStr{Ty: ast.TyByStr20, B: owner},
		Origin:          value.ByStr{Ty: ast.TyByStr20, B: owner},
		Amount:          value.Uint128(0),
		BlockNumber:     big.NewInt(10),
		Timestamp:       1,
		State:           st,
		ContractBalance: big.NewInt(100),
		GasLimit:        1_000_000,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(ctx, "Transfer", args); err != nil {
			b.Fatal(err)
		}
	}
}
