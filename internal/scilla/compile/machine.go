package compile

import (
	"bytes"
	"encoding/hex"
	"math/big"

	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// intBox is one slab cell for a boxed arithmetic result. The embedded
// word array gives the big.Int a preallocated backing for values up to
// 128 bits, which covers every Uint128 balance; wider results simply
// let big.Int grow its own backing.
type intBox struct {
	bi big.Int
	w  [2]big.Word
}

const slabSize = 32

// ikeysResetThreshold bounds the per-machine canonical-key intern
// table; past it the table is dropped and rebuilt, so a workload
// touching unbounded key sets cannot grow a machine without limit.
const ikeysResetThreshold = 1 << 16

// mach is the pooled per-execution machine state. A mach is checked
// out of its Program's pool for the duration of one Run and returned
// cleared, so no transaction can observe another's values. Slots are
// the compiled replacement for the interpreter's environment chain:
// every binding site is resolved to a fixed slot index at compile
// time.
type mach struct {
	ctx   *eval.Context
	slots []value.Value
	// ffound holds the found-flag for fused Option bindings (map reads
	// whose Some/None wrapper is elided); indexed by slot.
	ffound []bool
	res    eval.Result

	// keyed is the per-run canonical-key fast path into state, set when
	// ctx.State implements eval.KeyedState.
	keyed     eval.KeyedState
	haveKeyed bool

	// scratch buffers for canonical key construction and map-op key
	// vectors; capacity is retained across runs.
	scratch []byte
	cks     []string
	keyBuf  []value.Value
	argBuf  [3]value.Value
	// ikeys interns canonical keys so repeated map accesses to the same
	// key do not re-allocate the key string.
	ikeys map[string]string

	// slab is the arena for boxed arithmetic results. It advances
	// monotonically and cells are never reused: a result big.Int may
	// escape into contract state, so reuse would corrupt it. A fresh
	// slab replaces an exhausted one, amortising the per-result
	// allocation to 1/slabSize.
	slab  []intBox
	slabN int

	// Boxed-interface caches for the implicit transition parameters.
	// Re-boxing an interface costs an allocation, so the previous box
	// is reused when the incoming value is unchanged.
	senderRaw value.ByStr
	senderBox value.Value
	originRaw value.ByStr
	originBox value.Value
	amountRaw value.Int
	amountBox value.Value
}

func (m *mach) burn(g uint64) error {
	c := m.ctx
	c.GasUsed += g
	if c.GasLimit > 0 && c.GasUsed > c.GasLimit {
		return &eval.OutOfGasError{Limit: c.GasLimit}
	}
	return nil
}

// nextBox returns a never-before-used slab cell.
func (m *mach) nextBox() *intBox {
	if m.slabN == len(m.slab) {
		m.slab = make([]intBox, slabSize)
		m.slabN = 0
	}
	b := &m.slab[m.slabN]
	m.slabN++
	return b
}

func boxByStr(raw *value.ByStr, box *value.Value, b value.ByStr) value.Value {
	if *box != nil && raw.Ty == b.Ty && bytes.Equal(raw.B, b.B) {
		return *box
	}
	*raw = b
	*box = b
	return *box
}

func (m *mach) boxAmount(a value.Int) value.Value {
	if m.amountBox != nil && m.amountRaw.Ty == a.Ty && m.amountRaw.V == a.V {
		return m.amountBox
	}
	m.amountRaw = a
	m.amountBox = a
	return m.amountBox
}

// canonKey renders v's canonical map key, interning the result so the
// steady-state hot path performs no string allocation. The encoding is
// byte-identical to value.CanonicalKey.
func (m *mach) canonKey(v value.Value) string {
	buf := m.scratch[:0]
	switch k := v.(type) {
	case value.ByStr:
		need := 4 + 2*len(k.B)
		if cap(buf) < need {
			buf = make([]byte, 0, need*2)
		}
		buf = buf[:need]
		copy(buf, "b:0x")
		hex.Encode(buf[4:], k.B)
	case value.Int:
		buf = append(buf, k.Ty.String()...)
		buf = append(buf, ':')
		buf = k.V.Append(buf, 10)
	case value.Str:
		buf = append(buf, 's', ':')
		buf = append(buf, k.S...)
	case value.BNum:
		buf = append(buf, 'n', ':')
		buf = k.V.Append(buf, 10)
	default:
		return value.CanonicalKey(v)
	}
	m.scratch = buf[:0]
	if s, ok := m.ikeys[string(buf)]; ok {
		return s
	}
	if len(m.ikeys) >= ikeysResetThreshold {
		m.ikeys = make(map[string]string)
	}
	s := string(buf)
	m.ikeys[s] = s
	return s
}

// mapGet dispatches a map read through the canonical-key fast path
// when the state backend supports it.
func (m *mach) mapGet(field string, cks []string, keys []value.Value) (value.Value, bool, error) {
	if m.haveKeyed {
		return m.keyed.MapGetCK(field, cks, keys)
	}
	return m.ctx.State.MapGet(field, keys)
}

func (m *mach) mapSet(field string, cks []string, keys []value.Value, v value.Value) error {
	if m.haveKeyed {
		return m.keyed.MapSetCK(field, cks, keys, v)
	}
	return m.ctx.State.MapSet(field, keys, v)
}

func (m *mach) mapDelete(field string, cks []string, keys []value.Value) error {
	if m.haveKeyed {
		return m.keyed.MapDeleteCK(field, cks, keys)
	}
	return m.ctx.State.MapDelete(field, keys)
}

// clearForPool strips everything transaction-specific before the mach
// returns to the pool, so pooled machines can never leak values (or
// partially-written results after a mid-transition abort) into the
// next transaction.
func (m *mach) clearForPool() {
	clear(m.slots)
	clear(m.ffound)
	m.res = eval.Result{}
	m.ctx = nil
	m.keyed = nil
	m.haveKeyed = false
	m.keyBuf = m.keyBuf[:0]
	m.cks = m.cks[:0]
	m.argBuf = [3]value.Value{}
}

func runOps(m *mach, ops []stmtOp) error {
	for _, op := range ops {
		if err := op(m); err != nil {
			return err
		}
	}
	return nil
}
