package compile

import (
	"fmt"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/stdlib"
	"cosplit/internal/scilla/value"
)

// Slots 0..2 hold the implicit transition parameters.
const (
	slotSender = iota
	slotOrigin
	slotAmount
	firstFreeSlot
)

// Shared boxed constants: results the interpreter re-allocates per
// evaluation but that are immutable, so compiled code returns one
// shared box.
var (
	boxedTrue  value.Value = value.True()
	boxedFalse value.Value = value.False()
)

func boxedBool(b bool) value.Value {
	if b {
		return boxedTrue
	}
	return boxedFalse
}

// binding is the compile-time record of a name in scope.
type binding struct {
	slot int
	// fused marks a map-read Option binding kept unwrapped: the slot
	// holds the raw map value and ffound[slot] the presence flag.
	fused bool
	valT  ast.Type // map value type, for materialising fused bindings
}

type compiler struct {
	in     *eval.Interpreter
	frames []map[string]binding
	nslots int
	// hasLambda and sawRebind together force a fallback: the
	// interpreter's closures capture their environment by reference,
	// so a same-frame rebind after closure creation is observable;
	// compiled closures snapshot their captures instead.
	hasLambda bool
	sawRebind bool
	fastPath  bool
}

func compileTransition(in *eval.Interpreter, tr *ast.Transition) (pr *proc, nslots int, err error) {
	c := &compiler{in: in, nslots: firstFreeSlot}
	c.push()
	root := c.frames[0]
	root[ast.SenderParam] = binding{slot: slotSender}
	root[ast.OriginParam] = binding{slot: slotOrigin}
	root[ast.AmountParam] = binding{slot: slotAmount}
	params := make([]paramSpec, len(tr.Params))
	for i, p := range tr.Params {
		s := c.bind(p.Name)
		params[i] = paramSpec{name: p.Name, ty: p.Type, slot: s}
	}
	code, err := c.block(tr.Body)
	if err != nil {
		return nil, 0, err
	}
	if c.hasLambda && c.sawRebind {
		return nil, 0, fmt.Errorf("transition %s: closure capture with same-frame rebind", tr.Name)
	}
	return &proc{name: tr.Name, params: params, code: code, fastPath: c.fastPath}, c.nslots, nil
}

// --- scopes ---

func (c *compiler) push() { c.frames = append(c.frames, map[string]binding{}) }
func (c *compiler) pop()  { c.frames = c.frames[:len(c.frames)-1] }

func (c *compiler) bind(name string) int {
	f := c.frames[len(c.frames)-1]
	if _, exists := f[name]; exists {
		c.sawRebind = true
	}
	s := c.nslots
	c.nslots++
	f[name] = binding{slot: s}
	return s
}

func (c *compiler) bindFused(name string, valT ast.Type) int {
	f := c.frames[len(c.frames)-1]
	if _, exists := f[name]; exists {
		c.sawRebind = true
	}
	s := c.nslots
	c.nslots++
	f[name] = binding{slot: s, fused: true, valT: valT}
	return s
}

// bindAlias binds name to an existing slot (a fused Some-arm binder
// aliases the raw fused slot; no copy is needed).
func (c *compiler) bindAlias(name string, slot int) {
	f := c.frames[len(c.frames)-1]
	if _, exists := f[name]; exists {
		c.sawRebind = true
	}
	f[name] = binding{slot: slot}
}

func (c *compiler) resolve(name string) (binding, bool) {
	for i := len(c.frames) - 1; i >= 0; i-- {
		if b, ok := c.frames[i][name]; ok {
			return b, true
		}
	}
	return binding{}, false
}

// getter resolves a name to a value reader: a slot read, a
// materialising read of a fused Option binding, or a library constant.
// Unresolvable names abort compilation (the interpreter fallback then
// reproduces the runtime unbound-identifier behaviour exactly).
func (c *compiler) getter(name string) (getter, error) {
	if b, ok := c.resolve(name); ok {
		slot := b.slot
		if b.fused {
			return materialiser(slot, b.valT), nil
		}
		return func(m *mach) value.Value { return m.slots[slot] }, nil
	}
	if v, ok := c.in.LibValue(name); ok {
		return func(m *mach) value.Value { return v }, nil
	}
	return nil, fmt.Errorf("unresolved identifier %s", name)
}

// materialiser rebuilds the Option wrapper of a fused binding for the
// rare uses that need the wrapped value.
func materialiser(slot int, valT ast.Type) getter {
	targs := []ast.Type{valT}
	noneC := value.Value(value.None(valT))
	return func(m *mach) value.Value {
		if m.ffound[slot] {
			return value.ADT{TypeName: "Option", Constr: "Some", TypeArgs: targs, Args: []value.Value{m.slots[slot]}}
		}
		return noneC
	}
}

func (c *compiler) getters(names []string) ([]getter, error) {
	out := make([]getter, len(names))
	for i, n := range names {
		g, err := c.getter(n)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}

// fieldValueTypeAt mirrors the interpreter's resolution of the value
// type at a map field's nesting depth; failures abort compilation so
// the interpreter surfaces the identical runtime error.
func (c *compiler) fieldValueTypeAt(field string, depth int) (ast.Type, error) {
	t, ok := c.in.Checked().FieldTypes[field]
	if !ok {
		return nil, fmt.Errorf("unknown field %s", field)
	}
	for i := 0; i < depth; i++ {
		mt, ok := t.(ast.MapType)
		if !ok {
			return nil, fmt.Errorf("field %s is not a map at depth %d", field, i)
		}
		t = mt.Val
	}
	return t, nil
}

// keyOps compiles a map statement's key vector: per-key getters whose
// values are appended to the machine's reusable key buffer alongside
// their interned canonical keys.
func (c *compiler) keyOps(names []string) (func(m *mach) ([]string, []value.Value), error) {
	gets, err := c.getters(names)
	if err != nil {
		return nil, err
	}
	return func(m *mach) ([]string, []value.Value) {
		kb := m.keyBuf[:0]
		cb := m.cks[:0]
		for _, g := range gets {
			v := g(m)
			kb = append(kb, v)
			cb = append(cb, m.canonKey(v))
		}
		m.keyBuf, m.cks = kb, cb
		return cb, kb
	}, nil
}

// --- statements ---

// block compiles a statement sequence. Fusion decisions for map reads
// look ahead into the remainder of the same block.
func (c *compiler) block(stmts []ast.Stmt) ([]stmtOp, error) {
	out := make([]stmtOp, 0, len(stmts))
	for i, s := range stmts {
		op, err := c.stmt(s, stmts[i+1:])
		if err != nil {
			return nil, err
		}
		out = append(out, op)
	}
	return out, nil
}

func (c *compiler) stmt(s ast.Stmt, rest []ast.Stmt) (stmtOp, error) {
	switch st := s.(type) {
	case *ast.LoadStmt:
		slot := c.bind(st.Lhs)
		if st.Field == "_balance" {
			return opLoadBalance(slot), nil
		}
		field := st.Field
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if err := m.burn(eval.GasLoad); err != nil {
				return err
			}
			v, err := m.ctx.State.LoadField(field)
			if err != nil {
				return err
			}
			m.slots[slot] = v
			return nil
		}, nil

	case *ast.StoreStmt:
		get, err := c.getter(st.Rhs)
		if err != nil {
			return nil, err
		}
		field := st.Field
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if err := m.burn(eval.GasStore); err != nil {
				return err
			}
			return m.ctx.State.StoreField(field, get(m))
		}, nil

	case *ast.BindStmt:
		eop, err := c.expr(st.Expr)
		if err != nil {
			return nil, err
		}
		slot := c.bind(st.Lhs)
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			v, err := eop(m)
			if err != nil {
				return err
			}
			m.slots[slot] = v
			return nil
		}, nil

	case *ast.MapUpdateStmt:
		keys, err := c.keyOps(st.Keys)
		if err != nil {
			return nil, err
		}
		get, err := c.getter(st.Rhs)
		if err != nil {
			return nil, err
		}
		field := st.Map
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if err := m.burn(eval.GasMapOp); err != nil {
				return err
			}
			cks, kv := keys(m)
			return m.mapSet(field, cks, kv, get(m))
		}, nil

	case *ast.MapGetStmt:
		return c.mapGetStmt(st, rest)

	case *ast.MapDeleteStmt:
		keys, err := c.keyOps(st.Keys)
		if err != nil {
			return nil, err
		}
		field := st.Map
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if err := m.burn(eval.GasMapOp); err != nil {
				return err
			}
			cks, kv := keys(m)
			return m.mapDelete(field, cks, kv)
		}, nil

	case *ast.ReadBlockchainStmt:
		slot := c.bind(st.Lhs)
		switch st.Name {
		case "BLOCKNUMBER":
			return opReadBlockNumber(slot), nil
		case "TIMESTAMP":
			return opReadTimestamp(slot), nil
		default:
			return nil, fmt.Errorf("unknown blockchain component %s", st.Name)
		}

	case *ast.MatchStmt:
		return c.matchStmt(st)

	case *ast.AcceptStmt:
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			m.res.Accepted = true
			return nil
		}, nil

	case *ast.SendStmt:
		get, err := c.getter(st.Arg)
		if err != nil {
			return nil, err
		}
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if err := m.burn(eval.GasSend); err != nil {
				return err
			}
			msgs, ok := value.ListValues(get(m))
			if !ok {
				return fmt.Errorf("send expects a list of messages")
			}
			for _, mv := range msgs {
				msg, ok := mv.(value.Msg)
				if !ok {
					return fmt.Errorf("send expects messages, got %s", mv.String())
				}
				m.res.Messages = append(m.res.Messages, msg)
			}
			return nil
		}, nil

	case *ast.EventStmt:
		get, err := c.getter(st.Arg)
		if err != nil {
			return nil, err
		}
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if err := m.burn(eval.GasEvent); err != nil {
				return err
			}
			msg, ok := get(m).(value.Msg)
			if !ok {
				return fmt.Errorf("event expects a message payload")
			}
			m.res.Events = append(m.res.Events, msg)
			return nil
		}, nil

	case *ast.ThrowStmt:
		// The interpreter keeps the default "throw" message when the
		// argument is unbound, so an unresolvable argument compiles to
		// the constant form rather than failing.
		if st.Arg == "" {
			return opThrowConst, nil
		}
		get, err := c.getter(st.Arg)
		if err != nil {
			return opThrowConst, nil
		}
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			return &eval.ThrowError{Msg: get(m).String()}
		}, nil
	}
	return nil, fmt.Errorf("unknown statement %T", s)
}

func opThrowConst(m *mach) error {
	if err := m.burn(eval.GasStmt); err != nil {
		return err
	}
	return &eval.ThrowError{Msg: "throw"}
}

// mapGetStmt compiles `x <- m[ks]` / `x <- exists m[ks]`. A plain get
// whose every later use is an Option match is fused: the raw value and
// presence flag are stored unwrapped, and the matches branch on the
// flag, eliding both the Some allocation and the pattern dispatch.
func (c *compiler) mapGetStmt(st *ast.MapGetStmt, rest []ast.Stmt) (stmtOp, error) {
	keys, err := c.keyOps(st.Keys)
	if err != nil {
		return nil, err
	}
	field := st.Map
	if st.Exists {
		slot := c.bind(st.Lhs)
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if err := m.burn(eval.GasMapOp); err != nil {
				return err
			}
			cks, kv := keys(m)
			_, found, err := m.mapGet(field, cks, kv)
			if err != nil {
				return err
			}
			m.slots[slot] = boxedBool(found)
			return nil
		}, nil
	}
	valT, err := c.fieldValueTypeAt(st.Map, len(st.Keys))
	if err != nil {
		return nil, err
	}
	if fuseScan(rest, st.Lhs) {
		c.fastPath = true
		slot := c.bindFused(st.Lhs, valT)
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if err := m.burn(eval.GasMapOp); err != nil {
				return err
			}
			cks, kv := keys(m)
			v, found, err := m.mapGet(field, cks, kv)
			if err != nil {
				return err
			}
			m.slots[slot] = v
			m.ffound[slot] = found
			return nil
		}, nil
	}
	slot := c.bind(st.Lhs)
	targs := []ast.Type{valT}
	noneC := value.Value(value.None(valT))
	return func(m *mach) error {
		if err := m.burn(eval.GasStmt); err != nil {
			return err
		}
		if err := m.burn(eval.GasMapOp); err != nil {
			return err
		}
		cks, kv := keys(m)
		v, found, err := m.mapGet(field, cks, kv)
		if err != nil {
			return err
		}
		if found {
			m.slots[slot] = value.ADT{TypeName: "Option", Constr: "Some", TypeArgs: targs, Args: []value.Value{v}}
		} else {
			m.slots[slot] = noneC
		}
		return nil
	}, nil
}

// matchStmt compiles a statement match: fused Option scrutinees branch
// directly on the presence flag; everything else runs compiled
// pattern matchers in arm order.
func (c *compiler) matchStmt(st *ast.MatchStmt) (stmtOp, error) {
	if b, ok := c.resolve(st.Scrutinee); ok && b.fused {
		someBody, noneBody, err := c.fusedArms(st.Arms, b,
			func(body []ast.Stmt) (any, error) { ops, err := c.block(body); return ops, err })
		if err != nil {
			return nil, err
		}
		fslot, valT := b.slot, b.valT
		noneStr := value.None(valT).String()
		return func(m *mach) error {
			if err := m.burn(eval.GasStmt); err != nil {
				return err
			}
			if m.ffound[fslot] {
				if someBody == nil {
					return &eval.ThrowError{Msg: "no pattern matched value " + value.Some(valT, m.slots[fslot]).String()}
				}
				return runOps(m, someBody.([]stmtOp))
			}
			if noneBody == nil {
				return &eval.ThrowError{Msg: "no pattern matched value " + noneStr}
			}
			return runOps(m, noneBody.([]stmtOp))
		}, nil
	}
	get, err := c.getter(st.Scrutinee)
	if err != nil {
		return nil, err
	}
	type armC struct {
		match matcher
		body  []stmtOp
	}
	arms := make([]armC, len(st.Arms))
	for i := range st.Arms {
		c.push()
		match, err := c.pattern(st.Arms[i].Pat)
		if err != nil {
			c.pop()
			return nil, err
		}
		body, err := c.block(st.Arms[i].Body)
		c.pop()
		if err != nil {
			return nil, err
		}
		arms[i] = armC{match: match, body: body}
	}
	return func(m *mach) error {
		if err := m.burn(eval.GasStmt); err != nil {
			return err
		}
		scrut := get(m)
		for i := range arms {
			if arms[i].match(m, scrut) {
				return runOps(m, arms[i].body)
			}
		}
		return &eval.ThrowError{Msg: fmt.Sprintf("no pattern matched value %s", scrut.String())}
	}, nil
}

// fusedArms selects the Some-taken and None-taken arm of a match over
// a fused Option binding, compiling each selected body with compileBody
// (returns []stmtOp or exprOp depending on the caller). A Some arm's
// binder aliases the fused slot directly.
func (c *compiler) fusedArms(arms []ast.StmtMatchArm, b binding,
	compileBody func([]ast.Stmt) (any, error)) (someBody, noneBody any, err error) {
	someIdx, noneIdx := -1, -1
	var someBinder string
	someBinds := false
	for i := range arms {
		switch pat := arms[i].Pat.(type) {
		case ast.WildPat:
			if someIdx < 0 {
				someIdx = i
			}
			if noneIdx < 0 {
				noneIdx = i
			}
		case ast.ConstrPat:
			switch {
			case pat.Name == "Some" && len(pat.Sub) == 1 && someIdx < 0:
				someIdx = i
				if bp, ok := pat.Sub[0].(ast.BindPat); ok {
					someBinder, someBinds = bp.Name, true
				}
			case pat.Name == "None" && len(pat.Sub) == 0 && noneIdx < 0:
				noneIdx = i
			}
		default:
			// fuseScan only admits Wild/Some/None arms; anything else
			// means the scan and this selector disagree.
			return nil, nil, fmt.Errorf("unexpected fused match arm %T", arms[i].Pat)
		}
	}
	if someIdx >= 0 {
		c.push()
		if someBinds {
			c.bindAlias(someBinder, b.slot)
		}
		someBody, err = compileBody(arms[someIdx].Body)
		c.pop()
		if err != nil {
			return nil, nil, err
		}
	}
	if noneIdx >= 0 {
		c.push()
		noneBody, err = compileBody(arms[noneIdx].Body)
		c.pop()
		if err != nil {
			return nil, nil, err
		}
	}
	return someBody, noneBody, nil
}

func (c *compiler) pattern(p ast.Pattern) (matcher, error) {
	switch pt := p.(type) {
	case ast.WildPat:
		return func(m *mach, v value.Value) bool { return true }, nil
	case ast.BindPat:
		slot := c.bind(pt.Name)
		return func(m *mach, v value.Value) bool {
			m.slots[slot] = v
			return true
		}, nil
	case ast.ConstrPat:
		subs := make([]matcher, len(pt.Sub))
		for i, sp := range pt.Sub {
			sm, err := c.pattern(sp)
			if err != nil {
				return nil, err
			}
			subs[i] = sm
		}
		name := pt.Name
		n := len(pt.Sub)
		return func(m *mach, v value.Value) bool {
			adt, ok := v.(value.ADT)
			if !ok || adt.Constr != name || len(adt.Args) != n {
				return false
			}
			for i, sm := range subs {
				if !sm(m, adt.Args[i]) {
					return false
				}
			}
			return true
		}, nil
	}
	return nil, fmt.Errorf("unknown pattern %T", p)
}

// --- expressions ---

func (c *compiler) expr(e ast.Expr) (exprOp, error) {
	switch ex := e.(type) {
	case *ast.LitExpr:
		// Literal values are immutable; one shared instance replaces
		// the interpreter's per-evaluation FromLiteral allocation.
		cv := value.FromLiteral(ex.Lit)
		return opConst(cv), nil

	case *ast.VarExpr:
		get, err := c.getter(ex.Name)
		if err != nil {
			return nil, err
		}
		return func(m *mach) (value.Value, error) {
			if err := m.burn(eval.GasExpr); err != nil {
				return nil, err
			}
			return get(m), nil
		}, nil

	case *ast.MsgExpr:
		type entryC struct {
			key    string
			isC    bool
			constV value.Value
			get    getter
		}
		entries := make([]entryC, len(ex.Entries))
		for i, en := range ex.Entries {
			if en.IsLit {
				entries[i] = entryC{key: en.Key, isC: true, constV: value.FromLiteral(en.Lit)}
				continue
			}
			g, err := c.getter(en.Var)
			if err != nil {
				return nil, err
			}
			entries[i] = entryC{key: en.Key, get: g}
		}
		n := len(entries)
		return func(m *mach) (value.Value, error) {
			if err := m.burn(eval.GasExpr); err != nil {
				return nil, err
			}
			out := make(map[string]value.Value, n)
			for i := range entries {
				if entries[i].isC {
					out[entries[i].key] = entries[i].constV
				} else {
					out[entries[i].key] = entries[i].get(m)
				}
			}
			return value.Msg{Entries: out}, nil
		}, nil

	case *ast.ConstrExpr:
		return c.constrExpr(ex)

	case *ast.BuiltinExpr:
		return c.builtinExpr(ex)

	case *ast.LetExpr:
		bound, err := c.expr(ex.Bound)
		if err != nil {
			return nil, err
		}
		c.push()
		slot := c.bind(ex.Name)
		body, err := c.expr(ex.Body)
		c.pop()
		if err != nil {
			return nil, err
		}
		return func(m *mach) (value.Value, error) {
			if err := m.burn(eval.GasExpr); err != nil {
				return nil, err
			}
			bv, err := bound(m)
			if err != nil {
				return nil, err
			}
			m.slots[slot] = bv
			return body(m)
		}, nil

	case *ast.FunExpr:
		return c.funExpr(ex)

	case *ast.AppExpr:
		return c.appExpr(ex)

	case *ast.MatchExpr:
		return c.matchExpr(ex)

	case *ast.TFunExpr:
		return c.tfunExpr(ex)

	case *ast.TAppExpr:
		return c.tappExpr(ex)
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func opConst(v value.Value) exprOp {
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		return v, nil
	}
}

func (c *compiler) constrExpr(ex *ast.ConstrExpr) (exprOp, error) {
	if ex.Name == "Emp" {
		kt, vt := ex.TypeArgs[0], ex.TypeArgs[1]
		return func(m *mach) (value.Value, error) {
			if err := m.burn(eval.GasExpr); err != nil {
				return nil, err
			}
			return value.NewMap(kt, vt), nil
		}, nil
	}
	adt := c.in.Checked().Registry.OwnerOfConstr(ex.Name)
	if adt == nil {
		return nil, fmt.Errorf("unknown constructor %s", ex.Name)
	}
	if len(ex.Args) == 0 {
		// Zero-argument constructors are immutable; share one box.
		cv := value.Value(value.ADT{TypeName: adt.Name, Constr: ex.Name, TypeArgs: ex.TypeArgs})
		return opConst(cv), nil
	}
	gets, err := c.getters(ex.Args)
	if err != nil {
		return nil, err
	}
	typeName, constr, targs := adt.Name, ex.Name, ex.TypeArgs
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		args := make([]value.Value, len(gets))
		for i, g := range gets {
			args[i] = g(m)
		}
		return value.ADT{TypeName: typeName, Constr: constr, TypeArgs: targs, Args: args}, nil
	}, nil
}

// matchExpr compiles an expression match, with the same fused-Option
// specialisation as matchStmt.
func (c *compiler) matchExpr(ex *ast.MatchExpr) (exprOp, error) {
	if b, ok := c.resolve(ex.Scrutinee); ok && b.fused {
		stmtArms := make([]ast.StmtMatchArm, len(ex.Arms))
		for i := range ex.Arms {
			stmtArms[i] = ast.StmtMatchArm{Pat: ex.Arms[i].Pat}
		}
		// Reuse fusedArms for arm selection; bodies are compiled as
		// expressions via the index captured per call.
		someIdx, noneIdx := -1, -1
		var someBinder string
		someBinds := false
		for i := range ex.Arms {
			switch pat := ex.Arms[i].Pat.(type) {
			case ast.WildPat:
				if someIdx < 0 {
					someIdx = i
				}
				if noneIdx < 0 {
					noneIdx = i
				}
			case ast.ConstrPat:
				switch {
				case pat.Name == "Some" && len(pat.Sub) == 1 && someIdx < 0:
					someIdx = i
					if bp, ok := pat.Sub[0].(ast.BindPat); ok {
						someBinder, someBinds = bp.Name, true
					}
				case pat.Name == "None" && len(pat.Sub) == 0 && noneIdx < 0:
					noneIdx = i
				}
			default:
				return nil, fmt.Errorf("unexpected fused match arm %T", ex.Arms[i].Pat)
			}
		}
		var someBody, noneBody exprOp
		var err error
		if someIdx >= 0 {
			c.push()
			if someBinds {
				c.bindAlias(someBinder, b.slot)
			}
			someBody, err = c.expr(ex.Arms[someIdx].Body)
			c.pop()
			if err != nil {
				return nil, err
			}
		}
		if noneIdx >= 0 {
			c.push()
			noneBody, err = c.expr(ex.Arms[noneIdx].Body)
			c.pop()
			if err != nil {
				return nil, err
			}
		}
		fslot, valT := b.slot, b.valT
		noneStr := value.None(valT).String()
		return func(m *mach) (value.Value, error) {
			if err := m.burn(eval.GasExpr); err != nil {
				return nil, err
			}
			if m.ffound[fslot] {
				if someBody == nil {
					return nil, &eval.ThrowError{Msg: "no pattern matched value " + value.Some(valT, m.slots[fslot]).String()}
				}
				return someBody(m)
			}
			if noneBody == nil {
				return nil, &eval.ThrowError{Msg: "no pattern matched value " + noneStr}
			}
			return noneBody(m)
		}, nil
	}
	get, err := c.getter(ex.Scrutinee)
	if err != nil {
		return nil, err
	}
	type armC struct {
		match matcher
		body  exprOp
	}
	arms := make([]armC, len(ex.Arms))
	for i := range ex.Arms {
		c.push()
		match, err := c.pattern(ex.Arms[i].Pat)
		if err != nil {
			c.pop()
			return nil, err
		}
		body, err := c.expr(ex.Arms[i].Body)
		c.pop()
		if err != nil {
			return nil, err
		}
		arms[i] = armC{match: match, body: body}
	}
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		scrut := get(m)
		for i := range arms {
			if arms[i].match(m, scrut) {
				return arms[i].body(m)
			}
		}
		return nil, &eval.ThrowError{Msg: fmt.Sprintf("no pattern matched value %s", scrut.String())}
	}, nil
}

// funExpr materialises a closure with a snapshot of the current scope
// (the interpreter captures its environment chain by reference; the
// sawRebind guard forces a fallback whenever that difference could be
// observed).
func (c *compiler) funExpr(ex *ast.FunExpr) (exprOp, error) {
	c.hasLambda = true
	caps, err := c.captures()
	if err != nil {
		return nil, err
	}
	libEnv := c.in.LibEnv()
	param, paramT, body := ex.Param, ex.ParamType, ex.Body
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		env := value.NewEnv(libEnv)
		for i := range caps {
			env.Bind(caps[i].name, caps[i].get(m))
		}
		return &value.Closure{Param: param, ParamType: paramT, Body: body, Env: env}, nil
	}, nil
}

func (c *compiler) tfunExpr(ex *ast.TFunExpr) (exprOp, error) {
	c.hasLambda = true
	caps, err := c.captures()
	if err != nil {
		return nil, err
	}
	libEnv := c.in.LibEnv()
	tvar, body := ex.TVar, ex.Body
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		env := value.NewEnv(libEnv)
		for i := range caps {
			env.Bind(caps[i].name, caps[i].get(m))
		}
		return &value.TClosure{TVar: tvar, Body: body, Env: env}, nil
	}, nil
}

type capture struct {
	name string
	get  getter
}

// captures snapshots every binding in scope, outermost frame first so
// inner shadowing wins when bound into the flat environment frame.
func (c *compiler) captures() ([]capture, error) {
	var out []capture
	for _, f := range c.frames {
		for name, b := range f {
			slot := b.slot
			if b.fused {
				out = append(out, capture{name: name, get: materialiser(slot, b.valT)})
				continue
			}
			out = append(out, capture{name: name, get: func(m *mach) value.Value { return m.slots[slot] }})
		}
	}
	return out, nil
}

func (c *compiler) appExpr(ex *ast.AppExpr) (exprOp, error) {
	if op, ok, err := c.inlineApp(ex); err != nil {
		return nil, err
	} else if ok {
		return op, nil
	}
	fnGet, err := c.getter(ex.Func)
	if err != nil {
		return nil, err
	}
	argGets, err := c.getters(ex.Args)
	if err != nil {
		return nil, err
	}
	in := c.in
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		cur := fnGet(m)
		for _, g := range argGets {
			var err error
			cur, err = in.Apply(m.ctx, cur, g(m))
			if err != nil {
				return nil, err
			}
		}
		return cur, nil
	}, nil
}

// inlineApp compiles a saturated application of a statically-known
// library closure by inlining the closure bodies. Gas is charged at
// the interpreter's exact sequence points: one unit at the App node,
// one per application, and one per intermediate lambda node evaluated
// while peeling.
func (c *compiler) inlineApp(ex *ast.AppExpr) (exprOp, bool, error) {
	if _, shadowed := c.resolve(ex.Func); shadowed {
		return nil, false, nil
	}
	fv, ok := c.in.LibValue(ex.Func)
	if !ok {
		return nil, false, nil
	}
	cl, ok := fv.(*value.Closure)
	if !ok || cl.Env != c.in.LibEnv() {
		return nil, false, nil
	}
	// Collect the lambda chain: params[i] receives args[i]; bodies in
	// between must be lambda nodes (each costs one gas when evaluated).
	params := []string{cl.Param}
	body := cl.Body
	for i := 1; i < len(ex.Args); i++ {
		fe, ok := body.(*ast.FunExpr)
		if !ok {
			return nil, false, nil
		}
		params = append(params, fe.Param)
		body = fe.Body
	}
	argGets, err := c.getters(ex.Args)
	if err != nil {
		return nil, false, err
	}
	// The inlined body sees only its own parameters and the library
	// environment — never the caller's locals.
	saved := c.frames
	c.frames = nil
	c.push()
	argSlots := make([]int, len(params))
	for i, pn := range params {
		argSlots[i] = c.bind(pn)
	}
	bodyOp, err := c.expr(body)
	c.frames = saved
	if err != nil {
		// The body may contain constructs the compiler does not
		// support; fall back to the generic application loop.
		return nil, false, nil
	}
	n := len(ex.Args)
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			// One application step per argument...
			if err := m.burn(eval.GasExpr); err != nil {
				return nil, err
			}
			m.slots[argSlots[i]] = argGets[i](m)
			if i < n-1 {
				// ...and one lambda-node evaluation between steps.
				if err := m.burn(eval.GasExpr); err != nil {
					return nil, err
				}
			}
		}
		return bodyOp(m)
	}, true, nil
}

func (c *compiler) tappExpr(ex *ast.TAppExpr) (exprOp, error) {
	if _, local := c.resolve(ex.Name); !local {
		if fv, ok := c.in.LibValue(ex.Name); ok {
			if nv, isNative := fv.(*value.Native); isNative {
				// Native type application is pure and gas-free beyond
				// the node itself; precompute the instantiation.
				cur := value.Value(nv)
				for _, ta := range ex.TypeArgs {
					cur = cur.(*value.Native).WithTypeArgs([]ast.Type{ta})
				}
				return opConst(cur), nil
			}
		}
	}
	get, err := c.getter(ex.Name)
	if err != nil {
		return nil, err
	}
	in := c.in
	name, targs := ex.Name, ex.TypeArgs
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		return in.TApply(m.ctx, name, get(m), targs)
	}, nil
}

// builtinExpr compiles a builtin application. Integer arithmetic and
// comparisons — the entire hot path of transfer-shaped transitions —
// get allocation-free specialisations; everything else (and every
// non-happy case) delegates to the stdlib for exact error behaviour.
func (c *compiler) builtinExpr(ex *ast.BuiltinExpr) (exprOp, error) {
	gets, err := c.getters(ex.Args)
	if err != nil {
		return nil, err
	}
	if len(ex.Args) == 2 {
		g0, g1 := gets[0], gets[1]
		switch ex.Name {
		case "add":
			return opArith(g0, g1, "add", true), nil
		case "sub":
			return opArith(g0, g1, "sub", false), nil
		case "lt", "le", "gt", "ge":
			return opCmp(g0, g1, ex.Name), nil
		case "eq":
			return func(m *mach) (value.Value, error) {
				if err := m.burn(eval.GasExpr); err != nil {
					return nil, err
				}
				if err := m.burn(eval.GasBuiltin); err != nil {
					return nil, err
				}
				return boxedBool(value.Equal(g0(m), g1(m))), nil
			}, nil
		}
	}
	if len(gets) > len((*mach)(nil).argBuf) {
		return nil, fmt.Errorf("builtin %s arity %d exceeds machine arg buffer", ex.Name, len(gets))
	}
	name := ex.Name
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		if err := m.burn(eval.GasBuiltin); err != nil {
			return nil, err
		}
		args := m.argBuf[:len(gets)]
		for i, g := range gets {
			args[i] = g(m)
		}
		return evalBuiltin(name, args)
	}, nil
}

// evalBuiltin delegates to the stdlib and applies the interpreter's
// RuntimeError-to-ThrowError wrapping.
func evalBuiltin(name string, args []value.Value) (value.Value, error) {
	v, err := stdlib.Eval(name, args)
	if err != nil {
		if rt, ok := err.(*stdlib.RuntimeError); ok {
			return nil, &eval.ThrowError{Msg: rt.Msg}
		}
		return nil, err
	}
	return v, nil
}

// opArith is the fused add/sub fast path: same-kind integer operands
// compute into a slab cell, so the only allocation is the result box.
func opArith(g0, g1 getter, name string, isAdd bool) exprOp {
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		if err := m.burn(eval.GasBuiltin); err != nil {
			return nil, err
		}
		a := g0(m)
		b := g1(m)
		ai, ok1 := a.(value.Int)
		bi, ok2 := b.(value.Int)
		if !ok1 || !ok2 || ai.Ty.Kind != bi.Ty.Kind {
			m.argBuf[0], m.argBuf[1] = a, b
			return evalBuiltin(name, m.argBuf[:2])
		}
		bx := m.nextBox()
		bx.bi.SetBits(bx.w[:0])
		if isAdd {
			bx.bi.Add(ai.V, bi.V)
		} else {
			bx.bi.Sub(ai.V, bi.V)
		}
		if !ast.InRange(ai.Ty, &bx.bi) {
			return nil, &eval.ThrowError{Msg: fmt.Sprintf("integer overflow in %s on %s", name, ai.Ty)}
		}
		return value.Int{Ty: ai.Ty, V: &bx.bi}, nil
	}
}

// opCmp is the fused comparison fast path, returning shared Bool boxes.
func opCmp(g0, g1 getter, name string) exprOp {
	return func(m *mach) (value.Value, error) {
		if err := m.burn(eval.GasExpr); err != nil {
			return nil, err
		}
		if err := m.burn(eval.GasBuiltin); err != nil {
			return nil, err
		}
		a := g0(m)
		b := g1(m)
		ai, ok1 := a.(value.Int)
		bi, ok2 := b.(value.Int)
		if !ok1 || !ok2 {
			m.argBuf[0], m.argBuf[1] = a, b
			return evalBuiltin(name, m.argBuf[:2])
		}
		cmp := ai.V.Cmp(bi.V)
		switch name {
		case "lt":
			return boxedBool(cmp < 0), nil
		case "le":
			return boxedBool(cmp <= 0), nil
		case "gt":
			return boxedBool(cmp > 0), nil
		default:
			return boxedBool(cmp >= 0), nil
		}
	}
}
