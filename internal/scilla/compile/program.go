// Package compile lowers typechecked Scilla transitions into chains
// of Go closures executed against fixed slot frames. All name lookups,
// field value types, map key canonicalisation, and pattern-match
// shapes are resolved once at compile time, so the execute path walks
// no AST and consults no map[string]value.Value environments. Gas is
// charged at exactly the interpreter's sequence points, making
// compiled execution bit-identical to eval.Interpreter.Run — including
// the final GasUsed of a transaction that aborts mid-transition.
//
// Compilation is best-effort per transition: any construct the
// compiler cannot statically resolve makes that one transition fall
// back to the interpreter, never changing observable behaviour.
package compile

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

type (
	// stmtOp executes one compiled statement against the machine.
	stmtOp func(m *mach) error
	// exprOp evaluates one compiled expression.
	exprOp func(m *mach) (value.Value, error)
	// getter reads an already-bound value; it cannot fail because the
	// compiler only emits getters for statically-resolved names.
	getter func(m *mach) value.Value
	// matcher tries a compiled pattern against a value, binding
	// sub-patterns into the machine's slots on success.
	matcher func(m *mach, v value.Value) bool
)

// paramSpec is one declared transition parameter with its target slot.
type paramSpec struct {
	name string
	ty   ast.Type
	slot int
}

// proc is one compiled transition.
type proc struct {
	name   string
	params []paramSpec
	code   []stmtOp
	// fastPath reports that at least one Option fusion engaged (the
	// load-guard-update shape of transfer-like transitions).
	fastPath bool
}

// Program holds the compiled form of one contract: a per-transition
// compiled-procedure cache plus a pool of execution machines. A
// Program is immutable after New and safe for concurrent use; each
// Run checks a machine out of the pool.
type Program struct {
	in       *eval.Interpreter
	procs    map[string]*proc
	fallback []string // transitions that could not be compiled
	maxSlots int
	pool     sync.Pool

	fastRuns     atomic.Uint64
	genericRuns  atomic.Uint64
	fallbackRuns atomic.Uint64
	poolGets     atomic.Uint64
	poolNews     atomic.Uint64
}

// New compiles every transition of the interpreter's contract. It
// never fails: transitions that cannot be compiled are recorded as
// fallbacks and served by the interpreter at run time.
func New(in *eval.Interpreter) *Program {
	p := &Program{in: in, procs: make(map[string]*proc)}
	contract := &in.Checked().Module.Contract
	for i := range contract.Transitions {
		tr := &contract.Transitions[i]
		pr, nslots, err := compileTransition(in, tr)
		if err != nil {
			p.fallback = append(p.fallback, tr.Name)
			continue
		}
		p.procs[tr.Name] = pr
		if nslots > p.maxSlots {
			p.maxSlots = nslots
		}
	}
	p.pool.New = func() any {
		p.poolNews.Add(1)
		return &mach{
			slots:  make([]value.Value, p.maxSlots),
			ffound: make([]bool, p.maxSlots),
			cks:    make([]string, 0, 4),
			keyBuf: make([]value.Value, 0, 4),
			ikeys:  make(map[string]string),
		}
	}
	return p
}

// Run executes the named transition, charging gas and producing
// results bit-identically to (*eval.Interpreter).Run. The Result is
// returned by value so pooled machine state is never aliased by the
// caller.
func (p *Program) Run(ctx *eval.Context, transition string, args map[string]value.Value) (eval.Result, error) {
	pr := p.procs[transition]
	if pr == nil {
		p.fallbackRuns.Add(1)
		r, err := p.in.Run(ctx, transition, args)
		if err != nil {
			return eval.Result{}, err
		}
		return *r, nil
	}
	ctx.GasUsed = 0
	p.poolGets.Add(1)
	m := p.pool.Get().(*mach)
	m.ctx = ctx
	m.keyed, m.haveKeyed = ctx.State.(eval.KeyedState)
	m.slots[slotSender] = boxByStr(&m.senderRaw, &m.senderBox, ctx.Sender)
	m.slots[slotOrigin] = boxByStr(&m.originRaw, &m.originBox, ctx.Origin)
	m.slots[slotAmount] = m.boxAmount(ctx.Amount)
	for i := range pr.params {
		ps := &pr.params[i]
		v, ok := args[ps.name]
		if !ok {
			m.clearForPool()
			p.pool.Put(m)
			return eval.Result{}, fmt.Errorf("missing argument %s for transition %s", ps.name, transition)
		}
		if !v.Type().Equal(ps.ty) {
			m.clearForPool()
			p.pool.Put(m)
			return eval.Result{}, fmt.Errorf("argument %s has type %s, want %s", ps.name, v.Type(), ps.ty)
		}
		m.slots[ps.slot] = v
	}
	err := runOps(m, pr.code)
	res := m.res
	m.clearForPool()
	p.pool.Put(m)
	if err != nil {
		return eval.Result{}, err
	}
	res.GasUsed = ctx.GasUsed
	if pr.fastPath {
		p.fastRuns.Add(1)
	} else {
		p.genericRuns.Add(1)
	}
	return res, nil
}

// CompiledTransition reports whether the named transition runs
// compiled, and whether its compiled form engaged a fused fast path.
func (p *Program) CompiledTransition(name string) (compiled, fastPath bool) {
	pr := p.procs[name]
	if pr == nil {
		return false, false
	}
	return true, pr.fastPath
}

// CompileCounts summarises the compile-time outcome: transitions
// compiled, transitions falling back to the interpreter, and compiled
// transitions with a fused fast path.
func (p *Program) CompileCounts() (compiled, fallbacks, fastPaths int) {
	for _, pr := range p.procs {
		if pr.fastPath {
			fastPaths++
		}
	}
	return len(p.procs), len(p.fallback), fastPaths
}

// RuntimeStats are cumulative execution counters; see DrainStats.
type RuntimeStats struct {
	FastRuns     uint64 // runs served by a compiled proc with a fused fast path
	GenericRuns  uint64 // runs served by a compiled proc without fusion
	FallbackRuns uint64 // runs served by the interpreter fallback
	PoolRecycles uint64 // machine checkouts served by reuse rather than allocation
}

// DrainStats atomically swaps the runtime counters to zero and returns
// the drained values, for periodic metric collection.
func (p *Program) DrainStats() RuntimeStats {
	gets := p.poolGets.Swap(0)
	news := p.poolNews.Swap(0)
	recycles := uint64(0)
	if gets > news {
		recycles = gets - news
	}
	return RuntimeStats{
		FastRuns:     p.fastRuns.Swap(0),
		GenericRuns:  p.genericRuns.Swap(0),
		FallbackRuns: p.fallbackRuns.Swap(0),
		PoolRecycles: recycles,
	}
}
