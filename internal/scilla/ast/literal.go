package ast

import (
	"fmt"
	"math/big"
	"strings"
)

// Literal is a Scilla literal: a typed integer, a string, a byte string,
// or a block number.
type Literal struct {
	Type PrimType
	// Int holds the value for integer and BNum literals.
	Int *big.Int
	// Str holds the value for string literals.
	Str string
	// Bytes holds the value for ByStr* literals.
	Bytes []byte
}

// IntLit builds an integer literal of the given primitive type.
func IntLit(t PrimType, v int64) Literal {
	return Literal{Type: t, Int: big.NewInt(v)}
}

// BigIntLit builds an integer literal from a big.Int (not copied).
func BigIntLit(t PrimType, v *big.Int) Literal {
	return Literal{Type: t, Int: v}
}

// StrLit builds a string literal.
func StrLit(s string) Literal {
	return Literal{Type: TyString, Str: s}
}

// ByStrLit builds a byte-string literal, choosing ByStr20/ByStr32/ByStr
// based on length.
func ByStrLit(b []byte) Literal {
	t := TyByStr
	switch len(b) {
	case 20:
		t = TyByStr20
	case 32:
		t = TyByStr32
	}
	return Literal{Type: t, Bytes: b}
}

// BNumLit builds a block-number literal.
func BNumLit(v int64) Literal {
	return Literal{Type: TyBNum, Int: big.NewInt(v)}
}

// String renders the literal in Scilla surface syntax.
func (l Literal) String() string {
	switch {
	case l.Type.IsInt():
		return fmt.Sprintf("%s %s", l.Type.String(), l.Int.String())
	case l.Type.Kind == StringKind:
		return fmt.Sprintf("%q", l.Str)
	case l.Type.Kind == BNum:
		return fmt.Sprintf("BNum %s", l.Int.String())
	default:
		var sb strings.Builder
		sb.WriteString("0x")
		for _, b := range l.Bytes {
			fmt.Fprintf(&sb, "%02x", b)
		}
		return sb.String()
	}
}

// Equal reports deep equality of two literals.
func (l Literal) Equal(o Literal) bool {
	if !l.Type.Equal(o.Type) {
		return false
	}
	switch {
	case l.Int != nil && o.Int != nil:
		return l.Int.Cmp(o.Int) == 0
	case l.Int != nil || o.Int != nil:
		return false
	case l.Type.Kind == StringKind:
		return l.Str == o.Str
	default:
		return string(l.Bytes) == string(o.Bytes)
	}
}

// MinInt returns the minimum representable value of an integer primitive.
func MinInt(t PrimType) *big.Int {
	if !t.IsSigned() {
		return big.NewInt(0)
	}
	// -(2^(w-1))
	v := new(big.Int).Lsh(big.NewInt(1), uint(t.IntWidth()-1))
	return v.Neg(v)
}

// MaxInt returns the maximum representable value of an integer primitive.
func MaxInt(t PrimType) *big.Int {
	w := uint(t.IntWidth())
	if t.IsSigned() {
		w--
	}
	v := new(big.Int).Lsh(big.NewInt(1), w)
	return v.Sub(v, big.NewInt(1))
}

// intBounds caches per-kind range bounds so the hot range check after
// every arithmetic builtin does not rebuild two big.Ints. The cached
// values are never handed out; MinInt/MaxInt still return fresh copies.
var intBounds [UnitKind + 1]struct{ min, max *big.Int }

func init() {
	for _, t := range []PrimType{TyInt32, TyInt64, TyInt128, TyInt256, TyUint32, TyUint64, TyUint128, TyUint256} {
		intBounds[t.Kind].min = MinInt(t)
		intBounds[t.Kind].max = MaxInt(t)
	}
}

// InRange reports whether v fits in integer primitive t.
func InRange(t PrimType, v *big.Int) bool {
	b := &intBounds[t.Kind]
	if b.min == nil {
		return v.Cmp(MinInt(t)) >= 0 && v.Cmp(MaxInt(t)) <= 0
	}
	return v.Cmp(b.min) >= 0 && v.Cmp(b.max) <= 0
}
