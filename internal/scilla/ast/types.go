// Package ast defines the abstract syntax of the Scilla subset used
// throughout this repository: types, literals, expressions, statements,
// and contract modules. The subset follows Fig. 4 of the CoSplit paper
// (Pîrlea, Kumar, Sergey; PLDI 2021).
package ast

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all Scilla types.
type Type interface {
	typ()
	// String renders the type in Scilla surface syntax.
	String() string
	// Equal reports structural type equality.
	Equal(other Type) bool
}

// PrimKind enumerates the primitive types of the subset.
type PrimKind int

// Primitive type kinds.
const (
	Int32 PrimKind = iota
	Int64
	Int128
	Int256
	Uint32
	Uint64
	Uint128
	Uint256
	StringKind
	ByStr20
	ByStr32
	ByStr // arbitrary-length byte string
	BNum  // block number
	MsgKind
	EventKind
	UnitKind
)

// PrimType is a primitive (non-compound) type.
type PrimType struct {
	Kind PrimKind
}

func (PrimType) typ() {}

// IsInt reports whether the primitive is a (signed or unsigned) integer.
func (p PrimType) IsInt() bool {
	switch p.Kind {
	case Int32, Int64, Int128, Int256, Uint32, Uint64, Uint128, Uint256:
		return true
	}
	return false
}

// IsSigned reports whether the primitive is a signed integer type.
func (p PrimType) IsSigned() bool {
	switch p.Kind {
	case Int32, Int64, Int128, Int256:
		return true
	}
	return false
}

// IntWidth returns the bit width of an integer primitive, or 0.
func (p PrimType) IntWidth() int {
	switch p.Kind {
	case Int32, Uint32:
		return 32
	case Int64, Uint64:
		return 64
	case Int128, Uint128:
		return 128
	case Int256, Uint256:
		return 256
	}
	return 0
}

func (p PrimType) String() string {
	switch p.Kind {
	case Int32:
		return "Int32"
	case Int64:
		return "Int64"
	case Int128:
		return "Int128"
	case Int256:
		return "Int256"
	case Uint32:
		return "Uint32"
	case Uint64:
		return "Uint64"
	case Uint128:
		return "Uint128"
	case Uint256:
		return "Uint256"
	case StringKind:
		return "String"
	case ByStr20:
		return "ByStr20"
	case ByStr32:
		return "ByStr32"
	case ByStr:
		return "ByStr"
	case BNum:
		return "BNum"
	case MsgKind:
		return "Message"
	case EventKind:
		return "Event"
	case UnitKind:
		return "Unit"
	}
	return fmt.Sprintf("Prim(%d)", int(p.Kind))
}

// Equal implements Type.
func (p PrimType) Equal(other Type) bool {
	o, ok := other.(PrimType)
	return ok && o.Kind == p.Kind
}

// MapType is the type of mutable key-value maps, `Map kt vt`.
type MapType struct {
	Key Type
	Val Type
}

func (MapType) typ() {}

func (m MapType) String() string {
	return fmt.Sprintf("Map %s %s", parens(m.Key), parens(m.Val))
}

// Equal implements Type.
func (m MapType) Equal(other Type) bool {
	o, ok := other.(MapType)
	return ok && m.Key.Equal(o.Key) && m.Val.Equal(o.Val)
}

// FunType is the type of pure functions, `at -> rt`.
type FunType struct {
	Arg Type
	Ret Type
}

func (FunType) typ() {}

func (f FunType) String() string {
	return fmt.Sprintf("%s -> %s", parens(f.Arg), f.Ret.String())
}

// Equal implements Type.
func (f FunType) Equal(other Type) bool {
	o, ok := other.(FunType)
	return ok && f.Arg.Equal(o.Arg) && f.Ret.Equal(o.Ret)
}

// ADTType is an applied algebraic data type such as `Bool`,
// `Option Uint128`, or a user-defined type.
type ADTType struct {
	Name string
	Args []Type
}

func (ADTType) typ() {}

func (a ADTType) String() string {
	if len(a.Args) == 0 {
		return a.Name
	}
	parts := make([]string, 0, len(a.Args)+1)
	parts = append(parts, a.Name)
	for _, t := range a.Args {
		parts = append(parts, parens(t))
	}
	return strings.Join(parts, " ")
}

// Equal implements Type.
func (a ADTType) Equal(other Type) bool {
	o, ok := other.(ADTType)
	if !ok || o.Name != a.Name || len(o.Args) != len(a.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// TypeVar is a type variable bound by a tfun.
type TypeVar struct {
	Name string
}

func (TypeVar) typ() {}

func (v TypeVar) String() string { return v.Name }

// Equal implements Type.
func (v TypeVar) Equal(other Type) bool {
	o, ok := other.(TypeVar)
	return ok && o.Name == v.Name
}

// PolyType is the type of a type abstraction, `forall 'A. t`.
type PolyType struct {
	Var  string
	Body Type
}

func (PolyType) typ() {}

func (p PolyType) String() string {
	return fmt.Sprintf("forall %s. %s", p.Var, p.Body.String())
}

// Equal implements Type (alpha-equivalence up to identical binder names).
func (p PolyType) Equal(other Type) bool {
	o, ok := other.(PolyType)
	if !ok {
		return false
	}
	if p.Var == o.Var {
		return p.Body.Equal(o.Body)
	}
	fresh := TypeVar{Name: "'#eq"}
	return SubstType(p.Body, p.Var, fresh).Equal(SubstType(o.Body, o.Var, fresh))
}

// parens wraps compound types in parentheses for printing.
func parens(t Type) string {
	switch t.(type) {
	case MapType, FunType, PolyType:
		return "(" + t.String() + ")"
	case ADTType:
		if len(t.(ADTType).Args) > 0 {
			return "(" + t.String() + ")"
		}
	}
	return t.String()
}

// SubstType substitutes type variable v with replacement r in t.
func SubstType(t Type, v string, r Type) Type {
	switch tt := t.(type) {
	case PrimType:
		return tt
	case TypeVar:
		if tt.Name == v {
			return r
		}
		return tt
	case MapType:
		return MapType{Key: SubstType(tt.Key, v, r), Val: SubstType(tt.Val, v, r)}
	case FunType:
		return FunType{Arg: SubstType(tt.Arg, v, r), Ret: SubstType(tt.Ret, v, r)}
	case ADTType:
		args := make([]Type, len(tt.Args))
		for i, a := range tt.Args {
			args[i] = SubstType(a, v, r)
		}
		return ADTType{Name: tt.Name, Args: args}
	case PolyType:
		if tt.Var == v {
			return tt // shadowed
		}
		return PolyType{Var: tt.Var, Body: SubstType(tt.Body, v, r)}
	}
	return t
}

// Convenience constructors for commonly used types.
var (
	TyInt32   = PrimType{Kind: Int32}
	TyInt64   = PrimType{Kind: Int64}
	TyInt128  = PrimType{Kind: Int128}
	TyInt256  = PrimType{Kind: Int256}
	TyUint32  = PrimType{Kind: Uint32}
	TyUint64  = PrimType{Kind: Uint64}
	TyUint128 = PrimType{Kind: Uint128}
	TyUint256 = PrimType{Kind: Uint256}
	TyString  = PrimType{Kind: StringKind}
	TyByStr20 = PrimType{Kind: ByStr20}
	TyByStr32 = PrimType{Kind: ByStr32}
	TyByStr   = PrimType{Kind: ByStr}
	TyBNum    = PrimType{Kind: BNum}
	TyMessage = PrimType{Kind: MsgKind}
	TyEvent   = PrimType{Kind: EventKind}
	TyUnit    = PrimType{Kind: UnitKind}
)

// TyBool is the builtin Bool ADT type.
var TyBool = ADTType{Name: "Bool"}

// TyOption applies the builtin Option ADT to an element type.
func TyOption(t Type) ADTType { return ADTType{Name: "Option", Args: []Type{t}} }

// TyList applies the builtin List ADT to an element type.
func TyList(t Type) ADTType { return ADTType{Name: "List", Args: []Type{t}} }

// TyPair applies the builtin Pair ADT to two element types.
func TyPair(a, b Type) ADTType { return ADTType{Name: "Pair", Args: []Type{a, b}} }

// PrimTypeByName resolves a primitive type name; ok is false if unknown.
func PrimTypeByName(name string) (PrimType, bool) {
	switch name {
	case "Int32":
		return TyInt32, true
	case "Int64":
		return TyInt64, true
	case "Int128":
		return TyInt128, true
	case "Int256":
		return TyInt256, true
	case "Uint32":
		return TyUint32, true
	case "Uint64":
		return TyUint64, true
	case "Uint128":
		return TyUint128, true
	case "Uint256":
		return TyUint256, true
	case "String":
		return TyString, true
	case "ByStr20":
		return TyByStr20, true
	case "ByStr32":
		return TyByStr32, true
	case "ByStr":
		return TyByStr, true
	case "BNum":
		return TyBNum, true
	case "Message":
		return TyMessage, true
	case "Event":
		return TyEvent, true
	case "Unit":
		return TyUnit, true
	}
	return PrimType{}, false
}
