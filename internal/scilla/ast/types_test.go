package ast_test

import (
	"math/big"
	"testing"

	"cosplit/internal/scilla/ast"
)

func TestTypeStrings(t *testing.T) {
	cases := map[string]ast.Type{
		"Uint128":                          ast.TyUint128,
		"Map ByStr20 Uint128":              ast.MapType{Key: ast.TyByStr20, Val: ast.TyUint128},
		"Map ByStr20 (Map String Uint128)": ast.MapType{Key: ast.TyByStr20, Val: ast.MapType{Key: ast.TyString, Val: ast.TyUint128}},
		"Option Uint32":                    ast.TyOption(ast.TyUint32),
		"List (Pair ByStr20 Uint128)":      ast.TyList(ast.TyPair(ast.TyByStr20, ast.TyUint128)),
		"Uint128 -> Bool":                  ast.FunType{Arg: ast.TyUint128, Ret: ast.TyBool},
		"(Uint128 -> Bool) -> Uint128":     ast.FunType{Arg: ast.FunType{Arg: ast.TyUint128, Ret: ast.TyBool}, Ret: ast.TyUint128},
		"forall 'A. List 'A":               ast.PolyType{Var: "'A", Body: ast.TyList(ast.TypeVar{Name: "'A"})},
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	a := ast.MapType{Key: ast.TyByStr20, Val: ast.TyUint128}
	b := ast.MapType{Key: ast.TyByStr20, Val: ast.TyUint128}
	if !a.Equal(b) {
		t.Error("identical map types unequal")
	}
	if a.Equal(ast.MapType{Key: ast.TyByStr20, Val: ast.TyUint32}) {
		t.Error("different map types equal")
	}
	if ast.TyUint128.Equal(ast.TyInt128) {
		t.Error("signedness ignored")
	}
	if !ast.TyOption(ast.TyUint128).Equal(ast.TyOption(ast.TyUint128)) {
		t.Error("option types unequal")
	}
	if ast.TyOption(ast.TyUint128).Equal(ast.TyList(ast.TyUint128)) {
		t.Error("different ADTs equal")
	}
}

func TestPolyAlphaEquivalence(t *testing.T) {
	a := ast.PolyType{Var: "'A", Body: ast.TyList(ast.TypeVar{Name: "'A"})}
	b := ast.PolyType{Var: "'B", Body: ast.TyList(ast.TypeVar{Name: "'B"})}
	if !a.Equal(b) {
		t.Error("alpha-equivalent polytypes unequal")
	}
	c := ast.PolyType{Var: "'B", Body: ast.TyList(ast.TypeVar{Name: "'C"})}
	if a.Equal(c) {
		t.Error("non-equivalent polytypes equal")
	}
}

func TestSubstType(t *testing.T) {
	tv := ast.TypeVar{Name: "'A"}
	body := ast.FunType{Arg: tv, Ret: ast.TyList(tv)}
	got := ast.SubstType(body, "'A", ast.TyUint128)
	want := "Uint128 -> List Uint128"
	if got.String() != want {
		t.Errorf("SubstType = %s, want %s", got, want)
	}
	// Shadowed binders are untouched.
	shadow := ast.PolyType{Var: "'A", Body: tv}
	got2 := ast.SubstType(shadow, "'A", ast.TyUint128)
	if got2.String() != "forall 'A. 'A" {
		t.Errorf("shadowed substitution = %s", got2)
	}
}

func TestIntPrimProperties(t *testing.T) {
	for _, c := range []struct {
		ty     ast.PrimType
		width  int
		signed bool
	}{
		{ast.TyInt32, 32, true},
		{ast.TyInt64, 64, true},
		{ast.TyInt128, 128, true},
		{ast.TyInt256, 256, true},
		{ast.TyUint32, 32, false},
		{ast.TyUint64, 64, false},
		{ast.TyUint128, 128, false},
		{ast.TyUint256, 256, false},
	} {
		if !c.ty.IsInt() {
			t.Errorf("%s not an int", c.ty)
		}
		if c.ty.IntWidth() != c.width {
			t.Errorf("%s width = %d", c.ty, c.ty.IntWidth())
		}
		if c.ty.IsSigned() != c.signed {
			t.Errorf("%s signedness wrong", c.ty)
		}
		// MIN <= 0 <= MAX and the bounds are in range.
		if !ast.InRange(c.ty, big.NewInt(0)) {
			t.Errorf("0 out of range for %s", c.ty)
		}
		if !ast.InRange(c.ty, ast.MaxInt(c.ty)) || !ast.InRange(c.ty, ast.MinInt(c.ty)) {
			t.Errorf("bounds out of range for %s", c.ty)
		}
		over := new(big.Int).Add(ast.MaxInt(c.ty), big.NewInt(1))
		if ast.InRange(c.ty, over) {
			t.Errorf("MAX+1 in range for %s", c.ty)
		}
	}
	if ast.TyString.IsInt() || ast.TyBNum.IsInt() {
		t.Error("non-int prims reported as int")
	}
}

func TestPrimTypeByName(t *testing.T) {
	for _, name := range []string{"Int32", "Uint256", "String", "ByStr20", "BNum", "Message"} {
		p, ok := ast.PrimTypeByName(name)
		if !ok || p.String() != name {
			t.Errorf("PrimTypeByName(%s) = %s, %v", name, p, ok)
		}
	}
	if _, ok := ast.PrimTypeByName("Bool"); ok {
		t.Error("Bool is an ADT, not a prim")
	}
}

func TestLiteralStringAndEqual(t *testing.T) {
	cases := []struct {
		lit  ast.Literal
		want string
	}{
		{ast.IntLit(ast.TyUint128, 42), "Uint128 42"},
		{ast.IntLit(ast.TyInt32, -5), "Int32 -5"},
		{ast.StrLit("hi"), `"hi"`},
		{ast.BNumLit(9), "BNum 9"},
		{ast.ByStrLit(make([]byte, 20)), "0x0000000000000000000000000000000000000000"},
	}
	for _, c := range cases {
		if got := c.lit.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
		if !c.lit.Equal(c.lit) {
			t.Errorf("literal %s not equal to itself", c.want)
		}
	}
	if ast.IntLit(ast.TyUint128, 1).Equal(ast.IntLit(ast.TyUint64, 1)) {
		t.Error("literals of different types equal")
	}
	if ast.StrLit("a").Equal(ast.StrLit("b")) {
		t.Error("different strings equal")
	}
}

func TestByStrLitWidths(t *testing.T) {
	if ast.ByStrLit(make([]byte, 20)).Type.Kind != ast.ByStr20 {
		t.Error("20-byte literal not ByStr20")
	}
	if ast.ByStrLit(make([]byte, 32)).Type.Kind != ast.ByStr32 {
		t.Error("32-byte literal not ByStr32")
	}
	if ast.ByStrLit(make([]byte, 7)).Type.Kind != ast.ByStr {
		t.Error("odd-width literal not ByStr")
	}
}

func TestContractAccessors(t *testing.T) {
	c := &ast.Contract{
		Name:   "C",
		Params: []ast.Param{{Name: "p", Type: ast.TyUint128}},
		Fields: []ast.Field{{Name: "f", Type: ast.TyUint128}},
		Transitions: []ast.Transition{
			{Name: "T1"}, {Name: "T2"},
		},
	}
	if c.TransitionByName("T2") == nil || c.TransitionByName("T3") != nil {
		t.Error("TransitionByName wrong")
	}
	if c.FieldByName("f") == nil || c.FieldByName("g") != nil {
		t.Error("FieldByName wrong")
	}
	if c.ParamByName("p") == nil || c.ParamByName("q") != nil {
		t.Error("ParamByName wrong")
	}
}
