package ast

import (
	"fmt"
	"strings"
)

// Printer renders AST nodes back into Scilla surface syntax. The output
// re-parses to a structurally identical module, which is exercised by the
// parser round-trip tests.
type Printer struct {
	sb     strings.Builder
	indent int
}

// PrintModule renders a full module.
func PrintModule(m *Module) string {
	var p Printer
	fmt.Fprintf(&p.sb, "scilla_version %d\n\n", m.Version)
	if m.Lib != nil {
		p.printLibrary(m.Lib)
	}
	p.printContract(&m.Contract)
	return p.sb.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var p Printer
	p.expr(e)
	return p.sb.String()
}

// PrintStmts renders a statement list.
func PrintStmts(ss []Stmt) string {
	var p Printer
	p.stmts(ss)
	return p.sb.String()
}

// PrintPattern renders a pattern.
func PrintPattern(pat Pattern) string {
	var p Printer
	p.pattern(pat, false)
	return p.sb.String()
}

func (p *Printer) nl() {
	p.sb.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("  ")
	}
}

func (p *Printer) printLibrary(l *Library) {
	fmt.Fprintf(&p.sb, "library %s\n", l.Name)
	for _, td := range l.Types {
		fmt.Fprintf(&p.sb, "\ntype %s =", td.Name)
		for _, c := range td.Constrs {
			p.sb.WriteString("\n| " + c.Name)
			if len(c.Args) > 0 {
				p.sb.WriteString(" of")
				for _, a := range c.Args {
					p.sb.WriteString(" " + parens(a))
				}
			}
		}
		p.sb.WriteString("\n")
	}
	for _, d := range l.Defs {
		p.sb.WriteString("\nlet " + d.Name)
		if d.Ty != nil {
			p.sb.WriteString(" : " + d.Ty.String())
		}
		p.sb.WriteString(" = ")
		p.expr(d.Expr)
		p.sb.WriteString("\n")
	}
	p.sb.WriteString("\n")
}

func (p *Printer) printContract(c *Contract) {
	fmt.Fprintf(&p.sb, "contract %s\n(", c.Name)
	for i, prm := range c.Params {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		fmt.Fprintf(&p.sb, "%s : %s", prm.Name, prm.Type.String())
	}
	p.sb.WriteString(")\n")
	for _, f := range c.Fields {
		fmt.Fprintf(&p.sb, "\nfield %s : %s = ", f.Name, f.Type.String())
		p.expr(f.Init)
		p.sb.WriteString("\n")
	}
	for i := range c.Transitions {
		t := &c.Transitions[i]
		fmt.Fprintf(&p.sb, "\ntransition %s (", t.Name)
		for j, prm := range t.Params {
			if j > 0 {
				p.sb.WriteString(", ")
			}
			fmt.Fprintf(&p.sb, "%s : %s", prm.Name, prm.Type.String())
		}
		p.sb.WriteString(")")
		p.indent++
		p.nl()
		p.stmts(t.Body)
		p.indent--
		p.nl()
		p.sb.WriteString("end\n")
	}
}

func (p *Printer) stmts(ss []Stmt) {
	for i, s := range ss {
		if i > 0 {
			p.sb.WriteString(";")
			p.nl()
		}
		p.stmt(s)
	}
}

func (p *Printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *LoadStmt:
		fmt.Fprintf(&p.sb, "%s <- %s", st.Lhs, st.Field)
	case *StoreStmt:
		fmt.Fprintf(&p.sb, "%s := %s", st.Field, st.Rhs)
	case *BindStmt:
		fmt.Fprintf(&p.sb, "%s = ", st.Lhs)
		p.expr(st.Expr)
	case *MapUpdateStmt:
		p.sb.WriteString(st.Map)
		for _, k := range st.Keys {
			fmt.Fprintf(&p.sb, "[%s]", k)
		}
		fmt.Fprintf(&p.sb, " := %s", st.Rhs)
	case *MapGetStmt:
		fmt.Fprintf(&p.sb, "%s <- ", st.Lhs)
		if st.Exists {
			p.sb.WriteString("exists ")
		}
		p.sb.WriteString(st.Map)
		for _, k := range st.Keys {
			fmt.Fprintf(&p.sb, "[%s]", k)
		}
	case *MapDeleteStmt:
		p.sb.WriteString("delete " + st.Map)
		for _, k := range st.Keys {
			fmt.Fprintf(&p.sb, "[%s]", k)
		}
	case *ReadBlockchainStmt:
		fmt.Fprintf(&p.sb, "%s <- &%s", st.Lhs, st.Name)
	case *MatchStmt:
		fmt.Fprintf(&p.sb, "match %s with", st.Scrutinee)
		for _, arm := range st.Arms {
			p.nl()
			p.sb.WriteString("| ")
			p.pattern(arm.Pat, false)
			p.sb.WriteString(" =>")
			p.indent++
			p.nl()
			p.stmts(arm.Body)
			p.indent--
		}
		p.nl()
		p.sb.WriteString("end")
	case *AcceptStmt:
		p.sb.WriteString("accept")
	case *SendStmt:
		p.sb.WriteString("send " + st.Arg)
	case *EventStmt:
		p.sb.WriteString("event " + st.Arg)
	case *ThrowStmt:
		p.sb.WriteString("throw")
		if st.Arg != "" {
			p.sb.WriteString(" " + st.Arg)
		}
	default:
		fmt.Fprintf(&p.sb, "(* unknown stmt %T *)", s)
	}
}

func (p *Printer) pattern(pat Pattern, nested bool) {
	switch pt := pat.(type) {
	case WildPat:
		p.sb.WriteString("_")
	case BindPat:
		p.sb.WriteString(pt.Name)
	case ConstrPat:
		if nested && len(pt.Sub) > 0 {
			p.sb.WriteString("(")
		}
		p.sb.WriteString(pt.Name)
		for _, sub := range pt.Sub {
			p.sb.WriteString(" ")
			p.pattern(sub, true)
		}
		if nested && len(pt.Sub) > 0 {
			p.sb.WriteString(")")
		}
	}
}

func (p *Printer) expr(e Expr) {
	switch ex := e.(type) {
	case *LitExpr:
		p.sb.WriteString(ex.Lit.String())
	case *VarExpr:
		p.sb.WriteString(ex.Name)
	case *MsgExpr:
		p.sb.WriteString("{")
		for i, en := range ex.Entries {
			if i > 0 {
				p.sb.WriteString("; ")
			}
			p.sb.WriteString(en.Key + " : ")
			if en.IsLit {
				p.sb.WriteString(en.Lit.String())
			} else {
				p.sb.WriteString(en.Var)
			}
		}
		p.sb.WriteString("}")
	case *ConstrExpr:
		p.sb.WriteString(ex.Name)
		if ex.Name == "Emp" {
			// Emp takes bare juxtaposed type arguments.
			for _, t := range ex.TypeArgs {
				p.sb.WriteString(" " + parens(t))
			}
			return
		}
		if len(ex.TypeArgs) > 0 {
			p.sb.WriteString(" {")
			for i, t := range ex.TypeArgs {
				if i > 0 {
					p.sb.WriteString(" ")
				}
				p.sb.WriteString(parens(t))
			}
			p.sb.WriteString("}")
		}
		for _, a := range ex.Args {
			p.sb.WriteString(" " + a)
		}
	case *BuiltinExpr:
		p.sb.WriteString("builtin " + ex.Name)
		for _, a := range ex.Args {
			p.sb.WriteString(" " + a)
		}
	case *LetExpr:
		p.sb.WriteString("let " + ex.Name)
		if ex.Ty != nil {
			p.sb.WriteString(" : " + ex.Ty.String())
		}
		p.sb.WriteString(" = ")
		p.expr(ex.Bound)
		p.sb.WriteString(" in")
		p.nl()
		p.expr(ex.Body)
	case *FunExpr:
		fmt.Fprintf(&p.sb, "fun (%s : %s) =>", ex.Param, ex.ParamType.String())
		p.indent++
		p.nl()
		p.expr(ex.Body)
		p.indent--
	case *AppExpr:
		p.sb.WriteString(ex.Func)
		for _, a := range ex.Args {
			p.sb.WriteString(" " + a)
		}
	case *MatchExpr:
		fmt.Fprintf(&p.sb, "match %s with", ex.Scrutinee)
		for _, arm := range ex.Arms {
			p.nl()
			p.sb.WriteString("| ")
			p.pattern(arm.Pat, false)
			p.sb.WriteString(" => ")
			p.expr(arm.Body)
		}
		p.nl()
		p.sb.WriteString("end")
	case *TFunExpr:
		p.sb.WriteString("tfun " + ex.TVar + " =>")
		p.indent++
		p.nl()
		p.expr(ex.Body)
		p.indent--
	case *TAppExpr:
		p.sb.WriteString("@" + ex.Name)
		for _, t := range ex.TypeArgs {
			p.sb.WriteString(" " + parens(t))
		}
	default:
		fmt.Fprintf(&p.sb, "(* unknown expr %T *)", e)
	}
}
