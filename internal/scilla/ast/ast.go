package ast

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// Expr is the interface implemented by all expression nodes (Fig. 4).
type Expr interface {
	expr()
	Position() Pos
}

type ExprBase struct{ Pos Pos }

func (e ExprBase) expr()         {}
func (e ExprBase) Position() Pos { return e.Pos }

// LitExpr is a literal expression, `val v`.
type LitExpr struct {
	ExprBase
	Lit Literal
}

// VarExpr is a variable occurrence, `var i`.
type VarExpr struct {
	ExprBase
	Name string
}

// MsgEntry is one `key : value` pair in a message or event expression.
// Value is an identifier or a literal.
type MsgEntry struct {
	Key string
	// Var is the identifier payload, set iff IsLit is false.
	Var string
	// Lit is the literal payload, set iff IsLit is true.
	Lit   Literal
	IsLit bool
}

// MsgExpr constructs a message or event, `{_tag : ...; _recipient : ...}`.
type MsgExpr struct {
	ExprBase
	Entries []MsgEntry
}

// ConstrExpr applies a data constructor, `constr c {targs} args`.
type ConstrExpr struct {
	ExprBase
	Name     string
	TypeArgs []Type
	Args     []string
}

// BuiltinExpr applies a builtin operation, `builtin blt args`.
type BuiltinExpr struct {
	ExprBase
	Name string
	Args []string
}

// LetExpr is `let i = e1 in e2`.
type LetExpr struct {
	ExprBase
	Name  string
	Ty    Type // optional annotation, may be nil
	Bound Expr
	Body  Expr
}

// FunExpr is `fun (i : t) => e`.
type FunExpr struct {
	ExprBase
	Param     string
	ParamType Type
	Body      Expr
}

// AppExpr is `app f a1 .. an` (application of an identifier to identifiers).
type AppExpr struct {
	ExprBase
	Func string
	Args []string
}

// MatchArm is a single `| pat => e` clause of a match expression.
type MatchArm struct {
	Pat  Pattern
	Body Expr
}

// MatchExpr is `match i with | pat => e ... end`.
type MatchExpr struct {
	ExprBase
	Scrutinee string
	Arms      []MatchArm
}

// TFunExpr is a type abstraction, `tfun 'A => e`.
type TFunExpr struct {
	ExprBase
	TVar string
	Body Expr
}

// TAppExpr is a type instantiation, `@f T1 .. Tn` (inst i t in Fig. 4).
type TAppExpr struct {
	ExprBase
	Name     string
	TypeArgs []Type
}

// Pattern is the interface implemented by all pattern nodes.
type Pattern interface{ pat() }

// WildPat is the wildcard pattern `_`.
type WildPat struct{}

func (WildPat) pat() {}

// BindPat binds the scrutinee (or sub-value) to a name.
type BindPat struct{ Name string }

func (BindPat) pat() {}

// ConstrPat matches a constructor application, `constr c p1 .. pn`.
type ConstrPat struct {
	Name string
	Sub  []Pattern
}

func (ConstrPat) pat() {}

// Stmt is the interface implemented by all statement nodes (Fig. 4).
type Stmt interface {
	stmt()
	Position() Pos
}

type StmtBase struct{ Pos Pos }

func (s StmtBase) stmt()         {}
func (s StmtBase) Position() Pos { return s.Pos }

// LoadStmt is `x <- f`, reading a whole contract field.
type LoadStmt struct {
	StmtBase
	Lhs   string
	Field string
}

// StoreStmt is `f := x`, overwriting a whole contract field.
type StoreStmt struct {
	StmtBase
	Field string
	Rhs   string
}

// BindStmt is `x = e`, binding a pure expression.
type BindStmt struct {
	StmtBase
	Lhs  string
	Expr Expr
}

// MapUpdateStmt is `m[k1]..[kn] := v`.
type MapUpdateStmt struct {
	StmtBase
	Map  string
	Keys []string
	Rhs  string
}

// MapGetStmt is `x <- m[k1]..[kn]` (Exists=false, yields Option) or
// `x <- exists m[k1]..[kn]` (Exists=true, yields Bool).
type MapGetStmt struct {
	StmtBase
	Lhs    string
	Map    string
	Keys   []string
	Exists bool
}

// MapDeleteStmt is `delete m[k1]..[kn]`.
type MapDeleteStmt struct {
	StmtBase
	Map  string
	Keys []string
}

// ReadBlockchainStmt is `x <- &NAME`, reading blockchain metadata
// (e.g. BLOCKNUMBER).
type ReadBlockchainStmt struct {
	StmtBase
	Lhs  string
	Name string
}

// StmtMatchArm is a single `| pat => stmts` clause of a match statement.
type StmtMatchArm struct {
	Pat  Pattern
	Body []Stmt
}

// MatchStmt is `match x with | pat => stmts ... end`.
type MatchStmt struct {
	StmtBase
	Scrutinee string
	Arms      []StmtMatchArm
}

// AcceptStmt is `accept`, accepting the incoming native token amount.
type AcceptStmt struct{ StmtBase }

// SendStmt is `send msgs`, emitting a list of messages.
type SendStmt struct {
	StmtBase
	Arg string
}

// EventStmt is `event e`, emitting an event.
type EventStmt struct {
	StmtBase
	Arg string
}

// ThrowStmt is `throw` or `throw e`, aborting the transition.
type ThrowStmt struct {
	StmtBase
	Arg string // empty if no argument
}

// Param is a typed formal parameter of a transition or contract.
type Param struct {
	Name string
	Type Type
}

// Field is a mutable contract field with its declared type and initialiser.
type Field struct {
	Name string
	Type Type
	Init Expr
}

// Transition is a named state-transition with typed parameters and a body.
type Transition struct {
	Name   string
	Params []Param
	Body   []Stmt
	Pos    Pos
}

// LibDef is a library-level pure definition, `let i = e` (possibly
// type-annotated).
type LibDef struct {
	Name string
	Ty   Type // optional, may be nil
	Expr Expr
}

// ConstrDef declares one constructor of a user-defined ADT.
type ConstrDef struct {
	Name string
	Args []Type
}

// TypeDef declares a user-defined ADT: `type T = | C1 of t .. | C2`.
type TypeDef struct {
	Name    string
	Constrs []ConstrDef
}

// Library is the pure library section of a contract module.
type Library struct {
	Name  string
	Defs  []LibDef
	Types []TypeDef
}

// Contract is a deployable Scilla contract: immutable parameters,
// mutable fields, and transitions.
type Contract struct {
	Name        string
	Params      []Param
	Fields      []Field
	Transitions []Transition
}

// Module is a full Scilla source module: version, optional library,
// and the contract.
type Module struct {
	Version  int
	Lib      *Library
	Contract Contract
	// Source is the original source text, if parsed from text.
	Source string
}

// TransitionByName returns the transition with the given name, or nil.
func (c *Contract) TransitionByName(name string) *Transition {
	for i := range c.Transitions {
		if c.Transitions[i].Name == name {
			return &c.Transitions[i]
		}
	}
	return nil
}

// FieldByName returns the field with the given name, or nil.
func (c *Contract) FieldByName(name string) *Field {
	for i := range c.Fields {
		if c.Fields[i].Name == name {
			return &c.Fields[i]
		}
	}
	return nil
}

// ParamByName returns the contract parameter with the given name, or nil.
func (c *Contract) ParamByName(name string) *Param {
	for i := range c.Params {
		if c.Params[i].Name == name {
			return &c.Params[i]
		}
	}
	return nil
}

// Implicit transition parameters present in every transition.
const (
	SenderParam = "_sender"
	OriginParam = "_origin"
	AmountParam = "_amount"
)

// Reserved message entry keys.
const (
	TagKey       = "_tag"
	RecipientKey = "_recipient"
	AmountKey    = "_amount"
	EventNameKey = "_eventname"
	ExceptionKey = "_exception"
)
