package stdlib_test

import (
	"fmt"
	"math/big"
	"testing"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/stdlib"
	"cosplit/internal/scilla/value"
)

// testApply applies native function values (sufficient for testing the
// native library without the full interpreter).
func testApply(fn value.Value, arg value.Value) (value.Value, error) {
	n, ok := fn.(*value.Native)
	if !ok {
		return nil, fmt.Errorf("testApply: not a native: %T", fn)
	}
	nf := n.WithArg(arg)
	if nf.Saturated() {
		return nf.Fn(nf.TypeArgs, nf.Args)
	}
	return nf, nil
}

// goFn wraps a Go function as an applicable native value.
func goFn(arity int, f func(args []value.Value) (value.Value, error)) *value.Native {
	return &value.Native{
		Name: "test", Arity: arity,
		Fn: func(_ []ast.Type, args []value.Value) (value.Value, error) {
			return f(args)
		},
	}
}

func natives(t *testing.T) map[string]*value.Native {
	t.Helper()
	return stdlib.NativeValues(testApply)
}

func mkList(vals ...uint64) value.Value {
	out := value.Value(value.NilList(ast.TyUint128))
	for i := len(vals) - 1; i >= 0; i-- {
		out = value.Cons(ast.TyUint128, value.Uint128(vals[i]), out)
	}
	return out
}

func applyAll(t *testing.T, n *value.Native, targs []ast.Type, args ...value.Value) value.Value {
	t.Helper()
	cur := value.Value(n.WithTypeArgs(targs))
	for _, a := range args {
		v, err := testApply(cur, a)
		if err != nil {
			t.Fatalf("apply %s: %v", n.Name, err)
		}
		cur = v
	}
	return cur
}

func TestListFoldl(t *testing.T) {
	ns := natives(t)
	add := goFn(2, func(args []value.Value) (value.Value, error) {
		return stdlib.Eval("add", args)
	})
	got := applyAll(t, ns["list_foldl"],
		[]ast.Type{ast.TyUint128, ast.TyUint128},
		add, value.Uint128(0), mkList(1, 2, 3, 4))
	if got.(value.Int).V.Uint64() != 10 {
		t.Errorf("foldl sum = %s, want 10", got)
	}
}

func TestListFoldrOrder(t *testing.T) {
	ns := natives(t)
	// foldr with subtraction distinguishes order: 1-(2-(3-0)) = 2.
	sub := goFn(2, func(args []value.Value) (value.Value, error) {
		a, b := args[0].(value.Int).V.Int64(), args[1].(value.Int).V.Int64()
		return value.Int{Ty: ast.TyInt64, V: bigInt(a - b)}, nil
	})
	l := value.Value(value.NilList(ast.TyInt64))
	for _, v := range []int64{3, 2, 1} {
		l = value.Cons(ast.TyInt64, value.Int{Ty: ast.TyInt64, V: bigInt(v)}, l)
	}
	got := applyAll(t, ns["list_foldr"],
		[]ast.Type{ast.TyInt64, ast.TyInt64},
		sub, value.Int{Ty: ast.TyInt64, V: bigInt(0)}, l)
	if got.(value.Int).V.Int64() != 2 {
		t.Errorf("foldr = %s, want 2", got)
	}
}

func TestListMapFilter(t *testing.T) {
	ns := natives(t)
	double := goFn(1, func(args []value.Value) (value.Value, error) {
		return stdlib.Eval("add", []value.Value{args[0], args[0]})
	})
	mapped := applyAll(t, ns["list_map"],
		[]ast.Type{ast.TyUint128, ast.TyUint128}, double, mkList(1, 2, 3))
	items, _ := value.ListValues(mapped)
	if len(items) != 3 || items[1].(value.Int).V.Uint64() != 4 {
		t.Errorf("map = %v", items)
	}

	isBig := goFn(1, func(args []value.Value) (value.Value, error) {
		return value.Bool(args[0].(value.Int).V.Uint64() > 2), nil
	})
	filtered := applyAll(t, ns["list_filter"],
		[]ast.Type{ast.TyUint128}, isBig, mkList(1, 2, 3, 4))
	items2, _ := value.ListValues(filtered)
	if len(items2) != 2 || items2[0].(value.Int).V.Uint64() != 3 {
		t.Errorf("filter = %v", items2)
	}
}

func TestListLengthAppendReverse(t *testing.T) {
	ns := natives(t)
	if got := applyAll(t, ns["list_length"], []ast.Type{ast.TyUint128}, mkList(1, 2, 3)); got.(value.Int).V.Uint64() != 3 {
		t.Errorf("length = %s", got)
	}
	app := applyAll(t, ns["list_append"], []ast.Type{ast.TyUint128}, mkList(1, 2), mkList(3))
	items, _ := value.ListValues(app)
	if len(items) != 3 || items[2].(value.Int).V.Uint64() != 3 {
		t.Errorf("append = %v", items)
	}
	rev := applyAll(t, ns["list_reverse"], []ast.Type{ast.TyUint128}, mkList(1, 2, 3))
	items2, _ := value.ListValues(rev)
	if items2[0].(value.Int).V.Uint64() != 3 {
		t.Errorf("reverse = %v", items2)
	}
}

func TestListMem(t *testing.T) {
	ns := natives(t)
	eq := goFn(2, func(args []value.Value) (value.Value, error) {
		return value.Bool(value.Equal(args[0], args[1])), nil
	})
	hit := applyAll(t, ns["list_mem"], []ast.Type{ast.TyUint128},
		eq, value.Uint128(2), mkList(1, 2, 3))
	if !value.IsTrue(hit) {
		t.Error("list_mem missed an element")
	}
	miss := applyAll(t, ns["list_mem"], []ast.Type{ast.TyUint128},
		eq, value.Uint128(9), mkList(1, 2, 3))
	if value.IsTrue(miss) {
		t.Error("list_mem found a phantom element")
	}
}

func TestFstSnd(t *testing.T) {
	ns := natives(t)
	p := value.PairV(ast.TyUint128, ast.TyString, value.Uint128(7), value.Str{S: "x"})
	if got := applyAll(t, ns["fst"], []ast.Type{ast.TyUint128, ast.TyString}, p); got.(value.Int).V.Uint64() != 7 {
		t.Errorf("fst = %s", got)
	}
	if got := applyAll(t, ns["snd"], []ast.Type{ast.TyUint128, ast.TyString}, p); got.(value.Str).S != "x" {
		t.Errorf("snd = %s", got)
	}
	if _, err := testApply(ns["fst"].WithTypeArgs(nil), value.Uint128(1)); err == nil {
		t.Error("fst of non-pair accepted")
	}
}

func TestNativeSigsCoverValues(t *testing.T) {
	sigs := stdlib.NativeSigs()
	vals := natives(t)
	if len(sigs) != len(vals) {
		t.Errorf("%d signatures for %d native values", len(sigs), len(vals))
	}
	for _, s := range sigs {
		if _, ok := vals[s.Name]; !ok {
			t.Errorf("signature %s has no runtime value", s.Name)
		}
	}
}

func bigInt(v int64) *big.Int { return big.NewInt(v) }
