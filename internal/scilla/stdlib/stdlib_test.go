package stdlib_test

import (
	"math/big"
	"testing"
	"testing/quick"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/stdlib"
	"cosplit/internal/scilla/value"
)

func u128(v uint64) value.Int { return value.Uint128(v) }

func evalB(t *testing.T, name string, args ...value.Value) value.Value {
	t.Helper()
	v, err := stdlib.Eval(name, args)
	if err != nil {
		t.Fatalf("Eval(%s): %v", name, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	if got := evalB(t, "add", u128(2), u128(3)); got.(value.Int).V.Uint64() != 5 {
		t.Errorf("add = %s", got)
	}
	if got := evalB(t, "sub", u128(5), u128(3)); got.(value.Int).V.Uint64() != 2 {
		t.Errorf("sub = %s", got)
	}
	if got := evalB(t, "mul", u128(4), u128(6)); got.(value.Int).V.Uint64() != 24 {
		t.Errorf("mul = %s", got)
	}
	if got := evalB(t, "div", u128(7), u128(2)); got.(value.Int).V.Uint64() != 3 {
		t.Errorf("div = %s", got)
	}
	if got := evalB(t, "rem", u128(7), u128(2)); got.(value.Int).V.Uint64() != 1 {
		t.Errorf("rem = %s", got)
	}
	if got := evalB(t, "pow", u128(2), value.Uint32V(10)); got.(value.Int).V.Uint64() != 1024 {
		t.Errorf("pow = %s", got)
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := stdlib.Eval("sub", []value.Value{u128(1), u128(2)}); err == nil {
		t.Error("uint underflow not detected")
	}
	if _, err := stdlib.Eval("div", []value.Value{u128(1), u128(0)}); err == nil {
		t.Error("division by zero not detected")
	}
	max := value.Int{Ty: ast.TyUint128, V: ast.MaxInt(ast.TyUint128)}
	if _, err := stdlib.Eval("add", []value.Value{max, u128(1)}); err == nil {
		t.Error("overflow not detected")
	}
	if _, err := stdlib.Eval("add", []value.Value{u128(1), value.Uint32V(1)}); err == nil {
		t.Error("mixed-width arithmetic not rejected")
	}
}

// Property: add and sub are inverses when in range.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := u128(uint64(a)), u128(uint64(b))
		sum, err := stdlib.Eval("add", []value.Value{x, y})
		if err != nil {
			return false
		}
		back, err := stdlib.Eval("sub", []value.Value{sum, y})
		if err != nil {
			return false
		}
		return back.(value.Int).V.Uint64() == uint64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison builtins agree with big.Int comparison.
func TestComparisons(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := u128(uint64(a)), u128(uint64(b))
		lt, _ := stdlib.Eval("lt", []value.Value{x, y})
		le, _ := stdlib.Eval("le", []value.Value{x, y})
		gt, _ := stdlib.Eval("gt", []value.Value{x, y})
		ge, _ := stdlib.Eval("ge", []value.Value{x, y})
		eq, _ := stdlib.Eval("eq", []value.Value{x, y})
		return value.IsTrue(lt) == (a < b) &&
			value.IsTrue(le) == (a <= b) &&
			value.IsTrue(gt) == (a > b) &&
			value.IsTrue(ge) == (a >= b) &&
			value.IsTrue(eq) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolBuiltins(t *testing.T) {
	tr, fa := value.True(), value.False()
	if !value.IsTrue(evalB(t, "andb", tr, tr)) || value.IsTrue(evalB(t, "andb", tr, fa)) {
		t.Error("andb wrong")
	}
	if !value.IsTrue(evalB(t, "orb", fa, tr)) || value.IsTrue(evalB(t, "orb", fa, fa)) {
		t.Error("orb wrong")
	}
	if value.IsTrue(evalB(t, "negb", tr)) || !value.IsTrue(evalB(t, "negb", fa)) {
		t.Error("negb wrong")
	}
}

func TestStringBuiltins(t *testing.T) {
	if got := evalB(t, "concat", value.Str{S: "ab"}, value.Str{S: "cd"}); got.(value.Str).S != "abcd" {
		t.Errorf("concat = %s", got)
	}
	if got := evalB(t, "strlen", value.Str{S: "hello"}); got.(value.Int).V.Uint64() != 5 {
		t.Errorf("strlen = %s", got)
	}
	if got := evalB(t, "substr", value.Str{S: "hello"}, value.Uint32V(1), value.Uint32V(3)); got.(value.Str).S != "ell" {
		t.Errorf("substr = %s", got)
	}
	if _, err := stdlib.Eval("substr", []value.Value{value.Str{S: "hi"}, value.Uint32V(1), value.Uint32V(5)}); err == nil {
		t.Error("substr out of bounds not detected")
	}
}

func TestHashDeterministic(t *testing.T) {
	a := evalB(t, "sha256hash", value.Str{S: "x"})
	b := evalB(t, "sha256hash", value.Str{S: "x"})
	c := evalB(t, "sha256hash", value.Str{S: "y"})
	if !value.Equal(a, b) {
		t.Error("hash not deterministic")
	}
	if value.Equal(a, c) {
		t.Error("hash collision on different inputs (suspicious)")
	}
	if len(a.(value.ByStr).B) != 32 {
		t.Error("sha256hash must be 32 bytes")
	}
	if len(evalB(t, "ripemd160hash", value.Str{S: "x"}).(value.ByStr).B) != 20 {
		t.Error("ripemd160hash must be 20 bytes")
	}
	// keccak is domain-separated from sha256 in our model.
	if value.Equal(a, evalB(t, "keccak256hash", value.Str{S: "x"})) {
		t.Error("keccak and sha256 should differ")
	}
}

func TestConversions(t *testing.T) {
	got := evalB(t, "to_uint32", u128(42))
	some, ok := got.(value.ADT)
	if !ok || some.Constr != "Some" {
		t.Fatalf("to_uint32 = %s", got)
	}
	if some.Args[0].(value.Int).V.Uint64() != 42 {
		t.Errorf("converted value = %s", some.Args[0])
	}
	// Out of range → None.
	big128 := value.Int{Ty: ast.TyUint128, V: new(big.Int).Lsh(big.NewInt(1), 100)}
	if n := evalB(t, "to_uint32", big128).(value.ADT); n.Constr != "None" {
		t.Errorf("out-of-range conversion = %s", n)
	}
	// From string.
	if s := evalB(t, "to_uint128", value.Str{S: "123"}).(value.ADT); s.Constr != "Some" {
		t.Errorf("string conversion = %s", s)
	}
	if s := evalB(t, "to_uint128", value.Str{S: "abc"}).(value.ADT); s.Constr != "None" {
		t.Errorf("bad string conversion = %s", s)
	}
}

func TestMapBuiltins(t *testing.T) {
	m := value.NewMap(ast.TyString, ast.TyUint128)
	k := value.Str{S: "a"}
	m1 := evalB(t, "put", m, k, u128(1)).(*value.Map)
	if m.Len() != 0 {
		t.Error("put mutated its input (must be pure)")
	}
	if !value.IsTrue(evalB(t, "contains", m1, k)) {
		t.Error("contains after put = false")
	}
	got := evalB(t, "get", m1, k).(value.ADT)
	if got.Constr != "Some" || got.Args[0].(value.Int).V.Uint64() != 1 {
		t.Errorf("get = %s", got)
	}
	m2 := evalB(t, "remove", m1, k).(*value.Map)
	if value.IsTrue(evalB(t, "contains", m2, k)) {
		t.Error("contains after remove = true")
	}
	if m1.Len() != 1 {
		t.Error("remove mutated its input")
	}
	if evalB(t, "size", m1).(value.Int).V.Uint64() != 1 {
		t.Error("size wrong")
	}
	lst := evalB(t, "to_list", m1)
	items, ok := value.ListValues(lst)
	if !ok || len(items) != 1 {
		t.Errorf("to_list = %s", lst)
	}
}

func TestBNumBuiltins(t *testing.T) {
	b1 := value.BNum{V: big.NewInt(10)}
	b2 := value.BNum{V: big.NewInt(20)}
	if !value.IsTrue(evalB(t, "blt", b1, b2)) {
		t.Error("blt wrong")
	}
	sum := evalB(t, "badd", b1, value.Uint32V(5))
	if sum.(value.BNum).V.Int64() != 15 {
		t.Errorf("badd = %s", sum)
	}
	diff := evalB(t, "bsub", b2, b1)
	if diff.(value.Int).V.Int64() != 10 {
		t.Errorf("bsub = %s", diff)
	}
}

func TestTypeOfMirrorsEval(t *testing.T) {
	// Every builtin's TypeOf result must describe Eval's output on
	// well-typed arguments.
	cases := []struct {
		name string
		args []value.Value
	}{
		{"add", []value.Value{u128(1), u128(2)}},
		{"lt", []value.Value{u128(1), u128(2)}},
		{"concat", []value.Value{value.Str{S: "a"}, value.Str{S: "b"}}},
		{"sha256hash", []value.Value{value.Str{S: "x"}}},
		{"to_uint32", []value.Value{u128(1)}},
		{"strlen", []value.Value{value.Str{S: "x"}}},
	}
	for _, c := range cases {
		argTypes := make([]ast.Type, len(c.args))
		for i, a := range c.args {
			argTypes[i] = a.Type()
		}
		wantT, err := stdlib.TypeOf(c.name, argTypes)
		if err != nil {
			t.Errorf("TypeOf(%s): %v", c.name, err)
			continue
		}
		got, err := stdlib.Eval(c.name, c.args)
		if err != nil {
			t.Errorf("Eval(%s): %v", c.name, err)
			continue
		}
		if !got.Type().Equal(wantT) {
			t.Errorf("%s: TypeOf says %s but Eval returned %s", c.name, wantT, got.Type())
		}
	}
}

func TestCommutativeOpsSet(t *testing.T) {
	if !stdlib.CommutativeOps["add"] || !stdlib.CommutativeOps["sub"] {
		t.Error("add and sub must be IntMerge-compatible")
	}
	if stdlib.CommutativeOps["mul"] || stdlib.CommutativeOps["concat"] {
		t.Error("mul/concat must not be IntMerge-compatible")
	}
}

func TestArity(t *testing.T) {
	if n, ok := stdlib.Arity("add"); !ok || n != 2 {
		t.Errorf("Arity(add) = %d,%v", n, ok)
	}
	if _, ok := stdlib.Arity("frobnicate"); ok {
		t.Error("unknown builtin has arity")
	}
	if !stdlib.IsBuiltin("eq") || stdlib.IsBuiltin("nope") {
		t.Error("IsBuiltin wrong")
	}
}
