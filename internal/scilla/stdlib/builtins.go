package stdlib

import (
	"crypto/sha256"
	"fmt"
	"math/big"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

// CommutativeOps is the set of builtin operations whose linear
// application to a field value yields a commutative (delta-mergeable)
// write. Addition and subtraction of state-independent quantities
// commute with each other; see Sec. 2.3 and Sec. 3.4 of the paper.
var CommutativeOps = map[string]bool{
	"add": true,
	"sub": true,
}

// IsBuiltin reports whether name is a recognised builtin operation.
func IsBuiltin(name string) bool {
	_, ok := builtinArity[name]
	return ok
}

var builtinArity = map[string]int{
	"add": 2, "sub": 2, "mul": 2, "div": 2, "rem": 2, "pow": 2,
	"lt": 2, "le": 2, "gt": 2, "ge": 2, "eq": 2,
	"andb": 2, "orb": 2, "negb": 1,
	"concat": 2, "strlen": 1, "substr": 3, "to_string": 1,
	"sha256hash": 1, "keccak256hash": 1, "ripemd160hash": 1,
	"to_uint32": 1, "to_uint64": 1, "to_uint128": 1, "to_uint256": 1,
	"to_int32": 1, "to_int64": 1, "to_int128": 1, "to_int256": 1,
	"blt": 2, "badd": 2, "bsub": 2,
	"contains": 2, "put": 3, "get": 2, "remove": 2, "to_list": 1, "size": 1,
	"to_bystr": 1, "schnorr_verify": 3,
}

// Arity returns the number of arguments the builtin expects, and
// whether the builtin exists.
func Arity(name string) (int, bool) {
	n, ok := builtinArity[name]
	return n, ok
}

func isIntType(t ast.Type) (ast.PrimType, bool) {
	p, ok := t.(ast.PrimType)
	if !ok || !p.IsInt() {
		return ast.PrimType{}, false
	}
	return p, true
}

// TypeOf computes the result type of builtin name applied to argTypes.
func TypeOf(name string, argTypes []ast.Type) (ast.Type, error) {
	want, ok := builtinArity[name]
	if !ok {
		return nil, fmt.Errorf("unknown builtin %s", name)
	}
	if len(argTypes) != want {
		return nil, fmt.Errorf("builtin %s expects %d arguments, got %d", name, want, len(argTypes))
	}
	fail := func() (ast.Type, error) {
		return nil, fmt.Errorf("builtin %s not applicable to %v", name, argTypes)
	}
	switch name {
	case "add", "sub", "mul", "div", "rem":
		a, ok1 := isIntType(argTypes[0])
		b, ok2 := isIntType(argTypes[1])
		if !ok1 || !ok2 || a.Kind != b.Kind {
			return fail()
		}
		return a, nil
	case "pow":
		a, ok1 := isIntType(argTypes[0])
		b, ok2 := isIntType(argTypes[1])
		if !ok1 || !ok2 || b.Kind != ast.Uint32 {
			return fail()
		}
		return a, nil
	case "lt", "le", "gt", "ge":
		a, ok1 := isIntType(argTypes[0])
		b, ok2 := isIntType(argTypes[1])
		if !ok1 || !ok2 || a.Kind != b.Kind {
			return fail()
		}
		return ast.TyBool, nil
	case "eq":
		a, ok1 := argTypes[0].(ast.PrimType)
		b, ok2 := argTypes[1].(ast.PrimType)
		if !ok1 || !ok2 || a.Kind != b.Kind {
			return fail()
		}
		return ast.TyBool, nil
	case "andb", "orb":
		if !argTypes[0].Equal(ast.TyBool) || !argTypes[1].Equal(ast.TyBool) {
			return fail()
		}
		return ast.TyBool, nil
	case "negb":
		if !argTypes[0].Equal(ast.TyBool) {
			return fail()
		}
		return ast.TyBool, nil
	case "concat":
		a, ok1 := argTypes[0].(ast.PrimType)
		b, ok2 := argTypes[1].(ast.PrimType)
		if !ok1 || !ok2 {
			return fail()
		}
		if a.Kind == ast.StringKind && b.Kind == ast.StringKind {
			return ast.TyString, nil
		}
		isBystr := func(k ast.PrimKind) bool {
			return k == ast.ByStr || k == ast.ByStr20 || k == ast.ByStr32
		}
		if isBystr(a.Kind) && isBystr(b.Kind) {
			return ast.TyByStr, nil
		}
		return fail()
	case "strlen":
		if !argTypes[0].Equal(ast.TyString) {
			return fail()
		}
		return ast.TyUint32, nil
	case "substr":
		if !argTypes[0].Equal(ast.TyString) || !argTypes[1].Equal(ast.TyUint32) || !argTypes[2].Equal(ast.TyUint32) {
			return fail()
		}
		return ast.TyString, nil
	case "to_string":
		if _, ok := argTypes[0].(ast.PrimType); !ok {
			return fail()
		}
		return ast.TyString, nil
	case "sha256hash", "keccak256hash":
		return ast.TyByStr32, nil
	case "ripemd160hash":
		return ast.TyByStr20, nil
	case "to_uint32", "to_uint64", "to_uint128", "to_uint256",
		"to_int32", "to_int64", "to_int128", "to_int256":
		p, ok := argTypes[0].(ast.PrimType)
		if !ok || (!p.IsInt() && p.Kind != ast.StringKind) {
			return fail()
		}
		return ast.TyOption(convTarget(name)), nil
	case "blt":
		if !argTypes[0].Equal(ast.TyBNum) || !argTypes[1].Equal(ast.TyBNum) {
			return fail()
		}
		return ast.TyBool, nil
	case "badd":
		if !argTypes[0].Equal(ast.TyBNum) {
			return fail()
		}
		if _, ok := isIntType(argTypes[1]); !ok {
			return fail()
		}
		return ast.TyBNum, nil
	case "bsub":
		if !argTypes[0].Equal(ast.TyBNum) || !argTypes[1].Equal(ast.TyBNum) {
			return fail()
		}
		return ast.TyInt256, nil
	case "contains":
		m, ok := argTypes[0].(ast.MapType)
		if !ok || !m.Key.Equal(argTypes[1]) {
			return fail()
		}
		return ast.TyBool, nil
	case "put":
		m, ok := argTypes[0].(ast.MapType)
		if !ok || !m.Key.Equal(argTypes[1]) || !m.Val.Equal(argTypes[2]) {
			return fail()
		}
		return m, nil
	case "get":
		m, ok := argTypes[0].(ast.MapType)
		if !ok || !m.Key.Equal(argTypes[1]) {
			return fail()
		}
		return ast.TyOption(m.Val), nil
	case "remove":
		m, ok := argTypes[0].(ast.MapType)
		if !ok || !m.Key.Equal(argTypes[1]) {
			return fail()
		}
		return m, nil
	case "to_list":
		m, ok := argTypes[0].(ast.MapType)
		if !ok {
			return fail()
		}
		return ast.TyList(ast.TyPair(m.Key, m.Val)), nil
	case "size":
		if _, ok := argTypes[0].(ast.MapType); !ok {
			return fail()
		}
		return ast.TyUint32, nil
	case "to_bystr":
		p, ok := argTypes[0].(ast.PrimType)
		if !ok || (p.Kind != ast.ByStr20 && p.Kind != ast.ByStr32 && p.Kind != ast.ByStr) {
			return fail()
		}
		return ast.TyByStr, nil
	case "schnorr_verify":
		return ast.TyBool, nil
	}
	return fail()
}

func convTarget(name string) ast.PrimType {
	switch name {
	case "to_uint32":
		return ast.TyUint32
	case "to_uint64":
		return ast.TyUint64
	case "to_uint128":
		return ast.TyUint128
	case "to_uint256":
		return ast.TyUint256
	case "to_int32":
		return ast.TyInt32
	case "to_int64":
		return ast.TyInt64
	case "to_int128":
		return ast.TyInt128
	case "to_int256":
		return ast.TyInt256
	}
	panic("not a conversion builtin: " + name)
}

// RuntimeError is a dynamic failure raised by a builtin (overflow,
// division by zero, malformed argument). It aborts the enclosing
// transition like a `throw`.
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return e.Msg }

func rtErrf(format string, args ...any) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// Eval evaluates builtin name on fully-evaluated arguments.
func Eval(name string, args []value.Value) (value.Value, error) {
	want, ok := builtinArity[name]
	if !ok {
		return nil, rtErrf("unknown builtin %s", name)
	}
	if len(args) != want {
		return nil, rtErrf("builtin %s expects %d arguments, got %d", name, want, len(args))
	}
	switch name {
	case "add", "sub", "mul", "div", "rem", "pow":
		return evalArith(name, args)
	case "lt", "le", "gt", "ge":
		a, ok1 := args[0].(value.Int)
		b, ok2 := args[1].(value.Int)
		if !ok1 || !ok2 {
			return nil, rtErrf("builtin %s expects integers", name)
		}
		c := a.V.Cmp(b.V)
		switch name {
		case "lt":
			return value.Bool(c < 0), nil
		case "le":
			return value.Bool(c <= 0), nil
		case "gt":
			return value.Bool(c > 0), nil
		default:
			return value.Bool(c >= 0), nil
		}
	case "eq":
		return value.Bool(value.Equal(args[0], args[1])), nil
	case "andb":
		return value.Bool(value.IsTrue(args[0]) && value.IsTrue(args[1])), nil
	case "orb":
		return value.Bool(value.IsTrue(args[0]) || value.IsTrue(args[1])), nil
	case "negb":
		return value.Bool(!value.IsTrue(args[0])), nil
	case "concat":
		if a, ok := args[0].(value.Str); ok {
			b, ok2 := args[1].(value.Str)
			if !ok2 {
				return nil, rtErrf("concat type mismatch")
			}
			return value.Str{S: a.S + b.S}, nil
		}
		a, ok1 := args[0].(value.ByStr)
		b, ok2 := args[1].(value.ByStr)
		if !ok1 || !ok2 {
			return nil, rtErrf("concat expects strings or byte strings")
		}
		out := make([]byte, 0, len(a.B)+len(b.B))
		out = append(out, a.B...)
		out = append(out, b.B...)
		return value.ByStr{Ty: ast.TyByStr, B: out}, nil
	case "strlen":
		s, ok := args[0].(value.Str)
		if !ok {
			return nil, rtErrf("strlen expects a string")
		}
		return value.Uint32V(uint32(len(s.S))), nil
	case "substr":
		s, ok1 := args[0].(value.Str)
		off, ok2 := args[1].(value.Int)
		n, ok3 := args[2].(value.Int)
		if !ok1 || !ok2 || !ok3 {
			return nil, rtErrf("substr expects (String, Uint32, Uint32)")
		}
		o := int(off.V.Int64())
		l := int(n.V.Int64())
		if o < 0 || l < 0 || o+l > len(s.S) {
			return nil, rtErrf("substr out of bounds")
		}
		return value.Str{S: s.S[o : o+l]}, nil
	case "to_string":
		return value.Str{S: args[0].String()}, nil
	case "sha256hash", "keccak256hash":
		// keccak is modelled with sha256 over a domain-separated input;
		// only determinism and collision resistance matter here.
		input := args[0].String()
		if name == "keccak256hash" {
			input = "keccak:" + input
		}
		h := sha256.Sum256([]byte(input))
		return value.ByStr{Ty: ast.TyByStr32, B: h[:]}, nil
	case "ripemd160hash":
		h := sha256.Sum256([]byte("ripemd:" + args[0].String()))
		return value.ByStr{Ty: ast.TyByStr20, B: h[:20]}, nil
	case "to_uint32", "to_uint64", "to_uint128", "to_uint256",
		"to_int32", "to_int64", "to_int128", "to_int256":
		target := convTarget(name)
		var v *big.Int
		switch a := args[0].(type) {
		case value.Int:
			v = a.V
		case value.Str:
			var ok bool
			v, ok = new(big.Int).SetString(a.S, 10)
			if !ok {
				return value.None(target), nil
			}
		default:
			return nil, rtErrf("%s expects an integer or string", name)
		}
		if !ast.InRange(target, v) {
			return value.None(target), nil
		}
		return value.Some(target, value.Int{Ty: target, V: new(big.Int).Set(v)}), nil
	case "blt":
		a, ok1 := args[0].(value.BNum)
		b, ok2 := args[1].(value.BNum)
		if !ok1 || !ok2 {
			return nil, rtErrf("blt expects block numbers")
		}
		return value.Bool(a.V.Cmp(b.V) < 0), nil
	case "badd":
		a, ok1 := args[0].(value.BNum)
		b, ok2 := args[1].(value.Int)
		if !ok1 || !ok2 {
			return nil, rtErrf("badd expects (BNum, integer)")
		}
		return value.BNum{V: new(big.Int).Add(a.V, b.V)}, nil
	case "bsub":
		a, ok1 := args[0].(value.BNum)
		b, ok2 := args[1].(value.BNum)
		if !ok1 || !ok2 {
			return nil, rtErrf("bsub expects block numbers")
		}
		d := new(big.Int).Sub(a.V, b.V)
		if !ast.InRange(ast.TyInt256, d) {
			return nil, rtErrf("bsub overflow")
		}
		return value.Int{Ty: ast.TyInt256, V: d}, nil
	case "contains":
		m, ok := args[0].(*value.Map)
		if !ok {
			return nil, rtErrf("contains expects a map")
		}
		_, found := m.Get(args[1])
		return value.Bool(found), nil
	case "put":
		m, ok := args[0].(*value.Map)
		if !ok {
			return nil, rtErrf("put expects a map")
		}
		out := m.Copy()
		out.Set(args[1], args[2])
		return out, nil
	case "get":
		m, ok := args[0].(*value.Map)
		if !ok {
			return nil, rtErrf("get expects a map")
		}
		v, found := m.Get(args[1])
		if !found {
			return value.None(m.ValType), nil
		}
		return value.Some(m.ValType, v), nil
	case "remove":
		m, ok := args[0].(*value.Map)
		if !ok {
			return nil, rtErrf("remove expects a map")
		}
		out := m.Copy()
		out.Delete(args[1])
		return out, nil
	case "to_list":
		m, ok := args[0].(*value.Map)
		if !ok {
			return nil, rtErrf("to_list expects a map")
		}
		elemTy := ast.TyPair(m.KeyType, m.ValType)
		lst := value.Value(value.NilList(elemTy))
		keys := m.SortedKeys()
		for i := len(keys) - 1; i >= 0; i-- {
			k := keys[i]
			pair := value.PairV(m.KeyType, m.ValType, m.KeyVals[k], m.Entries[k])
			lst = value.Cons(elemTy, pair, lst)
		}
		return lst, nil
	case "size":
		m, ok := args[0].(*value.Map)
		if !ok {
			return nil, rtErrf("size expects a map")
		}
		return value.Uint32V(uint32(m.Len())), nil
	case "to_bystr":
		b, ok := args[0].(value.ByStr)
		if !ok {
			return nil, rtErrf("to_bystr expects a byte string")
		}
		return value.ByStr{Ty: ast.TyByStr, B: b.B}, nil
	case "schnorr_verify":
		// Modelled verification: accepts iff the "signature" is the
		// sha256 hash of pubkey string + message string.
		pk := args[0].String()
		msg := args[1].String()
		sig, ok := args[2].(value.ByStr)
		if !ok {
			return nil, rtErrf("schnorr_verify expects a byte-string signature")
		}
		h := sha256.Sum256([]byte("schnorr:" + pk + ":" + msg))
		return value.Bool(string(sig.B) == string(h[:])), nil
	}
	return nil, rtErrf("unimplemented builtin %s", name)
}

func evalArith(name string, args []value.Value) (value.Value, error) {
	a, ok1 := args[0].(value.Int)
	b, ok2 := args[1].(value.Int)
	if !ok1 || !ok2 {
		return nil, rtErrf("builtin %s expects integers", name)
	}
	if name != "pow" && a.Ty.Kind != b.Ty.Kind {
		return nil, rtErrf("builtin %s expects matching integer types", name)
	}
	res := new(big.Int)
	switch name {
	case "add":
		res.Add(a.V, b.V)
	case "sub":
		res.Sub(a.V, b.V)
	case "mul":
		res.Mul(a.V, b.V)
	case "div":
		if b.V.Sign() == 0 {
			return nil, rtErrf("division by zero")
		}
		res.Quo(a.V, b.V)
	case "rem":
		if b.V.Sign() == 0 {
			return nil, rtErrf("remainder by zero")
		}
		res.Rem(a.V, b.V)
	case "pow":
		if b.Ty.Kind != ast.Uint32 {
			return nil, rtErrf("pow exponent must be Uint32")
		}
		res.Exp(a.V, b.V, nil)
	}
	if !ast.InRange(a.Ty, res) {
		return nil, rtErrf("integer overflow in %s on %s", name, a.Ty)
	}
	return value.Int{Ty: a.Ty, V: res}, nil
}
