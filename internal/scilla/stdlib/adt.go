// Package stdlib provides the built-in algebraic data types and the
// builtin operations of the Scilla subset: their type signatures (used
// by the typechecker and the CoSplit analysis) and their dynamic
// semantics (used by the interpreter).
package stdlib

import (
	"fmt"

	"cosplit/internal/scilla/ast"
)

// ConstrInfo describes one constructor of an ADT. ArgTypes may mention
// the ADT's type parameters as ast.TypeVar.
type ConstrInfo struct {
	Name     string
	ArgTypes []ast.Type
}

// ADTInfo describes an algebraic data type.
type ADTInfo struct {
	Name       string
	TypeParams []string
	Constrs    []ConstrInfo
}

// ConstrByName returns the constructor with the given name, or nil.
func (a *ADTInfo) ConstrByName(name string) *ConstrInfo {
	for i := range a.Constrs {
		if a.Constrs[i].Name == name {
			return &a.Constrs[i]
		}
	}
	return nil
}

// Registry maps ADT names and constructor names to their definitions.
// A registry contains the built-in ADTs plus any contract-defined types.
type Registry struct {
	adts    map[string]*ADTInfo
	constrs map[string]*ADTInfo // constructor name -> owning ADT
}

// NewRegistry returns a registry populated with the built-in ADTs
// (Bool, Option, List, Pair).
func NewRegistry() *Registry {
	r := &Registry{
		adts:    make(map[string]*ADTInfo),
		constrs: make(map[string]*ADTInfo),
	}
	tv := func(n string) ast.Type { return ast.TypeVar{Name: n} }
	builtins := []*ADTInfo{
		{
			Name: "Bool",
			Constrs: []ConstrInfo{
				{Name: "True"}, {Name: "False"},
			},
		},
		{
			Name:       "Option",
			TypeParams: []string{"'A"},
			Constrs: []ConstrInfo{
				{Name: "Some", ArgTypes: []ast.Type{tv("'A")}},
				{Name: "None"},
			},
		},
		{
			Name:       "List",
			TypeParams: []string{"'A"},
			Constrs: []ConstrInfo{
				{Name: "Cons", ArgTypes: []ast.Type{tv("'A"), ast.ADTType{Name: "List", Args: []ast.Type{tv("'A")}}}},
				{Name: "Nil"},
			},
		},
		{
			Name:       "Pair",
			TypeParams: []string{"'A", "'B"},
			Constrs: []ConstrInfo{
				{Name: "Pair", ArgTypes: []ast.Type{tv("'A"), tv("'B")}},
			},
		},
	}
	for _, a := range builtins {
		if err := r.Register(a); err != nil {
			panic(err)
		}
	}
	return r
}

// Register adds an ADT definition. It is an error to redefine an ADT or
// reuse a constructor name.
func (r *Registry) Register(a *ADTInfo) error {
	if _, ok := r.adts[a.Name]; ok {
		return fmt.Errorf("ADT %s already defined", a.Name)
	}
	for i := range a.Constrs {
		if _, ok := r.constrs[a.Constrs[i].Name]; ok {
			return fmt.Errorf("constructor %s already defined", a.Constrs[i].Name)
		}
	}
	r.adts[a.Name] = a
	for i := range a.Constrs {
		r.constrs[a.Constrs[i].Name] = a
	}
	return nil
}

// RegisterTypeDef converts and registers a contract-level type
// definition.
func (r *Registry) RegisterTypeDef(td ast.TypeDef) error {
	info := &ADTInfo{Name: td.Name}
	for _, c := range td.Constrs {
		info.Constrs = append(info.Constrs, ConstrInfo{Name: c.Name, ArgTypes: c.Args})
	}
	return r.Register(info)
}

// ADT returns the definition of the named ADT, or nil.
func (r *Registry) ADT(name string) *ADTInfo { return r.adts[name] }

// OwnerOfConstr returns the ADT owning the named constructor, or nil.
func (r *Registry) OwnerOfConstr(constr string) *ADTInfo { return r.constrs[constr] }

// InstantiateConstr returns the concrete argument types of a constructor
// applied at the given type arguments.
func (r *Registry) InstantiateConstr(constr string, typeArgs []ast.Type) ([]ast.Type, ast.Type, error) {
	adt := r.OwnerOfConstr(constr)
	if adt == nil {
		return nil, nil, fmt.Errorf("unknown constructor %s", constr)
	}
	if len(typeArgs) != len(adt.TypeParams) {
		return nil, nil, fmt.Errorf("constructor %s of %s expects %d type arguments, got %d",
			constr, adt.Name, len(adt.TypeParams), len(typeArgs))
	}
	ci := adt.ConstrByName(constr)
	out := make([]ast.Type, len(ci.ArgTypes))
	for i, at := range ci.ArgTypes {
		t := at
		for j, tp := range adt.TypeParams {
			t = ast.SubstType(t, tp, typeArgs[j])
		}
		out[i] = t
	}
	resTy := ast.ADTType{Name: adt.Name, Args: typeArgs}
	return out, resTy, nil
}
