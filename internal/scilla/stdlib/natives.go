package stdlib

import (
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

// ApplyFunc is the callback natives use to apply a Scilla function
// value (closure or native) to an argument; it is provided by the
// interpreter to avoid an import cycle.
type ApplyFunc func(fn value.Value, arg value.Value) (value.Value, error)

// NativeSig describes a native function's polymorphic type signature.
type NativeSig struct {
	Name string
	Type ast.Type
}

func tv(n string) ast.Type      { return ast.TypeVar{Name: n} }
func fn(a, r ast.Type) ast.Type { return ast.FunType{Arg: a, Ret: r} }

// NativeSigs returns the type signatures of all native functions; these
// are bound in the global typing environment.
func NativeSigs() []NativeSig {
	listA := ast.TyList(tv("'A"))
	listB := ast.TyList(tv("'B"))
	poly1 := func(t ast.Type) ast.Type { return ast.PolyType{Var: "'A", Body: t} }
	poly2 := func(t ast.Type) ast.Type {
		return ast.PolyType{Var: "'A", Body: ast.PolyType{Var: "'B", Body: t}}
	}
	return []NativeSig{
		{"list_foldl", poly2(fn(fn(tv("'B"), fn(tv("'A"), tv("'B"))), fn(tv("'B"), fn(listA, tv("'B")))))},
		{"list_foldr", poly2(fn(fn(tv("'A"), fn(tv("'B"), tv("'B"))), fn(tv("'B"), fn(listA, tv("'B")))))},
		{"list_map", poly2(fn(fn(tv("'A"), tv("'B")), fn(listA, listB)))},
		{"list_filter", poly1(fn(fn(tv("'A"), ast.TyBool), fn(listA, listA)))},
		{"list_length", poly1(fn(listA, ast.TyUint32))},
		{"list_append", poly1(fn(listA, fn(listA, listA)))},
		{"list_reverse", poly1(fn(listA, listA))},
		{"list_mem", poly1(fn(fn(tv("'A"), fn(tv("'A"), ast.TyBool)), fn(tv("'A"), fn(listA, ast.TyBool))))},
		{"fst", poly2(fn(ast.TyPair(tv("'A"), tv("'B")), tv("'A")))},
		{"snd", poly2(fn(ast.TyPair(tv("'A"), tv("'B")), tv("'B")))},
	}
}

// NativeValues builds the runtime values of the native functions, using
// apply to invoke Scilla function arguments.
func NativeValues(apply ApplyFunc) map[string]*value.Native {
	out := make(map[string]*value.Native)
	reg := func(name string, needTypes, arity int,
		f func(targs []ast.Type, args []value.Value) (value.Value, error)) {
		out[name] = &value.Native{Name: name, NeedTypes: needTypes, Arity: arity, Fn: f}
	}

	reg("list_foldl", 2, 3, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		f, acc := args[0], args[1]
		items, ok := value.ListValues(args[2])
		if !ok {
			return nil, rtErrf("list_foldl expects a list")
		}
		for _, it := range items {
			partial, err := apply(f, acc)
			if err != nil {
				return nil, err
			}
			acc, err = apply(partial, it)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	})
	reg("list_foldr", 2, 3, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		f, acc := args[0], args[1]
		items, ok := value.ListValues(args[2])
		if !ok {
			return nil, rtErrf("list_foldr expects a list")
		}
		for i := len(items) - 1; i >= 0; i-- {
			partial, err := apply(f, items[i])
			if err != nil {
				return nil, err
			}
			acc, err = apply(partial, acc)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	})
	reg("list_map", 2, 2, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		f := args[0]
		items, ok := value.ListValues(args[1])
		if !ok {
			return nil, rtErrf("list_map expects a list")
		}
		elemT := ast.Type(ast.TyUnit)
		if len(targs) == 2 {
			elemT = targs[1]
		}
		res := value.Value(value.NilList(elemT))
		for i := len(items) - 1; i >= 0; i-- {
			v, err := apply(f, items[i])
			if err != nil {
				return nil, err
			}
			res = value.Cons(elemT, v, res)
		}
		return res, nil
	})
	reg("list_filter", 1, 2, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		f := args[0]
		items, ok := value.ListValues(args[1])
		if !ok {
			return nil, rtErrf("list_filter expects a list")
		}
		elemT := ast.Type(ast.TyUnit)
		if len(targs) == 1 {
			elemT = targs[0]
		}
		var kept []value.Value
		for _, it := range items {
			b, err := apply(f, it)
			if err != nil {
				return nil, err
			}
			if value.IsTrue(b) {
				kept = append(kept, it)
			}
		}
		res := value.Value(value.NilList(elemT))
		for i := len(kept) - 1; i >= 0; i-- {
			res = value.Cons(elemT, kept[i], res)
		}
		return res, nil
	})
	reg("list_length", 1, 1, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		items, ok := value.ListValues(args[0])
		if !ok {
			return nil, rtErrf("list_length expects a list")
		}
		return value.Uint32V(uint32(len(items))), nil
	})
	reg("list_append", 1, 2, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		a, ok1 := value.ListValues(args[0])
		b, ok2 := value.ListValues(args[1])
		if !ok1 || !ok2 {
			return nil, rtErrf("list_append expects lists")
		}
		elemT := ast.Type(ast.TyUnit)
		if len(targs) == 1 {
			elemT = targs[0]
		}
		res := value.Value(value.NilList(elemT))
		for i := len(b) - 1; i >= 0; i-- {
			res = value.Cons(elemT, b[i], res)
		}
		for i := len(a) - 1; i >= 0; i-- {
			res = value.Cons(elemT, a[i], res)
		}
		return res, nil
	})
	reg("list_reverse", 1, 1, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		items, ok := value.ListValues(args[0])
		if !ok {
			return nil, rtErrf("list_reverse expects a list")
		}
		elemT := ast.Type(ast.TyUnit)
		if len(targs) == 1 {
			elemT = targs[0]
		}
		res := value.Value(value.NilList(elemT))
		for _, it := range items {
			res = value.Cons(elemT, it, res)
		}
		return res, nil
	})
	reg("list_mem", 1, 3, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		eq, needle := args[0], args[1]
		items, ok := value.ListValues(args[2])
		if !ok {
			return nil, rtErrf("list_mem expects a list")
		}
		for _, it := range items {
			partial, err := apply(eq, needle)
			if err != nil {
				return nil, err
			}
			b, err := apply(partial, it)
			if err != nil {
				return nil, err
			}
			if value.IsTrue(b) {
				return value.True(), nil
			}
		}
		return value.False(), nil
	})
	reg("fst", 2, 1, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		p, ok := args[0].(value.ADT)
		if !ok || p.Constr != "Pair" || len(p.Args) != 2 {
			return nil, rtErrf("fst expects a pair")
		}
		return p.Args[0], nil
	})
	reg("snd", 2, 1, func(targs []ast.Type, args []value.Value) (value.Value, error) {
		p, ok := args[0].(value.ADT)
		if !ok || p.Constr != "Pair" || len(p.Args) != 2 {
			return nil, rtErrf("snd expects a pair")
		}
		return p.Args[1], nil
	})
	return out
}
