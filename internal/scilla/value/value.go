// Package value defines the runtime value representation shared by the
// Scilla interpreter, the builtin library, and the blockchain state
// machinery.
package value

import (
	"encoding/hex"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"cosplit/internal/scilla/ast"
)

// Value is a runtime Scilla value.
type Value interface {
	value()
	// Type returns the static type of the value.
	Type() ast.Type
	// String renders the value for display and canonical key encoding.
	String() string
}

// Int is an integer value of a specific signed/unsigned width.
type Int struct {
	Ty ast.PrimType
	V  *big.Int
}

func (Int) value() {}

// Type implements Value.
func (i Int) Type() ast.Type { return i.Ty }

func (i Int) String() string { return i.V.String() }

// NewInt builds an integer value, panicking if out of range (callers
// validate or construct from checked arithmetic).
func NewInt(t ast.PrimType, v *big.Int) Int {
	if !ast.InRange(t, v) {
		panic(fmt.Sprintf("value %s out of range for %s", v, t))
	}
	return Int{Ty: t, V: v}
}

// Uint128 builds a Uint128 value from a uint64.
func Uint128(v uint64) Int {
	return Int{Ty: ast.TyUint128, V: new(big.Int).SetUint64(v)}
}

// Uint32V builds a Uint32 value from a uint32.
func Uint32V(v uint32) Int {
	return Int{Ty: ast.TyUint32, V: new(big.Int).SetUint64(uint64(v))}
}

// Str is a string value.
type Str struct{ S string }

func (Str) value() {}

// Type implements Value.
func (Str) Type() ast.Type { return ast.TyString }

func (s Str) String() string { return s.S }

// ByStr is a byte-string value (fixed-width ByStr20/ByStr32 or dynamic).
type ByStr struct {
	Ty ast.PrimType
	B  []byte
}

func (ByStr) value() {}

// Type implements Value.
func (b ByStr) Type() ast.Type { return b.Ty }

func (b ByStr) String() string {
	buf := make([]byte, 2+2*len(b.B))
	buf[0], buf[1] = '0', 'x'
	hex.Encode(buf[2:], b.B)
	return string(buf)
}

// BNum is a block-number value.
type BNum struct{ V *big.Int }

func (BNum) value() {}

// Type implements Value.
func (BNum) Type() ast.Type { return ast.TyBNum }

func (b BNum) String() string { return b.V.String() }

// ADT is a constructed algebraic value such as True, Some x, or Cons h t.
type ADT struct {
	TypeName string // ADT name, e.g. "Option"
	Constr   string // constructor name, e.g. "Some"
	TypeArgs []ast.Type
	Args     []Value
}

func (ADT) value() {}

// Type implements Value.
func (a ADT) Type() ast.Type {
	return ast.ADTType{Name: a.TypeName, Args: a.TypeArgs}
}

func (a ADT) String() string {
	if len(a.Args) == 0 {
		return a.Constr
	}
	parts := make([]string, 0, len(a.Args)+1)
	parts = append(parts, a.Constr)
	for _, v := range a.Args {
		s := v.String()
		if adt, ok := v.(ADT); ok && len(adt.Args) > 0 {
			s = "(" + s + ")"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ")
}

// Map is a mutable key-value map. Keys are stored by their canonical
// string encoding; KeyVals remembers the original key values.
type Map struct {
	KeyType ast.Type
	ValType ast.Type
	Entries map[string]Value // canonical key -> value
	KeyVals map[string]Value // canonical key -> key value
}

func (*Map) value() {}

// Type implements Value.
func (m *Map) Type() ast.Type { return ast.MapType{Key: m.KeyType, Val: m.ValType} }

// NewMap builds an empty map value.
func NewMap(kt, vt ast.Type) *Map {
	return &Map{
		KeyType: kt, ValType: vt,
		Entries: make(map[string]Value),
		KeyVals: make(map[string]Value),
	}
}

// Get returns the value at key k, if present.
func (m *Map) Get(k Value) (Value, bool) {
	v, ok := m.Entries[CanonicalKey(k)]
	return v, ok
}

// Set stores v at key k.
func (m *Map) Set(k, v Value) {
	ck := CanonicalKey(k)
	m.Entries[ck] = v
	m.KeyVals[ck] = k
}

// Delete removes key k.
func (m *Map) Delete(k Value) {
	ck := CanonicalKey(k)
	delete(m.Entries, ck)
	delete(m.KeyVals, ck)
}

// GetCK returns the value at precomputed canonical key ck, if present.
// Callers must ensure ck == CanonicalKey(k) for the key in question.
func (m *Map) GetCK(ck string) (Value, bool) {
	v, ok := m.Entries[ck]
	return v, ok
}

// SetCK stores v at key k whose canonical encoding ck was precomputed.
func (m *Map) SetCK(ck string, k, v Value) {
	m.Entries[ck] = v
	m.KeyVals[ck] = k
}

// DeleteCK removes the entry at precomputed canonical key ck.
func (m *Map) DeleteCK(ck string) {
	delete(m.Entries, ck)
	delete(m.KeyVals, ck)
}

// Len returns the number of entries.
func (m *Map) Len() int { return len(m.Entries) }

// SortedKeys returns the canonical keys in sorted order (for
// deterministic iteration and printing).
func (m *Map) SortedKeys() []string {
	keys := make([]string, 0, len(m.Entries))
	for k := range m.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (m *Map) String() string {
	var sb strings.Builder
	sb.WriteString("{")
	for i, k := range m.SortedKeys() {
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "%s => %s", k, m.Entries[k].String())
	}
	sb.WriteString("}")
	return sb.String()
}

// Copy returns a deep copy of the map (values are copied via Copy).
func (m *Map) Copy() *Map {
	out := NewMap(m.KeyType, m.ValType)
	for k, v := range m.Entries {
		out.Entries[k] = Copy(v)
		out.KeyVals[k] = m.KeyVals[k]
	}
	return out
}

// Msg is a constructed message or event payload.
type Msg struct {
	Entries map[string]Value
}

func (Msg) value() {}

// Type implements Value.
func (Msg) Type() ast.Type { return ast.TyMessage }

func (m Msg) String() string {
	keys := make([]string, 0, len(m.Entries))
	for k := range m.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "%s : %s", k, m.Entries[k].String())
	}
	sb.WriteString("}")
	return sb.String()
}

// Env is a lexical environment for closures.
type Env struct {
	parent *Env
	vars   map[string]Value
}

// NewEnv returns an empty environment with the given parent (may be nil).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]Value)}
}

// Lookup resolves a name through the environment chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Bind adds a binding to this environment frame.
func (e *Env) Bind(name string, v Value) { e.vars[name] = v }

// Reset empties this frame and re-parents it, retaining the map's
// capacity. Callers reusing a frame (the interpreter's per-call
// transition environment) must guarantee no closure created under the
// old bindings is still reachable.
func (e *Env) Reset(parent *Env) {
	e.parent = parent
	clear(e.vars)
}

// Closure is a function value: a lambda plus its captured environment.
type Closure struct {
	Param     string
	ParamType ast.Type
	Body      ast.Expr
	Env       *Env
}

func (*Closure) value() {}

// Type implements Value. The return type is not tracked dynamically,
// so closures report only their parameter type.
func (c *Closure) Type() ast.Type {
	return ast.FunType{Arg: c.ParamType, Ret: ast.TyUnit}
}

func (c *Closure) String() string { return "<closure>" }

// TClosure is a type-abstraction value (tfun).
type TClosure struct {
	TVar string
	Body ast.Expr
	Env  *Env
}

func (*TClosure) value() {}

// Type implements Value.
func (c *TClosure) Type() ast.Type {
	return ast.PolyType{Var: c.TVar, Body: ast.TyUnit}
}

func (c *TClosure) String() string { return "<tfun>" }

// Unit is the unit value.
type Unit struct{}

func (Unit) value() {}

// Type implements Value.
func (Unit) Type() ast.Type { return ast.TyUnit }

func (Unit) String() string { return "()" }

// CanonicalKey renders a value as a canonical map key. Only primitive
// values are legal map keys; compound values fall back to String.
func CanonicalKey(v Value) string {
	switch k := v.(type) {
	case Int:
		return k.Ty.String() + ":" + k.V.String()
	case Str:
		return "s:" + k.S
	case ByStr:
		buf := make([]byte, 4+2*len(k.B))
		copy(buf, "b:0x")
		hex.Encode(buf[4:], k.B)
		return string(buf)
	case BNum:
		return "n:" + k.V.String()
	default:
		return "x:" + v.String()
	}
}

// Copy deep-copies a value. Immutable values are returned as-is; maps
// are copied structurally.
func Copy(v Value) Value {
	switch val := v.(type) {
	case *Map:
		return val.Copy()
	case ADT:
		args := make([]Value, len(val.Args))
		for i, a := range val.Args {
			args[i] = Copy(a)
		}
		return ADT{TypeName: val.TypeName, Constr: val.Constr, TypeArgs: val.TypeArgs, Args: args}
	case Int:
		return Int{Ty: val.Ty, V: new(big.Int).Set(val.V)}
	default:
		return v
	}
}

// Equal reports structural equality of two values. Closures are never
// equal. Maps compare entry-wise.
func Equal(a, b Value) bool {
	switch av := a.(type) {
	case Int:
		bv, ok := b.(Int)
		return ok && av.Ty == bv.Ty && av.V.Cmp(bv.V) == 0
	case Str:
		bv, ok := b.(Str)
		return ok && av.S == bv.S
	case ByStr:
		bv, ok := b.(ByStr)
		return ok && av.Ty == bv.Ty && string(av.B) == string(bv.B)
	case BNum:
		bv, ok := b.(BNum)
		return ok && av.V.Cmp(bv.V) == 0
	case ADT:
		bv, ok := b.(ADT)
		if !ok || av.Constr != bv.Constr || len(av.Args) != len(bv.Args) {
			return false
		}
		for i := range av.Args {
			if !Equal(av.Args[i], bv.Args[i]) {
				return false
			}
		}
		return true
	case *Map:
		bv, ok := b.(*Map)
		if !ok || av.Len() != bv.Len() {
			return false
		}
		for k, v := range av.Entries {
			bvv, ok := bv.Entries[k]
			if !ok || !Equal(v, bvv) {
				return false
			}
		}
		return true
	case Msg:
		bv, ok := b.(Msg)
		if !ok || len(av.Entries) != len(bv.Entries) {
			return false
		}
		for k, v := range av.Entries {
			bvv, ok := bv.Entries[k]
			if !ok || !Equal(v, bvv) {
				return false
			}
		}
		return true
	case Unit:
		_, ok := b.(Unit)
		return ok
	}
	return false
}

// Convenience ADT constructors.

// True is the Bool True value.
func True() ADT { return ADT{TypeName: "Bool", Constr: "True"} }

// False is the Bool False value.
func False() ADT { return ADT{TypeName: "Bool", Constr: "False"} }

// Bool converts a Go bool to a Scilla Bool.
func Bool(b bool) ADT {
	if b {
		return True()
	}
	return False()
}

// IsTrue reports whether v is the Bool True value.
func IsTrue(v Value) bool {
	a, ok := v.(ADT)
	return ok && a.TypeName == "Bool" && a.Constr == "True"
}

// Some wraps a value in Option.
func Some(t ast.Type, v Value) ADT {
	return ADT{TypeName: "Option", Constr: "Some", TypeArgs: []ast.Type{t}, Args: []Value{v}}
}

// None is the empty Option of element type t.
func None(t ast.Type) ADT {
	return ADT{TypeName: "Option", Constr: "None", TypeArgs: []ast.Type{t}}
}

// NilList is the empty List of element type t.
func NilList(t ast.Type) ADT {
	return ADT{TypeName: "List", Constr: "Nil", TypeArgs: []ast.Type{t}}
}

// Cons prepends a value to a list.
func Cons(t ast.Type, h, tl Value) ADT {
	return ADT{TypeName: "List", Constr: "Cons", TypeArgs: []ast.Type{t}, Args: []Value{h, tl}}
}

// PairV builds a Pair value.
func PairV(ta, tb ast.Type, a, b Value) ADT {
	return ADT{TypeName: "Pair", Constr: "Pair", TypeArgs: []ast.Type{ta, tb}, Args: []Value{a, b}}
}

// FromLiteral converts an AST literal to a runtime value.
func FromLiteral(l ast.Literal) Value {
	switch {
	case l.Type.IsInt():
		return Int{Ty: l.Type, V: new(big.Int).Set(l.Int)}
	case l.Type.Kind == ast.StringKind:
		return Str{S: l.Str}
	case l.Type.Kind == ast.BNum:
		return BNum{V: new(big.Int).Set(l.Int)}
	default:
		b := make([]byte, len(l.Bytes))
		copy(b, l.Bytes)
		return ByStr{Ty: l.Type, B: b}
	}
}

// ListValues converts a Scilla List ADT into a Go slice.
func ListValues(v Value) ([]Value, bool) {
	var out []Value
	for {
		a, ok := v.(ADT)
		if !ok || a.TypeName != "List" {
			return nil, false
		}
		if a.Constr == "Nil" {
			return out, true
		}
		if a.Constr != "Cons" || len(a.Args) != 2 {
			return nil, false
		}
		out = append(out, a.Args[0])
		v = a.Args[1]
	}
}
