package value

import "cosplit/internal/scilla/ast"

// Native is a partially-applied native (stdlib) function such as
// list_foldl. Natives are polymorphic: they first collect NeedTypes
// type arguments (via @name T ...), then Arity value arguments, and
// then reduce by calling Fn.
type Native struct {
	Name      string
	NeedTypes int
	Arity     int
	TypeArgs  []ast.Type
	Args      []Value
	Fn        func(typeArgs []ast.Type, args []Value) (Value, error)
}

func (*Native) value() {}

// Type implements Value. Natives report an opaque type; the typechecker
// resolves native types statically from their registered signatures.
func (n *Native) Type() ast.Type { return ast.TyUnit }

func (n *Native) String() string { return "<native " + n.Name + ">" }

// WithTypeArgs returns a copy of the native with additional type
// arguments applied.
func (n *Native) WithTypeArgs(targs []ast.Type) *Native {
	out := *n
	out.TypeArgs = append(append([]ast.Type{}, n.TypeArgs...), targs...)
	return &out
}

// WithArg returns a copy of the native with one more value argument.
func (n *Native) WithArg(v Value) *Native {
	out := *n
	out.Args = append(append([]Value{}, n.Args...), v)
	return &out
}

// Saturated reports whether the native has all its value arguments.
func (n *Native) Saturated() bool { return len(n.Args) == n.Arity }
