package value_test

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

func randomValue(r *rand.Rand, depth int) value.Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return value.Uint128(uint64(r.Intn(1000)))
		case 1:
			return value.Str{S: []string{"a", "b", "c"}[r.Intn(3)]}
		case 2:
			b := make([]byte, 20)
			r.Read(b)
			return value.ByStr{Ty: ast.TyByStr20, B: b}
		default:
			return value.Bool(r.Intn(2) == 0)
		}
	}
	switch r.Intn(3) {
	case 0:
		return value.Some(ast.TyUint128, randomValue(r, depth-1))
	case 1:
		m := value.NewMap(ast.TyString, ast.TyUint128)
		for i := 0; i < r.Intn(4); i++ {
			m.Set(value.Str{S: string(rune('a' + i))}, randomValue(r, 0))
		}
		return m
	default:
		return value.Cons(ast.TyUint128, randomValue(r, depth-1), value.NilList(ast.TyUint128))
	}
}

// Equal must be reflexive; Copy must produce an Equal value.
func TestEqualCopyLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 2)
		if !value.Equal(v, v) {
			return false
		}
		cp := value.Copy(v)
		return value.Equal(v, cp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Copy must be deep for maps: mutating the copy leaves the original.
func TestMapCopyIsDeep(t *testing.T) {
	m := value.NewMap(ast.TyString, ast.TyUint128)
	m.Set(value.Str{S: "k"}, value.Uint128(1))
	cp := value.Copy(m).(*value.Map)
	cp.Set(value.Str{S: "k"}, value.Uint128(2))
	v, _ := m.Get(value.Str{S: "k"})
	if v.(value.Int).V.Uint64() != 1 {
		t.Error("map copy is shallow")
	}
}

// CanonicalKey must distinguish differently-typed equal renderings and
// be injective on primitive values of one type.
func TestCanonicalKey(t *testing.T) {
	if value.CanonicalKey(value.Uint128(1)) == value.CanonicalKey(value.Uint32V(1)) {
		t.Error("canonical keys collide across integer widths")
	}
	if value.CanonicalKey(value.Str{S: "1"}) == value.CanonicalKey(value.Uint128(1)) {
		t.Error("canonical keys collide across types")
	}
	f := func(a, b uint32) bool {
		ka := value.CanonicalKey(value.Uint32V(a))
		kb := value.CanonicalKey(value.Uint32V(b))
		return (ka == kb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapOperations(t *testing.T) {
	m := value.NewMap(ast.TyByStr20, ast.TyUint128)
	k1 := value.ByStr{Ty: ast.TyByStr20, B: make([]byte, 20)}
	if _, ok := m.Get(k1); ok {
		t.Error("empty map contains a key")
	}
	m.Set(k1, value.Uint128(5))
	if v, ok := m.Get(k1); !ok || v.(value.Int).V.Uint64() != 5 {
		t.Error("set/get failed")
	}
	if m.Len() != 1 {
		t.Error("len wrong")
	}
	m.Delete(k1)
	if m.Len() != 0 {
		t.Error("delete failed")
	}
}

func TestSortedKeysDeterministic(t *testing.T) {
	m := value.NewMap(ast.TyString, ast.TyUint128)
	for _, s := range []string{"z", "a", "m"} {
		m.Set(value.Str{S: s}, value.Uint128(1))
	}
	keys := m.SortedKeys()
	if len(keys) != 3 || keys[0] > keys[1] || keys[1] > keys[2] {
		t.Errorf("SortedKeys not sorted: %v", keys)
	}
}

func TestListValues(t *testing.T) {
	l := value.Cons(ast.TyUint128, value.Uint128(1),
		value.Cons(ast.TyUint128, value.Uint128(2), value.NilList(ast.TyUint128)))
	items, ok := value.ListValues(l)
	if !ok || len(items) != 2 {
		t.Fatalf("ListValues = %v, %v", items, ok)
	}
	if items[0].(value.Int).V.Uint64() != 1 || items[1].(value.Int).V.Uint64() != 2 {
		t.Error("list order wrong")
	}
	if _, ok := value.ListValues(value.Uint128(1)); ok {
		t.Error("non-list accepted")
	}
}

func TestFromLiteral(t *testing.T) {
	l := ast.IntLit(ast.TyUint128, 42)
	v := value.FromLiteral(l)
	if v.(value.Int).V.Uint64() != 42 {
		t.Error("int literal conversion failed")
	}
	// The literal's big.Int must not be aliased.
	v.(value.Int).V.SetUint64(7)
	if l.Int.Uint64() != 42 {
		t.Error("FromLiteral aliased the literal's big.Int")
	}
	s := value.FromLiteral(ast.StrLit("hi"))
	if s.(value.Str).S != "hi" {
		t.Error("string literal conversion failed")
	}
}

func TestBoolHelpers(t *testing.T) {
	if !value.IsTrue(value.True()) || value.IsTrue(value.False()) {
		t.Error("IsTrue wrong")
	}
	if !value.IsTrue(value.Bool(true)) || value.IsTrue(value.Bool(false)) {
		t.Error("Bool wrong")
	}
}

func TestEnvScoping(t *testing.T) {
	outer := value.NewEnv(nil)
	outer.Bind("x", value.Uint128(1))
	inner := value.NewEnv(outer)
	inner.Bind("x", value.Uint128(2))
	if v, _ := inner.Lookup("x"); v.(value.Int).V.Uint64() != 2 {
		t.Error("inner binding not shadowing")
	}
	if v, _ := outer.Lookup("x"); v.(value.Int).V.Uint64() != 1 {
		t.Error("outer binding clobbered")
	}
	if _, ok := inner.Lookup("y"); ok {
		t.Error("unbound name resolved")
	}
}

func TestIntRangeHelpers(t *testing.T) {
	if !ast.InRange(ast.TyUint128, big.NewInt(0)) {
		t.Error("0 not in Uint128 range")
	}
	if ast.InRange(ast.TyUint128, big.NewInt(-1)) {
		t.Error("-1 in Uint128 range")
	}
	if !ast.InRange(ast.TyInt32, big.NewInt(-2147483648)) {
		t.Error("Int32 min not in range")
	}
	if ast.InRange(ast.TyInt32, big.NewInt(2147483648)) {
		t.Error("Int32 max+1 in range")
	}
}
