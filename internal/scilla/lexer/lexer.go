// Package lexer tokenises Scilla source text. It is a hand-written
// single-pass scanner producing a token stream consumed by the parser.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF        Kind = iota
	Ident           // lower-case identifier (possibly _prefixed)
	CIdent          // capitalised identifier (constructors, types, transitions)
	TIdent          // type variable, e.g. 'A
	IntTok          // integer literal (decimal, possibly negative)
	StringTok       // string literal (unquoted value in Text)
	HexTok          // hex byte-string literal, Text excludes the 0x prefix
	LParen          // (
	RParen          // )
	LBrace          // {
	RBrace          // }
	LBracket        // [
	RBracket        // ]
	Semi            // ;
	Colon           // :
	Comma           // ,
	Eq              // =
	Arrow           // ->
	DArrow          // =>
	LArrow          // <-
	Assign          // :=
	Bar             // |
	At              // @
	Amp             // &
	Underscore      // _
	Dot             // .
	Keyword         // reserved word; Text holds the word
)

var keywords = map[string]bool{
	"scilla_version": true, "library": true, "contract": true,
	"field": true, "transition": true, "end": true, "let": true,
	"in": true, "fun": true, "tfun": true, "builtin": true,
	"match": true, "with": true, "accept": true, "send": true,
	"event": true, "throw": true, "delete": true, "exists": true,
	"type": true, "of": true,
}

// Token is a single lexeme with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "<eof>"
	case StringTok:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// Error is a lexing error with position information.
type Error struct {
	Msg  string
	Line int
	Col  int
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans Scilla source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens (excluding EOF).
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

// skipTrivia consumes whitespace and (* nested comments *).
func (l *Lexer) skipTrivia() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '(' && l.peekAt(1) == '*':
			depth := 0
			for l.pos < len(l.src) {
				if l.peek() == '(' && l.peekAt(1) == '*' {
					depth++
					l.advance()
					l.advance()
				} else if l.peek() == '*' && l.peekAt(1) == ')' {
					depth--
					l.advance()
					l.advance()
					if depth == 0 {
						break
					}
				} else {
					l.advance()
				}
			}
			if depth != 0 {
				return l.errf("unterminated comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipTrivia(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	mk := func(k Kind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	c := l.peek()
	switch {
	case c == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X'):
		l.advance()
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		hex := l.src[start:l.pos]
		if len(hex) == 0 || len(hex)%2 != 0 {
			return Token{}, l.errf("malformed hex literal 0x%s", hex)
		}
		return mk(HexTok, strings.ToLower(hex)), nil
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return mk(IntTok, l.src[start:l.pos]), nil
	case c == '-' && isDigit(l.peekAt(1)):
		start := l.pos
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return mk(IntTok, l.src[start:l.pos]), nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return Token{}, l.errf("unterminated escape")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(esc)
				default:
					return Token{}, l.errf("unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return mk(StringTok, sb.String()), nil
	case c == '\'':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.peek()) {
			l.advance()
		}
		if l.pos == start {
			return Token{}, l.errf("malformed type variable")
		}
		return mk(TIdent, "'"+l.src[start:l.pos]), nil
	case isIdentStart(c):
		if c == '_' && !isIdentChar(l.peekAt(1)) {
			l.advance()
			return mk(Underscore, "_"), nil
		}
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if keywords[word] {
			return mk(Keyword, word), nil
		}
		if word[0] >= 'A' && word[0] <= 'Z' {
			return mk(CIdent, word), nil
		}
		return mk(Ident, word), nil
	}
	l.advance()
	switch c {
	case '(':
		return mk(LParen, "("), nil
	case ')':
		return mk(RParen, ")"), nil
	case '{':
		return mk(LBrace, "{"), nil
	case '}':
		return mk(RBrace, "}"), nil
	case '[':
		return mk(LBracket, "["), nil
	case ']':
		return mk(RBracket, "]"), nil
	case ';':
		return mk(Semi, ";"), nil
	case ',':
		return mk(Comma, ","), nil
	case '|':
		return mk(Bar, "|"), nil
	case '@':
		return mk(At, "@"), nil
	case '&':
		return mk(Amp, "&"), nil
	case '.':
		return mk(Dot, "."), nil
	case ':':
		if l.peek() == '=' {
			l.advance()
			return mk(Assign, ":="), nil
		}
		return mk(Colon, ":"), nil
	case '=':
		if l.peek() == '>' {
			l.advance()
			return mk(DArrow, "=>"), nil
		}
		return mk(Eq, "="), nil
	case '-':
		if l.peek() == '>' {
			l.advance()
			return mk(Arrow, "->"), nil
		}
		return Token{}, l.errf("unexpected '-'")
	case '<':
		if l.peek() == '-' {
			l.advance()
			return mk(LArrow, "<-"), nil
		}
		return Token{}, l.errf("unexpected '<'")
	}
	return Token{}, l.errf("unexpected character %q", c)
}
