package lexer_test

import (
	"testing"

	"cosplit/internal/scilla/lexer"
)

func kinds(t *testing.T, src string) []lexer.Kind {
	t.Helper()
	toks, err := lexer.Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]lexer.Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	cases := []struct {
		src  string
		want []lexer.Kind
	}{
		{"x <- f", []lexer.Kind{lexer.Ident, lexer.LArrow, lexer.Ident}},
		{"f := x", []lexer.Kind{lexer.Ident, lexer.Assign, lexer.Ident}},
		{"x = e", []lexer.Kind{lexer.Ident, lexer.Eq, lexer.Ident}},
		{"m[k] := v", []lexer.Kind{lexer.Ident, lexer.LBracket, lexer.Ident, lexer.RBracket, lexer.Assign, lexer.Ident}},
		{"fun (i : t) => e", []lexer.Kind{lexer.Keyword, lexer.LParen, lexer.Ident, lexer.Colon, lexer.Ident, lexer.RParen, lexer.DArrow, lexer.Ident}},
		{"Int32 -5", []lexer.Kind{lexer.CIdent, lexer.IntTok}},
		{"a -> b", []lexer.Kind{lexer.Ident, lexer.Arrow, lexer.Ident}},
		{"@f 'A", []lexer.Kind{lexer.At, lexer.Ident, lexer.TIdent}},
		{"x <- &BLOCKNUMBER", []lexer.Kind{lexer.Ident, lexer.LArrow, lexer.Amp, lexer.CIdent}},
		{"_ _x", []lexer.Kind{lexer.Underscore, lexer.Ident}},
		{`"hi"`, []lexer.Kind{lexer.StringTok}},
		{"0xAbCd", []lexer.Kind{lexer.HexTok}},
		{"| Some x =>", []lexer.Kind{lexer.Bar, lexer.CIdent, lexer.Ident, lexer.DArrow}},
	}
	for _, c := range cases {
		got := kinds(t, c.src)
		if len(got) != len(c.want) {
			t.Errorf("%q: got %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q: token %d = %v, want %v", c.src, i, got[i], c.want[i])
			}
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks, err := lexer.Tokenize("let letx in inx match matching end ending")
	if err != nil {
		t.Fatal(err)
	}
	want := []lexer.Kind{
		lexer.Keyword, lexer.Ident, lexer.Keyword, lexer.Ident,
		lexer.Keyword, lexer.Ident, lexer.Keyword, lexer.Ident,
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := lexer.Tokenize("a (* comment (* nested *) still *) b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comments not skipped: %v", toks)
	}
	if _, err := lexer.Tokenize("a (* unterminated"); err == nil {
		t.Error("unterminated comment not reported")
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := lexer.Tokenize(`"a\nb\"c\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\nb\"c\\" {
		t.Errorf("escape handling: %q", toks[0].Text)
	}
	if _, err := lexer.Tokenize(`"unterminated`); err == nil {
		t.Error("unterminated string not reported")
	}
	if _, err := lexer.Tokenize(`"\q"`); err == nil {
		t.Error("unknown escape not reported")
	}
}

func TestPositions(t *testing.T) {
	toks, err := lexer.Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("token a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("token b at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestMalformedHex(t *testing.T) {
	if _, err := lexer.Tokenize("0x123"); err == nil {
		t.Error("odd-length hex literal not reported")
	}
	if _, err := lexer.Tokenize("0x"); err == nil {
		t.Error("empty hex literal not reported")
	}
}

func TestUnexpectedChars(t *testing.T) {
	for _, src := range []string{"#", "a - b", "a < b"} {
		if _, err := lexer.Tokenize(src); err == nil {
			t.Errorf("%q: expected a lex error", src)
		}
	}
}
