// Package parser implements a recursive-descent parser for the Scilla
// subset defined in internal/scilla/ast.
package parser

import (
	"fmt"
	"math/big"
	"strings"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/lexer"
)

// Error is a parse error with position information.
type Error struct {
	Msg  string
	Line int
	Col  int
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parser consumes a token stream and produces AST nodes.
type Parser struct {
	toks []lexer.Token
	pos  int
	src  string
}

// ParseModule parses a complete Scilla module from source text.
func ParseModule(src string) (*ast.Module, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	m, err := p.module()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	m.Source = src
	return m, nil
}

// ParseExpr parses a standalone expression (used in tests and the REPL
// tooling).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return e, nil
}

// ParseType parses a standalone type.
func ParseType(src string) (ast.Type, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return t, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() lexer.Token {
	if p.atEOF() {
		last := lexer.Token{Kind: lexer.EOF}
		if len(p.toks) > 0 {
			prev := p.toks[len(p.toks)-1]
			last.Line, last.Col = prev.Line, prev.Col
		}
		return last
	}
	return p.toks[p.pos]
}

func (p *Parser) peekAt(off int) lexer.Token {
	if p.pos+off >= len(p.toks) {
		return lexer.Token{Kind: lexer.EOF}
	}
	return p.toks[p.pos+off]
}

func (p *Parser) advance() lexer.Token {
	t := p.cur()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

func (p *Parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == lexer.Keyword && t.Text == kw
}

func (p *Parser) expect(k lexer.Kind, what string) (lexer.Token, error) {
	if !p.at(k) {
		return lexer.Token{}, p.errf("expected %s, found %q", what, p.cur().String())
	}
	return p.advance(), nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %q, found %q", kw, p.cur().String())
	}
	p.advance()
	return nil
}

func (p *Parser) pos2() ast.Pos {
	t := p.cur()
	return ast.Pos{Line: t.Line, Col: t.Col}
}

// ident accepts a lower-case identifier.
func (p *Parser) ident(what string) (string, error) {
	t, err := p.expect(lexer.Ident, what)
	if err != nil {
		return "", err
	}
	return t.Text, nil
}

// anyIdent accepts either a lower-case or capitalised identifier.
func (p *Parser) anyIdent(what string) (string, error) {
	if p.at(lexer.Ident) || p.at(lexer.CIdent) {
		return p.advance().Text, nil
	}
	return "", p.errf("expected %s, found %q", what, p.cur().String())
}

// --- Module structure ---

func (p *Parser) module() (*ast.Module, error) {
	m := &ast.Module{}
	if err := p.expectKeyword("scilla_version"); err != nil {
		return nil, err
	}
	vt, err := p.expect(lexer.IntTok, "version number")
	if err != nil {
		return nil, err
	}
	fmt.Sscanf(vt.Text, "%d", &m.Version)

	if p.atKeyword("library") {
		lib, err := p.library()
		if err != nil {
			return nil, err
		}
		m.Lib = lib
	}
	c, err := p.contract()
	if err != nil {
		return nil, err
	}
	m.Contract = *c
	return m, nil
}

func (p *Parser) library() (*ast.Library, error) {
	p.advance() // library
	name, err := p.expect(lexer.CIdent, "library name")
	if err != nil {
		return nil, err
	}
	lib := &ast.Library{Name: name.Text}
	for {
		switch {
		case p.atKeyword("let"):
			p.advance()
			id, err := p.ident("definition name")
			if err != nil {
				return nil, err
			}
			var ty ast.Type
			if p.at(lexer.Colon) {
				p.advance()
				ty, err = p.parseType()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(lexer.Eq, "'='"); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			lib.Defs = append(lib.Defs, ast.LibDef{Name: id, Ty: ty, Expr: e})
		case p.atKeyword("type"):
			p.advance()
			tname, err := p.expect(lexer.CIdent, "type name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.Eq, "'='"); err != nil {
				return nil, err
			}
			td := ast.TypeDef{Name: tname.Text}
			for p.at(lexer.Bar) {
				p.advance()
				cname, err := p.expect(lexer.CIdent, "constructor name")
				if err != nil {
					return nil, err
				}
				cd := ast.ConstrDef{Name: cname.Text}
				if p.atKeyword("of") {
					p.advance()
					for p.startsAtomType() {
						at, err := p.atomType()
						if err != nil {
							return nil, err
						}
						cd.Args = append(cd.Args, at)
					}
				}
				td.Constrs = append(td.Constrs, cd)
			}
			if len(td.Constrs) == 0 {
				return nil, p.errf("type %s has no constructors", tname.Text)
			}
			lib.Types = append(lib.Types, td)
		default:
			return lib, nil
		}
	}
}

func (p *Parser) contract() (*ast.Contract, error) {
	if err := p.expectKeyword("contract"); err != nil {
		return nil, err
	}
	name, err := p.expect(lexer.CIdent, "contract name")
	if err != nil {
		return nil, err
	}
	c := &ast.Contract{Name: name.Text}
	if _, err := p.expect(lexer.LParen, "'('"); err != nil {
		return nil, err
	}
	c.Params, err = p.params()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen, "')'"); err != nil {
		return nil, err
	}
	for p.atKeyword("field") {
		p.advance()
		fname, err := p.ident("field name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Colon, "':'"); err != nil {
			return nil, err
		}
		fty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Eq, "'='"); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Fields = append(c.Fields, ast.Field{Name: fname, Type: fty, Init: init})
	}
	for p.atKeyword("transition") {
		pos := p.pos2()
		p.advance()
		tname, err := p.anyIdent("transition name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.LParen, "'('"); err != nil {
			return nil, err
		}
		tparams, err := p.params()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen, "')'"); err != nil {
			return nil, err
		}
		body, err := p.stmts()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
		c.Transitions = append(c.Transitions, ast.Transition{
			Name: tname, Params: tparams, Body: body, Pos: pos,
		})
	}
	return c, nil
}

func (p *Parser) params() ([]ast.Param, error) {
	var ps []ast.Param
	if p.at(lexer.RParen) {
		return ps, nil
	}
	for {
		id, err := p.ident("parameter name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Colon, "':'"); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		ps = append(ps, ast.Param{Name: id, Type: ty})
		if !p.at(lexer.Comma) {
			return ps, nil
		}
		p.advance()
	}
}

// --- Types ---

func (p *Parser) startsAtomType() bool {
	return p.at(lexer.CIdent) || p.at(lexer.TIdent) || p.at(lexer.LParen)
}

func (p *Parser) parseType() (ast.Type, error) {
	t, err := p.appType()
	if err != nil {
		return nil, err
	}
	if p.at(lexer.Arrow) {
		p.advance()
		ret, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return ast.FunType{Arg: t, Ret: ret}, nil
	}
	return t, nil
}

func (p *Parser) appType() (ast.Type, error) {
	if p.at(lexer.CIdent) && p.cur().Text == "Map" {
		p.advance()
		k, err := p.atomType()
		if err != nil {
			return nil, err
		}
		v, err := p.atomType()
		if err != nil {
			return nil, err
		}
		return ast.MapType{Key: k, Val: v}, nil
	}
	if p.at(lexer.CIdent) {
		name := p.advance().Text
		if prim, ok := ast.PrimTypeByName(name); ok {
			return prim, nil
		}
		var args []ast.Type
		for p.startsAtomType() {
			a, err := p.atomType()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		return ast.ADTType{Name: name, Args: args}, nil
	}
	return p.atomType()
}

func (p *Parser) atomType() (ast.Type, error) {
	switch {
	case p.at(lexer.CIdent):
		name := p.advance().Text
		if name == "Map" {
			return nil, p.errf("Map type must be parenthesised in this position")
		}
		if prim, ok := ast.PrimTypeByName(name); ok {
			return prim, nil
		}
		return ast.ADTType{Name: name}, nil
	case p.at(lexer.TIdent):
		return ast.TypeVar{Name: p.advance().Text}, nil
	case p.at(lexer.LParen):
		p.advance()
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen, "')'"); err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, p.errf("expected a type, found %q", p.cur().String())
}

// --- Statements ---

func (p *Parser) stmts() ([]ast.Stmt, error) {
	var out []ast.Stmt
	for {
		if !p.startsStmt() {
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if p.at(lexer.Semi) {
			p.advance()
			continue
		}
		return out, nil
	}
}

func (p *Parser) startsStmt() bool {
	t := p.cur()
	switch t.Kind {
	case lexer.Ident:
		return true
	case lexer.Keyword:
		switch t.Text {
		case "match", "accept", "send", "event", "throw", "delete":
			return true
		}
	}
	return false
}

func (p *Parser) stmt() (ast.Stmt, error) {
	pos := p.pos2()
	base := func() ast.Stmt { return nil }
	_ = base
	switch {
	case p.atKeyword("accept"):
		p.advance()
		return newAccept(pos), nil
	case p.atKeyword("send"):
		p.advance()
		a, err := p.ident("send argument")
		if err != nil {
			return nil, err
		}
		return newSend(pos, a), nil
	case p.atKeyword("event"):
		p.advance()
		a, err := p.ident("event argument")
		if err != nil {
			return nil, err
		}
		return newEvent(pos, a), nil
	case p.atKeyword("throw"):
		p.advance()
		arg := ""
		if p.at(lexer.Ident) {
			arg = p.advance().Text
		}
		return newThrow(pos, arg), nil
	case p.atKeyword("delete"):
		p.advance()
		m, err := p.ident("map name")
		if err != nil {
			return nil, err
		}
		keys, err := p.mapKeys()
		if err != nil {
			return nil, err
		}
		if len(keys) == 0 {
			return nil, p.errf("delete requires at least one key")
		}
		return newMapDelete(pos, m, keys), nil
	case p.atKeyword("match"):
		p.advance()
		scrut, err := p.ident("match scrutinee")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("with"); err != nil {
			return nil, err
		}
		var arms []ast.StmtMatchArm
		for p.at(lexer.Bar) {
			p.advance()
			pat, err := p.pattern()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.DArrow, "'=>'"); err != nil {
				return nil, err
			}
			body, err := p.stmts()
			if err != nil {
				return nil, err
			}
			arms = append(arms, ast.StmtMatchArm{Pat: pat, Body: body})
		}
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
		if len(arms) == 0 {
			return nil, p.errf("match statement has no arms")
		}
		return newMatchStmt(pos, scrut, arms), nil
	}
	// Starts with an identifier.
	id, err := p.ident("statement")
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case lexer.LArrow:
		p.advance()
		switch {
		case p.at(lexer.Amp):
			p.advance()
			name, err := p.expect(lexer.CIdent, "blockchain component")
			if err != nil {
				return nil, err
			}
			return newReadBC(pos, id, name.Text), nil
		case p.atKeyword("exists"):
			p.advance()
			m, err := p.ident("map name")
			if err != nil {
				return nil, err
			}
			keys, err := p.mapKeys()
			if err != nil {
				return nil, err
			}
			if len(keys) == 0 {
				return nil, p.errf("exists requires at least one key")
			}
			return newMapGet(pos, id, m, keys, true), nil
		default:
			f, err := p.ident("field name")
			if err != nil {
				return nil, err
			}
			keys, err := p.mapKeys()
			if err != nil {
				return nil, err
			}
			if len(keys) > 0 {
				return newMapGet(pos, id, f, keys, false), nil
			}
			return newLoad(pos, id, f), nil
		}
	case lexer.Assign:
		p.advance()
		rhs, err := p.ident("value identifier")
		if err != nil {
			return nil, err
		}
		return newStore(pos, id, rhs), nil
	case lexer.LBracket:
		keys, err := p.mapKeys()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Assign, "':='"); err != nil {
			return nil, err
		}
		rhs, err := p.ident("value identifier")
		if err != nil {
			return nil, err
		}
		return newMapUpdate(pos, id, keys, rhs), nil
	case lexer.Eq:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return newBind(pos, id, e), nil
	}
	return nil, p.errf("malformed statement after %q", id)
}

func (p *Parser) mapKeys() ([]string, error) {
	var keys []string
	for p.at(lexer.LBracket) {
		p.advance()
		k, err := p.ident("map key identifier")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RBracket, "']'"); err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// --- Patterns ---

func (p *Parser) pattern() (ast.Pattern, error) {
	switch {
	case p.at(lexer.Underscore):
		p.advance()
		return ast.WildPat{}, nil
	case p.at(lexer.Ident):
		return ast.BindPat{Name: p.advance().Text}, nil
	case p.at(lexer.CIdent):
		name := p.advance().Text
		var subs []ast.Pattern
		for p.startsPatternAtom() {
			sub, err := p.patternAtom()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
		}
		return ast.ConstrPat{Name: name, Sub: subs}, nil
	case p.at(lexer.LParen):
		return p.patternAtom()
	}
	return nil, p.errf("expected a pattern, found %q", p.cur().String())
}

func (p *Parser) startsPatternAtom() bool {
	switch p.cur().Kind {
	case lexer.Underscore, lexer.Ident, lexer.CIdent, lexer.LParen:
		return true
	}
	return false
}

func (p *Parser) patternAtom() (ast.Pattern, error) {
	switch {
	case p.at(lexer.Underscore):
		p.advance()
		return ast.WildPat{}, nil
	case p.at(lexer.Ident):
		return ast.BindPat{Name: p.advance().Text}, nil
	case p.at(lexer.CIdent):
		return ast.ConstrPat{Name: p.advance().Text}, nil
	case p.at(lexer.LParen):
		p.advance()
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen, "')'"); err != nil {
			return nil, err
		}
		return pat, nil
	}
	return nil, p.errf("expected a pattern, found %q", p.cur().String())
}

// --- Expressions ---

var intPrims = map[string]ast.PrimType{
	"Int32": ast.TyInt32, "Int64": ast.TyInt64,
	"Int128": ast.TyInt128, "Int256": ast.TyInt256,
	"Uint32": ast.TyUint32, "Uint64": ast.TyUint64,
	"Uint128": ast.TyUint128, "Uint256": ast.TyUint256,
}

func (p *Parser) expr() (ast.Expr, error) {
	pos := p.pos2()
	switch {
	case p.atKeyword("let"):
		p.advance()
		name, err := p.ident("let binder")
		if err != nil {
			return nil, err
		}
		var ty ast.Type
		if p.at(lexer.Colon) {
			p.advance()
			ty, err = p.parseType()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(lexer.Eq, "'='"); err != nil {
			return nil, err
		}
		bound, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return newLet(pos, name, ty, bound, body), nil
	case p.atKeyword("fun"):
		p.advance()
		if _, err := p.expect(lexer.LParen, "'('"); err != nil {
			return nil, err
		}
		param, err := p.ident("function parameter")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Colon, "':'"); err != nil {
			return nil, err
		}
		pty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen, "')'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.DArrow, "'=>'"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return newFun(pos, param, pty, body), nil
	case p.atKeyword("tfun"):
		p.advance()
		tv, err := p.expect(lexer.TIdent, "type variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.DArrow, "'=>'"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return newTFun(pos, tv.Text, body), nil
	case p.at(lexer.At):
		p.advance()
		name, err := p.ident("instantiated identifier")
		if err != nil {
			return nil, err
		}
		var targs []ast.Type
		for p.startsAtomType() {
			t, err := p.atomType()
			if err != nil {
				return nil, err
			}
			targs = append(targs, t)
		}
		if len(targs) == 0 {
			return nil, p.errf("type application requires at least one type")
		}
		return newTApp(pos, name, targs), nil
	case p.atKeyword("builtin"):
		p.advance()
		name, err := p.ident("builtin name")
		if err != nil {
			return nil, err
		}
		var args []string
		for p.at(lexer.Ident) {
			args = append(args, p.advance().Text)
		}
		if len(args) == 0 {
			return nil, p.errf("builtin %s requires at least one argument", name)
		}
		return newBuiltin(pos, name, args), nil
	case p.atKeyword("match"):
		p.advance()
		scrut, err := p.ident("match scrutinee")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("with"); err != nil {
			return nil, err
		}
		var arms []ast.MatchArm
		for p.at(lexer.Bar) {
			p.advance()
			pat, err := p.pattern()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.DArrow, "'=>'"); err != nil {
				return nil, err
			}
			body, err := p.expr()
			if err != nil {
				return nil, err
			}
			arms = append(arms, ast.MatchArm{Pat: pat, Body: body})
		}
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
		if len(arms) == 0 {
			return nil, p.errf("match expression has no arms")
		}
		return newMatchExpr(pos, scrut, arms), nil
	case p.at(lexer.LBrace):
		return p.msgExpr()
	case p.at(lexer.StringTok):
		t := p.advance()
		return newLit(pos, ast.StrLit(t.Text)), nil
	case p.at(lexer.HexTok):
		t := p.advance()
		b, err := hexBytes(t.Text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return newLit(pos, ast.ByStrLit(b)), nil
	case p.at(lexer.CIdent):
		name := p.cur().Text
		// Typed integer literal: `Uint128 42`.
		if prim, ok := intPrims[name]; ok && p.peekAt(1).Kind == lexer.IntTok {
			p.advance()
			it := p.advance()
			v, ok := new(big.Int).SetString(it.Text, 10)
			if !ok {
				return nil, p.errf("malformed integer %q", it.Text)
			}
			if !ast.InRange(prim, v) {
				return nil, p.errf("integer %s out of range for %s", it.Text, name)
			}
			return newLit(pos, ast.BigIntLit(prim, v)), nil
		}
		if name == "BNum" && p.peekAt(1).Kind == lexer.IntTok {
			p.advance()
			it := p.advance()
			v, ok := new(big.Int).SetString(it.Text, 10)
			if !ok || v.Sign() < 0 {
				return nil, p.errf("malformed block number %q", it.Text)
			}
			return newLit(pos, ast.Literal{Type: ast.TyBNum, Int: v}), nil
		}
		// Constructor application, including `Emp kt vt`.
		p.advance()
		if name == "Emp" {
			k, err := p.atomType()
			if err != nil {
				return nil, err
			}
			v, err := p.atomType()
			if err != nil {
				return nil, err
			}
			return newConstr(pos, "Emp", []ast.Type{k, v}, nil), nil
		}
		var targs []ast.Type
		if p.at(lexer.LBrace) {
			p.advance()
			for !p.at(lexer.RBrace) {
				t, err := p.atomType()
				if err != nil {
					return nil, err
				}
				targs = append(targs, t)
			}
			p.advance() // }
		}
		var args []string
		for p.at(lexer.Ident) {
			args = append(args, p.advance().Text)
		}
		return newConstr(pos, name, targs, args), nil
	case p.at(lexer.Ident):
		name := p.advance().Text
		var args []string
		for p.at(lexer.Ident) {
			args = append(args, p.advance().Text)
		}
		if len(args) == 0 {
			return newVar(pos, name), nil
		}
		return newApp(pos, name, args), nil
	}
	return nil, p.errf("expected an expression, found %q", p.cur().String())
}

func (p *Parser) msgExpr() (ast.Expr, error) {
	pos := p.pos2()
	p.advance() // {
	var entries []ast.MsgEntry
	for !p.at(lexer.RBrace) {
		key, err := p.ident("message entry key")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Colon, "':'"); err != nil {
			return nil, err
		}
		var entry ast.MsgEntry
		entry.Key = key
		switch {
		case p.at(lexer.Ident):
			entry.Var = p.advance().Text
		case p.at(lexer.StringTok):
			entry.IsLit = true
			entry.Lit = ast.StrLit(p.advance().Text)
		case p.at(lexer.HexTok):
			b, err := hexBytes(p.advance().Text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			entry.IsLit = true
			entry.Lit = ast.ByStrLit(b)
		case p.at(lexer.CIdent):
			name := p.cur().Text
			prim, ok := intPrims[name]
			if !ok || p.peekAt(1).Kind != lexer.IntTok {
				return nil, p.errf("message entry value must be an identifier or literal")
			}
			p.advance()
			it := p.advance()
			v, ok2 := new(big.Int).SetString(it.Text, 10)
			if !ok2 || !ast.InRange(prim, v) {
				return nil, p.errf("malformed integer literal in message")
			}
			entry.IsLit = true
			entry.Lit = ast.BigIntLit(prim, v)
		default:
			return nil, p.errf("message entry value must be an identifier or literal")
		}
		entries = append(entries, entry)
		if p.at(lexer.Semi) {
			p.advance()
		}
	}
	p.advance() // }
	return &ast.MsgExpr{Entries: entries, ExprBase: exprAt(pos)}, nil
}

func hexBytes(hex string) ([]byte, error) {
	if len(hex)%2 != 0 {
		return nil, fmt.Errorf("odd-length hex literal")
	}
	out := make([]byte, len(hex)/2)
	for i := 0; i < len(out); i++ {
		var b byte
		if _, err := fmt.Sscanf(strings.ToLower(hex[2*i:2*i+2]), "%02x", &b); err != nil {
			return nil, fmt.Errorf("malformed hex literal: %v", err)
		}
		out[i] = b
	}
	return out, nil
}
