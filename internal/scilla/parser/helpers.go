package parser

import "cosplit/internal/scilla/ast"

func exprAt(pos ast.Pos) ast.ExprBase { return ast.ExprBase{Pos: pos} }
func stmtAt(pos ast.Pos) ast.StmtBase { return ast.StmtBase{Pos: pos} }

func newLit(pos ast.Pos, lit ast.Literal) ast.Expr {
	return &ast.LitExpr{ExprBase: exprAt(pos), Lit: lit}
}

func newVar(pos ast.Pos, name string) ast.Expr {
	return &ast.VarExpr{ExprBase: exprAt(pos), Name: name}
}

func newConstr(pos ast.Pos, name string, targs []ast.Type, args []string) ast.Expr {
	return &ast.ConstrExpr{ExprBase: exprAt(pos), Name: name, TypeArgs: targs, Args: args}
}

func newBuiltin(pos ast.Pos, name string, args []string) ast.Expr {
	return &ast.BuiltinExpr{ExprBase: exprAt(pos), Name: name, Args: args}
}

func newLet(pos ast.Pos, name string, ty ast.Type, bound, body ast.Expr) ast.Expr {
	return &ast.LetExpr{ExprBase: exprAt(pos), Name: name, Ty: ty, Bound: bound, Body: body}
}

func newFun(pos ast.Pos, param string, pty ast.Type, body ast.Expr) ast.Expr {
	return &ast.FunExpr{ExprBase: exprAt(pos), Param: param, ParamType: pty, Body: body}
}

func newApp(pos ast.Pos, fn string, args []string) ast.Expr {
	return &ast.AppExpr{ExprBase: exprAt(pos), Func: fn, Args: args}
}

func newMatchExpr(pos ast.Pos, scrut string, arms []ast.MatchArm) ast.Expr {
	return &ast.MatchExpr{ExprBase: exprAt(pos), Scrutinee: scrut, Arms: arms}
}

func newTFun(pos ast.Pos, tv string, body ast.Expr) ast.Expr {
	return &ast.TFunExpr{ExprBase: exprAt(pos), TVar: tv, Body: body}
}

func newTApp(pos ast.Pos, name string, targs []ast.Type) ast.Expr {
	return &ast.TAppExpr{ExprBase: exprAt(pos), Name: name, TypeArgs: targs}
}

func newAccept(pos ast.Pos) ast.Stmt {
	return &ast.AcceptStmt{StmtBase: stmtAt(pos)}
}

func newSend(pos ast.Pos, arg string) ast.Stmt {
	return &ast.SendStmt{StmtBase: stmtAt(pos), Arg: arg}
}

func newEvent(pos ast.Pos, arg string) ast.Stmt {
	return &ast.EventStmt{StmtBase: stmtAt(pos), Arg: arg}
}

func newThrow(pos ast.Pos, arg string) ast.Stmt {
	return &ast.ThrowStmt{StmtBase: stmtAt(pos), Arg: arg}
}

func newLoad(pos ast.Pos, lhs, field string) ast.Stmt {
	return &ast.LoadStmt{StmtBase: stmtAt(pos), Lhs: lhs, Field: field}
}

func newStore(pos ast.Pos, field, rhs string) ast.Stmt {
	return &ast.StoreStmt{StmtBase: stmtAt(pos), Field: field, Rhs: rhs}
}

func newBind(pos ast.Pos, lhs string, e ast.Expr) ast.Stmt {
	return &ast.BindStmt{StmtBase: stmtAt(pos), Lhs: lhs, Expr: e}
}

func newMapUpdate(pos ast.Pos, m string, keys []string, rhs string) ast.Stmt {
	return &ast.MapUpdateStmt{StmtBase: stmtAt(pos), Map: m, Keys: keys, Rhs: rhs}
}

func newMapGet(pos ast.Pos, lhs, m string, keys []string, exists bool) ast.Stmt {
	return &ast.MapGetStmt{StmtBase: stmtAt(pos), Lhs: lhs, Map: m, Keys: keys, Exists: exists}
}

func newMapDelete(pos ast.Pos, m string, keys []string) ast.Stmt {
	return &ast.MapDeleteStmt{StmtBase: stmtAt(pos), Map: m, Keys: keys}
}

func newReadBC(pos ast.Pos, lhs, name string) ast.Stmt {
	return &ast.ReadBlockchainStmt{StmtBase: stmtAt(pos), Lhs: lhs, Name: name}
}

func newMatchStmt(pos ast.Pos, scrut string, arms []ast.StmtMatchArm) ast.Stmt {
	return &ast.MatchStmt{StmtBase: stmtAt(pos), Scrutinee: scrut, Arms: arms}
}
