package parser_test

import (
	"strings"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/parser"
)

func TestParseTypes(t *testing.T) {
	cases := map[string]string{
		"Uint128":                           "Uint128",
		"Map ByStr20 Uint128":               "Map ByStr20 Uint128",
		"Map ByStr20 (Map ByStr20 Uint128)": "Map ByStr20 (Map ByStr20 Uint128)",
		"Option Uint32":                     "Option Uint32",
		"List (Pair ByStr20 Uint128)":       "List (Pair ByStr20 Uint128)",
		"Uint128 -> Uint128 -> Bool":        "Uint128 -> Uint128 -> Bool",
		"(Uint128 -> Bool) -> Uint128":      "(Uint128 -> Bool) -> Uint128",
	}
	for src, want := range cases {
		ty, err := parser.ParseType(src)
		if err != nil {
			t.Errorf("ParseType(%q): %v", src, err)
			continue
		}
		if got := ty.String(); got != want {
			t.Errorf("ParseType(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestParseExprShapes(t *testing.T) {
	e, err := parser.ParseExpr("let x = Uint128 5 in builtin add x x")
	if err != nil {
		t.Fatal(err)
	}
	let, ok := e.(*ast.LetExpr)
	if !ok {
		t.Fatalf("expected LetExpr, got %T", e)
	}
	if _, ok := let.Bound.(*ast.LitExpr); !ok {
		t.Errorf("bound is %T, want LitExpr", let.Bound)
	}
	if b, ok := let.Body.(*ast.BuiltinExpr); !ok || b.Name != "add" {
		t.Errorf("body is %T, want builtin add", let.Body)
	}

	e2, err := parser.ParseExpr("fun (m : Message) => Cons {Message} m nil")
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := e2.(*ast.FunExpr)
	if !ok {
		t.Fatalf("expected FunExpr, got %T", e2)
	}
	c, ok := fn.Body.(*ast.ConstrExpr)
	if !ok || c.Name != "Cons" || len(c.TypeArgs) != 1 || len(c.Args) != 2 {
		t.Errorf("unexpected constructor %+v", fn.Body)
	}

	e3, err := parser.ParseExpr("@list_map ByStr20 Message")
	if err != nil {
		t.Fatal(err)
	}
	ta, ok := e3.(*ast.TAppExpr)
	if !ok || ta.Name != "list_map" || len(ta.TypeArgs) != 2 {
		t.Errorf("unexpected TApp %+v", e3)
	}

	e4, err := parser.ParseExpr(`{_tag : "T"; _recipient : to; _amount : zero}`)
	if err != nil {
		t.Fatal(err)
	}
	msg, ok := e4.(*ast.MsgExpr)
	if !ok || len(msg.Entries) != 3 {
		t.Errorf("unexpected message %+v", e4)
	}
	if !msg.Entries[0].IsLit || msg.Entries[0].Lit.Str != "T" {
		t.Errorf("tag entry wrong: %+v", msg.Entries[0])
	}
}

func TestParseMatchExpr(t *testing.T) {
	e, err := parser.ParseExpr("match x with | Some v => v | None => zero end")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := e.(*ast.MatchExpr)
	if !ok || len(m.Arms) != 2 {
		t.Fatalf("unexpected match %+v", e)
	}
	some, ok := m.Arms[0].Pat.(ast.ConstrPat)
	if !ok || some.Name != "Some" || len(some.Sub) != 1 {
		t.Errorf("Some pattern wrong: %+v", m.Arms[0].Pat)
	}
}

func TestParseNestedPatterns(t *testing.T) {
	e, err := parser.ParseExpr("match x with | Some (Pair a b) => a | _ => z end")
	if err != nil {
		t.Fatal(err)
	}
	m := e.(*ast.MatchExpr)
	some := m.Arms[0].Pat.(ast.ConstrPat)
	pair, ok := some.Sub[0].(ast.ConstrPat)
	if !ok || pair.Name != "Pair" || len(pair.Sub) != 2 {
		t.Errorf("nested pattern wrong: %+v", some.Sub[0])
	}
	if _, ok := m.Arms[1].Pat.(ast.WildPat); !ok {
		t.Errorf("wildcard pattern wrong: %+v", m.Arms[1].Pat)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                               // missing version
		"scilla_version 0",               // missing contract
		"scilla_version 0 contract x ()", // lowercase contract name
		"scilla_version 0 contract C",    // missing parens
		"scilla_version 0 contract C () transition T () accept", // missing end
	}
	for _, src := range bad {
		if _, err := parser.ParseModule(src); err == nil {
			t.Errorf("%q: expected a parse error", src)
		}
	}
	if _, err := parser.ParseExpr("builtin add"); err == nil {
		t.Error("builtin with no arguments must be rejected")
	}
	if _, err := parser.ParseExpr("match x with end"); err == nil {
		t.Error("match with no arms must be rejected")
	}
}

func TestIntLiteralRange(t *testing.T) {
	if _, err := parser.ParseExpr("Uint32 4294967295"); err != nil {
		t.Errorf("max Uint32 rejected: %v", err)
	}
	if _, err := parser.ParseExpr("Uint32 4294967296"); err == nil {
		t.Error("out-of-range Uint32 accepted")
	}
	if _, err := parser.ParseExpr("Uint32 -1"); err == nil {
		t.Error("negative Uint32 accepted")
	}
	if _, err := parser.ParseExpr("Int32 -2147483648"); err != nil {
		t.Error("min Int32 rejected")
	}
}

// TestRoundTrip: pretty-printing any corpus contract and re-parsing it
// yields a structurally identical module (checked by printing again).
func TestRoundTrip(t *testing.T) {
	for _, e := range contracts.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			m1, err := parser.ParseModule(e.Source)
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			printed := ast.PrintModule(m1)
			m2, err := parser.ParseModule(printed)
			if err != nil {
				t.Fatalf("re-parse printed module: %v\n%s", err, clip(printed))
			}
			printed2 := ast.PrintModule(m2)
			if printed != printed2 {
				t.Errorf("print/parse round-trip not stable:\n--- first ---\n%s\n--- second ---\n%s",
					clip(printed), clip(printed2))
			}
		})
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "..."
	}
	return s
}

func TestTransitionPositions(t *testing.T) {
	src := `scilla_version 0
contract C ()
transition A ()
  accept
end`
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Contract.Transitions[0].Pos.Line != 3 {
		t.Errorf("transition position line = %d, want 3", m.Contract.Transitions[0].Pos.Line)
	}
	if !strings.Contains(ast.PrintModule(m), "transition A") {
		t.Error("printer lost the transition")
	}
}
