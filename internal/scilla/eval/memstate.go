package eval

import (
	"fmt"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

// MemState is a straightforward in-memory StateAccess used by tests,
// examples, and as the backing store of the blockchain substrate's
// canonical contract state.
type MemState struct {
	Fields map[string]value.Value
	Types  map[string]ast.Type
}

// NewMemState creates an empty in-memory state with the given field
// types.
func NewMemState(types map[string]ast.Type) *MemState {
	return &MemState{
		Fields: make(map[string]value.Value),
		Types:  types,
	}
}

// InitFrom evaluates all field initialisers of the interpreter's
// contract into this state.
func (m *MemState) InitFrom(in *Interpreter) error {
	for i := range in.checked.Module.Contract.Fields {
		f := &in.checked.Module.Contract.Fields[i]
		v, err := in.InitField(f)
		if err != nil {
			return fmt.Errorf("field %s: %w", f.Name, err)
		}
		m.Fields[f.Name] = v
	}
	return nil
}

// LoadField implements StateAccess.
func (m *MemState) LoadField(name string) (value.Value, error) {
	v, ok := m.Fields[name]
	if !ok {
		return nil, fmt.Errorf("unknown field %s", name)
	}
	return v, nil
}

// StoreField implements StateAccess.
func (m *MemState) StoreField(name string, v value.Value) error {
	if _, ok := m.Fields[name]; !ok {
		return fmt.Errorf("unknown field %s", name)
	}
	m.Fields[name] = v
	return nil
}

// mapAt descends keys[:len-1] levels, creating intermediate maps when
// create is true, and returns the innermost map.
func (m *MemState) mapAt(field string, keys []value.Value, create bool) (*value.Map, error) {
	root, ok := m.Fields[field]
	if !ok {
		return nil, fmt.Errorf("unknown field %s", field)
	}
	cur, ok := root.(*value.Map)
	if !ok {
		return nil, fmt.Errorf("field %s is not a map", field)
	}
	for i := 0; i < len(keys)-1; i++ {
		next, found := cur.Get(keys[i])
		if !found {
			if !create {
				return nil, nil
			}
			inner, ok := cur.ValType.(ast.MapType)
			if !ok {
				return nil, fmt.Errorf("field %s is not nested at depth %d", field, i)
			}
			nm := value.NewMap(inner.Key, inner.Val)
			cur.Set(keys[i], nm)
			next = nm
		}
		nm, ok := next.(*value.Map)
		if !ok {
			return nil, fmt.Errorf("field %s has non-map value at depth %d", field, i)
		}
		cur = nm
	}
	return cur, nil
}

// MapGet implements StateAccess.
func (m *MemState) MapGet(field string, keys []value.Value) (value.Value, bool, error) {
	inner, err := m.mapAt(field, keys, false)
	if err != nil {
		return nil, false, err
	}
	if inner == nil {
		return nil, false, nil
	}
	v, ok := inner.Get(keys[len(keys)-1])
	return v, ok, nil
}

// MapSet implements StateAccess.
func (m *MemState) MapSet(field string, keys []value.Value, v value.Value) error {
	inner, err := m.mapAt(field, keys, true)
	if err != nil {
		return err
	}
	inner.Set(keys[len(keys)-1], v)
	return nil
}

// MapDelete implements StateAccess.
func (m *MemState) MapDelete(field string, keys []value.Value) error {
	inner, err := m.mapAt(field, keys, false)
	if err != nil {
		return err
	}
	if inner == nil {
		return nil
	}
	inner.Delete(keys[len(keys)-1])
	return nil
}

// mapAtCK is mapAt with precomputed per-level canonical keys.
func (m *MemState) mapAtCK(field string, cks []string, keys []value.Value, create bool) (*value.Map, error) {
	root, ok := m.Fields[field]
	if !ok {
		return nil, fmt.Errorf("unknown field %s", field)
	}
	cur, ok := root.(*value.Map)
	if !ok {
		return nil, fmt.Errorf("field %s is not a map", field)
	}
	for i := 0; i < len(cks)-1; i++ {
		next, found := cur.GetCK(cks[i])
		if !found {
			if !create {
				return nil, nil
			}
			inner, ok := cur.ValType.(ast.MapType)
			if !ok {
				return nil, fmt.Errorf("field %s is not nested at depth %d", field, i)
			}
			nm := value.NewMap(inner.Key, inner.Val)
			cur.SetCK(cks[i], keys[i], nm)
			next = nm
		}
		nm, ok := next.(*value.Map)
		if !ok {
			return nil, fmt.Errorf("field %s has non-map value at depth %d", field, i)
		}
		cur = nm
	}
	return cur, nil
}

// MapGetCK implements KeyedState.
func (m *MemState) MapGetCK(field string, cks []string, keys []value.Value) (value.Value, bool, error) {
	inner, err := m.mapAtCK(field, cks, keys, false)
	if err != nil {
		return nil, false, err
	}
	if inner == nil {
		return nil, false, nil
	}
	v, ok := inner.GetCK(cks[len(cks)-1])
	return v, ok, nil
}

// MapSetCK implements KeyedState.
func (m *MemState) MapSetCK(field string, cks []string, keys []value.Value, v value.Value) error {
	inner, err := m.mapAtCK(field, cks, keys, true)
	if err != nil {
		return err
	}
	inner.SetCK(cks[len(cks)-1], keys[len(keys)-1], v)
	return nil
}

// MapDeleteCK implements KeyedState.
func (m *MemState) MapDeleteCK(field string, cks []string, keys []value.Value) error {
	inner, err := m.mapAtCK(field, cks, keys, false)
	if err != nil {
		return err
	}
	if inner == nil {
		return nil
	}
	inner.DeleteCK(cks[len(cks)-1])
	return nil
}

// Copy deep-copies the state.
func (m *MemState) Copy() *MemState {
	out := NewMemState(m.Types)
	for k, v := range m.Fields {
		out.Fields[k] = value.Copy(v)
	}
	return out
}

// Equal reports whether two states hold identical field values.
func (m *MemState) Equal(o *MemState) bool {
	if len(m.Fields) != len(o.Fields) {
		return false
	}
	for k, v := range m.Fields {
		ov, ok := o.Fields[k]
		if !ok || !value.Equal(v, ov) {
			return false
		}
	}
	return true
}
