// Package eval implements the definitional interpreter for the Scilla
// subset. Contract transitions are executed against a StateAccess
// implementation supplied by the blockchain substrate, producing
// outgoing messages, events, and an accept flag.
package eval

import (
	"fmt"
	"math/big"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/stdlib"
	"cosplit/internal/scilla/typecheck"
	"cosplit/internal/scilla/value"
)

// StateAccess abstracts the mutable contract state. The blockchain
// substrate implements it with delta tracking; tests implement it with
// plain in-memory maps.
type StateAccess interface {
	// LoadField reads a whole field value (deep copy not required; the
	// interpreter treats the result as immutable).
	LoadField(name string) (value.Value, error)
	// StoreField overwrites a whole field value.
	StoreField(name string, v value.Value) error
	// MapGet reads a (possibly nested) map entry; ok is false if absent.
	MapGet(field string, keys []value.Value) (v value.Value, ok bool, err error)
	// MapSet writes a (possibly nested) map entry, creating intermediate
	// maps as needed.
	MapSet(field string, keys []value.Value, v value.Value) error
	// MapDelete removes a (possibly nested) map entry if present.
	MapDelete(field string, keys []value.Value) error
}

// Context carries the per-transaction blockchain environment.
type Context struct {
	Sender      value.ByStr // ByStr20 of the transaction signer
	Origin      value.ByStr // ByStr20 of the original external account
	Amount      value.Int   // Uint128 native tokens sent with the call
	BlockNumber *big.Int
	Timestamp   uint64
	State       StateAccess
	// GasLimit bounds execution; 0 means unlimited.
	GasLimit uint64
	// GasUsed accumulates gas consumed during execution; Run resets it.
	GasUsed uint64
	// ContractBalance backs the implicit _balance field (native tokens
	// held by the contract); nil reads as zero.
	ContractBalance *big.Int

	// argsEnv is the transition-call environment, reused across Run
	// calls on the same Context (reset each call); keyBuf is the
	// scratch key vector for map statements. Both exist purely to keep
	// the per-transaction hot path allocation-free; a zero Context
	// works and allocates them lazily.
	argsEnv *value.Env
	keyBuf  []value.Value
}

// Result is the outcome of a successful transition execution.
type Result struct {
	Messages []value.Msg
	Events   []value.Msg
	Accepted bool
	GasUsed  uint64
}

// ThrowError is raised by an executed `throw` statement or a failed
// builtin; it aborts the transition (the transaction is rejected and
// state changes are discarded by the caller).
type ThrowError struct {
	Msg string
}

func (e *ThrowError) Error() string { return "transition aborted: " + e.Msg }

// OutOfGasError is raised when execution exceeds the gas limit.
type OutOfGasError struct{ Limit uint64 }

func (e *OutOfGasError) Error() string {
	return fmt.Sprintf("out of gas (limit %d)", e.Limit)
}

// Interpreter evaluates transitions of a single checked contract. Once
// constructed it is read-only, so a single Interpreter is safe for
// concurrent use with distinct Contexts and StateAccess values.
type Interpreter struct {
	checked *typecheck.Checked
	libEnv  *value.Env
}

// gas costs per operation kind.
const (
	gasStmt    = 1
	gasExpr    = 1
	gasMapOp   = 4
	gasLoad    = 4
	gasStore   = 8
	gasSend    = 10
	gasEvent   = 5
	gasBuiltin = 2
)

// Exported gas schedule, for execution engines (internal/scilla/compile)
// that must charge bit-for-bit the same gas as the interpreter.
const (
	GasStmt    uint64 = gasStmt
	GasExpr    uint64 = gasExpr
	GasMapOp   uint64 = gasMapOp
	GasLoad    uint64 = gasLoad
	GasStore   uint64 = gasStore
	GasSend    uint64 = gasSend
	GasEvent   uint64 = gasEvent
	GasBuiltin uint64 = gasBuiltin
)

// KeyedState is an optional extension of StateAccess for backends that
// can address (possibly nested) map entries by precomputed canonical
// keys, skipping per-access value.CanonicalKey recomputation. cks is
// the per-level canonical key slice parallel to keys (cks[i] ==
// value.CanonicalKey(keys[i])). Implementations must not retain either
// slice.
type KeyedState interface {
	StateAccess
	MapGetCK(field string, cks []string, keys []value.Value) (v value.Value, ok bool, err error)
	MapSetCK(field string, cks []string, keys []value.Value, v value.Value) error
	MapDeleteCK(field string, cks []string, keys []value.Value) error
}

// New builds an interpreter for a checked module with the given values
// for the contract's immutable parameters. Library definitions are
// evaluated eagerly, once.
func New(checked *typecheck.Checked, contractParams map[string]value.Value) (*Interpreter, error) {
	in := &Interpreter{checked: checked}
	env := value.NewEnv(nil)
	for name, nv := range stdlib.NativeValues(in.applyValue) {
		env.Bind(name, nv)
	}
	// Contract immutable parameters are visible everywhere.
	for _, p := range checked.Module.Contract.Params {
		v, ok := contractParams[p.Name]
		if !ok {
			return nil, fmt.Errorf("missing contract parameter %s", p.Name)
		}
		env.Bind(p.Name, v)
	}
	// The contract's own address is available as _this_address.
	if v, ok := contractParams["_this_address"]; ok {
		env.Bind("_this_address", v)
	}
	if lib := checked.Module.Lib; lib != nil {
		for _, def := range lib.Defs {
			v, err := in.evalExpr(env, def.Expr)
			if err != nil {
				return nil, fmt.Errorf("library %s: %w", def.Name, err)
			}
			env.Bind(def.Name, v)
		}
	}
	in.libEnv = env
	return in, nil
}

// Checked returns the typechecked module the interpreter runs.
func (in *Interpreter) Checked() *typecheck.Checked { return in.checked }

// LibEnv exposes the immutable library environment (natives, contract
// parameters, library definitions) for execution engines layered on
// top of the interpreter. Callers must treat it as read-only.
func (in *Interpreter) LibEnv() *value.Env { return in.libEnv }

// LibValue resolves a name in the library environment.
func (in *Interpreter) LibValue(name string) (value.Value, bool) {
	return in.libEnv.Lookup(name)
}

// Apply applies a function value to an argument under the Context's
// gas accounting, exactly as the interpreter's application rule does.
func (in *Interpreter) Apply(ctx *Context, fn, arg value.Value) (value.Value, error) {
	return in.applyCtx(ctx, fn, arg)
}

// TApply instantiates a type-polymorphic value with the given type
// arguments, charging gas exactly as the interpreter's TApp rule does.
// name is used only for the error message on non-polymorphic values.
func (in *Interpreter) TApply(ctx *Context, name string, fv value.Value, targs []ast.Type) (value.Value, error) {
	cur := fv
	for _, ta := range targs {
		switch f := cur.(type) {
		case *value.TClosure:
			inner := value.NewEnv(f.Env)
			v, err := in.evalExprCtx(ctx, inner, f.Body)
			if err != nil {
				return nil, err
			}
			cur = v
		case *value.Native:
			cur = f.WithTypeArgs([]ast.Type{ta})
		default:
			return nil, fmt.Errorf("%s is not type-polymorphic", name)
		}
	}
	return cur, nil
}

// InitField evaluates a field initialiser in the library environment.
func (in *Interpreter) InitField(f *ast.Field) (value.Value, error) {
	return in.evalExpr(in.libEnv, f.Init)
}

// Run executes the named transition with the given arguments.
func (in *Interpreter) Run(ctx *Context, transition string, args map[string]value.Value) (*Result, error) {
	tr := in.checked.Module.Contract.TransitionByName(transition)
	if tr == nil {
		return nil, fmt.Errorf("unknown transition %s", transition)
	}
	ctx.GasUsed = 0
	// Reuse the call environment across transactions on the same
	// Context: nothing that survives Run (messages, events, state
	// values) can reference it, since storable and sendable types
	// exclude closures.
	env := ctx.argsEnv
	if env == nil {
		env = value.NewEnv(in.libEnv)
		ctx.argsEnv = env
	} else {
		env.Reset(in.libEnv)
	}
	env.Bind(ast.SenderParam, ctx.Sender)
	env.Bind(ast.OriginParam, ctx.Origin)
	env.Bind(ast.AmountParam, ctx.Amount)
	for _, p := range tr.Params {
		v, ok := args[p.Name]
		if !ok {
			return nil, fmt.Errorf("missing argument %s for transition %s", p.Name, transition)
		}
		if !v.Type().Equal(p.Type) {
			// Allow ByStr20/ByStr32 flexibility is NOT allowed: strict.
			return nil, fmt.Errorf("argument %s has type %s, want %s", p.Name, v.Type(), p.Type)
		}
		env.Bind(p.Name, v)
	}
	res := &Result{}
	if err := in.execStmts(ctx, env, tr.Body, res); err != nil {
		return nil, err
	}
	res.GasUsed = ctx.GasUsed
	return res, nil
}

func (in *Interpreter) burn(ctx *Context, g uint64) error {
	if ctx == nil {
		return nil
	}
	ctx.GasUsed += g
	if ctx.GasLimit > 0 && ctx.GasUsed > ctx.GasLimit {
		return &OutOfGasError{Limit: ctx.GasLimit}
	}
	return nil
}

// --- Statements ---

func (in *Interpreter) execStmts(ctx *Context, env *value.Env, stmts []ast.Stmt, res *Result) error {
	for _, s := range stmts {
		if err := in.execStmt(ctx, env, s, res); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interpreter) execStmt(ctx *Context, env *value.Env, s ast.Stmt, res *Result) error {
	if err := in.burn(ctx, gasStmt); err != nil {
		return err
	}
	switch st := s.(type) {
	case *ast.LoadStmt:
		if err := in.burn(ctx, gasLoad); err != nil {
			return err
		}
		if st.Field == "_balance" {
			bal := big.NewInt(0)
			if ctx.ContractBalance != nil {
				bal = new(big.Int).Set(ctx.ContractBalance)
			}
			env.Bind(st.Lhs, value.Int{Ty: ast.TyUint128, V: bal})
			return nil
		}
		v, err := ctx.State.LoadField(st.Field)
		if err != nil {
			return err
		}
		env.Bind(st.Lhs, v)
		return nil
	case *ast.StoreStmt:
		if err := in.burn(ctx, gasStore); err != nil {
			return err
		}
		v, ok := env.Lookup(st.Rhs)
		if !ok {
			return fmt.Errorf("unbound identifier %s", st.Rhs)
		}
		return ctx.State.StoreField(st.Field, v)
	case *ast.BindStmt:
		v, err := in.evalExprCtx(ctx, env, st.Expr)
		if err != nil {
			return err
		}
		env.Bind(st.Lhs, v)
		return nil
	case *ast.MapUpdateStmt:
		if err := in.burn(ctx, gasMapOp); err != nil {
			return err
		}
		keys, err := in.lookupKeys(ctx, env, st.Keys)
		if err != nil {
			return err
		}
		v, ok := env.Lookup(st.Rhs)
		if !ok {
			return fmt.Errorf("unbound identifier %s", st.Rhs)
		}
		return ctx.State.MapSet(st.Map, keys, v)
	case *ast.MapGetStmt:
		if err := in.burn(ctx, gasMapOp); err != nil {
			return err
		}
		keys, err := in.lookupKeys(ctx, env, st.Keys)
		if err != nil {
			return err
		}
		v, found, err := ctx.State.MapGet(st.Map, keys)
		if err != nil {
			return err
		}
		if st.Exists {
			env.Bind(st.Lhs, value.Bool(found))
			return nil
		}
		valT, err := in.fieldValueTypeAt(st.Map, len(st.Keys))
		if err != nil {
			return err
		}
		if found {
			env.Bind(st.Lhs, value.Some(valT, v))
		} else {
			env.Bind(st.Lhs, value.None(valT))
		}
		return nil
	case *ast.MapDeleteStmt:
		if err := in.burn(ctx, gasMapOp); err != nil {
			return err
		}
		keys, err := in.lookupKeys(ctx, env, st.Keys)
		if err != nil {
			return err
		}
		return ctx.State.MapDelete(st.Map, keys)
	case *ast.ReadBlockchainStmt:
		switch st.Name {
		case "BLOCKNUMBER":
			env.Bind(st.Lhs, value.BNum{V: new(big.Int).Set(ctx.BlockNumber)})
		case "TIMESTAMP":
			env.Bind(st.Lhs, value.Int{Ty: ast.TyUint64, V: new(big.Int).SetUint64(ctx.Timestamp)})
		default:
			return fmt.Errorf("unknown blockchain component %s", st.Name)
		}
		return nil
	case *ast.MatchStmt:
		scrut, ok := env.Lookup(st.Scrutinee)
		if !ok {
			return fmt.Errorf("unbound identifier %s", st.Scrutinee)
		}
		for _, arm := range st.Arms {
			binds, matched := matchPattern(arm.Pat, scrut)
			if !matched {
				continue
			}
			armEnv := value.NewEnv(env)
			for k, v := range binds {
				armEnv.Bind(k, v)
			}
			return in.execStmts(ctx, armEnv, arm.Body, res)
		}
		return &ThrowError{Msg: fmt.Sprintf("no pattern matched value %s", scrut.String())}
	case *ast.AcceptStmt:
		res.Accepted = true
		return nil
	case *ast.SendStmt:
		if err := in.burn(ctx, gasSend); err != nil {
			return err
		}
		v, ok := env.Lookup(st.Arg)
		if !ok {
			return fmt.Errorf("unbound identifier %s", st.Arg)
		}
		msgs, ok := value.ListValues(v)
		if !ok {
			return fmt.Errorf("send expects a list of messages")
		}
		for _, m := range msgs {
			msg, ok := m.(value.Msg)
			if !ok {
				return fmt.Errorf("send expects messages, got %s", m.String())
			}
			res.Messages = append(res.Messages, msg)
		}
		return nil
	case *ast.EventStmt:
		if err := in.burn(ctx, gasEvent); err != nil {
			return err
		}
		v, ok := env.Lookup(st.Arg)
		if !ok {
			return fmt.Errorf("unbound identifier %s", st.Arg)
		}
		msg, ok := v.(value.Msg)
		if !ok {
			return fmt.Errorf("event expects a message payload")
		}
		res.Events = append(res.Events, msg)
		return nil
	case *ast.ThrowStmt:
		msg := "throw"
		if st.Arg != "" {
			if v, ok := env.Lookup(st.Arg); ok {
				msg = v.String()
			}
		}
		return &ThrowError{Msg: msg}
	}
	return fmt.Errorf("unknown statement %T", s)
}

// lookupKeys resolves a map statement's key identifiers into the
// Context's scratch buffer. State backends never retain the slice
// (eval.MemState copies into its map structure, chain.Overlay copies
// on first write of a keypath), so reusing one buffer per Context is
// safe. Expression paths (constructor and builtin application) keep
// lookupAll: their slices are retained by the produced values.
func (in *Interpreter) lookupKeys(ctx *Context, env *value.Env, names []string) ([]value.Value, error) {
	out := ctx.keyBuf[:0]
	for _, n := range names {
		v, ok := env.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("unbound identifier %s", n)
		}
		out = append(out, v)
	}
	ctx.keyBuf = out
	return out, nil
}

func (in *Interpreter) lookupAll(env *value.Env, names []string) ([]value.Value, error) {
	out := make([]value.Value, len(names))
	for i, n := range names {
		v, ok := env.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("unbound identifier %s", n)
		}
		out[i] = v
	}
	return out, nil
}

func (in *Interpreter) fieldValueTypeAt(field string, depth int) (ast.Type, error) {
	t, ok := in.checked.FieldTypes[field]
	if !ok {
		return nil, fmt.Errorf("unknown field %s", field)
	}
	for i := 0; i < depth; i++ {
		mt, ok := t.(ast.MapType)
		if !ok {
			return nil, fmt.Errorf("field %s is not a map at depth %d", field, i)
		}
		t = mt.Val
	}
	return t, nil
}

// matchPattern attempts to match a value against a pattern, returning
// the new bindings.
func matchPattern(p ast.Pattern, v value.Value) (map[string]value.Value, bool) {
	switch pt := p.(type) {
	case ast.WildPat:
		return nil, true
	case ast.BindPat:
		return map[string]value.Value{pt.Name: v}, true
	case ast.ConstrPat:
		adt, ok := v.(value.ADT)
		if !ok || adt.Constr != pt.Name {
			return nil, false
		}
		if len(pt.Sub) != len(adt.Args) {
			return nil, false
		}
		binds := make(map[string]value.Value)
		for i, sub := range pt.Sub {
			sb, ok := matchPattern(sub, adt.Args[i])
			if !ok {
				return nil, false
			}
			for k, val := range sb {
				binds[k] = val
			}
		}
		return binds, true
	}
	return nil, false
}

// --- Expressions ---

// evalExpr evaluates a pure expression outside a transaction context
// (library definitions, field initialisers).
func (in *Interpreter) evalExpr(env *value.Env, e ast.Expr) (value.Value, error) {
	return in.evalExprCtx(nil, env, e)
}

func (in *Interpreter) evalExprCtx(ctx *Context, env *value.Env, e ast.Expr) (value.Value, error) {
	if err := in.burn(ctx, gasExpr); err != nil {
		return nil, err
	}
	switch ex := e.(type) {
	case *ast.LitExpr:
		return value.FromLiteral(ex.Lit), nil
	case *ast.VarExpr:
		v, ok := env.Lookup(ex.Name)
		if !ok {
			return nil, fmt.Errorf("unbound identifier %s", ex.Name)
		}
		return v, nil
	case *ast.MsgExpr:
		entries := make(map[string]value.Value, len(ex.Entries))
		for _, en := range ex.Entries {
			if en.IsLit {
				entries[en.Key] = value.FromLiteral(en.Lit)
				continue
			}
			v, ok := env.Lookup(en.Var)
			if !ok {
				return nil, fmt.Errorf("unbound identifier %s in message", en.Var)
			}
			entries[en.Key] = v
		}
		return value.Msg{Entries: entries}, nil
	case *ast.ConstrExpr:
		if ex.Name == "Emp" {
			return value.NewMap(ex.TypeArgs[0], ex.TypeArgs[1]), nil
		}
		adt := in.checked.Registry.OwnerOfConstr(ex.Name)
		if adt == nil {
			return nil, fmt.Errorf("unknown constructor %s", ex.Name)
		}
		args, err := in.lookupAll(env, ex.Args)
		if err != nil {
			return nil, err
		}
		return value.ADT{
			TypeName: adt.Name,
			Constr:   ex.Name,
			TypeArgs: ex.TypeArgs,
			Args:     args,
		}, nil
	case *ast.BuiltinExpr:
		if err := in.burn(ctx, gasBuiltin); err != nil {
			return nil, err
		}
		args, err := in.lookupAll(env, ex.Args)
		if err != nil {
			return nil, err
		}
		v, err := stdlib.Eval(ex.Name, args)
		if err != nil {
			var rt *stdlib.RuntimeError
			if ok := asRuntime(err, &rt); ok {
				return nil, &ThrowError{Msg: rt.Msg}
			}
			return nil, err
		}
		return v, nil
	case *ast.LetExpr:
		bv, err := in.evalExprCtx(ctx, env, ex.Bound)
		if err != nil {
			return nil, err
		}
		inner := value.NewEnv(env)
		inner.Bind(ex.Name, bv)
		return in.evalExprCtx(ctx, inner, ex.Body)
	case *ast.FunExpr:
		return &value.Closure{Param: ex.Param, ParamType: ex.ParamType, Body: ex.Body, Env: env}, nil
	case *ast.AppExpr:
		fv, ok := env.Lookup(ex.Func)
		if !ok {
			return nil, fmt.Errorf("unbound identifier %s", ex.Func)
		}
		cur := fv
		for _, a := range ex.Args {
			av, ok := env.Lookup(a)
			if !ok {
				return nil, fmt.Errorf("unbound identifier %s", a)
			}
			var err error
			cur, err = in.applyCtx(ctx, cur, av)
			if err != nil {
				return nil, err
			}
		}
		return cur, nil
	case *ast.MatchExpr:
		scrut, ok := env.Lookup(ex.Scrutinee)
		if !ok {
			return nil, fmt.Errorf("unbound identifier %s", ex.Scrutinee)
		}
		for _, arm := range ex.Arms {
			binds, matched := matchPattern(arm.Pat, scrut)
			if !matched {
				continue
			}
			armEnv := value.NewEnv(env)
			for k, v := range binds {
				armEnv.Bind(k, v)
			}
			return in.evalExprCtx(ctx, armEnv, arm.Body)
		}
		return nil, &ThrowError{Msg: fmt.Sprintf("no pattern matched value %s", scrut.String())}
	case *ast.TFunExpr:
		return &value.TClosure{TVar: ex.TVar, Body: ex.Body, Env: env}, nil
	case *ast.TAppExpr:
		fv, ok := env.Lookup(ex.Name)
		if !ok {
			return nil, fmt.Errorf("unbound identifier %s", ex.Name)
		}
		cur := fv
		for _, ta := range ex.TypeArgs {
			switch f := cur.(type) {
			case *value.TClosure:
				// Type arguments are erased at runtime for closures.
				inner := value.NewEnv(f.Env)
				v, err := in.evalExprCtx(ctx, inner, f.Body)
				if err != nil {
					return nil, err
				}
				cur = v
			case *value.Native:
				cur = f.WithTypeArgs([]ast.Type{ta})
			default:
				return nil, fmt.Errorf("%s is not type-polymorphic", ex.Name)
			}
		}
		return cur, nil
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

// applyValue applies a function value to an argument (used by natives).
func (in *Interpreter) applyValue(fn value.Value, arg value.Value) (value.Value, error) {
	return in.applyCtx(nil, fn, arg)
}

func (in *Interpreter) applyCtx(ctx *Context, fn value.Value, arg value.Value) (value.Value, error) {
	if err := in.burn(ctx, gasExpr); err != nil {
		return nil, err
	}
	switch f := fn.(type) {
	case *value.Closure:
		inner := value.NewEnv(f.Env)
		inner.Bind(f.Param, arg)
		return in.evalExprCtx(ctx, inner, f.Body)
	case *value.Native:
		nf := f.WithArg(arg)
		if nf.Saturated() {
			v, err := nf.Fn(nf.TypeArgs, nf.Args)
			if err != nil {
				var rt *stdlib.RuntimeError
				if ok := asRuntime(err, &rt); ok {
					return nil, &ThrowError{Msg: rt.Msg}
				}
				return nil, err
			}
			return v, nil
		}
		return nf, nil
	}
	return nil, fmt.Errorf("cannot apply non-function value %s", fn.String())
}

func asRuntime(err error, target **stdlib.RuntimeError) bool {
	if rt, ok := err.(*stdlib.RuntimeError); ok {
		*target = rt
		return true
	}
	return false
}
