package eval_test

import (
	"math/big"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// benchFT deploys a FungibleToken with a huge supply so the transfer
// loop never drains the sender, mirroring newFT without *testing.T.
func benchFT(b *testing.B, owner value.ByStr) (*eval.Interpreter, *eval.MemState) {
	b.Helper()
	chk := contracts.MustParse("FungibleToken")
	in, err := eval.New(chk, map[string]value.Value{
		"contract_owner": owner,
		"token_name":     value.Str{S: "BenchToken"},
		"token_symbol":   value.Str{S: "BT"},
		"decimals":       value.Uint32V(6),
		"init_supply":    u128(1 << 62),
	})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	st := eval.NewMemState(chk.FieldTypes)
	if err := st.InitFrom(in); err != nil {
		b.Fatalf("InitFrom: %v", err)
	}
	return in, st
}

// BenchmarkTransferExec measures the interpreter's hot path — a full
// FungibleToken Transfer transition, the dominant per-transaction cost
// in every throughput run — with the Context and args map reused
// across calls exactly as the shard executor reuses them per batch.
func BenchmarkTransferExec(b *testing.B) {
	owner, bob := addr(1), addr(2)
	in, st := benchFT(b, owner)
	ctx := &eval.Context{
		Sender:      owner,
		Origin:      owner,
		Amount:      u128(0),
		BlockNumber: big.NewInt(100),
		State:       st,
	}
	args := map[string]value.Value{"to": bob, "amount": u128(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Run(ctx, "Transfer", args); err != nil {
			b.Fatal(err)
		}
	}
}

// transferExecAllocCeiling guards the interpreter hot path against
// allocation regressions. The interned keypaths, the reused per-call
// args environment, and the cached integer range bounds hold a
// Transfer around 49 allocations; the ceiling leaves slack for
// Go-version variance, not for regrowth. The compiled closure-chain
// executor has its own, far tighter budget (≤5 allocs/op), enforced by
// TestCompiledAllocCeiling in internal/scilla/compile.
const transferExecAllocCeiling = 60

func TestTransferExecAllocs(t *testing.T) {
	owner, bob := addr(1), addr(2)
	chk := contracts.MustParse("FungibleToken")
	in, err := eval.New(chk, map[string]value.Value{
		"contract_owner": owner,
		"token_name":     value.Str{S: "BenchToken"},
		"token_symbol":   value.Str{S: "BT"},
		"decimals":       value.Uint32V(6),
		"init_supply":    u128(1 << 62),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st := eval.NewMemState(chk.FieldTypes)
	if err := st.InitFrom(in); err != nil {
		t.Fatalf("InitFrom: %v", err)
	}
	ctx := &eval.Context{
		Sender:      owner,
		Origin:      owner,
		Amount:      u128(0),
		BlockNumber: big.NewInt(100),
		State:       st,
	}
	args := map[string]value.Value{"to": bob, "amount": u128(1)}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := in.Run(ctx, "Transfer", args); err != nil {
			t.Fatal(err)
		}
	})
	if avg > transferExecAllocCeiling {
		t.Errorf("Transfer allocates %.1f objects per run, ceiling %d — interpreter hot path regressed",
			avg, transferExecAllocCeiling)
	}
}
