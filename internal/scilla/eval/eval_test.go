package eval_test

import (
	"math/big"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

func addr(b byte) value.ByStr {
	bs := make([]byte, 20)
	bs[19] = b
	return value.ByStr{Ty: ast.TyByStr20, B: bs}
}

func u128(v uint64) value.Int { return value.Uint128(v) }

func newFT(t *testing.T, owner value.ByStr, supply uint64) (*eval.Interpreter, *eval.MemState) {
	t.Helper()
	chk := contracts.MustParse("FungibleToken")
	in, err := eval.New(chk, map[string]value.Value{
		"contract_owner": owner,
		"token_name":     value.Str{S: "TestToken"},
		"token_symbol":   value.Str{S: "TT"},
		"decimals":       value.Uint32V(6),
		"init_supply":    u128(supply),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st := eval.NewMemState(chk.FieldTypes)
	if err := st.InitFrom(in); err != nil {
		t.Fatalf("InitFrom: %v", err)
	}
	return in, st
}

func ctx(sender value.ByStr, st eval.StateAccess) *eval.Context {
	return &eval.Context{
		Sender:      sender,
		Origin:      sender,
		Amount:      u128(0),
		BlockNumber: big.NewInt(100),
		State:       st,
	}
}

func balanceOf(t *testing.T, st *eval.MemState, a value.ByStr) uint64 {
	t.Helper()
	v, ok, err := st.MapGet("balances", []value.Value{a})
	if err != nil {
		t.Fatalf("MapGet: %v", err)
	}
	if !ok {
		return 0
	}
	return v.(value.Int).V.Uint64()
}

func TestFieldInitialisation(t *testing.T) {
	owner := addr(1)
	_, st := newFT(t, owner, 1000)
	if got := balanceOf(t, st, owner); got != 1000 {
		t.Errorf("owner balance = %d, want 1000", got)
	}
	ts, err := st.LoadField("total_supply")
	if err != nil {
		t.Fatal(err)
	}
	if ts.(value.Int).V.Uint64() != 1000 {
		t.Errorf("total_supply = %s, want 1000", ts)
	}
}

func TestTransfer(t *testing.T) {
	owner, bob := addr(1), addr(2)
	in, st := newFT(t, owner, 1000)
	res, err := in.Run(ctx(owner, st), "Transfer", map[string]value.Value{
		"to": bob, "amount": u128(300),
	})
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if len(res.Events) != 1 {
		t.Fatalf("expected 1 event, got %d", len(res.Events))
	}
	if got := balanceOf(t, st, owner); got != 700 {
		t.Errorf("owner balance = %d, want 700", got)
	}
	if got := balanceOf(t, st, bob); got != 300 {
		t.Errorf("bob balance = %d, want 300", got)
	}
	if res.GasUsed == 0 {
		t.Error("expected gas to be consumed")
	}
}

func TestTransferInsufficientBalanceThrows(t *testing.T) {
	owner, bob := addr(1), addr(2)
	in, st := newFT(t, owner, 100)
	_, err := in.Run(ctx(owner, st), "Transfer", map[string]value.Value{
		"to": bob, "amount": u128(300),
	})
	if err == nil {
		t.Fatal("expected a throw")
	}
	if _, ok := err.(*eval.ThrowError); !ok {
		t.Fatalf("expected ThrowError, got %T: %v", err, err)
	}
}

func TestTransferFromRequiresAllowance(t *testing.T) {
	owner, bob, carol := addr(1), addr(2), addr(3)
	in, st := newFT(t, owner, 1000)

	// Without allowance, bob cannot move owner's tokens.
	_, err := in.Run(ctx(bob, st), "TransferFrom", map[string]value.Value{
		"from": owner, "to": carol, "amount": u128(10),
	})
	if err == nil {
		t.Fatal("expected TransferFrom to throw without allowance")
	}

	// Approve then transfer.
	if _, err := in.Run(ctx(owner, st), "Approve", map[string]value.Value{
		"spender": bob, "amount": u128(50),
	}); err != nil {
		t.Fatalf("Approve: %v", err)
	}
	if _, err := in.Run(ctx(bob, st), "TransferFrom", map[string]value.Value{
		"from": owner, "to": carol, "amount": u128(30),
	}); err != nil {
		t.Fatalf("TransferFrom: %v", err)
	}
	if got := balanceOf(t, st, carol); got != 30 {
		t.Errorf("carol balance = %d, want 30", got)
	}
	// Remaining allowance must be 20.
	av, ok, err := st.MapGet("allowances", []value.Value{owner, bob})
	if err != nil || !ok {
		t.Fatalf("allowance read: ok=%v err=%v", ok, err)
	}
	if av.(value.Int).V.Uint64() != 20 {
		t.Errorf("allowance = %s, want 20", av)
	}
}

func TestMintOnlyOwner(t *testing.T) {
	owner, bob := addr(1), addr(2)
	in, st := newFT(t, owner, 0)
	if _, err := in.Run(ctx(bob, st), "Mint", map[string]value.Value{
		"recipient": bob, "amount": u128(10),
	}); err == nil {
		t.Fatal("expected non-owner Mint to throw")
	}
	if _, err := in.Run(ctx(owner, st), "Mint", map[string]value.Value{
		"recipient": bob, "amount": u128(10),
	}); err != nil {
		t.Fatalf("owner Mint: %v", err)
	}
	if got := balanceOf(t, st, bob); got != 10 {
		t.Errorf("bob balance = %d, want 10", got)
	}
}

func TestBalanceOfSendsCallback(t *testing.T) {
	owner := addr(1)
	in, st := newFT(t, owner, 77)
	res, err := in.Run(ctx(owner, st), "BalanceOf", map[string]value.Value{
		"address": owner,
	})
	if err != nil {
		t.Fatalf("BalanceOf: %v", err)
	}
	if len(res.Messages) != 1 {
		t.Fatalf("expected 1 message, got %d", len(res.Messages))
	}
	msg := res.Messages[0]
	if tag, ok := msg.Entries["_tag"].(value.Str); !ok || tag.S != "BalanceOfCallback" {
		t.Errorf("unexpected tag %v", msg.Entries["_tag"])
	}
	if bal, ok := msg.Entries["balance"].(value.Int); !ok || bal.V.Uint64() != 77 {
		t.Errorf("unexpected balance %v", msg.Entries["balance"])
	}
}

func TestGasLimitEnforced(t *testing.T) {
	owner, bob := addr(1), addr(2)
	in, st := newFT(t, owner, 1000)
	c := ctx(owner, st)
	c.GasLimit = 3
	_, err := in.Run(c, "Transfer", map[string]value.Value{
		"to": bob, "amount": u128(1),
	})
	if _, ok := err.(*eval.OutOfGasError); !ok {
		t.Fatalf("expected OutOfGasError, got %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	owner, bob := addr(1), addr(2)
	run := func() *eval.MemState {
		in, st := newFT(t, owner, 1000)
		for i := 0; i < 5; i++ {
			if _, err := in.Run(ctx(owner, st), "Transfer", map[string]value.Value{
				"to": bob, "amount": u128(10),
			}); err != nil {
				t.Fatalf("Transfer: %v", err)
			}
		}
		return st
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Error("identical executions produced different states")
	}
}
