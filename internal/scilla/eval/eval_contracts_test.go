package eval_test

import (
	"math/big"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/stdlib"
	"cosplit/internal/scilla/value"
)

// newContract instantiates any corpus contract with the given params.
func newContract(t *testing.T, name string, params map[string]value.Value) (*eval.Interpreter, *eval.MemState) {
	t.Helper()
	chk := contracts.MustParse(name)
	in, err := eval.New(chk, params)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	st := eval.NewMemState(chk.FieldTypes)
	if err := st.InitFrom(in); err != nil {
		t.Fatalf("InitFrom(%s): %v", name, err)
	}
	return in, st
}

func ctxAt(sender value.ByStr, st eval.StateAccess, block int64) *eval.Context {
	return &eval.Context{
		Sender: sender, Origin: sender,
		Amount:      u128(0),
		BlockNumber: big.NewInt(block),
		State:       st,
	}
}

func hash32(b byte) value.ByStr {
	bs := make([]byte, 32)
	bs[0] = b
	return value.ByStr{Ty: ast.TyByStr32, B: bs}
}

func u256(v uint64) value.Int {
	return value.Int{Ty: ast.TyUint256, V: new(big.Int).SetUint64(v)}
}

// --- NonfungibleToken ---

func TestNFTLifecycle(t *testing.T) {
	owner, alice, bob := addr(1), addr(2), addr(3)
	in, st := newContract(t, "NonfungibleToken", map[string]value.Value{
		"contract_owner": owner,
		"name":           value.Str{S: "N"},
		"symbol":         value.Str{S: "N"},
	})

	// Mint token 7 to alice.
	if _, err := in.Run(ctxAt(owner, st, 1), "Mint", map[string]value.Value{
		"to": alice, "token_id": u256(7),
	}); err != nil {
		t.Fatalf("Mint: %v", err)
	}
	// Re-minting the same token must throw.
	if _, err := in.Run(ctxAt(owner, st, 1), "Mint", map[string]value.Value{
		"to": bob, "token_id": u256(7),
	}); err == nil {
		t.Fatal("duplicate mint accepted")
	}
	// Non-minter cannot mint.
	if _, err := in.Run(ctxAt(alice, st, 1), "Mint", map[string]value.Value{
		"to": alice, "token_id": u256(8),
	}); err == nil {
		t.Fatal("non-minter mint accepted")
	}

	// Transfer with wrong expected owner fails (CAS check).
	if _, err := in.Run(ctxAt(alice, st, 1), "Transfer", map[string]value.Value{
		"to": bob, "token_id": u256(7), "token_owner": bob,
	}); err == nil {
		t.Fatal("CAS owner mismatch accepted")
	}
	// Bob cannot move alice's token.
	if _, err := in.Run(ctxAt(bob, st, 1), "Transfer", map[string]value.Value{
		"to": bob, "token_id": u256(7), "token_owner": alice,
	}); err == nil {
		t.Fatal("unauthorised transfer accepted")
	}
	// Alice approves bob, who then transfers.
	if _, err := in.Run(ctxAt(alice, st, 1), "Approve", map[string]value.Value{
		"to": bob, "token_id": u256(7),
	}); err != nil {
		t.Fatalf("Approve: %v", err)
	}
	if _, err := in.Run(ctxAt(bob, st, 1), "Transfer", map[string]value.Value{
		"to": bob, "token_id": u256(7), "token_owner": alice,
	}); err != nil {
		t.Fatalf("approved transfer: %v", err)
	}
	v, ok, _ := st.MapGet("token_owners", []value.Value{u256(7)})
	if !ok || !value.Equal(v, bob) {
		t.Errorf("token 7 owner = %v, want bob", v)
	}
	// Counters updated commutatively.
	ac, ok, _ := st.MapGet("owned_count", []value.Value{alice})
	if !ok || ac.(value.Int).V.Uint64() != 0 {
		t.Errorf("alice count = %v, want 0", ac)
	}
	bc, _, _ := st.MapGet("owned_count", []value.Value{bob})
	if bc.(value.Int).V.Uint64() != 1 {
		t.Errorf("bob count = %v, want 1", bc)
	}

	// Burn by owner.
	if _, err := in.Run(ctxAt(bob, st, 1), "Burn", map[string]value.Value{
		"token_id": u256(7),
	}); err != nil {
		t.Fatalf("Burn: %v", err)
	}
	if _, ok, _ := st.MapGet("token_owners", []value.Value{u256(7)}); ok {
		t.Error("burned token still owned")
	}
}

// --- Crowdfunding ---

func TestCrowdfundingLifecycle(t *testing.T) {
	owner, donor := addr(1), addr(2)
	in, st := newContract(t, "Crowdfunding", map[string]value.Value{
		"owner":     owner,
		"max_block": value.BNum{V: big.NewInt(100)},
		"goal":      u128(1000),
	})

	donate := func(who value.ByStr, amount uint64, block int64) error {
		ctx := ctxAt(who, st, block)
		ctx.Amount = u128(amount)
		res, err := in.Run(ctx, "Donate", nil)
		if err == nil && !res.Accepted {
			t.Fatal("donation did not accept funds")
		}
		return err
	}
	if err := donate(donor, 500, 50); err != nil {
		t.Fatalf("Donate: %v", err)
	}
	// Second donation by the same backer throws.
	if err := donate(donor, 100, 51); err == nil {
		t.Fatal("double donation accepted")
	}
	// Donation after the deadline throws.
	if err := donate(addr(3), 100, 200); err == nil {
		t.Fatal("late donation accepted")
	}

	// ClaimBack before the deadline throws.
	if _, err := in.Run(ctxAt(donor, st, 50), "ClaimBack", nil); err == nil {
		t.Fatal("early claim-back accepted")
	}
	// After the deadline with goal unmet (balance 500 < 1000): refund.
	ctx := ctxAt(donor, st, 150)
	ctx.ContractBalance = big.NewInt(500)
	res, err := in.Run(ctx, "ClaimBack", nil)
	if err != nil {
		t.Fatalf("ClaimBack: %v", err)
	}
	if len(res.Messages) != 1 {
		t.Fatal("refund message missing")
	}
	amt := res.Messages[0].Entries["_amount"].(value.Int)
	if amt.V.Uint64() != 500 {
		t.Errorf("refund = %s, want 500", amt)
	}
	// GetFunds with goal unmet throws even for the owner.
	ctx2 := ctxAt(owner, st, 150)
	ctx2.ContractBalance = big.NewInt(0)
	if _, err := in.Run(ctx2, "GetFunds", nil); err == nil {
		t.Fatal("GetFunds with unmet goal accepted")
	}
}

// --- HTLC (hash locks + custom ADT) ---

func TestHTLCClaim(t *testing.T) {
	locker, recipient := addr(1), addr(2)
	in, st := newContract(t, "HTLC", map[string]value.Value{
		"registry_owner": addr(9),
	})

	preimage := value.ByStr{Ty: ast.TyByStr, B: []byte("secret")}
	hv, err := stdlib.Eval("sha256hash", []value.Value{preimage})
	if err != nil {
		t.Fatal(err)
	}
	hashLock := hv.(value.ByStr)
	hashLock.Ty = ast.TyByStr32

	ctx := ctxAt(locker, st, 10)
	ctx.Amount = u128(777)
	if _, err := in.Run(ctx, "NewLock", map[string]value.Value{
		"hash_lock": hashLock, "recipient": recipient,
		"expiry": value.BNum{V: big.NewInt(100)},
	}); err != nil {
		t.Fatalf("NewLock: %v", err)
	}

	// Wrong preimage fails.
	if _, err := in.Run(ctxAt(recipient, st, 20), "Claim", map[string]value.Value{
		"hash_lock": hashLock,
		"preimage":  value.ByStr{Ty: ast.TyByStr, B: []byte("wrong")},
	}); err == nil {
		t.Fatal("wrong preimage accepted")
	}
	// Correct preimage pays the recipient.
	res, err := in.Run(ctxAt(recipient, st, 20), "Claim", map[string]value.Value{
		"hash_lock": hashLock, "preimage": preimage,
	})
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	msg := res.Messages[0]
	if !value.Equal(msg.Entries["_recipient"], recipient) {
		t.Errorf("claim recipient = %s", msg.Entries["_recipient"])
	}
	if msg.Entries["_amount"].(value.Int).V.Uint64() != 777 {
		t.Errorf("claim amount = %s", msg.Entries["_amount"])
	}
	// Lock is consumed.
	if _, ok, _ := st.MapGet("locks", []value.Value{hashLock}); ok {
		t.Error("lock survived the claim")
	}
}

// --- Multisig (custom ADT + m-of-n flow) ---

func TestMultisigFlow(t *testing.T) {
	a, b, c, payee := addr(1), addr(2), addr(3), addr(4)
	in, st := newContract(t, "Multisig", map[string]value.Value{
		"owner_a": a, "owner_b": b, "owner_c": c,
		"required": value.Uint32V(2),
	})

	if _, err := in.Run(ctxAt(a, st, 1), "Submit", map[string]value.Value{
		"recipient": payee, "amount": u128(50),
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := value.Uint32V(0)
	// One signature is not enough.
	if _, err := in.Run(ctxAt(a, st, 1), "Sign", map[string]value.Value{"id": id}); err != nil {
		t.Fatalf("Sign a: %v", err)
	}
	if _, err := in.Run(ctxAt(a, st, 1), "Execute", map[string]value.Value{"id": id}); err == nil {
		t.Fatal("executed with 1 of 2 signatures")
	}
	// Duplicate signature rejected.
	if _, err := in.Run(ctxAt(a, st, 1), "Sign", map[string]value.Value{"id": id}); err == nil {
		t.Fatal("duplicate signature accepted")
	}
	// Second signature enables execution.
	if _, err := in.Run(ctxAt(b, st, 1), "Sign", map[string]value.Value{"id": id}); err != nil {
		t.Fatalf("Sign b: %v", err)
	}
	res, err := in.Run(ctxAt(c, st, 1), "Execute", map[string]value.Value{"id": id})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Messages) != 1 || res.Messages[0].Entries["_amount"].(value.Int).V.Uint64() != 50 {
		t.Errorf("payout message wrong: %v", res.Messages)
	}
	// Executed transaction is gone.
	if _, err := in.Run(ctxAt(a, st, 1), "Execute", map[string]value.Value{"id": id}); err == nil {
		t.Fatal("double execution accepted")
	}
}

// --- Airdrop (polymorphic list natives at runtime) ---

func TestAirdropListNatives(t *testing.T) {
	admin := addr(1)
	in, st := newContract(t, "Airdrop", map[string]value.Value{"admin": admin})

	recipients := value.Value(value.NilList(ast.TyByStr20))
	for i := 5; i > 1; i-- {
		recipients = value.Cons(ast.TyByStr20, addr(byte(i)), recipients)
	}
	res, err := in.Run(ctxAt(admin, st, 1), "Drop", map[string]value.Value{
		"recipients": recipients,
	})
	if err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if len(res.Messages) != 4 {
		t.Fatalf("expected 4 payout messages, got %d", len(res.Messages))
	}
	for _, m := range res.Messages {
		if m.Entries["_amount"].(value.Int).V.Uint64() != 5 {
			t.Errorf("payout amount = %s, want 5 (reward)", m.Entries["_amount"])
		}
	}
	if len(res.Events) != 1 {
		t.Fatalf("expected count event")
	}
	if n := res.Events[0].Entries["count"].(value.Int); n.V.Uint64() != 4 {
		t.Errorf("count = %s, want 4", n)
	}
}

// --- Voting (exists-guard + commutative counters) ---

func TestVotingFlow(t *testing.T) {
	org, v1, v2 := addr(1), addr(2), addr(3)
	in, st := newContract(t, "Voting", map[string]value.Value{"organiser": org})

	if _, err := in.Run(ctxAt(org, st, 1), "AddOption", map[string]value.Value{
		"option": value.Str{S: "yes"},
	}); err != nil {
		t.Fatal(err)
	}
	// Voting for a missing option throws.
	if _, err := in.Run(ctxAt(v1, st, 1), "Vote", map[string]value.Value{
		"option": value.Str{S: "maybe"},
	}); err == nil {
		t.Fatal("vote for unknown option accepted")
	}
	for _, voter := range []value.ByStr{v1, v2} {
		if _, err := in.Run(ctxAt(voter, st, 1), "Vote", map[string]value.Value{
			"option": value.Str{S: "yes"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Double vote throws.
	if _, err := in.Run(ctxAt(v1, st, 1), "Vote", map[string]value.Value{
		"option": value.Str{S: "yes"},
	}); err == nil {
		t.Fatal("double vote accepted")
	}
	cnt, _, _ := st.MapGet("votes", []value.Value{value.Str{S: "yes"}})
	if cnt.(value.Int).V.Uint64() != 2 {
		t.Errorf("votes = %s, want 2", cnt)
	}
	// Close and verify voting stops.
	if _, err := in.Run(ctxAt(org, st, 1), "CloseElection", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(ctxAt(addr(7), st, 1), "Vote", map[string]value.Value{
		"option": value.Str{S: "yes"},
	}); err == nil {
		t.Fatal("vote after close accepted")
	}
}

// --- Bookstore (custom ADT storage) ---

func TestBookstoreCRUD(t *testing.T) {
	owner := addr(1)
	in, st := newContract(t, "Bookstore", map[string]value.Value{"store_owner": owner})
	add := func(id uint32, title string) error {
		_, err := in.Run(ctxAt(owner, st, 1), "AddBook", map[string]value.Value{
			"book_id": value.Uint32V(id),
			"title":   value.Str{S: title},
			"author":  value.Str{S: "A"},
			"price":   u128(10),
		})
		return err
	}
	if err := add(1, "SICP"); err != nil {
		t.Fatal(err)
	}
	if err := add(1, "Dup"); err == nil {
		t.Fatal("duplicate book accepted")
	}
	if _, err := in.Run(ctxAt(owner, st, 1), "UpdateBook", map[string]value.Value{
		"book_id": value.Uint32V(1),
		"title":   value.Str{S: "SICP 2e"},
		"author":  value.Str{S: "A"},
		"price":   u128(12),
	}); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := st.MapGet("inventory", []value.Value{value.Uint32V(1)})
	if !ok {
		t.Fatal("book missing")
	}
	book := v.(value.ADT)
	if book.Constr != "Book" || book.Args[0].(value.Str).S != "SICP 2e" {
		t.Errorf("book = %s", book)
	}
	if _, err := in.Run(ctxAt(owner, st, 1), "RemoveBook", map[string]value.Value{
		"book_id": value.Uint32V(1),
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.MapGet("inventory", []value.Value{value.Uint32V(1)}); ok {
		t.Error("book survived removal")
	}
	// Non-member rejected.
	if err := addAs(t, in, st, addr(5)); err == nil {
		t.Fatal("non-member AddBook accepted")
	}
}

func addAs(t *testing.T, in *eval.Interpreter, st *eval.MemState, who value.ByStr) error {
	t.Helper()
	_, err := in.Run(ctxAt(who, st, 1), "AddBook", map[string]value.Value{
		"book_id": value.Uint32V(9),
		"title":   value.Str{S: "X"},
		"author":  value.Str{S: "Y"},
		"price":   u128(1),
	})
	return err
}

// --- ProofIPFS register/verify/withdraw ---

func TestProofIPFSFlow(t *testing.T) {
	admin, user := addr(1), addr(2)
	in, st := newContract(t, "ProofIPFS", map[string]value.Value{"initial_admin": admin})

	ctx := ctxAt(user, st, 1)
	ctx.Amount = u128(0)
	if _, err := in.Run(ctx, "RegisterOwnership", map[string]value.Value{
		"item_hash": hash32(1),
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Duplicate registration throws.
	if _, err := in.Run(ctxAt(addr(3), st, 1), "RegisterOwnership", map[string]value.Value{
		"item_hash": hash32(1),
	}); err == nil {
		t.Fatal("duplicate hash registration accepted")
	}
	res, err := in.Run(ctxAt(addr(3), st, 1), "VerifyOwnership", map[string]value.Value{
		"item_hash": hash32(1),
	})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !value.Equal(res.Messages[0].Entries["owner"], user) {
		t.Errorf("verified owner = %s, want user", res.Messages[0].Entries["owner"])
	}
	// Registration can be closed by the admin; then registering throws.
	f := value.False()
	if _, err := in.Run(ctxAt(admin, st, 1), "SetRegistrationOpen", map[string]value.Value{
		"open": f,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(ctxAt(user, st, 1), "RegisterOwnership", map[string]value.Value{
		"item_hash": hash32(2),
	}); err == nil {
		t.Fatal("registration accepted while closed")
	}
}
