// Package typecheck implements the typechecker for the Scilla subset.
// It checks a parsed module and produces a Checked artifact holding the
// ADT registry and typing environments used by the interpreter and the
// CoSplit analysis.
package typecheck

import (
	"fmt"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/stdlib"
)

// Error is a type error with an optional source position.
type Error struct {
	Msg string
	Pos ast.Pos
}

func (e *Error) Error() string {
	if e.Pos.Line > 0 {
		return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
	}
	return e.Msg
}

func errf(pos ast.Pos, format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Pos: pos}
}

// Checked is the result of typechecking a module.
type Checked struct {
	Module   *ast.Module
	Registry *stdlib.Registry
	// LibTypes maps library definition names to their types.
	LibTypes map[string]ast.Type
	// FieldTypes maps contract field names to their declared types.
	FieldTypes map[string]ast.Type
	// ParamTypes maps contract (immutable) parameter names to types.
	ParamTypes map[string]ast.Type
}

// Env is a persistent typing context.
type Env struct {
	parent *Env
	vars   map[string]ast.Type
}

// NewEnv creates an environment frame with the given parent.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]ast.Type)}
}

// Lookup resolves a variable's type.
func (e *Env) Lookup(name string) (ast.Type, bool) {
	for env := e; env != nil; env = env.parent {
		if t, ok := env.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

// Bind adds a binding to this frame.
func (e *Env) Bind(name string, t ast.Type) { e.vars[name] = t }

type checker struct {
	reg    *stdlib.Registry
	fields map[string]ast.Type
	out    *Checked
}

// Check typechecks a module.
func Check(m *ast.Module) (*Checked, error) {
	reg := stdlib.NewRegistry()
	c := &checker{
		reg:    reg,
		fields: make(map[string]ast.Type),
	}
	out := &Checked{
		Module:     m,
		Registry:   reg,
		LibTypes:   make(map[string]ast.Type),
		FieldTypes: c.fields,
		ParamTypes: make(map[string]ast.Type),
	}
	c.out = out

	global := NewEnv(nil)
	for _, ns := range stdlib.NativeSigs() {
		global.Bind(ns.Name, ns.Type)
	}
	if m.Lib != nil {
		for _, td := range m.Lib.Types {
			if err := reg.RegisterTypeDef(td); err != nil {
				return nil, errf(ast.Pos{}, "%v", err)
			}
		}
		for _, def := range m.Lib.Defs {
			t, err := c.exprType(global, def.Expr)
			if err != nil {
				return nil, err
			}
			if def.Ty != nil && !def.Ty.Equal(t) {
				return nil, errf(def.Expr.Position(),
					"library definition %s declared %s but has type %s",
					def.Name, def.Ty, t)
			}
			global.Bind(def.Name, t)
			out.LibTypes[def.Name] = t
		}
	}

	ct := &m.Contract
	for _, p := range ct.Params {
		if err := c.checkStorable(p.Type); err != nil {
			return nil, errf(ast.Pos{}, "contract parameter %s: %v", p.Name, err)
		}
		global.Bind(p.Name, p.Type)
		out.ParamTypes[p.Name] = p.Type
	}
	for _, f := range ct.Fields {
		if err := c.checkStorable(f.Type); err != nil {
			return nil, errf(f.Init.Position(), "field %s: %v", f.Name, err)
		}
		t, err := c.exprType(global, f.Init)
		if err != nil {
			return nil, err
		}
		if !t.Equal(f.Type) {
			return nil, errf(f.Init.Position(),
				"field %s declared %s but initialiser has type %s", f.Name, f.Type, t)
		}
		if _, dup := c.fields[f.Name]; dup {
			return nil, errf(f.Init.Position(), "duplicate field %s", f.Name)
		}
		c.fields[f.Name] = f.Type
	}

	seen := map[string]bool{}
	for i := range ct.Transitions {
		tr := &ct.Transitions[i]
		if seen[tr.Name] {
			return nil, errf(tr.Pos, "duplicate transition %s", tr.Name)
		}
		seen[tr.Name] = true
		env := NewEnv(global)
		env.Bind(ast.SenderParam, ast.TyByStr20)
		env.Bind(ast.OriginParam, ast.TyByStr20)
		env.Bind(ast.AmountParam, ast.TyUint128)
		for _, p := range tr.Params {
			if err := c.checkStorable(p.Type); err != nil {
				return nil, errf(tr.Pos, "transition %s parameter %s: %v", tr.Name, p.Name, err)
			}
			env.Bind(p.Name, p.Type)
		}
		if err := c.stmtsType(env, tr.Body); err != nil {
			return nil, fmt.Errorf("transition %s: %w", tr.Name, err)
		}
	}
	return out, nil
}

// checkStorable rejects function and polymorphic types in storage and
// parameter positions.
func (c *checker) checkStorable(t ast.Type) error {
	switch tt := t.(type) {
	case ast.FunType, ast.PolyType, ast.TypeVar:
		return fmt.Errorf("type %s is not storable", t)
	case ast.MapType:
		if err := c.checkStorable(tt.Key); err != nil {
			return err
		}
		if _, ok := tt.Key.(ast.PrimType); !ok {
			return fmt.Errorf("map key type %s must be primitive", tt.Key)
		}
		return c.checkStorable(tt.Val)
	case ast.ADTType:
		if c.reg.ADT(tt.Name) == nil {
			return fmt.Errorf("unknown type %s", tt.Name)
		}
		for _, a := range tt.Args {
			if err := c.checkStorable(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- Statements ---

func (c *checker) stmtsType(env *Env, stmts []ast.Stmt) error {
	for _, s := range stmts {
		if err := c.stmtType(env, s); err != nil {
			return err
		}
	}
	return nil
}

// mapValueTypeAt descends n key levels into a map type.
func mapValueTypeAt(t ast.Type, n int) (keyTypes []ast.Type, val ast.Type, err error) {
	cur := t
	for i := 0; i < n; i++ {
		mt, ok := cur.(ast.MapType)
		if !ok {
			return nil, nil, fmt.Errorf("too many keys: %s is not a map", cur)
		}
		keyTypes = append(keyTypes, mt.Key)
		cur = mt.Val
	}
	return keyTypes, cur, nil
}

func (c *checker) stmtType(env *Env, s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.LoadStmt:
		if st.Field == "_balance" {
			// The implicit native-token balance of the contract.
			env.Bind(st.Lhs, ast.TyUint128)
			return nil
		}
		ft, ok := c.fields[st.Field]
		if !ok {
			return errf(st.Pos, "unknown field %s", st.Field)
		}
		env.Bind(st.Lhs, ft)
		return nil
	case *ast.StoreStmt:
		ft, ok := c.fields[st.Field]
		if !ok {
			return errf(st.Pos, "unknown field %s", st.Field)
		}
		rt, ok := env.Lookup(st.Rhs)
		if !ok {
			return errf(st.Pos, "unbound identifier %s", st.Rhs)
		}
		if !rt.Equal(ft) {
			return errf(st.Pos, "cannot store %s into field %s of type %s", rt, st.Field, ft)
		}
		return nil
	case *ast.BindStmt:
		t, err := c.exprType(env, st.Expr)
		if err != nil {
			return err
		}
		env.Bind(st.Lhs, t)
		return nil
	case *ast.MapUpdateStmt:
		ft, ok := c.fields[st.Map]
		if !ok {
			return errf(st.Pos, "unknown field %s", st.Map)
		}
		keyTypes, valT, err := mapValueTypeAt(ft, len(st.Keys))
		if err != nil {
			return errf(st.Pos, "field %s: %v", st.Map, err)
		}
		for i, k := range st.Keys {
			kt, ok := env.Lookup(k)
			if !ok {
				return errf(st.Pos, "unbound map key %s", k)
			}
			if !kt.Equal(keyTypes[i]) {
				return errf(st.Pos, "map key %s has type %s, want %s", k, kt, keyTypes[i])
			}
		}
		rt, ok := env.Lookup(st.Rhs)
		if !ok {
			return errf(st.Pos, "unbound identifier %s", st.Rhs)
		}
		if !rt.Equal(valT) {
			return errf(st.Pos, "cannot store %s into %s entry of type %s", rt, st.Map, valT)
		}
		return nil
	case *ast.MapGetStmt:
		ft, ok := c.fields[st.Map]
		if !ok {
			return errf(st.Pos, "unknown field %s", st.Map)
		}
		keyTypes, valT, err := mapValueTypeAt(ft, len(st.Keys))
		if err != nil {
			return errf(st.Pos, "field %s: %v", st.Map, err)
		}
		for i, k := range st.Keys {
			kt, ok := env.Lookup(k)
			if !ok {
				return errf(st.Pos, "unbound map key %s", k)
			}
			if !kt.Equal(keyTypes[i]) {
				return errf(st.Pos, "map key %s has type %s, want %s", k, kt, keyTypes[i])
			}
		}
		if st.Exists {
			env.Bind(st.Lhs, ast.TyBool)
		} else {
			env.Bind(st.Lhs, ast.TyOption(valT))
		}
		return nil
	case *ast.MapDeleteStmt:
		ft, ok := c.fields[st.Map]
		if !ok {
			return errf(st.Pos, "unknown field %s", st.Map)
		}
		keyTypes, _, err := mapValueTypeAt(ft, len(st.Keys))
		if err != nil {
			return errf(st.Pos, "field %s: %v", st.Map, err)
		}
		for i, k := range st.Keys {
			kt, ok := env.Lookup(k)
			if !ok {
				return errf(st.Pos, "unbound map key %s", k)
			}
			if !kt.Equal(keyTypes[i]) {
				return errf(st.Pos, "map key %s has type %s, want %s", k, kt, keyTypes[i])
			}
		}
		return nil
	case *ast.ReadBlockchainStmt:
		switch st.Name {
		case "BLOCKNUMBER":
			env.Bind(st.Lhs, ast.TyBNum)
		case "TIMESTAMP":
			env.Bind(st.Lhs, ast.TyUint64)
		default:
			return errf(st.Pos, "unknown blockchain component %s", st.Name)
		}
		return nil
	case *ast.MatchStmt:
		scrutT, ok := env.Lookup(st.Scrutinee)
		if !ok {
			return errf(st.Pos, "unbound identifier %s", st.Scrutinee)
		}
		for _, arm := range st.Arms {
			armEnv := NewEnv(env)
			if err := c.bindPattern(armEnv, arm.Pat, scrutT, st.Pos); err != nil {
				return err
			}
			if err := c.stmtsType(armEnv, arm.Body); err != nil {
				return err
			}
		}
		return nil
	case *ast.AcceptStmt:
		return nil
	case *ast.SendStmt:
		t, ok := env.Lookup(st.Arg)
		if !ok {
			return errf(st.Pos, "unbound identifier %s", st.Arg)
		}
		if !t.Equal(ast.TyList(ast.TyMessage)) {
			return errf(st.Pos, "send expects List Message, got %s", t)
		}
		return nil
	case *ast.EventStmt:
		t, ok := env.Lookup(st.Arg)
		if !ok {
			return errf(st.Pos, "unbound identifier %s", st.Arg)
		}
		if !t.Equal(ast.TyEvent) && !t.Equal(ast.TyMessage) {
			return errf(st.Pos, "event expects a message payload, got %s", t)
		}
		return nil
	case *ast.ThrowStmt:
		if st.Arg != "" {
			if _, ok := env.Lookup(st.Arg); !ok {
				return errf(st.Pos, "unbound identifier %s", st.Arg)
			}
		}
		return nil
	}
	return errf(s.Position(), "unknown statement %T", s)
}

// bindPattern checks a pattern against a scrutinee type and binds the
// pattern's binders in env.
func (c *checker) bindPattern(env *Env, p ast.Pattern, t ast.Type, pos ast.Pos) error {
	switch pt := p.(type) {
	case ast.WildPat:
		return nil
	case ast.BindPat:
		env.Bind(pt.Name, t)
		return nil
	case ast.ConstrPat:
		adtT, ok := t.(ast.ADTType)
		if !ok {
			return errf(pos, "cannot match %s against constructor %s", t, pt.Name)
		}
		adt := c.reg.ADT(adtT.Name)
		if adt == nil {
			return errf(pos, "unknown type %s", adtT.Name)
		}
		ci := adt.ConstrByName(pt.Name)
		if ci == nil {
			return errf(pos, "type %s has no constructor %s", adtT.Name, pt.Name)
		}
		if len(pt.Sub) != len(ci.ArgTypes) {
			return errf(pos, "constructor %s expects %d sub-patterns, got %d",
				pt.Name, len(ci.ArgTypes), len(pt.Sub))
		}
		argTypes, _, err := c.reg.InstantiateConstr(pt.Name, adtT.Args)
		if err != nil {
			return errf(pos, "%v", err)
		}
		for i, sub := range pt.Sub {
			if err := c.bindPattern(env, sub, argTypes[i], pos); err != nil {
				return err
			}
		}
		return nil
	}
	return errf(pos, "unknown pattern %T", p)
}

// --- Expressions ---

func (c *checker) exprType(env *Env, e ast.Expr) (ast.Type, error) {
	switch ex := e.(type) {
	case *ast.LitExpr:
		return ex.Lit.Type, nil
	case *ast.VarExpr:
		t, ok := env.Lookup(ex.Name)
		if !ok {
			return nil, errf(ex.Pos, "unbound identifier %s", ex.Name)
		}
		return t, nil
	case *ast.MsgExpr:
		isEvent := false
		for _, en := range ex.Entries {
			var vt ast.Type
			if en.IsLit {
				vt = en.Lit.Type
			} else {
				t, ok := env.Lookup(en.Var)
				if !ok {
					return nil, errf(ex.Pos, "unbound identifier %s in message", en.Var)
				}
				vt = t
			}
			switch en.Key {
			case ast.TagKey, ast.EventNameKey, ast.ExceptionKey:
				if !vt.Equal(ast.TyString) {
					return nil, errf(ex.Pos, "%s must be a String, got %s", en.Key, vt)
				}
				if en.Key == ast.EventNameKey {
					isEvent = true
				}
			case ast.RecipientKey:
				if !vt.Equal(ast.TyByStr20) {
					return nil, errf(ex.Pos, "_recipient must be a ByStr20, got %s", vt)
				}
			case ast.AmountKey:
				if !vt.Equal(ast.TyUint128) {
					return nil, errf(ex.Pos, "_amount must be a Uint128, got %s", vt)
				}
			default:
				switch vt.(type) {
				case ast.FunType, ast.PolyType:
					return nil, errf(ex.Pos, "message entry %s has non-serialisable type %s", en.Key, vt)
				}
			}
		}
		if isEvent {
			return ast.TyEvent, nil
		}
		return ast.TyMessage, nil
	case *ast.ConstrExpr:
		if ex.Name == "Emp" {
			if len(ex.TypeArgs) != 2 {
				return nil, errf(ex.Pos, "Emp expects key and value types")
			}
			mt := ast.MapType{Key: ex.TypeArgs[0], Val: ex.TypeArgs[1]}
			if err := c.checkStorable(mt); err != nil {
				return nil, errf(ex.Pos, "%v", err)
			}
			return mt, nil
		}
		argTypes, resT, err := c.reg.InstantiateConstr(ex.Name, ex.TypeArgs)
		if err != nil {
			return nil, errf(ex.Pos, "%v", err)
		}
		if len(ex.Args) != len(argTypes) {
			return nil, errf(ex.Pos, "constructor %s expects %d arguments, got %d",
				ex.Name, len(argTypes), len(ex.Args))
		}
		for i, a := range ex.Args {
			at, ok := env.Lookup(a)
			if !ok {
				return nil, errf(ex.Pos, "unbound identifier %s", a)
			}
			if !at.Equal(argTypes[i]) {
				return nil, errf(ex.Pos, "constructor %s argument %d has type %s, want %s",
					ex.Name, i+1, at, argTypes[i])
			}
		}
		return resT, nil
	case *ast.BuiltinExpr:
		argTypes := make([]ast.Type, len(ex.Args))
		for i, a := range ex.Args {
			t, ok := env.Lookup(a)
			if !ok {
				return nil, errf(ex.Pos, "unbound identifier %s", a)
			}
			argTypes[i] = t
		}
		t, err := stdlib.TypeOf(ex.Name, argTypes)
		if err != nil {
			return nil, errf(ex.Pos, "%v", err)
		}
		return t, nil
	case *ast.LetExpr:
		bt, err := c.exprType(env, ex.Bound)
		if err != nil {
			return nil, err
		}
		if ex.Ty != nil && !ex.Ty.Equal(bt) {
			return nil, errf(ex.Pos, "let %s declared %s but bound to %s", ex.Name, ex.Ty, bt)
		}
		inner := NewEnv(env)
		inner.Bind(ex.Name, bt)
		return c.exprType(inner, ex.Body)
	case *ast.FunExpr:
		inner := NewEnv(env)
		inner.Bind(ex.Param, ex.ParamType)
		rt, err := c.exprType(inner, ex.Body)
		if err != nil {
			return nil, err
		}
		return ast.FunType{Arg: ex.ParamType, Ret: rt}, nil
	case *ast.AppExpr:
		ft, ok := env.Lookup(ex.Func)
		if !ok {
			return nil, errf(ex.Pos, "unbound identifier %s", ex.Func)
		}
		cur := ft
		for i, a := range ex.Args {
			fn, ok := cur.(ast.FunType)
			if !ok {
				return nil, errf(ex.Pos, "%s is over-applied (argument %d)", ex.Func, i+1)
			}
			at, ok := env.Lookup(a)
			if !ok {
				return nil, errf(ex.Pos, "unbound identifier %s", a)
			}
			if !at.Equal(fn.Arg) {
				return nil, errf(ex.Pos, "argument %d of %s has type %s, want %s",
					i+1, ex.Func, at, fn.Arg)
			}
			cur = fn.Ret
		}
		return cur, nil
	case *ast.MatchExpr:
		scrutT, ok := env.Lookup(ex.Scrutinee)
		if !ok {
			return nil, errf(ex.Pos, "unbound identifier %s", ex.Scrutinee)
		}
		var resT ast.Type
		for _, arm := range ex.Arms {
			armEnv := NewEnv(env)
			if err := c.bindPattern(armEnv, arm.Pat, scrutT, ex.Pos); err != nil {
				return nil, err
			}
			t, err := c.exprType(armEnv, arm.Body)
			if err != nil {
				return nil, err
			}
			if resT == nil {
				resT = t
			} else if !resT.Equal(t) {
				return nil, errf(ex.Pos, "match arms have differing types %s and %s", resT, t)
			}
		}
		return resT, nil
	case *ast.TFunExpr:
		inner := NewEnv(env)
		bt, err := c.exprType(inner, ex.Body)
		if err != nil {
			return nil, err
		}
		return ast.PolyType{Var: ex.TVar, Body: bt}, nil
	case *ast.TAppExpr:
		ft, ok := env.Lookup(ex.Name)
		if !ok {
			return nil, errf(ex.Pos, "unbound identifier %s", ex.Name)
		}
		cur := ft
		for i, ta := range ex.TypeArgs {
			pt, ok := cur.(ast.PolyType)
			if !ok {
				return nil, errf(ex.Pos, "%s is not polymorphic at type argument %d", ex.Name, i+1)
			}
			cur = ast.SubstType(pt.Body, pt.Var, ta)
		}
		return cur, nil
	}
	return nil, errf(e.Position(), "unknown expression %T", e)
}
