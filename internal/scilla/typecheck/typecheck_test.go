package typecheck_test

import (
	"strings"
	"testing"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
)

func check(t *testing.T, src string) (*typecheck.Checked, error) {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return typecheck.Check(m)
}

func mustCheck(t *testing.T, src string) *typecheck.Checked {
	t.Helper()
	chk, err := check(t, src)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return chk
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected type error containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q", err, fragment)
	}
}

const header = "scilla_version 0\n"

func TestWellTypedBasics(t *testing.T) {
	chk := mustCheck(t, header+`
library L
let two = Uint128 2
let dbl = fun (x : Uint128) => builtin add x x

contract C (owner : ByStr20)
field total : Uint128 = dbl two
field names : Map ByStr20 String = Emp ByStr20 String

transition Set (name : String)
  names[_sender] := name;
  v = dbl two;
  total := v
end
`)
	if got := chk.FieldTypes["total"]; !got.Equal(ast.TyUint128) {
		t.Errorf("total type = %s", got)
	}
	if got := chk.LibTypes["dbl"]; got.String() != "Uint128 -> Uint128" {
		t.Errorf("dbl type = %s", got)
	}
}

func TestFieldInitTypeMismatch(t *testing.T) {
	wantErr(t, header+`
contract C ()
field x : Uint128 = Uint32 1
`, "declared")
}

func TestUnknownField(t *testing.T) {
	wantErr(t, header+`
contract C ()
transition T ()
  x <- nope
end
`, "unknown field")
}

func TestStoreTypeMismatch(t *testing.T) {
	wantErr(t, header+`
contract C ()
field x : Uint128 = Uint128 0
transition T (s : String)
  x := s
end
`, "cannot store")
}

func TestMapKeyTypeMismatch(t *testing.T) {
	wantErr(t, header+`
contract C ()
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition T (k : String, v : Uint128)
  m[k] := v
end
`, "map key")
}

func TestMapDepthChecked(t *testing.T) {
	wantErr(t, header+`
contract C ()
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition T (a : ByStr20, b : ByStr20, v : Uint128)
  m[a][b] := v
end
`, "too many keys")
}

func TestBuiltinArgMismatch(t *testing.T) {
	wantErr(t, header+`
contract C ()
transition T (a : Uint128, b : Uint32)
  x = builtin add a b
end
`, "not applicable")
}

func TestMatchArmTypesMustAgree(t *testing.T) {
	wantErr(t, header+`
contract C ()
transition T (o : Option Uint128)
  x = match o with
      | Some v => v
      | None => "nope"
      end
end
`, "differing types")
}

func TestPatternConstructorChecked(t *testing.T) {
	wantErr(t, header+`
contract C ()
transition T (o : Option Uint128)
  match o with
  | Cons h t => accept
  | None => accept
  end
end
`, "no constructor")
}

func TestSendRequiresMessageList(t *testing.T) {
	wantErr(t, header+`
contract C ()
transition T (s : String)
  send s
end
`, "send expects")
}

func TestMessageFieldTypes(t *testing.T) {
	wantErr(t, header+`
contract C ()
transition T (x : Uint32)
  m = {_tag : "T"; _recipient : _sender; _amount : x}
end
`, "_amount must be")
}

func TestFunctionNotStorable(t *testing.T) {
	wantErr(t, header+`
contract C ()
field f : Uint128 -> Uint128 = fun (x : Uint128) => x
`, "not storable")
}

func TestCustomADT(t *testing.T) {
	chk := mustCheck(t, header+`
library L
type Shape =
| Circle of Uint128
| Square of Uint128
| Point

contract C ()
field shapes : Map ByStr20 Shape = Emp ByStr20 Shape

transition Put (r : Uint128)
  s = Circle r;
  shapes[_sender] := s
end

transition Area (owner : ByStr20)
  s_opt <- shapes[owner];
  match s_opt with
  | Some s =>
    a = match s with
        | Circle r => builtin mul r r
        | Square side => builtin mul side side
        | Point => Uint128 0
        end;
    e = {_eventname : "Area"; area : a};
    event e
  | None =>
    throw
  end
end
`)
	if chk.Registry.ADT("Shape") == nil {
		t.Error("Shape not registered")
	}
}

func TestDuplicateConstructorRejected(t *testing.T) {
	wantErr(t, header+`
library L
type T1 =
| Make of Uint128
type T2 =
| Make of String

contract C ()
`, "already defined")
}

func TestDuplicateTransitionRejected(t *testing.T) {
	wantErr(t, header+`
contract C ()
transition T ()
  accept
end
transition T ()
  accept
end
`, "duplicate transition")
}

func TestPolymorphicNatives(t *testing.T) {
	mustCheck(t, header+`
library L
let sum_list =
  fun (xs : List Uint128) =>
    let folder = @list_foldl Uint128 Uint128 in
    let add_one = fun (acc : Uint128) => fun (x : Uint128) => builtin add acc x in
    let zero = Uint128 0 in
    folder add_one zero xs

contract C ()
field total : Uint128 = Uint128 0

transition Sum (xs : List Uint128)
  s = sum_list xs;
  total := s
end
`)
}

func TestBalanceImplicitField(t *testing.T) {
	mustCheck(t, header+`
contract C ()
transition T ()
  bal <- _balance;
  two = Uint128 2;
  half = builtin div bal two;
  e = {_eventname : "Half"; v : half};
  event e
end
`)
}

func TestImplicitParams(t *testing.T) {
	chk := mustCheck(t, header+`
contract C ()
field last : ByStr20 = 0x0000000000000000000000000000000000000000
transition T ()
  last := _sender
end
`)
	if chk.Module.Contract.Transitions[0].Name != "T" {
		t.Error("transition lost")
	}
}
