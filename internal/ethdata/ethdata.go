// Package ethdata regenerates the Fig. 1 transaction-breakdown study.
//
// The paper samples 16,611 real Ethereum blocks (1.1M transactions up
// to block 9.25M, collected January 2020) and classifies each
// transaction as a plain transfer, a single contract call, a
// multi-contract call, or other (contract creation etc.). That dataset
// is not available offline, so this package substitutes a calibrated
// synthetic trace: a deterministic generator whose per-100K-block type
// distribution follows the trends the paper reports —
//
//   - plain transfers on a solid downward trend (from ~100% at genesis
//     to ~30% around block 9.25M),
//   - single-contract calls rising to ~55% of recent blocks,
//   - ERC20 token transfers coming to dominate single calls,
//
// and then runs the identical breakdown analysis over the synthetic
// sample. See DESIGN.md (substitution 2).
package ethdata

import (
	"fmt"
	"io"
	"math/rand"
)

// TxType classifies a sampled transaction like the paper's study.
type TxType int

// Transaction types of Fig. 1 (left).
const (
	Transfer TxType = iota
	SingleCall
	MultiCall
	Other
)

func (t TxType) String() string {
	switch t {
	case Transfer:
		return "Transfer"
	case SingleCall:
		return "SingleCall"
	case MultiCall:
		return "MultiCall"
	default:
		return "Other"
	}
}

// SampledTx is one transaction of the synthetic sample.
type SampledTx struct {
	Block uint64
	Type  TxType
	// ERC20 marks single calls that are ERC20 token transfers
	// (Fig. 1, right).
	ERC20 bool
}

// MaxBlock mirrors the paper's sampling horizon (block 9.25M).
const MaxBlock = 9_250_000

// mix returns the type distribution at a given block height. The
// shapes are smooth interpolations calibrated to the paper's Fig. 1.
func mix(block uint64) (transfer, single, multi, other, erc20OfSingle float64) {
	x := float64(block) / float64(MaxBlock) // 0..1 through history
	// Transfers decay from ~0.97 to ~0.33.
	transfer = 0.97 - 0.64*x
	// Single calls grow from ~0.02 to ~0.55.
	single = 0.02 + 0.53*x
	// Multi-calls grow slowly to ~0.08.
	multi = 0.005 + 0.075*x
	other = 1 - transfer - single - multi
	if other < 0 {
		other = 0
	}
	// ERC20's share of single calls explodes after the 2017 ICO boom
	// (~block 4M, x≈0.43): from ~5% to ~70%.
	switch {
	case x < 0.35:
		erc20OfSingle = 0.05 + 0.3*x
	default:
		erc20OfSingle = 0.155 + 0.55*(x-0.35)/0.65
	}
	return
}

// Sample is a synthetic transaction sample with the paper's sampling
// structure: nBlocks randomly chosen blocks, each contributing a
// realistic number of transactions for its height.
type Sample struct {
	Txs []SampledTx
}

// Generate builds the synthetic sample. The paper uses 16,611 blocks /
// 1.1M transactions; Generate(16611, seed) produces a sample of the
// same shape.
func Generate(nBlocks int, seed int64) *Sample {
	rng := rand.New(rand.NewSource(seed))
	s := &Sample{}
	for i := 0; i < nBlocks; i++ {
		block := uint64(rng.Int63n(MaxBlock))
		// Block fullness grew over history: ~5 txs early, ~150 late.
		x := float64(block) / float64(MaxBlock)
		perBlock := 5 + int(x*145) + rng.Intn(20)
		transfer, single, multi, _, erc20 := mix(block)
		for j := 0; j < perBlock; j++ {
			r := rng.Float64()
			var t TxType
			switch {
			case r < transfer:
				t = Transfer
			case r < transfer+single:
				t = SingleCall
			case r < transfer+single+multi:
				t = MultiCall
			default:
				t = Other
			}
			tx := SampledTx{Block: block, Type: t}
			if t == SingleCall && rng.Float64() < erc20 {
				tx.ERC20 = true
			}
			s.Txs = append(s.Txs, tx)
		}
	}
	return s
}

// Bucket is one point of the Fig. 1 series: the percentage breakdown
// of transaction types over one 100K-block period.
type Bucket struct {
	BlockStart uint64
	Count      int
	// Percentages per type (Fig. 1 left).
	Transfer, SingleCall, MultiCall, Other float64
	// Single-call split (Fig. 1 right).
	ERC20OfSingle, OtherOfSingle float64
}

// BucketSize is the paper's averaging period (100K blocks).
const BucketSize = 100_000

// Analyze computes the Fig. 1 breakdown from a sample.
func Analyze(s *Sample) []Bucket {
	type acc struct {
		n, transfer, single, multi, other, erc20 int
	}
	byBucket := make(map[uint64]*acc)
	for _, tx := range s.Txs {
		b := tx.Block / BucketSize
		a, ok := byBucket[b]
		if !ok {
			a = &acc{}
			byBucket[b] = a
		}
		a.n++
		switch tx.Type {
		case Transfer:
			a.transfer++
		case SingleCall:
			a.single++
			if tx.ERC20 {
				a.erc20++
			}
		case MultiCall:
			a.multi++
		default:
			a.other++
		}
	}
	var out []Bucket
	for b := uint64(0); b <= MaxBlock/BucketSize; b++ {
		a, ok := byBucket[b]
		if !ok || a.n == 0 {
			continue
		}
		bk := Bucket{
			BlockStart: b * BucketSize,
			Count:      a.n,
			Transfer:   100 * float64(a.transfer) / float64(a.n),
			SingleCall: 100 * float64(a.single) / float64(a.n),
			MultiCall:  100 * float64(a.multi) / float64(a.n),
			Other:      100 * float64(a.other) / float64(a.n),
		}
		if a.single > 0 {
			bk.ERC20OfSingle = 100 * float64(a.erc20) / float64(a.single)
			bk.OtherOfSingle = 100 - bk.ERC20OfSingle
		}
		out = append(out, bk)
	}
	return out
}

// Print renders the Fig. 1 series as a table.
func Print(out io.Writer, buckets []Bucket) {
	fmt.Fprintf(out, "%-10s %8s %9s %11s %10s %7s %14s\n",
		"block", "#txs", "transfer%", "singlecall%", "multicall%", "other%", "erc20/single%")
	for _, b := range buckets {
		fmt.Fprintf(out, "%-10d %8d %9.1f %11.1f %10.1f %7.1f %14.1f\n",
			b.BlockStart, b.Count, b.Transfer, b.SingleCall, b.MultiCall, b.Other, b.ERC20OfSingle)
	}
}
