package ethdata_test

import (
	"testing"

	"cosplit/internal/ethdata"
)

func TestGenerateDeterministic(t *testing.T) {
	a := ethdata.Generate(100, 7)
	b := ethdata.Generate(100, 7)
	if len(a.Txs) != len(b.Txs) {
		t.Fatal("non-deterministic sample size")
	}
	for i := range a.Txs {
		if a.Txs[i] != b.Txs[i] {
			t.Fatal("non-deterministic sample content")
		}
	}
	c := ethdata.Generate(100, 8)
	if len(a.Txs) == len(c.Txs) {
		same := true
		for i := range a.Txs {
			if a.Txs[i] != c.Txs[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds gave identical samples")
		}
	}
}

// TestFig1Trends verifies the calibrated shapes the paper reports:
// transfers decline, single calls rise to ~55% in recent blocks, and
// ERC20 comes to dominate single calls.
func TestFig1Trends(t *testing.T) {
	sample := ethdata.Generate(16611, 2020)
	buckets := ethdata.Analyze(sample)
	if len(buckets) < 50 {
		t.Fatalf("only %d buckets", len(buckets))
	}
	early := buckets[2]
	late := buckets[len(buckets)-2]

	if early.Transfer < 80 {
		t.Errorf("early transfers = %.1f%%, want >80%%", early.Transfer)
	}
	if late.Transfer > 45 {
		t.Errorf("late transfers = %.1f%%, want declining to <45%%", late.Transfer)
	}
	if late.SingleCall < 45 || late.SingleCall > 65 {
		t.Errorf("late single calls = %.1f%%, want ~55%%", late.SingleCall)
	}
	if early.SingleCall > 15 {
		t.Errorf("early single calls = %.1f%%, want small", early.SingleCall)
	}
	if late.ERC20OfSingle < 55 {
		t.Errorf("late ERC20 share of single calls = %.1f%%, want dominant", late.ERC20OfSingle)
	}
	if early.ERC20OfSingle > late.ERC20OfSingle {
		t.Error("ERC20 share must grow over time")
	}
}

func TestBucketsPercentagesSum(t *testing.T) {
	sample := ethdata.Generate(2000, 1)
	for _, b := range ethdata.Analyze(sample) {
		total := b.Transfer + b.SingleCall + b.MultiCall + b.Other
		if total < 99.9 || total > 100.1 {
			t.Errorf("bucket %d percentages sum to %.2f", b.BlockStart, total)
		}
		if b.Count <= 0 {
			t.Errorf("bucket %d has no transactions", b.BlockStart)
		}
	}
}

func TestSampleScaleMatchesPaper(t *testing.T) {
	// The paper's sample: 16,611 blocks, ~1.1M transactions.
	sample := ethdata.Generate(16611, 2020)
	if len(sample.Txs) < 800_000 || len(sample.Txs) > 1_600_000 {
		t.Errorf("sample has %d txs; want on the order of 1.1M", len(sample.Txs))
	}
}
