package wire

import (
	"fmt"
	"math/big"
	"sort"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

// Store record types (internal/store). These share the frame format —
// and therefore the CRC, version skew, and bounds checking — with the
// node-boundary messages: a journal or snapshot file is a sequence of
// ordinary frames, so a torn or bit-flipped tail is rejected by the
// same machinery that rejects a corrupt network frame.
const (
	// MsgCheckpointBlock is one journal record: a committed FinalBlock
	// together with the post-commit checkpoint it advanced the network
	// to.
	MsgCheckpointBlock MsgType = 10
	// MsgSnapshotHeader opens a snapshot file: the checkpoint the
	// snapshot captures and the state root it must restore to.
	MsgSnapshotHeader MsgType = 11
	// MsgSnapshotContract carries one contract's full field state.
	MsgSnapshotContract MsgType = 12
	// MsgSnapshotAccounts carries a batch of native accounts.
	MsgSnapshotAccounts MsgType = 13
	// MsgSnapshotEnd closes a snapshot file with the record counts the
	// reader must have seen; a snapshot without it is truncated.
	MsgSnapshotEnd MsgType = 14
)

// CheckpointBlock is the journal record appended after every committed
// epoch: the sealed FinalBlock plus the checkpoint the commit advanced
// the network to (so recovery restores the exact epoch, block number,
// and next transaction id without re-deriving them).
type CheckpointBlock struct {
	Checkpoint shard.Checkpoint
	Block      *shard.FinalBlock
}

// EncodeCheckpointBlock encodes a journal record.
func EncodeCheckpointBlock(cb *CheckpointBlock) ([]byte, error) {
	b := make([]byte, 0, 512)
	b = appendUvarint(b, cb.Checkpoint.Epoch)
	b = appendUvarint(b, cb.Checkpoint.BlockNumber)
	b = appendUvarint(b, cb.Checkpoint.NextTxID)
	fb, err := EncodeFinalBlock(cb.Block)
	if err != nil {
		return nil, err
	}
	return append(b, fb...), nil
}

// DecodeCheckpointBlock decodes a journal record payload.
func DecodeCheckpointBlock(b []byte) (*CheckpointBlock, error) {
	r := &reader{b: b}
	cb := &CheckpointBlock{}
	cb.Checkpoint.Epoch = r.uvarint()
	cb.Checkpoint.BlockNumber = r.uvarint()
	cb.Checkpoint.NextTxID = r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	// The FinalBlock payload runs to the end of the record;
	// DecodeFinalBlock enforces exact consumption.
	fb, err := DecodeFinalBlock(r.b)
	if err != nil {
		return nil, err
	}
	cb.Block = fb
	return cb, nil
}

// SnapshotHeader opens a snapshot file: the checkpoint the full-state
// dump captures and the authenticated root the restored state must
// rebuild to (recovery verifies it, so a snapshot that silently lost a
// record fails loudly instead of resuming from wrong state).
type SnapshotHeader struct {
	Checkpoint shard.Checkpoint
	Root       string
}

// EncodeSnapshotHeader encodes a snapshot header.
func EncodeSnapshotHeader(h *SnapshotHeader) []byte {
	b := make([]byte, 0, 96)
	b = appendUvarint(b, h.Checkpoint.Epoch)
	b = appendUvarint(b, h.Checkpoint.BlockNumber)
	b = appendUvarint(b, h.Checkpoint.NextTxID)
	return appendString(b, h.Root)
}

// DecodeSnapshotHeader decodes a snapshot header payload.
func DecodeSnapshotHeader(b []byte) (*SnapshotHeader, error) {
	r := &reader{b: b}
	h := &SnapshotHeader{}
	h.Checkpoint.Epoch = r.uvarint()
	h.Checkpoint.BlockNumber = r.uvarint()
	h.Checkpoint.NextTxID = r.uvarint()
	h.Root = r.string()
	if err := r.done(); err != nil {
		return nil, err
	}
	return h, nil
}

// SnapshotContract carries one contract's complete field state. Fields
// are encoded in sorted name order, so snapshots of the same state are
// byte-identical.
type SnapshotContract struct {
	Addr   chain.Address
	Fields map[string]value.Value
}

// EncodeSnapshotContract encodes one contract's state.
func EncodeSnapshotContract(c *SnapshotContract) ([]byte, error) {
	b := make([]byte, 0, 256)
	b = appendAddr(b, c.Addr)
	names := make([]string, 0, len(c.Fields))
	for n := range c.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	b = appendUvarint(b, uint64(len(names)))
	var err error
	for _, n := range names {
		b = appendString(b, n)
		if b, err = appendValue(b, c.Fields[n]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeSnapshotContract decodes one contract's state payload.
func DecodeSnapshotContract(b []byte) (*SnapshotContract, error) {
	r := &reader{b: b}
	c := &SnapshotContract{Addr: r.addr()}
	n := r.count(2)
	if n > 0 {
		c.Fields = make(map[string]value.Value, n)
	}
	for i := 0; i < n; i++ {
		name := r.string()
		v := r.value(0)
		if r.err != nil {
			return nil, r.err
		}
		c.Fields[name] = v
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// SnapshotAccount is one native account's snapshot row.
type SnapshotAccount struct {
	Addr       chain.Address
	Balance    *big.Int
	Nonce      uint64
	IsContract bool
}

// EncodeSnapshotAccounts encodes a batch of accounts. The store writes
// accounts in sorted address order, batched so a single frame stays
// small; the encoder accepts any order (the snapshot reader does not
// depend on it).
func EncodeSnapshotAccounts(accs []SnapshotAccount) []byte {
	b := make([]byte, 0, 32+32*len(accs))
	b = appendUvarint(b, uint64(len(accs)))
	for i := range accs {
		b = appendAddr(b, accs[i].Addr)
		b = appendBig(b, accs[i].Balance)
		b = appendUvarint(b, accs[i].Nonce)
		b = appendBool(b, accs[i].IsContract)
	}
	return b
}

// DecodeSnapshotAccounts decodes an account batch payload.
func DecodeSnapshotAccounts(b []byte) ([]SnapshotAccount, error) {
	r := &reader{b: b}
	n := r.count(23)
	accs := make([]SnapshotAccount, 0, n)
	for i := 0; i < n; i++ {
		a := SnapshotAccount{Addr: r.addr(), Balance: r.big()}
		a.Nonce = r.uvarint()
		a.IsContract = r.bool()
		if r.err != nil {
			return nil, r.err
		}
		if a.Balance == nil || a.Balance.Sign() < 0 {
			return nil, fmt.Errorf("%w: bad snapshot account balance", ErrDecode)
		}
		accs = append(accs, a)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return accs, nil
}

// SnapshotEnd closes a snapshot file with the totals the reader must
// have accumulated; a mismatch (or a missing end record) marks the
// snapshot truncated.
type SnapshotEnd struct {
	Contracts uint64
	Accounts  uint64
}

// EncodeSnapshotEnd encodes a snapshot trailer.
func EncodeSnapshotEnd(e *SnapshotEnd) []byte {
	b := appendUvarint(make([]byte, 0, 16), e.Contracts)
	return appendUvarint(b, e.Accounts)
}

// DecodeSnapshotEnd decodes a snapshot trailer payload.
func DecodeSnapshotEnd(b []byte) (*SnapshotEnd, error) {
	r := &reader{b: b}
	e := &SnapshotEnd{Contracts: r.uvarint(), Accounts: r.uvarint()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}
