package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecoders feeds arbitrary bytes through the frame parser and
// every message decoder. The invariants:
//
//  1. no decoder panics or over-allocates on hostile input — it either
//     succeeds or fails with ErrDecode/ErrVersionSkew;
//  2. whatever decodes successfully re-encodes canonically: a second
//     decode/encode round produces identical bytes (the fixed point of
//     the format).
//
// The seed corpus under testdata/fuzz/FuzzDecoders is generated from
// the golden fixtures (go test -run TestUpdateFuzzCorpus -update-golden).
func FuzzDecoders(f *testing.F) {
	for _, fx := range fixtures() {
		f.Add(AppendFrame(nil, fx.typ, fx.enc))
	}
	// A few deliberately broken seeds so the corpus covers error paths.
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, Version + 1, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(AppendFrame(nil, MsgType(99), []byte{1, 2}))
	// Valid header, one payload byte flipped: must fail the checksum.
	flipped := AppendFrame(nil, MsgTx, []byte{1, 2, 3, 4})
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, _, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrDecode) && !errors.Is(err, ErrVersionSkew) {
				t.Fatalf("DecodeFrame: untyped error %v", err)
			}
			return
		}
		enc1, err := reencode(typ, payload)
		if err != nil {
			if !errors.Is(err, ErrDecode) && !errors.Is(err, ErrUnencodable) {
				t.Fatalf("decode %v: untyped error %v", typ, err)
			}
			return
		}
		// The first decode may have accepted a non-canonical payload
		// (map entries in arbitrary order); its re-encoding must be the
		// format's fixed point.
		enc2, err := reencode(typ, enc1)
		if err != nil {
			t.Fatalf("re-decode %v failed on own encoding: %v", typ, err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not canonical for %v:\n first %x\nsecond %x", typ, enc1, enc2)
		}
	})
}
