package wire

import (
	"fmt"
	"sort"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

// Pager record types (internal/pager). A paged state directory holds
// versioned page files — each a single frame — plus one index frame
// naming the page versions that together form the committed state.
// Reusing the frame format gives page files the same CRC and bounds
// checking as every other on-disk record: a torn page write or a
// flipped bit is rejected at the frame layer, and recovery falls back
// to refusing the index rather than faulting wrong state.
const (
	// MsgAccountPage is one account page file: a fixed partition of the
	// address space holding every existing account whose address hashes
	// into it.
	MsgAccountPage MsgType = 15
	// MsgContractPage is one contract's canonical field state, written
	// when the pager evicts or flushes it.
	MsgContractPage MsgType = 16
	// MsgPageIndex is the atomically-replaced index of a paged state
	// directory: the checkpoint and root the pages reconstruct, the
	// page-table geometry, and the committed version of every page.
	MsgPageIndex MsgType = 17
)

// AccountPage is one page of the partitioned account table. Accounts
// are encoded in sorted address order, so pages of the same state are
// byte-identical regardless of cache history.
type AccountPage struct {
	PageID   uint32
	Version  uint64
	Accounts []SnapshotAccount
}

// EncodeAccountPage encodes an account page, sorting rows by address.
func EncodeAccountPage(p *AccountPage) []byte {
	rows := p.Accounts
	if !sort.SliceIsSorted(rows, func(i, j int) bool {
		return addrLess(rows[i].Addr, rows[j].Addr)
	}) {
		rows = append([]SnapshotAccount(nil), rows...)
		sort.Slice(rows, func(i, j int) bool { return addrLess(rows[i].Addr, rows[j].Addr) })
	}
	b := make([]byte, 0, 32+32*len(rows))
	b = appendUvarint(b, uint64(p.PageID))
	b = appendUvarint(b, p.Version)
	return append(b, EncodeSnapshotAccounts(rows)...)
}

// DecodeAccountPage decodes an account page payload.
func DecodeAccountPage(b []byte) (*AccountPage, error) {
	r := &reader{b: b}
	p := &AccountPage{}
	pid := r.uvarint()
	p.Version = r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if pid > 1<<31 {
		return nil, fmt.Errorf("%w: account page id %d out of range", ErrDecode, pid)
	}
	p.PageID = uint32(pid)
	accs, err := DecodeSnapshotAccounts(r.b)
	if err != nil {
		return nil, err
	}
	p.Accounts = accs
	return p, nil
}

// ContractPage is one contract's canonical state as the pager writes
// it: the snapshot-contract field encoding plus the page version the
// index references.
type ContractPage struct {
	Addr    chain.Address
	Version uint64
	Fields  map[string]value.Value
}

// EncodeContractPage encodes a contract page.
func EncodeContractPage(p *ContractPage) ([]byte, error) {
	b := appendUvarint(make([]byte, 0, 256), p.Version)
	sc, err := EncodeSnapshotContract(&SnapshotContract{Addr: p.Addr, Fields: p.Fields})
	if err != nil {
		return nil, err
	}
	return append(b, sc...), nil
}

// DecodeContractPage decodes a contract page payload.
func DecodeContractPage(b []byte) (*ContractPage, error) {
	r := &reader{b: b}
	ver := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	sc, err := DecodeSnapshotContract(r.b)
	if err != nil {
		return nil, err
	}
	return &ContractPage{Addr: sc.Addr, Version: ver, Fields: sc.Fields}, nil
}

// PageIndexAccounts is one account page's entry in the index.
type PageIndexAccounts struct {
	PageID  uint32
	Version uint64
	Count   uint64
}

// PageIndexContract is one contract page's entry in the index.
type PageIndexContract struct {
	Addr    chain.Address
	Version uint64
}

// PageIndex is the committed root of a paged state directory. It is
// written to a temp file, fsynced, and renamed into place, so the set
// of page versions it names is replaced atomically: page files written
// after the index (dirty evictions mid-epoch-window) are invisible
// orphans until the next index commit, and a crash between page writes
// and the index rename recovers to the previous index's state.
type PageIndex struct {
	Checkpoint  shard.Checkpoint
	Root        string
	PageCount   uint32 // account page-table size (power of two)
	NextVersion uint64 // next unused page-file version
	Accounts    []PageIndexAccounts
	Contracts   []PageIndexContract
}

// EncodePageIndex encodes an index, sorting entries (by page id and
// address) so indexes of the same state are byte-identical.
func EncodePageIndex(ix *PageIndex) []byte {
	accs := append([]PageIndexAccounts(nil), ix.Accounts...)
	sort.Slice(accs, func(i, j int) bool { return accs[i].PageID < accs[j].PageID })
	contracts := append([]PageIndexContract(nil), ix.Contracts...)
	sort.Slice(contracts, func(i, j int) bool { return addrLess(contracts[i].Addr, contracts[j].Addr) })

	b := make([]byte, 0, 64+16*len(accs)+32*len(contracts))
	b = appendUvarint(b, ix.Checkpoint.Epoch)
	b = appendUvarint(b, ix.Checkpoint.BlockNumber)
	b = appendUvarint(b, ix.Checkpoint.NextTxID)
	b = appendString(b, ix.Root)
	b = appendUvarint(b, uint64(ix.PageCount))
	b = appendUvarint(b, ix.NextVersion)
	b = appendUvarint(b, uint64(len(accs)))
	for i := range accs {
		b = appendUvarint(b, uint64(accs[i].PageID))
		b = appendUvarint(b, accs[i].Version)
		b = appendUvarint(b, accs[i].Count)
	}
	b = appendUvarint(b, uint64(len(contracts)))
	for i := range contracts {
		b = appendAddr(b, contracts[i].Addr)
		b = appendUvarint(b, contracts[i].Version)
	}
	return b
}

// DecodePageIndex decodes an index payload.
func DecodePageIndex(b []byte) (*PageIndex, error) {
	r := &reader{b: b}
	ix := &PageIndex{}
	ix.Checkpoint.Epoch = r.uvarint()
	ix.Checkpoint.BlockNumber = r.uvarint()
	ix.Checkpoint.NextTxID = r.uvarint()
	ix.Root = r.string()
	pc := r.uvarint()
	ix.NextVersion = r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if pc == 0 || pc > 1<<31 || pc&(pc-1) != 0 {
		return nil, fmt.Errorf("%w: page count %d not a positive power of two", ErrDecode, pc)
	}
	ix.PageCount = uint32(pc)
	na := r.count(3)
	if na > 0 {
		ix.Accounts = make([]PageIndexAccounts, 0, na)
	}
	for i := 0; i < na; i++ {
		pid := r.uvarint()
		ver := r.uvarint()
		count := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if pid >= uint64(ix.PageCount) {
			return nil, fmt.Errorf("%w: page id %d outside page table of %d", ErrDecode, pid, ix.PageCount)
		}
		ix.Accounts = append(ix.Accounts, PageIndexAccounts{PageID: uint32(pid), Version: ver, Count: count})
	}
	nc := r.count(21)
	if nc > 0 {
		ix.Contracts = make([]PageIndexContract, 0, nc)
	}
	for i := 0; i < nc; i++ {
		e := PageIndexContract{Addr: r.addr(), Version: r.uvarint()}
		if r.err != nil {
			return nil, r.err
		}
		ix.Contracts = append(ix.Contracts, e)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ix, nil
}

// addrLess orders addresses bytewise.
func addrLess(a, b chain.Address) bool {
	for k := 0; k < len(a); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}
