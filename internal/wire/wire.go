// Package wire defines the versioned binary encodings that cross node
// boundaries: transactions, micro blocks, state deltas, final blocks,
// and the small control messages of the node runtime (internal/node).
//
// Every message travels inside a self-describing frame:
//
//	magic(2) | version(1) | type(1) | length(4, big endian) |
//	crc32c(4, big endian, of payload) | payload
//
// The checksum makes in-transit corruption detectable at the frame
// layer: a receiver rejects a flipped payload byte with ErrDecode
// before any field of the message is parsed, which matters because a
// single bit flip inside (say) a balance delta's magnitude would
// otherwise decode into a structurally valid but wrong message.
//
// The payload encodings are hand-rolled over encoding/binary
// primitives: uvarint integers, length-prefixed byte strings, and
// sign+magnitude big integers. Map-shaped structures are serialised in
// sorted key order, so encoding is deterministic: two nodes encoding
// the same value produce the same bytes, and the golden fixtures in
// testdata pin the format as a contract.
//
// Decoders never trust their input. Every malformed byte sequence
// fails with an error wrapping ErrDecode (fuzzed in wire_fuzz_test.go)
// and a frame from a different format version fails with
// ErrVersionSkew, so a v1 reader rejects a v2 frame cleanly instead of
// misparsing it.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/big"

	"cosplit/internal/chain"
)

// Version is the format version this package reads and writes. Bump it
// on any incompatible payload change; readers reject other versions
// with ErrVersionSkew.
const Version = 1

// frame header layout.
const (
	magic0, magic1 = 0xC0, 0x51 // "CoSplit"
	headerLen      = 2 + 1 + 1 + 4 + 4
	// HeaderLen is the frame header size in bytes (exported for
	// transport code that needs to address the payload region).
	HeaderLen = headerLen
	// MaxPayload bounds a frame's payload so a corrupt length field
	// cannot make a reader allocate unbounded memory.
	MaxPayload = 1 << 26
)

// crcTable is the Castagnoli polynomial table for payload checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors. Every decode failure wraps one of these, so callers
// branch with errors.Is.
var (
	// ErrDecode reports malformed bytes: bad magic, a truncated or
	// oversized payload, an unknown tag, or trailing garbage.
	ErrDecode = errors.New("wire: malformed message")
	// ErrVersionSkew reports a structurally valid frame written by a
	// different format version.
	ErrVersionSkew = errors.New("wire: version skew")
	// ErrUnencodable reports a value the format cannot carry (closures,
	// contract deployments — deployments are genesis-local and never
	// cross the wire).
	ErrUnencodable = errors.New("wire: unencodable value")
)

// MsgType tags a frame's payload.
type MsgType byte

// Frame payload types.
const (
	MsgTx         MsgType = 1
	MsgTxBatch    MsgType = 2
	MsgMicroBlock MsgType = 3
	MsgFinalBlock MsgType = 4
	MsgSubmit     MsgType = 5
	MsgSubmitResp MsgType = 6
	MsgStateQuery MsgType = 7
	MsgStateResp  MsgType = 8
	MsgStateDelta MsgType = 9
)

func (t MsgType) String() string {
	switch t {
	case MsgTx:
		return "tx"
	case MsgTxBatch:
		return "tx_batch"
	case MsgMicroBlock:
		return "micro_block"
	case MsgFinalBlock:
		return "final_block"
	case MsgSubmit:
		return "submit"
	case MsgSubmitResp:
		return "submit_resp"
	case MsgStateQuery:
		return "state_query"
	case MsgStateResp:
		return "state_resp"
	case MsgStateDelta:
		return "state_delta"
	case MsgCheckpointBlock:
		return "checkpoint_block"
	case MsgSnapshotHeader:
		return "snapshot_header"
	case MsgSnapshotContract:
		return "snapshot_contract"
	case MsgSnapshotAccounts:
		return "snapshot_accounts"
	case MsgSnapshotEnd:
		return "snapshot_end"
	case MsgAccountPage:
		return "account_page"
	case MsgContractPage:
		return "contract_page"
	case MsgPageIndex:
		return "page_index"
	case MsgBlockRequest:
		return "block_request"
	case MsgBlockResponse:
		return "block_response"
	case MsgHello:
		return "hello"
	}
	return fmt.Sprintf("msg(%d)", byte(t))
}

// FrameMsgType returns the message type of an encoded frame without
// decoding it (0 when the frame is too short to carry one). Transports
// use it to label traffic they do not otherwise interpret.
func FrameMsgType(frame []byte) MsgType {
	if len(frame) < headerLen {
		return 0
	}
	return MsgType(frame[3])
}

// AppendFrame appends a complete frame carrying payload to dst.
func AppendFrame(dst []byte, t MsgType, payload []byte) []byte {
	dst = append(dst, magic0, magic1, Version, byte(t))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// EncodeFrame builds a complete frame carrying payload.
func EncodeFrame(t MsgType, payload []byte) []byte {
	return AppendFrame(make([]byte, 0, headerLen+len(payload)), t, payload)
}

// DecodeFrame parses one frame from the front of b, returning its type,
// payload, and the remaining bytes.
func DecodeFrame(b []byte) (t MsgType, payload, rest []byte, err error) {
	if len(b) < headerLen {
		return 0, nil, nil, fmt.Errorf("%w: truncated frame header (%d bytes)", ErrDecode, len(b))
	}
	if b[0] != magic0 || b[1] != magic1 {
		return 0, nil, nil, fmt.Errorf("%w: bad frame magic 0x%02x%02x", ErrDecode, b[0], b[1])
	}
	if b[2] != Version {
		return 0, nil, nil, fmt.Errorf("%w: frame version %d, reader speaks %d", ErrVersionSkew, b[2], Version)
	}
	n := binary.BigEndian.Uint32(b[4:8])
	if n > MaxPayload {
		return 0, nil, nil, fmt.Errorf("%w: frame payload %d exceeds limit %d", ErrDecode, n, MaxPayload)
	}
	if len(b) < headerLen+int(n) {
		return 0, nil, nil, fmt.Errorf("%w: truncated frame payload (%d of %d bytes)", ErrDecode, len(b)-headerLen, n)
	}
	p := b[headerLen : headerLen+int(n)]
	if got, want := crc32.Checksum(p, crcTable), binary.BigEndian.Uint32(b[8:12]); got != want {
		return 0, nil, nil, fmt.Errorf("%w: payload checksum %08x, header says %08x", ErrDecode, got, want)
	}
	return MsgType(b[3]), p, b[headerLen+int(n):], nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	_, err := w.Write(EncodeFrame(t, payload))
	return err
}

// ReadRawFrame reads one complete frame from r and returns its raw
// bytes, header included. Only the framing fields are validated — the
// payload (and its checksum) pass through untouched, so transports can
// relay corrupted frames to the consumer, whose DecodeFrame rejects
// them. io.EOF is returned unwrapped when the stream ends cleanly
// between frames.
func ReadRawFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, headerLen, headerLen+64)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short frame header: %v", ErrDecode, err)
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return nil, fmt.Errorf("%w: bad frame magic 0x%02x%02x", ErrDecode, hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return nil, fmt.Errorf("%w: frame version %d, reader speaks %d", ErrVersionSkew, hdr[2], Version)
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: frame payload %d exceeds limit %d", ErrDecode, n, MaxPayload)
	}
	frame := append(hdr, make([]byte, n)...)
	if _, err := io.ReadFull(r, frame[headerLen:]); err != nil {
		return nil, fmt.Errorf("%w: short frame payload: %v", ErrDecode, err)
	}
	return frame, nil
}

// ReadFrame reads one complete frame from r. io.EOF is returned
// unwrapped when the stream ends cleanly between frames.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: short frame header: %v", ErrDecode, err)
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, nil, fmt.Errorf("%w: bad frame magic 0x%02x%02x", ErrDecode, hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return 0, nil, fmt.Errorf("%w: frame version %d, reader speaks %d", ErrVersionSkew, hdr[2], Version)
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d exceeds limit %d", ErrDecode, n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: short frame payload: %v", ErrDecode, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(hdr[8:12]); got != want {
		return 0, nil, fmt.Errorf("%w: payload checksum %08x, header says %08x", ErrDecode, got, want)
	}
	return MsgType(hdr[3]), payload, nil
}

// --- append-side primitives ---

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// big.Int sign tags.
const (
	bigNil  = 0 // nil pointer
	bigZero = 1
	bigPos  = 2
	bigNeg  = 3
)

func appendBig(b []byte, v *big.Int) []byte {
	switch {
	case v == nil:
		return append(b, bigNil)
	case v.Sign() == 0:
		return append(b, bigZero)
	case v.Sign() > 0:
		b = append(b, bigPos)
	default:
		b = append(b, bigNeg)
	}
	return appendBytes(b, v.Bytes())
}

func appendAddr(b []byte, a chain.Address) []byte { return append(b, a[:]...) }

// --- decode-side primitives ---

// reader consumes a payload slice with sticky error handling: the
// first failure poisons the reader and every later read returns zero
// values, so decode functions check r.err once at the end.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrDecode}, args...)...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("unexpected end of payload")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) bool() bool {
	switch r.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool tag")
		return false
	}
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("byte string length %d exceeds remaining payload %d", n, len(r.b))
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail("string length %d exceeds remaining payload %d", n, len(r.b))
		return ""
	}
	v := string(r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *reader) big() *big.Int {
	switch r.byte() {
	case bigNil:
		return nil
	case bigZero:
		return new(big.Int)
	case bigPos:
		return new(big.Int).SetBytes(r.bytes())
	case bigNeg:
		v := new(big.Int).SetBytes(r.bytes())
		return v.Neg(v)
	default:
		r.fail("bad big.Int sign tag")
		return nil
	}
}

func (r *reader) addr() chain.Address {
	var a chain.Address
	if r.err != nil {
		return a
	}
	if len(r.b) < len(a) {
		r.fail("truncated address")
		return a
	}
	copy(a[:], r.b)
	r.b = r.b[len(a):]
	return a
}

// count reads a collection length and bounds it by the remaining
// payload (each element needs at least min bytes), so a corrupt count
// cannot drive a huge allocation.
func (r *reader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(r.b)/min)+1 {
		r.fail("collection count %d exceeds remaining payload %d", n, len(r.b))
		return 0
	}
	return int(n)
}

// done verifies the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after message", ErrDecode, len(r.b))
	}
	return nil
}
