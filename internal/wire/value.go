package wire

import (
	"fmt"
	"sort"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

// Scilla runtime values and types are encoded with one-byte tags.
// Compound values recurse; maps and messages are written in sorted
// canonical-key order so the encoding is deterministic. Closures and
// type closures never cross the wire (they capture interpreter
// environments) and fail with ErrUnencodable.

// value tags.
const (
	tagInt   = 1
	tagStr   = 2
	tagByStr = 3
	tagBNum  = 4
	tagADT   = 5
	tagMap   = 6
	tagMsg   = 7
	tagUnit  = 8
)

// type tags.
const (
	tagTyPrim = 1
	tagTyMap  = 2
	tagTyADT  = 3
	tagTyVar  = 4
	tagTyFun  = 5
	tagTyPoly = 6
)

// maxValueDepth bounds recursion while decoding nested values/types so
// a hostile payload cannot overflow the stack.
const maxValueDepth = 64

func appendType(b []byte, t ast.Type) ([]byte, error) {
	var err error
	switch tt := t.(type) {
	case ast.PrimType:
		b = append(b, tagTyPrim, byte(tt.Kind))
	case ast.MapType:
		b = append(b, tagTyMap)
		if b, err = appendType(b, tt.Key); err != nil {
			return nil, err
		}
		if b, err = appendType(b, tt.Val); err != nil {
			return nil, err
		}
	case ast.ADTType:
		b = append(b, tagTyADT)
		b = appendString(b, tt.Name)
		b = appendUvarint(b, uint64(len(tt.Args)))
		for _, a := range tt.Args {
			if b, err = appendType(b, a); err != nil {
				return nil, err
			}
		}
	case ast.TypeVar:
		b = append(b, tagTyVar)
		b = appendString(b, tt.Name)
	case ast.FunType:
		b = append(b, tagTyFun)
		if b, err = appendType(b, tt.Arg); err != nil {
			return nil, err
		}
		if b, err = appendType(b, tt.Ret); err != nil {
			return nil, err
		}
	case ast.PolyType:
		b = append(b, tagTyPoly)
		b = appendString(b, tt.Var)
		if b, err = appendType(b, tt.Body); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: type %T", ErrUnencodable, t)
	}
	return b, nil
}

func (r *reader) typ(depth int) ast.Type {
	if r.err != nil {
		return nil
	}
	if depth > maxValueDepth {
		r.fail("type nesting exceeds depth limit %d", maxValueDepth)
		return nil
	}
	switch tag := r.byte(); tag {
	case tagTyPrim:
		k := ast.PrimKind(r.byte())
		if k < ast.Int32 || k > ast.UnitKind {
			r.fail("unknown primitive type kind %d", k)
			return nil
		}
		return ast.PrimType{Kind: k}
	case tagTyMap:
		kt := r.typ(depth + 1)
		vt := r.typ(depth + 1)
		if r.err != nil {
			return nil
		}
		return ast.MapType{Key: kt, Val: vt}
	case tagTyADT:
		name := r.string()
		n := r.count(1)
		var args []ast.Type
		if n > 0 {
			args = make([]ast.Type, 0, n)
		}
		for i := 0; i < n; i++ {
			args = append(args, r.typ(depth+1))
		}
		if r.err != nil {
			return nil
		}
		return ast.ADTType{Name: name, Args: args}
	case tagTyVar:
		return ast.TypeVar{Name: r.string()}
	case tagTyFun:
		at := r.typ(depth + 1)
		rt := r.typ(depth + 1)
		if r.err != nil {
			return nil
		}
		return ast.FunType{Arg: at, Ret: rt}
	case tagTyPoly:
		v := r.string()
		body := r.typ(depth + 1)
		if r.err != nil {
			return nil
		}
		return ast.PolyType{Var: v, Body: body}
	default:
		if r.err == nil {
			r.fail("unknown type tag %d", tag)
		}
		return nil
	}
}

func appendValue(b []byte, v value.Value) ([]byte, error) {
	var err error
	switch vv := v.(type) {
	case value.Int:
		b = append(b, tagInt, byte(vv.Ty.Kind))
		b = appendBig(b, vv.V)
	case value.Str:
		b = append(b, tagStr)
		b = appendString(b, vv.S)
	case value.ByStr:
		b = append(b, tagByStr, byte(vv.Ty.Kind))
		b = appendBytes(b, vv.B)
	case value.BNum:
		b = append(b, tagBNum)
		b = appendBig(b, vv.V)
	case value.ADT:
		b = append(b, tagADT)
		b = appendString(b, vv.TypeName)
		b = appendString(b, vv.Constr)
		b = appendUvarint(b, uint64(len(vv.TypeArgs)))
		for _, t := range vv.TypeArgs {
			if b, err = appendType(b, t); err != nil {
				return nil, err
			}
		}
		b = appendUvarint(b, uint64(len(vv.Args)))
		for _, a := range vv.Args {
			if b, err = appendValue(b, a); err != nil {
				return nil, err
			}
		}
	case *value.Map:
		b = append(b, tagMap)
		if b, err = appendType(b, vv.KeyType); err != nil {
			return nil, err
		}
		if b, err = appendType(b, vv.ValType); err != nil {
			return nil, err
		}
		keys := vv.SortedKeys()
		b = appendUvarint(b, uint64(len(keys)))
		for _, ck := range keys {
			if b, err = appendValue(b, vv.KeyVals[ck]); err != nil {
				return nil, err
			}
			if b, err = appendValue(b, vv.Entries[ck]); err != nil {
				return nil, err
			}
		}
	case value.Msg:
		b = append(b, tagMsg)
		keys := make([]string, 0, len(vv.Entries))
		for k := range vv.Entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = appendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendString(b, k)
			if b, err = appendValue(b, vv.Entries[k]); err != nil {
				return nil, err
			}
		}
	case value.Unit:
		b = append(b, tagUnit)
	default:
		return nil, fmt.Errorf("%w: value %T", ErrUnencodable, v)
	}
	return b, nil
}

func (r *reader) value(depth int) value.Value {
	if r.err != nil {
		return nil
	}
	if depth > maxValueDepth {
		r.fail("value nesting exceeds depth limit %d", maxValueDepth)
		return nil
	}
	switch tag := r.byte(); tag {
	case tagInt:
		k := ast.PrimKind(r.byte())
		v := r.big()
		if r.err != nil {
			return nil
		}
		ty := ast.PrimType{Kind: k}
		if !ty.IsInt() || v == nil || !ast.InRange(ty, v) {
			r.fail("integer value out of range for its type")
			return nil
		}
		return value.Int{Ty: ty, V: v}
	case tagStr:
		return value.Str{S: r.string()}
	case tagByStr:
		k := ast.PrimKind(r.byte())
		bs := r.bytes()
		if r.err != nil {
			return nil
		}
		switch k {
		case ast.ByStr20, ast.ByStr32, ast.ByStr:
		default:
			r.fail("bad ByStr type kind %d", k)
			return nil
		}
		return value.ByStr{Ty: ast.PrimType{Kind: k}, B: bs}
	case tagBNum:
		v := r.big()
		if r.err != nil {
			return nil
		}
		if v == nil || v.Sign() < 0 {
			r.fail("bad block number")
			return nil
		}
		return value.BNum{V: v}
	case tagADT:
		name := r.string()
		constr := r.string()
		nt := r.count(1)
		var targs []ast.Type
		if nt > 0 {
			targs = make([]ast.Type, 0, nt)
		}
		for i := 0; i < nt; i++ {
			targs = append(targs, r.typ(depth+1))
		}
		na := r.count(1)
		var args []value.Value
		if na > 0 {
			args = make([]value.Value, 0, na)
		}
		for i := 0; i < na; i++ {
			args = append(args, r.value(depth+1))
		}
		if r.err != nil {
			return nil
		}
		return value.ADT{TypeName: name, Constr: constr, TypeArgs: targs, Args: args}
	case tagMap:
		kt := r.typ(depth + 1)
		vt := r.typ(depth + 1)
		n := r.count(2)
		if r.err != nil {
			return nil
		}
		m := value.NewMap(kt, vt)
		for i := 0; i < n; i++ {
			k := r.value(depth + 1)
			v := r.value(depth + 1)
			if r.err != nil {
				return nil
			}
			m.Set(k, v)
		}
		return m
	case tagMsg:
		n := r.count(2)
		if r.err != nil {
			return nil
		}
		m := value.Msg{Entries: make(map[string]value.Value, n)}
		for i := 0; i < n; i++ {
			k := r.string()
			v := r.value(depth + 1)
			if r.err != nil {
				return nil
			}
			m.Entries[k] = v
		}
		return m
	case tagUnit:
		return value.Unit{}
	default:
		if r.err == nil {
			r.fail("unknown value tag %d", tag)
		}
		return nil
	}
}
