package wire

import (
	"fmt"

	"cosplit/internal/shard"
)

// Catch-up protocol types (internal/node). A replica that detects it
// is behind the DS committee — a TxBatch or FinalBlock arrives for a
// future epoch — requests the FinalBlocks it missed by epoch range and
// replays them, root-verified, before resuming live execution.
const (
	// MsgBlockRequest asks the DS committee for committed FinalBlocks
	// in an epoch range.
	MsgBlockRequest MsgType = 18
	// MsgBlockResponse answers a MsgBlockRequest with a contiguous run
	// of FinalBlocks starting at the requested epoch.
	MsgBlockResponse MsgType = 19
	// MsgHello announces a node to the DS committee when it starts, so
	// dynamically joining peers (lookups in particular) are learned
	// without static configuration.
	MsgHello MsgType = 20
)

// BlockRequest asks for the committed FinalBlocks of epochs
// [From, To) — To is exclusive, so a replica at epoch 3 that saw a
// block for epoch 7 asks for [3, 7).
type BlockRequest struct {
	From uint64
	To   uint64
}

// EncodeBlockRequest encodes a block request.
func EncodeBlockRequest(q *BlockRequest) []byte {
	b := appendUvarint(make([]byte, 0, 16), q.From)
	return appendUvarint(b, q.To)
}

// DecodeBlockRequest decodes a block request payload.
func DecodeBlockRequest(b []byte) (*BlockRequest, error) {
	r := &reader{b: b}
	q := &BlockRequest{From: r.uvarint(), To: r.uvarint()}
	if err := r.done(); err != nil {
		return nil, err
	}
	if q.To < q.From {
		return nil, fmt.Errorf("%w: block request range [%d, %d) is inverted", ErrDecode, q.From, q.To)
	}
	return q, nil
}

// BlockResponse carries a contiguous run of committed FinalBlocks
// starting at epoch From (Blocks[i] is epoch From+i), plus the
// responder's current head epoch so the requester can tell a fully
// served range from a truncated one and re-request the remainder. A
// response may carry fewer blocks than asked for (the responder caps
// response size) or none at all (the range is ahead of the head, or
// compacted out of the journal).
type BlockResponse struct {
	From   uint64
	Head   uint64
	Blocks []*shard.FinalBlock
}

// EncodeBlockResponse encodes a block response. Each FinalBlock is
// length-prefixed (unlike the journal record, which runs to the end of
// its frame) so several can share one payload.
func EncodeBlockResponse(resp *BlockResponse) ([]byte, error) {
	b := make([]byte, 0, 64+512*len(resp.Blocks))
	b = appendUvarint(b, resp.From)
	b = appendUvarint(b, resp.Head)
	b = appendUvarint(b, uint64(len(resp.Blocks)))
	for _, fb := range resp.Blocks {
		enc, err := EncodeFinalBlock(fb)
		if err != nil {
			return nil, err
		}
		b = appendBytes(b, enc)
	}
	return b, nil
}

// DecodeBlockResponse decodes a block response payload. The contiguity
// contract is enforced here: Blocks[i].Epoch must equal From+i, so a
// malformed or adversarial response cannot smuggle out-of-range blocks
// past the replay loop.
func DecodeBlockResponse(b []byte) (*BlockResponse, error) {
	r := &reader{b: b}
	resp := &BlockResponse{From: r.uvarint(), Head: r.uvarint()}
	n := r.count(2)
	if n > 0 {
		resp.Blocks = make([]*shard.FinalBlock, 0, n)
	}
	for i := 0; i < n; i++ {
		enc := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		fb, err := DecodeFinalBlock(enc)
		if err != nil {
			return nil, err
		}
		if fb.Epoch != resp.From+uint64(i) {
			return nil, fmt.Errorf("%w: block response not contiguous: slot %d carries epoch %d, want %d",
				ErrDecode, i, fb.Epoch, resp.From+uint64(i))
		}
		resp.Blocks = append(resp.Blocks, fb)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return resp, nil
}

// Hello announces a node to the DS committee: its transport name (the
// address frames route back to) and its role. The DS uses lookup
// hellos to learn the fan-out set for FinalBlocks at runtime instead
// of from static configuration.
type Hello struct {
	Name string
	Role string
}

// EncodeHello encodes a hello announcement.
func EncodeHello(h *Hello) []byte {
	b := appendString(make([]byte, 0, 32), h.Name)
	return appendString(b, h.Role)
}

// DecodeHello decodes a hello payload.
func DecodeHello(b []byte) (*Hello, error) {
	r := &reader{b: b}
	h := &Hello{Name: r.string(), Role: r.string()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return h, nil
}
