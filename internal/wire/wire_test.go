package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden wire fixtures and the fuzz seed corpus")

// fixtureTx builds a deterministic transaction exercising every value
// shape the format carries: ints, strings, byte strings, ADTs with
// type args, and a map.
func fixtureTx() *chain.Tx {
	amounts := value.NewMap(ast.TyByStr20, ast.TyUint128)
	amounts.Set(value.ByStr{Ty: ast.TyByStr20, B: bytes.Repeat([]byte{0x11}, 20)}, value.Uint128(7))
	amounts.Set(value.ByStr{Ty: ast.TyByStr20, B: bytes.Repeat([]byte{0x22}, 20)}, value.Uint128(9))
	return &chain.Tx{
		ID:         42,
		Kind:       chain.TxCall,
		From:       chain.AddrFromUint(100),
		To:         chain.AddrFromUint(7),
		Nonce:      3,
		Amount:     big.NewInt(0),
		GasLimit:   100_000,
		GasPrice:   1,
		Transition: "Transfer",
		Args: map[string]value.Value{
			"to":     value.ByStr{Ty: ast.TyByStr20, B: bytes.Repeat([]byte{0x33}, 20)},
			"amount": value.Uint128(12345),
			"tag":    value.Str{S: "hello"},
			"flag":   value.Some(ast.TyBool, value.True()),
			"bonus":  amounts,
			"height": value.BNum{V: big.NewInt(99)},
			"unit":   value.Unit{},
		},
	}
}

func fixtureReceipt() *chain.Receipt {
	return &chain.Receipt{
		TxID:    42,
		Success: true,
		GasUsed: 180,
		Shard:   -1,
		Epoch:   5,
		Events: []value.Msg{{Entries: map[string]value.Value{
			"_eventname": value.Str{S: "TransferSuccess"},
			"amount":     value.Uint128(12345),
		}}},
	}
}

func fixtureDelta() *chain.StateDelta {
	return &chain.StateDelta{
		Contract: chain.AddrFromUint(7),
		Shard:    2,
		Fields: map[string]*chain.FieldDelta{
			"balances": {
				Entries: map[string]chain.EntryDelta{
					"b:0x1111111111111111111111111111111111111111": {
						Kind:  chain.IntAdd,
						Keys:  []value.Value{value.ByStr{Ty: ast.TyByStr20, B: bytes.Repeat([]byte{0x11}, 20)}},
						Delta: big.NewInt(-12345),
					},
					"b:0x2222222222222222222222222222222222222222": {
						Kind:  chain.IntAdd,
						Keys:  []value.Value{value.ByStr{Ty: ast.TyByStr20, B: bytes.Repeat([]byte{0x22}, 20)}},
						Delta: big.NewInt(12345),
					},
				},
			},
			"total_supply": {
				Whole: &chain.EntryDelta{Kind: chain.Overwrite, Value: value.Uint128(1 << 30)},
			},
			"paused": {
				Whole: &chain.EntryDelta{Kind: chain.Delete},
			},
		},
	}
}

func fixtureMicroBlock() *shard.MicroBlock {
	acc := chain.NewAccountDelta()
	acc.AddBalance(chain.AddrFromUint(100), big.NewInt(-200))
	acc.AddBalance(chain.AddrFromUint(101), big.NewInt(200))
	acc.BumpNonce(chain.AddrFromUint(100), 3)
	deferred := fixtureTx()
	deferred.ID = 43
	return &shard.MicroBlock{
		Shard:    2,
		Epoch:    5,
		Receipts: []*chain.Receipt{fixtureReceipt()},
		Deltas:   []*chain.StateDelta{fixtureDelta()},
		Accounts: acc,
		GasUsed:  180,
		Deferred: []*chain.Tx{deferred},
		ExecTime: 1500 * time.Microsecond,
	}
}

func fixtureFinalBlock() *shard.FinalBlock {
	acc := chain.NewAccountDelta()
	acc.AddBalance(chain.AddrFromUint(100), big.NewInt(-200))
	acc.BumpNonce(chain.AddrFromUint(100), 3)
	ds := fixtureTx()
	ds.ID = 44
	return &shard.FinalBlock{
		Epoch:     5,
		Deltas:    []*chain.StateDelta{fixtureDelta()},
		Accounts:  acc,
		Receipts:  []*chain.Receipt{fixtureReceipt()},
		DSBatch:   []*chain.Tx{ds},
		StateRoot: "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
	}
}

type fixture struct {
	name string
	typ  MsgType
	enc  []byte
}

func mustEnc(b []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return b
}

// fixtures enumerates every message type with a deterministic
// representative instance; the golden test and the fuzz seed corpus
// are both generated from it. Encoding a fixture cannot fail (they
// carry no closures or deployments), so errors panic.
func fixtures() []fixture {
	txb := mustEnc(EncodeTx(fixtureTx()))
	deltab := mustEnc(EncodeStateDelta(fixtureDelta()))
	mbb := mustEnc(EncodeMicroBlock(fixtureMicroBlock()))
	fbb := mustEnc(EncodeFinalBlock(fixtureFinalBlock()))
	batchb := mustEnc(EncodeTxBatch(&TxBatch{Epoch: 5, Shard: 2, Txs: []*chain.Tx{fixtureTx()}}))
	subb := mustEnc(EncodeSubmit(&Submit{Corr: 9, Tx: fixtureTx()}))
	respb := mustEnc(EncodeStateResp(&StateResp{
		Corr: 11, Found: true, Balance: big.NewInt(1 << 40), Nonce: 3,
		Value: value.Uint128(12345),
	}))
	cbb := mustEnc(EncodeCheckpointBlock(&CheckpointBlock{
		Checkpoint: shard.Checkpoint{Epoch: 6, BlockNumber: 6, NextTxID: 45},
		Block:      fixtureFinalBlock(),
	}))
	contractb := mustEnc(EncodeSnapshotContract(&SnapshotContract{
		Addr: chain.AddrFromUint(7),
		Fields: map[string]value.Value{
			"total_supply": value.Uint128(1 << 30),
			"owner":        value.ByStr{Ty: ast.TyByStr20, B: bytes.Repeat([]byte{0x11}, 20)},
			"bonus":        fixtureTx().Args["bonus"],
		},
	}))
	accountsb := EncodeSnapshotAccounts([]SnapshotAccount{
		{Addr: chain.AddrFromUint(7), Balance: big.NewInt(0), IsContract: true},
		{Addr: chain.AddrFromUint(100), Balance: big.NewInt(1 << 40), Nonce: 3},
	})
	return []fixture{
		{"tx", MsgTx, txb},
		{"state_delta", MsgStateDelta, deltab},
		{"micro_block", MsgMicroBlock, mbb},
		{"final_block", MsgFinalBlock, fbb},
		{"tx_batch", MsgTxBatch, batchb},
		{"submit", MsgSubmit, subb},
		{"submit_resp", MsgSubmitResp, EncodeSubmitResp(&SubmitResp{Corr: 9, ID: 42})},
		{"state_query", MsgStateQuery, EncodeStateQuery(&StateQuery{Corr: 11, Addr: chain.AddrFromUint(7), Field: "balances", Key: "b:0x1111111111111111111111111111111111111111"})},
		{"state_resp", MsgStateResp, respb},
		{"checkpoint_block", MsgCheckpointBlock, cbb},
		{"snapshot_header", MsgSnapshotHeader, EncodeSnapshotHeader(&SnapshotHeader{
			Checkpoint: shard.Checkpoint{Epoch: 6, BlockNumber: 6, NextTxID: 45},
			Root:       "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
		})},
		{"snapshot_contract", MsgSnapshotContract, contractb},
		{"snapshot_accounts", MsgSnapshotAccounts, accountsb},
		{"snapshot_end", MsgSnapshotEnd, EncodeSnapshotEnd(&SnapshotEnd{Contracts: 1, Accounts: 2})},
		{"account_page", MsgAccountPage, EncodeAccountPage(&AccountPage{
			PageID: 42, Version: 7, Accounts: []SnapshotAccount{
				{Addr: chain.AddrFromUint(7), Balance: big.NewInt(0), IsContract: true},
				{Addr: chain.AddrFromUint(100), Balance: big.NewInt(1 << 40), Nonce: 3},
			},
		})},
		{"contract_page", MsgContractPage, mustEnc(EncodeContractPage(&ContractPage{
			Addr: chain.AddrFromUint(7), Version: 9,
			Fields: map[string]value.Value{
				"total_supply": value.Uint128(1 << 30),
				"owner":        value.ByStr{Ty: ast.TyByStr20, B: bytes.Repeat([]byte{0x11}, 20)},
			},
		}))},
		{"page_index", MsgPageIndex, EncodePageIndex(&PageIndex{
			Checkpoint:  shard.Checkpoint{Epoch: 6, BlockNumber: 6, NextTxID: 45},
			Root:        "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
			PageCount:   64,
			NextVersion: 12,
			Accounts: []PageIndexAccounts{
				{PageID: 3, Version: 10, Count: 5},
				{PageID: 42, Version: 7, Count: 2},
			},
			Contracts: []PageIndexContract{{Addr: chain.AddrFromUint(7), Version: 9}},
		})},
		{"block_request", MsgBlockRequest, EncodeBlockRequest(&BlockRequest{From: 3, To: 7})},
		{"block_response", MsgBlockResponse, mustEnc(EncodeBlockResponse(&BlockResponse{
			From: 5, Head: 6, Blocks: []*shard.FinalBlock{fixtureFinalBlock()},
		}))},
		{"hello", MsgHello, EncodeHello(&Hello{Name: "lookup-1", Role: "lookup"})},
	}
}

// reencode decodes payload as msg type t and encodes the result again;
// byte equality with the input proves the decoder reads exactly what
// the encoder wrote (encodings are canonical: sorted map order).
func reencode(t MsgType, payload []byte) ([]byte, error) {
	switch t {
	case MsgTx:
		v, err := DecodeTx(payload)
		if err != nil {
			return nil, err
		}
		return EncodeTx(v)
	case MsgStateDelta:
		v, err := DecodeStateDelta(payload)
		if err != nil {
			return nil, err
		}
		return EncodeStateDelta(v)
	case MsgMicroBlock:
		v, err := DecodeMicroBlock(payload)
		if err != nil {
			return nil, err
		}
		return EncodeMicroBlock(v)
	case MsgFinalBlock:
		v, err := DecodeFinalBlock(payload)
		if err != nil {
			return nil, err
		}
		return EncodeFinalBlock(v)
	case MsgTxBatch:
		v, err := DecodeTxBatch(payload)
		if err != nil {
			return nil, err
		}
		return EncodeTxBatch(v)
	case MsgSubmit:
		v, err := DecodeSubmit(payload)
		if err != nil {
			return nil, err
		}
		return EncodeSubmit(v)
	case MsgSubmitResp:
		v, err := DecodeSubmitResp(payload)
		if err != nil {
			return nil, err
		}
		return EncodeSubmitResp(v), nil
	case MsgStateQuery:
		v, err := DecodeStateQuery(payload)
		if err != nil {
			return nil, err
		}
		return EncodeStateQuery(v), nil
	case MsgStateResp:
		v, err := DecodeStateResp(payload)
		if err != nil {
			return nil, err
		}
		return EncodeStateResp(v)
	case MsgCheckpointBlock:
		v, err := DecodeCheckpointBlock(payload)
		if err != nil {
			return nil, err
		}
		return EncodeCheckpointBlock(v)
	case MsgSnapshotHeader:
		v, err := DecodeSnapshotHeader(payload)
		if err != nil {
			return nil, err
		}
		return EncodeSnapshotHeader(v), nil
	case MsgSnapshotContract:
		v, err := DecodeSnapshotContract(payload)
		if err != nil {
			return nil, err
		}
		return EncodeSnapshotContract(v)
	case MsgSnapshotAccounts:
		v, err := DecodeSnapshotAccounts(payload)
		if err != nil {
			return nil, err
		}
		return EncodeSnapshotAccounts(v), nil
	case MsgSnapshotEnd:
		v, err := DecodeSnapshotEnd(payload)
		if err != nil {
			return nil, err
		}
		return EncodeSnapshotEnd(v), nil
	case MsgAccountPage:
		v, err := DecodeAccountPage(payload)
		if err != nil {
			return nil, err
		}
		return EncodeAccountPage(v), nil
	case MsgContractPage:
		v, err := DecodeContractPage(payload)
		if err != nil {
			return nil, err
		}
		return EncodeContractPage(v)
	case MsgPageIndex:
		v, err := DecodePageIndex(payload)
		if err != nil {
			return nil, err
		}
		return EncodePageIndex(v), nil
	case MsgBlockRequest:
		v, err := DecodeBlockRequest(payload)
		if err != nil {
			return nil, err
		}
		return EncodeBlockRequest(v), nil
	case MsgBlockResponse:
		v, err := DecodeBlockResponse(payload)
		if err != nil {
			return nil, err
		}
		return EncodeBlockResponse(v)
	case MsgHello:
		v, err := DecodeHello(payload)
		if err != nil {
			return nil, err
		}
		return EncodeHello(v), nil
	default:
		return nil, fmt.Errorf("%w: unknown message type %d", ErrDecode, t)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			got, err := reencode(fx.typ, fx.enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(got, fx.enc) {
				t.Fatalf("re-encoded bytes differ:\n got %x\nwant %x", got, fx.enc)
			}
		})
	}
}

func TestDecodedTxFields(t *testing.T) {
	want := fixtureTx()
	enc, err := EncodeTx(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTx(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Kind != want.Kind || got.From != want.From ||
		got.To != want.To || got.Nonce != want.Nonce || got.GasLimit != want.GasLimit ||
		got.GasPrice != want.GasPrice || got.Transition != want.Transition {
		t.Fatalf("scalar fields differ: got %+v want %+v", got, want)
	}
	if got.Amount.Cmp(want.Amount) != 0 {
		t.Fatalf("amount: got %s want %s", got.Amount, want.Amount)
	}
	if len(got.Args) != len(want.Args) {
		t.Fatalf("args: got %d want %d", len(got.Args), len(want.Args))
	}
	for k, v := range want.Args {
		if !value.Equal(got.Args[k], v) {
			t.Fatalf("arg %q: got %v want %v", k, got.Args[k], v)
		}
	}
}

func TestDeployNotEncodable(t *testing.T) {
	_, err := EncodeTx(&chain.Tx{Kind: chain.TxDeploy, Amount: big.NewInt(0)})
	if !errors.Is(err, ErrUnencodable) {
		t.Fatalf("want ErrUnencodable, got %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("payload")
	frame := EncodeFrame(MsgTx, payload)
	typ, got, rest, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgTx || !bytes.Equal(got, payload) || len(rest) != 0 {
		t.Fatalf("got type=%v payload=%q rest=%d", typ, got, len(rest))
	}

	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgMicroBlock, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, MsgFinalBlock, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err = ReadFrame(&buf)
	if err != nil || typ != MsgMicroBlock || !bytes.Equal(got, payload) {
		t.Fatalf("first frame: type=%v payload=%q err=%v", typ, got, err)
	}
	typ, got, err = ReadFrame(&buf)
	if err != nil || typ != MsgFinalBlock || len(got) != 0 {
		t.Fatalf("second frame: type=%v payload=%q err=%v", typ, got, err)
	}
	if _, _, err = ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

// TestVersionSkew proves a v1 reader rejects a hypothetical v2 frame
// cleanly: structurally intact, newer version byte, typed error.
func TestVersionSkew(t *testing.T) {
	frame := EncodeFrame(MsgTx, []byte("future"))
	frame[2] = Version + 1
	if _, _, _, err := DecodeFrame(frame); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("DecodeFrame: want ErrVersionSkew, got %v", err)
	}
	if errors.Is(func() error { _, _, _, err := DecodeFrame(frame); return err }(), ErrDecode) {
		t.Fatal("version skew must not be classified as ErrDecode")
	}
	if _, _, err := ReadFrame(bytes.NewReader(frame)); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("ReadFrame: want ErrVersionSkew, got %v", err)
	}
}

func TestFrameErrors(t *testing.T) {
	frame := EncodeFrame(MsgTx, []byte("x"))
	cases := map[string][]byte{
		"empty":             {},
		"short header":      frame[:4],
		"bad magic":         append([]byte{0xde, 0xad}, frame[2:]...),
		"truncated payload": frame[:len(frame)-1],
	}
	for name, b := range cases {
		if _, _, _, err := DecodeFrame(b); !errors.Is(err, ErrDecode) {
			t.Errorf("%s: want ErrDecode, got %v", name, err)
		}
	}
	// Oversized length field must fail before allocating.
	big := EncodeFrame(MsgTx, nil)
	big[4], big[5], big[6], big[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, _, err := DecodeFrame(big); !errors.Is(err, ErrDecode) {
		t.Fatalf("oversized: want ErrDecode, got %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(big)); !errors.Is(err, ErrDecode) {
		t.Fatalf("oversized (stream): want ErrDecode, got %v", err)
	}
	// A flipped payload byte fails the frame checksum — in both the
	// slice and stream decoders — but still relays through ReadRawFrame
	// (transports don't validate payloads).
	corrupt := EncodeFrame(MsgTx, []byte("delta"))
	corrupt[len(corrupt)-1] ^= 0x01
	if _, _, _, err := DecodeFrame(corrupt); !errors.Is(err, ErrDecode) {
		t.Fatalf("corrupt payload: want ErrDecode, got %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(corrupt)); !errors.Is(err, ErrDecode) {
		t.Fatalf("corrupt payload (stream): want ErrDecode, got %v", err)
	}
	if raw, err := ReadRawFrame(bytes.NewReader(corrupt)); err != nil || !bytes.Equal(raw, corrupt) {
		t.Fatalf("ReadRawFrame must relay corrupted payloads: %v", err)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	enc, err := EncodeTx(fixtureTx())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTx(append(enc, 0x00)); !errors.Is(err, ErrDecode) {
		t.Fatalf("want ErrDecode for trailing bytes, got %v", err)
	}
}

// TestGolden pins the byte-level format: any encoder change that
// alters the bytes of these fixtures is a wire format break and must
// bump Version (then regenerate with -update-golden).
func TestGolden(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			path := filepath.Join("testdata", fx.name+".golden.hex")
			got := wrapHex(AppendFrame(nil, fx.typ, fx.enc))
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("wire bytes changed for %s — this is a format break; bump wire.Version or fix the encoder.\n got:\n%s\nwant:\n%s", fx.name, got, want)
			}
		})
	}
}

// TestGoldenDecodes proves the committed fixtures still decode — the
// compatibility direction of the golden contract.
func TestGoldenDecodes(t *testing.T) {
	entries, err := filepath.Glob(filepath.Join("testdata", "*.golden.hex"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no golden fixtures found: %v", err)
	}
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := hex.DecodeString(unwrapHex(string(raw)))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		typ, payload, rest, err := DecodeFrame(frame)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%s: DecodeFrame: %v (rest=%d)", path, err, len(rest))
		}
		if _, err := reencode(typ, payload); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
}

// TestUpdateFuzzCorpus materialises the fixtures as seed-corpus files
// for FuzzDecoders when -update-golden is set, so the committed corpus
// tracks the format.
func TestUpdateFuzzCorpus(t *testing.T) {
	if !*updateGolden {
		t.Skip("run with -update-golden to rewrite the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecoders")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures() {
		frame := AppendFrame(nil, fx.typ, fx.enc)
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(frame)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed_"+fx.name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func wrapHex(b []byte) string {
	s := hex.EncodeToString(b)
	var sb bytes.Buffer
	for len(s) > 64 {
		sb.WriteString(s[:64])
		sb.WriteByte('\n')
		s = s[64:]
	}
	sb.WriteString(s)
	sb.WriteByte('\n')
	return sb.String()
}

func unwrapHex(s string) string {
	var sb bytes.Buffer
	for _, line := range bytes.Split([]byte(s), []byte("\n")) {
		sb.Write(bytes.TrimSpace(line))
	}
	return sb.String()
}
