package wire

import (
	"fmt"
	"math/big"
	"sort"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

// --- Tx ---

// EncodeTx encodes a transaction payload. Deployments never cross the
// wire (contracts are part of each node's deterministic genesis) and
// fail with ErrUnencodable.
func EncodeTx(tx *chain.Tx) ([]byte, error) {
	return appendTx(make([]byte, 0, 96), tx)
}

func appendTx(b []byte, tx *chain.Tx) ([]byte, error) {
	if tx.Kind == chain.TxDeploy || tx.Deploy != nil {
		return nil, fmt.Errorf("%w: contract deployment (deployments are genesis-local)", ErrUnencodable)
	}
	b = appendUvarint(b, tx.ID)
	b = append(b, byte(tx.Kind))
	b = appendAddr(b, tx.From)
	b = appendAddr(b, tx.To)
	b = appendUvarint(b, tx.Nonce)
	b = appendBig(b, tx.Amount)
	b = appendUvarint(b, tx.GasLimit)
	b = appendUvarint(b, tx.GasPrice)
	b = appendString(b, tx.Transition)
	keys := make([]string, 0, len(tx.Args))
	for k := range tx.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendUvarint(b, uint64(len(keys)))
	var err error
	for _, k := range keys {
		b = appendString(b, k)
		if b, err = appendValue(b, tx.Args[k]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeTx decodes a transaction payload.
func DecodeTx(b []byte) (*chain.Tx, error) {
	r := &reader{b: b}
	tx := r.tx()
	if err := r.done(); err != nil {
		return nil, err
	}
	return tx, nil
}

func (r *reader) tx() *chain.Tx {
	tx := &chain.Tx{}
	tx.ID = r.uvarint()
	kind := r.byte()
	if r.err == nil && kind != byte(chain.TxTransfer) && kind != byte(chain.TxCall) {
		r.fail("bad transaction kind %d", kind)
	}
	tx.Kind = chain.TxKind(kind)
	tx.From = r.addr()
	tx.To = r.addr()
	tx.Nonce = r.uvarint()
	tx.Amount = r.big()
	if r.err == nil && (tx.Amount == nil || tx.Amount.Sign() < 0) {
		r.fail("bad transaction amount")
	}
	tx.GasLimit = r.uvarint()
	tx.GasPrice = r.uvarint()
	tx.Transition = r.string()
	n := r.count(2)
	if n > 0 {
		tx.Args = make(map[string]value.Value, n)
	}
	for i := 0; i < n; i++ {
		k := r.string()
		v := r.value(0)
		if r.err != nil {
			return nil
		}
		tx.Args[k] = v
	}
	if r.err != nil {
		return nil
	}
	return tx
}

// --- Receipt ---

func appendReceipt(b []byte, rec *chain.Receipt) ([]byte, error) {
	b = appendUvarint(b, rec.TxID)
	b = appendBool(b, rec.Success)
	b = appendUvarint(b, rec.GasUsed)
	b = appendString(b, rec.Error)
	b = appendVarint(b, int64(rec.Shard))
	b = appendUvarint(b, rec.Epoch)
	b = appendUvarint(b, uint64(len(rec.Events)))
	var err error
	for _, ev := range rec.Events {
		if b, err = appendValue(b, ev); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (r *reader) receipt() *chain.Receipt {
	rec := &chain.Receipt{}
	rec.TxID = r.uvarint()
	rec.Success = r.bool()
	rec.GasUsed = r.uvarint()
	rec.Error = r.string()
	rec.Shard = int(r.varint())
	rec.Epoch = r.uvarint()
	n := r.count(1)
	if n > 0 {
		rec.Events = make([]value.Msg, 0, n)
	}
	for i := 0; i < n; i++ {
		v := r.value(0)
		if r.err != nil {
			return nil
		}
		msg, ok := v.(value.Msg)
		if !ok {
			r.fail("receipt event is not a message")
			return nil
		}
		rec.Events = append(rec.Events, msg)
	}
	if r.err != nil {
		return nil
	}
	return rec
}

// --- StateDelta ---

// EncodeStateDelta encodes one shard's per-contract state delta.
func EncodeStateDelta(d *chain.StateDelta) ([]byte, error) {
	return appendStateDelta(make([]byte, 0, 128), d)
}

func appendStateDelta(b []byte, d *chain.StateDelta) ([]byte, error) {
	b = appendAddr(b, d.Contract)
	b = appendVarint(b, int64(d.Shard))
	fields := make([]string, 0, len(d.Fields))
	for f := range d.Fields {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	b = appendUvarint(b, uint64(len(fields)))
	var err error
	for _, f := range fields {
		fd := d.Fields[f]
		b = appendString(b, f)
		b = appendBool(b, fd.Whole != nil)
		if fd.Whole != nil {
			if b, err = appendEntryDelta(b, fd.Whole); err != nil {
				return nil, err
			}
		}
		kps := make([]string, 0, len(fd.Entries))
		for kp := range fd.Entries {
			kps = append(kps, kp)
		}
		sort.Strings(kps)
		b = appendUvarint(b, uint64(len(kps)))
		for _, kp := range kps {
			e := fd.Entries[kp]
			b = appendString(b, kp)
			if b, err = appendEntryDelta(b, &e); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func appendEntryDelta(b []byte, e *chain.EntryDelta) ([]byte, error) {
	b = append(b, byte(e.Kind))
	b = appendUvarint(b, uint64(len(e.Keys)))
	var err error
	for _, k := range e.Keys {
		if b, err = appendValue(b, k); err != nil {
			return nil, err
		}
	}
	b = appendBool(b, e.Value != nil)
	if e.Value != nil {
		if b, err = appendValue(b, e.Value); err != nil {
			return nil, err
		}
	}
	b = appendBig(b, e.Delta)
	return b, nil
}

// DecodeStateDelta decodes one state delta payload.
func DecodeStateDelta(b []byte) (*chain.StateDelta, error) {
	r := &reader{b: b}
	d := r.stateDelta()
	if err := r.done(); err != nil {
		return nil, err
	}
	return d, nil
}

func (r *reader) stateDelta() *chain.StateDelta {
	d := &chain.StateDelta{Fields: make(map[string]*chain.FieldDelta)}
	d.Contract = r.addr()
	d.Shard = int(r.varint())
	nf := r.count(2)
	for i := 0; i < nf; i++ {
		f := r.string()
		fd := &chain.FieldDelta{Entries: make(map[string]chain.EntryDelta)}
		if r.bool() {
			fd.Whole = r.entryDelta()
		}
		ne := r.count(2)
		for j := 0; j < ne; j++ {
			kp := r.string()
			e := r.entryDelta()
			if r.err != nil {
				return nil
			}
			fd.Entries[kp] = *e
		}
		if r.err != nil {
			return nil
		}
		d.Fields[f] = fd
	}
	if r.err != nil {
		return nil
	}
	return d
}

func (r *reader) entryDelta() *chain.EntryDelta {
	e := &chain.EntryDelta{}
	kind := r.byte()
	if r.err == nil && kind > byte(chain.Delete) {
		r.fail("bad delta kind %d", kind)
	}
	e.Kind = chain.DeltaKind(kind)
	n := r.count(1)
	if n > 0 {
		e.Keys = make([]value.Value, 0, n)
	}
	for i := 0; i < n; i++ {
		e.Keys = append(e.Keys, r.value(0))
	}
	if r.bool() {
		e.Value = r.value(0)
	}
	e.Delta = r.big()
	if r.err != nil {
		return nil
	}
	return e
}

// --- AccountDelta ---

func appendAccountDelta(b []byte, d *chain.AccountDelta) []byte {
	addrs := make([]chain.Address, 0, len(d.BalanceDeltas))
	for a := range d.BalanceDeltas {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	b = appendUvarint(b, uint64(len(addrs)))
	for _, a := range addrs {
		b = appendAddr(b, a)
		b = appendBig(b, d.BalanceDeltas[a])
	}
	addrs = addrs[:0]
	for a := range d.Nonces {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	b = appendUvarint(b, uint64(len(addrs)))
	for _, a := range addrs {
		b = appendAddr(b, a)
		b = appendUvarint(b, d.Nonces[a])
	}
	return b
}

func (r *reader) accountDelta() *chain.AccountDelta {
	d := chain.NewAccountDelta()
	nb := r.count(21)
	for i := 0; i < nb; i++ {
		a := r.addr()
		v := r.big()
		if r.err != nil {
			return nil
		}
		if v == nil {
			r.fail("nil balance delta")
			return nil
		}
		d.BalanceDeltas[a] = v
	}
	nn := r.count(21)
	for i := 0; i < nn; i++ {
		a := r.addr()
		n := r.uvarint()
		if r.err != nil {
			return nil
		}
		d.Nonces[a] = n
	}
	if r.err != nil {
		return nil
	}
	return d
}

func sortAddrs(addrs []chain.Address) {
	sort.Slice(addrs, func(i, j int) bool {
		for k := 0; k < len(addrs[i]); k++ {
			if addrs[i][k] != addrs[j][k] {
				return addrs[i][k] < addrs[j][k]
			}
		}
		return false
	})
}

// --- MicroBlock ---

// EncodeMicroBlock encodes a sealed MicroBlock.
func EncodeMicroBlock(mb *shard.MicroBlock) ([]byte, error) {
	b := make([]byte, 0, 256)
	b = appendVarint(b, int64(mb.Shard))
	b = appendUvarint(b, mb.Epoch)
	b = appendUvarint(b, mb.GasUsed)
	b = appendUvarint(b, uint64(mb.ExecTime))
	var err error
	b = appendUvarint(b, uint64(len(mb.Receipts)))
	for _, rec := range mb.Receipts {
		if b, err = appendReceipt(b, rec); err != nil {
			return nil, err
		}
	}
	b = appendUvarint(b, uint64(len(mb.Deltas)))
	for _, d := range mb.Deltas {
		if b, err = appendStateDelta(b, d); err != nil {
			return nil, err
		}
	}
	b = appendBool(b, mb.Accounts != nil)
	if mb.Accounts != nil {
		b = appendAccountDelta(b, mb.Accounts)
	}
	b = appendUvarint(b, uint64(len(mb.Deferred)))
	for _, tx := range mb.Deferred {
		if b, err = appendTx(b, tx); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeMicroBlock decodes a MicroBlock payload.
func DecodeMicroBlock(b []byte) (*shard.MicroBlock, error) {
	r := &reader{b: b}
	mb := &shard.MicroBlock{}
	mb.Shard = int(r.varint())
	mb.Epoch = r.uvarint()
	mb.GasUsed = r.uvarint()
	mb.ExecTime = time.Duration(r.uvarint())
	nr := r.count(6)
	if nr > 0 {
		mb.Receipts = make([]*chain.Receipt, 0, nr)
	}
	for i := 0; i < nr; i++ {
		rec := r.receipt()
		if r.err != nil {
			return nil, r.err
		}
		mb.Receipts = append(mb.Receipts, rec)
	}
	nd := r.count(22)
	if nd > 0 {
		mb.Deltas = make([]*chain.StateDelta, 0, nd)
	}
	for i := 0; i < nd; i++ {
		d := r.stateDelta()
		if r.err != nil {
			return nil, r.err
		}
		mb.Deltas = append(mb.Deltas, d)
	}
	if r.bool() {
		mb.Accounts = r.accountDelta()
	}
	nt := r.count(45)
	if nt > 0 {
		mb.Deferred = make([]*chain.Tx, 0, nt)
	}
	for i := 0; i < nt; i++ {
		tx := r.tx()
		if r.err != nil {
			return nil, r.err
		}
		mb.Deferred = append(mb.Deferred, tx)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return mb, nil
}

// --- FinalBlock ---

// EncodeFinalBlock encodes a DS-committed FinalBlock.
func EncodeFinalBlock(fb *shard.FinalBlock) ([]byte, error) {
	b := make([]byte, 0, 512)
	b = appendUvarint(b, fb.Epoch)
	b = appendString(b, fb.StateRoot)
	var err error
	b = appendUvarint(b, uint64(len(fb.Deltas)))
	for _, d := range fb.Deltas {
		if b, err = appendStateDelta(b, d); err != nil {
			return nil, err
		}
	}
	b = appendBool(b, fb.Accounts != nil)
	if fb.Accounts != nil {
		b = appendAccountDelta(b, fb.Accounts)
	}
	b = appendUvarint(b, uint64(len(fb.Receipts)))
	for _, rec := range fb.Receipts {
		if b, err = appendReceipt(b, rec); err != nil {
			return nil, err
		}
	}
	b = appendUvarint(b, uint64(len(fb.DSBatch)))
	for _, tx := range fb.DSBatch {
		if b, err = appendTx(b, tx); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeFinalBlock decodes a FinalBlock payload.
func DecodeFinalBlock(b []byte) (*shard.FinalBlock, error) {
	r := &reader{b: b}
	fb := &shard.FinalBlock{}
	fb.Epoch = r.uvarint()
	fb.StateRoot = r.string()
	nd := r.count(22)
	if nd > 0 {
		fb.Deltas = make([]*chain.StateDelta, 0, nd)
	}
	for i := 0; i < nd; i++ {
		d := r.stateDelta()
		if r.err != nil {
			return nil, r.err
		}
		fb.Deltas = append(fb.Deltas, d)
	}
	if r.bool() {
		fb.Accounts = r.accountDelta()
	}
	nr := r.count(6)
	if nr > 0 {
		fb.Receipts = make([]*chain.Receipt, 0, nr)
	}
	for i := 0; i < nr; i++ {
		rec := r.receipt()
		if r.err != nil {
			return nil, r.err
		}
		fb.Receipts = append(fb.Receipts, rec)
	}
	nt := r.count(45)
	if nt > 0 {
		fb.DSBatch = make([]*chain.Tx, 0, nt)
	}
	for i := 0; i < nt; i++ {
		tx := r.tx()
		if r.err != nil {
			return nil, r.err
		}
		fb.DSBatch = append(fb.DSBatch, tx)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return fb, nil
}

// --- TxBatch ---

// TxBatch carries one shard's dispatched queue for one epoch.
type TxBatch struct {
	Epoch uint64
	Shard int
	Txs   []*chain.Tx
}

// EncodeTxBatch encodes a dispatched shard queue.
func EncodeTxBatch(batch *TxBatch) ([]byte, error) {
	b := make([]byte, 0, 64+96*len(batch.Txs))
	b = appendUvarint(b, batch.Epoch)
	b = appendVarint(b, int64(batch.Shard))
	b = appendUvarint(b, uint64(len(batch.Txs)))
	var err error
	for _, tx := range batch.Txs {
		if b, err = appendTx(b, tx); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeTxBatch decodes a shard queue payload.
func DecodeTxBatch(b []byte) (*TxBatch, error) {
	r := &reader{b: b}
	batch := &TxBatch{}
	batch.Epoch = r.uvarint()
	batch.Shard = int(r.varint())
	n := r.count(45)
	if n > 0 {
		batch.Txs = make([]*chain.Tx, 0, n)
	}
	for i := 0; i < n; i++ {
		tx := r.tx()
		if r.err != nil {
			return nil, r.err
		}
		batch.Txs = append(batch.Txs, tx)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return batch, nil
}

// --- Submit / SubmitResp ---

// Submit carries a client transaction from a lookup node to the DS
// committee, tagged with a correlation id for the response.
type Submit struct {
	Corr uint64
	Tx   *chain.Tx
}

// EncodeSubmit encodes a submission.
func EncodeSubmit(s *Submit) ([]byte, error) {
	b := appendUvarint(make([]byte, 0, 128), s.Corr)
	return appendTx(b, s.Tx)
}

// DecodeSubmit decodes a submission payload.
func DecodeSubmit(b []byte) (*Submit, error) {
	r := &reader{b: b}
	s := &Submit{Corr: r.uvarint(), Tx: r.tx()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// SubmitResp answers a Submit: the assigned transaction id, or the
// admission error message.
type SubmitResp struct {
	Corr uint64
	ID   uint64
	Err  string
}

// EncodeSubmitResp encodes a submission response.
func EncodeSubmitResp(s *SubmitResp) []byte {
	b := appendUvarint(make([]byte, 0, 32), s.Corr)
	b = appendUvarint(b, s.ID)
	return appendString(b, s.Err)
}

// DecodeSubmitResp decodes a submission response payload.
func DecodeSubmitResp(b []byte) (*SubmitResp, error) {
	r := &reader{b: b}
	s := &SubmitResp{Corr: r.uvarint(), ID: r.uvarint(), Err: r.string()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- StateQuery / StateResp ---

// StateQuery asks the DS committee for a piece of canonical state:
// Field == "" queries the account at Addr; otherwise the named
// contract field of the contract at Addr, optionally narrowed to one
// map entry by its canonical key.
type StateQuery struct {
	Corr  uint64
	Addr  chain.Address
	Field string
	Key   string
}

// EncodeStateQuery encodes a state query.
func EncodeStateQuery(q *StateQuery) []byte {
	b := appendUvarint(make([]byte, 0, 64), q.Corr)
	b = appendAddr(b, q.Addr)
	b = appendString(b, q.Field)
	return appendString(b, q.Key)
}

// DecodeStateQuery decodes a state query payload.
func DecodeStateQuery(b []byte) (*StateQuery, error) {
	r := &reader{b: b}
	q := &StateQuery{Corr: r.uvarint(), Addr: r.addr(), Field: r.string(), Key: r.string()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

// StateResp answers a StateQuery. For account queries Balance and
// Nonce are set; for field queries Value carries the (possibly
// narrowed) field value. Found is false when the account, contract,
// field, or key does not exist.
type StateResp struct {
	Corr    uint64
	Found   bool
	Balance *big.Int
	Nonce   uint64
	Value   value.Value
	Err     string
}

// EncodeStateResp encodes a state response.
func EncodeStateResp(s *StateResp) ([]byte, error) {
	b := appendUvarint(make([]byte, 0, 64), s.Corr)
	b = appendBool(b, s.Found)
	b = appendBig(b, s.Balance)
	b = appendUvarint(b, s.Nonce)
	b = appendBool(b, s.Value != nil)
	if s.Value != nil {
		var err error
		if b, err = appendValue(b, s.Value); err != nil {
			return nil, err
		}
	}
	return appendString(b, s.Err), nil
}

// DecodeStateResp decodes a state response payload.
func DecodeStateResp(b []byte) (*StateResp, error) {
	r := &reader{b: b}
	s := &StateResp{Corr: r.uvarint(), Found: r.bool(), Balance: r.big(), Nonce: r.uvarint()}
	if r.bool() {
		s.Value = r.value(0)
	}
	s.Err = r.string()
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}
