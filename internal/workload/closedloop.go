package workload

import (
	"errors"

	"cosplit/internal/chain"
	"cosplit/internal/mempool"
	"cosplit/internal/shard"
)

// ClosedLoopResult summarises one closed-loop run: offered vs admitted
// load, the admission-control verdict mix, and what the pipeline did
// with the admitted transactions.
type ClosedLoopResult struct {
	Workload string
	Epochs   int
	// Offered counts submission attempts; Admitted the ones the pool
	// accepted (including replacements).
	Offered  int
	Admitted int
	// Backpressured counts submissions refused with mempool.ErrPoolFull
	// — each one ends the epoch's submission burst early (the closed
	// loop yields to the pipeline instead of hammering a full pool).
	Backpressured int
	// Rejected counts the other admission rejections (underpriced,
	// nonce gap, stale).
	Rejected int
	// Pipeline outcomes, summed over every epoch.
	Committed int
	Failed    int
	Deferred  int
	// Fault-recovery outcomes (all zero unless the network was built
	// with shard.WithFaults): transactions requeued after a lost
	// MicroBlock, PBFT view changes charged, and transactions the
	// availability mask rerouted to DS execution.
	Lost        int
	ViewChanges int
	Escalated   int
	// FinalDepth is the pool depth after the last epoch.
	FinalDepth int
}

// unwindNonce returns a client-side nonce that admission control
// refused, so the sender's next transaction reuses it instead of
// opening a permanent gap in its chain. Only the most recently issued
// nonce can be unwound.
func (e *Env) unwindNonce(a chain.Address, nonce uint64) {
	if e.nonces[a] == nonce {
		e.nonces[a] = nonce - 1
	}
}

// RunClosedLoop drives a workload against a mempool-backed network in
// a closed feedback loop: each epoch it offers up to rate transactions
// through SubmitTx, stops the burst as soon as the pool signals
// backpressure (ErrPoolFull), runs the epoch — which drains a
// gas-price-ordered batch into the dispatcher — and repeats. This is
// the ingestion pattern of a production deployment, where lookup
// nodes shed load at admission instead of queueing unboundedly.
func RunClosedLoop(w *Workload, sharded bool, rate, epochs int, poolCfg mempool.Config, opts ...shard.Option) (*ClosedLoopResult, error) {
	env, err := Provision(w, sharded, append(opts, shard.WithMempool(poolCfg))...)
	if err != nil {
		return nil, err
	}
	return RunClosedLoopEnv(env, w, rate, epochs)
}

// RunClosedLoopEnv is RunClosedLoop on an already provisioned
// environment, for callers that need to touch the network between
// provisioning and driving — attaching a state store, recovering from
// a previous run — before the loop starts. The environment must have
// been provisioned with a mempool.
func RunClosedLoopEnv(env *Env, w *Workload, rate, epochs int) (*ClosedLoopResult, error) {
	res := &ClosedLoopResult{Workload: w.Name, Epochs: epochs}
	for ep := 0; ep < epochs; ep++ {
	submit:
		for i := 0; i < rate; i++ {
			tx := w.Next(env)
			res.Offered++
			_, err := env.Net.SubmitTx(tx)
			switch {
			case err == nil:
				res.Admitted++
			case errors.Is(err, mempool.ErrPoolFull):
				res.Backpressured++
				env.unwindNonce(tx.From, tx.Nonce)
				break submit
			default:
				res.Rejected++
				env.unwindNonce(tx.From, tx.Nonce)
			}
		}
		stats, err := env.Net.RunEpoch()
		if err != nil {
			return nil, err
		}
		res.Committed += stats.Committed
		res.Failed += stats.Failed
		res.Deferred += stats.Deferred
		res.Lost += stats.Lost
		res.ViewChanges += stats.ViewChanges
		res.Escalated += stats.Escalated
	}
	res.FinalDepth = env.Net.Pool().Len()
	return res, nil
}
