package workload_test

import (
	"testing"

	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// smallOpts scales a network down for test runs: generous gas limits,
// no consensus model.
func smallOpts(n int) []shard.Option {
	return []shard.Option{
		shard.WithShards(n),
		shard.WithGasLimits(1<<40, 1<<40),
		shard.WithConsensusModel(false),
	}
}

// TestAllWorkloadsRun provisions every Fig. 14 workload (scaled down)
// in both baseline and CoSplit configurations and checks that a batch
// of generated transactions commits.
func TestAllWorkloadsRun(t *testing.T) {
	for _, proto := range workload.All() {
		name := proto.Name
		for _, sharded := range []bool{false, true} {
			sharded := sharded
			t.Run(name+shardLabel(sharded), func(t *testing.T) {
				w, err := workload.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				w.Users = min(w.Users, 40)
				if name == "CF donate" {
					// Each donor donates at most once; the population
					// must cover the batch.
					w.Users = 120
				}
				if w.SetupSize > 0 {
					w.SetupSize = 200
				}
				env, err := workload.Provision(w, sharded, smallOpts(3)...)
				if err != nil {
					t.Fatalf("Provision: %v", err)
				}
				const batch = 100
				for i := 0; i < batch; i++ {
					env.Net.Submit(w.Next(env))
				}
				committed := 0
				for env.Net.MempoolSize() > 0 {
					stats, err := env.Net.RunEpoch()
					if err != nil {
						t.Fatalf("RunEpoch: %v", err)
					}
					committed += stats.Committed
				}
				// Some workloads legitimately fail a few transactions
				// (e.g. wrap-around NFT transfers); require a solid
				// majority to commit.
				if committed < batch*8/10 {
					t.Errorf("only %d/%d committed", committed, batch)
				}
			})
		}
	}
}

func shardLabel(sharded bool) string {
	if sharded {
		return "/cosplit"
	}
	return "/baseline"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestWorkloadShapes checks the characteristic routing of the paper's
// key workloads at small scale.
func TestWorkloadShapes(t *testing.T) {
	// FT fund: single source → exactly one shard busy.
	w, _ := workload.ByName("FT fund")
	w.Users = 40
	env, err := workload.Provision(w, true, smallOpts(3)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		env.Net.Submit(w.Next(env))
	}
	stats, err := env.Net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, n := range stats.PerShard {
		if n > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Errorf("FT fund used %d shards, want 1 (%v)", busy, stats.PerShard)
	}

	// NFT mint: single source but token-keyed → all shards busy.
	w2, _ := workload.ByName("NFT mint")
	w2.Users = 40
	env2, err := workload.Provision(w2, true, smallOpts(3)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		env2.Net.Submit(w2.Next(env2))
	}
	stats2, err := env2.Net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	for s, n := range stats2.PerShard {
		if n == 0 {
			t.Errorf("NFT mint left shard %d idle: %v", s, stats2.PerShard)
		}
	}

	// ProofIPFS register: most txs need two differently-keyed owners →
	// a large DS share.
	w3, _ := workload.ByName("ProofIPFS register")
	w3.Users = 40
	env3, err := workload.Provision(w3, true, smallOpts(3)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		env3.Net.Submit(w3.Next(env3))
	}
	stats3, err := env3.Net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats3.DSCount < 30 {
		t.Errorf("ProofIPFS register DS count = %d of %d, want a large share",
			stats3.DSCount, stats3.Committed)
	}
}

// TestNonceTrackingConsistent: generated streams never produce nonce
// rejections when fully processed epoch by epoch.
func TestNonceTrackingConsistent(t *testing.T) {
	w, _ := workload.ByName("FT transfer")
	w.Users = 20
	env, err := workload.Provision(w, true, smallOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			env.Net.Submit(w.Next(env))
		}
		for env.Net.MempoolSize() > 0 {
			stats, err := env.Net.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			rejected += stats.Rejected
		}
	}
	if rejected != 0 {
		t.Errorf("%d transactions rejected (nonce bookkeeping broken?)", rejected)
	}
}
