package workload_test

import (
	"testing"

	"cosplit/internal/mempool"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// TestClosedLoopBackpressure runs the FT transfer workload through the
// admission-controlled closed loop with a pool far smaller than the
// offered load: the pool must shed load at admission (backpressure)
// rather than queue unboundedly, and everything admitted must be
// accounted for by the pipeline or still be pending.
func TestClosedLoopBackpressure(t *testing.T) {
	w, err := workload.ByName("FT transfer")
	if err != nil {
		t.Fatal(err)
	}
	w.Users = 60
	res, err := workload.RunClosedLoop(w, true, 200, 4,
		mempool.Config{Capacity: 64, PerSender: 8},
		shard.WithShards(4),
		shard.WithConsensusModel(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 || res.Committed == 0 {
		t.Fatalf("nothing flowed: %+v", res)
	}
	if res.Backpressured == 0 {
		t.Errorf("offered 200/epoch against capacity 64 without backpressure: %+v", res)
	}
	if res.Offered != res.Admitted+res.Backpressured+res.Rejected {
		t.Errorf("offered %d != admitted %d + backpressured %d + rejected %d",
			res.Offered, res.Admitted, res.Backpressured, res.Rejected)
	}
	if res.FinalDepth > 64 {
		t.Errorf("final pool depth %d exceeds capacity 64", res.FinalDepth)
	}
}

// TestClosedLoopDrainsWithoutLoss checks conservation when nothing is
// rejected: with ample capacity every admitted transaction is
// committed, failed, or still pending at the end.
func TestClosedLoopDrainsWithoutLoss(t *testing.T) {
	w, err := workload.ByName("FT transfer")
	if err != nil {
		t.Fatal(err)
	}
	w.Users = 40
	res, err := workload.RunClosedLoop(w, true, 50, 3,
		mempool.Config{Capacity: 4096, PerSender: 256},
		shard.WithShards(2),
		shard.WithConsensusModel(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Backpressured != 0 || res.Rejected != 0 {
		t.Fatalf("unexpected rejections: %+v", res)
	}
	if got := res.Committed + res.Failed + res.FinalDepth; got != res.Admitted {
		t.Errorf("admitted %d but committed %d + failed %d + pending %d = %d",
			res.Admitted, res.Committed, res.Failed, res.FinalDepth, got)
	}
}
