// Package workload implements deterministic transaction-stream
// generators for the eight Fig. 14 workloads of the paper's throughput
// evaluation, plus helpers to stand up the corresponding contracts.
package workload

import (
	"fmt"
	"math/big"
	"math/rand"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
)

// Env is a provisioned benchmark environment: a network, a deployed
// contract, and a user population with client-side nonce tracking.
type Env struct {
	Net      *shard.Network
	Contract chain.Address
	Owner    chain.Address
	Users    []chain.Address
	nonces   map[chain.Address]uint64
	rng      *rand.Rand
	next     uint64 // workload-specific counter (token ids, hashes, ...)
}

// NextNonce returns the next client-side nonce for a sender.
func (e *Env) NextNonce(a chain.Address) uint64 {
	e.nonces[a]++
	return e.nonces[a]
}

// ResyncNonces resets the client-side nonce tracking to the on-chain
// account nonces. Required after recovering the network from a state
// store: the chain is ahead of the freshly provisioned client, so
// genesis-level nonces would all be rejected as stale. Only nonces are
// resynced — workloads whose streams depend on an internal counter
// (minted token ids, registered hashes) may still collide with already
// committed state; pure-transfer workloads resume cleanly.
func (e *Env) ResyncNonces() {
	sync := func(a chain.Address) {
		if acc := e.Net.Accounts.Get(a); acc != nil {
			e.nonces[a] = acc.Nonce
		}
	}
	sync(e.Owner)
	for _, a := range e.Users {
		sync(a)
	}
	for a := range e.nonces {
		sync(a)
	}
}

// Workload is one benchmark workload.
type Workload struct {
	// Name as it appears in Fig. 14 (e.g. "FT transfer").
	Name string
	// Contract is the corpus contract it exercises.
	Contract string
	// Query is the paper's sharding selection; nil-query runs baseline.
	Query signature.Query
	// Users is the benchmark population size.
	Users int
	// SetupSize scales the Setup phase (tokens minted, domains
	// bestowed, donor pool); tests shrink it.
	SetupSize int
	// Seed selects the stream's deterministic random source; 0 means
	// the default seed 1. Determinism suites provision the same
	// workload under several seeds.
	Seed int64
	// Setup submits and settles any prerequisite transactions.
	Setup func(e *Env) error
	// Next generates the next transaction of the stream.
	Next func(e *Env) *chain.Tx
}

func u128(v uint64) value.Int { return value.Uint128(v) }

func hash32(n uint64) value.ByStr {
	b := make([]byte, 32)
	for i := 0; i < 8; i++ {
		b[31-i] = byte(n >> (8 * i))
	}
	return value.ByStr{Ty: ast.TyByStr32, B: b}
}

func u256(n uint64) value.Int {
	return value.Int{Ty: ast.TyUint256, V: new(big.Int).SetUint64(n)}
}

func call(e *Env, from chain.Address, transition string, amount uint64, args map[string]value.Value) *chain.Tx {
	return &chain.Tx{
		Kind:       chain.TxCall,
		From:       from,
		To:         e.Contract,
		Nonce:      e.NextNonce(from),
		Amount:     new(big.Int).SetUint64(amount),
		GasLimit:   100_000,
		GasPrice:   1,
		Transition: transition,
		Args:       args,
	}
}

// settle runs epochs until the mempool drains (used by Setup phases).
func settle(e *Env) error {
	for e.Net.MempoolSize() > 0 {
		if _, err := e.Net.RunEpoch(); err != nil {
			return err
		}
	}
	return nil
}

// Provision builds the environment for a workload on a network built
// from the given options; sharded=false deploys without a signature
// (the baseline configuration of Sec. 5.2).
func Provision(w *Workload, sharded bool, opts ...shard.Option) (*Env, error) {
	net := shard.NewNetwork(opts...)
	deployer := chain.AddrFromUint(1)
	net.CreateUser(deployer, 1<<60)
	users := make([]chain.Address, w.Users)
	for i := range users {
		users[i] = chain.AddrFromUint(uint64(100 + i))
		net.CreateUser(users[i], 1<<50)
	}
	seed := w.Seed
	if seed == 0 {
		seed = 1
	}
	e := &Env{
		Net:    net,
		Owner:  deployer,
		Users:  users,
		nonces: make(map[chain.Address]uint64),
		rng:    rand.New(rand.NewSource(seed)),
	}
	entry, err := contracts.Get(w.Contract)
	if err != nil {
		return nil, err
	}
	var q *signature.Query
	if sharded {
		qq := w.Query
		q = &qq
	}
	addr, err := net.DeployContract(deployer, entry.Source, contractParams(w.Contract, deployer), q)
	if err != nil {
		return nil, err
	}
	e.Contract = addr
	e.nonces[deployer] = 1 // deployment consumed nonce 1
	if w.Setup != nil {
		if err := w.Setup(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// contractParams supplies deployment parameters for each evaluation
// contract.
func contractParams(contract string, owner chain.Address) map[string]value.Value {
	switch contract {
	case "FungibleToken":
		return map[string]value.Value{
			"contract_owner": owner.Value(),
			"token_name":     value.Str{S: "Bench"},
			"token_symbol":   value.Str{S: "BNCH"},
			"decimals":       value.Uint32V(6),
			"init_supply":    u128(1 << 50),
		}
	case "NonfungibleToken":
		return map[string]value.Value{
			"contract_owner": owner.Value(),
			"name":           value.Str{S: "BenchNFT"},
			"symbol":         value.Str{S: "BNFT"},
		}
	case "Crowdfunding":
		return map[string]value.Value{
			"owner":     owner.Value(),
			"max_block": value.BNum{V: big.NewInt(1 << 40)},
			"goal":      u128(1 << 40),
		}
	case "ProofIPFS":
		return map[string]value.Value{
			"initial_admin": owner.Value(),
		}
	case "UDRegistry":
		return map[string]value.Value{
			"registry_owner": owner.Value(),
		}
	}
	panic("unknown contract " + contract)
}

// All returns the eight Fig. 14 workloads, in the figure's order.
func All() []*Workload {
	return []*Workload{
		FTFund(),
		FTTransfer(),
		FTTransferDisjoint(),
		CFDonate(),
		NFTMint(),
		NFTTransfer(),
		ProofIPFSRegister(),
		UDBestow(),
		UDConfig(),
	}
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

var ftQuery = signature.Query{
	Transitions: []string{"Mint", "Transfer", "TransferFrom"},
	WeakReads:   []string{"balances", "allowances"},
}

// FTFund transfers fungible tokens from a single source to random
// destinations; every transaction owns the source balance, so it does
// not shard (the paper's non-scaling case).
func FTFund() *Workload {
	return &Workload{
		Name:     "FT fund",
		Contract: "FungibleToken",
		Query:    ftQuery,
		Users:    200,
		Next: func(e *Env) *chain.Tx {
			to := e.Users[e.rng.Intn(len(e.Users))]
			return call(e, e.Owner, "Transfer", 0, map[string]value.Value{
				"to": to.Value(), "amount": u128(1),
			})
		},
	}
}

// FTTransfer transfers tokens between random users (the paper's
// linearly scaling headline workload).
func FTTransfer() *Workload {
	return &Workload{
		Name:     "FT transfer",
		Contract: "FungibleToken",
		Query:    ftQuery,
		Users:    200,
		Setup: func(e *Env) error {
			for _, u := range e.Users {
				e.Net.Submit(call(e, e.Owner, "Transfer", 0, map[string]value.Value{
					"to": u.Value(), "amount": u128(1 << 30),
				}))
			}
			return settle(e)
		},
		Next: func(e *Env) *chain.Tx {
			from := e.Users[e.rng.Intn(len(e.Users))]
			to := e.Users[e.rng.Intn(len(e.Users))]
			for to == from {
				to = e.Users[e.rng.Intn(len(e.Users))]
			}
			return call(e, from, "Transfer", 0, map[string]value.Value{
				"to": to.Value(), "amount": u128(1),
			})
		},
	}
}

// FTTransferDisjoint transfers tokens between pairwise-disjoint
// sender/recipient pairs: each epoch-sized window of the stream touches
// every user at most once, so every transaction's footprint (sender
// account, sender and recipient token balances) is disjoint from every
// other's. This is the best case for intra-shard parallel execution —
// all-singleton conflict groups — and the workload behind the
// BENCH_epoch intra-parallel rows.
func FTTransferDisjoint() *Workload {
	return &Workload{
		Name:     "FT transfer disjoint",
		Contract: "FungibleToken",
		Query:    ftQuery,
		Users:    4000,
		Setup: func(e *Env) error {
			for i, u := range e.Users {
				e.Net.Submit(call(e, e.Owner, "Transfer", 0, map[string]value.Value{
					"to": u.Value(), "amount": u128(1 << 30),
				}))
				// Settle in batches below the per-epoch capacity so the
				// single funder's nonces never reorder across epochs.
				if (i+1)%2000 == 0 {
					if err := settle(e); err != nil {
						return err
					}
				}
			}
			return settle(e)
		},
		Next: func(e *Env) *chain.Tx {
			n := uint64(len(e.Users))
			p := e.next
			e.next++
			from := e.Users[(2*p)%n]
			to := e.Users[(2*p+1)%n]
			return call(e, from, "Transfer", 0, map[string]value.Value{
				"to": to.Value(), "amount": u128(1),
			})
		},
	}
}

// CFDonate has random users donate to the crowdfunding campaign.
func CFDonate() *Workload {
	w := &Workload{
		Name:     "CF donate",
		Contract: "Crowdfunding",
		Query: signature.Query{
			Transitions: []string{"Donate", "ClaimBack"},
			WeakReads:   []string{signature.BalanceField},
		},
		Users:     100_000,
		SetupSize: 100_000,
	}
	w.Next = func(e *Env) *chain.Tx {
		// Each donor may donate once; walk the population.
		u := e.Users[e.next%uint64(len(e.Users))]
		e.next++
		return call(e, u, "Donate", 10, nil)
	}
	return w
}

var nftQuery = signature.Query{
	Transitions: []string{"Mint", "Transfer"},
	WeakReads:   []string{"owned_count", "total_tokens"},
}

// NFTMint mints fresh tokens from the single minter account; state is
// keyed by token id, so even this single-source workload scales
// (Sec. 5.2.1).
func NFTMint() *Workload {
	return &Workload{
		Name:     "NFT mint",
		Contract: "NonfungibleToken",
		Query:    nftQuery,
		Users:    200,
		Next: func(e *Env) *chain.Tx {
			e.next++
			to := e.Users[e.rng.Intn(len(e.Users))]
			return call(e, e.Owner, "Mint", 0, map[string]value.Value{
				"to": to.Value(), "token_id": u256(e.next),
			})
		},
	}
}

// NFTTransfer transfers previously minted tokens between users. Each
// token is transferred exactly once by its minted owner: transfer
// chains would be sensitive to deferral reordering under the relaxed
// nonce rule (a deferred low-nonce transaction is rejected once a
// higher nonce from the same sender commits in another shard), which
// is protocol-correct but not what a throughput benchmark should
// measure. The large user pool keeps per-sender in-flight counts low.
func NFTTransfer() *Workload {
	w := &Workload{
		Name:      "NFT transfer",
		Contract:  "NonfungibleToken",
		Query:     nftQuery,
		Users:     20_000,
		SetupSize: 100_000,
	}
	w.Setup = func(e *Env) error {
		tokens := uint64(w.SetupSize)
		for i := uint64(1); i <= tokens; i++ {
			to := e.Users[int(i)%len(e.Users)]
			e.Net.Submit(call(e, e.Owner, "Mint", 0, map[string]value.Value{
				"to": to.Value(), "token_id": u256(i),
			}))
			// Settle in batches below the per-epoch capacity so the
			// single minter's nonces never reorder across epochs.
			if i%2000 == 0 {
				if err := settle(e); err != nil {
					return err
				}
			}
		}
		return settle(e)
	}
	w.Next = func(e *Env) *chain.Tx {
		tokens := uint64(w.SetupSize)
		e.next++
		id := (e.next-1)%tokens + 1
		owner := e.Users[int(id)%len(e.Users)] // minted to user (id % len)
		to := e.Users[e.rng.Intn(len(e.Users))]
		return call(e, owner, "Transfer", 0, map[string]value.Value{
			"to": to.Value(), "token_id": u256(id), "token_owner": owner.Value(),
		})
	}
	return w
}

// ProofIPFSRegister notarises fresh hashes from random users. Its two
// ownership constraints usually resolve to different shards, so most
// registrations go to the DS committee (the paper's second
// non-scaling case).
func ProofIPFSRegister() *Workload {
	return &Workload{
		Name:     "ProofIPFS register",
		Contract: "ProofIPFS",
		Query: signature.Query{
			Transitions: []string{"RegisterOwnership"},
			WeakReads:   []string{"collected", "item_count", signature.BalanceField},
		},
		Users: 200,
		Next: func(e *Env) *chain.Tx {
			e.next++
			u := e.Users[e.rng.Intn(len(e.Users))]
			return call(e, u, "RegisterOwnership", 0, map[string]value.Value{
				"item_hash": hash32(e.next),
			})
		},
	}
}

var udQuery = signature.Query{
	Transitions: []string{"Bestow", "Configure", "ConfigureResolver"},
}

// UDBestow grants fresh domains (admin-driven, keyed by domain node).
func UDBestow() *Workload {
	return &Workload{
		Name:     "UD bestow",
		Contract: "UDRegistry",
		Query:    udQuery,
		Users:    200,
		Next: func(e *Env) *chain.Tx {
			e.next++
			owner := e.Users[e.rng.Intn(len(e.Users))]
			return call(e, e.Owner, "Bestow", 0, map[string]value.Value{
				"node": hash32(e.next), "owner": owner.Value(),
			})
		},
	}
}

// UDConfig updates records of previously bestowed domains.
func UDConfig() *Workload {
	w := &Workload{
		Name:      "UD config",
		Contract:  "UDRegistry",
		Query:     udQuery,
		Users:     20_000,
		SetupSize: 20_000,
	}
	w.Setup = func(e *Env) error {
		domains := uint64(w.SetupSize)
		for i := uint64(1); i <= domains; i++ {
			owner := e.Users[int(i)%len(e.Users)]
			e.Net.Submit(call(e, e.Owner, "Bestow", 0, map[string]value.Value{
				"node": hash32(i), "owner": owner.Value(),
			}))
			// Settle in capacity-sized batches (single-admin nonces).
			if i%2000 == 0 {
				if err := settle(e); err != nil {
					return err
				}
			}
		}
		return settle(e)
	}
	w.Next = func(e *Env) *chain.Tx {
		domains := uint64(w.SetupSize)
		e.next++
		id := (e.next % domains) + 1
		owner := e.Users[int(id)%len(e.Users)]
		return call(e, owner, "Configure", 0, map[string]value.Value{
			"node":  hash32(id),
			"owner": owner.Value(),
			"key":   value.Str{S: fmt.Sprintf("key%d", e.next%4)},
			"val":   value.Str{S: fmt.Sprintf("val%d", e.next)},
		})
	}
	return w
}
