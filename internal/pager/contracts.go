package pager

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
	"cosplit/internal/wire"
)

// contractBaseBytes is the fixed overhead charged per resident
// contract state (MemState struct, field map header).
const contractBaseBytes = 512

// Pager implements chain.ContractPager: the contract side of the
// shared LRU. A contract's canonical state is one paging unit; while
// under a pager, Contract.State is read and written only with p.mu
// held — the pager's lock is the sole residency authority, so there is
// no lock ordering against the contract's own mutex to get wrong.

// Admit implements chain.ContractPager: it registers a contract whose
// resident state the pager should start tracking (deployment, or
// pager attach). The state is marked dirty — nothing is durable until
// the next flush.
func (p *Pager) Admit(c *chain.Contract) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.contractUnit(c)
	if c.State == nil {
		return
	}
	if p.inLRU(u) {
		p.resident -= u.bytes
	}
	u.bytes = estStateBytes(c.State)
	u.dirty = true
	p.resident += u.bytes
	p.lruFront(u)
	p.evictTo(u)
	p.updateGauges()
}

// Acquire implements chain.ContractPager: it returns the canonical
// state, faulting it from disk if evicted. Mid-run read failures are
// unrecoverable (Snapshot has no error path) and panic with context.
func (p *Pager) Acquire(c *chain.Contract) *eval.MemState {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.contractUnit(c)
	if c.State != nil {
		if !p.inLRU(u) {
			// Resident but uncounted (fresh or rebound unit): admit it to
			// the budget before bumping it.
			u.bytes = estStateBytes(c.State)
			u.dirty = true
			p.resident += u.bytes
		}
		p.hits.Inc()
		p.lruFront(u)
		p.evictTo(u)
		return c.State
	}
	if u.ver == 0 {
		panic(fmt.Sprintf("pager: contract %s evicted with no disk copy", c.Addr))
	}
	start := time.Now()
	st, err := p.readContractState(c, u.ver)
	if err != nil {
		panic(fmt.Sprintf("pager: contract state fault: %v", err))
	}
	c.State = st
	u.bytes = estStateBytes(st)
	u.dirty = false
	p.resident += u.bytes
	p.faults.Inc()
	p.faultTime.ObserveDuration(time.Since(start))
	p.lruFront(u)
	p.evictTo(u)
	p.updateGauges()
	return st
}

// Replace implements chain.ContractPager: it installs a new canonical
// state (the DS committee's merge result at epoch end) and marks it
// dirty.
func (p *Pager) Replace(c *chain.Contract, st *eval.MemState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.contractUnit(c)
	if c.State != nil {
		p.resident -= u.bytes
	}
	c.State = st
	u.bytes = estStateBytes(st)
	u.dirty = true
	p.resident += u.bytes
	p.lruFront(u)
	p.evictTo(u)
	p.updateGauges()
}

// inLRU reports whether u is linked into the LRU list (resident and
// counted).
func (p *Pager) inLRU(u *unit) bool {
	return p.head == u || u.prev != nil || u.next != nil
}

// contractUnit returns (creating if needed) the unit for c, rebinding
// it to c: a recovered cluster replica re-runs genesis, producing new
// Contract values at the same addresses, and the unit must follow the
// live one — an eviction writing through a stale pointer would
// persist a dead replica's state. If the old binding's state was
// resident and counted, the accounting moves with it. Called with
// p.mu held.
func (p *Pager) contractUnit(c *chain.Contract) *unit {
	u := p.contracts[c.Addr]
	if u == nil {
		u = &unit{kind: kindContract, c: c}
		p.contracts[c.Addr] = u
		return u
	}
	if u.c != c {
		if p.inLRU(u) {
			p.lruRemove(u)
			p.resident -= u.bytes
			u.bytes = 0
			u.dirty = false
		}
		u.c = c
	}
	return u
}

// readContractState reads, decodes, and rebuilds one contract's state
// from its page file — the same field-decoding path snapshot restore
// uses, so a faulted state is value-identical to the evicted one and
// roots are preserved by construction.
func (p *Pager) readContractState(c *chain.Contract, ver uint64) (*eval.MemState, error) {
	b, err := os.ReadFile(filepath.Join(p.dir, contractPageName(c.Addr, ver)))
	if err != nil {
		return nil, err
	}
	typ, payload, rest, err := wire.DecodeFrame(b)
	if err != nil {
		return nil, err
	}
	if typ != wire.MsgContractPage || len(rest) != 0 {
		return nil, fmt.Errorf("%w: contract page file holds %v record (+%d trailing bytes)", ErrCorruptIndex, typ, len(rest))
	}
	page, err := wire.DecodeContractPage(payload)
	if err != nil {
		return nil, err
	}
	if page.Addr != c.Addr || page.Version != ver {
		return nil, fmt.Errorf("%w: contract page says %s v%d, expected %s v%d",
			ErrCorruptIndex, page.Addr, page.Version, c.Addr, ver)
	}
	st := eval.NewMemState(c.Checked.FieldTypes)
	for name, v := range page.Fields {
		if _, ok := c.Checked.FieldTypes[name]; !ok {
			return nil, fmt.Errorf("%w: contract %s page has unknown field %q", ErrCorruptIndex, c.Addr, name)
		}
		st.Fields[name] = v
	}
	return st, nil
}

// estStateBytes approximates a contract state's resident footprint.
func estStateBytes(st *eval.MemState) int64 {
	n := int64(contractBaseBytes)
	for name, v := range st.Fields {
		n += int64(len(name)) + 48 + estValueBytes(v)
	}
	return n
}

// estValueBytes walks a value, summing struct headers, string bytes,
// big.Int limbs, and map-entry overheads.
func estValueBytes(v value.Value) int64 {
	switch t := v.(type) {
	case value.Int:
		n := int64(64)
		if t.V != nil {
			n += int64(len(t.V.Bits()) * 8)
		}
		return n
	case value.Str:
		return 32 + int64(len(t.S))
	case value.ByStr:
		return 56 + int64(len(t.B))
	case value.BNum:
		n := int64(48)
		if t.V != nil {
			n += int64(len(t.V.Bits()) * 8)
		}
		return n
	case value.ADT:
		n := int64(96) + int64(len(t.TypeName)+len(t.Constr))
		for _, a := range t.Args {
			n += estValueBytes(a)
		}
		return n
	case *value.Map:
		n := int64(96)
		for k, mv := range t.Entries {
			n += int64(2*len(k)) + 96 + estValueBytes(mv)
		}
		for _, kv := range t.KeyVals {
			n += estValueBytes(kv)
		}
		return n
	default:
		return 128
	}
}
