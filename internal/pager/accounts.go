package pager

import (
	"math/big"

	"cosplit/internal/chain"
)

// pageBaseBytes is the fixed overhead charged per resident account
// page (map header, unit bookkeeping).
const pageBaseBytes = 256

// estAccountBytes approximates one account's resident footprint: the
// map entry (20-byte key, pointer, bucket share), the Account struct,
// and the big.Int balance's header plus limbs. An estimate is enough —
// the budget bounds the cache, it does not meter allocations.
func estAccountBytes(balance *big.Int) int64 {
	n := int64(120)
	if balance != nil {
		n += int64(len(balance.Bits()) * 8)
	}
	return n
}

// accountBackend implements chain.AccountBackend on a Pager. Calls
// arrive under the account table's lock, but read-locked callers run
// concurrently and faulting mutates the cache, so every method takes
// the pager's own lock.
type accountBackend struct {
	p *Pager
}

func (b *accountBackend) Load(addr chain.Address) *chain.Account {
	p := b.p
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accountPage(p.pageOf(addr)).m[addr]
}

func (b *accountBackend) Mutate(addr chain.Address) *chain.Account {
	p := b.p
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.accountPage(p.pageOf(addr))
	acc := u.m[addr]
	if acc != nil {
		u.dirty = true
	}
	return acc
}

func (b *accountBackend) Store(addr chain.Address, acc *chain.Account) {
	p := b.p
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.accountPage(p.pageOf(addr))
	delta := estAccountBytes(acc.Balance)
	if old, exists := u.m[addr]; exists {
		delta -= estAccountBytes(old.Balance)
	} else {
		p.accCount++
	}
	u.m[addr] = acc
	u.bytes += delta
	p.resident += delta
	u.dirty = true
	p.lruFront(u)
	p.evictTo(u)
	p.updateGauges()
}

func (b *accountBackend) Len() int {
	p := b.p
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.accCount)
}

// Range streams the account set one page at a time in page-id order
// (globally grouped by address prefix, unordered within a page). Each
// page's entries are collected under the pager lock, then f runs with
// the lock released — so f may take as long as it likes, and a fault
// inside f (it must not call back into the backend, per the
// AccountBackend contract) cannot deadlock. At most one page beyond
// the budget is resident at a time, so a full walk of a beyond-RAM
// table stays bounded.
func (b *accountBackend) Range(f func(chain.Address, *chain.Account) bool) {
	p := b.p
	p.mu.Lock()
	pids := p.sortedPageIDs()
	p.mu.Unlock()
	type ent struct {
		addr chain.Address
		acc  *chain.Account
	}
	var scratch []ent
	for _, pid := range pids {
		p.mu.Lock()
		u := p.accountPage(pid)
		scratch = scratch[:0]
		for addr, acc := range u.m {
			scratch = append(scratch, ent{addr, acc})
		}
		p.mu.Unlock()
		for _, e := range scratch {
			if !f(e.addr, e.acc) {
				return
			}
		}
	}
}
