package pager

import (
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/obs"
	"cosplit/internal/shard"
)

// newPagedAccounts opens a pager over dir and adopts a fresh account
// table onto it.
func newPagedAccounts(t *testing.T, dir string, opts ...Option) (*Pager, *chain.Accounts) {
	t.Helper()
	p, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	accounts := chain.NewAccounts()
	p.Adopt(accounts, chain.NewContracts())
	return p, accounts
}

func TestAccountsPageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Budget far below the working set so eviction and faulting are
	// exercised constantly.
	p, accounts := newPagedAccounts(t, dir,
		WithBudget(16<<10), WithPageCount(16), WithRegistry(reg))

	const n = 2000
	for i := uint64(0); i < n; i++ {
		accounts.Create(chain.AddrFromUint(i), 1000+i, false)
	}
	if got := accounts.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := uint64(0); i < n; i++ {
		acc := accounts.Get(chain.AddrFromUint(i))
		if acc == nil {
			t.Fatalf("account %d missing after paging", i)
		}
		if want := new(big.Int).SetUint64(1000 + i); acc.Balance.Cmp(want) != 0 {
			t.Fatalf("account %d balance = %v, want %v", i, acc.Balance, want)
		}
	}
	if rb := p.ResidentBytes(); rb > 32<<10 {
		t.Fatalf("resident bytes %d far above the 16KiB budget", rb)
	}
	snap := reg.Snapshot()
	if snap.Counters["pager.evictions"] == 0 {
		t.Fatalf("no evictions under a 16KiB budget with %d accounts", n)
	}
	if snap.Counters["pager.faults"] == 0 {
		t.Fatalf("no page faults under a 16KiB budget with %d accounts", n)
	}

	// Range must see every account exactly once, faulting pages as it
	// streams.
	seen := make(map[chain.Address]bool, n)
	accounts.Range(func(a chain.Address, acc *chain.Account) bool {
		if seen[a] {
			t.Fatalf("Range visited %s twice", a)
		}
		seen[a] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("Range visited %d accounts, want %d", len(seen), n)
	}
}

func TestFlushRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, accounts := newPagedAccounts(t, dir, WithBudget(16<<10), WithPageCount(16))

	const n = 500
	for i := uint64(0); i < n; i++ {
		accounts.Create(chain.AddrFromUint(i), 7*i, false)
	}
	cp := shard.Checkpoint{Epoch: 3, BlockNumber: 12, NextTxID: 900}
	if err := p.Flush(cp, "roothash"); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Reopen cold: a fresh pager and a fresh (empty) table, as recovery
	// does after re-running genesis — here genesis is empty, so
	// ResetToDisk simply installs the committed state.
	p2, accounts2 := newPagedAccounts(t, dir, WithBudget(16<<10))
	gotCP, gotRoot, ok := p2.Checkpoint()
	if !ok || gotCP != cp || gotRoot != "roothash" {
		t.Fatalf("Checkpoint = %+v %q %v, want %+v %q true", gotCP, gotRoot, ok, cp, "roothash")
	}
	if err := p2.ResetToDisk(); err != nil {
		t.Fatalf("ResetToDisk: %v", err)
	}
	if got := accounts2.Len(); got != n {
		t.Fatalf("recovered Len = %d, want %d", got, n)
	}
	for i := uint64(0); i < n; i++ {
		acc := accounts2.Get(chain.AddrFromUint(i))
		if acc == nil {
			t.Fatalf("account %d missing after recovery", i)
		}
		if want := new(big.Int).SetUint64(7 * i); acc.Balance.Cmp(want) != 0 {
			t.Fatalf("account %d balance = %v, want %v", i, acc.Balance, want)
		}
	}
}

func TestUnflushedWritesDiscardedOnReopen(t *testing.T) {
	dir := t.TempDir()
	p, accounts := newPagedAccounts(t, dir, WithBudget(8<<10), WithPageCount(8))

	for i := uint64(0); i < 300; i++ {
		accounts.Create(chain.AddrFromUint(i), i, false)
	}
	if err := p.Flush(shard.Checkpoint{Epoch: 1}, "r1"); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Dirty the state past the flush; evictions write orphan files.
	for i := uint64(300); i < 900; i++ {
		accounts.Create(chain.AddrFromUint(i), i, false)
	}

	// "Crash": reopen without flushing. The committed index still says
	// 300 accounts; orphan page files are swept.
	p2, accounts2 := newPagedAccounts(t, dir, WithBudget(8<<10))
	if err := p2.ResetToDisk(); err != nil {
		t.Fatalf("ResetToDisk: %v", err)
	}
	if got := accounts2.Len(); got != 300 {
		t.Fatalf("Len after crash-reopen = %d, want 300", got)
	}
	if acc := accounts2.Get(chain.AddrFromUint(450)); acc != nil {
		t.Fatalf("unflushed account survived crash-reopen")
	}

	// Every remaining page file must be referenced by the index.
	ix, err := p2.readIndex()
	if err != nil {
		t.Fatalf("readIndex: %v", err)
	}
	indexed := make(map[string]bool)
	for _, e := range ix.Accounts {
		indexed[accPageName(e.PageID, e.Version)] = true
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".pg") && !indexed[e.Name()] {
			t.Fatalf("orphan page file %s survived sweep", e.Name())
		}
	}
}

func TestPageFileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	p, accounts := newPagedAccounts(t, dir, WithPageCount(4))
	for i := uint64(0); i < 50; i++ {
		accounts.Create(chain.AddrFromUint(i), i, false)
	}
	if err := p.Flush(shard.Checkpoint{Epoch: 1}, "r"); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Flip a byte in the middle of some page file.
	ents, _ := os.ReadDir(dir)
	var page string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "a") && strings.HasSuffix(e.Name(), ".pg") {
			page = filepath.Join(dir, e.Name())
			break
		}
	}
	if page == "" {
		t.Fatal("no account page file written")
	}
	b, err := os.ReadFile(page)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(page, b, 0o666); err != nil {
		t.Fatal(err)
	}

	p2, accounts2 := newPagedAccounts(t, dir)
	if err := p2.ResetToDisk(); err != nil {
		t.Fatalf("ResetToDisk: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("faulting a corrupt page did not panic")
		}
	}()
	for i := uint64(0); i < 50; i++ {
		accounts2.Get(chain.AddrFromUint(i))
	}
}

func TestSetBackendMigratesExistingAccounts(t *testing.T) {
	dir := t.TempDir()
	accounts := chain.NewAccounts()
	const n = 400
	for i := uint64(0); i < n; i++ {
		accounts.Create(chain.AddrFromUint(i), i+1, false)
	}
	p, err := Open(dir, WithBudget(8<<10), WithPageCount(8))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p.Adopt(accounts, chain.NewContracts())
	if got := accounts.Len(); got != n {
		t.Fatalf("Len after migration = %d, want %d", got, n)
	}
	if err := p.Flush(shard.Checkpoint{Epoch: 1}, "r"); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := p.AccountCount(); got != n {
		t.Fatalf("AccountCount = %d, want %d", got, n)
	}
	for i := uint64(0); i < n; i++ {
		acc := accounts.Get(chain.AddrFromUint(i))
		if acc == nil || acc.Balance.Uint64() != i+1 {
			t.Fatalf("migrated account %d wrong: %+v", i, acc)
		}
	}
}
