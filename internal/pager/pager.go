// Package pager is the disk-backed, page-structured backing store
// behind chain.Accounts and contract canonical state: it inverts the
// assumption that state is a resident Go map, so a network's account
// population can exceed RAM.
//
// State is split into fixed-size partitions:
//
//   - Account pages. A page table of PageCount (power of two) pages
//     partitions the address space by address prefix — page id =
//     the top log2(PageCount) bits of the address — so bulk loads in
//     sorted address order fill one page at a time. Each page holds
//     the decoded accounts of its partition.
//   - Contract states. Each deployed contract's canonical field state
//     pages as one unit (the merge pipeline materialises whole
//     contract states per touched contract anyway, so sub-contract
//     granularity would buy nothing).
//
// Resident pages live in one LRU list bounded by a byte budget.
// Faults decode a page file into the cache; evictions write dirty
// pages out (versioned files) and drop clean ones. Eviction never
// invalidates a pointer handed out earlier: readers keep their
// reference, the pager merely stops counting it ("pin by reference").
// The incremental root trie (internal/trie) stays the sole root
// authority and is never paged — eviction cannot change roots because
// a faulted page decodes to exactly the bytes the eviction wrote.
//
// Durability follows the store's fsync points. Page files written
// mid-window (dirty evictions) are invisible orphans until Flush
// writes the index: Flush writes out every remaining dirty page,
// fsyncs all files written since the last flush, then atomically
// replaces pages.idx (temp + fsync + rename + directory fsync). A
// crash at any point recovers to the previous index's state — the
// journal tail above it replays through the ordinary replay path.
package pager

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/obs"
	"cosplit/internal/shard"
	"cosplit/internal/wire"
)

// indexName is the atomically-replaced page index inside a paged dir.
const indexName = "pages.idx"

// DefaultBudget is the default page-cache byte budget (128 MB — the
// tentpole's target for the million-account state).
const DefaultBudget = 128 << 20

// DefaultPageCount is the default account page-table size.
const DefaultPageCount = 4096

// ErrCorruptIndex reports a page index or page file recovery cannot
// use: truncated, version mismatch, or referencing missing pages.
var ErrCorruptIndex = errors.New("pager: corrupt page index")

// unitKind discriminates the two page flavours in the LRU.
type unitKind uint8

const (
	kindAccounts unitKind = iota
	kindContract
)

// unit is one cached page: either an account partition or a contract
// state. Units form the intrusive LRU list; account units exist only
// while resident, contract units persist for the contract's lifetime
// (tracking its on-disk version) and join the LRU while resident.
type unit struct {
	prev, next *unit
	kind       unitKind

	pid uint32                           // kindAccounts
	m   map[chain.Address]*chain.Account // kindAccounts, resident map

	c *chain.Contract // kindContract

	bytes int64  // estimated resident footprint
	dirty bool   // resident content newer than disk
	ver   uint64 // on-disk version; 0 = no disk copy
}

// diskPage records an account page's committed on-disk copy.
type diskPage struct {
	ver   uint64
	count uint64
}

// Pager owns a paged state directory: the page files, the index, the
// LRU cache, and the version counter. One Pager serves one network;
// every method is safe for concurrent use (calls arrive concurrently
// from readers holding the account table's read lock).
type Pager struct {
	mu  sync.Mutex
	dir string

	budget    int64
	pageCount uint32
	shift     uint // 32 - log2(pageCount)

	nextVer  uint64
	accPages map[uint32]*unit    // resident account pages
	diskAcc  map[uint32]diskPage // committed on-disk account pages
	accCount int64

	contracts map[chain.Address]*unit // all admitted contracts

	head, tail *unit // LRU: head = most recent
	resident   int64

	cp        shard.Checkpoint
	root      string
	haveIndex bool

	unsynced []string // page files written since the last flush
	garbage  []string // superseded files, deleted after the next index commit

	backend *accountBackend

	hits, faults, evictions, writebacks *obs.Counter
	residentBytes, residentUnits        *obs.Gauge
	faultTime                           *obs.Histogram
}

// Option configures a Pager at Open time.
type Option func(*Pager)

// WithBudget sets the page-cache byte budget. The cache may exceed it
// transiently by one page (the page being faulted is never its own
// eviction victim). Values <= 0 fall back to DefaultBudget.
func WithBudget(n int64) Option {
	return func(p *Pager) {
		if n > 0 {
			p.budget = n
		}
	}
}

// WithPageCount sets the account page-table size; rounded up to a
// power of two. An existing directory's index overrides it — the
// geometry is fixed when the first index is written.
func WithPageCount(n int) Option {
	return func(p *Pager) {
		if n > 0 {
			p.pageCount = ceilPow2(uint32(n))
		}
	}
}

// WithRegistry counts the pager's metrics (hits, faults, evictions,
// write-backs, resident bytes/pages, fault latency) in reg instead of
// a private registry.
func WithRegistry(reg *obs.Registry) Option {
	return func(p *Pager) { p.metrics(reg) }
}

func (p *Pager) metrics(reg *obs.Registry) {
	p.hits = reg.Counter("pager.hits")
	p.faults = reg.Counter("pager.faults")
	p.evictions = reg.Counter("pager.evictions")
	p.writebacks = reg.Counter("pager.writebacks")
	p.residentBytes = reg.Gauge("pager.resident_bytes")
	p.residentUnits = reg.Gauge("pager.resident_units")
	p.faultTime = reg.TimeHistogram("pager.fault_time")
}

// Open opens (creating if needed) a paged state directory. If an index
// exists its geometry, checkpoint, and page table are loaded — the
// committed state stays on disk until faulted — and files no index
// references (orphans of a crashed window) are swept.
func Open(dir string, opts ...Option) (*Pager, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	p := &Pager{
		dir:       dir,
		budget:    DefaultBudget,
		pageCount: DefaultPageCount,
		nextVer:   1,
		accPages:  make(map[uint32]*unit),
		diskAcc:   make(map[uint32]diskPage),
		contracts: make(map[chain.Address]*unit),
	}
	p.backend = &accountBackend{p: p}
	p.metrics(obs.NewRegistry())
	for _, o := range opts {
		o(p)
	}
	if err := p.loadIndex(); err != nil {
		return nil, err
	}
	p.shift = shiftFor(p.pageCount)
	if err := p.sweepOrphans(); err != nil {
		return nil, err
	}
	return p, nil
}

// Checkpoint returns the committed index's checkpoint and root, and
// whether an index exists at all.
func (p *Pager) Checkpoint() (shard.Checkpoint, string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cp, p.root, p.haveIndex
}

// AccountCount returns the total number of accounts (resident or not).
func (p *Pager) AccountCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accCount
}

// ResidentBytes returns the cache's current estimated footprint.
func (p *Pager) ResidentBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// Backend returns the pager's chain.AccountBackend, for wiring a
// network's account table onto the pager from birth
// (chain.NewAccountsOn) so a huge genesis population pages to disk as
// it is provisioned instead of materialising first.
func (p *Pager) Backend() chain.AccountBackend { return p.backend }

// Adopt swaps a network's account table onto this pager and puts its
// contracts' canonical state under pager management. Existing accounts
// migrate in sorted address order (pages fill sequentially, so a
// genesis population streams to disk instead of thrashing) and
// everything is marked dirty — nothing is durable until the first
// Flush. Idempotent: a table already on this pager's backend (or a
// registry already attached) is left alone, so wiring at NewNetwork
// time and adopting again at recovery compose. Recovery follows with
// ResetToDisk when a committed index exists.
func (p *Pager) Adopt(accounts *chain.Accounts, contracts *chain.Contracts) {
	accounts.SetBackend(p.backend)
	contracts.AttachPager(p)
}

// ResetToDisk discards every unflushed write and adopts the committed
// index as the sole truth: resident account pages are dropped (the
// indexed versions fault back on demand), contract states covered by
// the index are evicted without write-back, and the version counter
// resumes past the index's. Recovery calls it after Adopt so the
// re-run genesis population is replaced by the committed on-disk
// state. Without an index it is a no-op — the genesis population
// stands, exactly as a first run.
func (p *Pager) ResetToDisk() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.haveIndex {
		return nil
	}
	ix, err := p.readIndex()
	if err != nil {
		return err
	}
	// Drop all resident account pages without write-back.
	for pid, u := range p.accPages {
		p.lruRemove(u)
		p.resident -= u.bytes
		delete(p.accPages, pid)
	}
	p.diskAcc = make(map[uint32]diskPage, len(ix.Accounts))
	p.accCount = 0
	for _, e := range ix.Accounts {
		p.diskAcc[e.PageID] = diskPage{ver: e.Version, count: e.Count}
		p.accCount += int64(e.Count)
	}
	// Contracts named by the index drop their re-run genesis state and
	// fault from disk; contracts the index never saw keep it (they can
	// only exist if the original run never flushed them, which a
	// deterministic genesis makes impossible — but keeping is safe).
	byAddr := make(map[chain.Address]uint64, len(ix.Contracts))
	for _, e := range ix.Contracts {
		byAddr[e.Addr] = e.Version
	}
	for addr, u := range p.contracts {
		ver, ok := byAddr[addr]
		if !ok {
			continue
		}
		if u.c.State != nil {
			p.lruRemove(u)
			p.resident -= u.bytes
			u.c.State = nil
		}
		u.ver = ver
		u.dirty = false
	}
	if ix.NextVersion > p.nextVer {
		p.nextVer = ix.NextVersion
	}
	p.unsynced = p.unsynced[:0]
	p.garbage = p.garbage[:0]
	p.updateGauges()
	return p.sweepOrphansLocked()
}

// Flush commits the current state to disk as the new index: every
// dirty page is written out, all page files written since the last
// flush are fsynced, and the index — naming the checkpoint, the root,
// and every page's committed version — atomically replaces the old
// one. Superseded page files are deleted afterwards. The caller (the
// store) invokes Flush after the journal fsync for the same epoch, so
// the on-disk ordering is: journal record, page files, index.
func (p *Pager) Flush(cp shard.Checkpoint, root string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, u := range p.accPages {
		if u.dirty {
			if err := p.writeUnit(u); err != nil {
				return err
			}
		}
	}
	for _, u := range p.contracts {
		if u.dirty {
			if err := p.writeUnit(u); err != nil {
				return err
			}
		}
	}
	for _, name := range p.unsynced {
		if err := syncFile(filepath.Join(p.dir, name)); err != nil {
			return fmt.Errorf("pager: flush: %w", err)
		}
	}
	p.unsynced = p.unsynced[:0]

	ix := &wire.PageIndex{
		Checkpoint:  cp,
		Root:        root,
		PageCount:   p.pageCount,
		NextVersion: p.nextVer,
	}
	for pid, d := range p.diskAcc {
		ix.Accounts = append(ix.Accounts, wire.PageIndexAccounts{PageID: pid, Version: d.ver, Count: d.count})
	}
	for addr, u := range p.contracts {
		if u.ver != 0 {
			ix.Contracts = append(ix.Contracts, wire.PageIndexContract{Addr: addr, Version: u.ver})
		}
	}
	if err := p.writeIndex(ix); err != nil {
		return err
	}
	p.cp, p.root, p.haveIndex = cp, root, true
	for _, name := range p.garbage {
		os.Remove(filepath.Join(p.dir, name))
	}
	p.garbage = p.garbage[:0]
	return nil
}

// Close releases nothing durable — unflushed writes are intentionally
// discarded (recovery replays the journal tail). It exists so callers
// can treat the pager like the store's other resources.
func (p *Pager) Close() error { return nil }

// --- cache internals (all called with p.mu held) ---

// lruFront moves u to the most-recently-used position, inserting it if
// absent.
func (p *Pager) lruFront(u *unit) {
	if p.head == u {
		return
	}
	p.lruRemove(u)
	u.next = p.head
	if p.head != nil {
		p.head.prev = u
	}
	p.head = u
	if p.tail == nil {
		p.tail = u
	}
}

// lruRemove unlinks u if linked.
func (p *Pager) lruRemove(u *unit) {
	if p.head != u && u.prev == nil && u.next == nil {
		return
	}
	if u.prev != nil {
		u.prev.next = u.next
	} else {
		p.head = u.next
	}
	if u.next != nil {
		u.next.prev = u.prev
	} else {
		p.tail = u.prev
	}
	u.prev, u.next = nil, nil
}

// evictTo evicts least-recently-used units (never keep) until the
// resident footprint fits the budget or nothing evictable remains.
func (p *Pager) evictTo(keep *unit) {
	for p.resident > p.budget {
		victim := p.tail
		for victim == keep {
			victim = victim.prev
		}
		if victim == nil {
			return
		}
		if err := p.evict(victim); err != nil {
			// An eviction write failure is unrecoverable mid-run: the
			// budget cannot be honoured without losing committed state.
			panic(fmt.Sprintf("pager: eviction write-back: %v", err))
		}
	}
}

// evict writes u back if dirty, then drops its resident content.
func (p *Pager) evict(u *unit) error {
	if u.dirty {
		if err := p.writeUnit(u); err != nil {
			return err
		}
	}
	p.lruRemove(u)
	p.resident -= u.bytes
	switch u.kind {
	case kindAccounts:
		delete(p.accPages, u.pid)
		u.m = nil
	case kindContract:
		u.c.State = nil
	}
	p.evictions.Inc()
	p.updateGauges()
	return nil
}

// writeUnit writes u's current content as a fresh page-file version
// (not fsynced — Flush syncs in batch) and retires the old version to
// the garbage list.
func (p *Pager) writeUnit(u *unit) error {
	ver := p.nextVer
	p.nextVer++
	var name string
	var frame []byte
	switch u.kind {
	case kindAccounts:
		rows := make([]wire.SnapshotAccount, 0, len(u.m))
		for addr, acc := range u.m {
			rows = append(rows, wire.SnapshotAccount{
				Addr: addr, Balance: acc.Balance, Nonce: acc.Nonce, IsContract: acc.IsContract,
			})
		}
		name = accPageName(u.pid, ver)
		frame = wire.EncodeFrame(wire.MsgAccountPage, wire.EncodeAccountPage(&wire.AccountPage{
			PageID: u.pid, Version: ver, Accounts: rows,
		}))
		if old, ok := p.diskAcc[u.pid]; ok {
			p.garbage = append(p.garbage, accPageName(u.pid, old.ver))
		}
		p.diskAcc[u.pid] = diskPage{ver: ver, count: uint64(len(u.m))}
	case kindContract:
		payload, err := wire.EncodeContractPage(&wire.ContractPage{
			Addr: u.c.Addr, Version: ver, Fields: u.c.State.Fields,
		})
		if err != nil {
			return fmt.Errorf("pager: encode contract %s: %w", u.c.Addr, err)
		}
		name = contractPageName(u.c.Addr, ver)
		frame = wire.EncodeFrame(wire.MsgContractPage, payload)
		if u.ver != 0 {
			p.garbage = append(p.garbage, contractPageName(u.c.Addr, u.ver))
		}
	}
	if err := os.WriteFile(filepath.Join(p.dir, name), frame, 0o666); err != nil {
		return fmt.Errorf("pager: write page: %w", err)
	}
	u.ver = ver
	u.dirty = false
	p.unsynced = append(p.unsynced, name)
	p.writebacks.Inc()
	return nil
}

// pageOf maps an address to its page id: the top bits of the address,
// so sorted address order is sequential page order.
func (p *Pager) pageOf(addr chain.Address) uint32 {
	v := uint32(addr[0])<<24 | uint32(addr[1])<<16 | uint32(addr[2])<<8 | uint32(addr[3])
	if p.shift >= 32 {
		return 0
	}
	return v >> p.shift
}

// accountPage returns the resident page for pid, faulting it from disk
// (or creating it empty) when absent.
func (p *Pager) accountPage(pid uint32) *unit {
	if u, ok := p.accPages[pid]; ok {
		p.hits.Inc()
		p.lruFront(u)
		return u
	}
	u := &unit{kind: kindAccounts, pid: pid, bytes: pageBaseBytes}
	if d, ok := p.diskAcc[pid]; ok {
		start := time.Now()
		page, err := p.readAccountPage(pid, d.ver)
		if err != nil {
			panic(fmt.Sprintf("pager: account page fault: %v", err))
		}
		u.m = make(map[chain.Address]*chain.Account, len(page.Accounts))
		for i := range page.Accounts {
			row := &page.Accounts[i]
			u.m[row.Addr] = &chain.Account{Balance: row.Balance, Nonce: row.Nonce, IsContract: row.IsContract}
			u.bytes += estAccountBytes(row.Balance)
		}
		p.faults.Inc()
		p.faultTime.ObserveDuration(time.Since(start))
	} else {
		u.m = make(map[chain.Address]*chain.Account)
	}
	p.accPages[pid] = u
	p.resident += u.bytes
	p.lruFront(u)
	p.evictTo(u)
	p.updateGauges()
	return u
}

// readAccountPage reads and decodes one account page file.
func (p *Pager) readAccountPage(pid uint32, ver uint64) (*wire.AccountPage, error) {
	b, err := os.ReadFile(filepath.Join(p.dir, accPageName(pid, ver)))
	if err != nil {
		return nil, err
	}
	typ, payload, rest, err := wire.DecodeFrame(b)
	if err != nil {
		return nil, err
	}
	if typ != wire.MsgAccountPage || len(rest) != 0 {
		return nil, fmt.Errorf("%w: page file holds %v record (+%d trailing bytes)", ErrCorruptIndex, typ, len(rest))
	}
	page, err := wire.DecodeAccountPage(payload)
	if err != nil {
		return nil, err
	}
	if page.PageID != pid || page.Version != ver {
		return nil, fmt.Errorf("%w: page file says page %d v%d, expected page %d v%d",
			ErrCorruptIndex, page.PageID, page.Version, pid, ver)
	}
	return page, nil
}

func (p *Pager) updateGauges() {
	p.residentBytes.Set(p.resident)
	p.residentUnits.Set(int64(len(p.accPages) + p.lruContractCount()))
}

func (p *Pager) lruContractCount() int {
	n := 0
	for _, u := range p.contracts {
		if u.c.State != nil {
			n++
		}
	}
	return n
}

// --- index and file plumbing ---

// loadIndex reads pages.idx if present, adopting its geometry and page
// table.
func (p *Pager) loadIndex() error {
	ix, err := p.readIndex()
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	p.pageCount = ix.PageCount
	p.nextVer = ix.NextVersion
	p.cp, p.root, p.haveIndex = ix.Checkpoint, ix.Root, true
	p.accCount = 0
	for _, e := range ix.Accounts {
		p.diskAcc[e.PageID] = diskPage{ver: e.Version, count: e.Count}
		p.accCount += int64(e.Count)
	}
	// Contract entries are applied by ResetToDisk once the contracts
	// are admitted; stash nothing — readIndex re-reads the file then.
	return nil
}

// readIndex reads and decodes pages.idx.
func (p *Pager) readIndex() (*wire.PageIndex, error) {
	b, err := os.ReadFile(filepath.Join(p.dir, indexName))
	if err != nil {
		return nil, err
	}
	typ, payload, rest, err := wire.DecodeFrame(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptIndex, err)
	}
	if typ != wire.MsgPageIndex || len(rest) != 0 {
		return nil, fmt.Errorf("%w: holds %v record (+%d trailing bytes)", ErrCorruptIndex, typ, len(rest))
	}
	ix, err := wire.DecodePageIndex(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptIndex, err)
	}
	return ix, nil
}

// writeIndex atomically replaces pages.idx.
func (p *Pager) writeIndex(ix *wire.PageIndex) error {
	path := filepath.Join(p.dir, indexName)
	tmp := path + ".tmp"
	frame := wire.EncodeFrame(wire.MsgPageIndex, wire.EncodePageIndex(ix))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("pager: index: %w", err)
	}
	_, err = f.Write(frame)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err == nil {
		err = syncDir(p.dir)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pager: index: %w", err)
	}
	return nil
}

// sweepOrphans deletes page files the committed index does not
// reference: leftovers of a window that never committed (crash between
// page writes and the index rename).
func (p *Pager) sweepOrphans() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sweepOrphansLocked()
}

func (p *Pager) sweepOrphansLocked() error {
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return fmt.Errorf("pager: %w", err)
	}
	indexedContract := make(map[string]bool, len(p.contracts))
	for addr, u := range p.contracts {
		if u.ver != 0 {
			indexedContract[contractPageName(addr, u.ver)] = true
		}
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".pg") {
			continue
		}
		keep := false
		if pid, ver, ok := parseAccPageName(name); ok {
			if d, exists := p.diskAcc[pid]; exists && d.ver == ver {
				keep = true
			}
		} else if indexedContract[name] {
			keep = true
		} else if strings.HasPrefix(name, "c") && len(p.contracts) == 0 && p.haveIndex {
			// Contracts not yet admitted (Open time): consult the index
			// directly so committed contract pages survive the sweep.
			ix, err := p.readIndex()
			if err != nil {
				return err
			}
			for _, ce := range ix.Contracts {
				if contractPageName(ce.Addr, ce.Version) == name {
					keep = true
					break
				}
			}
		}
		if !keep {
			os.Remove(filepath.Join(p.dir, name))
		}
	}
	return nil
}

// --- names and helpers ---

func accPageName(pid uint32, ver uint64) string {
	return fmt.Sprintf("a%08x-%d.pg", pid, ver)
}

func contractPageName(addr chain.Address, ver uint64) string {
	return fmt.Sprintf("c%x-%d.pg", addr[:], ver)
}

// parseAccPageName inverts accPageName.
func parseAccPageName(name string) (pid uint32, ver uint64, ok bool) {
	if len(name) < 10 || name[0] != 'a' || !strings.HasSuffix(name, ".pg") {
		return 0, 0, false
	}
	var p64 uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(name, ".pg"), "a%08x-%d", &p64, &ver); err != nil {
		return 0, 0, false
	}
	return uint32(p64), ver, true
}

func shiftFor(pageCount uint32) uint {
	s := uint(32)
	for pc := pageCount; pc > 1; pc >>= 1 {
		s--
	}
	return s
}

func ceilPow2(n uint32) uint32 {
	p := uint32(1)
	for p < n {
		p <<= 1
	}
	return p
}

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-renamed index survives a power
// cut.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// sortedPageIDs returns the ids of every page that exists (resident or
// on disk), ascending — the streaming iteration order of Range.
func (p *Pager) sortedPageIDs() []uint32 {
	seen := make(map[uint32]bool, len(p.diskAcc)+len(p.accPages))
	for pid := range p.diskAcc {
		seen[pid] = true
	}
	for pid := range p.accPages {
		seen[pid] = true
	}
	out := make([]uint32, 0, len(seen))
	for pid := range seen {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
