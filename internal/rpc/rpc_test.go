package rpc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosplit/internal/node"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// startCluster brings up a channel-transport cluster with a block
// producer and a JSON-RPC server in front of its lookup node.
func startCluster(t *testing.T, w *workload.Workload) (*node.Cluster, *httptest.Server) {
	t.Helper()
	genesis := func() (*shard.Network, error) {
		env, err := workload.Provision(w, true, shard.WithShards(3))
		if err != nil {
			return nil, err
		}
		return env.Net, nil
	}
	cluster, err := node.NewCluster(genesis)
	if err != nil {
		t.Fatal(err)
	}
	stop := cluster.Produce(10*time.Millisecond, func(res node.TickResult) {
		if res.Err != nil {
			t.Errorf("produce: %v", res.Err)
		}
	})
	srv := httptest.NewServer(NewServer(cluster.Lookup))
	t.Cleanup(func() {
		srv.Close()
		stop()
		cluster.Close()
	})
	return cluster, srv
}

func TestRPCRoundTrip(t *testing.T) {
	w := workload.FTTransfer()
	w.Users = 40
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	_, srv := startCluster(t, w)
	c := NewClient(srv.URL)

	// Submit through the front door and wait for the receipt.
	tx := w.Next(envSrc)
	id, err := c.SendTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	var rc *ReceiptResult
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if rc, err = c.GetReceipt(id); err != nil {
			t.Fatal(err)
		}
		if rc != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rc == nil {
		t.Fatalf("tx %d: no receipt", id)
	}
	if !rc.Success || rc.TxID != id {
		t.Fatalf("receipt: %+v", rc)
	}

	// Reads agree with the canonical chain.
	info, err := c.ChainInfo()
	if err != nil || info.Epoch == 0 || info.StateRoot == "" {
		t.Fatalf("chainInfo: %+v, %v", info, err)
	}
	bal, err := c.GetBalance(envSrc.Users[0])
	if err != nil || !bal.Found || bal.Balance == "" {
		t.Fatalf("getBalance: %+v, %v", bal, err)
	}
	st, err := c.GetState(envSrc.Contract, "balances", "")
	if err != nil || !st.Found || st.Value == "" {
		t.Fatalf("getState: %+v, %v", st, err)
	}
	if _, err := c.GetBalance(envSrc.Contract); err != nil {
		t.Fatalf("getBalance(contract): %v", err)
	}
}

func TestRPCErrors(t *testing.T) {
	w := workload.FTTransfer()
	w.Users = 10
	_, srv := startCluster(t, w)

	post := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	rpcCode := func(out map[string]any) float64 {
		t.Helper()
		e, ok := out["error"].(map[string]any)
		if !ok {
			t.Fatalf("no error in %v", out)
		}
		return e["code"].(float64)
	}

	if c := rpcCode(post(`{`)); c != codeParse {
		t.Errorf("parse error code %v", c)
	}
	if c := rpcCode(post(`{"jsonrpc":"1.0","id":1,"method":"cosplit_chainInfo","params":[]}`)); c != codeInvalidRequest {
		t.Errorf("bad version code %v", c)
	}
	if c := rpcCode(post(`{"jsonrpc":"2.0","id":1,"method":"cosplit_nope","params":[]}`)); c != codeMethodNotFound {
		t.Errorf("unknown method code %v", c)
	}
	if c := rpcCode(post(`{"jsonrpc":"2.0","id":1,"method":"cosplit_sendRawTransaction","params":["0xzz"]}`)); c != codeInvalidParams {
		t.Errorf("bad hex code %v", c)
	}
	if c := rpcCode(post(`{"jsonrpc":"2.0","id":1,"method":"cosplit_getBalance","params":["0x1234"]}`)); c != codeInvalidParams {
		t.Errorf("short address code %v", c)
	}

	// GET is rejected outright.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", resp.StatusCode)
	}
}

func TestHammerClosedLoop(t *testing.T) {
	w := workload.FTTransfer()
	w.Users = 40
	_, srv := startCluster(t, w)

	next, err := WorkloadStream(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunHammer(HammerConfig{
		URL:     srv.URL,
		Workers: 8,
		Total:   120,
		Next:    next,
		Poll:    2 * time.Millisecond,
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Workers submit concurrently, so same-sender transfers can commit
	// out of stream order and a few may fail on transiently overdrawn
	// balances — but every submission must come back with a receipt.
	if rep.Committed+rep.Failed != 120 || rep.Lost != 0 || rep.Rejected != 0 {
		t.Fatalf("hammer report: %+v", rep)
	}
	if rep.Committed < 110 {
		t.Fatalf("only %d of 120 committed successfully: %+v", rep.Committed, rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Fatalf("latency percentiles inconsistent: %+v", rep)
	}
	var buf bytes.Buffer
	PrintHammer(&buf, rep)
	if !strings.Contains(buf.String(), "p99") {
		t.Fatalf("PrintHammer output: %q", buf.String())
	}
}
