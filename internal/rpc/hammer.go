package rpc

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// HammerConfig drives a closed-loop load run against a serving node:
// Workers goroutines each submit a transaction, poll for its receipt,
// record the submit-to-commit latency, and repeat until Total
// transactions have been pushed through.
type HammerConfig struct {
	// URL of the JSON-RPC server.
	URL string
	// URLs, when non-empty, spreads the load over several servers
	// (e.g. a scaled-out lookup tier): worker i talks to
	// URLs[i % len(URLs)], round-robin. URL is ignored when set.
	URLs []string
	// Workers is the closed-loop concurrency (default 8).
	Workers int
	// Total transactions to submit (default 1000).
	Total int
	// Next produces the transaction stream. The hammer serialises
	// calls, so the generator need not be concurrency-safe.
	Next func() *chain.Tx
	// Poll is the receipt polling interval (default 5ms).
	Poll time.Duration
	// Timeout bounds the wait for any one receipt (default 30s); a
	// transaction whose receipt never arrives counts as Lost.
	Timeout time.Duration
}

// HammerReport is the outcome of a hammer run.
type HammerReport struct {
	Submitted int           `json:"submitted"`
	Committed int           `json:"committed"`
	Failed    int           `json:"failed"` // committed with Success == false
	Rejected  int           `json:"rejected"`
	Lost      int           `json:"lost"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	TPS       float64       `json:"tps"`
	P50       time.Duration `json:"p50_ns"`
	P95       time.Duration `json:"p95_ns"`
	P99       time.Duration `json:"p99_ns"`
	Max       time.Duration `json:"max_ns"`
}

// WorkloadStream provisions a client-side environment for the
// workload and returns its transaction generator. Provisioning is
// deterministic, so a stream built with the same workload and shard
// count as the serving cluster's genesis produces transactions that
// are valid (funded senders, correct nonces) against its chain.
func WorkloadStream(w *workload.Workload, shards int) (func() *chain.Tx, error) {
	env, err := workload.Provision(w, true, shard.WithShards(shards))
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	return func() *chain.Tx {
		mu.Lock()
		defer mu.Unlock()
		return w.Next(env)
	}, nil
}

// RunHammer executes the closed loop and reports latency percentiles.
func RunHammer(cfg HammerConfig) (*HammerReport, error) {
	if cfg.Next == nil {
		return nil, fmt.Errorf("hammer: no transaction stream")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Total <= 0 {
		cfg.Total = 1000
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 5 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if len(cfg.URLs) == 0 {
		cfg.URLs = []string{cfg.URL}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rep       HammerReport
		firstErr  error
	)
	next := make(chan *chain.Tx)
	done := make(chan struct{})
	go func() {
		defer close(next)
		for i := 0; i < cfg.Total; i++ {
			select {
			case next <- cfg.Next():
			case <-done:
				return
			}
		}
	}()

	started := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		url := cfg.URLs[i%len(cfg.URLs)]
		go func() {
			defer wg.Done()
			c := NewClient(url)
			for tx := range next {
				start := time.Now()
				id, err := c.SendTx(tx)
				if err != nil {
					mu.Lock()
					rep.Submitted++
					rep.Rejected++
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				lat, rc := awaitReceipt(c, id, cfg.Poll, cfg.Timeout, start)
				mu.Lock()
				rep.Submitted++
				switch {
				case rc == nil:
					rep.Lost++
				case rc.Success:
					rep.Committed++
					latencies = append(latencies, lat)
				default:
					rep.Failed++
					latencies = append(latencies, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	rep.Elapsed = time.Since(started)

	if rep.Committed == 0 && firstErr != nil {
		return nil, fmt.Errorf("hammer: no transaction committed: %w", firstErr)
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.TPS = float64(rep.Committed+rep.Failed) / secs
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = percentile(latencies, 0.50)
	rep.P95 = percentile(latencies, 0.95)
	rep.P99 = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.Max = latencies[n-1]
	}
	return &rep, nil
}

func awaitReceipt(c *Client, id uint64, poll, timeout time.Duration, start time.Time) (time.Duration, *ReceiptResult) {
	deadline := start.Add(timeout)
	for {
		rc, err := c.GetReceipt(id)
		if err == nil && rc != nil {
			return time.Since(start), rc
		}
		if time.Now().After(deadline) {
			return 0, nil
		}
		time.Sleep(poll)
	}
}

// percentile reads the p-quantile from latencies (sorted ascending).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// PrintHammer renders a hammer report for the terminal.
func PrintHammer(w io.Writer, r *HammerReport) {
	fmt.Fprintf(w, "hammer: %d submitted, %d committed, %d failed, %d rejected, %d lost in %v (%.0f tx/s)\n",
		r.Submitted, r.Committed, r.Failed, r.Rejected, r.Lost, r.Elapsed.Round(time.Millisecond), r.TPS)
	fmt.Fprintf(w, "submit-to-commit latency: p50 %v  p95 %v  p99 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
}
