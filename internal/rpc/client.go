package rpc

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/wire"
)

// Client is a JSON-RPC client for the cosplit_ API; the hammer and
// the tests drive the server through it.
type Client struct {
	url  string
	http *http.Client
	next atomic.Uint64 // JSON-RPC request ids
}

// NewClient targets a server URL (e.g. "http://127.0.0.1:8545").
func NewClient(url string) *Client {
	return &Client{url: url, http: &http.Client{Timeout: 30 * time.Second}}
}

// call performs one JSON-RPC request, decoding the result into out.
func (c *Client) call(method string, params []any, out any) error {
	body, err := json.Marshal(map[string]any{
		"jsonrpc": "2.0",
		"id":      c.next.Add(1),
		"method":  method,
		"params":  params,
	})
	if err != nil {
		return err
	}
	hresp, err := c.http.Post(c.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	var resp struct {
		Result json.RawMessage `json:"result"`
		Error  *rpcError       `json:"error"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("%s: %w", method, err)
	}
	if resp.Error != nil {
		return fmt.Errorf("%s: rpc error %d: %s", method, resp.Error.Code, resp.Error.Message)
	}
	if out == nil || len(resp.Result) == 0 || string(resp.Result) == "null" {
		return nil
	}
	return json.Unmarshal(resp.Result, out)
}

// SendTx wire-encodes the transaction and submits it, returning the
// committee-assigned id.
func (c *Client) SendTx(tx *chain.Tx) (uint64, error) {
	enc, err := wire.EncodeTx(tx)
	if err != nil {
		return 0, err
	}
	var res SubmitResult
	if err := c.call("cosplit_sendRawTransaction", []any{"0x" + hex.EncodeToString(enc)}, &res); err != nil {
		return 0, err
	}
	return res.ID, nil
}

// GetReceipt returns the receipt for a transaction id, or nil if it
// has not committed yet.
func (c *Client) GetReceipt(id uint64) (*ReceiptResult, error) {
	var res *ReceiptResult
	if err := c.call("cosplit_getTransactionReceipt", []any{id}, &res); err != nil {
		return nil, err
	}
	return res, nil
}

// GetBalance queries an account's native balance and nonce.
func (c *Client) GetBalance(addr chain.Address) (*BalanceResult, error) {
	var res BalanceResult
	if err := c.call("cosplit_getBalance", []any{addr.String()}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// GetState queries a contract field, optionally narrowed to one map
// entry by canonical key.
func (c *Client) GetState(addr chain.Address, field, key string) (*StateResult, error) {
	var res StateResult
	params := []any{addr.String(), field}
	if key != "" {
		params = append(params, key)
	}
	if err := c.call("cosplit_getState", params, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// ChainInfo returns the finalized chain head as the lookup sees it.
func (c *Client) ChainInfo() (*ChainInfo, error) {
	var res ChainInfo
	if err := c.call("cosplit_chainInfo", []any{}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
