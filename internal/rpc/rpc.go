// Package rpc is the JSON-RPC 2.0 front door of a node cluster. It
// serves HTTP POST requests against a lookup node, so every call
// travels the same path a real client's would: JSON over HTTP to the
// lookup, wire frames from the lookup to the DS committee, and
// FinalBlock broadcasts back.
//
// Transactions cross the RPC boundary in the versioned wire encoding
// (hex-encoded wire.EncodeTx bytes), exactly like Ethereum's
// sendRawTransaction: the binary format stays the single source of
// truth and the JSON layer never re-describes transaction structure.
//
// Methods (all namespaced cosplit_):
//
//	sendRawTransaction ["0x<hex tx>"]        -> {"id": n}
//	getTransactionReceipt [id]               -> receipt | null
//	getBalance ["0x<addr>"]                  -> {"found","balance","nonce"}
//	getState ["0x<addr>", field, key]        -> {"found","value"}
//	chainInfo []                             -> {"epoch","stateRoot"}
package rpc

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cosplit/internal/chain"
	"cosplit/internal/node"
	"cosplit/internal/wire"
)

// JSON-RPC 2.0 error codes.
const (
	codeParse          = -32700
	codeInvalidRequest = -32600
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
	codeServerError    = -32000
)

// maxBodyBytes bounds a request body; a raw transaction is well under
// a kilobyte.
const maxBodyBytes = 1 << 20

type rpcRequest struct {
	Version string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

type rpcResponse struct {
	Version string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  any             `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

// SubmitResult is the result of sendRawTransaction.
type SubmitResult struct {
	ID uint64 `json:"id"`
}

// ReceiptResult is a committed transaction receipt.
type ReceiptResult struct {
	TxID    uint64   `json:"txId"`
	Success bool     `json:"success"`
	GasUsed uint64   `json:"gasUsed"`
	Error   string   `json:"error,omitempty"`
	Shard   int      `json:"shard"`
	Epoch   uint64   `json:"epoch"`
	Events  []string `json:"events,omitempty"`
}

// BalanceResult is the result of getBalance.
type BalanceResult struct {
	Found   bool   `json:"found"`
	Balance string `json:"balance,omitempty"`
	Nonce   uint64 `json:"nonce,omitempty"`
}

// StateResult is the result of getState; Value is the queried field
// (or map entry) rendered in Scilla literal syntax.
type StateResult struct {
	Found bool   `json:"found"`
	Value string `json:"value,omitempty"`
}

// ChainInfo is the lookup's view of the finalized chain head.
type ChainInfo struct {
	Epoch     uint64 `json:"epoch"`
	StateRoot string `json:"stateRoot"`
}

// Server serves the JSON-RPC API over one lookup node.
type Server struct {
	lk *node.Lookup
}

// NewServer wraps a running lookup node. The caller owns the lookup's
// lifecycle (and the cluster ticking behind it).
func NewServer(lk *node.Lookup) *Server {
	return &Server{lk: lk}
}

// ServeHTTP implements single-request JSON-RPC 2.0 over POST.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req rpcRequest
	resp := rpcResponse{Version: "2.0"}
	if err := json.Unmarshal(body, &req); err != nil {
		resp.Error = &rpcError{Code: codeParse, Message: "parse error: " + err.Error()}
	} else {
		resp.ID = req.ID
		result, rerr := s.dispatch(&req)
		if rerr != nil {
			resp.Error = rerr
		} else {
			resp.Result = result
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}

func (s *Server) dispatch(req *rpcRequest) (any, *rpcError) {
	if req.Version != "2.0" {
		return nil, &rpcError{Code: codeInvalidRequest, Message: `jsonrpc must be "2.0"`}
	}
	switch req.Method {
	case "cosplit_sendRawTransaction":
		var raw string
		if err := oneParam(req.Params, &raw); err != nil {
			return nil, err
		}
		return s.sendRawTransaction(raw)
	case "cosplit_getTransactionReceipt":
		var id uint64
		if err := oneParam(req.Params, &id); err != nil {
			return nil, err
		}
		return s.getReceipt(id), nil
	case "cosplit_getBalance":
		var addr string
		if err := oneParam(req.Params, &addr); err != nil {
			return nil, err
		}
		return s.getBalance(addr)
	case "cosplit_getState":
		var p []string
		if err := json.Unmarshal(req.Params, &p); err != nil || len(p) < 2 || len(p) > 3 {
			return nil, &rpcError{Code: codeInvalidParams, Message: "params: [address, field, key?]"}
		}
		key := ""
		if len(p) == 3 {
			key = p[2]
		}
		return s.getState(p[0], p[1], key)
	case "cosplit_chainInfo":
		epoch, root := s.lk.Chain()
		return &ChainInfo{Epoch: epoch, StateRoot: root}, nil
	default:
		return nil, &rpcError{Code: codeMethodNotFound, Message: "unknown method " + req.Method}
	}
}

func (s *Server) sendRawTransaction(raw string) (any, *rpcError) {
	b, err := hex.DecodeString(strings.TrimPrefix(raw, "0x"))
	if err != nil {
		return nil, &rpcError{Code: codeInvalidParams, Message: "raw tx: " + err.Error()}
	}
	tx, err := wire.DecodeTx(b)
	if err != nil {
		return nil, &rpcError{Code: codeInvalidParams, Message: "raw tx: " + err.Error()}
	}
	id, err := s.lk.SubmitTx(tx)
	if err != nil {
		code := codeServerError
		if errors.Is(err, node.ErrTimeout) {
			code = codeServerError // lost in transit; client may retry
		}
		return nil, &rpcError{Code: code, Message: err.Error()}
	}
	return &SubmitResult{ID: id}, nil
}

func (s *Server) getReceipt(id uint64) *ReceiptResult {
	r := s.lk.Receipt(id)
	if r == nil {
		return nil
	}
	res := &ReceiptResult{
		TxID:    r.TxID,
		Success: r.Success,
		GasUsed: r.GasUsed,
		Error:   r.Error,
		Shard:   r.Shard,
		Epoch:   r.Epoch,
	}
	for _, e := range r.Events {
		res.Events = append(res.Events, e.String())
	}
	return res
}

func (s *Server) getBalance(addr string) (any, *rpcError) {
	a, rerr := parseAddr(addr)
	if rerr != nil {
		return nil, rerr
	}
	st, found, err := s.lk.GetAccount(a)
	if err != nil {
		return nil, &rpcError{Code: codeServerError, Message: err.Error()}
	}
	if !found {
		return &BalanceResult{}, nil
	}
	return &BalanceResult{Found: true, Balance: st.Balance.String(), Nonce: st.Nonce}, nil
}

func (s *Server) getState(addr, field, key string) (any, *rpcError) {
	a, rerr := parseAddr(addr)
	if rerr != nil {
		return nil, rerr
	}
	resp, err := s.lk.GetState(a, field, key)
	if err != nil {
		return nil, &rpcError{Code: codeServerError, Message: err.Error()}
	}
	if !resp.Found || resp.Value == nil {
		return &StateResult{}, nil
	}
	return &StateResult{Found: true, Value: resp.Value.String()}, nil
}

func oneParam(params json.RawMessage, out any) *rpcError {
	var arr []json.RawMessage
	if err := json.Unmarshal(params, &arr); err != nil || len(arr) != 1 {
		return &rpcError{Code: codeInvalidParams, Message: "params: exactly one element"}
	}
	if err := json.Unmarshal(arr[0], out); err != nil {
		return &rpcError{Code: codeInvalidParams, Message: "params: " + err.Error()}
	}
	return nil
}

func parseAddr(s string) (chain.Address, *rpcError) {
	b, err := hex.DecodeString(strings.TrimPrefix(s, "0x"))
	if err != nil || len(b) != len(chain.Address{}) {
		return chain.Address{}, &rpcError{Code: codeInvalidParams, Message: fmt.Sprintf("address %q: want 20 hex bytes", s)}
	}
	var a chain.Address
	copy(a[:], b)
	return a, nil
}
