package chain

import (
	"fmt"
	"math/big"
	"sort"
	"sync"
)

// Account is a native-token account with the relaxed nonce mechanism of
// Sec. 4.2.1: transactions must carry strictly increasing nonces, but
// gaps are allowed (Paxos-ballot style), so disjoint nonce sets from
// the same user can be processed in different shards in parallel.
type Account struct {
	Balance    *big.Int
	Nonce      uint64 // highest nonce committed so far
	IsContract bool
}

// Copy deep-copies the account.
func (a *Account) Copy() *Account {
	return &Account{
		Balance:    new(big.Int).Set(a.Balance),
		Nonce:      a.Nonce,
		IsContract: a.IsContract,
	}
}

// Accounts is the global account table. Storage lives behind an
// AccountBackend: the default is a resident map, and internal/pager
// swaps in a disk-backed paged backend (SetBackend) so the table can
// exceed RAM.
type Accounts struct {
	mu sync.RWMutex
	b  AccountBackend
}

// NewAccounts creates an empty account table on the default resident
// map backend.
func NewAccounts() *Accounts {
	return &Accounts{b: make(mapBackend)}
}

// NewAccountsOn creates an empty account table on an explicit backend.
func NewAccountsOn(b AccountBackend) *Accounts {
	if b == nil {
		return NewAccounts()
	}
	return &Accounts{b: b}
}

// Create adds an account with the given initial balance. It replaces
// any existing account.
func (as *Accounts) Create(addr Address, balance uint64, isContract bool) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.b.Store(addr, &Account{
		Balance:    new(big.Int).SetUint64(balance),
		IsContract: isContract,
	})
}

// Put installs an account with explicit balance, nonce, and contract
// flag, replacing any existing entry. Snapshot restore uses it to
// reconstruct the exact committed table.
func (as *Accounts) Put(addr Address, balance *big.Int, nonce uint64, isContract bool) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.b.Store(addr, &Account{
		Balance:    new(big.Int).Set(balance),
		Nonce:      nonce,
		IsContract: isContract,
	})
}

// Range calls f for every account until f returns false. The iteration
// order is unspecified and f receives the live account — it must not
// mutate it or retain it past the call (the table's lock is held). A
// paged backend streams pages through the call, so Range never
// materialises the full set.
func (as *Accounts) Range(f func(Address, *Account) bool) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	as.b.Range(f)
}

// Len returns the number of accounts.
func (as *Accounts) Len() int {
	as.mu.RLock()
	defer as.mu.RUnlock()
	return as.b.Len()
}

// Get returns a copy of the account, or nil if absent.
func (as *Accounts) Get(addr Address) *Account {
	as.mu.RLock()
	defer as.mu.RUnlock()
	a := as.b.Load(addr)
	if a == nil {
		return nil
	}
	return a.Copy()
}

// NonceOf returns the committed nonce of an account without copying it
// (the dispatch hot path only needs the nonce, and Get's defensive copy
// costs three allocations per transaction).
func (as *Accounts) NonceOf(addr Address) (uint64, bool) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	a := as.b.Load(addr)
	if a == nil {
		return 0, false
	}
	return a.Nonce, true
}

// IsContract reports whether the address holds a contract.
func (as *Accounts) IsContract(addr Address) bool {
	as.mu.RLock()
	defer as.mu.RUnlock()
	a := as.b.Load(addr)
	return a != nil && a.IsContract
}

// Exists reports whether the account exists.
func (as *Accounts) Exists(addr Address) bool {
	as.mu.RLock()
	defer as.mu.RUnlock()
	return as.b.Load(addr) != nil
}

// Addresses returns all addresses, sorted.
func (as *Accounts) Addresses() []Address {
	as.mu.RLock()
	defer as.mu.RUnlock()
	out := make([]Address, 0, as.b.Len())
	as.b.Range(func(a Address, _ *Account) bool {
		out = append(out, a)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < 20; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Apply commits an account delta: balance changes (commutative) and
// nonce advancement (merged by maximum, per the relaxed nonce rule).
func (as *Accounts) Apply(d *AccountDelta) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for addr, bd := range d.BalanceDeltas {
		acc := as.b.Mutate(addr)
		if acc == nil {
			acc = &Account{Balance: new(big.Int)}
			as.b.Store(addr, acc)
		}
		acc.Balance.Add(acc.Balance, bd)
		if acc.Balance.Sign() < 0 {
			return fmt.Errorf("account %s balance went negative", addr)
		}
	}
	for addr, n := range d.Nonces {
		acc := as.b.Mutate(addr)
		if acc == nil {
			continue
		}
		if n > acc.Nonce {
			acc.Nonce = n
		}
	}
	return nil
}

// Copy deep-copies the whole table onto a fresh resident map backend.
// This materialises every account — a paged source backend streams all
// its pages through the copy — so it is strictly a test/debug helper;
// read-only consumers should take ReadOnly instead.
func (as *Accounts) Copy() *Accounts {
	as.mu.RLock()
	defer as.mu.RUnlock()
	out := NewAccounts()
	as.b.Range(func(a Address, acc *Account) bool {
		out.b.Store(a, acc.Copy())
		return true
	})
	return out
}

// AccountDelta is a shard's contribution to the account table for one
// epoch: commutative balance deltas plus per-sender highest nonces.
type AccountDelta struct {
	BalanceDeltas map[Address]*big.Int
	Nonces        map[Address]uint64
}

// NewAccountDelta creates an empty delta.
func NewAccountDelta() *AccountDelta {
	return &AccountDelta{
		BalanceDeltas: make(map[Address]*big.Int),
		Nonces:        make(map[Address]uint64),
	}
}

// AddBalance accumulates a (possibly negative) balance delta.
func (d *AccountDelta) AddBalance(addr Address, delta *big.Int) {
	cur, ok := d.BalanceDeltas[addr]
	if !ok {
		cur = new(big.Int)
		d.BalanceDeltas[addr] = cur
	}
	cur.Add(cur, delta)
}

// BumpNonce records a committed nonce for a sender.
func (d *AccountDelta) BumpNonce(addr Address, nonce uint64) {
	if nonce > d.Nonces[addr] {
		d.Nonces[addr] = nonce
	}
}

// Merge folds another delta into this one (deltas from different
// shards commute).
func (d *AccountDelta) Merge(o *AccountDelta) {
	for a, bd := range o.BalanceDeltas {
		d.AddBalance(a, bd)
	}
	for a, n := range o.Nonces {
		d.BumpNonce(a, n)
	}
}
