// Package chain implements the account-based blockchain substrate the
// sharded protocol runs on: addresses, accounts with relaxed nonces
// (Sec. 4.2.1), transactions, contract deployments, overlay state with
// delta tracking, and the three-way state-delta merge driven by
// per-field join operations (Sec. 4.3).
package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/value"
)

// Address is a 20-byte account address (ByStr20).
type Address [20]byte

// String renders the address as 0x-prefixed hex.
func (a Address) String() string {
	return fmt.Sprintf("0x%x", a[:])
}

// Value converts the address to a Scilla ByStr20 value.
func (a Address) Value() value.ByStr {
	b := make([]byte, 20)
	copy(b, a[:])
	return value.ByStr{Ty: ast.TyByStr20, B: b}
}

// AddressFromValue converts a Scilla ByStr20 value to an Address.
func AddressFromValue(v value.Value) (Address, bool) {
	bs, ok := v.(value.ByStr)
	if !ok || len(bs.B) != 20 {
		return Address{}, false
	}
	var a Address
	copy(a[:], bs.B)
	return a, true
}

// AddrFromUint derives a deterministic address from an integer; used
// by tests and workload generators.
func AddrFromUint(n uint64) Address {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n)
	h := sha256.Sum256(buf[:])
	var a Address
	copy(a[:], h[:20])
	return a
}

// ContractAddress derives the address of a contract deployed by sender
// at the given nonce.
func ContractAddress(sender Address, nonce uint64) Address {
	var buf [28]byte
	copy(buf[:20], sender[:])
	binary.BigEndian.PutUint64(buf[20:], nonce)
	h := sha256.Sum256(buf[:])
	var a Address
	copy(a[:], h[:20])
	return a
}

// ShardOf deterministically maps an address to one of n shards (the
// static home-shard assignment used for users and contracts).
func ShardOf(a Address, n int) int {
	if n <= 0 {
		return 0
	}
	h := sha256.Sum256(a[:])
	return int(binary.BigEndian.Uint32(h[:4]) % uint32(n))
}

// ShardOfKey deterministically maps an arbitrary canonical key string
// to one of n shards (ownership of non-address map keys).
func ShardOfKey(key string, n int) int {
	if n <= 0 {
		return 0
	}
	h := sha256.Sum256([]byte(key))
	return int(binary.BigEndian.Uint32(h[:4]) % uint32(n))
}
