package chain_test

import (
	"math/big"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// TestOverlayLoadFieldMaterialises: loading a whole map field with
// pending entry writes yields the merged view without mutating the
// base.
func TestOverlayLoadFieldMaterialises(t *testing.T) {
	base := newBase()
	if err := base.MapSet("balances", []value.Value{addr(1)}, value.Uint128(10)); err != nil {
		t.Fatal(err)
	}
	ov := chain.NewOverlay(base, testFieldTypes)
	if err := ov.MapSet("balances", []value.Value{addr(2)}, value.Uint128(20)); err != nil {
		t.Fatal(err)
	}
	if err := ov.MapDelete("balances", []value.Value{addr(1)}); err != nil {
		t.Fatal(err)
	}
	v, err := ov.LoadField("balances")
	if err != nil {
		t.Fatal(err)
	}
	m := v.(*value.Map)
	if m.Len() != 1 {
		t.Errorf("materialised map has %d entries, want 1", m.Len())
	}
	if _, ok := m.Get(addr(2)); !ok {
		t.Error("pending write missing from materialised view")
	}
	// The base still holds the original entry.
	bm, _ := base.LoadField("balances")
	if bm.(*value.Map).Len() != 1 {
		t.Error("materialisation mutated the base")
	}
	if _, ok := bm.(*value.Map).Get(addr(1)); !ok {
		t.Error("base entry deleted through overlay")
	}
}

// TestOverlayWholeFieldStoreThenMapOps: a wholesale map store followed
// by entry operations mutates the stored copy.
func TestOverlayWholeFieldStoreThenMapOps(t *testing.T) {
	base := newBase()
	ov := chain.NewOverlay(base, testFieldTypes)
	fresh := value.NewMap(ast.TyByStr20, ast.TyUint128)
	fresh.Set(addr(1), value.Uint128(5))
	if err := ov.StoreField("balances", fresh); err != nil {
		t.Fatal(err)
	}
	if err := ov.MapSet("balances", []value.Value{addr(2)}, value.Uint128(6)); err != nil {
		t.Fatal(err)
	}
	if err := ov.MapDelete("balances", []value.Value{addr(1)}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := ov.MapGet("balances", []value.Value{addr(2)})
	if err != nil || !ok || v.(value.Int).V.Uint64() != 6 {
		t.Errorf("entry after whole-store: %v %v %v", v, ok, err)
	}
	if _, ok, _ := ov.MapGet("balances", []value.Value{addr(1)}); ok {
		t.Error("deleted entry still present")
	}
	// Delta is a whole-field overwrite.
	d, err := ov.ExtractDelta(chain.Address{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	fd := d.Fields["balances"]
	if fd == nil || fd.Whole == nil || fd.Whole.Kind != chain.Overwrite {
		t.Errorf("expected whole-field overwrite delta, got %s", d)
	}
	// StoreField does not capture later mutations of the caller's map.
	fresh.Set(addr(3), value.Uint128(9))
	if _, ok, _ := ov.MapGet("balances", []value.Value{addr(3)}); ok {
		t.Error("overlay aliases the stored map value")
	}
}

// TestDeepNestedThroughInterpreter drives the three-level map contract
// end to end through interpreter + overlay + delta + merge.
func TestDeepNestedThroughInterpreter(t *testing.T) {
	chk := contracts.MustParse("MapCornercases")
	owner := chain.AddrFromUint(1)
	in, err := eval.New(chk, map[string]value.Value{"owner": owner.Value()})
	if err != nil {
		t.Fatal(err)
	}
	base := eval.NewMemState(chk.FieldTypes)
	if err := base.InitFrom(in); err != nil {
		t.Fatal(err)
	}
	ov := chain.NewOverlay(base, chk.FieldTypes)
	ctx := &eval.Context{
		Sender: owner.Value(), Origin: owner.Value(),
		Amount: value.Uint128(0), BlockNumber: big.NewInt(1), State: ov,
	}
	if _, err := in.Run(ctx, "PutDeep", map[string]value.Value{
		"k1": owner.Value(),
		"k2": value.Str{S: "a"},
		"k3": value.Str{S: "b"},
		"v":  value.Uint128(42),
	}); err != nil {
		t.Fatalf("PutDeep: %v", err)
	}
	d, err := ov.ExtractDelta(chain.Address{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged := base.Copy()
	if err := chain.MergeDeltas(merged, []*chain.StateDelta{d}); err != nil {
		t.Fatal(err)
	}
	keys := []value.Value{owner.Value(), value.Str{S: "a"}, value.Str{S: "b"}}
	v, ok, err := merged.MapGet("deep", keys)
	if err != nil || !ok || v.(value.Int).V.Uint64() != 42 {
		t.Fatalf("deep entry after merge: %v %v %v", v, ok, err)
	}
	// GetDeep through a fresh overlay over the merged state.
	ov2 := chain.NewOverlay(merged, chk.FieldTypes)
	ctx2 := &eval.Context{
		Sender: owner.Value(), Origin: owner.Value(),
		Amount: value.Uint128(0), BlockNumber: big.NewInt(1), State: ov2,
	}
	res, err := in.Run(ctx2, "GetDeep", map[string]value.Value{
		"k1": owner.Value(), "k2": value.Str{S: "a"}, "k3": value.Str{S: "b"},
	})
	if err != nil {
		t.Fatalf("GetDeep: %v", err)
	}
	if len(res.Events) != 1 {
		t.Fatal("GetDeep emitted no event")
	}
	if got := res.Events[0].Entries["v"].(value.Int); got.V.Uint64() != 42 {
		t.Errorf("GetDeep returned %s", got)
	}
	// DeleteDeep then confirm absence.
	if _, err := in.Run(ctx2, "DeleteDeep", map[string]value.Value{
		"k1": owner.Value(), "k2": value.Str{S: "a"}, "k3": value.Str{S: "b"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ov2.MapGet("deep", keys); ok {
		t.Error("deep entry survived delete")
	}
}
