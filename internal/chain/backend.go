package chain

import (
	"bytes"
	"sort"
)

// AccountBackend is the storage engine behind an Accounts table. The
// default is an in-memory map; internal/pager provides a disk-backed,
// page-structured implementation with a bounded cache, so the rest of
// the system never assumes the account set is resident.
//
// All calls arrive under the owning Accounts' lock: Load, Len, and
// Range under the read lock (so they may run concurrently with each
// other), Mutate and Store under the write lock (exclusive).
// Implementations that mutate internal structures on reads — a paging
// backend faults and evicts on Load — must synchronise those
// structures themselves.
type AccountBackend interface {
	// Load returns the live account at addr, or nil if absent. Callers
	// own a read-only view: the returned struct is mutated only under
	// the table's write lock (via Mutate or Store).
	Load(addr Address) *Account
	// Mutate returns the live account at addr for in-place update, or
	// nil if absent. The backend must treat the account as modified
	// (a paging backend marks its page dirty).
	Mutate(addr Address) *Account
	// Store inserts or replaces the account at addr.
	Store(addr Address, acc *Account)
	// Len returns the number of accounts.
	Len() int
	// Range calls f for every account until f returns false, in
	// unspecified order. f must not call back into the backend.
	Range(f func(Address, *Account) bool)
}

// mapBackend is the default resident backend: a plain map, exactly the
// representation Accounts used before the backend split.
type mapBackend map[Address]*Account

func (m mapBackend) Load(addr Address) *Account   { return m[addr] }
func (m mapBackend) Mutate(addr Address) *Account { return m[addr] }
func (m mapBackend) Store(addr Address, acc *Account) {
	m[addr] = acc
}
func (m mapBackend) Len() int { return len(m) }
func (m mapBackend) Range(f func(Address, *Account) bool) {
	for a, acc := range m {
		if !f(a, acc) {
			return
		}
	}
}

// AccountReader is the read-only face of an Accounts table. ReadOnly
// returns one without copying anything — callers that only inspect
// state (snapshot writers, RPC queries, invariant checks) should take
// this instead of Copy, which materialises the whole table.
type AccountReader interface {
	Get(addr Address) *Account
	NonceOf(addr Address) (uint64, bool)
	IsContract(addr Address) bool
	Exists(addr Address) bool
	Len() int
	Range(f func(Address, *Account) bool)
}

// accountsView is a read-only view over a live Accounts table. It
// shares storage with the underlying table: no copy is taken, and
// writes through the table remain visible. The zero-cost alternative
// to Accounts.Copy for callers that never mutate.
type accountsView struct {
	as *Accounts
}

func (v accountsView) Get(addr Address) *Account            { return v.as.Get(addr) }
func (v accountsView) NonceOf(addr Address) (uint64, bool)  { return v.as.NonceOf(addr) }
func (v accountsView) IsContract(addr Address) bool         { return v.as.IsContract(addr) }
func (v accountsView) Exists(addr Address) bool             { return v.as.Exists(addr) }
func (v accountsView) Len() int                             { return v.as.Len() }
func (v accountsView) Range(f func(Address, *Account) bool) { v.as.Range(f) }

// ReadOnly returns a read-only view sharing this table's storage. Use
// it where Copy used to be taken defensively: it costs nothing and a
// paged backend is never forced to materialise the full account set.
func (as *Accounts) ReadOnly() AccountReader { return accountsView{as: as} }

// SetBackend migrates the table onto a new storage backend: every
// account in the current backend is stored into b (a paging backend
// marks them dirty, so the next flush writes them out), then b becomes
// the table's engine. Accounts migrate in sorted address order — a
// paging backend partitions by address prefix, so sorted order fills
// one page at a time instead of thrashing a bounded cache across all
// of them. Call it during setup or recovery, before the network runs
// epochs. Setting the backend the table already uses is a no-op.
func (as *Accounts) SetBackend(b AccountBackend) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.b == nil || as.b == b {
		as.b = b
		return
	}
	type row struct {
		addr Address
		acc  *Account
	}
	rows := make([]row, 0, as.b.Len())
	as.b.Range(func(addr Address, acc *Account) bool {
		rows = append(rows, row{addr, acc})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		return bytes.Compare(rows[i].addr[:], rows[j].addr[:]) < 0
	})
	for _, r := range rows {
		b.Store(r.addr, r.acc)
	}
	as.b = b
}
