package chain_test

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"cosplit/internal/chain"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

var testFieldTypes = map[string]ast.Type{
	"balances": ast.MapType{Key: ast.TyByStr20, Val: ast.TyUint128},
	"nested":   ast.MapType{Key: ast.TyByStr20, Val: ast.MapType{Key: ast.TyString, Val: ast.TyUint128}},
	"total":    ast.TyUint128,
	"note":     ast.TyString,
}

func newBase() *eval.MemState {
	st := eval.NewMemState(testFieldTypes)
	st.Fields["balances"] = value.NewMap(ast.TyByStr20, ast.TyUint128)
	st.Fields["nested"] = value.NewMap(ast.TyByStr20, ast.MapType{Key: ast.TyString, Val: ast.TyUint128})
	st.Fields["total"] = value.Uint128(1000)
	st.Fields["note"] = value.Str{S: "init"}
	return st
}

func addr(i int) value.Value { return chain.AddrFromUint(uint64(i)).Value() }

// --- Overlay semantics: an overlay must behave exactly like a plain
// mutable state for any operation sequence. ---

type op struct {
	kind int // 0 set, 1 delete, 2 store-scalar
	key  int
	val  uint64
}

func randomOps(r *rand.Rand, n int) []op {
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{kind: r.Intn(3), key: r.Intn(6), val: uint64(r.Intn(1000))}
	}
	return ops
}

func applyOps(t *testing.T, st eval.StateAccess, ops []op) {
	t.Helper()
	for _, o := range ops {
		switch o.kind {
		case 0:
			if err := st.MapSet("balances", []value.Value{addr(o.key)}, value.Uint128(o.val)); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := st.MapDelete("balances", []value.Value{addr(o.key)}); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := st.StoreField("total", value.Uint128(o.val)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func statesAgree(t *testing.T, a, b eval.StateAccess, keys int) bool {
	t.Helper()
	for i := 0; i < keys; i++ {
		va, oka, err := a.MapGet("balances", []value.Value{addr(i)})
		if err != nil {
			t.Fatal(err)
		}
		vb, okb, err := b.MapGet("balances", []value.Value{addr(i)})
		if err != nil {
			t.Fatal(err)
		}
		if oka != okb || (oka && !value.Equal(va, vb)) {
			return false
		}
	}
	ta, _ := a.LoadField("total")
	tb, _ := b.LoadField("total")
	return value.Equal(ta, tb)
}

func TestOverlayMatchesDirectState(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops := randomOps(r, 20)
		base := newBase()
		direct := newBase()
		ov := chain.NewOverlay(base, testFieldTypes)
		applyOps(t, ov, ops)
		applyOps(t, direct, ops)
		return statesAgree(t, ov, direct, 6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestOverlayRoundTrip: extracting the delta and merging it into a copy
// of the base must reproduce direct application (for OwnOverwrite).
func TestOverlayRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops := randomOps(r, 20)
		base := newBase()
		ov := chain.NewOverlay(base, testFieldTypes)
		applyOps(t, ov, ops)
		d, err := ov.ExtractDelta(chain.Address{}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		merged := base.Copy()
		if err := chain.MergeDeltas(merged, []*chain.StateDelta{d}); err != nil {
			t.Fatal(err)
		}
		direct := newBase()
		applyOps(t, direct, ops)
		return statesAgree(t, merged, direct, 6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestIntMergeCommutes: IntMerge deltas from different "shards" merge
// to the same result in any order (the ⊎ PCM laws of Sec. 2.3).
func TestIntMergeCommutes(t *testing.T) {
	joins := map[string]signature.Join{"balances": signature.IntMerge, "total": signature.IntMerge}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := newBase()
		for i := 0; i < 4; i++ {
			if err := base.MapSet("balances", []value.Value{addr(i)}, value.Uint128(10_000)); err != nil {
				t.Fatal(err)
			}
		}
		mkDelta := func() *chain.StateDelta {
			ov := chain.NewOverlay(base, testFieldTypes)
			for i := 0; i < 5; i++ {
				k := r.Intn(4)
				cur, ok, err := ov.MapGet("balances", []value.Value{addr(k)})
				if err != nil {
					t.Fatal(err)
				}
				v := uint64(0)
				if ok {
					v = cur.(value.Int).V.Uint64()
				}
				if err := ov.MapSet("balances", []value.Value{addr(k)}, value.Uint128(v+uint64(r.Intn(100)))); err != nil {
					t.Fatal(err)
				}
			}
			d, err := ov.ExtractDelta(chain.Address{}, 0, joins)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
		d1, d2, d3 := mkDelta(), mkDelta(), mkDelta()

		apply := func(order []*chain.StateDelta) *eval.MemState {
			m := base.Copy()
			if err := chain.MergeDeltas(m, order); err != nil {
				t.Fatal(err)
			}
			return m
		}
		a := apply([]*chain.StateDelta{d1, d2, d3})
		b := apply([]*chain.StateDelta{d3, d1, d2})
		c := apply([]*chain.StateDelta{d2, d3, d1})
		return statesAgree(t, a, b, 4) && statesAgree(t, b, c, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMergeConflictDetected: two shards overwriting the same owned
// component is a dispatch-invariant violation the merge must detect.
func TestMergeConflictDetected(t *testing.T) {
	base := newBase()
	mk := func(v uint64) *chain.StateDelta {
		ov := chain.NewOverlay(base, testFieldTypes)
		if err := ov.MapSet("balances", []value.Value{addr(1)}, value.Uint128(v)); err != nil {
			t.Fatal(err)
		}
		d, err := ov.ExtractDelta(chain.Address{}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	err := chain.MergeDeltas(base.Copy(), []*chain.StateDelta{mk(1), mk(2)})
	if _, ok := err.(*chain.ConflictError); !ok {
		t.Errorf("expected ConflictError, got %v", err)
	}
}

// TestMergeOverflowDetected reproduces the Sec. 6 integer-overflow
// scenario: deltas that individually fit but jointly overflow.
func TestMergeOverflowDetected(t *testing.T) {
	base := newBase()
	near := new(big.Int).Sub(ast.MaxInt(ast.TyUint128), big.NewInt(5))
	if err := base.MapSet("balances", []value.Value{addr(1)}, value.Int{Ty: ast.TyUint128, V: near}); err != nil {
		t.Fatal(err)
	}
	joins := map[string]signature.Join{"balances": signature.IntMerge}
	mk := func(delta uint64) *chain.StateDelta {
		ov := chain.NewOverlay(base, testFieldTypes)
		cur, _, err := ov.MapGet("balances", []value.Value{addr(1)})
		if err != nil {
			t.Fatal(err)
		}
		nv := new(big.Int).Add(cur.(value.Int).V, new(big.Int).SetUint64(delta))
		// Construct the delta directly (simulating a shard whose local
		// execution stayed in range).
		_ = nv
		ovd := chain.NewOverlay(base, testFieldTypes)
		if err := ovd.MapSet("balances", []value.Value{addr(1)},
			value.Int{Ty: ast.TyUint128, V: new(big.Int).Add(cur.(value.Int).V, new(big.Int).SetUint64(delta))}); err != nil {
			t.Fatal(err)
		}
		d, err := ovd.ExtractDelta(chain.Address{}, 0, joins)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	err := chain.MergeDeltas(base.Copy(), []*chain.StateDelta{mk(3), mk(4)})
	if _, ok := err.(*chain.OverflowError); !ok {
		t.Errorf("expected OverflowError, got %v", err)
	}
}

// TestNestedMapDeltas covers two-level map writes.
func TestNestedMapDeltas(t *testing.T) {
	base := newBase()
	ov := chain.NewOverlay(base, testFieldTypes)
	keys := []value.Value{addr(1), value.Str{S: "k"}}
	if err := ov.MapSet("nested", keys, value.Uint128(42)); err != nil {
		t.Fatal(err)
	}
	d, err := ov.ExtractDelta(chain.Address{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged := base.Copy()
	if err := chain.MergeDeltas(merged, []*chain.StateDelta{d}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := merged.MapGet("nested", keys)
	if err != nil || !ok {
		t.Fatalf("nested entry missing after merge: %v %v", ok, err)
	}
	if v.(value.Int).V.Uint64() != 42 {
		t.Errorf("nested value = %s, want 42", v)
	}
}

// TestOverlayStacking: a per-transaction overlay over a per-shard
// overlay commits and rolls back correctly.
func TestOverlayStacking(t *testing.T) {
	base := newBase()
	shardOv := chain.NewOverlay(base, testFieldTypes)
	if err := shardOv.MapSet("balances", []value.Value{addr(1)}, value.Uint128(100)); err != nil {
		t.Fatal(err)
	}

	// Rolled-back transaction: writes dropped.
	txOv := chain.NewOverlay(shardOv, testFieldTypes)
	if err := txOv.MapSet("balances", []value.Value{addr(1)}, value.Uint128(1)); err != nil {
		t.Fatal(err)
	}
	v, _, _ := shardOv.MapGet("balances", []value.Value{addr(1)})
	if v.(value.Int).V.Uint64() != 100 {
		t.Error("dropped tx overlay leaked into shard overlay")
	}

	// Committed transaction: writes visible.
	txOv2 := chain.NewOverlay(shardOv, testFieldTypes)
	if err := txOv2.MapSet("balances", []value.Value{addr(2)}, value.Uint128(7)); err != nil {
		t.Fatal(err)
	}
	txOv2.CommitTo(shardOv)
	v2, ok, _ := shardOv.MapGet("balances", []value.Value{addr(2)})
	if !ok || v2.(value.Int).V.Uint64() != 7 {
		t.Error("committed tx overlay not visible in shard overlay")
	}
	// The base is never touched.
	if _, ok, _ := base.MapGet("balances", []value.Value{addr(1)}); ok {
		t.Error("overlay leaked into base state")
	}
}

// --- Accounts ---

func TestAccountDeltaCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a1, a2 := chain.AddrFromUint(1), chain.AddrFromUint(2)
		mkDelta := func() *chain.AccountDelta {
			d := chain.NewAccountDelta()
			d.AddBalance(a1, big.NewInt(int64(r.Intn(100))))
			d.AddBalance(a2, big.NewInt(int64(r.Intn(100))-20))
			d.BumpNonce(a1, uint64(r.Intn(10)))
			return d
		}
		d1, d2 := mkDelta(), mkDelta()
		run := func(order ...*chain.AccountDelta) *chain.Accounts {
			as := chain.NewAccounts()
			as.Create(a1, 1000, false)
			as.Create(a2, 1000, false)
			for _, d := range order {
				if err := as.Apply(d); err != nil {
					t.Fatal(err)
				}
			}
			return as
		}
		x, y := run(d1, d2), run(d2, d1)
		return x.Get(a1).Balance.Cmp(y.Get(a1).Balance) == 0 &&
			x.Get(a2).Balance.Cmp(y.Get(a2).Balance) == 0 &&
			x.Get(a1).Nonce == y.Get(a1).Nonce
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccountNegativeBalanceRejected(t *testing.T) {
	as := chain.NewAccounts()
	as.Create(chain.AddrFromUint(1), 10, false)
	d := chain.NewAccountDelta()
	d.AddBalance(chain.AddrFromUint(1), big.NewInt(-11))
	if err := as.Apply(d); err == nil {
		t.Error("expected negative-balance error")
	}
}

// --- Addresses ---

func TestShardOfStableAndInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		a := chain.AddrFromUint(uint64(i))
		s := chain.ShardOf(a, 7)
		if s < 0 || s >= 7 {
			t.Fatalf("ShardOf out of range: %d", s)
		}
		if s != chain.ShardOf(a, 7) {
			t.Fatal("ShardOf not deterministic")
		}
	}
}

func TestShardOfRoughlyUniform(t *testing.T) {
	const n = 4
	counts := make([]int, n)
	for i := 0; i < 4000; i++ {
		counts[chain.ShardOf(chain.AddrFromUint(uint64(i)), n)]++
	}
	for s, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("shard %d has %d of 4000 addresses; distribution too skewed", s, c)
		}
	}
}

func TestContractAddressDistinct(t *testing.T) {
	a := chain.ContractAddress(chain.AddrFromUint(1), 1)
	b := chain.ContractAddress(chain.AddrFromUint(1), 2)
	c := chain.ContractAddress(chain.AddrFromUint(2), 1)
	if a == b || a == c || b == c {
		t.Error("contract addresses collide")
	}
}

func TestAddressValueRoundTrip(t *testing.T) {
	a := chain.AddrFromUint(42)
	v := a.Value()
	back, ok := chain.AddressFromValue(v)
	if !ok || back != a {
		t.Errorf("address round-trip failed: %v %v", back, ok)
	}
	if _, ok := chain.AddressFromValue(value.Str{S: "no"}); ok {
		t.Error("non-address value accepted")
	}
}
