package chain

import (
	"testing"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

func benchOverlay() (*Overlay, []value.Value) {
	types := map[string]ast.Type{
		"balances": ast.MapType{Key: ast.TyByStr20, Val: ast.TyUint128},
	}
	base := eval.NewMemState(types)
	base.Fields["balances"] = value.NewMap(ast.TyByStr20, ast.TyUint128)
	keys := []value.Value{AddrFromUint(42).Value()}
	return NewOverlay(base, types), keys
}

func BenchmarkKeypath1(b *testing.B) {
	_, keys := benchOverlay()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Keypath(keys) == "" {
			b.Fatal("empty keypath")
		}
	}
}

func BenchmarkKeypath2(b *testing.B) {
	keys := []value.Value{AddrFromUint(7).Value(), AddrFromUint(9).Value()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Keypath(keys) == "" {
			b.Fatal("empty keypath")
		}
	}
}

func BenchmarkOverlayMapSet(b *testing.B) {
	ov, keys := benchOverlay()
	v := value.Uint128(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ov.MapSet("balances", keys, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverlayReadModifyWrite exercises the canonical in-shard
// access pattern: MapGet followed by MapSet of the same keys.
func BenchmarkOverlayReadModifyWrite(b *testing.B) {
	ov, keys := benchOverlay()
	v := value.Uint128(1)
	if err := ov.MapSet("balances", keys, v); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ov.MapGet("balances", keys); err != nil {
			b.Fatal(err)
		}
		if err := ov.MapSet("balances", keys, v); err != nil {
			b.Fatal(err)
		}
	}
}
