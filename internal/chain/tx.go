package chain

import (
	"math/big"

	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/value"
)

// TxKind classifies transactions.
type TxKind int

// Transaction kinds.
const (
	// TxTransfer is a plain user-to-user payment.
	TxTransfer TxKind = iota
	// TxCall invokes a contract transition.
	TxCall
	// TxDeploy deploys a new contract.
	TxDeploy
)

// Deployment is the payload of a contract-deploying transaction.
type Deployment struct {
	Source string
	Params map[string]value.Value
	// Query is the developer-selected sharding query; the miners
	// validate the resulting signature (Sec. 4.3).
	Query *signature.Query
	// ProposedSignature is the developer-computed signature; nodes
	// re-derive and compare (validation).
	ProposedSignature *signature.Signature
}

// Tx is a transaction submitted to the lookup nodes.
type Tx struct {
	ID     uint64
	Kind   TxKind
	From   Address
	To     Address
	Nonce  uint64
	Amount *big.Int
	// GasLimit bounds execution cost; GasPrice is charged per unit.
	GasLimit uint64
	GasPrice uint64
	// Transition and Args are set for TxCall.
	Transition string
	Args       map[string]value.Value
	// Deploy is set for TxDeploy.
	Deploy *Deployment
}

// GasBudget returns the maximum native-token cost of the transaction.
func (t *Tx) GasBudget() *big.Int {
	return new(big.Int).Mul(
		new(big.Int).SetUint64(t.GasLimit),
		new(big.Int).SetUint64(t.GasPrice),
	)
}

// Receipt records the outcome of a processed transaction.
type Receipt struct {
	TxID    uint64
	Success bool
	GasUsed uint64
	Error   string
	// Err is the typed form of Error: the executor's sentinel (e.g.
	// shard.ErrGasExhausted) wrapped with the transaction's id, sender
	// and nonce, so callers can errors.Is through requeue/retry paths.
	// Not serialised — receipts cross the wire as strings.
	Err error `json:"-"`
	// Events is the flat list of emitted event payloads.
	Events []value.Msg
	// Shard is the committee that processed the transaction
	// (-1 denotes the DS committee).
	Shard int
	Epoch uint64
}
