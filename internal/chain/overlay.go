package chain

import (
	"fmt"
	"strings"

	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// StateReader is the read-only view of contract state. Both
// eval.MemState and Overlay implement it, so overlays stack.
type StateReader interface {
	LoadField(name string) (value.Value, error)
	MapGet(field string, keys []value.Value) (value.Value, bool, error)
}

// keypathSep separates canonical keys in a flattened nested-map path.
const keypathSep = "\x1f"

// Keypath renders a key vector canonically. The single-key case (flat
// maps such as balances[addr], by far the most common shape) avoids the
// intermediate parts slice entirely; deeper paths are assembled in one
// strings.Builder pass.
func Keypath(keys []value.Value) string {
	switch len(keys) {
	case 0:
		return ""
	case 1:
		return value.CanonicalKey(keys[0])
	}
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(keypathSep)
		}
		sb.WriteString(value.CanonicalKey(k))
	}
	return sb.String()
}

type mapEntry struct {
	keys    []value.Value
	val     value.Value
	deleted bool
}

// Overlay is a copy-on-write view over a base state. All writes land in
// the overlay; the base is never mutated. Overlays are the unit of
// transaction rollback (per-transaction overlay dropped on throw) and
// of state-delta extraction (per-shard overlay diffed against the
// epoch-start state).
type Overlay struct {
	base       StateReader
	fieldTypes map[string]ast.Type
	// scalars holds whole-field overwrites (including map fields that
	// were stored wholesale; subsequent map ops mutate that copy).
	scalars map[string]value.Value
	// mapWrites holds per-entry writes: field -> keypath -> entry.
	mapWrites map[string]map[string]mapEntry
	// intern caches canonical keypaths for single ByStr keys (addresses
	// — by far the dominant map-key shape), indexed by the raw key
	// bytes. The cache is shared down an overlay stack (per-transaction
	// overlays inherit their parent shard overlay's table), so repeated
	// accesses to the same address across transactions canonicalise
	// once. Never shared across goroutines: each shard or group overlay
	// stack is driven by a single executor.
	intern map[string]string
	// merged caches the materialised merge of LoadField for map fields
	// with pending entry writes; invalidated by any write to the field.
	merged map[string]value.Value
	// spare recycles per-field write tables across Reset cycles so a
	// pooled per-transaction overlay stops allocating fresh maps for
	// every transaction that touches the same fields.
	spare []map[string]mapEntry
}

// keypath returns Keypath(keys), interning the single-ByStr-key case.
func (o *Overlay) keypath(keys []value.Value) string {
	if len(keys) == 1 {
		if b, ok := keys[0].(value.ByStr); ok {
			if p, ok := o.intern[string(b.B)]; ok {
				return p
			}
			p := value.CanonicalKey(keys[0])
			o.intern[string(b.B)] = p
			return p
		}
	}
	return Keypath(keys)
}

// NewOverlay creates an overlay over base. An overlay stacked on
// another overlay shares its parent's keypath intern table.
func NewOverlay(base StateReader, fieldTypes map[string]ast.Type) *Overlay {
	o := &Overlay{
		base:       base,
		fieldTypes: fieldTypes,
		scalars:    make(map[string]value.Value),
		mapWrites:  make(map[string]map[string]mapEntry),
	}
	if p, ok := base.(*Overlay); ok {
		o.intern = p.intern
	} else {
		o.intern = make(map[string]string)
	}
	return o
}

// Reset rewinds the overlay to an empty view over base, recycling its
// internal maps. Executors that create one short-lived overlay per
// transaction (rollback scopes) keep a single pooled overlay and Reset
// it instead of allocating a fresh one: the write tables, cleared in
// place, keep their buckets, so steady-state execution stops paying
// map growth and the GC pressure that comes with it. Values previously
// read from or committed out of the overlay are unaffected — Reset
// drops references, it never mutates values.
func (o *Overlay) Reset(base StateReader, fieldTypes map[string]ast.Type) {
	o.base = base
	o.fieldTypes = fieldTypes
	clear(o.scalars)
	for f, w := range o.mapWrites {
		clear(w)
		o.spare = append(o.spare, w)
		delete(o.mapWrites, f)
	}
	clear(o.merged)
	if p, ok := base.(*Overlay); ok {
		o.intern = p.intern
	} else if o.intern == nil {
		o.intern = make(map[string]string)
	}
}

// writesFor returns the per-field write table, reusing a recycled one
// before allocating.
func (o *Overlay) writesFor(field string) map[string]mapEntry {
	w, ok := o.mapWrites[field]
	if !ok {
		if n := len(o.spare); n > 0 {
			w = o.spare[n-1]
			o.spare[n-1] = nil
			o.spare = o.spare[:n-1]
		} else {
			w = make(map[string]mapEntry)
		}
		o.mapWrites[field] = w
	}
	return w
}

// fieldMapDepth returns the nesting depth of a map field.
func fieldMapDepth(t ast.Type) int {
	d := 0
	for {
		mt, ok := t.(ast.MapType)
		if !ok {
			return d
		}
		d++
		t = mt.Val
	}
}

// LoadField implements eval.StateAccess. Loading a map field with
// pending entry writes materialises a merged copy.
func (o *Overlay) LoadField(name string) (value.Value, error) {
	if v, ok := o.scalars[name]; ok {
		return v, nil
	}
	baseVal, err := o.base.LoadField(name)
	if err != nil {
		return nil, err
	}
	writes := o.mapWrites[name]
	if len(writes) == 0 {
		return baseVal, nil
	}
	if v, ok := o.merged[name]; ok {
		return v, nil
	}
	bm, ok := baseVal.(*value.Map)
	if !ok {
		return nil, fmt.Errorf("field %s has entry writes but is not a map", name)
	}
	merged := bm.Copy()
	for _, e := range writes {
		if e.deleted {
			deleteNested(merged, e.keys)
		} else if err := setNested(merged, e.keys, e.val, o.fieldTypes[name]); err != nil {
			return nil, err
		}
	}
	if o.merged == nil {
		o.merged = make(map[string]value.Value)
	}
	o.merged[name] = merged
	return merged, nil
}

// StoreField implements eval.StateAccess.
func (o *Overlay) StoreField(name string, v value.Value) error {
	if _, ok := o.fieldTypes[name]; !ok {
		return fmt.Errorf("unknown field %s", name)
	}
	// A wholesale store supersedes any pending entry writes.
	delete(o.mapWrites, name)
	delete(o.merged, name)
	o.scalars[name] = value.Copy(v)
	return nil
}

// MapGet implements eval.StateAccess.
func (o *Overlay) MapGet(field string, keys []value.Value) (value.Value, bool, error) {
	if v, ok := o.scalars[field]; ok {
		m, ok := v.(*value.Map)
		if !ok {
			return nil, false, fmt.Errorf("field %s is not a map", field)
		}
		return getNested(m, keys)
	}
	if e, ok := o.mapWrites[field][o.keypath(keys)]; ok {
		if e.deleted {
			return nil, false, nil
		}
		return e.val, true, nil
	}
	return o.base.MapGet(field, keys)
}

// MapSet implements eval.StateAccess.
func (o *Overlay) MapSet(field string, keys []value.Value, v value.Value) error {
	if sv, ok := o.scalars[field]; ok {
		m, ok := sv.(*value.Map)
		if !ok {
			return fmt.Errorf("field %s is not a map", field)
		}
		return setNested(m, keys, value.Copy(v), o.fieldTypes[field])
	}
	w := o.writesFor(field)
	delete(o.merged, field)
	kp := o.keypath(keys)
	w[kp] = mapEntry{keys: o.ownKeys(w, kp, keys), val: value.Copy(v)}
	return nil
}

// ownKeys returns a key slice the overlay may retain: callers (the
// interpreter's map-statement path) reuse their key buffers, so the
// slice is copied on first write of a keypath and reused on overwrite.
func (o *Overlay) ownKeys(w map[string]mapEntry, kp string, keys []value.Value) []value.Value {
	if old, ok := w[kp]; ok {
		return old.keys
	}
	return append([]value.Value(nil), keys...)
}

// MapDelete implements eval.StateAccess.
func (o *Overlay) MapDelete(field string, keys []value.Value) error {
	if sv, ok := o.scalars[field]; ok {
		m, ok := sv.(*value.Map)
		if !ok {
			return fmt.Errorf("field %s is not a map", field)
		}
		deleteNested(m, keys)
		return nil
	}
	w := o.writesFor(field)
	delete(o.merged, field)
	kp := o.keypath(keys)
	w[kp] = mapEntry{keys: o.ownKeys(w, kp, keys), deleted: true}
	return nil
}

// keypathCK joins precomputed per-level canonical keys into a keypath.
func keypathCK(cks []string) string {
	switch len(cks) {
	case 0:
		return ""
	case 1:
		return cks[0]
	}
	return strings.Join(cks, keypathSep)
}

// MapGetCK implements eval.KeyedState: MapGet with precomputed
// canonical keys, skipping per-access keypath canonicalisation.
func (o *Overlay) MapGetCK(field string, cks []string, keys []value.Value) (value.Value, bool, error) {
	if v, ok := o.scalars[field]; ok {
		m, ok := v.(*value.Map)
		if !ok {
			return nil, false, fmt.Errorf("field %s is not a map", field)
		}
		return getNestedCK(m, cks)
	}
	if e, ok := o.mapWrites[field][keypathCK(cks)]; ok {
		if e.deleted {
			return nil, false, nil
		}
		return e.val, true, nil
	}
	if ks, ok := o.base.(eval.KeyedState); ok {
		return ks.MapGetCK(field, cks, keys)
	}
	return o.base.MapGet(field, keys)
}

// MapSetCK implements eval.KeyedState.
func (o *Overlay) MapSetCK(field string, cks []string, keys []value.Value, v value.Value) error {
	if sv, ok := o.scalars[field]; ok {
		m, ok := sv.(*value.Map)
		if !ok {
			return fmt.Errorf("field %s is not a map", field)
		}
		return setNestedCK(m, cks, keys, value.Copy(v), o.fieldTypes[field])
	}
	w := o.writesFor(field)
	delete(o.merged, field)
	kp := keypathCK(cks)
	w[kp] = mapEntry{keys: o.ownKeys(w, kp, keys), val: value.Copy(v)}
	return nil
}

// MapDeleteCK implements eval.KeyedState.
func (o *Overlay) MapDeleteCK(field string, cks []string, keys []value.Value) error {
	if sv, ok := o.scalars[field]; ok {
		m, ok := sv.(*value.Map)
		if !ok {
			return fmt.Errorf("field %s is not a map", field)
		}
		deleteNestedCK(m, cks)
		return nil
	}
	w := o.writesFor(field)
	delete(o.merged, field)
	kp := keypathCK(cks)
	w[kp] = mapEntry{keys: o.ownKeys(w, kp, keys), deleted: true}
	return nil
}

// CommitTo folds this overlay's writes into its parent overlay. The
// receiver must have been created with (or Reset onto) parent as its
// base, and is considered consumed afterwards: its values and key
// slices transfer to the parent without re-copying — the overlay
// already owns copies of everything it stores, so handing them over is
// safe as long as the committed overlay is discarded or Reset before
// its next write.
func (o *Overlay) CommitTo(parent *Overlay) {
	for f, v := range o.scalars {
		delete(parent.mapWrites, f)
		delete(parent.merged, f)
		// Scalars stay copied: the parent's wholesale map copy is
		// mutated in place by later entry folds, so it must not alias
		// values the committed transition may have exposed in results.
		parent.scalars[f] = value.Copy(v)
	}
	for f, writes := range o.mapWrites {
		if sv, ok := parent.scalars[f]; ok {
			// The parent holds the field wholesale; fold entries into
			// that materialised copy, as MapSet/MapDelete would.
			m, ok := sv.(*value.Map)
			if !ok {
				continue
			}
			for _, e := range writes {
				if e.deleted {
					deleteNested(m, e.keys)
				} else {
					setNested(m, e.keys, e.val, parent.fieldTypes[f]) //nolint:errcheck // validated on child write
				}
			}
			continue
		}
		pw := parent.writesFor(f)
		delete(parent.merged, f)
		for kp, e := range writes {
			if old, ok := pw[kp]; ok {
				// Keep the parent's owned key slice on overwrite,
				// mirroring ownKeys.
				e.keys = old.keys
			}
			pw[kp] = e
		}
	}
}

// Touched reports whether the overlay holds any writes.
func (o *Overlay) Touched() bool {
	return len(o.scalars) > 0 || len(o.mapWrites) > 0
}

// --- nested map helpers operating on materialised map values ---

func getNested(m *value.Map, keys []value.Value) (value.Value, bool, error) {
	cur := m
	for i := 0; i < len(keys)-1; i++ {
		v, ok := cur.Get(keys[i])
		if !ok {
			return nil, false, nil
		}
		nm, ok := v.(*value.Map)
		if !ok {
			return nil, false, fmt.Errorf("non-map value at nesting depth %d", i)
		}
		cur = nm
	}
	v, ok := cur.Get(keys[len(keys)-1])
	return v, ok, nil
}

func setNested(m *value.Map, keys []value.Value, v value.Value, fieldType ast.Type) error {
	cur := m
	t := fieldType
	for i := 0; i < len(keys)-1; i++ {
		mt, ok := t.(ast.MapType)
		if !ok {
			return fmt.Errorf("field not nested at depth %d", i)
		}
		t = mt.Val
		next, found := cur.Get(keys[i])
		if !found {
			inner, ok := t.(ast.MapType)
			if !ok {
				return fmt.Errorf("field not nested at depth %d", i+1)
			}
			nm := value.NewMap(inner.Key, inner.Val)
			cur.Set(keys[i], nm)
			next = nm
		}
		nm, ok := next.(*value.Map)
		if !ok {
			return fmt.Errorf("non-map value at nesting depth %d", i)
		}
		cur = nm
	}
	cur.Set(keys[len(keys)-1], v)
	return nil
}

func deleteNested(m *value.Map, keys []value.Value) {
	cur := m
	for i := 0; i < len(keys)-1; i++ {
		v, ok := cur.Get(keys[i])
		if !ok {
			return
		}
		nm, ok := v.(*value.Map)
		if !ok {
			return
		}
		cur = nm
	}
	cur.Delete(keys[len(keys)-1])
}

// CK variants of the nested helpers, using precomputed canonical keys.

func getNestedCK(m *value.Map, cks []string) (value.Value, bool, error) {
	cur := m
	for i := 0; i < len(cks)-1; i++ {
		v, ok := cur.GetCK(cks[i])
		if !ok {
			return nil, false, nil
		}
		nm, ok := v.(*value.Map)
		if !ok {
			return nil, false, fmt.Errorf("non-map value at nesting depth %d", i)
		}
		cur = nm
	}
	v, ok := cur.GetCK(cks[len(cks)-1])
	return v, ok, nil
}

func setNestedCK(m *value.Map, cks []string, keys []value.Value, v value.Value, fieldType ast.Type) error {
	cur := m
	t := fieldType
	for i := 0; i < len(cks)-1; i++ {
		mt, ok := t.(ast.MapType)
		if !ok {
			return fmt.Errorf("field not nested at depth %d", i)
		}
		t = mt.Val
		next, found := cur.GetCK(cks[i])
		if !found {
			inner, ok := t.(ast.MapType)
			if !ok {
				return fmt.Errorf("field not nested at depth %d", i+1)
			}
			nm := value.NewMap(inner.Key, inner.Val)
			cur.SetCK(cks[i], keys[i], nm)
			next = nm
		}
		nm, ok := next.(*value.Map)
		if !ok {
			return fmt.Errorf("non-map value at nesting depth %d", i)
		}
		cur = nm
	}
	cur.SetCK(cks[len(cks)-1], keys[len(keys)-1], v)
	return nil
}

func deleteNestedCK(m *value.Map, cks []string) {
	cur := m
	for i := 0; i < len(cks)-1; i++ {
		v, ok := cur.GetCK(cks[i])
		if !ok {
			return
		}
		nm, ok := v.(*value.Map)
		if !ok {
			return
		}
		cur = nm
	}
	cur.DeleteCK(cks[len(cks)-1])
}

// Interface conformance checks.
var (
	_ eval.StateAccess = (*Overlay)(nil)
	_ eval.KeyedState  = (*Overlay)(nil)
	_ eval.KeyedState  = (*eval.MemState)(nil)
	_ StateReader      = (*Overlay)(nil)
	_ StateReader      = (*eval.MemState)(nil)
)

// ApplyTo folds the overlay's writes directly into a mutable state (the
// DS committee's per-epoch working copy). Unlike ExtractDelta+Merge it
// performs no copying of untouched state.
func (o *Overlay) ApplyTo(st *eval.MemState) error {
	for f, v := range o.scalars {
		if err := st.StoreField(f, value.Copy(v)); err != nil {
			return err
		}
	}
	for f, writes := range o.mapWrites {
		for _, e := range writes {
			if e.deleted {
				if err := st.MapDelete(f, e.keys); err != nil {
					return err
				}
			} else if err := st.MapSet(f, e.keys, value.Copy(e.val)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Components calls f for every state component the overlay writes:
// whole-field overwrites (empty keypath, nil keys) and per-entry map
// writes (the entry's keypath and key vector). Callers that folded the
// overlay with ApplyTo use it to re-commit exactly the touched
// components of an authenticated root.
func (o *Overlay) Components(f func(field, keypath string, keys []value.Value) error) error {
	for field := range o.scalars {
		if err := f(field, "", nil); err != nil {
			return err
		}
	}
	for field, writes := range o.mapWrites {
		for kp, e := range writes {
			if err := f(field, kp, e.keys); err != nil {
				return err
			}
		}
	}
	return nil
}
