package chain_test

import (
	"strings"
	"testing"

	"cosplit/internal/chain"
	"cosplit/internal/contracts"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/value"
)

func ftParams(owner chain.Address) map[string]value.Value {
	return map[string]value.Value{
		"contract_owner": owner.Value(),
		"token_name":     value.Str{S: "T"},
		"token_symbol":   value.Str{S: "T"},
		"decimals":       value.Uint32V(6),
		"init_supply":    value.Uint128(100),
	}
}

func TestDeployPipeline(t *testing.T) {
	owner := chain.AddrFromUint(1)
	addr := chain.ContractAddress(owner, 1)
	entry, _ := contracts.Get("FungibleToken")
	c, err := chain.Deploy(addr, entry.Source, ftParams(owner), &chain.Deployment{
		Query: &signature.Query{
			Transitions: []string{"Transfer"},
			WeakReads:   []string{"balances"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Sig == nil {
		t.Fatal("signature missing after deploy with query")
	}
	if len(c.Sig.Constraints["Transfer"]) == 0 {
		t.Error("Transfer constraints missing")
	}
	// Initial state reflects the initialisers.
	v, ok, err := c.Snapshot().MapGet("balances", []value.Value{owner.Value()})
	if err != nil || !ok || v.(value.Int).V.Uint64() != 100 {
		t.Errorf("owner balance after deploy = %v %v %v", v, ok, err)
	}
	if got := c.TransitionParams("Transfer"); len(got) != 2 {
		t.Errorf("TransitionParams = %v", got)
	}
	if c.TransitionParams("Nope") != nil {
		t.Error("unknown transition has params")
	}
}

// TestDeploySignatureValidation: miners re-derive the proposed
// signature; a forged one is rejected (Sec. 4.3, "Validating Sharding
// Signatures").
func TestDeploySignatureValidation(t *testing.T) {
	owner := chain.AddrFromUint(1)
	entry, _ := contracts.Get("FungibleToken")
	q := &signature.Query{Transitions: []string{"Transfer"}, WeakReads: []string{"balances"}}

	// An honest proposal validates.
	honest, err := chain.Deploy(chain.ContractAddress(owner, 1), entry.Source, ftParams(owner),
		&chain.Deployment{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Deploy(chain.ContractAddress(owner, 2), entry.Source, ftParams(owner),
		&chain.Deployment{Query: q, ProposedSignature: honest.Sig}); err != nil {
		t.Fatalf("honest signature rejected: %v", err)
	}

	// A forged signature (extra constraints stripped) is rejected.
	forged := *honest.Sig
	forged.Constraints = map[string][]signature.Constraint{"Transfer": {}}
	_, err = chain.Deploy(chain.ContractAddress(owner, 3), entry.Source, ftParams(owner),
		&chain.Deployment{Query: q, ProposedSignature: &forged})
	if err == nil || !strings.Contains(err.Error(), "does not validate") {
		t.Errorf("forged signature accepted: %v", err)
	}
}

func TestDeployErrors(t *testing.T) {
	owner := chain.AddrFromUint(1)
	if _, err := chain.Deploy(chain.Address{}, "scilla_version 0\ncontract", nil, nil); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := chain.Deploy(chain.Address{},
		"scilla_version 0\ncontract C ()\nfield x : Uint128 = Uint32 1\n", nil, nil); err == nil {
		t.Error("type error not reported")
	}
	entry, _ := contracts.Get("FungibleToken")
	if _, err := chain.Deploy(chain.Address{}, entry.Source,
		map[string]value.Value{}, nil); err == nil {
		t.Error("missing contract parameters not reported")
	}
	_ = owner
}

func TestContractsRegistry(t *testing.T) {
	cs := chain.NewContracts()
	owner := chain.AddrFromUint(1)
	entry, _ := contracts.Get("FungibleToken")
	c, err := chain.Deploy(chain.ContractAddress(owner, 1), entry.Source, ftParams(owner), nil)
	if err != nil {
		t.Fatal(err)
	}
	cs.Add(c)
	if cs.Get(c.Addr) != c {
		t.Error("registry lookup failed")
	}
	if cs.Get(chain.AddrFromUint(42)) != nil {
		t.Error("phantom contract found")
	}
	if len(cs.All()) != 1 {
		t.Error("All() wrong")
	}
}

func TestReplaceState(t *testing.T) {
	owner := chain.AddrFromUint(1)
	entry, _ := contracts.Get("FungibleToken")
	c, err := chain.Deploy(chain.ContractAddress(owner, 1), entry.Source, ftParams(owner), nil)
	if err != nil {
		t.Fatal(err)
	}
	next := c.Snapshot().Copy()
	if err := next.StoreField("total_supply", value.Uint128(42)); err != nil {
		t.Fatal(err)
	}
	c.ReplaceState(next)
	v, err := c.Snapshot().LoadField("total_supply")
	if err != nil || v.(value.Int).V.Uint64() != 42 {
		t.Errorf("state replacement failed: %v %v", v, err)
	}
}
