package chain

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/value"
)

// DeltaKind classifies a single state-delta entry.
type DeltaKind int

// Delta entry kinds. IntAdd carries a signed integer delta to be added
// at merge time (the IntMerge join); Overwrite and Delete carry the
// final value of a disjointly-owned component (OwnOverwrite).
const (
	Overwrite DeltaKind = iota
	IntAdd
	Delete
)

func (k DeltaKind) String() string {
	switch k {
	case IntAdd:
		return "IntAdd"
	case Delete:
		return "Delete"
	default:
		return "Overwrite"
	}
}

// EntryDelta is the delta for one map entry.
type EntryDelta struct {
	Kind  DeltaKind
	Keys  []value.Value
	Value value.Value // Overwrite
	Delta *big.Int    // IntAdd
}

// FieldDelta is the delta for one contract field.
type FieldDelta struct {
	// Whole is set when the entire field was written; Entries is used
	// for per-entry map writes.
	Whole   *EntryDelta
	Entries map[string]EntryDelta // keypath -> delta
}

// StateDelta is a shard's per-contract state contribution for an epoch
// (the SD in Fig. 10).
type StateDelta struct {
	Contract Address
	Shard    int
	Fields   map[string]*FieldDelta
}

// Empty reports whether the delta carries no changes.
func (d *StateDelta) Empty() bool { return len(d.Fields) == 0 }

// Size returns the number of changed components.
func (d *StateDelta) Size() int {
	n := 0
	for _, fd := range d.Fields {
		if fd.Whole != nil {
			n++
		}
		n += len(fd.Entries)
	}
	return n
}

// String renders the delta for debugging.
func (d *StateDelta) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "delta[%s shard=%d]{", d.Contract, d.Shard)
	fields := make([]string, 0, len(d.Fields))
	for f := range d.Fields {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		fd := d.Fields[f]
		if fd.Whole != nil {
			fmt.Fprintf(&sb, " %s:%s", f, fd.Whole.Kind)
		}
		for kp, e := range fd.Entries {
			fmt.Fprintf(&sb, " %s[%q]:%s", f, kp, e.Kind)
		}
	}
	sb.WriteString(" }")
	return sb.String()
}

// intOf extracts a big.Int from an integer value.
func intOf(v value.Value) (*big.Int, bool) {
	iv, ok := v.(value.Int)
	if !ok {
		return nil, false
	}
	return iv.V, true
}

// ExtractDelta diffs the overlay against its base, producing a state
// delta. Fields with an IntMerge join contribute signed integer deltas;
// all other writes contribute overwrites of the final values. The
// overlay's base must be the epoch-start state the delta is relative to.
func (o *Overlay) ExtractDelta(contract Address, shard int, joins map[string]signature.Join) (*StateDelta, error) {
	d := &StateDelta{Contract: contract, Shard: shard, Fields: make(map[string]*FieldDelta)}
	fieldDelta := func(f string) *FieldDelta {
		fd, ok := d.Fields[f]
		if !ok {
			fd = &FieldDelta{Entries: make(map[string]EntryDelta)}
			d.Fields[f] = fd
		}
		return fd
	}
	// Values flow into the delta by reference: every apply sink
	// (applyWhole, applyEntry) copies before mutating canonical state,
	// and overlay values are never mutated in place, so the extra
	// defensive copy here only cost allocations.
	for f, v := range o.scalars {
		fd := fieldDelta(f)
		if joins[f] == signature.IntMerge {
			newInt, ok1 := intOf(v)
			baseVal, err := o.base.LoadField(f)
			if err != nil {
				return nil, err
			}
			oldInt, ok2 := intOf(baseVal)
			if ok1 && ok2 {
				fd.Whole = &EntryDelta{Kind: IntAdd, Delta: new(big.Int).Sub(newInt, oldInt)}
				continue
			}
		}
		fd.Whole = &EntryDelta{Kind: Overwrite, Value: v}
	}
	// baseKeyed lets single-key lookups reuse the entry's canonical
	// keypath instead of re-canonicalising the key per entry.
	baseKeyed, _ := o.base.(eval.KeyedState)
	var ckBuf [1]string
	for f, writes := range o.mapWrites {
		fd := fieldDelta(f)
		for kp, e := range writes {
			switch {
			case e.deleted:
				fd.Entries[kp] = EntryDelta{Kind: Delete, Keys: e.keys}
			case joins[f] == signature.IntMerge:
				newInt, ok := intOf(e.val)
				if !ok {
					fd.Entries[kp] = EntryDelta{Kind: Overwrite, Keys: e.keys, Value: e.val}
					continue
				}
				var bv value.Value
				var found bool
				var err error
				if baseKeyed != nil && len(e.keys) == 1 {
					ckBuf[0] = kp
					bv, found, err = baseKeyed.MapGetCK(f, ckBuf[:], e.keys)
				} else {
					bv, found, err = o.base.MapGet(f, e.keys)
				}
				if err != nil {
					return nil, err
				}
				old := new(big.Int)
				if found {
					if oi, ok := intOf(bv); ok {
						old = oi
					}
				}
				fd.Entries[kp] = EntryDelta{Kind: IntAdd, Keys: e.keys, Delta: new(big.Int).Sub(newInt, old)}
			default:
				fd.Entries[kp] = EntryDelta{Kind: Overwrite, Keys: e.keys, Value: e.val}
			}
		}
	}
	return d, nil
}

// ConflictError reports two shards writing the same disjointly-owned
// component in one epoch — a dispatch invariant violation.
type ConflictError struct {
	Contract Address
	Field    string
	Keypath  string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("merge conflict on %s.%s[%q]", e.Contract, e.Field, e.Keypath)
}

// OverflowError reports an integer overflow produced by joining deltas
// that individually fit (the Sec. 6 integer-overflow discussion).
type OverflowError struct {
	Contract Address
	Field    string
	Keypath  string
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("integer overflow merging %s.%s[%q]", e.Contract, e.Field, e.Keypath)
}

// MergeDeltas performs the deterministic three-way merge of Sec. 4.3:
// it folds every shard's state delta into the canonical epoch-start
// state. Overwrites of the same component by two shards are conflicts
// (dispatch must prevent them); integer deltas are summed with overflow
// checking.
func MergeDeltas(st *eval.MemState, deltas []*StateDelta) error {
	overwritten := map[slot2]bool{}
	for _, d := range deltas {
		for f, fd := range d.Fields {
			if fd.Whole != nil {
				if err := applyWhole(st, d.Contract, f, fd.Whole, overwritten); err != nil {
					return err
				}
			}
			// Deterministic entry order.
			kps := make([]string, 0, len(fd.Entries))
			for kp := range fd.Entries {
				kps = append(kps, kp)
			}
			sort.Strings(kps)
			for _, kp := range kps {
				e := fd.Entries[kp]
				if err := applyEntry(st, d.Contract, f, kp, e, overwritten); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// MergeCommutative folds the per-group deltas of one contract from an
// intra-shard parallel run into a single delta, pairwise, through the
// same join semantics as MergeDeltas: integer deltas (IntMerge) sum,
// everything else must be touched by at most one group. The footprint
// grouping guarantees disjointness of all non-additive components, so a
// conflict here signals a grouping bug; callers treat it as a fallback
// trigger, not a user error. No overflow check is performed — the
// summed delta flows into MergeDeltas, which range-checks on apply.
func MergeCommutative(deltas []*StateDelta) (*StateDelta, error) {
	out := &StateDelta{Fields: make(map[string]*FieldDelta)}
	if len(deltas) > 0 {
		out.Contract = deltas[0].Contract
		out.Shard = deltas[0].Shard
	}
	for _, d := range deltas {
		for f, fd := range d.Fields {
			ofd, ok := out.Fields[f]
			if !ok {
				ofd = &FieldDelta{Entries: make(map[string]EntryDelta, len(fd.Entries))}
				out.Fields[f] = ofd
			}
			if fd.Whole != nil {
				switch {
				case len(ofd.Entries) > 0:
					return nil, &ConflictError{Contract: out.Contract, Field: f}
				case ofd.Whole == nil:
					ofd.Whole = fd.Whole
				case ofd.Whole.Kind == IntAdd && fd.Whole.Kind == IntAdd:
					ofd.Whole = &EntryDelta{Kind: IntAdd, Delta: new(big.Int).Add(ofd.Whole.Delta, fd.Whole.Delta)}
				default:
					return nil, &ConflictError{Contract: out.Contract, Field: f}
				}
			}
			if len(fd.Entries) > 0 && ofd.Whole != nil {
				return nil, &ConflictError{Contract: out.Contract, Field: f}
			}
			for kp, e := range fd.Entries {
				have, ok := ofd.Entries[kp]
				if !ok {
					ofd.Entries[kp] = e
					continue
				}
				if have.Kind == IntAdd && e.Kind == IntAdd {
					ofd.Entries[kp] = EntryDelta{
						Kind:  IntAdd,
						Keys:  have.Keys,
						Delta: new(big.Int).Add(have.Delta, e.Delta),
					}
					continue
				}
				return nil, &ConflictError{Contract: out.Contract, Field: f, Keypath: kp}
			}
		}
	}
	return out, nil
}

func applyWhole(st *eval.MemState, contract Address, f string, e *EntryDelta, overwritten map[slot2]bool) error {
	s := slot2{field: f}
	switch e.Kind {
	case IntAdd:
		cur, err := st.LoadField(f)
		if err != nil {
			return err
		}
		iv, ok := cur.(value.Int)
		if !ok {
			return fmt.Errorf("field %s is not an integer", f)
		}
		sum := new(big.Int).Add(iv.V, e.Delta)
		if !inRangeOf(iv, sum) {
			return &OverflowError{Contract: contract, Field: f}
		}
		return st.StoreField(f, value.Int{Ty: iv.Ty, V: sum})
	default:
		if overwritten[s] {
			return &ConflictError{Contract: contract, Field: f}
		}
		overwritten[s] = true
		return st.StoreField(f, value.Copy(e.Value))
	}
}

func applyEntry(st *eval.MemState, contract Address, f, kp string, e EntryDelta, overwritten map[slot2]bool) error {
	s := slot2{field: f, kp: kp}
	switch e.Kind {
	case IntAdd:
		cur := new(big.Int)
		var ty value.Int
		v, found, err := st.MapGet(f, e.Keys)
		if err != nil {
			return err
		}
		if found {
			iv, ok := v.(value.Int)
			if !ok {
				return fmt.Errorf("entry %s[%q] is not an integer", f, kp)
			}
			cur = iv.V
			ty = iv
		} else {
			// Absent entries merge as zero of the leaf type.
			lt, err := leafIntType(st, f, len(e.Keys))
			if err != nil {
				return err
			}
			ty = value.Int{Ty: lt}
		}
		sum := new(big.Int).Add(cur, e.Delta)
		if !inRangeOf(ty, sum) {
			return &OverflowError{Contract: contract, Field: f, Keypath: kp}
		}
		return st.MapSet(f, e.Keys, value.Int{Ty: ty.Ty, V: sum})
	case Delete:
		if overwritten[s] {
			return &ConflictError{Contract: contract, Field: f, Keypath: kp}
		}
		overwritten[s] = true
		return st.MapDelete(f, e.Keys)
	default:
		if overwritten[s] {
			return &ConflictError{Contract: contract, Field: f, Keypath: kp}
		}
		overwritten[s] = true
		return st.MapSet(f, e.Keys, value.Copy(e.Value))
	}
}

type slot2 struct{ field, kp string }

func inRangeOf(sample value.Int, v *big.Int) bool {
	if sample.Ty.IntWidth() == 0 {
		return true
	}
	return ast.InRange(sample.Ty, v)
}

// leafIntType returns the integer type at the bottom of a (possibly
// nested) map field.
func leafIntType(st *eval.MemState, field string, depth int) (ast.PrimType, error) {
	t, ok := st.Types[field]
	if !ok {
		return ast.PrimType{}, fmt.Errorf("unknown field %s", field)
	}
	for i := 0; i < depth; i++ {
		mt, ok := t.(ast.MapType)
		if !ok {
			return ast.PrimType{}, fmt.Errorf("field %s not nested at depth %d", field, i)
		}
		t = mt.Val
	}
	pt, ok := t.(ast.PrimType)
	if !ok || !pt.IsInt() {
		return ast.PrimType{}, fmt.Errorf("field %s leaf is not an integer", field)
	}
	return pt, nil
}
