package chain

import (
	"fmt"
	"sync"

	"cosplit/internal/core/analysis"
	"cosplit/internal/core/signature"
	"cosplit/internal/scilla/compile"
	"cosplit/internal/scilla/eval"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
	"cosplit/internal/scilla/value"
)

// Contract is a deployed contract: its checked code, immutable
// parameters, canonical state, and (optionally) its sharding signature.
type Contract struct {
	Addr    Address
	Checked *typecheck.Checked
	Interp  *eval.Interpreter
	// Compiled is the closure-chain compiled form of the contract's
	// transitions, built once at deployment; transitions the compiler
	// cannot handle transparently fall back to Interp.
	Compiled *compile.Program
	// Sig is the validated sharding signature; nil means the contract
	// uses the default (baseline) sharding strategy.
	Sig    *signature.Signature
	Params map[string]value.Value
	// State is the canonical contract state, advanced only at epoch
	// boundaries by the DS committee. Under a pager it may be nil while
	// the state is evicted to disk; access it through Snapshot, which
	// faults it back in.
	State *eval.MemState
	// mu guards State replacement at epoch boundaries. When a pager is
	// attached it is unused: the pager's own lock is the sole authority
	// over State residency.
	mu sync.RWMutex
	// pager, when non-nil, owns State residency (set by
	// Contracts.AttachPager before the network runs epochs).
	pager ContractPager
}

// ContractPager pages canonical contract state to disk. internal/pager
// implements it; the interface lives here so chain stays free of
// on-disk concerns (and because the wire codecs the pager reuses
// already import packages above chain). All residency bookkeeping —
// including reads and writes of Contract.State on paged contracts —
// happens under the pager's internal lock.
type ContractPager interface {
	// Acquire returns the contract's canonical state, faulting it from
	// disk if evicted, and marks it recently used.
	Acquire(c *Contract) *eval.MemState
	// Replace installs a new canonical state and marks it dirty (it
	// will be written back at the next flush or eviction).
	Replace(c *Contract, st *eval.MemState)
	// Admit registers a contract whose resident state the pager should
	// start tracking (deployment, or pager attach).
	Admit(c *Contract)
}

// Deploy runs the full contract-deployment pipeline a miner would run:
// parse, typecheck, construct the interpreter, initialise state, and —
// when a sharding query is supplied — run the CoSplit analysis, derive
// the signature, and (if a proposed signature is attached) validate it.
func Deploy(addr Address, source string, params map[string]value.Value, dep *Deployment) (*Contract, error) {
	m, err := parser.ParseModule(source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	chk, err := typecheck.Check(m)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	allParams := make(map[string]value.Value, len(params)+1)
	for k, v := range params {
		allParams[k] = v
	}
	allParams["_this_address"] = addr.Value()
	in, err := eval.New(chk, allParams)
	if err != nil {
		return nil, fmt.Errorf("init: %w", err)
	}
	st := eval.NewMemState(chk.FieldTypes)
	if err := st.InitFrom(in); err != nil {
		return nil, fmt.Errorf("field init: %w", err)
	}
	c := &Contract{
		Addr:     addr,
		Checked:  chk,
		Interp:   in,
		Compiled: compile.New(in),
		Params:   allParams,
		State:    st,
	}
	if dep != nil && dep.Query != nil {
		an, err := analysis.New(chk)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		sums, err := an.AnalyzeAll()
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		sig, err := signature.Derive(sums, *dep.Query)
		if err != nil {
			return nil, fmt.Errorf("signature: %w", err)
		}
		if dep.ProposedSignature != nil && dep.ProposedSignature.String() != sig.String() {
			return nil, fmt.Errorf("proposed sharding signature does not validate")
		}
		c.Sig = sig
	}
	return c, nil
}

// Snapshot returns the canonical state (callers must not mutate it; use
// an Overlay for execution). Under a pager the state may have been
// evicted; Snapshot faults it back in from disk. The returned pointer
// stays valid even if the pager later evicts the contract again —
// eviction drops the pager's reference, never the caller's.
func (c *Contract) Snapshot() *eval.MemState {
	if p := c.pager; p != nil {
		return p.Acquire(c)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.State
}

// ReplaceState installs a new canonical state (DS committee, at epoch
// end).
func (c *Contract) ReplaceState(st *eval.MemState) {
	if p := c.pager; p != nil {
		p.Replace(c, st)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.State = st
}

// TransitionParams returns the declared parameter names of a
// transition, or nil if unknown.
func (c *Contract) TransitionParams(transition string) []string {
	tr := c.Checked.Module.Contract.TransitionByName(transition)
	if tr == nil {
		return nil
	}
	out := make([]string, 0, len(tr.Params))
	for _, p := range tr.Params {
		out = append(out, p.Name)
	}
	return out
}

// Contracts is the global contract registry.
type Contracts struct {
	mu    sync.RWMutex
	m     map[Address]*Contract
	pager ContractPager
}

// NewContracts creates an empty registry.
func NewContracts() *Contracts {
	return &Contracts{m: make(map[Address]*Contract)}
}

// AttachPager puts every current and future contract's canonical state
// under a pager: resident states are admitted to the pager's budget
// and may be evicted to disk, Snapshot faults them back on demand.
// Call during setup or recovery, before the network runs epochs.
// Attaching the pager already attached is a no-op.
func (cs *Contracts) AttachPager(p ContractPager) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.pager == p {
		return
	}
	cs.pager = p
	for _, c := range cs.m {
		c.pager = p
		p.Admit(c)
	}
}

// Add registers a deployed contract.
func (cs *Contracts) Add(c *Contract) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.m[c.Addr] = c
	if cs.pager != nil {
		c.pager = cs.pager
		cs.pager.Admit(c)
	}
}

// Get returns the contract at addr, or nil.
func (cs *Contracts) Get(addr Address) *Contract {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.m[addr]
}

// All returns all contracts.
func (cs *Contracts) All() []*Contract {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	out := make([]*Contract, 0, len(cs.m))
	for _, c := range cs.m {
		out = append(out, c)
	}
	return out
}
