package chain

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"cosplit/internal/scilla/eval"
)

// StateRoot hashes a canonical rendering of a contract state: fields in
// sorted order, each hashed with its deterministic string rendering
// (value.Map renders entries in sorted canonical-key order). Two states
// are observably identical iff their roots match, which is what the
// parallel-vs-sequential determinism tests and the FinalBlock assertions
// rely on.
func StateRoot(st *eval.MemState) string {
	h := sha256.New()
	names := make([]string, 0, len(st.Fields))
	for f := range st.Fields {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		h.Write([]byte(f))
		h.Write([]byte{0})
		h.Write([]byte(st.Fields[f].String()))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
