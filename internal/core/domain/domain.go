// Package domain implements the CoSplit abstract domain of Fig. 6 in
// the paper: contribution sources, cardinalities, operation sets, the
// precision lattice, and contribution types τ with the ⊕ (add),
// ⊔ (join) and ⊗ (scale) operators.
package domain

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Card is the cardinality domain {0, 1, ω} from Fig. 6, ordered
// 0 ⊑ 1 ⊑ ω. It tracks how many times a contribution source flows into
// a value; linearity (card 1) is what makes `x + amount` commute while
// `x + x + 1` does not.
type Card int

// Cardinality values.
const (
	Card0 Card = iota
	Card1
	CardOmega
)

func (c Card) String() string {
	switch c {
	case Card0:
		return "0"
	case Card1:
		return "1"
	default:
		return "ω"
	}
}

// Plus is the ⊕ operation: 0 ⊕ α = α, 1 ⊕ 1 = ω, α ⊕ ω = ω.
func (c Card) Plus(d Card) Card {
	switch {
	case c == Card0:
		return d
	case d == Card0:
		return c
	default:
		return CardOmega
	}
}

// Join is the ⊔ operation: the maximum in the 0 ⊑ 1 ⊑ ω order.
func (c Card) Join(d Card) Card {
	if c > d {
		return c
	}
	return d
}

// Times is the ⊗ operation: 0 ⊗ α = 0, 1 ⊗ 1 = 1, α ⊗ ω = ω (α ≠ 0).
func (c Card) Times(d Card) Card {
	if c == Card0 || d == Card0 {
		return Card0
	}
	if c == Card1 && d == Card1 {
		return Card1
	}
	return CardOmega
}

// Precision records whether a contribution type lost precision when
// joining control flows (Exact ⊑ Inexact).
type Precision int

// Precision values.
const (
	Exact Precision = iota
	Inexact
)

func (p Precision) String() string {
	if p == Exact {
		return "Exact"
	}
	return "Inexact"
}

// Join returns the least upper bound of two precisions.
func (p Precision) Join(q Precision) Precision {
	if p > q {
		return p
	}
	return q
}

// CondOp is the pseudo-operation recorded by AdaptC when a value's
// control flow depends on a source (Fig. 7, MatchC).
const CondOp = "Cond"

// FieldRef names a contract field or a map pseudo-field such as
// balances[_sender] or allowances[from][_sender]. Keys are the names of
// the transition parameters used to index into the map.
type FieldRef struct {
	Name string
	Keys []string
}

// String renders the reference in the paper's f / m[k] notation.
func (f FieldRef) String() string {
	var sb strings.Builder
	sb.WriteString(f.Name)
	for _, k := range f.Keys {
		sb.WriteString("[" + k + "]")
	}
	return sb.String()
}

// Equal reports structural equality.
func (f FieldRef) Equal(o FieldRef) bool {
	if f.Name != o.Name || len(f.Keys) != len(o.Keys) {
		return false
	}
	for i := range f.Keys {
		if f.Keys[i] != o.Keys[i] {
			return false
		}
	}
	return true
}

// SrcKind classifies contribution sources (cs in Fig. 6).
type SrcKind int

// Source kinds. SrcParam is a transition parameter (user input, constant
// with respect to contract state); SrcFormal is a function's formal
// parameter, substituted away at application time.
const (
	SrcField SrcKind = iota
	SrcConst
	SrcParam
	SrcFormal
)

// Source is a contribution source.
type Source struct {
	Kind  SrcKind
	Field FieldRef // for SrcField
	Name  string   // parameter/formal name, or constant rendering
}

// Key returns a canonical map key for the source.
func (s Source) Key() string {
	switch s.Kind {
	case SrcField:
		return "F:" + s.Field.String()
	case SrcConst:
		return "C:" + s.Name
	case SrcParam:
		return "P:" + s.Name
	default:
		return "X:" + s.Name
	}
}

func (s Source) String() string {
	switch s.Kind {
	case SrcField:
		return "Field " + s.Field.String()
	case SrcConst:
		return "Const " + s.Name
	case SrcParam:
		return "Param " + s.Name
	default:
		return "Formal " + s.Name
	}
}

// FieldSource builds a field (or pseudo-field) contribution source.
func FieldSource(f FieldRef) Source { return Source{Kind: SrcField, Field: f} }

// ConstSource builds a constant contribution source.
func ConstSource(render string) Source { return Source{Kind: SrcConst, Name: render} }

// ParamSource builds a transition-parameter contribution source.
func ParamSource(name string) Source { return Source{Kind: SrcParam, Name: name} }

// FormalSource builds a function-formal contribution source.
func FormalSource(name string) Source { return Source{Kind: SrcFormal, Name: name} }

// SrcContrib is the (cardinality, operations) pair attached to a source
// in a contribution type.
type SrcContrib struct {
	Src  Source
	Card Card
	Ops  map[string]bool
}

func copyOps(ops map[string]bool) map[string]bool {
	out := make(map[string]bool, len(ops))
	for k := range ops {
		out[k] = true
	}
	return out
}

func opsUnion(a, b map[string]bool) map[string]bool {
	out := copyOps(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func opsString(ops map[string]bool) string {
	if len(ops) == 0 {
		return "∅"
	}
	names := make([]string, 0, len(ops))
	for k := range ops {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// MsgContrib is the per-entry contribution map of a message payload
// flowing through a value; it lets the analysis recover the _amount and
// _recipient contributions at `send` statements.
type MsgContrib map[string]*Contrib

// FunContrib is the deferred body of a function contribution (EFun i τ
// in Fig. 6).
type FunContrib struct {
	Formal string
	Body   *Contrib
}

// Contrib is a contribution type τ (Fig. 6). Exactly one of the
// following shapes holds:
//   - Top: the uninformative type ⊤;
//   - Fun != nil: an arrow type EFun i τ;
//   - Native: an opaque native function (applications smear);
//   - otherwise: a source map ⟨cs ↦ (card, ops), p⟩.
type Contrib struct {
	Top     bool
	Native  bool
	Fun     *FunContrib
	Sources map[string]SrcContrib
	Prec    Precision
	// Msgs carries the message payloads embedded in this value.
	Msgs []MsgContrib
	// LitInt is the exact integer value when the contribution is a
	// single integer literal (used to recognise zero-valued _amount).
	LitInt *big.Int
}

// Bot returns the empty contribution (⊥: no sources).
func Bot() *Contrib {
	return &Contrib{Sources: map[string]SrcContrib{}, Prec: Exact}
}

// Top returns the uninformative contribution ⊤.
func Top() *Contrib { return &Contrib{Top: true} }

// NewNative returns an opaque native-function contribution.
func NewNative() *Contrib { return &Contrib{Native: true, Sources: map[string]SrcContrib{}} }

// Single returns a contribution with one linear source and no ops.
func Single(s Source) *Contrib {
	c := Bot()
	c.Sources[s.Key()] = SrcContrib{Src: s, Card: Card1, Ops: map[string]bool{}}
	return c
}

// SingleLit returns a literal contribution, remembering its integer
// value when applicable.
func SingleLit(render string, intVal *big.Int) *Contrib {
	c := Single(ConstSource(render))
	if intVal != nil {
		c.LitInt = new(big.Int).Set(intVal)
	}
	return c
}

// NewFun returns an arrow contribution EFun formal body.
func NewFun(formal string, body *Contrib) *Contrib {
	return &Contrib{Fun: &FunContrib{Formal: formal, Body: body}, Sources: map[string]SrcContrib{}}
}

// Copy deep-copies the contribution.
func (c *Contrib) Copy() *Contrib {
	if c == nil {
		return nil
	}
	out := &Contrib{Top: c.Top, Native: c.Native, Prec: c.Prec}
	if c.Fun != nil {
		out.Fun = &FunContrib{Formal: c.Fun.Formal, Body: c.Fun.Body.Copy()}
	}
	out.Sources = make(map[string]SrcContrib, len(c.Sources))
	for k, sc := range c.Sources {
		out.Sources[k] = SrcContrib{Src: sc.Src, Card: sc.Card, Ops: copyOps(sc.Ops)}
	}
	for _, m := range c.Msgs {
		mc := make(MsgContrib, len(m))
		for k, v := range m {
			mc[k] = v.Copy()
		}
		out.Msgs = append(out.Msgs, mc)
	}
	if c.LitInt != nil {
		out.LitInt = new(big.Int).Set(c.LitInt)
	}
	return out
}

// IsBot reports whether the contribution is empty (⊥).
func (c *Contrib) IsBot() bool {
	return c != nil && !c.Top && !c.Native && c.Fun == nil &&
		len(c.Sources) == 0 && len(c.Msgs) == 0
}

// Add is the ⊕ operation lifted to contribution types: cardinalities of
// matching sources are added, their operation sets unioned, and the
// precisions joined.
func Add(a, b *Contrib) *Contrib {
	if a == nil {
		return b.Copy()
	}
	if b == nil {
		return a.Copy()
	}
	if a.Top || b.Top {
		return Top()
	}
	if a.Fun != nil || b.Fun != nil || a.Native || b.Native {
		// Mixing function values with data flows is out of the fragment
		// the analysis tracks precisely.
		if a.IsBot() {
			return b.Copy()
		}
		if b.IsBot() {
			return a.Copy()
		}
		return Top()
	}
	out := a.Copy()
	out.Prec = a.Prec.Join(b.Prec)
	for k, sc := range b.Sources {
		if have, ok := out.Sources[k]; ok {
			out.Sources[k] = SrcContrib{
				Src:  have.Src,
				Card: have.Card.Plus(sc.Card),
				Ops:  opsUnion(have.Ops, sc.Ops),
			}
		} else {
			out.Sources[k] = SrcContrib{Src: sc.Src, Card: sc.Card, Ops: copyOps(sc.Ops)}
		}
	}
	for _, m := range b.Msgs {
		out.Msgs = append(out.Msgs, m)
	}
	// Adding two values loses literal identity unless one side is ⊥.
	switch {
	case b.IsBot():
		// keep a's LitInt
	case a.IsBot():
		if b.LitInt != nil {
			out.LitInt = new(big.Int).Set(b.LitInt)
		} else {
			out.LitInt = nil
		}
	default:
		out.LitInt = nil
	}
	return out
}

// Join is the ⊔ operation lifted to contribution types: cardinalities
// of matching sources are joined (missing sources have cardinality 0),
// operation sets unioned, precisions joined.
func Join(a, b *Contrib) *Contrib {
	if a == nil {
		return b.Copy()
	}
	if b == nil {
		return a.Copy()
	}
	if a.Top || b.Top {
		return Top()
	}
	if a.Fun != nil || b.Fun != nil || a.Native || b.Native {
		if a.IsBot() {
			return b.Copy()
		}
		if b.IsBot() {
			return a.Copy()
		}
		return Top()
	}
	out := a.Copy()
	out.Prec = a.Prec.Join(b.Prec)
	for k, sc := range b.Sources {
		if have, ok := out.Sources[k]; ok {
			out.Sources[k] = SrcContrib{
				Src:  have.Src,
				Card: have.Card.Join(sc.Card),
				Ops:  opsUnion(have.Ops, sc.Ops),
			}
		} else {
			out.Sources[k] = SrcContrib{Src: sc.Src, Card: sc.Card, Ops: copyOps(sc.Ops)}
		}
	}
	for _, m := range b.Msgs {
		out.Msgs = append(out.Msgs, m)
	}
	if a.LitInt == nil || b.LitInt == nil || a.LitInt.Cmp(b.LitInt) != 0 {
		out.LitInt = nil
	}
	return out
}

// Scale is the ⊗ operation: it multiplies every source's cardinality by
// card and extends every source's operation set with ops. Message
// payloads and literal identity survive only a neutral scaling
// (card = 1, no ops).
func Scale(c *Contrib, card Card, ops map[string]bool) *Contrib {
	if c == nil {
		return nil
	}
	if c.Top {
		return Top()
	}
	out := c.Copy()
	if c.Fun != nil {
		out.Fun = &FunContrib{Formal: c.Fun.Formal, Body: Scale(c.Fun.Body, card, ops)}
		return out
	}
	for k, sc := range out.Sources {
		out.Sources[k] = SrcContrib{
			Src:  sc.Src,
			Card: sc.Card.Times(card),
			Ops:  opsUnion(sc.Ops, ops),
		}
	}
	if card != Card1 || len(ops) > 0 {
		out.Msgs = nil
		out.LitInt = nil
	}
	return out
}

// WithOp returns the contribution with builtin op blt recorded on every
// source (the Builtin rule of Fig. 7: "τ' with ops += blt").
func (c *Contrib) WithOp(op string) *Contrib {
	return Scale(c, Card1, map[string]bool{op: true})
}

// Subst substitutes the formal parameter named formal with the
// argument's contribution: each occurrence Formal(formal) ↦ (card, ops)
// becomes arg ⊗ (card, ops), merged with ⊕ into the remainder.
func Subst(body *Contrib, formal string, arg *Contrib) *Contrib {
	if body == nil {
		return nil
	}
	if body.Top {
		return Top()
	}
	out := body.Copy()
	if out.Fun != nil {
		out.Fun = &FunContrib{Formal: out.Fun.Formal, Body: Subst(out.Fun.Body, formal, arg)}
	}
	key := FormalSource(formal).Key()
	if sc, ok := out.Sources[key]; ok {
		delete(out.Sources, key)
		scaled := Scale(arg, sc.Card, sc.Ops)
		// If the body was exactly the formal, the value IS the argument:
		// preserve messages and literal identity.
		if len(out.Sources) == 0 && out.Fun == nil && len(out.Msgs) == 0 {
			scaled.Prec = scaled.Prec.Join(out.Prec)
			return scaled
		}
		merged := Add(out, scaled)
		return merged
	}
	for i, m := range out.Msgs {
		nm := make(MsgContrib, len(m))
		for k, v := range m {
			nm[k] = Subst(v, formal, arg)
		}
		out.Msgs[i] = nm
	}
	return out
}

// Apply models function application (the App rule of Fig. 7). Applying
// an arrow type substitutes the formal; applying a native or unknown
// function smears: the result is the ⊕ of the function's and the
// argument's contributions with cardinality ω and Inexact precision.
func Apply(fn, arg *Contrib) *Contrib {
	if fn == nil || fn.Top {
		return Top()
	}
	if fn.Fun != nil {
		return Subst(fn.Fun.Body, fn.Fun.Formal, arg)
	}
	// Native or first-class unknown function: conservative smear of the
	// function's own sources and the argument's, all at cardinality ω.
	fnPart := fn.Copy()
	fnPart.Native = false
	fnPart.Fun = nil
	smeared := Add(Scale(fnPart, CardOmega, nil), Scale(arg, CardOmega, nil))
	if smeared.Top {
		return smeared
	}
	smeared.Prec = Inexact
	return smeared
}

// FieldSources returns the field sources present in the contribution,
// sorted by rendering.
func (c *Contrib) FieldSources() []SrcContrib {
	var out []SrcContrib
	for _, sc := range c.Sources {
		if sc.Src.Kind == SrcField {
			out = append(out, sc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Src.Key() < out[j].Src.Key()
	})
	return out
}

// HasFieldSource reports whether any field source occurs in the
// contribution (including inside carried messages).
func (c *Contrib) HasFieldSource() bool {
	if c == nil {
		return false
	}
	if c.Top {
		return true // conservatively
	}
	for _, sc := range c.Sources {
		if sc.Src.Kind == SrcField {
			return true
		}
	}
	for _, m := range c.Msgs {
		for _, v := range m {
			if v.HasFieldSource() {
				return true
			}
		}
	}
	if c.Fun != nil {
		return c.Fun.Body.HasFieldSource()
	}
	return false
}

// String renders the contribution in the paper's ⟨cs ↦ (card, ops), p⟩
// notation.
func (c *Contrib) String() string {
	if c == nil {
		return "⊥"
	}
	if c.Top {
		return "⊤"
	}
	if c.Native {
		return "<native>"
	}
	if c.Fun != nil {
		return fmt.Sprintf("EFun %s %s", c.Fun.Formal, c.Fun.Body.String())
	}
	if len(c.Sources) == 0 {
		return "⟨∅, " + c.Prec.String() + "⟩"
	}
	keys := make([]string, 0, len(c.Sources))
	for k := range c.Sources {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("⟨")
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		sc := c.Sources[k]
		fmt.Fprintf(&sb, "%s ↦ (%s, {%s})", sc.Src, sc.Card, opsString(sc.Ops))
	}
	fmt.Fprintf(&sb, ", %s⟩", c.Prec)
	return sb.String()
}

// MarkFieldConst converts contributions from the given fields into
// constant sources (Algorithm 3.1: MarkConstantsInTypes). Fields are
// matched by name, covering all pseudo-fields of the field.
func (c *Contrib) MarkFieldConst(fields map[string]bool) *Contrib {
	if c == nil || c.Top {
		return c
	}
	out := c.Copy()
	for k, sc := range c.Sources {
		if sc.Src.Kind == SrcField && fields[sc.Src.Field.Name] {
			delete(out.Sources, k)
			ns := ConstSource("field:" + sc.Src.Field.String())
			nk := ns.Key()
			if have, ok := out.Sources[nk]; ok {
				out.Sources[nk] = SrcContrib{Src: ns, Card: have.Card.Plus(sc.Card), Ops: opsUnion(have.Ops, sc.Ops)}
			} else {
				out.Sources[nk] = SrcContrib{Src: ns, Card: sc.Card, Ops: copyOps(sc.Ops)}
			}
		}
	}
	if out.Fun != nil {
		out.Fun = &FunContrib{Formal: out.Fun.Formal, Body: out.Fun.Body.MarkFieldConst(fields)}
	}
	for i, m := range out.Msgs {
		nm := make(MsgContrib, len(m))
		for k, v := range m {
			nm[k] = v.MarkFieldConst(fields)
		}
		out.Msgs[i] = nm
	}
	return out
}

// IsZeroLit reports whether the contribution is statically the integer
// literal zero.
func (c *Contrib) IsZeroLit() bool {
	return c != nil && c.LitInt != nil && c.LitInt.Sign() == 0
}

// SingleParam returns the parameter name if the contribution is exactly
// one linear, op-free transition parameter.
func (c *Contrib) SingleParam() (string, bool) {
	if c == nil || c.Top || c.Fun != nil || c.Native || len(c.Sources) != 1 {
		return "", false
	}
	for _, sc := range c.Sources {
		if sc.Src.Kind == SrcParam && sc.Card == Card1 && len(sc.Ops) == 0 {
			return sc.Src.Name, true
		}
	}
	return "", false
}
