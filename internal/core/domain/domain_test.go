package domain_test

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cosplit/internal/core/domain"
)

// --- Cardinality lattice laws (Fig. 6) ---

var cards = []domain.Card{domain.Card0, domain.Card1, domain.CardOmega}

func TestCardTables(t *testing.T) {
	// The exact tables from Fig. 6.
	plus := map[[2]domain.Card]domain.Card{
		{domain.Card0, domain.Card0}:         domain.Card0,
		{domain.Card0, domain.Card1}:         domain.Card1,
		{domain.Card1, domain.Card1}:         domain.CardOmega,
		{domain.Card1, domain.CardOmega}:     domain.CardOmega,
		{domain.Card0, domain.CardOmega}:     domain.CardOmega,
		{domain.CardOmega, domain.CardOmega}: domain.CardOmega,
	}
	for args, want := range plus {
		if got := args[0].Plus(args[1]); got != want {
			t.Errorf("%s ⊕ %s = %s, want %s", args[0], args[1], got, want)
		}
	}
	times := map[[2]domain.Card]domain.Card{
		{domain.Card0, domain.Card0}:         domain.Card0,
		{domain.Card0, domain.Card1}:         domain.Card0,
		{domain.Card0, domain.CardOmega}:     domain.Card0,
		{domain.Card1, domain.Card1}:         domain.Card1,
		{domain.Card1, domain.CardOmega}:     domain.CardOmega,
		{domain.CardOmega, domain.CardOmega}: domain.CardOmega,
	}
	for args, want := range times {
		if got := args[0].Times(args[1]); got != want {
			t.Errorf("%s ⊗ %s = %s, want %s", args[0], args[1], got, want)
		}
	}
}

func TestCardLaws(t *testing.T) {
	for _, a := range cards {
		for _, b := range cards {
			if a.Plus(b) != b.Plus(a) {
				t.Errorf("⊕ not commutative at %s,%s", a, b)
			}
			if a.Join(b) != b.Join(a) {
				t.Errorf("⊔ not commutative at %s,%s", a, b)
			}
			if a.Times(b) != b.Times(a) {
				t.Errorf("⊗ not commutative at %s,%s", a, b)
			}
			for _, c := range cards {
				if a.Plus(b).Plus(c) != a.Plus(b.Plus(c)) {
					t.Errorf("⊕ not associative at %s,%s,%s", a, b, c)
				}
				if a.Join(b).Join(c) != a.Join(b.Join(c)) {
					t.Errorf("⊔ not associative at %s,%s,%s", a, b, c)
				}
				if a.Times(b).Times(c) != a.Times(b.Times(c)) {
					t.Errorf("⊗ not associative at %s,%s,%s", a, b, c)
				}
			}
		}
		if a.Join(a) != a {
			t.Errorf("⊔ not idempotent at %s", a)
		}
		if a.Plus(domain.Card0) != a {
			t.Errorf("0 not unit of ⊕ at %s", a)
		}
		if a.Times(domain.Card1) != a {
			t.Errorf("1 not unit of ⊗ at %s", a)
		}
		if a.Times(domain.Card0) != domain.Card0 {
			t.Errorf("0 not absorbing for ⊗ at %s", a)
		}
	}
}

func TestPrecisionLattice(t *testing.T) {
	if domain.Exact.Join(domain.Inexact) != domain.Inexact {
		t.Error("Exact ⊔ Inexact must be Inexact")
	}
	if domain.Exact.Join(domain.Exact) != domain.Exact {
		t.Error("Exact ⊔ Exact must be Exact")
	}
	if domain.Inexact.Join(domain.Inexact) != domain.Inexact {
		t.Error("Inexact ⊔ Inexact must be Inexact")
	}
}

// --- Random contribution generation for property tests ---

func randomContrib(rng *rand.Rand, size int) *domain.Contrib {
	c := domain.Bot()
	n := rng.Intn(size + 1)
	ops := []string{"add", "sub", "mul", "eq", "le", domain.CondOp}
	for i := 0; i < n; i++ {
		var src domain.Source
		switch rng.Intn(3) {
		case 0:
			src = domain.FieldSource(domain.FieldRef{
				Name: []string{"f", "g", "h"}[rng.Intn(3)],
				Keys: nil,
			})
		case 1:
			src = domain.ParamSource([]string{"x", "y", "z"}[rng.Intn(3)])
		default:
			src = domain.ConstSource([]string{"1", "2"}[rng.Intn(2)])
		}
		sc := domain.SrcContrib{
			Src:  src,
			Card: cards[rng.Intn(3)],
			Ops:  map[string]bool{},
		}
		for j := 0; j < rng.Intn(3); j++ {
			sc.Ops[ops[rng.Intn(len(ops))]] = true
		}
		c.Sources[src.Key()] = sc
	}
	if rng.Intn(4) == 0 {
		c.Prec = domain.Inexact
	}
	return c
}

// contribEq compares source maps, precision, and Top-ness.
func contribEq(a, b *domain.Contrib) bool {
	if a.Top != b.Top || a.Prec != b.Prec || len(a.Sources) != len(b.Sources) {
		return false
	}
	for k, sa := range a.Sources {
		sb, ok := b.Sources[k]
		if !ok || sa.Card != sb.Card || len(sa.Ops) != len(sb.Ops) {
			return false
		}
		for op := range sa.Ops {
			if !sb.Ops[op] {
				return false
			}
		}
	}
	return true
}

func TestContribAddLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomContrib(r, 4), randomContrib(r, 4), randomContrib(r, 4)
		// Commutativity.
		if !contribEq(domain.Add(a, b), domain.Add(b, a)) {
			t.Logf("⊕ not commutative:\n a=%s\n b=%s", a, b)
			return false
		}
		// Associativity.
		if !contribEq(domain.Add(domain.Add(a, b), c), domain.Add(a, domain.Add(b, c))) {
			return false
		}
		// ⊥ is the unit.
		if !contribEq(domain.Add(a, domain.Bot()), a) {
			return false
		}
		// ⊤ absorbs.
		if !domain.Add(a, domain.Top()).Top {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestContribJoinLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomContrib(r, 4), randomContrib(r, 4), randomContrib(r, 4)
		if !contribEq(domain.Join(a, b), domain.Join(b, a)) {
			return false
		}
		if !contribEq(domain.Join(domain.Join(a, b), c), domain.Join(a, domain.Join(b, c))) {
			return false
		}
		// Idempotence.
		if !contribEq(domain.Join(a, a), a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScaleLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomContrib(r, 4)
		// Neutral scaling is the identity on sources.
		if !contribEq(domain.Scale(a, domain.Card1, nil), a) {
			return false
		}
		// Scaling by 0 zeroes all cardinalities.
		zeroed := domain.Scale(a, domain.Card0, nil)
		for _, sc := range zeroed.Sources {
			if sc.Card != domain.Card0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSubstIdentity(t *testing.T) {
	// Substituting a formal that is the whole body yields the argument.
	body := domain.Single(domain.FormalSource("x#1"))
	arg := domain.Single(domain.ParamSource("amount"))
	got := domain.Subst(body, "x#1", arg)
	if !contribEq(got, arg) {
		t.Errorf("Subst(x, x, arg) = %s, want %s", got, arg)
	}
	// Substituting an absent formal leaves the body unchanged.
	got2 := domain.Subst(body, "y#2", arg)
	if !contribEq(got2, body) {
		t.Errorf("Subst with absent formal changed the body: %s", got2)
	}
}

func TestApplySmearOnNative(t *testing.T) {
	fn := domain.NewNative()
	arg := domain.Single(domain.ParamSource("p"))
	res := domain.Apply(fn, arg)
	if res.Top {
		t.Fatal("native application should smear, not go to ⊤")
	}
	if res.Prec != domain.Inexact {
		t.Errorf("native application must be Inexact, got %s", res.Prec)
	}
	sc, ok := res.Sources[domain.ParamSource("p").Key()]
	if !ok || sc.Card != domain.CardOmega {
		t.Errorf("argument must appear with cardinality ω, got %+v", sc)
	}
}

func TestLitIntTracking(t *testing.T) {
	zero := domain.SingleLit("Uint128 0", big.NewInt(0))
	if !zero.IsZeroLit() {
		t.Error("zero literal not recognised")
	}
	// Any operation clears literal identity.
	if zero.WithOp("add").IsZeroLit() {
		t.Error("op application must clear literal identity")
	}
	// Adding a non-bot contribution clears it.
	sum := domain.Add(zero, domain.Single(domain.ParamSource("x")))
	if sum.IsZeroLit() {
		t.Error("⊕ must clear literal identity")
	}
	// ⊕ with ⊥ keeps it.
	keep := domain.Add(zero, domain.Bot())
	if !keep.IsZeroLit() {
		t.Error("⊕ ⊥ must keep literal identity")
	}
}

func TestSingleParam(t *testing.T) {
	c := domain.Single(domain.ParamSource("to"))
	if p, ok := c.SingleParam(); !ok || p != "to" {
		t.Errorf("SingleParam = %q, %v", p, ok)
	}
	if _, ok := c.WithOp("eq").SingleParam(); ok {
		t.Error("op-tainted contribution must not be a single param")
	}
	if _, ok := domain.Single(domain.ConstSource("1")).SingleParam(); ok {
		t.Error("constant is not a param")
	}
}

func TestMarkFieldConst(t *testing.T) {
	c := domain.Single(domain.FieldSource(domain.FieldRef{Name: "owner"}))
	c = domain.Add(c, domain.Single(domain.ParamSource("x")))
	marked := c.MarkFieldConst(map[string]bool{"owner": true})
	for _, sc := range marked.Sources {
		if sc.Src.Kind == domain.SrcField {
			t.Errorf("field source survived MarkFieldConst: %s", sc.Src)
		}
	}
	if len(marked.Sources) != 2 {
		t.Errorf("expected 2 sources (const + param), got %d", len(marked.Sources))
	}
}

func TestFieldRefString(t *testing.T) {
	ref := domain.FieldRef{Name: "allowances", Keys: []string{"from", "_sender"}}
	if got := ref.String(); got != "allowances[from][_sender]" {
		t.Errorf("FieldRef.String() = %q", got)
	}
	if !ref.Equal(domain.FieldRef{Name: "allowances", Keys: []string{"from", "_sender"}}) {
		t.Error("Equal failed on identical refs")
	}
	if ref.Equal(domain.FieldRef{Name: "allowances", Keys: []string{"from"}}) {
		t.Error("Equal true on different key counts")
	}
}

func TestCopyIsDeep(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomContrib(r, 4)
		cp := a.Copy()
		if !contribEq(a, cp) {
			return false
		}
		// Mutating the copy must not affect the original.
		for k, sc := range cp.Sources {
			sc.Ops["mutated"] = true
			cp.Sources[k] = domain.SrcContrib{Src: sc.Src, Card: domain.CardOmega, Ops: sc.Ops}
			break
		}
		for _, sc := range a.Sources {
			if sc.Ops["mutated"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

var _ = reflect.DeepEqual
