package domain

import (
	"sort"
	"strings"
)

// EffectKind classifies effects (ε in Fig. 6).
type EffectKind int

// Effect kinds.
const (
	EffRead EffectKind = iota
	EffWrite
	EffCondition
	EffAcceptFunds
	EffSendMsg
	EffTop
)

func (k EffectKind) String() string {
	switch k {
	case EffRead:
		return "Read"
	case EffWrite:
		return "Write"
	case EffCondition:
		return "Condition"
	case EffAcceptFunds:
		return "AcceptFunds"
	case EffSendMsg:
		return "SendMsg"
	default:
		return "⊤"
	}
}

// Effect is a single element of a transition summary.
type Effect struct {
	Kind  EffectKind
	Field FieldRef // for Read / Write
	// C is the written value's contribution (Write), the scrutinised
	// contribution (Condition), or nil.
	C *Contrib
	// Msg is the per-entry contribution of a sent message (SendMsg).
	// A nil Msg on a SendMsg effect denotes SendMsg(⊤).
	Msg MsgContrib
	// Note explains why a ⊤ effect arose (which access defeated the
	// analysis); it feeds the Sec. 6 repair advisor.
	Note string
}

// String renders the effect in the paper's notation (cf. Fig. 8).
func (e Effect) String() string {
	switch e.Kind {
	case EffRead:
		return "Read(" + e.Field.String() + ")"
	case EffWrite:
		return "Write(" + e.Field.String() + ", " + e.C.String() + ")"
	case EffCondition:
		return "Condition(" + e.C.String() + ")"
	case EffAcceptFunds:
		return "AcceptFunds"
	case EffSendMsg:
		if e.Msg == nil {
			return "SendMsg(⊤)"
		}
		keys := make([]string, 0, len(e.Msg))
		for k := range e.Msg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteString("SendMsg(")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(k + " = " + e.Msg[k].String())
		}
		sb.WriteString(")")
		return sb.String()
	default:
		if e.Note != "" {
			return "⊤ (" + e.Note + ")"
		}
		return "⊤"
	}
}

// Summary is the inferred effect summary of one transition (Sec. 3.2).
type Summary struct {
	Transition string
	// Params lists the transition's declared parameter names (including
	// the implicit _sender, _origin, _amount), used by the signature
	// solver when resolving key constraints.
	Params  []string
	Effects []Effect
}

// HasTop reports whether the summary contains the uninformative ⊤
// effect.
func (s *Summary) HasTop() bool {
	for _, e := range s.Effects {
		if e.Kind == EffTop {
			return true
		}
	}
	return false
}

// Reads returns all Read effects.
func (s *Summary) Reads() []Effect {
	return s.byKind(EffRead)
}

// Writes returns all Write effects.
func (s *Summary) Writes() []Effect {
	return s.byKind(EffWrite)
}

// Conditions returns all Condition effects.
func (s *Summary) Conditions() []Effect {
	return s.byKind(EffCondition)
}

func (s *Summary) byKind(k EffectKind) []Effect {
	var out []Effect
	for _, e := range s.Effects {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// String renders the summary one effect per line (cf. Fig. 8).
func (s *Summary) String() string {
	var sb strings.Builder
	for _, e := range s.Effects {
		sb.WriteString(e.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Copy deep-copies the summary.
func (s *Summary) Copy() *Summary {
	out := &Summary{Transition: s.Transition, Params: append([]string{}, s.Params...)}
	for _, e := range s.Effects {
		ne := Effect{Kind: e.Kind, Field: e.Field, C: e.C.Copy(), Note: e.Note}
		if e.Msg != nil {
			nm := make(MsgContrib, len(e.Msg))
			for k, v := range e.Msg {
				nm[k] = v.Copy()
			}
			ne.Msg = nm
		}
		out.Effects = append(out.Effects, ne)
	}
	return out
}
