package signature_test

import (
	"testing"

	"cosplit/internal/core/signature"
)

// PaperQueries reproduces the "Selection of Sharding Signatures" from
// Sec. 5.2 for the five evaluation contracts.
func paperQuery(contract string) signature.Query {
	switch contract {
	case "FungibleToken":
		return signature.Query{
			Transitions: []string{"Mint", "Transfer", "TransferFrom"},
			WeakReads:   []string{"balances", "allowances"},
		}
	case "NonfungibleToken":
		return signature.Query{
			Transitions: []string{"Mint", "Transfer"},
			WeakReads:   []string{"owned_count", "total_tokens"},
		}
	case "Crowdfunding":
		return signature.Query{
			Transitions: []string{"Donate", "ClaimBack"},
			WeakReads:   []string{signature.BalanceField},
		}
	case "ProofIPFS":
		return signature.Query{
			Transitions: []string{"RegisterOwnership"},
			WeakReads:   []string{"collected", "item_count"},
		}
	case "UDRegistry":
		return signature.Query{
			Transitions: []string{"Bestow", "Configure", "ConfigureResolver"},
		}
	}
	panic("unknown contract " + contract)
}

func TestNFTTransferSignature(t *testing.T) {
	sg := derive(t, "NonfungibleToken", paperQuery("NonfungibleToken"))
	cs := sg.Constraints["Transfer"]
	if sg.IsBottom("Transfer") {
		t.Fatalf("NFT Transfer is ⊥:\n%s", sg)
	}
	if !hasConstraint(cs, "Owns(token_owners[token_id])") {
		t.Errorf("missing Owns(token_owners[token_id]):\n%s", sg)
	}
	if !hasConstraint(cs, "Owns(token_approvals[token_id])") {
		t.Errorf("missing Owns(token_approvals[token_id]):\n%s", sg)
	}
	// The owner counters are adjusted commutatively (zero-default
	// peel), so no ownership of owned_count is needed: the transition's
	// footprint is keyed entirely by the token id.
	for _, c := range cs {
		if c.Kind == signature.COwns && c.Field.Name == "owned_count" {
			t.Errorf("owned_count must not be owned (commutative counters):\n%s", sg)
		}
	}
	if sg.Joins["owned_count"] != signature.IntMerge {
		t.Errorf("owned_count join = %s, want IntMerge", sg.Joins["owned_count"])
	}
}

func TestNFTMintSignature(t *testing.T) {
	sg := derive(t, "NonfungibleToken", paperQuery("NonfungibleToken"))
	cs := sg.Constraints["Mint"]
	if !hasConstraint(cs, "Owns(token_owners[token_id])") {
		t.Errorf("Mint must own the token slot it creates:\n%s", sg)
	}
	// Mint must not require ownership keyed by the sender: this is what
	// lets a single-source mint workload scale linearly (Sec. 5.2.1).
	for _, c := range cs {
		if c.Kind == signature.COwns {
			for _, k := range c.Field.Keys {
				if k == "_sender" {
					t.Errorf("Mint ownership depends on sender: %s", c)
				}
			}
		}
		if c.Kind == signature.CSenderShard {
			t.Errorf("Mint must not be pinned to the sender shard")
		}
	}
}

func TestCrowdfundingDonateSignature(t *testing.T) {
	sg := derive(t, "Crowdfunding", paperQuery("Crowdfunding"))
	cs := sg.Constraints["Donate"]
	if sg.IsBottom("Donate") {
		t.Fatalf("Donate is ⊥:\n%s", sg)
	}
	if !hasConstraint(cs, "SenderShard") {
		t.Errorf("Donate accepts funds, needs SenderShard:\n%s", sg)
	}
	if !hasConstraint(cs, "Owns(backers[_sender])") {
		t.Errorf("missing Owns(backers[_sender]):\n%s", sg)
	}
	if sg.Joins[signature.BalanceField] != signature.IntMerge {
		t.Errorf("_balance join = %s, want IntMerge", sg.Joins[signature.BalanceField])
	}
	// ClaimBack sends funds out of the contract.
	if !hasConstraint(sg.Constraints["ClaimBack"], "ContractShard") {
		t.Errorf("ClaimBack must require ContractShard:\n%s", sg)
	}
}

func TestProofIPFSRegisterSignature(t *testing.T) {
	sg := derive(t, "ProofIPFS", paperQuery("ProofIPFS"))
	cs := sg.Constraints["RegisterOwnership"]
	if sg.IsBottom("RegisterOwnership") {
		t.Fatalf("RegisterOwnership is ⊥:\n%s", sg)
	}
	// The two ownership constraints with differently-keyed components
	// are exactly why this workload doesn't scale (Sec. 5.2.1).
	if !hasConstraint(cs, "Owns(ipfsInventory[item_hash])") {
		t.Errorf("missing Owns(ipfsInventory[item_hash]):\n%s", sg)
	}
	if !hasConstraint(cs, "Owns(registered_items[_sender][item_hash])") {
		t.Errorf("missing Owns(registered_items[_sender][item_hash]):\n%s", sg)
	}
	// price and registration_open are constant fields here.
	for _, c := range cs {
		if c.Kind == signature.COwns && (c.Field.Name == "price" || c.Field.Name == "registration_open") {
			t.Errorf("constant field needlessly owned: %s", c)
		}
	}
}

func TestUDRegistrySignatures(t *testing.T) {
	sg := derive(t, "UDRegistry", paperQuery("UDRegistry"))
	if !hasConstraint(sg.Constraints["Bestow"], "Owns(records[node])") {
		t.Errorf("Bestow must own records[node]:\n%s", sg)
	}
	// admins is never written by the selected transitions => constant.
	for _, c := range sg.Constraints["Bestow"] {
		if c.Kind == signature.COwns && c.Field.Name == "admins" {
			t.Errorf("admins is constant, must not be owned: %s", c)
		}
	}
	ccs := sg.Constraints["Configure"]
	if !hasConstraint(ccs, "Owns(records[node])") {
		t.Errorf("Configure must own records[node]:\n%s", sg)
	}
	if !hasConstraint(ccs, "Owns(record_data[node][key])") {
		t.Errorf("Configure must own record_data[node][key]:\n%s", sg)
	}
}
