package signature

// FootprintSpec is the per-transition state footprint a solved
// signature exposes to the execution layer: which state components a
// transaction of this transition may touch, and how. The dispatcher
// resolves the symbolic key vectors against a concrete transaction's
// arguments to obtain the transaction's conflict footprint, which the
// intra-shard parallel executor uses to partition an epoch batch into
// commuting groups (Sec. 4.2 applied inside a shard).
type FootprintSpec struct {
	// Owned are the components the transition reads or writes
	// non-commutatively (the Owns constraints). Any two transactions
	// sharing an owned component must execute in submission order.
	Owned []Constraint
	// Comm are the components the transition writes commutatively
	// (IntMerge join, no ownership required at dispatch). The written
	// value still depends on the locally observed one — a commutative
	// write reads the component to add/subtract — so same-component
	// writers must be serialised for bit-identical gas and receipts;
	// only writers of distinct components commute.
	Comm []Constraint
	// Recipients are the transition parameters naming user accounts the
	// transition may push native tokens to (CUserAddr). Credits to a
	// native balance are purely additive: they never observe the
	// balance, so they commute with each other.
	Recipients []string
	// Accepts is set when the transition may accept funds
	// (CSenderShard): the contract's native balance receives an
	// additive credit and the sender's balance an exclusive debit.
	Accepts bool
	// SendsFunds is set when the transition may push funds out of the
	// contract (CContractShard): the contract's native balance is
	// observed (overdraft check) and debited, so it is exclusive.
	SendsFunds bool
}

// Footprint derives the footprint spec for a transition of a solved
// signature. ok is false when the transition is not in the signature or
// cannot be sharded at all (⊥) — such transactions have no statically
// known footprint and force their batch into sequential execution.
func (sg *Signature) Footprint(transition string) (*FootprintSpec, bool) {
	cs, ok := sg.Constraints[transition]
	if !ok || sg.IsBottom(transition) {
		return nil, false
	}
	fp := &FootprintSpec{}
	for _, c := range cs {
		switch c.Kind {
		case COwns:
			fp.Owned = append(fp.Owned, c)
		case CUserAddr:
			fp.Recipients = append(fp.Recipients, c.Param)
		case CSenderShard:
			fp.Accepts = true
		case CContractShard:
			fp.SendsFunds = true
		}
	}
	for _, ref := range sg.CommutativeWrites[transition] {
		fp.Comm = append(fp.Comm, Constraint{Kind: COwns, Field: ref})
	}
	return fp, true
}
