package signature_test

import (
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/domain"
	"cosplit/internal/core/signature"
)

func summaries(t *testing.T, contract string) map[string]*domain.Summary {
	t.Helper()
	chk := contracts.MustParse(contract)
	a, err := analysis.New(chk)
	if err != nil {
		t.Fatalf("analysis.New: %v", err)
	}
	sums, err := a.AnalyzeAll()
	if err != nil {
		t.Fatalf("AnalyzeAll: %v", err)
	}
	return sums
}

func derive(t *testing.T, contract string, q signature.Query) *signature.Signature {
	t.Helper()
	sg, err := signature.Derive(summaries(t, contract), q)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return sg
}

func hasConstraint(cs []signature.Constraint, render string) bool {
	for _, c := range cs {
		if c.String() == render {
			return true
		}
	}
	return false
}

// TestFTTransferSignature reproduces the paper's Sec. 2.2 strategy-2
// result: Transfer needs to own only balances[_sender]; the write to
// balances[to] is commutative (IntMerge), and its read is removed.
func TestFTTransferSignature(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"Mint", "Transfer", "TransferFrom"},
		WeakReads:   []string{"balances"},
	})

	cs := sg.Constraints["Transfer"]
	if sg.IsBottom("Transfer") {
		t.Fatalf("Transfer is ⊥:\n%s", sg)
	}
	if !hasConstraint(cs, "Owns(balances[_sender])") {
		t.Errorf("missing Owns(balances[_sender]):\n%s", sg)
	}
	if hasConstraint(cs, "Owns(balances[to])") {
		t.Errorf("balances[to] must not be owned (commutative write):\n%s", sg)
	}
	if !hasConstraint(cs, "NoAliases(⟨_sender⟩, ⟨to⟩)") {
		t.Errorf("missing NoAliases(_sender, to):\n%s", sg)
	}
	if sg.Joins["balances"] != signature.IntMerge {
		t.Errorf("balances join = %s, want IntMerge", sg.Joins["balances"])
	}
}

// TestFTMintNeedsNoOwnership: Mint writes only commutatively and reads
// only a constant field, so it can run in any shard.
func TestFTMintNeedsNoOwnership(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"Mint", "Transfer", "TransferFrom"},
		WeakReads:   []string{"balances"},
	})
	for _, c := range sg.Constraints["Mint"] {
		if c.Kind == signature.COwns {
			t.Errorf("Mint should not require ownership, has %s", c)
		}
		if c.Kind == signature.CBottom {
			t.Errorf("Mint is ⊥")
		}
	}
	if sg.Joins["total_supply"] != signature.IntMerge {
		t.Errorf("total_supply join = %s, want IntMerge", sg.Joins["total_supply"])
	}
}

// TestFTTransferFromSignature: TransferFrom owns the allowance entry
// and the source balance; the destination write stays commutative.
func TestFTTransferFromSignature(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"Mint", "Transfer", "TransferFrom"},
		WeakReads:   []string{"balances", "allowances"},
	})
	cs := sg.Constraints["TransferFrom"]
	if !hasConstraint(cs, "Owns(allowances[from][_sender])") {
		t.Errorf("missing Owns(allowances[from][_sender]):\n%s", sg)
	}
	if !hasConstraint(cs, "Owns(balances[from])") {
		t.Errorf("missing Owns(balances[from]):\n%s", sg)
	}
	if hasConstraint(cs, "Owns(balances[to])") {
		t.Errorf("balances[to] must not be owned:\n%s", sg)
	}
}

// TestWeakReadsRequired: without accepting stale reads on balances, the
// IntMerge join must be demoted and ownership reinstated.
func TestWeakReadsRequired(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"Transfer"},
	})
	if sg.Joins["balances"] != signature.OwnOverwrite {
		t.Errorf("balances join = %s, want OwnOverwrite without weak reads", sg.Joins["balances"])
	}
	cs := sg.Constraints["Transfer"]
	if !hasConstraint(cs, "Owns(balances[to])") {
		t.Errorf("without weak reads, balances[to] must be owned:\n%s", sg)
	}
}

// TestConstantFieldReadsRemoved: when ChangeOwner is not selected,
// current_owner is a constant field and Mint needs no ownership of it.
func TestConstantFieldReadsRemoved(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"Mint"},
		WeakReads:   []string{"balances"},
	})
	if hasConstraint(sg.Constraints["Mint"], "Owns(current_owner)") {
		t.Errorf("current_owner is constant, must not be owned:\n%s", sg)
	}
}

// TestConstantFieldWrittenWhenSelected: selecting ChangeOwner together
// with Mint makes current_owner non-constant; Mint must then own it.
func TestConstantFieldWrittenWhenSelected(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"Mint", "ChangeOwner"},
		WeakReads:   []string{"balances"},
	})
	if !hasConstraint(sg.Constraints["Mint"], "Owns(current_owner)") {
		t.Errorf("current_owner is written by ChangeOwner; Mint must own it:\n%s", sg)
	}
	// ChangeOwner's write to current_owner is an overwrite.
	if sg.Joins["current_owner"] != signature.OwnOverwrite {
		t.Errorf("current_owner join = %s, want OwnOverwrite", sg.Joins["current_owner"])
	}
}

// TestApproveOverwrite: Approve's allowance write is an overwrite, so
// the entry must be owned; disjoint entries still shard (strategy 1).
func TestApproveOverwrite(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"Approve"},
	})
	cs := sg.Constraints["Approve"]
	if !hasConstraint(cs, "Owns(allowances[_sender][spender])") {
		t.Errorf("missing Owns(allowances[_sender][spender]):\n%s", sg)
	}
	if sg.Joins["allowances"] != signature.OwnOverwrite {
		t.Errorf("allowances join = %s, want OwnOverwrite", sg.Joins["allowances"])
	}
}

// TestBalanceOfUserAddr: the read-only query sends a zero-amount
// message back to _sender, yielding a UserAddr constraint and no
// ContractShard. Selected alone, balances is a constant field so no
// ownership is needed at all.
func TestBalanceOfUserAddr(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"BalanceOf"},
	})
	cs := sg.Constraints["BalanceOf"]
	if !hasConstraint(cs, "UserAddr(_sender)") {
		t.Errorf("missing UserAddr(_sender):\n%s", sg)
	}
	for _, c := range cs {
		if c.Kind == signature.CContractShard {
			t.Errorf("zero-amount send must not require ContractShard:\n%s", sg)
		}
		if c.Kind == signature.COwns {
			t.Errorf("balances is constant when only BalanceOf is selected, got %s", c)
		}
	}
}

// TestBalanceOfWithTransfer: once Transfer is co-selected, balances is
// written, and BalanceOf's read (flowing into the callback message)
// must force ownership of the entry.
func TestBalanceOfWithTransfer(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions: []string{"BalanceOf", "Transfer"},
		WeakReads:   []string{"balances"},
	})
	if !hasConstraint(sg.Constraints["BalanceOf"], "Owns(balances[address])") {
		t.Errorf("BalanceOf must own the balance entry it reports:\n%s", sg)
	}
}

// TestSignatureDeterminism: deriving twice gives identical renderings.
func TestSignatureDeterminism(t *testing.T) {
	q := signature.Query{
		Transitions: []string{"Mint", "Transfer", "TransferFrom"},
		WeakReads:   []string{"balances", "allowances"},
	}
	a := derive(t, "FungibleToken", q).String()
	b := derive(t, "FungibleToken", q).String()
	if a != b {
		t.Errorf("non-deterministic signature derivation:\n%s\n---\n%s", a, b)
	}
}

// TestCoarseOwnershipAblation: with pseudo-fields disabled, Transfer
// must own the whole balances field (everything serialises).
func TestCoarseOwnershipAblation(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions:          []string{"Transfer"},
		WeakReads:            []string{"balances"},
		CoarseOwnership:      true,
		DisableCommutativity: true,
	})
	cs := sg.Constraints["Transfer"]
	if !hasConstraint(cs, "Owns(balances)") {
		t.Errorf("coarse ownership must own the whole balances field:\n%s", sg)
	}
	for _, c := range cs {
		if c.Kind == signature.COwns && len(c.Field.Keys) > 0 {
			t.Errorf("keyed Owns survived coarsening: %s", c)
		}
		if c.Kind == signature.CNoAliases {
			t.Errorf("NoAliases survived coarsening: %s", c)
		}
	}
}

// TestDisableCommutativityAblation: strategy-1-only must own the
// recipient balance entry too.
func TestDisableCommutativityAblation(t *testing.T) {
	sg := derive(t, "FungibleToken", signature.Query{
		Transitions:          []string{"Transfer"},
		WeakReads:            []string{"balances"},
		DisableCommutativity: true,
	})
	cs := sg.Constraints["Transfer"]
	if !hasConstraint(cs, "Owns(balances[to])") {
		t.Errorf("strategy 1 must own balances[to]:\n%s", sg)
	}
	if sg.Joins["balances"] != signature.OwnOverwrite {
		t.Errorf("joins must be OwnOverwrite under the ablation")
	}
}
