// Package signature implements the sharding-signature derivation of
// Sec. 3.5: ownership constraints (oc), per-field join operations (⊎f),
// and Algorithm 3.1, which turns transition effect summaries into a
// sharding signature for a developer-selected set of transitions.
package signature

import (
	"fmt"
	"sort"
	"strings"

	"cosplit/internal/core/domain"
)

// Join is a per-field state-delta join operation (Fig. 9, top).
type Join int

// Join operations. OwnOverwrite merges disjointly-owned overwrites
// (sharding strategy 1); IntMerge adds up integer deltas (strategy 2).
const (
	OwnOverwrite Join = iota
	IntMerge
)

// BalanceField is the implicit native-token balance pseudo-field; it is
// "written" by accept statements and funded sends, and read via
// `x <- _balance`.
const BalanceField = "_balance"

func (j Join) String() string {
	if j == IntMerge {
		return "IntMerge"
	}
	return "OwnOverwrite"
}

// ConstraintKind classifies ownership constraints (oc in Fig. 9).
type ConstraintKind int

// Constraint kinds.
const (
	COwns ConstraintKind = iota
	CUserAddr
	CNoAliases
	CSenderShard
	CContractShard
	CBottom
)

// Constraint is a static symbolic condition that must be satisfied at
// dispatch time for a transaction to execute in a shard.
type Constraint struct {
	Kind  ConstraintKind
	Field domain.FieldRef // COwns
	Param string          // CUserAddr: a transition parameter holding an address
	// A and B are the two symbolic key vectors of a CNoAliases
	// constraint; they must differ in at least one position at runtime.
	A, B []string
}

// String renders the constraint in the paper's notation.
func (c Constraint) String() string {
	switch c.Kind {
	case COwns:
		return "Owns(" + c.Field.String() + ")"
	case CUserAddr:
		return "UserAddr(" + c.Param + ")"
	case CNoAliases:
		return fmt.Sprintf("NoAliases(⟨%s⟩, ⟨%s⟩)", strings.Join(c.A, ","), strings.Join(c.B, ","))
	case CSenderShard:
		return "SenderShard"
	case CContractShard:
		return "ContractShard"
	default:
		return "⊥"
	}
}

func (c Constraint) key() string { return c.String() }

// Signature is a contract's sharding signature: the constraint set of
// each selected transition plus the per-field join dictionary.
type Signature struct {
	// Selected is the developer-chosen transition set, sorted.
	Selected []string
	// Constraints maps each selected transition to its constraints.
	Constraints map[string][]Constraint
	// Joins maps each written field to its join operation.
	Joins map[string]Join
	// WeakReads is the set of fields the developer accepted to read
	// possibly-stale values from (Sec. 4.2.3).
	WeakReads map[string]bool
	// StaleReads records the fields whose reads are actually weak under
	// the derived joins.
	StaleReads []string
	// CommutativeWrites maps a transition to the field refs it writes
	// commutatively (no ownership required).
	CommutativeWrites map[string][]domain.FieldRef
}

// IsBottom reports whether the named transition cannot be sharded.
func (sg *Signature) IsBottom(transition string) bool {
	for _, c := range sg.Constraints[transition] {
		if c.Kind == CBottom {
			return true
		}
	}
	return false
}

// OwnsConstraints returns the Owns constraints of a transition.
func (sg *Signature) OwnsConstraints(transition string) []Constraint {
	var out []Constraint
	for _, c := range sg.Constraints[transition] {
		if c.Kind == COwns {
			out = append(out, c)
		}
	}
	return out
}

// String renders the whole signature.
func (sg *Signature) String() string {
	var sb strings.Builder
	for _, tr := range sg.Selected {
		fmt.Fprintf(&sb, "transition %s:\n", tr)
		for _, c := range sg.Constraints[tr] {
			fmt.Fprintf(&sb, "  %s\n", c)
		}
	}
	fields := make([]string, 0, len(sg.Joins))
	for f := range sg.Joins {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		fmt.Fprintf(&sb, "join %s: %s\n", f, sg.Joins[f])
	}
	return sb.String()
}

// Query is the developer's input to the solver (Fig. 11): which
// transitions to shard and which fields may be read weakly.
type Query struct {
	Transitions []string
	WeakReads   []string
	// DisableCommutativity restricts the solver to sharding strategy 1
	// (disjoint state ownership): every write requires ownership and
	// every join is OwnOverwrite. Used by the Sec. 5.2.3 ablation.
	DisableCommutativity bool
	// CoarseOwnership disables pseudo-fields: every Owns constraint is
	// widened to the whole field (no map keys), so any two transactions
	// touching the same map conflict. This is the DESIGN.md ablation
	// quantifying the value of the paper's fine-grained footprints.
	CoarseOwnership bool
}

// Derive implements Algorithm 3.1: it derives the sharding signature
// for the query from the transitions' effect summaries.
func Derive(summaries map[string]*domain.Summary, q Query) (*Signature, error) {
	selected := append([]string{}, q.Transitions...)
	sort.Strings(selected)
	sel := make(map[string]*domain.Summary, len(selected))
	for _, tr := range selected {
		s, ok := summaries[tr]
		if !ok {
			return nil, fmt.Errorf("no summary for transition %s", tr)
		}
		sel[tr] = s.Copy()
	}
	weak := make(map[string]bool, len(q.WeakReads))
	for _, f := range q.WeakReads {
		weak[f] = true
	}

	// Step 1: constant fields — fields never written by the selected
	// transitions. Their reads are non-effectful and their
	// contributions constant.
	written := map[string]bool{}
	readOrMentioned := map[string]bool{}
	for _, s := range sel {
		for _, e := range s.Effects {
			switch e.Kind {
			case domain.EffWrite:
				written[e.Field.Name] = true
			case domain.EffRead:
				readOrMentioned[e.Field.Name] = true
			case domain.EffAcceptFunds:
				// accept modifies the implicit native balance.
				written[BalanceField] = true
			case domain.EffSendMsg:
				if amt, ok := e.Msg["_amount"]; !ok || amt == nil || !amt.IsZeroLit() {
					written[BalanceField] = true
				}
			}
		}
	}
	balanceWritten := written[BalanceField]
	cfs := map[string]bool{}
	for f := range readOrMentioned {
		if !written[f] {
			cfs[f] = true
		}
	}
	for _, s := range sel {
		var kept []domain.Effect
		for _, e := range s.Effects {
			if e.Kind == domain.EffRead && cfs[e.Field.Name] {
				continue
			}
			kept = append(kept, markConst(e, cfs))
		}
		s.Effects = kept
	}

	// Steps 2-4: local commutative writes consolidated globally into
	// per-field joins, spurious reads removed, then the weak-read check
	// (Sec. 4.2.3): fields whose remaining reads would observe stale
	// values without developer acceptance are demoted to OwnOverwrite,
	// and the pipeline reruns until stable.
	demoted := map[string]bool{}
	if q.DisableCommutativity {
		for _, s := range sel {
			for _, e := range s.Effects {
				if e.Kind == domain.EffWrite {
					demoted[e.Field.Name] = true
				}
			}
		}
		demoted[BalanceField] = true
	}
	var joins map[string]Join
	var cws map[string]map[int]bool // transition -> write effect index set
	var stale []string
	var work map[string]*domain.Summary
	for {
		joins, cws = consolidateJoins(sel, selected, demoted)
		if balanceWritten && !demoted[BalanceField] {
			// Native-balance changes (accept / funded sends) are
			// per-account deltas merged commutatively by the protocol.
			joins[BalanceField] = IntMerge
		}
		work = make(map[string]*domain.Summary, len(sel))
		for tr, s := range sel {
			work[tr] = s.Copy()
		}
		removeSpuriousReads(work, selected, cws)
		stale = staleReads(work, selected, joins, cws)
		changed := false
		for _, f := range stale {
			if !weak[f] && !demoted[f] {
				demoted[f] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	sel = work

	// Step 5: translate effects into constraints.
	sg := &Signature{
		Selected:          selected,
		Constraints:       make(map[string][]Constraint),
		Joins:             joins,
		WeakReads:         weak,
		StaleReads:        stale,
		CommutativeWrites: make(map[string][]domain.FieldRef),
	}
	for _, tr := range selected {
		s := sel[tr]
		cs := genConstraints(s, cws[tr])
		if q.CoarseOwnership {
			cs = coarsen(cs)
		}
		sg.Constraints[tr] = cs
		var comm []domain.FieldRef
		for i, e := range s.Effects {
			if e.Kind == domain.EffWrite && cws[tr][i] {
				comm = append(comm, e.Field)
			}
		}
		sg.CommutativeWrites[tr] = comm
	}
	return sg, nil
}

// markConst rewrites an effect's contributions, turning sources from
// constant fields into constants.
func markConst(e domain.Effect, cfs map[string]bool) domain.Effect {
	if len(cfs) == 0 {
		return e
	}
	out := e
	if e.C != nil {
		out.C = e.C.MarkFieldConst(cfs)
	}
	if e.Msg != nil {
		nm := make(domain.MsgContrib, len(e.Msg))
		for k, v := range e.Msg {
			nm[k] = v.MarkFieldConst(cfs)
		}
		out.Msg = nm
	}
	return out
}

// commutativeOps is the operation set compatible with IntMerge.
var commutativeOps = map[string]bool{"add": true, "sub": true}

// IsCommutativeWrite reports whether a Write effect commutes: the
// written value's only field source is the written field itself,
// linearly (cardinality 1) combined via add/sub, with Exact precision;
// every other source is a constant or a transition parameter.
func IsCommutativeWrite(e domain.Effect) bool {
	if e.Kind != domain.EffWrite || e.C == nil || e.C.Top || e.C.Fun != nil {
		return false
	}
	if e.C.Prec != domain.Exact {
		return false
	}
	sawSelf := false
	for _, sc := range e.C.Sources {
		switch sc.Src.Kind {
		case domain.SrcField:
			if !sc.Src.Field.Equal(e.Field) {
				return false
			}
			if sc.Card != domain.Card1 {
				return false
			}
			if len(sc.Ops) == 0 {
				return false
			}
			for op := range sc.Ops {
				if !commutativeOps[op] {
					return false
				}
			}
			sawSelf = true
		case domain.SrcConst, domain.SrcParam:
			// Constants and user inputs are per-transaction constants.
		default:
			return false
		}
	}
	return sawSelf
}

// consolidateJoins computes, per field, whether all selected writes
// commute (IntMerge) or not (OwnOverwrite); demoted fields are forced
// to OwnOverwrite. Returns the join table and the per-transition set of
// commutative write effect indices.
func consolidateJoins(sel map[string]*domain.Summary, order []string, demoted map[string]bool) (map[string]Join, map[string]map[int]bool) {
	allComm := map[string]bool{}
	seen := map[string]bool{}
	for _, tr := range order {
		for _, e := range sel[tr].Effects {
			if e.Kind != domain.EffWrite {
				continue
			}
			f := e.Field.Name
			if !seen[f] {
				seen[f] = true
				allComm[f] = true
			}
			if !IsCommutativeWrite(e) {
				allComm[f] = false
			}
		}
	}
	joins := make(map[string]Join)
	for f := range seen {
		if allComm[f] && !demoted[f] {
			joins[f] = IntMerge
		} else {
			joins[f] = OwnOverwrite
		}
	}
	cws := make(map[string]map[int]bool)
	for _, tr := range order {
		set := map[int]bool{}
		for i, e := range sel[tr].Effects {
			if e.Kind == domain.EffWrite && joins[e.Field.Name] == IntMerge && IsCommutativeWrite(e) {
				set[i] = true
			}
		}
		cws[tr] = set
	}
	return joins, cws
}

// staleReads returns the fields with an IntMerge join that are still
// read (directly or via conditions/messages) by a selected transition;
// such reads may observe stale values (Sec. 4.2.3). A commutative
// write's flow of the field into itself is exempt: under IntMerge the
// shard contributes an exact delta regardless of the locally observed
// value.
func staleReads(sel map[string]*domain.Summary, order []string, joins map[string]Join, cws map[string]map[int]bool) []string {
	staleSet := map[string]bool{}
	for _, tr := range order {
		for i, e := range sel[tr].Effects {
			switch e.Kind {
			case domain.EffRead:
				if joins[e.Field.Name] == IntMerge {
					staleSet[e.Field.Name] = true
				}
			case domain.EffCondition, domain.EffWrite:
				if e.C == nil || (e.Kind == domain.EffWrite && cws[tr][i]) {
					continue
				}
				for _, sc := range e.C.FieldSources() {
					if joins[sc.Src.Field.Name] == IntMerge {
						staleSet[sc.Src.Field.Name] = true
					}
				}
			case domain.EffSendMsg:
				for _, v := range e.Msg {
					for _, sc := range v.FieldSources() {
						if joins[sc.Src.Field.Name] == IntMerge {
							staleSet[sc.Src.Field.Name] = true
						}
					}
				}
			}
		}
	}
	out := make([]string, 0, len(staleSet))
	for f := range staleSet {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// removeSpuriousReads drops Read effects whose pseudo-field flows only
// into commutative writes (footnote 5: Condition effects protect reads
// that affect control flow).
func removeSpuriousReads(sel map[string]*domain.Summary, order []string, cws map[string]map[int]bool) {
	for _, tr := range order {
		s := sel[tr]
		protected := map[string]bool{} // field-ref renderings that must stay owned
		inCws := map[string]bool{}
		for i, e := range s.Effects {
			switch e.Kind {
			case domain.EffCondition:
				for _, sc := range e.C.FieldSources() {
					protected[sc.Src.Field.String()] = true
				}
			case domain.EffSendMsg:
				for _, v := range e.Msg {
					for _, sc := range v.FieldSources() {
						protected[sc.Src.Field.String()] = true
					}
				}
			case domain.EffWrite:
				if cws[tr][i] {
					for _, sc := range e.C.FieldSources() {
						inCws[sc.Src.Field.String()] = true
					}
				} else if e.C != nil {
					for _, sc := range e.C.FieldSources() {
						protected[sc.Src.Field.String()] = true
					}
				}
			}
		}
		var kept []domain.Effect
		newSet := map[int]bool{}
		for i, e := range s.Effects {
			if e.Kind == domain.EffRead {
				key := e.Field.String()
				if inCws[key] && !protected[key] {
					continue
				}
			}
			if cws[tr][i] {
				newSet[len(kept)] = true
			}
			kept = append(kept, e)
		}
		cws[tr] = newSet
		s.Effects = kept
	}
}

// coarsen widens every keyed Owns constraint to whole-field ownership
// and drops the then-redundant NoAliases preconditions.
func coarsen(cs []Constraint) []Constraint {
	var out []Constraint
	seen := map[string]bool{}
	for _, c := range cs {
		switch c.Kind {
		case COwns:
			c.Field = domain.FieldRef{Name: c.Field.Name}
			if seen[c.Field.Name] {
				continue
			}
			seen[c.Field.Name] = true
		case CNoAliases:
			continue
		}
		out = append(out, c)
	}
	return out
}

// genConstraints translates one transition's (rewritten) summary into
// its constraint set via the Fig. 9 mapping.
func genConstraints(s *domain.Summary, comm map[int]bool) []Constraint {
	var cs []Constraint
	add := func(c Constraint) { cs = append(cs, c) }

	// Environment constraints.
	for _, e := range s.Effects {
		switch e.Kind {
		case domain.EffTop:
			return []Constraint{{Kind: CBottom}}
		case domain.EffAcceptFunds:
			add(Constraint{Kind: CSenderShard})
		case domain.EffSendMsg:
			if e.Msg == nil {
				return []Constraint{{Kind: CBottom}}
			}
			// Any send must target a user account (a contract recipient
			// would be an inter-contract call).
			rcp, ok := e.Msg["_recipient"]
			if !ok {
				return []Constraint{{Kind: CBottom}}
			}
			p, isParam := rcp.SingleParam()
			if !isParam {
				return []Constraint{{Kind: CBottom}}
			}
			add(Constraint{Kind: CUserAddr, Param: p})
			amt := e.Msg["_amount"]
			if amt == nil || !amt.IsZeroLit() {
				// Funds leave the contract: the executing shard must
				// own the contract's native balance.
				add(Constraint{Kind: CContractShard})
			}
		}
	}

	// Aliasing preconditions: distinct symbolic key vectors into the
	// same map must not alias at runtime.
	type access struct {
		field string
		keys  []string
	}
	seenAcc := map[string]access{}
	var accOrder []string
	record := func(ref domain.FieldRef) {
		if len(ref.Keys) == 0 {
			return
		}
		k := ref.String()
		if _, ok := seenAcc[k]; !ok {
			seenAcc[k] = access{field: ref.Name, keys: ref.Keys}
			accOrder = append(accOrder, k)
		}
	}
	for _, e := range s.Effects {
		if e.Kind == domain.EffRead || e.Kind == domain.EffWrite {
			record(e.Field)
		}
	}
	for i := 0; i < len(accOrder); i++ {
		for j := i + 1; j < len(accOrder); j++ {
			a, b := seenAcc[accOrder[i]], seenAcc[accOrder[j]]
			if a.field != b.field || len(a.keys) != len(b.keys) {
				continue
			}
			add(Constraint{Kind: CNoAliases, A: a.keys, B: b.keys})
		}
	}

	// Ownership: every remaining read, and every non-commutative write.
	ownsSeen := map[string]bool{}
	owns := func(ref domain.FieldRef) {
		k := ref.String()
		if ownsSeen[k] {
			return
		}
		ownsSeen[k] = true
		add(Constraint{Kind: COwns, Field: ref})
	}
	for i, e := range s.Effects {
		switch e.Kind {
		case domain.EffRead:
			owns(e.Field)
		case domain.EffWrite:
			if !comm[i] {
				owns(e.Field)
			}
		}
	}

	// Deduplicate.
	seen := map[string]bool{}
	var out []Constraint
	for _, c := range cs {
		k := c.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}
