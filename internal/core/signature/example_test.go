package signature_test

import (
	"fmt"
	"log"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/signature"
)

// Example_transferSignature walks the full offline developer flow of
// Fig. 11: analyse the ERC20-style FungibleToken and derive the
// sharding signature for its token-moving transitions. The result is
// the paper's Sec. 2.2 "Strategy 2": Transfer owns only the sender's
// balance entry, and balances merge commutatively.
func Example_transferSignature() {
	checked := contracts.MustParse("FungibleToken")
	an, err := analysis.New(checked)
	if err != nil {
		log.Fatal(err)
	}
	summaries, err := an.AnalyzeAll()
	if err != nil {
		log.Fatal(err)
	}
	sig, err := signature.Derive(summaries, signature.Query{
		Transitions: []string{"Transfer"},
		WeakReads:   []string{"balances"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range sig.Constraints["Transfer"] {
		fmt.Println(c)
	}
	fmt.Println("balances join:", sig.Joins["balances"])
	// Output:
	// NoAliases(⟨_sender⟩, ⟨to⟩)
	// Owns(balances[_sender])
	// balances join: IntMerge
}
