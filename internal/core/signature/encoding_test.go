package signature_test

import (
	"encoding/json"
	"testing"

	"cosplit/internal/core/signature"
)

// TestSignatureJSONRoundTrip: the wire format preserves the signature
// exactly (compared via the canonical rendering, which Deploy-time
// validation also uses).
func TestSignatureJSONRoundTrip(t *testing.T) {
	for _, contract := range []string{"FungibleToken", "NonfungibleToken", "Crowdfunding", "UDRegistry", "ProofIPFS", "NonfungibleTokenMainnet"} {
		sg := derive(t, contract, paperQueryOrDefault(contract))
		data, err := json.Marshal(sg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", contract, err)
		}
		var back signature.Signature
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", contract, err)
		}
		if back.String() != sg.String() {
			t.Errorf("%s: round-trip changed the signature:\n%s\n---\n%s",
				contract, sg, back.String())
		}
		// Commutative-write info survives too (it drives delta joins).
		for tr, refs := range sg.CommutativeWrites {
			if len(back.CommutativeWrites[tr]) != len(refs) {
				t.Errorf("%s.%s: commutative writes lost", contract, tr)
			}
		}
	}
}

func paperQueryOrDefault(contract string) signature.Query {
	switch contract {
	case "NonfungibleTokenMainnet":
		return signature.Query{Transitions: []string{"Mint", "Transfer"}}
	default:
		return paperQuery(contract)
	}
}

func TestSignatureJSONRejectsGarbage(t *testing.T) {
	var sg signature.Signature
	if err := json.Unmarshal([]byte(`{"joins":{"x":"Nope"}}`), &sg); err == nil {
		t.Error("unknown join accepted")
	}
	if err := json.Unmarshal([]byte(`{"constraints":{"T":[{"kind":"wat"}]}}`), &sg); err == nil {
		t.Error("unknown constraint kind accepted")
	}
	if err := json.Unmarshal([]byte(`{nope`), &sg); err == nil {
		t.Error("malformed JSON accepted")
	}
}
