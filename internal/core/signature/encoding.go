package signature

import (
	"encoding/json"
	"fmt"

	"cosplit/internal/core/domain"
)

// Wire format for sharding signatures. A contract-deploying transaction
// carries the developer-computed signature (Sec. 4.3); nodes serialise
// it for broadcast alongside the contract code and metadata. The format
// is stable JSON so any component able to (de)serialise contract state
// can also exchange signatures (the paper's integration does the same
// over JSON-RPC).

type wireConstraint struct {
	Kind  string   `json:"kind"`
	Field string   `json:"field,omitempty"`
	Keys  []string `json:"keys,omitempty"`
	Param string   `json:"param,omitempty"`
	A     []string `json:"a,omitempty"`
	B     []string `json:"b,omitempty"`
}

type wireSignature struct {
	Selected    []string                    `json:"selected"`
	Constraints map[string][]wireConstraint `json:"constraints"`
	Joins       map[string]string           `json:"joins"`
	WeakReads   []string                    `json:"weak_reads,omitempty"`
	StaleReads  []string                    `json:"stale_reads,omitempty"`
	Commutative map[string][]wireField      `json:"commutative_writes,omitempty"`
}

type wireField struct {
	Field string   `json:"field"`
	Keys  []string `json:"keys,omitempty"`
}

var kindNames = map[ConstraintKind]string{
	COwns:          "owns",
	CUserAddr:      "user_addr",
	CNoAliases:     "no_aliases",
	CSenderShard:   "sender_shard",
	CContractShard: "contract_shard",
	CBottom:        "bottom",
}

var kindValues = func() map[string]ConstraintKind {
	m := make(map[string]ConstraintKind, len(kindNames))
	for k, v := range kindNames {
		m[v] = k
	}
	return m
}()

// MarshalJSON implements json.Marshaler.
func (sg *Signature) MarshalJSON() ([]byte, error) {
	w := wireSignature{
		Selected:    sg.Selected,
		Constraints: make(map[string][]wireConstraint, len(sg.Constraints)),
		Joins:       make(map[string]string, len(sg.Joins)),
		StaleReads:  sg.StaleReads,
		Commutative: make(map[string][]wireField, len(sg.CommutativeWrites)),
	}
	for tr, cs := range sg.Constraints {
		out := make([]wireConstraint, 0, len(cs))
		for _, c := range cs {
			out = append(out, wireConstraint{
				Kind:  kindNames[c.Kind],
				Field: c.Field.Name,
				Keys:  c.Field.Keys,
				Param: c.Param,
				A:     c.A,
				B:     c.B,
			})
		}
		w.Constraints[tr] = out
	}
	for f, j := range sg.Joins {
		w.Joins[f] = j.String()
	}
	for f := range sg.WeakReads {
		w.WeakReads = append(w.WeakReads, f)
	}
	sortStrings(w.WeakReads)
	for tr, refs := range sg.CommutativeWrites {
		out := make([]wireField, 0, len(refs))
		for _, r := range refs {
			out = append(out, wireField{Field: r.Name, Keys: r.Keys})
		}
		w.Commutative[tr] = out
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (sg *Signature) UnmarshalJSON(data []byte) error {
	var w wireSignature
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	sg.Selected = w.Selected
	sg.Constraints = make(map[string][]Constraint, len(w.Constraints))
	for tr, cs := range w.Constraints {
		out := make([]Constraint, 0, len(cs))
		for _, c := range cs {
			kind, ok := kindValues[c.Kind]
			if !ok {
				return fmt.Errorf("unknown constraint kind %q", c.Kind)
			}
			out = append(out, Constraint{
				Kind:  kind,
				Field: domain.FieldRef{Name: c.Field, Keys: c.Keys},
				Param: c.Param,
				A:     c.A,
				B:     c.B,
			})
		}
		sg.Constraints[tr] = out
	}
	sg.Joins = make(map[string]Join, len(w.Joins))
	for f, j := range w.Joins {
		switch j {
		case "IntMerge":
			sg.Joins[f] = IntMerge
		case "OwnOverwrite":
			sg.Joins[f] = OwnOverwrite
		default:
			return fmt.Errorf("unknown join %q", j)
		}
	}
	sg.WeakReads = make(map[string]bool, len(w.WeakReads))
	for _, f := range w.WeakReads {
		sg.WeakReads[f] = true
	}
	sg.StaleReads = w.StaleReads
	sg.CommutativeWrites = make(map[string][]domain.FieldRef, len(w.Commutative))
	for tr, refs := range w.Commutative {
		out := make([]domain.FieldRef, 0, len(refs))
		for _, r := range refs {
			out = append(out, domain.FieldRef{Name: r.Field, Keys: r.Keys})
		}
		sg.CommutativeWrites[tr] = out
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
