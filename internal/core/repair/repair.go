// Package repair implements the automated contract-repair advisor
// sketched in Sec. 6 of the paper: it inspects transition summaries
// for accesses that defeat the CoSplit analysis (⊤ effects, lost
// message structure) and suggests the compare-and-swap refactorings
// that make the contract shardable — e.g. turning a state-dependent
// map key into a transition parameter validated against the stored
// value.
package repair

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"cosplit/internal/core/domain"
)

// Kind classifies a suggestion.
type Kind int

// Suggestion kinds.
const (
	// StateDependentKey: a map access keyed by a value read from the
	// contract state (the Sec. 6 NFT example). Fix: pass the expected
	// value as a transition parameter and validate it (CAS).
	StateDependentKey Kind = iota
	// NonBottomAccess: a nested map accessed above its leaf level.
	NonBottomAccess
	// ReadAfterWrite: the transition reads a component it already
	// wrote; restructure to keep the value in a local.
	ReadAfterWrite
	// UntrackedMessage: a sent message whose payload the analysis
	// could not reconstruct.
	UntrackedMessage
	// OpaqueTop: any other ⊤ effect.
	OpaqueTop
)

func (k Kind) String() string {
	switch k {
	case StateDependentKey:
		return "state-dependent map key"
	case NonBottomAccess:
		return "non-bottom-level map access"
	case ReadAfterWrite:
		return "read after write"
	case UntrackedMessage:
		return "untracked message payload"
	default:
		return "unsummarisable access"
	}
}

// Suggestion is one repair hint for one transition.
type Suggestion struct {
	Transition string
	Kind       Kind
	// Detail is the analysis' reason (the ⊤ note).
	Detail string
	// Advice is the suggested refactoring.
	Advice string
}

func (s Suggestion) String() string {
	return fmt.Sprintf("%s: [%s] %s\n    fix: %s", s.Transition, s.Kind, s.Detail, s.Advice)
}

var keyNote = regexp.MustCompile(`map key "([^"]+)" into (\S+) is not a transition parameter`)

// Advise inspects the transitions' summaries and produces repair
// suggestions for everything that blocks sharding.
func Advise(summaries map[string]*domain.Summary) []Suggestion {
	var out []Suggestion
	names := make([]string, 0, len(summaries))
	for tr := range summaries {
		names = append(names, tr)
	}
	sort.Strings(names)
	seen := map[string]bool{}
	add := func(s Suggestion) {
		key := s.Transition + "|" + s.Detail
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, s)
	}
	for _, tr := range names {
		for _, e := range summaries[tr].Effects {
			switch e.Kind {
			case domain.EffTop:
				add(classifyTop(tr, e.Note))
			case domain.EffSendMsg:
				if e.Msg == nil {
					add(Suggestion{
						Transition: tr,
						Kind:       UntrackedMessage,
						Detail:     e.Note,
						Advice: "construct messages with literal {...} syntax and pass them " +
							"through one_msg/two_msgs-style helpers so the analysis can track " +
							"_recipient and _amount",
					})
				}
			}
		}
	}
	return out
}

func classifyTop(tr, note string) Suggestion {
	s := Suggestion{Transition: tr, Kind: OpaqueTop, Detail: note}
	switch {
	case keyNote.MatchString(note):
		m := keyNote.FindStringSubmatch(note)
		key, field := m[1], m[2]
		s.Kind = StateDependentKey
		s.Advice = fmt.Sprintf(
			"make %q a transition parameter and validate it against the stored value "+
				"(compare-and-swap): read the authoritative value, check it equals the "+
				"parameter, and only then index %s with the parameter", key, field)
	case strings.Contains(note, "not bottom-level"):
		s.Kind = NonBottomAccess
		s.Advice = "access the innermost map entries directly (supply all keys) instead of " +
			"reading or writing an intermediate sub-map"
	case strings.Contains(note, "after a write"):
		s.Kind = ReadAfterWrite
		s.Advice = "keep the written value in a local binding instead of re-reading the field"
	default:
		s.Advice = "restructure the access so map keys are transition parameters and fields " +
			"are not re-read after writes"
	}
	return s
}

// Shardable reports whether a transition's summary is free of analysis
// blockers (it may still require ownership; this only checks for ⊤).
func Shardable(s *domain.Summary) bool {
	for _, e := range s.Effects {
		if e.Kind == domain.EffTop {
			return false
		}
		if e.Kind == domain.EffSendMsg && e.Msg == nil {
			return false
		}
	}
	return true
}
