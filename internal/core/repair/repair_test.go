package repair_test

import (
	"strings"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/domain"
	"cosplit/internal/core/repair"
)

func summaries(t *testing.T, contract string) map[string]*domain.Summary {
	t.Helper()
	chk := contracts.MustParse(contract)
	a, err := analysis.New(chk)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := a.AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	return sums
}

// TestMainnetNFTGetsCASAdvice reproduces the Sec. 6 example: the
// pre-rewrite NFT Transfer indexes operator_approvals with the owner
// read from state; the advisor must suggest the compare-and-swap
// parameter rewrite.
func TestMainnetNFTGetsCASAdvice(t *testing.T) {
	sums := summaries(t, "NonfungibleTokenMainnet")
	if repair.Shardable(sums["Transfer"]) {
		t.Fatal("mainnet Transfer should be blocked (⊤)")
	}
	suggestions := repair.Advise(sums)
	found := false
	for _, s := range suggestions {
		if s.Transition == "Transfer" && s.Kind == repair.StateDependentKey {
			found = true
			if !strings.Contains(s.Detail, "token_owner") {
				t.Errorf("detail does not name the offending key: %s", s.Detail)
			}
			if !strings.Contains(s.Advice, "compare-and-swap") {
				t.Errorf("advice does not suggest CAS: %s", s.Advice)
			}
		}
	}
	if !found {
		t.Errorf("no state-dependent-key suggestion for Transfer:\n%v", suggestions)
	}
}

// TestMainnetUDGetsAdvice: same for the registry's Configure.
func TestMainnetUDGetsAdvice(t *testing.T) {
	sums := summaries(t, "UDRegistryMainnet")
	suggestions := repair.Advise(sums)
	found := false
	for _, s := range suggestions {
		if s.Transition == "Configure" && s.Kind == repair.StateDependentKey {
			found = true
		}
	}
	if !found {
		t.Errorf("no suggestion for UD Configure:\n%v", suggestions)
	}
}

// TestRewrittenContractsAreClean: the CAS-rewritten evaluation
// contracts must produce no suggestions.
func TestRewrittenContractsAreClean(t *testing.T) {
	for _, name := range []string{"FungibleToken", "NonfungibleToken", "UDRegistry", "Crowdfunding", "ProofIPFS"} {
		sums := summaries(t, name)
		if got := repair.Advise(sums); len(got) != 0 {
			t.Errorf("%s: unexpected suggestions:\n%v", name, got)
		}
		for tr, s := range sums {
			if !repair.Shardable(s) {
				t.Errorf("%s.%s unexpectedly blocked", name, tr)
			}
		}
	}
}
