package repair_test

import (
	"fmt"
	"log"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/repair"
)

// ExampleAdvise reproduces the Sec. 6 repair scenario on the
// pre-rewrite mainnet NFT: the advisor pinpoints the state-dependent
// map key that defeats the analysis.
func ExampleAdvise() {
	checked := contracts.MustParse("NonfungibleTokenMainnet")
	an, err := analysis.New(checked)
	if err != nil {
		log.Fatal(err)
	}
	summaries, err := an.AnalyzeAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range repair.Advise(summaries) {
		if s.Kind == repair.StateDependentKey {
			fmt.Printf("%s: %s\n", s.Transition, s.Kind)
		}
	}
	// Output:
	// Transfer: state-dependent map key
	// Transfer: state-dependent map key
}
