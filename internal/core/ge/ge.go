// Package ge implements the "good enough" sharding-signature analysis
// of Sec. 5.1.2 (Definitions 5.1-5.3): hogged fields, good-enough (GE)
// signatures, the largest GE signature, and the set of maximal GE
// signatures, computed by exhaustive enumeration over transition
// selections exactly as the paper's offline tooling does.
package ge

import (
	"fmt"
	"math/bits"
	"sort"

	"cosplit/internal/core/domain"
	"cosplit/internal/core/signature"
)

// HoggedFields returns the fields a transition hogs in a signature
// (Def. 5.1): fields the transition's constraints require a shard to
// own fully, i.e. whole-field Owns constraints (no map keys). A ⊥
// transition hogs the pseudo-field "*" (the entire contract state).
func HoggedFields(sg *signature.Signature, transition string) []string {
	var out []string
	for _, c := range sg.Constraints[transition] {
		switch c.Kind {
		case signature.CBottom:
			return []string{"*"}
		case signature.COwns:
			if len(c.Field.Keys) == 0 {
				out = append(out, c.Field.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// IsGoodEnough reports whether a signature is good enough (Def. 5.2)
// for its selection of k transitions: for k = 1 the transition hogs no
// fields; for k > 1 every field is hogged by at most one transition. A
// selection containing an unshardable (⊥) transition is never GE.
func IsGoodEnough(sg *signature.Signature) bool {
	k := len(sg.Selected)
	if k == 0 {
		return false
	}
	hogCount := map[string]int{}
	for _, tr := range sg.Selected {
		hogs := HoggedFields(sg, tr)
		for _, f := range hogs {
			if f == "*" {
				return false
			}
			hogCount[f]++
		}
	}
	if k == 1 {
		return len(hogCount) == 0
	}
	for _, n := range hogCount {
		if n > 1 {
			return false
		}
	}
	return true
}

// Result summarises the GE analysis of one contract (the data behind
// Fig. 13 and the Sec. 5.2 table).
type Result struct {
	Contract       string
	NumTransitions int
	// LargestGE is the size of the largest good-enough selection
	// (Fig. 13a).
	LargestGE int
	// LargestGESelection is one witness selection of that size.
	LargestGESelection []string
	// MaximalGE is the number of maximal GE signatures (Fig. 13b).
	MaximalGE int
	// MaximalSelections lists the maximal GE selections.
	MaximalSelections [][]string
	// Queries is the number of sharding-solver queries performed.
	Queries int
}

// Analyze enumerates all non-empty transition selections of a contract
// and computes the largest and maximal GE signatures. All fields are
// treated as weakly readable — the analysis quantifies the existence
// of parallelism, not a particular developer's staleness tolerance.
// Contracts with more than MaxTransitions transitions are rejected.
const MaxTransitions = 20

// Analyze runs the GE enumeration for a contract's summaries.
func Analyze(contract string, summaries map[string]*domain.Summary, fields []string) (*Result, error) {
	names := make([]string, 0, len(summaries))
	for tr := range summaries {
		names = append(names, tr)
	}
	sort.Strings(names)
	n := len(names)
	if n > MaxTransitions {
		return nil, fmt.Errorf("contract %s has %d transitions; enumeration capped at %d", contract, n, MaxTransitions)
	}
	res := &Result{Contract: contract, NumTransitions: n}

	isGE := make([]bool, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		var selectedNames []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				selectedNames = append(selectedNames, names[i])
			}
		}
		sg, err := signature.Derive(summaries, signature.Query{
			Transitions: selectedNames,
			WeakReads:   fields,
		})
		if err != nil {
			return nil, err
		}
		res.Queries++
		isGE[mask] = IsGoodEnough(sg)
		if isGE[mask] && bits.OnesCount(uint(mask)) > res.LargestGE {
			res.LargestGE = bits.OnesCount(uint(mask))
			res.LargestGESelection = selectedNames
		}
	}

	// A GE selection is maximal iff no strict superset is GE (Def. 5.3).
	// GE is not downward- or upward-closed, so all strict supersets are
	// checked, enumerated directly (3^n work overall).
	full := 1<<n - 1
	for mask := 1; mask < 1<<n; mask++ {
		if !isGE[mask] {
			continue
		}
		maximal := true
		rest := full &^ mask
		for sub := rest; sub > 0 && maximal; sub = (sub - 1) & rest {
			if isGE[mask|sub] {
				maximal = false
			}
		}
		if maximal {
			var sel []string
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					sel = append(sel, names[i])
				}
			}
			res.MaximalGE++
			res.MaximalSelections = append(res.MaximalSelections, sel)
		}
	}
	return res, nil
}
