package ge_test

import (
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/domain"
	"cosplit/internal/core/ge"
	"cosplit/internal/core/signature"
)

func ftSummaries(t *testing.T) (map[string]*domain.Summary, []string) {
	t.Helper()
	chk := contracts.MustParse("FungibleToken")
	a, err := analysis.New(chk)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := a.AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	var fields []string
	for f := range chk.FieldTypes {
		fields = append(fields, f)
	}
	return sums, fields
}

func TestHoggedFields(t *testing.T) {
	sums, fields := ftSummaries(t)

	// ChangeOwner stores the whole current_owner field: it hogs it.
	sg, err := signature.Derive(sums, signature.Query{
		Transitions: []string{"ChangeOwner"},
		WeakReads:   fields,
	})
	if err != nil {
		t.Fatal(err)
	}
	hogs := ge.HoggedFields(sg, "ChangeOwner")
	if len(hogs) != 1 || hogs[0] != "current_owner" {
		t.Errorf("ChangeOwner hogs %v, want [current_owner]", hogs)
	}
	if ge.IsGoodEnough(sg) {
		t.Error("a single field-hogging transition is not GE")
	}

	// Transfer hogs nothing: it owns only map entries.
	sg2, err := signature.Derive(sums, signature.Query{
		Transitions: []string{"Transfer"},
		WeakReads:   fields,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hogs := ge.HoggedFields(sg2, "Transfer"); len(hogs) != 0 {
		t.Errorf("Transfer hogs %v, want none", hogs)
	}
	if !ge.IsGoodEnough(sg2) {
		t.Error("{Transfer} must be GE")
	}
}

func TestGEPairs(t *testing.T) {
	sums, fields := ftSummaries(t)
	// Mint + Transfer: both commutative/entry-owned; GE.
	sg, err := signature.Derive(sums, signature.Query{
		Transitions: []string{"Mint", "Transfer"},
		WeakReads:   fields,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ge.IsGoodEnough(sg) {
		t.Errorf("{Mint, Transfer} must be GE:\n%s", sg)
	}
}

func TestAnalyzeFungibleToken(t *testing.T) {
	sums, fields := ftSummaries(t)
	res, err := ge.Analyze("FungibleToken", sums, fields)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTransitions != 10 {
		t.Errorf("NumTransitions = %d, want 10", res.NumTransitions)
	}
	if res.LargestGE < 6 {
		t.Errorf("LargestGE = %d (selection %v), want >= 6 (paper reports 6)",
			res.LargestGE, res.LargestGESelection)
	}
	if res.MaximalGE < 1 {
		t.Errorf("MaximalGE = %d, want >= 1", res.MaximalGE)
	}
	if res.Queries != (1<<res.NumTransitions)-1 {
		t.Errorf("Queries = %d, want %d", res.Queries, (1<<res.NumTransitions)-1)
	}
	// Every maximal selection must itself be GE and not a subset of
	// another maximal selection.
	for i, a := range res.MaximalSelections {
		for j, b := range res.MaximalSelections {
			if i != j && isSubset(a, b) {
				t.Errorf("maximal selection %v is a subset of %v", a, b)
			}
		}
	}
}

func isSubset(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// TestGEDeterminism: the enumeration is a pure function of the
// summaries.
func TestGEDeterminism(t *testing.T) {
	sums, fields := ftSummaries(t)
	a, err := ge.Analyze("FungibleToken", sums, fields)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ge.Analyze("FungibleToken", sums, fields)
	if err != nil {
		t.Fatal(err)
	}
	if a.LargestGE != b.LargestGE || a.MaximalGE != b.MaximalGE || a.Queries != b.Queries {
		t.Errorf("non-deterministic GE analysis: %+v vs %+v", a, b)
	}
}

// TestLargestIsWitnessed: the largest GE selection must itself be GE,
// and every superset of a maximal selection must not be.
func TestLargestIsWitnessed(t *testing.T) {
	sums, fields := ftSummaries(t)
	res, err := ge.Analyze("FungibleToken", sums, fields)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := signature.Derive(sums, signature.Query{
		Transitions: res.LargestGESelection, WeakReads: fields,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ge.IsGoodEnough(sg) {
		t.Error("largest GE selection is not GE")
	}
	if len(res.LargestGESelection) != res.LargestGE {
		t.Error("largest GE size does not match its witness")
	}
	// Maximality: adding any other transition to a maximal selection
	// must break GE.
	for _, sel := range res.MaximalSelections {
		in := map[string]bool{}
		for _, tr := range sel {
			in[tr] = true
		}
		for tr := range sums {
			if in[tr] {
				continue
			}
			ext := append(append([]string{}, sel...), tr)
			sg, err := signature.Derive(sums, signature.Query{Transitions: ext, WeakReads: fields})
			if err != nil {
				t.Fatal(err)
			}
			if ge.IsGoodEnough(sg) {
				t.Errorf("maximal selection %v extends to GE with %s", sel, tr)
			}
		}
	}
}

// TestBottomNeverGE: the pre-rewrite mainnet NFT's Transfer is ⊥ and
// can never be part of a GE selection.
func TestBottomNeverGE(t *testing.T) {
	chk := contracts.MustParse("NonfungibleTokenMainnet")
	a, err := analysis.New(chk)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := a.AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	var fields []string
	for f := range chk.FieldTypes {
		fields = append(fields, f)
	}
	res, err := ge.Analyze("NonfungibleTokenMainnet", sums, fields)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range res.MaximalSelections {
		for _, tr := range sel {
			if tr == "Transfer" {
				t.Errorf("⊥ transition Transfer appears in GE selection %v", sel)
			}
		}
	}
}
