package analysis_test

import (
	"strings"
	"testing"

	"cosplit/internal/contracts"
	"cosplit/internal/core/analysis"
	"cosplit/internal/core/domain"
)

func summarise(t *testing.T, contract, transition string) *domain.Summary {
	t.Helper()
	chk := contracts.MustParse(contract)
	a, err := analysis.New(chk)
	if err != nil {
		t.Fatalf("analysis.New: %v", err)
	}
	s, err := a.Analyze(transition)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", transition, err)
	}
	return s
}

// findWrite returns the Write effect for the given field rendering.
func findWrite(s *domain.Summary, field string) (domain.Effect, bool) {
	for _, e := range s.Writes() {
		if e.Field.String() == field {
			return e, true
		}
	}
	return domain.Effect{}, false
}

func findRead(s *domain.Summary, field string) bool {
	for _, e := range s.Reads() {
		if e.Field.String() == field {
			return true
		}
	}
	return false
}

// TestTransferSummaryMatchesFig8 checks that the inferred summary of
// FungibleToken.Transfer has the shape of Fig. 8 in the paper.
func TestTransferSummaryMatchesFig8(t *testing.T) {
	s := summarise(t, "FungibleToken", "Transfer")

	if !findRead(s, "balances[_sender]") {
		t.Error("missing Read(balances[_sender])")
	}
	if !findRead(s, "balances[to]") {
		t.Error("missing Read(balances[to])")
	}

	// Write(balances[_sender], <amount & balances[_sender], 1, sub>)
	w, ok := findWrite(s, "balances[_sender]")
	if !ok {
		t.Fatal("missing Write(balances[_sender])")
	}
	fs := w.C.FieldSources()
	if len(fs) != 1 || fs[0].Src.Field.String() != "balances[_sender]" {
		t.Fatalf("write to balances[_sender] has field sources %v", fs)
	}
	if fs[0].Card != domain.Card1 {
		t.Errorf("cardinality = %s, want 1", fs[0].Card)
	}
	if !fs[0].Ops["sub"] || len(fs[0].Ops) != 1 {
		t.Errorf("ops = %v, want {sub}", fs[0].Ops)
	}
	if w.C.Prec != domain.Exact {
		t.Errorf("precision = %s, want Exact", w.C.Prec)
	}

	// Write(balances[to], <amount & balances[to], 1, add>), via the
	// option-peeling match (IsKnownOp).
	w2, ok := findWrite(s, "balances[to]")
	if !ok {
		t.Fatal("missing Write(balances[to])")
	}
	fs2 := w2.C.FieldSources()
	if len(fs2) != 1 || fs2[0].Src.Field.String() != "balances[to]" {
		t.Fatalf("write to balances[to] has field sources %v", fs2)
	}
	if fs2[0].Card != domain.Card1 || !fs2[0].Ops["add"] || len(fs2[0].Ops) != 1 {
		t.Errorf("balances[to] contribution = (%s, %v), want (1, {add})", fs2[0].Card, fs2[0].Ops)
	}
	if w2.C.Prec != domain.Exact {
		t.Errorf("precision = %s, want Exact (option-peel must stay precise)", w2.C.Prec)
	}

	// A Condition mentioning balances[_sender] must be present.
	condHasField := false
	for _, e := range s.Conditions() {
		for _, sc := range e.C.FieldSources() {
			if sc.Src.Field.String() == "balances[_sender]" {
				condHasField = true
			}
		}
	}
	if !condHasField {
		t.Error("missing Condition over balances[_sender]")
	}

	if s.HasTop() {
		t.Errorf("summary unexpectedly contains ⊤:\n%s", s)
	}
}

// TestMintCommutativeWrites: both writes of Mint (balances[recipient]
// and total_supply) must be linear additions.
func TestMintSummary(t *testing.T) {
	s := summarise(t, "FungibleToken", "Mint")
	for _, field := range []string{"balances[recipient]", "total_supply"} {
		w, ok := findWrite(s, field)
		if !ok {
			t.Fatalf("missing Write(%s)", field)
		}
		fs := w.C.FieldSources()
		if len(fs) != 1 || fs[0].Card != domain.Card1 || !fs[0].Ops["add"] {
			t.Errorf("%s: contribution %s, want linear add", field, w.C)
		}
		if w.C.Prec != domain.Exact {
			t.Errorf("%s: precision %s, want Exact", field, w.C.Prec)
		}
	}
	if !findRead(s, "current_owner") {
		t.Error("missing Read(current_owner)")
	}
}

// TestApproveSummary: Approve's write is a plain overwrite with no
// field contribution.
func TestApproveSummary(t *testing.T) {
	s := summarise(t, "FungibleToken", "Approve")
	w, ok := findWrite(s, "allowances[_sender][spender]")
	if !ok {
		t.Fatal("missing Write(allowances[_sender][spender])")
	}
	if len(w.C.FieldSources()) != 0 {
		t.Errorf("Approve write should have no field sources, got %s", w.C)
	}
}

// TestBalanceOfSendMsg: the callback message must be recovered with a
// zero _amount and _recipient = _sender.
func TestBalanceOfSendMsg(t *testing.T) {
	s := summarise(t, "FungibleToken", "BalanceOf")
	var sends []domain.Effect
	for _, e := range s.Effects {
		if e.Kind == domain.EffSendMsg {
			sends = append(sends, e)
		}
	}
	if len(sends) != 1 {
		t.Fatalf("expected 1 SendMsg effect, got %d: %s", len(sends), s)
	}
	msg := sends[0].Msg
	if msg == nil {
		t.Fatal("SendMsg lost message structure (⊤)")
	}
	amt, ok := msg["_amount"]
	if !ok || !amt.IsZeroLit() {
		t.Errorf("_amount contribution = %v, want literal zero", amt)
	}
	rcp, ok := msg["_recipient"]
	if !ok {
		t.Fatal("missing _recipient contribution")
	}
	if p, ok := rcp.SingleParam(); !ok || p != "_sender" {
		t.Errorf("_recipient = %s, want param _sender", rcp)
	}
}

// TestSummaryRendering sanity-checks the Fig. 8-style rendering.
func TestSummaryRendering(t *testing.T) {
	s := summarise(t, "FungibleToken", "Transfer")
	str := s.String()
	for _, want := range []string{
		"Read(balances[_sender])",
		"Read(balances[to])",
		"Write(balances[_sender]",
		"Write(balances[to]",
		"Condition(",
	} {
		if !strings.Contains(str, want) {
			t.Errorf("summary rendering missing %q:\n%s", want, str)
		}
	}
}
