package analysis_test

import (
	"testing"

	"cosplit/internal/core/analysis"
	"cosplit/internal/core/domain"
	"cosplit/internal/scilla/parser"
	"cosplit/internal/scilla/typecheck"
)

// analyzeSrc analyses one transition of an inline contract.
func analyzeSrc(t *testing.T, src, transition string) *domain.Summary {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := typecheck.Check(m)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	a, err := analysis.New(chk)
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	s, err := a.Analyze(transition)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return s
}

const hdr = "scilla_version 0\n"

// TestNonLinearUseKillsCommutativity: f(x) = x + x + 1 does not
// commute (the paper's Sec. 3.4 cardinality example).
func TestNonLinearUseKillsCommutativity(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field x : Uint128 = Uint128 0
transition Bump ()
  v <- x;
  d = builtin add v v;
  one = Uint128 1;
  nv = builtin add d one;
  x := nv
end
`, "Bump")
	w, ok := findWrite(s, "x")
	if !ok {
		t.Fatal("missing write")
	}
	fs := w.C.FieldSources()
	if len(fs) != 1 || fs[0].Card != domain.CardOmega {
		t.Errorf("x + x must have cardinality ω, got %v", fs)
	}
}

// TestMulNotCommutative: linear use under mul still records the op, so
// the signature layer rejects IntMerge (ops ⊄ {add, sub}).
func TestMulNotCommutative(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field x : Uint128 = Uint128 1
transition Double ()
  v <- x;
  two = Uint128 2;
  nv = builtin mul v two;
  x := nv
end
`, "Double")
	w, _ := findWrite(s, "x")
	fs := w.C.FieldSources()
	if len(fs) != 1 || !fs[0].Ops["mul"] {
		t.Errorf("mul not recorded: %v", fs)
	}
}

// TestFunctionSubstitutionPreservesLinearity: applying a library
// function substitutes the formal with the argument's contribution at
// the right cardinality (the App rule of Fig. 7).
func TestFunctionSubstitutionPreservesLinearity(t *testing.T) {
	s := analyzeSrc(t, hdr+`
library L
let add_amount =
  fun (base : Uint128) =>
    fun (amt : Uint128) =>
      builtin add base amt

contract C ()
field x : Uint128 = Uint128 0
transition Add (amount : Uint128)
  v <- x;
  nv = add_amount v amount;
  x := nv
end
`, "Add")
	w, _ := findWrite(s, "x")
	fs := w.C.FieldSources()
	if len(fs) != 1 || fs[0].Card != domain.Card1 || !fs[0].Ops["add"] {
		t.Errorf("substituted contribution wrong: %s", w.C)
	}
	if w.C.Prec != domain.Exact {
		t.Errorf("precision = %s, want Exact", w.C.Prec)
	}
}

// TestNonLinearFunction: a library function using its formal twice
// smears the argument to ω through substitution.
func TestNonLinearFunction(t *testing.T) {
	s := analyzeSrc(t, hdr+`
library L
let twice =
  fun (v : Uint128) =>
    builtin add v v

contract C ()
field x : Uint128 = Uint128 0
transition T ()
  v <- x;
  nv = twice v;
  x := nv
end
`, "T")
	w, _ := findWrite(s, "x")
	fs := w.C.FieldSources()
	if len(fs) != 1 || fs[0].Card != domain.CardOmega {
		t.Errorf("non-linear function must give ω, got %v", fs)
	}
}

// TestTwoMsgsTracked: message payloads survive two levels of library
// helpers (the Msgs-tracking machinery).
func TestTwoMsgsTracked(t *testing.T) {
	s := analyzeSrc(t, hdr+`
library L
let two_msgs =
  fun (m1 : Message) =>
    fun (m2 : Message) =>
      let nil = Nil {Message} in
      let l1 = Cons {Message} m2 nil in
      Cons {Message} m1 l1

contract C ()
transition Pay (a : ByStr20, b : ByStr20, amt : Uint128)
  m1 = {_tag : "P"; _recipient : a; _amount : amt};
  m2 = {_tag : "P"; _recipient : b; _amount : amt};
  msgs = two_msgs m1 m2;
  send msgs
end
`, "Pay")
	var sends []domain.Effect
	for _, e := range s.Effects {
		if e.Kind == domain.EffSendMsg {
			sends = append(sends, e)
		}
	}
	if len(sends) != 2 {
		t.Fatalf("expected 2 tracked SendMsg effects, got %d: %s", len(sends), s)
	}
	recipients := map[string]bool{}
	for _, e := range sends {
		if e.Msg == nil {
			t.Fatal("message structure lost")
		}
		p, ok := e.Msg["_recipient"].SingleParam()
		if !ok {
			t.Fatalf("recipient not a single param: %s", e.Msg["_recipient"])
		}
		recipients[p] = true
	}
	if !recipients["a"] || !recipients["b"] {
		t.Errorf("recipients = %v, want a and b", recipients)
	}
}

// TestInexactDefaultKillsPrecision: a non-unit default in an option
// peel makes the contribution Inexact (the soundness case discussed in
// the IsKnownOp design).
func TestInexactDefaultKillsPrecision(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition T (k : ByStr20, amount : Uint128)
  cur <- m[k];
  nv = match cur with
       | Some v => builtin add v amount
       | None => Uint128 100
       end;
  m[k] := nv
end
`, "T")
	w, _ := findWrite(s, "m[k]")
	if w.C.Prec != domain.Inexact {
		t.Errorf("non-unit default must be Inexact, got %s", w.C)
	}
}

// TestZeroDefaultStaysPrecise: the zero-default peel is a known op.
func TestZeroDefaultStaysPrecise(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition T (k : ByStr20, amount : Uint128)
  cur <- m[k];
  zero = Uint128 0;
  nv = match cur with
       | Some v => builtin sub v amount
       | None => zero
       end;
  m[k] := nv
end
`, "T")
	w, _ := findWrite(s, "m[k]")
	if w.C.Prec != domain.Exact {
		t.Errorf("zero-default peel must stay Exact, got %s", w.C)
	}
	fs := w.C.FieldSources()
	if len(fs) != 1 || !fs[0].Ops["sub"] || fs[0].Card != domain.Card1 {
		t.Errorf("unexpected contribution: %s", w.C)
	}
}

// TestContractParamKeysRejected: map keys must be transition
// parameters, not contract parameters (the paper's CanSummarise
// restriction simplifying dispatch).
func TestContractParamKeysRejected(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C (admin : ByStr20)
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition T (amount : Uint128)
  m[admin] := amount
end
`, "T")
	if !s.HasTop() {
		t.Errorf("contract-parameter key must defeat CanSummarise:\n%s", s)
	}
}

// TestKeyAliasOfParamAccepted: a let-bound alias of a transition
// parameter is still a valid key.
func TestKeyAliasOfParamAccepted(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition T (who : ByStr20, amount : Uint128)
  k = who;
  m[k] := amount
end
`, "T")
	if s.HasTop() {
		t.Errorf("param alias rejected:\n%s", s)
	}
	w, ok := findWrite(s, "m[who]")
	if !ok {
		t.Fatalf("pseudo-field not canonicalised to the parameter:\n%s", s)
	}
	_ = w
}

// TestReadAfterWriteIsTop: Fig. 7's MapGet rule requires
// Write(i2[ik]) ∉ Σ.
func TestReadAfterWriteIsTop(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition T (k : ByStr20, amount : Uint128)
  m[k] := amount;
  v <- m[k];
  match v with
  | Some x =>
    m[k] := x
  | None =>
    throw
  end
end
`, "T")
	if !s.HasTop() {
		t.Errorf("read-after-write must be ⊤:\n%s", s)
	}
}

// TestBlockchainReadIsConstant: &BLOCKNUMBER contributes a constant.
func TestBlockchainReadIsConstant(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field last : BNum = BNum 0
transition T ()
  blk <- &BLOCKNUMBER;
  last := blk
end
`, "T")
	w, _ := findWrite(s, "last")
	if len(w.C.FieldSources()) != 0 {
		t.Errorf("blockchain read must be constant-like: %s", w.C)
	}
	if s.HasTop() {
		t.Error("unexpected ⊤")
	}
}

// TestEventAndThrowNoEffects: events and throws add no sharding
// effects.
func TestEventAndThrowNoEffects(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
transition T ()
  e = {_eventname : "E"};
  event e;
  throw
end
`, "T")
	if len(s.Effects) != 0 {
		t.Errorf("expected empty summary, got:\n%s", s)
	}
}

// TestAcceptEffect: accept yields AcceptFunds exactly once.
func TestAcceptEffect(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
transition T ()
  accept;
  accept
end
`, "T")
	n := 0
	for _, e := range s.Effects {
		if e.Kind == domain.EffAcceptFunds {
			n++
		}
	}
	if n != 1 {
		t.Errorf("AcceptFunds count = %d, want 1 (deduplicated)", n)
	}
}

// TestMatchArmEffectsUnioned: effects from all arms appear in the
// summary.
func TestMatchArmEffectsUnioned(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field a : Uint128 = Uint128 0
field b : Uint128 = Uint128 0
transition T (flag : Bool)
  match flag with
  | True =>
    one = Uint128 1;
    a := one
  | False =>
    two = Uint128 2;
    b := two
  end
end
`, "T")
	if _, ok := findWrite(s, "a"); !ok {
		t.Error("arm 1 write missing")
	}
	if _, ok := findWrite(s, "b"); !ok {
		t.Error("arm 2 write missing")
	}
	// The condition on a pure parameter has no field sources.
	for _, e := range s.Conditions() {
		if len(e.C.FieldSources()) != 0 {
			t.Errorf("parameter condition has field sources: %s", e.C)
		}
	}
}

// TestExistsOpRecorded: exists reads carry the "exists" op, blocking
// commutativity if the bool were ever written to an int field.
func TestExistsOpRecorded(t *testing.T) {
	s := analyzeSrc(t, hdr+`
contract C ()
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition T (k : ByStr20)
  present <- exists m[k];
  match present with
  | True => throw
  | False => accept
  end
end
`, "T")
	found := false
	for _, e := range s.Conditions() {
		for _, sc := range e.C.FieldSources() {
			if sc.Ops["exists"] {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("exists op not recorded:\n%s", s)
	}
}
