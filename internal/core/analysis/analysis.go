// Package analysis implements the CoSplit effect analysis (Sec. 3.2-3.4
// of the paper): a compositional abstract interpretation of each
// contract transition that infers its state footprint (Read/Write/
// Condition/AcceptFunds/SendMsg effects) annotated with contribution
// types from the internal/core/domain package.
package analysis

import (
	"fmt"

	"cosplit/internal/core/domain"
	"cosplit/internal/scilla/ast"
	"cosplit/internal/scilla/stdlib"
	"cosplit/internal/scilla/typecheck"
)

// Env is the abstract typing context Γ mapping identifiers to
// contribution types.
type Env struct {
	parent *Env
	vars   map[string]*domain.Contrib
}

// NewEnv creates an environment frame.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]*domain.Contrib)}
}

// Lookup resolves an identifier's contribution.
func (e *Env) Lookup(name string) (*domain.Contrib, bool) {
	for env := e; env != nil; env = env.parent {
		if c, ok := env.vars[name]; ok {
			return c, true
		}
	}
	return nil, false
}

// Bind adds a binding.
func (e *Env) Bind(name string, c *domain.Contrib) { e.vars[name] = c }

// Analyzer performs the effect analysis for one checked contract.
type Analyzer struct {
	checked *typecheck.Checked
	libEnv  *Env
	fieldTy map[string]ast.Type
	fresh   int
}

// New builds an analyzer, abstractly evaluating the contract's library
// definitions once (they are pure and contract-agnostic, cf. Sec. 3.1).
func New(checked *typecheck.Checked) (*Analyzer, error) {
	a := &Analyzer{
		checked: checked,
		fieldTy: checked.FieldTypes,
	}
	env := NewEnv(nil)
	for _, ns := range stdlib.NativeSigs() {
		env.Bind(ns.Name, domain.NewNative())
	}
	// Contract immutable parameters are constants with respect to the
	// mutable state.
	for _, p := range checked.Module.Contract.Params {
		env.Bind(p.Name, domain.Single(domain.ConstSource("cparam:"+p.Name)))
	}
	env.Bind("_this_address", domain.Single(domain.ConstSource("cparam:_this_address")))
	if lib := checked.Module.Lib; lib != nil {
		for _, def := range lib.Defs {
			c, err := a.expr(env, def.Expr)
			if err != nil {
				return nil, fmt.Errorf("library %s: %w", def.Name, err)
			}
			env.Bind(def.Name, c)
		}
	}
	a.libEnv = env
	return a, nil
}

// AnalyzeAll infers summaries for every transition of the contract.
func (a *Analyzer) AnalyzeAll() (map[string]*domain.Summary, error) {
	out := make(map[string]*domain.Summary)
	for i := range a.checked.Module.Contract.Transitions {
		tr := &a.checked.Module.Contract.Transitions[i]
		s, err := a.Analyze(tr.Name)
		if err != nil {
			return nil, err
		}
		out[tr.Name] = s
	}
	return out, nil
}

// Analyze infers the effect summary of one transition.
func (a *Analyzer) Analyze(transition string) (*domain.Summary, error) {
	tr := a.checked.Module.Contract.TransitionByName(transition)
	if tr == nil {
		return nil, fmt.Errorf("unknown transition %s", transition)
	}
	env := NewEnv(a.libEnv)
	params := []string{ast.SenderParam, ast.OriginParam, ast.AmountParam}
	for _, p := range tr.Params {
		params = append(params, p.Name)
	}
	for _, p := range params {
		env.Bind(p, domain.Single(domain.ParamSource(p)))
	}
	sum := &domain.Summary{Transition: transition, Params: params}
	if err := a.stmts(env, tr.Body, sum); err != nil {
		return nil, fmt.Errorf("transition %s: %w", transition, err)
	}
	dedupeReads(sum)
	return sum, nil
}

// dedupeReads collapses duplicate Read and AcceptFunds effects.
func dedupeReads(s *domain.Summary) {
	seenRead := map[string]bool{}
	seenAccept := false
	var out []domain.Effect
	for _, e := range s.Effects {
		switch e.Kind {
		case domain.EffRead:
			k := e.Field.String()
			if seenRead[k] {
				continue
			}
			seenRead[k] = true
		case domain.EffAcceptFunds:
			if seenAccept {
				continue
			}
			seenAccept = true
		}
		out = append(out, e)
	}
	s.Effects = out
}

// mapDepth returns the map-nesting depth of a field type.
func mapDepth(t ast.Type) int {
	d := 0
	for {
		mt, ok := t.(ast.MapType)
		if !ok {
			return d
		}
		d++
		t = mt.Val
	}
}

// resolveKeys implements the key side of CanSummarise: every key
// identifier must be (an alias of) a transition parameter, i.e. its
// contribution is exactly one linear op-free parameter source.
func (a *Analyzer) resolveKeys(env *Env, keys []string) ([]string, bool) {
	out := make([]string, len(keys))
	for i, k := range keys {
		c, ok := env.Lookup(k)
		if !ok {
			return nil, false
		}
		p, ok := c.SingleParam()
		if !ok {
			return nil, false
		}
		out[i] = p
	}
	return out, true
}

// canSummarise implements CanSummarise from Fig. 7: keys must resolve
// to transition parameters and the access must be bottom-level. On
// failure the second return is a human-readable reason for the repair
// advisor (Sec. 6).
func (a *Analyzer) canSummarise(env *Env, field string, keys []string) ([]string, string) {
	ft, ok := a.fieldTy[field]
	if !ok {
		return nil, "unknown field " + field
	}
	if len(keys) != mapDepth(ft) {
		return nil, fmt.Sprintf("access to %s is not bottom-level (%d of %d keys)",
			field, len(keys), mapDepth(ft))
	}
	for _, k := range keys {
		c, ok := env.Lookup(k)
		if !ok {
			return nil, "unbound map key " + k
		}
		if _, isParam := c.SingleParam(); !isParam {
			return nil, fmt.Sprintf("map key %q into %s is not a transition parameter (contribution %s)",
				k, field, c)
		}
	}
	out, _ := a.resolveKeys(env, keys)
	return out, ""
}

// writtenOverlaps reports whether the summary already contains a Write
// effect overlapping the given reference (same field; equal key vector,
// or one a prefix of the other).
func writtenOverlaps(sum *domain.Summary, ref domain.FieldRef) bool {
	for _, e := range sum.Effects {
		if e.Kind != domain.EffWrite || e.Field.Name != ref.Name {
			continue
		}
		n := len(e.Field.Keys)
		if len(ref.Keys) < n {
			n = len(ref.Keys)
		}
		same := true
		for i := 0; i < n; i++ {
			if e.Field.Keys[i] != ref.Keys[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// --- Statements ---

func (a *Analyzer) stmts(env *Env, stmts []ast.Stmt, sum *domain.Summary) error {
	for _, s := range stmts {
		if err := a.stmt(env, s, sum); err != nil {
			return err
		}
	}
	return nil
}

func (a *Analyzer) stmt(env *Env, s ast.Stmt, sum *domain.Summary) error {
	switch st := s.(type) {
	case *ast.LoadStmt:
		ref := domain.FieldRef{Name: st.Field}
		if writtenOverlaps(sum, ref) {
			env.Bind(st.Lhs, domain.Top())
			sum.Effects = append(sum.Effects, domain.Effect{
				Kind: domain.EffTop,
				Note: "read of field " + st.Field + " after a write to it",
			})
			return nil
		}
		env.Bind(st.Lhs, domain.Single(domain.FieldSource(ref)))
		sum.Effects = append(sum.Effects, domain.Effect{Kind: domain.EffRead, Field: ref})
		return nil
	case *ast.StoreStmt:
		c, ok := env.Lookup(st.Rhs)
		if !ok {
			return fmt.Errorf("unbound %s", st.Rhs)
		}
		sum.Effects = append(sum.Effects, domain.Effect{
			Kind: domain.EffWrite, Field: domain.FieldRef{Name: st.Field}, C: c,
		})
		return nil
	case *ast.BindStmt:
		c, err := a.expr(env, st.Expr)
		if err != nil {
			return err
		}
		env.Bind(st.Lhs, c)
		return nil
	case *ast.MapUpdateStmt:
		keys, why := a.canSummarise(env, st.Map, st.Keys)
		c, cok := env.Lookup(st.Rhs)
		if why != "" || !cok {
			sum.Effects = append(sum.Effects, domain.Effect{Kind: domain.EffTop, Note: why})
			return nil
		}
		sum.Effects = append(sum.Effects, domain.Effect{
			Kind:  domain.EffWrite,
			Field: domain.FieldRef{Name: st.Map, Keys: keys},
			C:     c,
		})
		return nil
	case *ast.MapGetStmt:
		keys, why := a.canSummarise(env, st.Map, st.Keys)
		if why == "" {
			ref := domain.FieldRef{Name: st.Map, Keys: keys}
			if !writtenOverlaps(sum, ref) {
				c := domain.Single(domain.FieldSource(ref))
				if st.Exists {
					c = c.WithOp("exists")
				}
				env.Bind(st.Lhs, c)
				sum.Effects = append(sum.Effects, domain.Effect{Kind: domain.EffRead, Field: ref})
				return nil
			}
			why = "read of " + ref.String() + " after a write to it"
		}
		env.Bind(st.Lhs, domain.Top())
		sum.Effects = append(sum.Effects, domain.Effect{Kind: domain.EffTop, Note: why})
		return nil
	case *ast.MapDeleteStmt:
		keys, why := a.canSummarise(env, st.Map, st.Keys)
		if why != "" {
			sum.Effects = append(sum.Effects, domain.Effect{Kind: domain.EffTop, Note: why})
			return nil
		}
		sum.Effects = append(sum.Effects, domain.Effect{
			Kind:  domain.EffWrite,
			Field: domain.FieldRef{Name: st.Map, Keys: keys},
			C:     domain.Single(domain.ConstSource("deleted")),
		})
		return nil
	case *ast.ReadBlockchainStmt:
		// Blockchain metadata is identical across shards within an
		// epoch; it contributes as a constant.
		env.Bind(st.Lhs, domain.Single(domain.ConstSource("&"+st.Name)))
		return nil
	case *ast.MatchStmt:
		scrut, ok := env.Lookup(st.Scrutinee)
		if !ok {
			return fmt.Errorf("unbound %s", st.Scrutinee)
		}
		if scrut.Top {
			sum.Effects = append(sum.Effects, domain.Effect{
				Kind: domain.EffTop,
				Note: "control flow depends on an unsummarisable value (" + st.Scrutinee + ")",
			})
		} else if !scrut.IsBot() {
			sum.Effects = append(sum.Effects, domain.Effect{Kind: domain.EffCondition, C: scrut})
		}
		// Each arm is analysed against the incoming summary; their
		// effects are unioned (appended) afterwards.
		pre := len(sum.Effects)
		var armEffects [][]domain.Effect
		for _, arm := range st.Arms {
			armSum := &domain.Summary{
				Transition: sum.Transition,
				Params:     sum.Params,
				Effects:    append([]domain.Effect{}, sum.Effects[:pre]...),
			}
			armEnv := NewEnv(env)
			bindPatternContribs(armEnv, arm.Pat, scrut)
			if err := a.stmts(armEnv, arm.Body, armSum); err != nil {
				return err
			}
			armEffects = append(armEffects, armSum.Effects[pre:])
		}
		for _, effs := range armEffects {
			sum.Effects = append(sum.Effects, effs...)
		}
		return nil
	case *ast.AcceptStmt:
		sum.Effects = append(sum.Effects, domain.Effect{Kind: domain.EffAcceptFunds})
		return nil
	case *ast.SendStmt:
		c, ok := env.Lookup(st.Arg)
		if !ok {
			return fmt.Errorf("unbound %s", st.Arg)
		}
		if c.Top || len(c.Msgs) == 0 {
			// The message structure was lost: SendMsg(⊤).
			sum.Effects = append(sum.Effects, domain.Effect{
				Kind: domain.EffSendMsg,
				Note: "message payload of " + st.Arg + " could not be tracked",
			})
			return nil
		}
		for _, m := range c.Msgs {
			sum.Effects = append(sum.Effects, domain.Effect{Kind: domain.EffSendMsg, Msg: m})
		}
		return nil
	case *ast.EventStmt, *ast.ThrowStmt:
		// Events are local logs; throw aborts the whole transaction, so
		// neither affects the shardable state footprint.
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

// bindPatternContribs gives every binder in a pattern the scrutinee's
// contribution (Fig. 7, Match rule: binder(pat_i) -> Γ(x)).
func bindPatternContribs(env *Env, p ast.Pattern, scrut *domain.Contrib) {
	switch pt := p.(type) {
	case ast.BindPat:
		env.Bind(pt.Name, scrut)
	case ast.ConstrPat:
		for _, sub := range pt.Sub {
			bindPatternContribs(env, sub, scrut)
		}
	}
}

// --- Expressions ---

func (a *Analyzer) expr(env *Env, e ast.Expr) (*domain.Contrib, error) {
	switch ex := e.(type) {
	case *ast.LitExpr:
		var iv = ex.Lit.Int
		if !ex.Lit.Type.IsInt() {
			iv = nil
		}
		return domain.SingleLit(ex.Lit.String(), iv), nil
	case *ast.VarExpr:
		c, ok := env.Lookup(ex.Name)
		if !ok {
			return nil, fmt.Errorf("unbound %s", ex.Name)
		}
		return c, nil
	case *ast.MsgExpr:
		entries := make(domain.MsgContrib, len(ex.Entries))
		total := domain.Bot()
		for _, en := range ex.Entries {
			var c *domain.Contrib
			if en.IsLit {
				var iv = en.Lit.Int
				if !en.Lit.Type.IsInt() {
					iv = nil
				}
				c = domain.SingleLit(en.Lit.String(), iv)
			} else {
				cc, ok := env.Lookup(en.Var)
				if !ok {
					return nil, fmt.Errorf("unbound %s", en.Var)
				}
				c = cc
			}
			entries[en.Key] = c
			total = domain.Add(total, c)
		}
		total.Msgs = []domain.MsgContrib{entries}
		total.LitInt = nil
		return total, nil
	case *ast.ConstrExpr:
		total := domain.Bot()
		for _, arg := range ex.Args {
			c, ok := env.Lookup(arg)
			if !ok {
				return nil, fmt.Errorf("unbound %s", arg)
			}
			total = domain.Add(total, c)
		}
		return total, nil
	case *ast.BuiltinExpr:
		total := domain.Bot()
		for _, arg := range ex.Args {
			c, ok := env.Lookup(arg)
			if !ok {
				return nil, fmt.Errorf("unbound %s", arg)
			}
			total = domain.Add(total, c)
		}
		return total.WithOp(ex.Name), nil
	case *ast.LetExpr:
		bc, err := a.expr(env, ex.Bound)
		if err != nil {
			return nil, err
		}
		inner := NewEnv(env)
		inner.Bind(ex.Name, bc)
		return a.expr(inner, ex.Body)
	case *ast.FunExpr:
		a.fresh++
		formal := fmt.Sprintf("%s#%d", ex.Param, a.fresh)
		inner := NewEnv(env)
		inner.Bind(ex.Param, domain.Single(domain.FormalSource(formal)))
		body, err := a.expr(inner, ex.Body)
		if err != nil {
			return nil, err
		}
		return domain.NewFun(formal, body), nil
	case *ast.AppExpr:
		cur, ok := env.Lookup(ex.Func)
		if !ok {
			return nil, fmt.Errorf("unbound %s", ex.Func)
		}
		for _, arg := range ex.Args {
			ac, ok := env.Lookup(arg)
			if !ok {
				return nil, fmt.Errorf("unbound %s", arg)
			}
			cur = domain.Apply(cur, ac)
		}
		return cur, nil
	case *ast.MatchExpr:
		scrut, ok := env.Lookup(ex.Scrutinee)
		if !ok {
			return nil, fmt.Errorf("unbound %s", ex.Scrutinee)
		}
		if scrut.Top {
			return domain.Top(), nil
		}
		armTys := make([]*domain.Contrib, len(ex.Arms))
		for i, arm := range ex.Arms {
			armEnv := NewEnv(env)
			bindPatternContribs(armEnv, arm.Pat, scrut)
			t, err := a.expr(armEnv, arm.Body)
			if err != nil {
				return nil, err
			}
			armTys[i] = t
		}
		return matchC(scrut, ex.Arms, armTys), nil
	case *ast.TFunExpr:
		return a.expr(env, ex.Body)
	case *ast.TAppExpr:
		c, ok := env.Lookup(ex.Name)
		if !ok {
			return nil, fmt.Errorf("unbound %s", ex.Name)
		}
		return c, nil
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

// matchC implements the MatchC operator of Sec. 3.4:
//
//	MatchC(x, τx, pat_i, e_i, τ_i) = τcond ⊕ ⊔τ_i
//	τcond = ⊥                  if IsKnownOp(x, pat_i, e_i)
//	      = AdaptC τx          otherwise
//
// AdaptC gives the scrutinee's sources cardinality 0 and the Cond
// pseudo-operation; its precision is Exact iff all arms have the same
// source variables (SameVars).
func matchC(scrut *domain.Contrib, arms []ast.MatchArm, armTys []*domain.Contrib) *domain.Contrib {
	joined := domain.Bot()
	for _, t := range armTys {
		joined = domain.Join(joined, t)
	}
	if isKnownOp(scrut, arms, armTys) {
		return joined
	}
	cond := adaptC(scrut, sameVars(armTys))
	return domain.Add(cond, joined)
}

// adaptC builds the τcond contribution for a control-flow-dependent
// match (Sec. 3.4).
func adaptC(scrut *domain.Contrib, same bool) *domain.Contrib {
	out := domain.Scale(scrut, domain.Card1, map[string]bool{domain.CondOp: true})
	if out.Top {
		return out
	}
	// Cardinality 0: the sources affect control flow, not the value
	// linearly.
	for k, sc := range out.Sources {
		out.Sources[k] = domain.SrcContrib{Src: sc.Src, Card: domain.Card0, Ops: sc.Ops}
	}
	if same {
		out.Prec = out.Prec.Join(domain.Exact)
	} else {
		out.Prec = domain.Inexact
	}
	out.Msgs = nil
	out.LitInt = nil
	return out
}

// sameVars reports whether all arm contributions mention the same
// source variables.
func sameVars(armTys []*domain.Contrib) bool {
	if len(armTys) == 0 {
		return true
	}
	first := armTys[0]
	if first.Top {
		return false
	}
	for _, t := range armTys[1:] {
		if t.Top || len(t.Sources) != len(first.Sources) {
			return false
		}
		for k := range first.Sources {
			if _, ok := t.Sources[k]; !ok {
				return false
			}
		}
	}
	return true
}

// isKnownOp recognises the option-peeling idiom (Sec. 3.4): a match
// over an Option value whose Some arm uses the payload and whose None
// arm behaves as the "unit" of the Some arm — formally, the None arm's
// contribution equals the Some arm's contribution with the
// scrutinee-derived sources removed (comparing source domains and
// cardinalities). The common instance is
//
//	match get_bal with Some b => builtin add b amount | None => amount end
//
// which is exactly an IntMerge-able increment.
func isKnownOp(scrut *domain.Contrib, arms []ast.MatchArm, armTys []*domain.Contrib) bool {
	if scrut.Top || len(arms) != 2 {
		return false
	}
	someIdx, noneIdx := -1, -1
	for i, arm := range arms {
		cp, ok := arm.Pat.(ast.ConstrPat)
		if !ok {
			return false
		}
		switch cp.Name {
		case "Some":
			someIdx = i
		case "None":
			noneIdx = i
		}
	}
	if someIdx < 0 || noneIdx < 0 {
		return false
	}
	some, none := armTys[someIdx], armTys[noneIdx]
	if some.Top || none.Top || some.Fun != nil || none.Fun != nil {
		return false
	}
	// Remove scrutinee-derived sources from the Some arm.
	residual := map[string]domain.Card{}
	residualStateFree := true
	for k, sc := range some.Sources {
		if _, fromScrut := scrut.Sources[k]; fromScrut {
			continue
		}
		if sc.Src.Kind == domain.SrcField || sc.Src.Kind == domain.SrcFormal {
			residualStateFree = false
		}
		residual[k] = sc.Card
	}
	// Zero-default peel: `match get with Some c => sub c x | None =>
	// zero` — the None arm writes the integer zero, which is exactly
	// the IntMerge value of an absent entry, so the merge delta is 0
	// and the match is as precise as the Some arm (provided the
	// residual contributions are state-independent).
	if none.LitInt != nil && none.LitInt.Sign() == 0 && residualStateFree {
		return true
	}
	if len(residual) != len(none.Sources) {
		return false
	}
	for k, card := range residual {
		nsc, ok := none.Sources[k]
		if !ok || nsc.Card != card {
			return false
		}
	}
	return true
}
