package node

import (
	"fmt"
	"sync"
	"time"

	"cosplit/internal/shard"
)

// Genesis deterministically provisions one network replica: accounts,
// contracts, any setup transactions. Every node in a cluster runs it
// independently, so it must be a pure function of its own inputs — the
// replicas start bit-identical and FinalBlock replay keeps them so.
type Genesis func() (*shard.Network, error)

// Cluster wires a full node topology over one transport: a DS
// committee, one shard node per shard of the genesis configuration,
// and a lookup node.
type Cluster struct {
	DS     *DS
	Shards []*ShardNode
	Lookup *Lookup

	chanNet *ChanNetwork
	hub     *TCPHub
}

// ClusterOption configures a cluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	tcpAddr    string
	dsOpts     []DSOption
	shardOpts  []ShardOption
	lookupOpts []LookupOption
}

// ClusterTCP runs the cluster over TCP sockets through a hub listening
// on addr ("127.0.0.1:0" for an ephemeral port) instead of the default
// in-process channel transport.
func ClusterTCP(addr string) ClusterOption {
	return func(c *clusterConfig) { c.tcpAddr = addr }
}

// ClusterDS forwards role options to the DS committee.
func ClusterDS(opts ...DSOption) ClusterOption {
	return func(c *clusterConfig) { c.dsOpts = append(c.dsOpts, opts...) }
}

// ClusterShardNodes forwards role options to every shard node.
func ClusterShardNodes(opts ...ShardOption) ClusterOption {
	return func(c *clusterConfig) { c.shardOpts = append(c.shardOpts, opts...) }
}

// ClusterLookup forwards role options to the lookup node.
func ClusterLookup(opts ...LookupOption) ClusterOption {
	return func(c *clusterConfig) { c.lookupOpts = append(c.lookupOpts, opts...) }
}

// NewCluster provisions and starts a cluster: the DS committee gets
// the canonical network, each shard node its own genesis replica.
// Node names are "ds", "shard-<i>", and "lookup".
func NewCluster(genesis Genesis, opts ...ClusterOption) (*Cluster, error) {
	var cfg clusterConfig
	for _, o := range opts {
		o(&cfg)
	}
	canonical, err := genesis()
	if err != nil {
		return nil, fmt.Errorf("node: genesis: %w", err)
	}
	numShards := canonical.Config().NumShards
	shardNames := make([]string, numShards)
	for i := range shardNames {
		shardNames[i] = fmt.Sprintf("shard-%d", i)
	}

	c := &Cluster{}
	endpoint := func(name string) (Endpoint, error) {
		if c.hub != nil {
			return DialTCP(c.hub.Addr(), name)
		}
		return c.chanNet.Endpoint(name), nil
	}
	if cfg.tcpAddr != "" {
		if c.hub, err = ListenTCP(cfg.tcpAddr); err != nil {
			return nil, err
		}
	} else {
		c.chanNet = NewChanNetwork()
	}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	dsEp, err := endpoint("ds")
	if err != nil {
		return fail(err)
	}
	ds, err := NewDS("ds", canonical, dsEp, shardNames, append([]DSOption{DSLookups("lookup")}, cfg.dsOpts...)...)
	if err != nil {
		return fail(err)
	}
	c.DS = ds

	for i, name := range shardNames {
		replica, err := genesis()
		if err != nil {
			return fail(fmt.Errorf("node: genesis for %s: %w", name, err))
		}
		ep, err := endpoint(name)
		if err != nil {
			return fail(err)
		}
		c.Shards = append(c.Shards, NewShard(name, i, replica, ep, "ds", cfg.shardOpts...))
	}

	lookupEp, err := endpoint("lookup")
	if err != nil {
		return fail(err)
	}
	c.Lookup = NewLookup("lookup", lookupEp, "ds", cfg.lookupOpts...)

	c.DS.Run()
	for _, s := range c.Shards {
		s.Run()
	}
	c.Lookup.Run()
	return c, nil
}

// Tick drives one epoch through the committee.
func (c *Cluster) Tick() TickResult { return c.DS.Tick() }

// Produce starts a block producer that ticks the committee every
// interval (empty epochs produce empty blocks, like a real chain).
// onTick, if non-nil, observes every result — including transient
// errors. The returned stop function blocks until the producer exits;
// call it before Close.
func (c *Cluster) Produce(interval time.Duration, onTick func(TickResult)) (stop func()) {
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				res := c.Tick()
				if onTick != nil {
					onTick(res)
				}
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			wg.Wait()
		})
	}
}

// Close stops every node and the transport.
func (c *Cluster) Close() {
	if c.Lookup != nil {
		c.Lookup.Close()
	}
	for _, s := range c.Shards {
		s.Close()
	}
	if c.DS != nil {
		c.DS.Close()
	}
	if c.chanNet != nil {
		c.chanNet.Close()
	}
	if c.hub != nil {
		c.hub.Close()
	}
}
