package node

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"cosplit/internal/shard"
	"cosplit/internal/store"
)

// Genesis deterministically provisions one network replica: accounts,
// contracts, any setup transactions. Every node in a cluster runs it
// independently, so it must be a pure function of its own inputs — the
// replicas start bit-identical and FinalBlock replay keeps them so.
type Genesis func() (*shard.Network, error)

// Cluster wires a full node topology over one transport: a DS
// committee, one shard node per shard of the genesis configuration,
// and one or more lookup nodes (ClusterLookupCount).
type Cluster struct {
	DS     *DS
	Shards []*ShardNode
	// Lookups holds every lookup node; Lookup aliases the first for
	// single-lookup callers.
	Lookups []*Lookup
	Lookup  *Lookup

	chanNet *ChanNetwork
	hub     *TCPHub
	stores  []*store.Store
}

// ClusterOption configures a cluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	tcpAddr       string
	dsOpts        []DSOption
	shardOpts     []ShardOption
	lookupOpts    []LookupOption
	lookupCount   int
	stateDir      string
	snapshotEvery int
	pagedBudget   int64
	paged         bool
}

// ClusterTCP runs the cluster over TCP sockets through a hub listening
// on addr ("127.0.0.1:0" for an ephemeral port) instead of the default
// in-process channel transport.
func ClusterTCP(addr string) ClusterOption {
	return func(c *clusterConfig) { c.tcpAddr = addr }
}

// ClusterDS forwards role options to the DS committee.
func ClusterDS(opts ...DSOption) ClusterOption {
	return func(c *clusterConfig) { c.dsOpts = append(c.dsOpts, opts...) }
}

// ClusterShardNodes forwards role options to every shard node.
func ClusterShardNodes(opts ...ShardOption) ClusterOption {
	return func(c *clusterConfig) { c.shardOpts = append(c.shardOpts, opts...) }
}

// ClusterLookup forwards role options to every lookup node.
func ClusterLookup(opts ...LookupOption) ClusterOption {
	return func(c *clusterConfig) { c.lookupOpts = append(c.lookupOpts, opts...) }
}

// ClusterLookupCount runs n lookup nodes (default 1) named "lookup",
// "lookup-1", "lookup-2", ... — all announced to the committee and
// fanned FinalBlocks, so each serves clients with a consistent (if
// independently bounded) receipt cache.
func ClusterLookupCount(n int) ClusterOption {
	return func(c *clusterConfig) {
		if n > 0 {
			c.lookupCount = n
		}
	}
}

// ClusterStateDir makes every stateful node persistent: the DS
// committee journals to dir/ds and each shard node to dir/shard-<i>,
// snapshotting every `every` committed epochs. On construction each
// node recovers its replica from its own directory; a shard replica
// that fell behind the committee (its journal was torn, or its
// directory is fresh) catches up from the committee's directory and
// snapshots immediately, so its own journal resumes gap-free.
func ClusterStateDir(dir string, every int) ClusterOption {
	return func(c *clusterConfig) { c.stateDir, c.snapshotEvery = dir, every }
}

// ClusterPagedState puts every stateful node's canonical state behind
// a disk-backed page cache of at most budget bytes (0 means the
// pager's default): each role's directory grows a pages/ subdirectory
// holding account and contract pages, the page index replaces full
// snapshot files on the snapshot cadence, and recovery — including a
// shard replica's catch-up from the committee's directory — streams
// pages on demand instead of materialising the full state. Requires
// ClusterStateDir.
func ClusterPagedState(budget int64) ClusterOption {
	return func(c *clusterConfig) { c.paged, c.pagedBudget = true, budget }
}

// NewCluster provisions and starts a cluster: the DS committee gets
// the canonical network, each shard node its own genesis replica.
// Node names are "ds", "shard-<i>", and "lookup".
func NewCluster(genesis Genesis, opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{lookupCount: 1}
	for _, o := range opts {
		o(&cfg)
	}
	canonical, err := genesis()
	if err != nil {
		return nil, fmt.Errorf("node: genesis: %w", err)
	}
	numShards := canonical.Config().NumShards
	shardNames := make([]string, numShards)
	for i := range shardNames {
		shardNames[i] = fmt.Sprintf("shard-%d", i)
	}

	c := &Cluster{}
	endpoint := func(name string) (Endpoint, error) {
		if c.hub != nil {
			return DialTCP(c.hub.Addr(), name)
		}
		return c.chanNet.Endpoint(name), nil
	}
	if cfg.tcpAddr != "" {
		if c.hub, err = ListenTCP(cfg.tcpAddr); err != nil {
			return nil, err
		}
	} else {
		c.chanNet = NewChanNetwork()
	}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	// With a state directory, every stateful node recovers its replica
	// from its own subdirectory before joining the cluster. The
	// committee recovers first: its epoch is the yardstick the shard
	// replicas must reach.
	openStore := func(sub string, n *shard.Network) (*store.Store, error) {
		sopts := []store.Option{store.WithSnapshotEvery(cfg.snapshotEvery)}
		if cfg.paged {
			sopts = append(sopts, store.WithPagedState(cfg.pagedBudget))
		}
		st, err := store.Open(filepath.Join(cfg.stateDir, sub), sopts...)
		if err != nil {
			return nil, err
		}
		c.stores = append(c.stores, st)
		if err := st.Recover(n); err != nil {
			return nil, fmt.Errorf("node: recover %s: %w", sub, err)
		}
		return st, nil
	}
	var dsStore *store.Store
	if cfg.stateDir != "" {
		st, err := openStore("ds", canonical)
		if err != nil {
			return fail(err)
		}
		canonical.AttachStateStore(st)
		dsStore = st
	}

	dsEp, err := endpoint("ds")
	if err != nil {
		return fail(err)
	}
	dsOpts := []DSOption{DSLookups("lookup")}
	if dsStore != nil {
		// The committee's own journal backs replica catch-up requests
		// for epochs older than its in-memory ring.
		dsOpts = append(dsOpts, DSBlockSource(dsStore))
	}
	ds, err := NewDS("ds", canonical, dsEp, shardNames, append(dsOpts, cfg.dsOpts...)...)
	if err != nil {
		return fail(err)
	}
	c.DS = ds

	for i, name := range shardNames {
		replica, err := genesis()
		if err != nil {
			return fail(fmt.Errorf("node: genesis for %s: %w", name, err))
		}
		if cfg.stateDir != "" {
			st, err := openStore(name, replica)
			if err != nil {
				return fail(err)
			}
			if replica.Checkpoint().Epoch < canonical.Checkpoint().Epoch {
				// The replica's own directory is behind the committee
				// (fresh directory, or a journal torn further back):
				// catch up from the committee's directory into a fresh
				// genesis replica, then snapshot immediately so this
				// node's own journal resumes without a gap.
				if replica, err = genesis(); err != nil {
					return fail(fmt.Errorf("node: genesis for %s: %w", name, err))
				}
				if err := store.Restore(filepath.Join(cfg.stateDir, "ds"), replica); err != nil {
					return fail(fmt.Errorf("node: catch up %s from ds: %w", name, err))
				}
				if err := st.Snapshot(replica); err != nil {
					return fail(fmt.Errorf("node: catch up %s: %w", name, err))
				}
			}
			// NextTxID is excluded: only the committee assigns ids, so a
			// replica's stays wherever genesis left it.
			if rc, cc := replica.Checkpoint(), canonical.Checkpoint(); rc.Epoch != cc.Epoch || rc.BlockNumber != cc.BlockNumber {
				return fail(fmt.Errorf("node: %s recovered to %+v, committee at %+v", name, rc, cc))
			}
			replica.AttachStateStore(st)
		}
		ep, err := endpoint(name)
		if err != nil {
			return fail(err)
		}
		c.Shards = append(c.Shards, NewShard(name, i, replica, ep, "ds", cfg.shardOpts...))
	}

	for i := 0; i < cfg.lookupCount; i++ {
		name := "lookup"
		if i > 0 {
			name = fmt.Sprintf("lookup-%d", i)
		}
		lookupEp, err := endpoint(name)
		if err != nil {
			return fail(err)
		}
		c.Lookups = append(c.Lookups, NewLookup(name, lookupEp, "ds", cfg.lookupOpts...))
	}
	c.Lookup = c.Lookups[0]

	c.DS.Run()
	for _, s := range c.Shards {
		s.Run()
	}
	for _, l := range c.Lookups {
		l.Run()
	}
	return c, nil
}

// Tick drives one epoch through the committee.
func (c *Cluster) Tick() TickResult { return c.DS.Tick() }

// Produce starts a block producer that ticks the committee every
// interval (empty epochs produce empty blocks, like a real chain).
// onTick, if non-nil, observes every result — including transient
// errors. The returned stop function blocks until the producer exits;
// call it before Close.
func (c *Cluster) Produce(interval time.Duration, onTick func(TickResult)) (stop func()) {
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				res := c.Tick()
				if onTick != nil {
					onTick(res)
				}
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			wg.Wait()
		})
	}
}

// Close stops every node and the transport.
func (c *Cluster) Close() {
	for _, l := range c.Lookups {
		l.Close()
	}
	for _, s := range c.Shards {
		s.Close()
	}
	if c.DS != nil {
		c.DS.Close()
	}
	if c.chanNet != nil {
		c.chanNet.Close()
	}
	if c.hub != nil {
		c.hub.Close()
	}
	// Stores close after the nodes: the last applied FinalBlocks are
	// journaled by the node goroutines, which have all drained by now.
	for _, st := range c.stores {
		st.Close()
	}
}
