package node

import (
	"errors"
	"sync"

	"cosplit/internal/obs"
	"cosplit/internal/shard"
	"cosplit/internal/wire"
)

// ShardNode executes one shard's queues against a full replica of the
// network state. The replica is provisioned from the same
// deterministic genesis as the DS committee's canonical network, so
// after every applied FinalBlock the two agree bit-for-bit (the
// replica verifies the block's state root and reports
// shard.ErrStateDivergence if not).
//
// Executing a TxBatch does not mutate the replica: ExecuteShard
// produces a MicroBlock of deltas, and state only advances when the
// DS's FinalBlock comes back. A node that misses a FinalBlock (dropped
// frame) therefore lags an epoch behind and refuses later batches —
// the DS sees no MicroBlock and requeues, charging the usual
// transport-loss recovery. Resynchronizing a lagging replica is out of
// scope; Err reports the first skew or divergence.
type ShardNode struct {
	name  string
	shard int
	ep    Endpoint
	net   *shard.Network
	ds    string
	m     *linkMetrics

	quit chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	lastErr error
}

// ShardOption configures a ShardNode.
type ShardOption func(*shardConfig)

type shardConfig struct {
	reg    *obs.Registry
	rec    obs.Recorder
	faults *LinkFaults
}

// ShardObs attaches transport observability to the node's endpoint.
func ShardObs(reg *obs.Registry, rec obs.Recorder) ShardOption {
	return func(c *shardConfig) { c.reg, c.rec = reg, rec }
}

// ShardFaults injects faults into the node's outbound frames (its
// MicroBlocks to the DS committee).
func ShardFaults(f LinkFaults) ShardOption {
	return func(c *shardConfig) { c.faults = &f }
}

// NewShard builds a shard-node actor executing shard index s on the
// given replica network, reporting to the DS peer named ds. Call Run
// to start it.
func NewShard(name string, s int, replica *shard.Network, ep Endpoint, ds string, opts ...ShardOption) *ShardNode {
	var c shardConfig
	for _, o := range opts {
		o(&c)
	}
	lep := Instrument(ep, c.rec, c.reg, c.faults).(*link)
	return &ShardNode{
		name:  name,
		shard: s,
		ep:    lep,
		net:   replica,
		ds:    ds,
		m:     lep.m,
		quit:  make(chan struct{}),
	}
}

// Net exposes the replica network (for state-root assertions in
// tests).
func (s *ShardNode) Net() *shard.Network { return s.net }

// Err returns the first replica error: epoch skew after a missed
// FinalBlock, or state divergence from the committee.
func (s *ShardNode) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

func (s *ShardNode) setErr(err error) {
	s.mu.Lock()
	if s.lastErr == nil {
		s.lastErr = err
	}
	s.mu.Unlock()
}

// Run starts the actor loop.
func (s *ShardNode) Run() {
	s.wg.Add(1)
	go s.loop()
}

// Close stops the actor and detaches its endpoint.
func (s *ShardNode) Close() {
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	s.ep.Close()
	s.wg.Wait()
}

func (s *ShardNode) loop() {
	defer s.wg.Done()
	for {
		from, frame, err := s.ep.Recv()
		if err != nil {
			return
		}
		typ, payload, _, err := wire.DecodeFrame(frame)
		if err != nil {
			s.m.recvErrors.Inc()
			continue
		}
		switch typ {
		case wire.MsgTxBatch:
			s.handleBatch(from, payload)
		case wire.MsgFinalBlock:
			s.handleFinalBlock(payload)
		default:
			s.m.recvErrors.Inc()
		}
	}
}

func (s *ShardNode) handleBatch(from string, payload []byte) {
	batch, err := wire.DecodeTxBatch(payload)
	if err != nil {
		s.m.recvErrors.Inc()
		return
	}
	if batch.Shard != s.shard || batch.Epoch != s.net.Epoch {
		// Wrong shard, or the replica lags after a missed FinalBlock: a
		// stale replica must not execute — staying silent makes the DS
		// treat this shard as transport-lost and requeue the batch.
		return
	}
	mb, err := s.net.ExecuteShard(s.shard, batch.Txs)
	if err != nil {
		s.setErr(err)
		return
	}
	enc, err := wire.EncodeMicroBlock(mb)
	if err != nil {
		s.setErr(err)
		return
	}
	_ = s.ep.Send(from, wire.EncodeFrame(wire.MsgMicroBlock, enc))
}

func (s *ShardNode) handleFinalBlock(payload []byte) {
	fb, err := wire.DecodeFinalBlock(payload)
	if err != nil {
		s.m.recvErrors.Inc()
		return
	}
	if err := s.net.ApplyFinalBlock(fb); err != nil {
		if !errors.Is(err, shard.ErrEpochSkew) || fb.Epoch > s.net.Epoch {
			// Re-delivered old blocks are harmless; lagging behind or
			// diverging is not.
			s.setErr(err)
		}
	}
}
