package node

import (
	"errors"
	"fmt"
	"sync"

	"cosplit/internal/obs"
	"cosplit/internal/shard"
	"cosplit/internal/wire"
)

// ShardNode executes one shard's queues against a full replica of the
// network state. The replica is provisioned from the same
// deterministic genesis as the DS committee's canonical network, so
// after every applied FinalBlock the two agree bit-for-bit (the
// replica verifies the block's state root and reports
// shard.ErrStateDivergence if not).
//
// Executing a TxBatch does not mutate the replica: ExecuteShard
// produces a MicroBlock of deltas, and state only advances when the
// DS's FinalBlock comes back. A node that misses a FinalBlock (dropped
// frame, or a restart that recovered to an older checkpoint) detects
// the skew on the next frame for a future epoch — a TxBatch ahead of
// its own epoch, or a FinalBlock that fails ErrEpochSkew forward — and
// catches up live: it requests the missed range from the committee
// (MsgBlockRequest), replays the returned FinalBlocks through the
// ordinary root-verified ApplyFinalBlock path, then resumes executing
// batches. Err reports the first unrecoverable error: state
// divergence, or a missed range the committee can no longer serve.
type ShardNode struct {
	name  string
	shard int
	ep    Endpoint
	net   *shard.Network
	ds    string
	m     *linkMetrics

	// Resync state, touched only by the actor goroutine. pendingBlocks
	// holds future FinalBlocks that arrived mid-catch-up;
	// pendingBatch/pendingFrom the latest future TxBatch, executed once
	// the replica reaches its epoch; awaitTo (0 = none) the exclusive
	// target epoch of the outstanding block request — a later frame
	// with a higher target re-requests, so a dropped request or
	// response frame delays catch-up by an epoch instead of wedging it.
	pendingBlocks map[uint64]*shard.FinalBlock
	pendingBatch  *wire.TxBatch
	pendingFrom   string
	awaitTo       uint64
	resyncs       *obs.Counter

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu      sync.Mutex
	lastErr error
}

// pendingBlockCap bounds the stash of future FinalBlocks so a peer
// fabricating far-future blocks cannot grow it without limit.
const pendingBlockCap = 512

// ShardOption configures a ShardNode.
type ShardOption func(*shardConfig)

type shardConfig struct {
	reg    *obs.Registry
	rec    obs.Recorder
	faults *LinkFaults
}

// ShardObs attaches transport observability to the node's endpoint.
func ShardObs(reg *obs.Registry, rec obs.Recorder) ShardOption {
	return func(c *shardConfig) { c.reg, c.rec = reg, rec }
}

// ShardFaults injects faults into the node's outbound frames (its
// MicroBlocks to the DS committee).
func ShardFaults(f LinkFaults) ShardOption {
	return func(c *shardConfig) { c.faults = &f }
}

// NewShard builds a shard-node actor executing shard index s on the
// given replica network, reporting to the DS peer named ds. Call Run
// to start it.
func NewShard(name string, s int, replica *shard.Network, ep Endpoint, ds string, opts ...ShardOption) *ShardNode {
	var c shardConfig
	for _, o := range opts {
		o(&c)
	}
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	lep := Instrument(ep, c.rec, c.reg, c.faults).(*link)
	return &ShardNode{
		name:          name,
		shard:         s,
		ep:            lep,
		net:           replica,
		ds:            ds,
		m:             lep.m,
		pendingBlocks: make(map[uint64]*shard.FinalBlock),
		resyncs:       c.reg.Counter("node.resyncs"),
		quit:          make(chan struct{}),
	}
}

// Net exposes the replica network (for state-root assertions in
// tests).
func (s *ShardNode) Net() *shard.Network { return s.net }

// Err returns the first unrecoverable replica error: state divergence
// from the committee, or an unservable catch-up gap.
func (s *ShardNode) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

func (s *ShardNode) setErr(err error) {
	s.mu.Lock()
	if s.lastErr == nil {
		s.lastErr = err
	}
	s.mu.Unlock()
}

// Run starts the actor loop.
func (s *ShardNode) Run() {
	s.wg.Add(1)
	go s.loop()
}

// Close stops the actor and detaches its endpoint. Safe to call
// concurrently and more than once.
func (s *ShardNode) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	s.ep.Close()
	s.wg.Wait()
}

func (s *ShardNode) loop() {
	defer s.wg.Done()
	for {
		from, frame, err := s.ep.Recv()
		if err != nil {
			return
		}
		typ, payload, _, err := wire.DecodeFrame(frame)
		if err != nil {
			s.m.recvErrors.Inc()
			continue
		}
		switch typ {
		case wire.MsgTxBatch:
			s.handleBatch(from, payload)
		case wire.MsgFinalBlock:
			s.handleFinalBlock(payload)
		case wire.MsgBlockResponse:
			s.handleBlockResponse(payload)
		default:
			s.m.recvErrors.Inc()
		}
	}
}

func (s *ShardNode) handleBatch(from string, payload []byte) {
	batch, err := wire.DecodeTxBatch(payload)
	if err != nil {
		s.m.recvErrors.Inc()
		return
	}
	if batch.Shard != s.shard || batch.Epoch < s.net.Epoch {
		// Wrong shard, or a stale batch the DS already requeued past.
		return
	}
	if batch.Epoch > s.net.Epoch {
		// The replica lags (it missed at least one FinalBlock): stash
		// the batch and catch up. If the fetch completes before the
		// committee's collect timeout, the MicroBlock still lands this
		// epoch; otherwise the DS requeues the batch and the replica
		// rejoins on the next one.
		s.pendingBatch, s.pendingFrom = batch, from
		s.requestResync(batch.Epoch)
		return
	}
	s.execBatch(from, batch)
}

// execBatch executes a current-epoch batch and ships the MicroBlock.
func (s *ShardNode) execBatch(from string, batch *wire.TxBatch) {
	mb, err := s.net.ExecuteShard(s.shard, batch.Txs)
	if err != nil {
		s.setErr(err)
		return
	}
	enc, err := wire.EncodeMicroBlock(mb)
	if err != nil {
		s.setErr(err)
		return
	}
	_ = s.ep.Send(from, wire.EncodeFrame(wire.MsgMicroBlock, enc))
}

func (s *ShardNode) handleFinalBlock(payload []byte) {
	fb, err := wire.DecodeFinalBlock(payload)
	if err != nil {
		s.m.recvErrors.Inc()
		return
	}
	if err := s.net.ApplyFinalBlock(fb); err != nil {
		switch {
		case !errors.Is(err, shard.ErrEpochSkew):
			s.setErr(err)
		case fb.Epoch > s.net.Epoch:
			// A future block: FinalBlocks in between were missed. Keep
			// this one for replay and fetch the gap.
			if len(s.pendingBlocks) < pendingBlockCap {
				s.pendingBlocks[fb.Epoch] = fb
			}
			s.requestResync(fb.Epoch)
		default:
			// A re-delivered old block: harmless.
		}
		return
	}
	s.drainPending()
}

// requestResync asks the committee for FinalBlocks [net.Epoch, target)
// unless an outstanding request already covers the range.
func (s *ShardNode) requestResync(target uint64) {
	if s.awaitTo >= target {
		return
	}
	s.awaitTo = target
	s.resyncs.Inc()
	payload := wire.EncodeBlockRequest(&wire.BlockRequest{From: s.net.Epoch, To: target})
	_ = s.ep.Send(s.ds, wire.EncodeFrame(wire.MsgBlockRequest, payload))
}

func (s *ShardNode) handleBlockResponse(payload []byte) {
	resp, err := wire.DecodeBlockResponse(payload)
	if err != nil {
		s.m.recvErrors.Inc()
		return
	}
	applied := false
	for _, fb := range resp.Blocks {
		if fb.Epoch != s.net.Epoch {
			continue // already applied (duplicate response, or pendingBlocks got there first)
		}
		if err := s.net.ApplyFinalBlock(fb); err != nil {
			s.setErr(err)
			return
		}
		applied = true
	}
	if !applied && resp.Head > resp.From && resp.From == s.net.Epoch {
		// The committee is ahead of us but served nothing: the range
		// was compacted past its journal and ring. No live path back —
		// this replica needs a state-directory recovery.
		s.setErr(fmt.Errorf("node: %s: resync epochs [%d, %d) unservable by committee at epoch %d",
			s.name, resp.From, s.awaitTo, resp.Head))
		return
	}
	s.drainPending()
	if s.awaitTo > 0 {
		if s.net.Epoch >= s.awaitTo || resp.Head <= resp.From {
			// Caught up — or the committee says we were never behind
			// (a fabricated future block): stand down so the next real
			// skew re-requests from scratch.
			s.awaitTo = 0
		} else if applied {
			// Partial response (the committee caps response size):
			// request the remainder.
			target := s.awaitTo
			s.awaitTo = 0
			s.requestResync(target)
		}
	}
}

// drainPending replays stashed future FinalBlocks that became current
// and executes the stashed batch once the replica reaches its epoch.
func (s *ShardNode) drainPending() {
	for {
		fb := s.pendingBlocks[s.net.Epoch]
		if fb == nil {
			break
		}
		delete(s.pendingBlocks, fb.Epoch)
		if err := s.net.ApplyFinalBlock(fb); err != nil {
			s.setErr(err)
			return
		}
	}
	for e := range s.pendingBlocks {
		if e < s.net.Epoch {
			delete(s.pendingBlocks, e)
		}
	}
	if b := s.pendingBatch; b != nil {
		if b.Epoch == s.net.Epoch {
			s.pendingBatch = nil
			s.execBatch(s.pendingFrom, b)
		} else if b.Epoch < s.net.Epoch {
			s.pendingBatch = nil // the DS requeued it long ago
		}
	}
}
