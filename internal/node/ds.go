package node

import (
	"fmt"
	"sync"
	"time"

	"cosplit/internal/obs"
	"cosplit/internal/scilla/value"
	"cosplit/internal/shard"
	"cosplit/internal/wire"
)

// DS is the DS-committee actor: it owns the canonical shard.Network,
// drives epochs over the wire, and answers lookup-node submissions and
// state queries. One goroutine processes all inbound frames, so the
// actor needs no locking around its network.
//
// Per epoch the DS dispatches (BeginEpoch), ships each shard its
// TxBatch, collects MicroBlocks until all shards answered or the
// collect timeout fires, finalizes (merge + DS execution + consensus),
// and broadcasts the sealed FinalBlock to every shard node and lookup.
// A shard whose MicroBlock never arrives — dropped, corrupted, or late
// — is treated as transport-lost: its batch is requeued and its
// committee charged a view change, exactly like the modeled
// DropMicroBlock fault.
type DS struct {
	name    string
	ep      Endpoint
	net     *shard.Network
	shards  []string
	timeout time.Duration
	m       *linkMetrics
	source  BlockSource

	// recent is a ring of the latest committed FinalBlocks (contiguous
	// ascending epochs), the primary source for replica catch-up
	// requests; the BlockSource covers epochs that predate this
	// process. Only the actor goroutine touches it.
	recent []*shard.FinalBlock

	inbox     chan inbound
	ticks     chan tickReq
	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu      sync.Mutex
	lookups map[string]bool
}

// BlockSource serves committed FinalBlocks by epoch range [from, to)
// for replica catch-up; *store.Store implements it over the epoch
// journal. The result may be a sub-range (compaction trims the old
// end), but present blocks are contiguous ascending.
type BlockSource interface {
	Blocks(from, to uint64) ([]*shard.FinalBlock, error)
}

// recentBlockCap bounds the in-memory catch-up ring. A replica that
// fell further behind than this (and past the journal's compaction
// horizon) cannot be served and must recover from a state directory.
const recentBlockCap = 256

// maxBlocksPerResponse caps how many FinalBlocks ride in one
// MsgBlockResponse, so a far-behind replica's request cannot produce
// an oversized frame; the replica re-requests the remainder.
const maxBlocksPerResponse = 64

type inbound struct {
	from  string
	frame []byte
}

type tickReq struct {
	resp chan TickResult
}

// TickResult reports one driven epoch.
type TickResult struct {
	Stats *shard.EpochStats
	Root  string
	Err   error
}

// DSOption configures a DS actor.
type DSOption func(*dsConfig)

type dsConfig struct {
	timeout time.Duration
	reg     *obs.Registry
	rec     obs.Recorder
	faults  *LinkFaults
	lookups []string
	source  BlockSource
}

// DSCollectTimeout bounds how long the committee waits for MicroBlocks
// each epoch before declaring the stragglers transport-lost (default
// 2s; fault tests shorten it).
func DSCollectTimeout(d time.Duration) DSOption {
	return func(c *dsConfig) { c.timeout = d }
}

// DSObs attaches transport observability: frame trace events on rec
// and wire.* metrics on reg.
func DSObs(reg *obs.Registry, rec obs.Recorder) DSOption {
	return func(c *dsConfig) { c.reg, c.rec = reg, rec }
}

// DSFaults injects faults into the committee's outbound frames
// (TxBatches and FinalBlocks).
func DSFaults(f LinkFaults) DSOption {
	return func(c *dsConfig) { c.faults = &f }
}

// DSLookups pre-registers lookup nodes for FinalBlock broadcasts.
// Lookups are also learned dynamically: any peer that says hello as a
// lookup, submits, or queries gets future broadcasts.
func DSLookups(names ...string) DSOption {
	return func(c *dsConfig) { c.lookups = names }
}

// DSBlockSource lets the committee serve catch-up requests for epochs
// older than its in-memory ring — typically the committee's own
// *store.Store, whose journal holds everything since the last
// snapshot. Without one, only the ring is servable.
func DSBlockSource(src BlockSource) DSOption {
	return func(c *dsConfig) { c.source = src }
}

// NewDS builds the committee actor around an existing canonical
// network (compose shard.NewNetwork(opts...) for its configuration —
// mempool admission, gas limits, parallelism, recorders). shardNames
// maps shard index to the peer name executing that shard's queues.
// Call Run to start it.
func NewDS(name string, net *shard.Network, ep Endpoint, shardNames []string, opts ...DSOption) (*DS, error) {
	if len(shardNames) != net.Config().NumShards {
		return nil, fmt.Errorf("node: %d shard names for %d shards", len(shardNames), net.Config().NumShards)
	}
	c := dsConfig{timeout: 2 * time.Second}
	for _, o := range opts {
		o(&c)
	}
	lep := Instrument(ep, c.rec, c.reg, c.faults).(*link)
	d := &DS{
		name:    name,
		ep:      lep,
		net:     net,
		shards:  append([]string(nil), shardNames...),
		timeout: c.timeout,
		m:       lep.m,
		source:  c.source,
		inbox:   make(chan inbound, 4096),
		ticks:   make(chan tickReq),
		quit:    make(chan struct{}),
		lookups: make(map[string]bool),
	}
	for _, l := range c.lookups {
		d.lookups[l] = true
	}
	return d, nil
}

// Net exposes the canonical network (read-only use: state roots,
// snapshots; the actor goroutine owns all mutation).
func (d *DS) Net() *shard.Network { return d.net }

// Run starts the actor's receive and processing loops.
func (d *DS) Run() {
	d.wg.Add(2)
	go d.recvLoop()
	go d.loop()
}

// Close stops the actor and detaches its endpoint. Safe to call
// concurrently and more than once.
func (d *DS) Close() {
	d.closeOnce.Do(func() { close(d.quit) })
	d.ep.Close()
	d.wg.Wait()
}

// Tick drives one epoch and reports its outcome. Safe to call from
// any goroutine; epochs are serialized by the actor loop.
func (d *DS) Tick() TickResult {
	req := tickReq{resp: make(chan TickResult, 1)}
	select {
	case d.ticks <- req:
	case <-d.quit:
		return TickResult{Err: ErrTransportClosed}
	}
	select {
	case r := <-req.resp:
		return r
	case <-d.quit:
		return TickResult{Err: ErrTransportClosed}
	}
}

func (d *DS) recvLoop() {
	defer d.wg.Done()
	for {
		from, frame, err := d.ep.Recv()
		if err != nil {
			close(d.inbox)
			return
		}
		select {
		case d.inbox <- inbound{from, frame}:
		case <-d.quit:
			return
		}
	}
}

func (d *DS) loop() {
	defer d.wg.Done()
	for {
		select {
		case in, ok := <-d.inbox:
			if !ok {
				return
			}
			d.handleFrame(in, nil, nil)
		case req := <-d.ticks:
			d.runEpoch(req)
		case <-d.quit:
			return
		}
	}
}

// handleFrame decodes and dispatches one inbound frame. During epoch
// collection the caller passes blocks/missing so MicroBlocks land in
// the right slot; outside an epoch stray MicroBlocks are stale
// (post-timeout arrivals) and are dropped.
func (d *DS) handleFrame(in inbound, blocks []*shard.MicroBlock, missing *int) {
	typ, payload, _, err := wire.DecodeFrame(in.frame)
	if err != nil {
		d.m.recvErrors.Inc()
		return
	}
	switch typ {
	case wire.MsgSubmit:
		s, err := wire.DecodeSubmit(payload)
		if err != nil {
			d.m.recvErrors.Inc()
			return
		}
		d.registerLookup(in.from)
		resp := &wire.SubmitResp{Corr: s.Corr}
		if id, err := d.net.SubmitTx(s.Tx); err != nil {
			resp.Err = err.Error()
		} else {
			resp.ID = id
		}
		d.send(in.from, wire.MsgSubmitResp, wire.EncodeSubmitResp(resp))
	case wire.MsgStateQuery:
		q, err := wire.DecodeStateQuery(payload)
		if err != nil {
			d.m.recvErrors.Inc()
			return
		}
		d.registerLookup(in.from)
		payload, err := wire.EncodeStateResp(d.stateResp(q))
		if err != nil {
			payload, _ = wire.EncodeStateResp(&wire.StateResp{Corr: q.Corr, Err: err.Error()})
		}
		d.send(in.from, wire.MsgStateResp, payload)
	case wire.MsgMicroBlock:
		if blocks == nil {
			return // stale: arrived after the collect timeout
		}
		mb, err := wire.DecodeMicroBlock(payload)
		if err != nil {
			d.m.recvErrors.Inc()
			return
		}
		if mb.Epoch != d.net.Epoch || mb.Shard < 0 || mb.Shard >= len(blocks) || blocks[mb.Shard] != nil {
			return
		}
		blocks[mb.Shard] = mb
		*missing--
	case wire.MsgHello:
		h, err := wire.DecodeHello(payload)
		if err != nil {
			d.m.recvErrors.Inc()
			return
		}
		if h.Role == "lookup" {
			d.registerLookup(in.from)
		}
	case wire.MsgBlockRequest:
		q, err := wire.DecodeBlockRequest(payload)
		if err != nil {
			d.m.recvErrors.Inc()
			return
		}
		d.serveBlocks(in.from, q)
	default:
		d.m.recvErrors.Inc()
	}
}

// serveBlocks answers a replica catch-up request: the contiguous run
// of committed FinalBlocks starting at q.From, clipped to the head,
// the response size cap, and what the ring + block source still hold.
// Head lets the requester distinguish "you are not actually behind"
// (Head <= From) from "behind but unservable" (Head > From, no
// blocks).
func (d *DS) serveBlocks(to string, q *wire.BlockRequest) {
	head := d.net.Epoch // epochs < head are committed
	end := q.To
	if end > head {
		end = head
	}
	if end > q.From+maxBlocksPerResponse {
		end = q.From + maxBlocksPerResponse
	}
	resp := &wire.BlockResponse{From: q.From, Head: head}
	if end > q.From {
		resp.Blocks = d.blocksFor(q.From, end)
	}
	payload, err := wire.EncodeBlockResponse(resp)
	if err != nil {
		d.m.recvErrors.Inc()
		return
	}
	d.send(to, wire.MsgBlockResponse, payload)
}

// blocksFor collects the contiguous run of FinalBlocks for epochs
// [from, to), consulting the block source for epochs older than the
// in-memory ring. Runs on the actor goroutine.
func (d *DS) blocksFor(from, to uint64) []*shard.FinalBlock {
	var out []*shard.FinalBlock
	next := from
	if d.source != nil && (len(d.recent) == 0 || d.recent[0].Epoch > next) {
		if blocks, err := d.source.Blocks(next, to); err == nil {
			for _, fb := range blocks {
				if fb.Epoch == next && next < to {
					out = append(out, fb)
					next++
				}
			}
		}
	}
	for _, fb := range d.recent {
		if next >= to {
			break
		}
		if fb.Epoch == next {
			out = append(out, fb)
			next++
		}
	}
	return out
}

func (d *DS) registerLookup(name string) {
	d.mu.Lock()
	d.lookups[name] = true
	d.mu.Unlock()
}

func (d *DS) lookupNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.lookups))
	for l := range d.lookups {
		out = append(out, l)
	}
	return out
}

func (d *DS) send(to string, t wire.MsgType, payload []byte) {
	_ = d.ep.Send(to, wire.EncodeFrame(t, payload))
}

// runEpoch drives one epoch over the wire.
func (d *DS) runEpoch(req tickReq) {
	run := d.net.BeginEpoch()
	run.CollectFinalBlock()
	queues := run.Queues()
	epoch := run.Epoch()
	for s, q := range queues {
		payload, err := wire.EncodeTxBatch(&wire.TxBatch{Epoch: epoch, Shard: s, Txs: q})
		if err != nil {
			req.resp <- TickResult{Err: fmt.Errorf("encode tx batch for shard %d: %w", s, err)}
			return
		}
		d.send(d.shards[s], wire.MsgTxBatch, payload)
	}

	// Collect MicroBlocks; keep serving submissions and queries that
	// arrive mid-epoch.
	blocks := make([]*shard.MicroBlock, len(queues))
	missing := len(queues)
	timer := time.NewTimer(d.timeout)
	defer timer.Stop()
	for missing > 0 {
		select {
		case in, ok := <-d.inbox:
			if !ok {
				missing = 0
			} else {
				d.handleFrame(in, blocks, &missing)
			}
		case <-timer.C:
			missing = 0 // stragglers are transport-lost; FinalizeEpoch requeues them
		case <-d.quit:
			req.resp <- TickResult{Err: ErrTransportClosed}
			return
		}
	}

	stats, fb, err := d.net.FinalizeEpoch(run, blocks)
	if err != nil {
		req.resp <- TickResult{Err: err}
		return
	}
	if fb != nil {
		d.recent = append(d.recent, fb)
		if len(d.recent) > recentBlockCap {
			d.recent = append(d.recent[:0], d.recent[len(d.recent)-recentBlockCap:]...)
		}
		payload, err := wire.EncodeFinalBlock(fb)
		if err != nil {
			req.resp <- TickResult{Err: fmt.Errorf("encode final block: %w", err)}
			return
		}
		for _, s := range d.shards {
			d.send(s, wire.MsgFinalBlock, payload)
		}
		for _, l := range d.lookupNames() {
			d.send(l, wire.MsgFinalBlock, payload)
		}
	}
	req.resp <- TickResult{Stats: stats, Root: d.net.StateRoot()}
}

// stateResp answers a state query from canonical state.
func (d *DS) stateResp(q *wire.StateQuery) *wire.StateResp {
	resp := &wire.StateResp{Corr: q.Corr}
	if q.Field == "" {
		acc := d.net.Accounts.Get(q.Addr)
		if acc == nil {
			return resp
		}
		resp.Found = true
		resp.Balance = acc.Balance
		resp.Nonce = acc.Nonce
		return resp
	}
	c := d.net.Contracts.Get(q.Addr)
	if c == nil {
		return resp
	}
	v, err := c.Snapshot().LoadField(q.Field)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	if q.Key != "" {
		m, ok := v.(*value.Map)
		if !ok {
			resp.Err = fmt.Sprintf("field %s is not a map", q.Field)
			return resp
		}
		if v, ok = m.GetCK(q.Key); !ok {
			return resp
		}
	}
	resp.Found = true
	resp.Value = v
	return resp
}
