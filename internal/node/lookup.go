package node

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/obs"
	"cosplit/internal/wire"
)

// Lookup is the client-facing actor: it forwards submissions and state
// queries to the DS committee over the wire, correlates the responses,
// and caches receipts from FinalBlock broadcasts so clients can poll
// commit status without touching the committee. It holds no state
// replica — it is a light client. The receipt cache is bounded
// (LookupReceiptCap): oldest receipts are evicted first, so a
// long-running lookup's memory stays flat no matter how many epochs
// flow past it.
type Lookup struct {
	name    string
	ep      Endpoint
	ds      string
	timeout time.Duration
	m       *linkMetrics

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu         sync.Mutex
	corr       uint64
	submits    map[uint64]chan *wire.SubmitResp
	queries    map[uint64]chan *wire.StateResp
	receipts   map[uint64]*chain.Receipt
	receiptCap int
	// receiptOrder[receiptHead:] lists cached tx ids oldest-first; the
	// head index advances on eviction and the backing array is compacted
	// once the dead prefix passes half, keeping it bounded too.
	receiptOrder  []uint64
	receiptHead   int
	receiptsGauge *obs.Gauge
	epoch         uint64
	root          string
	commitCh      chan struct{}
}

// LookupOption configures a Lookup.
type LookupOption func(*lookupConfig)

type lookupConfig struct {
	timeout    time.Duration
	reg        *obs.Registry
	rec        obs.Recorder
	faults     *LinkFaults
	receiptCap int
}

// LookupTimeout bounds how long SubmitTx and GetState wait for the
// committee's response (default 5s).
func LookupTimeout(d time.Duration) LookupOption {
	return func(c *lookupConfig) { c.timeout = d }
}

// LookupObs attaches transport observability to the node's endpoint.
func LookupObs(reg *obs.Registry, rec obs.Recorder) LookupOption {
	return func(c *lookupConfig) { c.reg, c.rec = reg, rec }
}

// LookupFaults injects faults into the node's outbound frames.
func LookupFaults(f LinkFaults) LookupOption {
	return func(c *lookupConfig) { c.faults = &f }
}

// LookupReceiptCap bounds the receipt cache to the n most recent
// receipts (default 100000). Older receipts are evicted FIFO; a client
// that polls too late simply sees nil, exactly as if the receipt's
// FinalBlock broadcast had been lost.
func LookupReceiptCap(n int) LookupOption {
	return func(c *lookupConfig) {
		if n > 0 {
			c.receiptCap = n
		}
	}
}

// NewLookup builds a lookup actor talking to the DS peer named ds.
// Call Run to start it.
func NewLookup(name string, ep Endpoint, ds string, opts ...LookupOption) *Lookup {
	c := lookupConfig{timeout: 5 * time.Second, receiptCap: 100_000}
	for _, o := range opts {
		o(&c)
	}
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	lep := Instrument(ep, c.rec, c.reg, c.faults).(*link)
	return &Lookup{
		name:          name,
		ep:            lep,
		ds:            ds,
		timeout:       c.timeout,
		m:             lep.m,
		quit:          make(chan struct{}),
		submits:       make(map[uint64]chan *wire.SubmitResp),
		queries:       make(map[uint64]chan *wire.StateResp),
		receipts:      make(map[uint64]*chain.Receipt),
		receiptCap:    c.receiptCap,
		receiptsGauge: c.reg.Gauge("node.lookup_receipts"),
		commitCh:      make(chan struct{}),
	}
}

// Run starts the actor loop. The lookup announces itself to the
// committee first (MsgHello), so the DS adds it to the FinalBlock
// fan-out before any traffic flows — a lookup that only ever polls
// receipts would otherwise never be learned.
func (l *Lookup) Run() {
	hello := wire.EncodeHello(&wire.Hello{Name: l.name, Role: "lookup"})
	_ = l.ep.Send(l.ds, wire.EncodeFrame(wire.MsgHello, hello))
	l.wg.Add(1)
	go l.loop()
}

// Close stops the actor and detaches its endpoint. Safe to call
// concurrently and more than once.
func (l *Lookup) Close() {
	l.closeOnce.Do(func() { close(l.quit) })
	l.ep.Close()
	l.wg.Wait()
}

func (l *Lookup) loop() {
	defer l.wg.Done()
	for {
		_, frame, err := l.ep.Recv()
		if err != nil {
			return
		}
		typ, payload, _, err := wire.DecodeFrame(frame)
		if err != nil {
			l.m.recvErrors.Inc()
			continue
		}
		switch typ {
		case wire.MsgSubmitResp:
			resp, err := wire.DecodeSubmitResp(payload)
			if err != nil {
				l.m.recvErrors.Inc()
				continue
			}
			l.mu.Lock()
			ch := l.submits[resp.Corr]
			delete(l.submits, resp.Corr)
			l.mu.Unlock()
			if ch != nil {
				ch <- resp
			}
		case wire.MsgStateResp:
			resp, err := wire.DecodeStateResp(payload)
			if err != nil {
				l.m.recvErrors.Inc()
				continue
			}
			l.mu.Lock()
			ch := l.queries[resp.Corr]
			delete(l.queries, resp.Corr)
			l.mu.Unlock()
			if ch != nil {
				ch <- resp
			}
		case wire.MsgFinalBlock:
			fb, err := wire.DecodeFinalBlock(payload)
			if err != nil {
				l.m.recvErrors.Inc()
				continue
			}
			l.mu.Lock()
			for _, r := range fb.Receipts {
				if _, known := l.receipts[r.TxID]; !known {
					l.receiptOrder = append(l.receiptOrder, r.TxID)
				}
				l.receipts[r.TxID] = r
			}
			for len(l.receipts) > l.receiptCap {
				delete(l.receipts, l.receiptOrder[l.receiptHead])
				l.receiptHead++
			}
			if l.receiptHead > len(l.receiptOrder)/2 {
				n := copy(l.receiptOrder, l.receiptOrder[l.receiptHead:])
				l.receiptOrder = l.receiptOrder[:n]
				l.receiptHead = 0
			}
			l.receiptsGauge.Set(int64(len(l.receipts)))
			if fb.Epoch >= l.epoch {
				l.epoch = fb.Epoch
				l.root = fb.StateRoot
			}
			close(l.commitCh)
			l.commitCh = make(chan struct{})
			l.mu.Unlock()
		default:
			l.m.recvErrors.Inc()
		}
	}
}

// SubmitTx submits a transaction through the committee's admission
// control and returns its assigned id. A committee-side rejection
// comes back as an error with the admission reason; a lost frame or
// response surfaces as ErrTimeout.
func (l *Lookup) SubmitTx(tx *chain.Tx) (uint64, error) {
	ch := make(chan *wire.SubmitResp, 1)
	l.mu.Lock()
	l.corr++
	corr := l.corr
	l.submits[corr] = ch
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.submits, corr)
		l.mu.Unlock()
	}()
	payload, err := wire.EncodeSubmit(&wire.Submit{Corr: corr, Tx: tx})
	if err != nil {
		return 0, err
	}
	if err := l.ep.Send(l.ds, wire.EncodeFrame(wire.MsgSubmit, payload)); err != nil {
		return 0, err
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return 0, fmt.Errorf("submit rejected: %s", resp.Err)
		}
		return resp.ID, nil
	case <-time.After(l.timeout):
		return 0, fmt.Errorf("submit: %w", ErrTimeout)
	case <-l.quit:
		return 0, ErrTransportClosed
	}
}

// AccountState is a queried account.
type AccountState struct {
	Balance *big.Int
	Nonce   uint64
}

// GetAccount queries the committee for an account's balance and nonce
// (found == false when the account does not exist).
func (l *Lookup) GetAccount(addr chain.Address) (st AccountState, found bool, err error) {
	resp, err := l.query(&wire.StateQuery{Addr: addr})
	if err != nil {
		return AccountState{}, false, err
	}
	if !resp.Found {
		return AccountState{}, false, nil
	}
	return AccountState{Balance: resp.Balance, Nonce: resp.Nonce}, true, nil
}

// GetState queries a contract field, optionally narrowed to one map
// entry by canonical key. The response's Value is nil when not found.
func (l *Lookup) GetState(addr chain.Address, field, key string) (*wire.StateResp, error) {
	return l.query(&wire.StateQuery{Addr: addr, Field: field, Key: key})
}

func (l *Lookup) query(q *wire.StateQuery) (*wire.StateResp, error) {
	ch := make(chan *wire.StateResp, 1)
	l.mu.Lock()
	l.corr++
	q.Corr = l.corr
	l.queries[q.Corr] = ch
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.queries, q.Corr)
		l.mu.Unlock()
	}()
	if err := l.ep.Send(l.ds, wire.EncodeFrame(wire.MsgStateQuery, wire.EncodeStateQuery(q))); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, fmt.Errorf("state query: %s", resp.Err)
		}
		return resp, nil
	case <-time.After(l.timeout):
		return nil, fmt.Errorf("state query: %w", ErrTimeout)
	case <-l.quit:
		return nil, ErrTransportClosed
	}
}

// Receipt returns the cached receipt for a transaction id, or nil if
// it has not committed (or was lost).
func (l *Lookup) Receipt(id uint64) *chain.Receipt {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.receipts[id]
}

// WaitReceipt blocks until the transaction's receipt arrives in a
// FinalBlock broadcast or the deadline passes (returning nil).
func (l *Lookup) WaitReceipt(id uint64, timeout time.Duration) *chain.Receipt {
	deadline := time.Now().Add(timeout)
	for {
		l.mu.Lock()
		r := l.receipts[id]
		ch := l.commitCh
		l.mu.Unlock()
		if r != nil {
			return r
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil
		}
		timer := time.NewTimer(wait)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		case <-l.quit:
			timer.Stop()
			return nil
		}
	}
}

// Chain reports the latest finalized epoch and state root seen.
func (l *Lookup) Chain() (epoch uint64, root string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch, l.root
}
