package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// TestConcurrentClose hammers every actor's Close from several
// goroutines at once: Close is documented idempotent and
// concurrency-safe (sync.Once around the quit channel), so this must
// neither panic ("close of closed channel") nor deadlock. Run under
// -race in CI.
func TestConcurrentClose(t *testing.T) {
	w := testWorkload()
	cluster, err := NewCluster(testGenesis(w), ClusterLookupCount(2))
	if err != nil {
		t.Fatal(err)
	}
	if res := cluster.Tick(); res.Err != nil {
		t.Fatal(res.Err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, l := range cluster.Lookups {
				l.Close()
			}
			for _, s := range cluster.Shards {
				s.Close()
			}
			cluster.DS.Close()
		}()
	}
	wg.Wait()
	cluster.Close() // still idempotent after the storm
	for _, s := range cluster.Shards {
		if err := s.Err(); err != nil {
			t.Errorf("%s: %v", s.name, err)
		}
	}
}

// TestTCPHubCloseRace closes the hub from two goroutines while eight
// peers are still dialing in: Close's wg.Wait must be ordered against
// acceptLoop's wg.Add (both under the hub mutex), so Close cannot
// return while a serve goroutine is being born — and a dial landing
// after close is turned away, not leaked.
func TestTCPHubCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		hub, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ep, err := DialTCP(hub.Addr(), fmt.Sprintf("peer-%d", i))
				if err == nil {
					ep.Close()
				}
			}(i)
		}
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(time.Duration(round%3) * 100 * time.Microsecond)
				hub.Close()
			}()
		}
		wg.Wait()
		hub.Close()
	}
}

// TestMultiLookupFanout scales the lookup tier out to three nodes: a
// submission through any lookup must commit, and every lookup —
// pre-registered or announced via MsgHello — must converge on the
// same receipts and chain head from the FinalBlock fan-out.
func TestMultiLookupFanout(t *testing.T) {
	w := testWorkload()
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(testGenesis(w), ClusterLookupCount(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if n := len(cluster.Lookups); n != 3 {
		t.Fatalf("cluster has %d lookups, want 3", n)
	}

	var last uint64
	for i := 0; i < 9; i++ {
		// Round-robin submissions across the tier, like -hammer does.
		id, err := cluster.Lookups[i%3].SubmitTx(w.Next(envSrc))
		if err != nil {
			t.Fatalf("submit via lookup %d: %v", i%3, err)
		}
		last = id
	}
	if res := cluster.Tick(); res.Err != nil {
		t.Fatal(res.Err)
	}
	for i, l := range cluster.Lookups {
		if rc := l.WaitReceipt(last, 5*time.Second); rc == nil {
			t.Fatalf("lookup %d: receipt for tx %d never arrived", i, last)
		}
	}
	epoch0, root0 := cluster.Lookups[0].Chain()
	for i, l := range cluster.Lookups[1:] {
		if epoch, root := l.Chain(); epoch != epoch0 || root != root0 {
			t.Errorf("lookup %d chain (%d, %s) != lookup 0 chain (%d, %s)", i+1, epoch, root, epoch0, root0)
		}
	}
}

// TestLookupReceiptCapSmallerThanBlock bounds the cache below a single
// FinalBlock's receipt count: the one broadcast must insert and evict
// in the same stroke, leaving exactly cap receipts — the newest ones —
// with the rest gone.
func TestLookupReceiptCapSmallerThanBlock(t *testing.T) {
	w := testWorkload()
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	const capN, perBlock = 3, 8
	cluster, err := NewCluster(testGenesis(w), ClusterLookup(LookupReceiptCap(capN)))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var first, last uint64
	for i := 0; i < perBlock; i++ {
		id, err := cluster.Lookup.SubmitTx(w.Next(envSrc))
		if err != nil {
			t.Fatal(err)
		}
		if first == 0 {
			first = id
		}
		last = id
	}
	if res := cluster.Tick(); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Receipt order within a block is not the submission order, so wait
	// for the broadcast via the chain head, then count what survived.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, root := cluster.Lookup.Chain(); root != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("FinalBlock never reached the lookup")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cached := 0
	for id := first; id <= last; id++ {
		if cluster.Lookup.Receipt(id) != nil {
			cached++
		}
	}
	if cached != capN {
		t.Errorf("%d receipts cached after one %d-receipt block, want exactly %d", cached, perBlock, capN)
	}
}
