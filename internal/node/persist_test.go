package node

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cosplit/internal/obs"
	"cosplit/internal/shard"
	"cosplit/internal/workload"
)

// TestLookupReceiptCapHolds floods the lookup with more receipts than
// its cap: the cache must hold exactly the cap's worth of newest
// receipts, evict the oldest, and report its size through the gauge.
func TestLookupReceiptCapHolds(t *testing.T) {
	w := testWorkload()
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	const capN = 10
	cluster, err := NewCluster(testGenesis(w),
		ClusterLookup(LookupReceiptCap(capN), LookupObs(reg, nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const epochs, perEpoch = 5, 8
	var first, last uint64
	for e := 0; e < epochs; e++ {
		for i := 0; i < perEpoch; i++ {
			id, err := cluster.Lookup.SubmitTx(w.Next(envSrc))
			if err != nil {
				t.Fatal(err)
			}
			if first == 0 {
				first = id
			}
			last = id
		}
		if res := cluster.Tick(); res.Err != nil {
			t.Fatalf("epoch %d: %v", e, res.Err)
		}
	}
	// FinalBlocks reach the lookup asynchronously but in order: once the
	// last receipt is visible, all 40 have been processed.
	if cluster.Lookup.WaitReceipt(last, 5*time.Second) == nil {
		t.Fatalf("receipt for tx %d never arrived", last)
	}
	if r := cluster.Lookup.Receipt(first); r != nil {
		t.Errorf("oldest receipt (tx %d) survived past the cap: %+v", first, r)
	}
	if g := reg.Snapshot().Gauges["node.lookup_receipts"]; g != capN {
		t.Errorf("node.lookup_receipts = %d, want %d", g, capN)
	}
}

// TestClusterPagedKillRestartResumes runs the kill-restart scenario
// with every node's state behind a deliberately tiny page cache: all
// reads fault pages from disk, recovery rebuilds roots by streaming
// pages, and a wiped shard catches up from the committee's paged
// directory. Roots and transaction ids must stay bit-identical to the
// uninterrupted monolithic (fully resident) pipeline.
func TestClusterPagedKillRestartResumes(t *testing.T) {
	w := testWorkload()
	envMono, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := []ClusterOption{ClusterStateDir(dir, 2), ClusterPagedState(8 << 10)}

	drive := func(cluster *Cluster, epochs, perEpoch int) {
		t.Helper()
		for e := 0; e < epochs; e++ {
			for i := 0; i < perEpoch; i++ {
				idM := envMono.Net.Submit(w.Next(envMono))
				idC, err := cluster.Lookup.SubmitTx(w.Next(envSrc))
				if err != nil {
					t.Fatalf("submit: %v", err)
				}
				if idM != idC {
					t.Fatalf("tx id skew: monolithic %d, cluster %d", idM, idC)
				}
			}
			if _, err := envMono.Net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
			res := cluster.Tick()
			if res.Err != nil {
				t.Fatalf("tick: %v", res.Err)
			}
			if want := envMono.Net.StateRoot(); res.Root != want {
				t.Fatalf("state root diverged:\n  cluster    %s\n  monolithic %s", res.Root, want)
			}
		}
	}

	a, err := NewCluster(testGenesis(w), opts...)
	if err != nil {
		t.Fatal(err)
	}
	drive(a, 3, 10)
	a.Close()

	// Kill and damage: wipe one shard's directory; the other replicas
	// restart from their paged state with a cold cache.
	if err := os.RemoveAll(filepath.Join(dir, "shard-1")); err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(testGenesis(w), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.DS.Net().StateRoot(), envMono.Net.StateRoot(); got != want {
		t.Fatalf("recovered committee root %s, want %s", got, want)
	}
	drive(b, 2, 10)
	want := b.DS.Net().StateRoot()
	b.Close()
	for _, s := range b.Shards {
		if err := s.Err(); err != nil {
			t.Errorf("%s: replica error: %v", s.name, err)
		}
		if got := s.Net().StateRoot(); got != want {
			t.Errorf("%s: replica root %s, want %s", s.name, got, want)
		}
	}
}

// TestClusterKillRestartResumes is the node-mode persistence proof: a
// cluster with a state directory is stopped and rebuilt, with its
// on-disk state deliberately damaged in between — one shard's journal
// torn mid-frame, another shard's directory wiped entirely. The
// rebuilt cluster must recover (torn tail truncated, lost replicas
// caught up from the committee's directory) and continue the same
// transaction stream with bit-identical roots and transaction ids
// against the uninterrupted monolithic pipeline.
func TestClusterKillRestartResumes(t *testing.T) {
	w := testWorkload()
	envMono, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	envSrc, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	persistent := ClusterStateDir(dir, 2)

	drive := func(cluster *Cluster, epochs, perEpoch int) {
		t.Helper()
		for e := 0; e < epochs; e++ {
			for i := 0; i < perEpoch; i++ {
				idM := envMono.Net.Submit(w.Next(envMono))
				idC, err := cluster.Lookup.SubmitTx(w.Next(envSrc))
				if err != nil {
					t.Fatalf("submit: %v", err)
				}
				if idM != idC {
					t.Fatalf("tx id skew: monolithic %d, cluster %d", idM, idC)
				}
			}
			if _, err := envMono.Net.RunEpoch(); err != nil {
				t.Fatal(err)
			}
			res := cluster.Tick()
			if res.Err != nil {
				t.Fatalf("tick: %v", res.Err)
			}
			if want := envMono.Net.StateRoot(); res.Root != want {
				t.Fatalf("state root diverged:\n  cluster    %s\n  monolithic %s", res.Root, want)
			}
		}
	}

	a, err := NewCluster(testGenesis(w), persistent)
	if err != nil {
		t.Fatal(err)
	}
	drive(a, 3, 10)
	a.Close()

	// Damage the stopped cluster's disk state: tear shard-0's journal
	// tail (crash mid-append) and wipe shard-1's directory (lost node).
	// With snapshots every 2 epochs and the last checkpoint off the
	// boundary, both journals hold at least the final epoch's frame.
	j0 := filepath.Join(dir, "shard-0", "journal.log")
	fi, err := os.Stat(j0)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("shard-0 journal empty — the torn-tail scenario needs a tail to tear")
	}
	if err := os.Truncate(j0, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, "shard-1")); err != nil {
		t.Fatal(err)
	}

	// Restart: shard-2 recovers from its own directory, shard-0 and
	// shard-1 catch up from the committee's. The stream continues where
	// it left off — matching ids prove NextTxID survived the restart.
	b, err := NewCluster(testGenesis(w), persistent)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.DS.Net().StateRoot(), envMono.Net.StateRoot(); got != want {
		t.Fatalf("recovered committee root %s, want %s", got, want)
	}
	drive(b, 2, 10)
	want := b.DS.Net().StateRoot()
	b.Close()
	for _, s := range b.Shards {
		if err := s.Err(); err != nil {
			t.Errorf("%s: replica error: %v", s.name, err)
		}
		if got := s.Net().StateRoot(); got != want {
			t.Errorf("%s: replica root %s, want %s", s.name, got, want)
		}
	}

	// A third start with no new traffic lands on the same state again:
	// the second run's epochs were journaled too.
	cCluster, err := NewCluster(testGenesis(w), persistent)
	if err != nil {
		t.Fatal(err)
	}
	defer cCluster.Close()
	if got := cCluster.DS.Net().StateRoot(); got != want {
		t.Fatalf("third start root %s, want %s", got, want)
	}
	if got, wantCp := cCluster.DS.Net().Checkpoint(), envMono.Net.Checkpoint(); got != wantCp {
		t.Fatalf("third start checkpoint %+v, want %+v", got, wantCp)
	}
}
