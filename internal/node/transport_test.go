package node

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"cosplit/internal/obs"
	"cosplit/internal/wire"
)

func TestChanNetworkDelivers(t *testing.T) {
	n := NewChanNetwork()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	frame := wire.EncodeFrame(wire.MsgSubmitResp, []byte{1, 2, 3})
	if err := a.Send("b", frame); err != nil {
		t.Fatal(err)
	}
	from, got, err := b.Recv()
	if err != nil || from != "a" || !bytes.Equal(got, frame) {
		t.Fatalf("Recv = %q, %x, %v", from, got, err)
	}
	if err := a.Send("nobody", frame); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to unknown peer: %v, want ErrUnknownPeer", err)
	}
}

func TestChanNetworkCloseDrainsQueued(t *testing.T) {
	n := NewChanNetwork()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	f1 := wire.EncodeFrame(wire.MsgTx, []byte{1})
	f2 := wire.EncodeFrame(wire.MsgTx, []byte{2})
	if err := a.Send("b", f1); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", f2); err != nil {
		t.Fatal(err)
	}
	b.Close()
	// Frames queued before the close still drain, then the endpoint
	// reports closure.
	for _, want := range [][]byte{f1, f2} {
		if _, got, err := b.Recv(); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("drain after close: %x, %v", got, err)
		}
	}
	if _, _, err := b.Recv(); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("recv after drain: %v, want ErrTransportClosed", err)
	}
	if err := a.Send("b", f1); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("send to closed: %v, want ErrTransportClosed", err)
	}
}

func TestChanNetworkCloseUnblocksRecv(t *testing.T) {
	n := NewChanNetwork()
	a := n.Endpoint("a")
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTransportClosed) {
			t.Fatalf("recv unblocked with %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

// sinkEndpoint records sends for the link tests.
type sinkEndpoint struct {
	mu     sync.Mutex
	frames [][]byte
}

func (s *sinkEndpoint) Name() string { return "sink" }
func (s *sinkEndpoint) Send(to string, frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, append([]byte(nil), frame...))
	return nil
}
func (s *sinkEndpoint) Recv() (string, []byte, error) { return "", nil, ErrTransportClosed }
func (s *sinkEndpoint) Close() error                  { return nil }

func (s *sinkEndpoint) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

func TestLinkFaultsDeterministic(t *testing.T) {
	frame := wire.EncodeFrame(wire.MsgTx, bytes.Repeat([]byte{7}, 32))
	run := func() (delivered int, dropped, corrupted int64) {
		sink := &sinkEndpoint{}
		reg := obs.NewRegistry()
		ep := Instrument(sink, nil, reg, &LinkFaults{Seed: 99, Drop: 0.3, Corrupt: 0.2})
		for i := 0; i < 200; i++ {
			if err := ep.Send("x", frame); err != nil {
				t.Fatal(err)
			}
		}
		snap := reg.Snapshot()
		return sink.count(), snap.Counters["wire.frames_dropped"], snap.Counters["wire.frames_corrupted"]
	}
	d1, drop1, cor1 := run()
	d2, drop2, cor2 := run()
	if d1 != d2 || drop1 != drop2 || cor1 != cor2 {
		t.Fatalf("same seed, different schedules: (%d,%d,%d) vs (%d,%d,%d)", d1, drop1, cor1, d2, drop2, cor2)
	}
	if drop1 == 0 || cor1 == 0 {
		t.Fatalf("expected both fault kinds over 200 frames: drops=%d corruptions=%d", drop1, cor1)
	}
	if d1+int(drop1) != 200 {
		t.Fatalf("delivered %d + dropped %d != 200", d1, drop1)
	}
}

func TestLinkCorruptionKeepsHeaderIntact(t *testing.T) {
	sink := &sinkEndpoint{}
	// Corrupt every frame.
	ep := Instrument(sink, nil, nil, &LinkFaults{Seed: 1, Corrupt: 1})
	payload := bytes.Repeat([]byte{0xAA}, 16)
	frame := wire.EncodeFrame(wire.MsgTx, payload)
	if err := ep.Send("x", frame); err != nil {
		t.Fatal(err)
	}
	got := sink.frames[0]
	if bytes.Equal(got, frame) {
		t.Fatal("frame not corrupted")
	}
	// Framing survives (stream transports can still relay it) ...
	if wire.FrameMsgType(got) != wire.MsgTx {
		t.Fatal("corrupted frame lost its type byte")
	}
	if raw, err := wire.ReadRawFrame(bytes.NewReader(got)); err != nil || !bytes.Equal(raw, got) {
		t.Fatalf("corrupted frame lost its framing: %v", err)
	}
	// ... but the consumer's checksum rejects the payload.
	if _, _, _, err := wire.DecodeFrame(got); !errors.Is(err, wire.ErrDecode) {
		t.Fatalf("corrupted frame decoded: %v", err)
	}
	diff := 0
	for i := range got {
		if got[i] != frame[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
}

func TestLinkEmitsFrameEvents(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	sink := &sinkEndpoint{}
	ep := Instrument(sink, j, nil, &LinkFaults{Seed: 3, Drop: 1})
	ep.Send("peer", wire.EncodeFrame(wire.MsgMicroBlock, []byte{1}))
	j.Close()
	if !bytes.Contains(buf.Bytes(), []byte(`"event":"frame_dropped"`)) ||
		!bytes.Contains(buf.Bytes(), []byte(`"msg":"micro_block"`)) {
		t.Fatalf("journal missing frame_dropped event:\n%s", buf.String())
	}
}

func TestTCPHubSwitchesFrames(t *testing.T) {
	hub, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, err := DialTCP(hub.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialTCP(hub.Addr(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	frame := wire.EncodeFrame(wire.MsgStateQuery, bytes.Repeat([]byte{9}, 64))
	if err := a.Send("b", frame); err != nil {
		t.Fatal(err)
	}
	from, got, err := b.Recv()
	if err != nil || from != "a" || !bytes.Equal(got, frame) {
		t.Fatalf("Recv = %q, %d bytes, %v", from, len(got), err)
	}
	// Reply path.
	if err := b.Send("a", frame); err != nil {
		t.Fatal(err)
	}
	if from, _, err = a.Recv(); err != nil || from != "b" {
		t.Fatalf("reply Recv = %q, %v", from, err)
	}
	// A corrupted payload still crosses the hub: only headers are
	// validated in transit.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xff
	if err := a.Send("b", bad); err != nil {
		t.Fatal(err)
	}
	if _, got, err = b.Recv(); err != nil || !bytes.Equal(got, bad) {
		t.Fatalf("corrupted frame did not pass through: %v", err)
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	hub, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, err := DialTCP(hub.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTransportClosed) {
			t.Fatalf("recv unblocked with %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}
