package node

import (
	"sync"
	"time"

	"cosplit/internal/obs"
	"cosplit/internal/wire"
)

// LinkFaults injects transport faults into an endpoint's outbound
// frames: per-frame drop and payload-corruption draws plus an optional
// fixed delivery delay. Draws come from a seeded splitmix64 stream, so
// a link's fault schedule is reproducible for a given seed and send
// sequence. The zero value injects nothing.
type LinkFaults struct {
	// Seed selects the deterministic draw stream. The endpoint's name
	// is mixed in, so the same LinkFaults value on several links (a
	// cluster option applied to every shard node) still gives each link
	// its own schedule.
	Seed uint64
	// Drop is the probability a frame is silently lost in transit.
	Drop float64
	// Corrupt is the probability a frame is delivered with one payload
	// byte flipped (the header survives so framing stays intact on
	// stream transports; the receiver's frame checksum rejects the
	// payload).
	Corrupt float64
	// Delay stalls delivery of every frame by a fixed duration (applied
	// with probability DelayProb; DelayProb 0 with Delay > 0 means
	// always).
	Delay     time.Duration
	DelayProb float64
}

func (f LinkFaults) zero() bool {
	return f.Drop <= 0 && f.Corrupt <= 0 && f.Delay <= 0
}

// linkMetrics are the always-on wire.* transport metrics, shared by
// every instrumented endpoint on the same registry.
type linkMetrics struct {
	framesSent      *obs.Counter
	bytesSent       *obs.Counter
	framesRecv      *obs.Counter
	bytesRecv       *obs.Counter
	framesDropped   *obs.Counter
	framesCorrupted *obs.Counter
	recvErrors      *obs.Counter
	frameBytes      *obs.Histogram
}

func newLinkMetrics(reg *obs.Registry) *linkMetrics {
	return &linkMetrics{
		framesSent:      reg.Counter("wire.frames_sent"),
		bytesSent:       reg.Counter("wire.bytes_sent"),
		framesRecv:      reg.Counter("wire.frames_recv"),
		bytesRecv:       reg.Counter("wire.bytes_recv"),
		framesDropped:   reg.Counter("wire.frames_dropped"),
		framesCorrupted: reg.Counter("wire.frames_corrupted"),
		recvErrors:      reg.Counter("wire.recv_errors"),
		frameBytes:      reg.SizeHistogram("wire.frame_bytes"),
	}
}

// splitmix is the SplitMix64 sequence generator (the counter variant
// of the finalizer used by fault.Plan).
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *splitmix) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// link wraps an Endpoint with observability (FrameSent/FrameDropped/
// FrameCorrupted trace events, wire.* metrics) and optional fault
// injection on the send path.
type link struct {
	inner Endpoint
	rec   obs.Recorder
	m     *linkMetrics
	f     LinkFaults

	mu  sync.Mutex
	rng splitmix
}

// Instrument wraps ep so every frame it moves is traced and counted,
// and outbound frames are subject to faults. A nil faults pointer (or
// zero LinkFaults) disables injection; rec may be obs.Nop{}.
func Instrument(ep Endpoint, rec obs.Recorder, reg *obs.Registry, faults *LinkFaults) Endpoint {
	if rec == nil {
		rec = obs.Nop{}
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := &link{inner: ep, rec: rec, m: newLinkMetrics(reg)}
	if faults != nil {
		l.f = *faults
		// FNV-1a over the endpoint name decorrelates links sharing a
		// LinkFaults value.
		h := uint64(14695981039346656037)
		for i := 0; i < len(ep.Name()); i++ {
			h = (h ^ uint64(ep.Name()[i])) * 1099511628211
		}
		l.rng = splitmix{s: faults.Seed ^ h}
	}
	return l
}

func (l *link) Name() string { return l.inner.Name() }

// draw makes the (drop, corrupt, delay) verdict for one frame.
func (l *link) draw() (drop, corrupt, delay bool) {
	if l.f.zero() {
		return false, false, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f.Drop > 0 && l.rng.float() < l.f.Drop {
		return true, false, false
	}
	if l.f.Corrupt > 0 && l.rng.float() < l.f.Corrupt {
		corrupt = true
	}
	if l.f.Delay > 0 && (l.f.DelayProb <= 0 || l.rng.float() < l.f.DelayProb) {
		delay = true
	}
	return false, corrupt, delay
}

// corruptByte returns the payload byte index to flip.
func (l *link) corruptByte(payloadLen int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.rng.next() % uint64(payloadLen))
}

func (l *link) Send(to string, frame []byte) error {
	msg := wire.FrameMsgType(frame).String()
	drop, corrupt, delay := l.draw()
	if drop {
		l.m.framesDropped.Inc()
		l.rec.FrameDropped(l.inner.Name(), to, msg, len(frame))
		return nil
	}
	if corrupt && len(frame) > wire.HeaderLen {
		cp := append([]byte(nil), frame...)
		cp[wire.HeaderLen+l.corruptByte(len(cp)-wire.HeaderLen)] ^= 0xff
		frame = cp
		l.m.framesCorrupted.Inc()
		l.rec.FrameCorrupted(l.inner.Name(), to, msg, len(frame))
	}
	if delay {
		time.Sleep(l.f.Delay)
	}
	if err := l.inner.Send(to, frame); err != nil {
		return err
	}
	l.m.framesSent.Inc()
	l.m.bytesSent.Add(int64(len(frame)))
	l.m.frameBytes.Observe(int64(len(frame)))
	l.rec.FrameSent(l.inner.Name(), to, msg, len(frame))
	return nil
}

func (l *link) Recv() (string, []byte, error) {
	from, frame, err := l.inner.Recv()
	if err != nil {
		return from, frame, err
	}
	l.m.framesRecv.Inc()
	l.m.bytesRecv.Add(int64(len(frame)))
	return from, frame, nil
}

func (l *link) Close() error { return l.inner.Close() }
