// Package node runs the sharded pipeline as a set of communicating
// nodes with a real wire boundary between them. Each role — shard
// node, DS committee, lookup node — is a goroutine-isolated actor that
// holds its own deterministically provisioned shard.Network replica
// and talks to its peers exclusively through encoded wire frames over
// an abstract Transport: an in-process channel switch for tests and
// benchmarks, or TCP sockets behind the same interface.
//
// The epoch protocol mirrors the monolithic pipeline stage for stage:
//
//	lookup ──Submit──▶ DS ──TxBatch──▶ shard nodes
//	shard nodes ──MicroBlock──▶ DS (merge, DS exec, consensus)
//	DS ──FinalBlock──▶ shard nodes + lookups (replay & verify)
//
// Because every hop is encoded bytes, fault injection can drop,
// corrupt, or delay actual frames (LinkFaults); a missing or
// undecodable MicroBlock surfaces at the DS as a transport loss and
// triggers the same requeue-and-view-change recovery as the modeled
// fault plans. A byte-shipped epoch commits bit-identical state roots
// to the monolithic shard.Network path (see TestCrossModeStateRoots).
package node

import "errors"

// Sentinel errors. Wrapped failures are matched with errors.Is.
var (
	// ErrTransportClosed reports a send or receive on a closed endpoint.
	ErrTransportClosed = errors.New("node: transport closed")
	// ErrUnknownPeer reports a send to a name the transport has no route
	// for.
	ErrUnknownPeer = errors.New("node: unknown peer")
	// ErrTimeout reports a request that received no response in time
	// (the frame or its reply may have been dropped in transit).
	ErrTimeout = errors.New("node: request timed out")
)
