package node

import (
	"fmt"
	"sync"
)

// Endpoint is one node's attachment to the cluster transport. Frames
// are opaque byte strings (encoded wire frames); the transport neither
// parses nor validates payloads, so corrupted frames travel as-is and
// are rejected by the receiving decoder.
//
// Send is safe for concurrent use. Recv is single-consumer: each node
// runs one receive loop. Delivery is best-effort and unordered across
// senders but FIFO per (sender, receiver) pair; a send to a closed or
// unknown peer fails with ErrTransportClosed / ErrUnknownPeer.
type Endpoint interface {
	// Name returns the node name this endpoint is registered under.
	Name() string
	// Send delivers a frame to the named peer.
	Send(to string, frame []byte) error
	// Recv blocks for the next inbound frame and its sender's name.
	// After Close it drains queued frames, then fails with
	// ErrTransportClosed.
	Recv() (from string, frame []byte, err error)
	// Close detaches the endpoint; blocked Recv calls return.
	Close() error
}

// ChanNetwork is the in-process transport: a named switch delivering
// frames between endpoints over unbounded in-memory queues. It is the
// default transport for tests and benchmarks — same frame bytes as
// TCP, none of the sockets.
type ChanNetwork struct {
	mu  sync.Mutex
	eps map[string]*chanEndpoint
}

// NewChanNetwork creates an empty in-process switch.
func NewChanNetwork() *ChanNetwork {
	return &ChanNetwork{eps: make(map[string]*chanEndpoint)}
}

// Endpoint registers (or returns) the endpoint named name.
func (n *ChanNetwork) Endpoint(name string) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[name]; ok {
		return ep
	}
	ep := &chanEndpoint{net: n, name: name}
	ep.cond = sync.NewCond(&ep.mu)
	n.eps[name] = ep
	return ep
}

// Close closes every registered endpoint.
func (n *ChanNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*chanEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

func (n *ChanNetwork) lookup(name string) *chanEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eps[name]
}

// delivery is one queued inbound frame.
type delivery struct {
	from  string
	frame []byte
}

type chanEndpoint struct {
	net  *ChanNetwork
	name string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delivery
	closed bool
}

func (e *chanEndpoint) Name() string { return e.name }

func (e *chanEndpoint) Send(to string, frame []byte) error {
	dst := e.net.lookup(to)
	if dst == nil {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	// Copy: the frame crosses an ownership boundary, exactly as it
	// would through a socket. The sender may reuse its buffer.
	cp := append([]byte(nil), frame...)
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		return fmt.Errorf("send to %q: %w", to, ErrTransportClosed)
	}
	dst.queue = append(dst.queue, delivery{from: e.name, frame: cp})
	dst.cond.Signal()
	return nil
}

func (e *chanEndpoint) Recv() (string, []byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.queue) == 0 {
		return "", nil, ErrTransportClosed
	}
	d := e.queue[0]
	e.queue = e.queue[1:]
	return d.from, d.frame, nil
}

func (e *chanEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.cond.Broadcast()
	return nil
}
