package node

import (
	"testing"
	"time"

	"cosplit/internal/chain"
	"cosplit/internal/obs"
	"cosplit/internal/shard"
	"cosplit/internal/wire"
	"cosplit/internal/workload"
)

// dropFrames wraps an Endpoint and silently discards the first n
// inbound frames of one message type — a deterministic stand-in for a
// lost broadcast. Recv is single-consumer, so no locking is needed.
type dropFrames struct {
	Endpoint
	typ wire.MsgType
	n   int
}

func (d *dropFrames) Recv() (string, []byte, error) {
	for {
		from, frame, err := d.Endpoint.Recv()
		if err != nil {
			return from, frame, err
		}
		if d.n > 0 {
			if typ, _, _, derr := wire.DecodeFrame(frame); derr == nil && typ == d.typ {
				d.n--
				continue
			}
		}
		return from, frame, err
	}
}

// TestResyncAfterDroppedFinalBlock is the catch-up acceptance test: a
// shard replica deterministically misses one FinalBlock broadcast, so
// the next epoch's TxBatch arrives ahead of its chain. The replica
// must detect the skew, fetch the missed block from the committee
// (MsgBlockRequest), replay it through the root-verified apply path,
// and rejoin live — same post-resync root as the committee, no
// replica error, in both the channel and the TCP transport.
func TestResyncAfterDroppedFinalBlock(t *testing.T) {
	for _, tc := range []struct {
		name string
		tcp  bool
	}{{"chan", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			w := testWorkload()
			envSrc, err := workload.Provision(w, true, shard.WithShards(3))
			if err != nil {
				t.Fatal(err)
			}
			canonical, err := testGenesis(w)()
			if err != nil {
				t.Fatal(err)
			}

			var endpoint func(name string) Endpoint
			if tc.tcp {
				hub, err := ListenTCP("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer hub.Close()
				endpoint = func(name string) Endpoint {
					ep, err := DialTCP(hub.Addr(), name)
					if err != nil {
						t.Fatalf("dial %s: %v", name, err)
					}
					return ep
				}
			} else {
				cn := NewChanNetwork()
				defer cn.Close()
				endpoint = cn.Endpoint
			}

			shardNames := []string{"shard-0", "shard-1", "shard-2"}
			ds, err := NewDS("ds", canonical, endpoint("ds"), shardNames, DSLookups("lookup"))
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			var shards []*ShardNode
			for i, name := range shardNames {
				replica, err := testGenesis(w)()
				if err != nil {
					t.Fatal(err)
				}
				ep := endpoint(name)
				var opts []ShardOption
				if i == 0 {
					// shard-0 loses the first FinalBlock broadcast.
					ep = &dropFrames{Endpoint: ep, typ: wire.MsgFinalBlock, n: 1}
					opts = append(opts, ShardObs(reg, nil))
				}
				shards = append(shards, NewShard(name, i, replica, ep, "ds", opts...))
			}
			lk := NewLookup("lookup", endpoint("lookup"), "ds")
			ds.Run()
			for _, s := range shards {
				s.Run()
			}
			lk.Run()
			defer ds.Close()
			defer lk.Close()
			for _, s := range shards {
				defer s.Close()
			}

			const epochs, perEpoch = 4, 6
			const total = epochs * perEpoch
			submitted, committed := 0, 0
			for e := 0; e < 30 && committed < total; e++ {
				for i := 0; i < perEpoch && submitted < total; i++ {
					if _, err := lk.SubmitTx(w.Next(envSrc)); err != nil {
						t.Fatal(err)
					}
					submitted++
				}
				res := ds.Tick()
				if res.Err != nil {
					t.Fatalf("tick %d: %v", e, res.Err)
				}
				committed += res.Stats.Committed
			}
			if committed != total {
				t.Fatalf("committed %d of %d after dropped FinalBlock", committed, total)
			}
			if got := reg.Snapshot().Counters["node.resyncs"]; got == 0 {
				t.Error("node.resyncs = 0: shard-0 never requested catch-up")
			}

			// Settle deterministically: over TCP the last FinalBlock
			// broadcast may still be in flight, so probe every replica with
			// a head-epoch batch — the MicroBlock reply proves the replica
			// reached the head (resyncing on the way if the probe won the
			// race against the broadcast).
			target := canonical.Epoch
			probe := endpoint("probe")
			for i, name := range shardNames {
				payload, err := wire.EncodeTxBatch(&wire.TxBatch{Epoch: target, Shard: i})
				if err != nil {
					t.Fatal(err)
				}
				if err := probe.Send(name, wire.EncodeFrame(wire.MsgTxBatch, payload)); err != nil {
					t.Fatal(err)
				}
			}
			seen := make(map[string]bool)
			for len(seen) < len(shardNames) {
				from, typ, payload := recvFrame(t, probe)
				if typ != wire.MsgMicroBlock {
					t.Fatalf("probe: got %s from %s, want micro_block", typ, from)
				}
				mb, err := wire.DecodeMicroBlock(payload)
				if err != nil {
					t.Fatal(err)
				}
				if mb.Epoch == target {
					seen[from] = true
				}
			}
			probe.Close()

			// Afterwards every replica — including the one that resynced —
			// matches the canonical root bit for bit.
			lk.Close()
			for _, s := range shards {
				s.Close()
			}
			ds.Close()
			want := canonical.StateRoot()
			for _, s := range shards {
				if err := s.Err(); err != nil {
					t.Errorf("%s: replica error: %v", s.name, err)
				}
				if got := s.Net().StateRoot(); got != want {
					t.Errorf("%s: replica root %s, want %s", s.name, got, want)
				}
			}
		})
	}
}

// produceFinalBlocks drives epochs on a standalone canonical network —
// the same BeginEpoch/ExecuteShard/FinalizeEpoch pipeline the DS actor
// runs — and returns the sealed FinalBlocks, so a test can play
// committee with full control over delivery order.
func produceFinalBlocks(t *testing.T, net *shard.Network, next func() *chain.Tx, epochs, perEpoch int) []*shard.FinalBlock {
	t.Helper()
	var out []*shard.FinalBlock
	for e := 0; e < epochs; e++ {
		for i := 0; i < perEpoch; i++ {
			net.Submit(next())
		}
		run := net.BeginEpoch()
		run.CollectFinalBlock()
		queues := run.Queues()
		blocks := make([]*shard.MicroBlock, len(queues))
		for s, q := range queues {
			mb, err := net.ExecuteShard(s, q)
			if err != nil {
				t.Fatalf("epoch %d shard %d: %v", e, s, err)
			}
			blocks[s] = mb
		}
		_, fb, err := net.FinalizeEpoch(run, blocks)
		if err != nil {
			t.Fatalf("finalize epoch %d: %v", e, err)
		}
		if fb == nil {
			t.Fatalf("epoch %d: nil FinalBlock", e)
		}
		out = append(out, fb)
	}
	return out
}

// recvFrame reads one frame from ep, failing the test if nothing
// arrives within 5s.
func recvFrame(t *testing.T, ep Endpoint) (string, wire.MsgType, []byte) {
	t.Helper()
	type res struct {
		from    string
		typ     wire.MsgType
		payload []byte
		err     error
	}
	ch := make(chan res, 1)
	go func() {
		from, frame, err := ep.Recv()
		if err != nil {
			ch <- res{err: err}
			return
		}
		typ, payload, _, err := wire.DecodeFrame(frame)
		ch <- res{from: from, typ: typ, payload: payload, err: err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.from, r.typ, r.payload
	case <-time.After(5 * time.Second):
		t.Fatal("no frame within 5s")
		return "", 0, nil
	}
}

// TestFinalBlockSkewHandling drives a single ShardNode from a fake
// committee endpoint and exercises every branch of handleFinalBlock
// and the catch-up protocol deterministically:
//
//   - a re-delivered old FinalBlock is harmless;
//   - a future FinalBlock (a real gap) triggers MsgBlockRequest — not
//     a replica error — and the stashed block drains after the served
//     gap is applied;
//   - a fabricated far-future block also triggers a request, and the
//     committee's "you are not behind" response (Head <= From, no
//     blocks) stands the replica down without error.
func TestFinalBlockSkewHandling(t *testing.T) {
	w := testWorkload()
	envProd, err := workload.Provision(w, true, shard.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	fbs := produceFinalBlocks(t, envProd.Net, func() *chain.Tx { return w.Next(envProd) }, 3, 5)

	cn := NewChanNetwork()
	defer cn.Close()
	dsEp := cn.Endpoint("ds") // the test plays committee
	replica, err := testGenesis(w)()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sn := NewShard("shard-0", 0, replica, cn.Endpoint("shard-0"), "ds", ShardObs(reg, nil))
	sn.Run()
	defer sn.Close()

	send := func(typ wire.MsgType, payload []byte) {
		t.Helper()
		if err := dsEp.Send("shard-0", wire.EncodeFrame(typ, payload)); err != nil {
			t.Fatal(err)
		}
	}
	sendBlock := func(fb *shard.FinalBlock) {
		t.Helper()
		payload, err := wire.EncodeFinalBlock(fb)
		if err != nil {
			t.Fatal(err)
		}
		send(wire.MsgFinalBlock, payload)
	}
	// probe confirms (and synchronizes on) the replica's epoch: a
	// current-epoch TxBatch comes straight back as a MicroBlock.
	probe := func(epoch uint64) {
		t.Helper()
		payload, err := wire.EncodeTxBatch(&wire.TxBatch{Epoch: epoch, Shard: 0})
		if err != nil {
			t.Fatal(err)
		}
		send(wire.MsgTxBatch, payload)
		_, typ, p := recvFrame(t, dsEp)
		if typ != wire.MsgMicroBlock {
			t.Fatalf("probe epoch %d: got %s, want micro_block", epoch, typ)
		}
		mb, err := wire.DecodeMicroBlock(p)
		if err != nil {
			t.Fatal(err)
		}
		if mb.Epoch != epoch {
			t.Fatalf("probe: MicroBlock epoch %d, want %d", mb.Epoch, epoch)
		}
	}

	// Genesis provisioning commits setup epochs, so the produced chain
	// starts at fbs[0].Epoch, not 0.
	base := fbs[0].Epoch

	// Normal delivery: block base applies, replica reaches base+1.
	sendBlock(fbs[0])
	probe(base + 1)

	// Re-delivered old block: harmless, replica still at base+1.
	sendBlock(fbs[0])
	probe(base + 1)

	// Skip block base+1, deliver block base+2: the replica must stash
	// it and ask for the gap [base+1, base+2) instead of erroring.
	sendBlock(fbs[2])
	_, typ, payload := recvFrame(t, dsEp)
	if typ != wire.MsgBlockRequest {
		t.Fatalf("after future block: got %s, want block_request", typ)
	}
	q, err := wire.DecodeBlockRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if q.From != base+1 || q.To != base+2 {
		t.Fatalf("block request [%d, %d), want [%d, %d)", q.From, q.To, base+1, base+2)
	}
	// Serve the gap; the stashed block base+2 drains right after it.
	respb, err := wire.EncodeBlockResponse(&wire.BlockResponse{From: base + 1, Head: base + 3, Blocks: fbs[1:2]})
	if err != nil {
		t.Fatal(err)
	}
	send(wire.MsgBlockResponse, respb)
	probe(base + 3)

	// A fabricated far-future block: the replica requests [base+3,
	// base+10); the committee answers "head is base+3, you are not
	// behind" and the replica stands down with no error.
	fab := *fbs[2]
	fab.Epoch = base + 10
	sendBlock(&fab)
	_, typ, payload = recvFrame(t, dsEp)
	if typ != wire.MsgBlockRequest {
		t.Fatalf("after fabricated block: got %s, want block_request", typ)
	}
	if q, err = wire.DecodeBlockRequest(payload); err != nil {
		t.Fatal(err)
	}
	if q.From != base+3 || q.To != base+10 {
		t.Fatalf("block request [%d, %d), want [%d, %d)", q.From, q.To, base+3, base+10)
	}
	if respb, err = wire.EncodeBlockResponse(&wire.BlockResponse{From: base + 3, Head: base + 3}); err != nil {
		t.Fatal(err)
	}
	send(wire.MsgBlockResponse, respb)
	probe(base + 3)

	if err := sn.Err(); err != nil {
		t.Fatalf("replica error after skew handling: %v", err)
	}
	if got := reg.Snapshot().Counters["node.resyncs"]; got != 2 {
		t.Errorf("node.resyncs = %d, want 2", got)
	}
	want := envProd.Net.StateRoot()
	sn.Close()
	if got := sn.Net().StateRoot(); got != want {
		t.Errorf("post-resync root %s, want %s", got, want)
	}
}
